// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation section. Each benchmark regenerates its artifact at a
// reduced-but-faithful scale (shapes are slot-length invariant in the
// simulator) and reports the rendered report length so the work cannot be
// optimized away. Run a single artifact with e.g.
//
//	go test -bench BenchmarkTableV -benchtime 1x
//
// or everything with `go test -bench . -benchtime 1x`. The same drivers run
// at full paper scale via `go run ./cmd/cloudybench run all -scale paper`.
package cloudybench

import (
	"testing"
	"time"

	"cloudybench/internal/cdb"
	"cloudybench/internal/core"
	"cloudybench/internal/evaluator"
	"cloudybench/internal/experiments"
	"cloudybench/internal/obs"
)

// benchScale is the shared "bench" scale (experiments.Bench): windows
// compressed further than Quick so the whole suite of eleven artifacts
// completes in seconds. The same scale is reachable from the CLI via
// `cloudybench run all -scale bench`.
var benchScale = experiments.Bench

func runExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		out, err := experiments.Run(id, benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if len(out) == 0 {
			b.Fatal("empty report")
		}
		b.ReportMetric(float64(len(out)), "report_bytes")
	}
}

// BenchmarkFigure5 regenerates the transaction-processing comparison
// (TPS across scale factor, mix, and concurrency — paper Figure 5).
func BenchmarkFigure5(b *testing.B) { runExperiment(b, "f5") }

// BenchmarkTableV regenerates the P-Score table with the detailed
// resource-cost breakdown (paper Table V).
func BenchmarkTableV(b *testing.B) { runExperiment(b, "t5") }

// BenchmarkFigure6 regenerates the elasticity evaluation: TPS, total cost,
// and E1-Score across the four elastic patterns (paper Figure 6).
func BenchmarkFigure6(b *testing.B) { runExperiment(b, "f6") }

// BenchmarkTableVI regenerates the per-transition scaling time and cost of
// the serverless SUTs (paper Table VI).
func BenchmarkTableVI(b *testing.B) { runExperiment(b, "t6") }

// BenchmarkTableVII regenerates the multi-tenancy evaluation across the
// four contention patterns (paper Table VII).
func BenchmarkTableVII(b *testing.B) { runExperiment(b, "t7") }

// BenchmarkTableVIII regenerates the fail-over F-Score and R-Score table
// (paper Table VIII).
func BenchmarkTableVIII(b *testing.B) { runExperiment(b, "t8") }

// BenchmarkFigure7 regenerates CDB4's promote-an-RO fail-over timeline
// (paper Figure 7).
func BenchmarkFigure7(b *testing.B) { runExperiment(b, "f7") }

// BenchmarkLagTime regenerates the replication lag evaluation across the
// four IUD mixes (paper §III-F).
func BenchmarkLagTime(b *testing.B) { runExperiment(b, "lag") }

// BenchmarkTableIX regenerates the unified PERFECT comparison including
// the actual-cost starred variants (paper Table IX).
func BenchmarkTableIX(b *testing.B) { runExperiment(b, "t9") }

// BenchmarkFigure8 regenerates the buffer-size sweep for RDS, CDB1, and
// CDB4 (paper Figure 8).
func BenchmarkFigure8(b *testing.B) { runExperiment(b, "f8") }

// BenchmarkFigure9 regenerates the CPU-allocation comparison of
// CloudyBench against SysBench and TPC-C on CDB3 (paper Figure 9).
func BenchmarkFigure9(b *testing.B) { runExperiment(b, "f9") }

// BenchmarkAblations runs the design-choice ablations DESIGN.md calls out:
// parallel replay, the remote buffer pool, and redo pushdown.
func BenchmarkAblations(b *testing.B) { runExperiment(b, "ablations") }

// benchOLTPCell runs one small OLTP cell with the given tracer — the
// substrate for the tracer-overhead pair below. The two benchmarks run the
// identical simulation; comparing their ns/op (baseline in BENCH_trace.json)
// bounds the tracing tax, and the nil-sink variant's allocs/op guards the
// zero-cost-by-default promise at the whole-run level.
func benchOLTPCell(b *testing.B, tr *obs.Tracer) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := evaluator.RunOLTP(evaluator.OLTPConfig{
			Kind: cdb.CDB1, Mix: core.MixReadWrite, Concurrency: 16,
			Warmup: 200 * time.Millisecond, Measure: 800 * time.Millisecond,
			Seed: 42, Tracer: tr,
		})
		if res.TPS <= 0 {
			b.Fatal("zero TPS")
		}
		b.ReportMetric(res.TPS, "virtual_tps")
	}
}

// BenchmarkTraceOff measures the OLTP cell with tracing disabled (nil
// tracer): the baseline every instrumented hot path must stay on.
func BenchmarkTraceOff(b *testing.B) { benchOLTPCell(b, nil) }

// BenchmarkTraceOn measures the same cell with the tracer attached to a
// counting sink — the full cost of span recording and aggregation.
func BenchmarkTraceOn(b *testing.B) {
	benchOLTPCell(b, obs.NewTracer("cdb1", &obs.CountSink{}))
}

// BenchmarkTraceTimeline measures the same cell with the tracer feeding a
// Timeline sink (1s windows) — the soak runner's recording path. The delta
// over BenchmarkTraceOn is the pure cost of windowed histogram
// aggregation; baseline in BENCH_trace.json.
func BenchmarkTraceTimeline(b *testing.B) {
	benchOLTPCell(b, obs.NewTracer("cdb1", obs.NewTimeline("cdb1", time.Second)))
}

// BenchmarkSoak regenerates the soak comparison artifact (windowed
// telemetry, rolling chaos, in-flight sweeps, CSV/Markdown render) at the
// bench scale.
func BenchmarkSoak(b *testing.B) { runExperiment(b, "soak") }

// BenchmarkTracerRecord microbenchmarks the span hot path itself: nil
// tracer (the off switch — must not allocate) vs an attached tracer with an
// open transaction trace.
func BenchmarkTracerRecord(b *testing.B) {
	b.Run("nil", func(b *testing.B) {
		b.ReportAllocs()
		var tr *obs.Tracer
		key := new(int)
		for i := 0; i < b.N; i++ {
			tr.Record(key, obs.KindCPU, 0, time.Millisecond)
		}
	})
	b.Run("attached", func(b *testing.B) {
		b.ReportAllocs()
		tr := obs.NewTracer("bench", nil)
		key := new(int)
		tr.StartTxn(key, "T1", 0)
		for i := 0; i < b.N; i++ {
			tr.Record(key, obs.KindCPU, 0, time.Millisecond)
		}
		tr.FinishTxn(key, "commit", time.Millisecond)
	})
}
