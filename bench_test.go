// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation section. Each benchmark regenerates its artifact at a
// reduced-but-faithful scale (shapes are slot-length invariant in the
// simulator) and reports the rendered report length so the work cannot be
// optimized away. Run a single artifact with e.g.
//
//	go test -bench BenchmarkTableV -benchtime 1x
//
// or everything with `go test -bench . -benchtime 1x`. The same drivers run
// at full paper scale via `go run ./cmd/cloudybench run all -scale paper`.
package cloudybench

import (
	"testing"
	"time"

	"cloudybench/internal/experiments"
)

// benchScale compresses the experiment windows further than Quick so the
// whole suite of eleven artifacts completes in minutes.
var benchScale = experiments.Scale{
	Name:         "bench",
	Warmup:       500 * time.Millisecond,
	Measure:      1500 * time.Millisecond,
	Concurrency:  []int{100},
	SFs:          []int{1},
	SlotLength:   3 * time.Second,
	CostSlots:    6,
	Tau:          110,
	FailBaseline: 6 * time.Second,
	FailTimeout:  45 * time.Second,
	FailConc:     30,
	LagDuration:  2500 * time.Millisecond,
	LagConc:      6,
	Seed:         42,
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		out, err := experiments.Run(id, benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if len(out) == 0 {
			b.Fatal("empty report")
		}
		b.ReportMetric(float64(len(out)), "report_bytes")
	}
}

// BenchmarkFigure5 regenerates the transaction-processing comparison
// (TPS across scale factor, mix, and concurrency — paper Figure 5).
func BenchmarkFigure5(b *testing.B) { runExperiment(b, "f5") }

// BenchmarkTableV regenerates the P-Score table with the detailed
// resource-cost breakdown (paper Table V).
func BenchmarkTableV(b *testing.B) { runExperiment(b, "t5") }

// BenchmarkFigure6 regenerates the elasticity evaluation: TPS, total cost,
// and E1-Score across the four elastic patterns (paper Figure 6).
func BenchmarkFigure6(b *testing.B) { runExperiment(b, "f6") }

// BenchmarkTableVI regenerates the per-transition scaling time and cost of
// the serverless SUTs (paper Table VI).
func BenchmarkTableVI(b *testing.B) { runExperiment(b, "t6") }

// BenchmarkTableVII regenerates the multi-tenancy evaluation across the
// four contention patterns (paper Table VII).
func BenchmarkTableVII(b *testing.B) { runExperiment(b, "t7") }

// BenchmarkTableVIII regenerates the fail-over F-Score and R-Score table
// (paper Table VIII).
func BenchmarkTableVIII(b *testing.B) { runExperiment(b, "t8") }

// BenchmarkFigure7 regenerates CDB4's promote-an-RO fail-over timeline
// (paper Figure 7).
func BenchmarkFigure7(b *testing.B) { runExperiment(b, "f7") }

// BenchmarkLagTime regenerates the replication lag evaluation across the
// four IUD mixes (paper §III-F).
func BenchmarkLagTime(b *testing.B) { runExperiment(b, "lag") }

// BenchmarkTableIX regenerates the unified PERFECT comparison including
// the actual-cost starred variants (paper Table IX).
func BenchmarkTableIX(b *testing.B) { runExperiment(b, "t9") }

// BenchmarkFigure8 regenerates the buffer-size sweep for RDS, CDB1, and
// CDB4 (paper Figure 8).
func BenchmarkFigure8(b *testing.B) { runExperiment(b, "f8") }

// BenchmarkFigure9 regenerates the CPU-allocation comparison of
// CloudyBench against SysBench and TPC-C on CDB3 (paper Figure 9).
func BenchmarkFigure9(b *testing.B) { runExperiment(b, "f9") }

// BenchmarkAblations runs the design-choice ablations DESIGN.md calls out:
// parallel replay, the remote buffer pool, and redo pushdown.
func BenchmarkAblations(b *testing.B) { runExperiment(b, "ablations") }
