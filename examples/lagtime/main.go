// Lag-time example: run the mixed insert/update/delete workload against
// every SUT and measure how long each architecture's replica takes to
// reflect committed changes (paper §III-F), plus a client-observed probe:
// commit a marker on the primary and poll the replica until it appears.
package main

import (
	"fmt"

	"cloudybench/internal/cdb"
	"cloudybench/internal/evaluator"
	"cloudybench/internal/report"
)

func main() {
	fmt.Println("Replication lag, IUD = (60%, 30%, 10%), one replica:")
	fmt.Printf("  %-8s %10s %10s %10s %10s %12s\n",
		"system", "insert", "update", "delete", "C-Score", "client-probe")
	for _, kind := range cdb.Kinds {
		r := evaluator.RunLag(evaluator.LagConfig{
			Kind:   kind,
			IUD:    [3]float64{60, 30, 10},
			Probes: 5,
		})
		fmt.Printf("  %-8s %10s %10s %10s %10s %12s\n",
			kind,
			report.Dur(r.InsertLag), report.Dur(r.UpdateLag), report.Dur(r.DeleteLag),
			report.Dur(r.CScore), report.Dur(r.ProbeLag))
	}
	fmt.Println("\nArchitecture determines the ordering: RDMA shipping into a remote")
	fmt.Println("buffer (cdb4) < parallel replay (cdb3) < sequential batches (cdb1)")
	fmt.Println("< a separate log service hop (cdb2). Deletes replay cheapest because")
	fmt.Println("most engines tombstone logically.")
}
