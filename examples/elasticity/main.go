// Elasticity example: drive the paper's "zero valley" pattern (55, 0, 55
// workers — out-of-stock-then-restock) against serverless CDB3 and watch
// pause-and-resume do its thing: the allocation timeline drops to zero in
// the valley and cold-starts on the next request.
package main

import (
	"fmt"
	"time"

	"cloudybench/internal/cdb"
	"cloudybench/internal/core"
	"cloudybench/internal/evaluator"
	"cloudybench/internal/patterns"
	"cloudybench/internal/report"
)

func main() {
	slot := 20 * time.Second
	fmt.Printf("Pattern %q on CDB3 (serverless, slots of %s):\n\n",
		patterns.ZeroValley.Name, slot)

	r := evaluator.RunElasticity(evaluator.ElasticityConfig{
		Kind:       cdb.CDB3,
		Pattern:    patterns.ZeroValley,
		Mix:        core.MixReadWrite,
		Tau:        110,
		SlotLength: slot,
		CostSlots:  6,
	})
	fixed := evaluator.RunElasticity(evaluator.ElasticityConfig{
		Kind:       cdb.CDB3,
		Pattern:    patterns.ZeroValley,
		Mix:        core.MixReadWrite,
		Tau:        110,
		SlotLength: slot,
		CostSlots:  6,
		Serverless: cdb.Bool(false),
	})

	fmt.Println(report.Series("vCores", r.Cores, 4))
	fmt.Println()
	fmt.Printf("%-22s %12s %12s\n", "", "serverless", "fixed 4vCore")
	fmt.Printf("%-22s %12.0f %12.0f\n", "avg TPS", r.AvgTPS, fixed.AvgTPS)
	fmt.Printf("%-22s %12s %12s\n", "total cost (window)",
		report.Money(r.TotalCost), report.Money(fixed.TotalCost))
	fmt.Printf("%-22s %12.0f %12.0f\n", "E1-Score", r.E1Score, fixed.E1Score)
	fmt.Println("\nScaling transitions (workload change -> allocation settled):")
	for _, tr := range r.Transitions {
		fmt.Printf("  %3d -> %-3d  scaling time %-8s cost %s\n",
			tr.FromCon, tr.ToCon, report.Dur(tr.ScalingTime), report.Money(tr.ScalingCost))
	}
	fmt.Println("\nServerless trades peak throughput for idle-time savings —")
	fmt.Println("exactly the paper's Figure 6 trade-off.")
}
