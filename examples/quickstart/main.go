// Quickstart: deploy one simulated cloud-native database, run the
// CloudyBench read-write mix against it for thirty virtual seconds, and
// print throughput, latency, and cost — the minimal end-to-end loop of the
// testbed.
package main

import (
	"fmt"
	"time"

	"cloudybench/internal/cdb"
	"cloudybench/internal/core"
	"cloudybench/internal/pricing"
	"cloudybench/internal/sim"
)

func main() {
	// Every experiment is a discrete-event simulation: virtual minutes
	// cost real milliseconds and runs are deterministic for a seed.
	s := sim.New(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))

	// Deploy the memory-disaggregated SUT (CDB4): 1 RW + 1 RO node,
	// remote buffer pool over RDMA, CloudyBench SF1 dataset pre-warmed.
	d := cdb.MustDeploy(s, cdb.ProfileFor(cdb.CDB4), cdb.Options{
		SF: 1, Replicas: 1, PreWarm: true,
	})

	// The workload manager drives T1-T4 at the paper's read-write mix
	// (15:5:80) with uniform access.
	col := core.NewCollector()
	runner := core.NewRunner(s, core.Config{
		Name: "quickstart", Seed: 42, Mix: core.MixReadWrite,
		Write:     d.RW,
		Read:      d.ReadNode,
		Collector: col,
	})

	const (
		warmup  = 5 * time.Second
		measure = 30 * time.Second
	)
	s.Go("controller", func(p *sim.Proc) {
		runner.SetConcurrency(100)
		p.Sleep(warmup + measure)
		runner.Stop()
		runner.Wait(p)
		d.Shutdown()
	})
	if err := s.Run(); err != nil {
		panic(err)
	}

	tps := col.TPS(warmup, warmup+measure)
	costPerMin := pricing.PerMinuteBreakdown(d.ClusterPackage()).Total()
	fmt.Printf("system       : %s (%s)\n", d.Profile.DisplayName, d.Profile.Engine)
	fmt.Printf("dataset      : SF%d (%.0f MB raw)\n", d.Dataset.SF, float64(d.Dataset.RawBytes())/(1<<20))
	fmt.Printf("mix          : %s at concurrency 100\n", core.MixReadWrite)
	fmt.Printf("throughput   : %.0f TPS over %s\n", tps, measure)
	fmt.Printf("latency      : p50 %s, p99 %s\n", col.Latency().Quantile(0.5), col.Latency().Quantile(0.99))
	fmt.Printf("buffer hits  : %.1f%% local, remote pool %d pages\n",
		d.RW().Buf.HitRatio()*100, d.Remote.Len())
	fmt.Printf("cost         : $%.4f/min provisioned -> P-Score %.0f\n", costPerMin, tps/costPerMin)
}
