// Multi-tenancy example: the same three-tenant staggered workload hits an
// elastic pool (CDB2) and isolated instances (CDB1). The pool hands all
// twelve vCores to whichever tenant is active and wins on both throughput
// and T-Score; under high contention the roles reverse — the paper's "no
// silver bullet" takeaway (§III-D).
package main

import (
	"fmt"
	"time"

	"cloudybench/internal/cdb"
	"cloudybench/internal/evaluator"
	"cloudybench/internal/patterns"
	"cloudybench/internal/report"
)

func main() {
	slot := 10 * time.Second
	run := func(kind cdb.Kind, pk patterns.TenancyKind) evaluator.TenancyResult {
		return evaluator.RunTenancy(evaluator.TenancyConfig{
			Kind:       kind,
			Pattern:    patterns.PaperTenancy(pk),
			SlotLength: slot,
		})
	}

	for _, pk := range []patterns.TenancyKind{patterns.StaggeredHigh, patterns.HighContention} {
		pat := patterns.PaperTenancy(pk)
		fmt.Printf("== pattern %s (per-tenant slots %v)\n\n", pk, pat.PerTenant)
		pool := run(cdb.CDB2, pk)
		iso := run(cdb.CDB1, pk)
		fmt.Printf("%-26s %14s %14s\n", "", "CDB2 (pool)", "CDB1 (isolated)")
		fmt.Printf("%-26s %14.0f %14.0f\n", "total TPS", pool.TotalTPS, iso.TotalTPS)
		fmt.Printf("%-26s %14s %14s\n", "per-tenant TPS",
			fmt.Sprintf("%.0f/%.0f/%.0f", pool.TenantTPS[0], pool.TenantTPS[1], pool.TenantTPS[2]),
			fmt.Sprintf("%.0f/%.0f/%.0f", iso.TenantTPS[0], iso.TenantTPS[1], iso.TenantTPS[2]))
		fmt.Printf("%-26s %14s %14s\n", "cost/min",
			report.Money(pool.CostPerMin), report.Money(iso.CostPerMin))
		fmt.Printf("%-26s %14.0f %14.0f\n\n", "T-Score", pool.TScore, iso.TScore)
	}
	fmt.Println("Staggered load: the shared pool schedules idle tenants' vCores to the")
	fmt.Println("busy one. High contention: isolation protects tenants from each other.")
}
