// Fail-over example: inject a restart-model RW failure into CDB4 and into
// AWS RDS under steady traffic, print CDB4's promote-an-RO timeline
// (paper Figure 7), and compare the two recovery phases (F and R scores).
package main

import (
	"fmt"
	"time"

	"cloudybench/internal/cdb"
	"cloudybench/internal/cluster"
	"cloudybench/internal/evaluator"
	"cloudybench/internal/report"
)

func main() {
	run := func(kind cdb.Kind) evaluator.FailoverResult {
		return evaluator.RunFailover(evaluator.FailoverConfig{
			Kind:        kind,
			Role:        cluster.RW,
			Concurrency: 90,
			Baseline:    8 * time.Second,
			Timeout:     90 * time.Second,
		})
	}

	c4 := run(cdb.CDB4)
	fmt.Println("CDB4 fail-over timeline (memory-disaggregated switch-over, Figure 7):")
	var injected time.Duration
	for _, ev := range c4.Timeline {
		if injected == 0 {
			injected = ev.At
		}
		fmt.Printf("  t+%-7s %s\n", report.Dur(ev.At-injected), ev.Phase)
	}

	rds := run(cdb.RDS)
	fmt.Println("\nRecovery comparison (RW failure, two-phase measurement):")
	fmt.Printf("  %-8s  baseline %7.0f TPS   F(service)=%-6s R(throughput)=%s\n",
		"CDB4", c4.BaselineTPS, report.Dur(c4.F), report.Dur(c4.R))
	fmt.Printf("  %-8s  baseline %7.0f TPS   F(service)=%-6s R(throughput)=%s\n",
		"AWS RDS", rds.BaselineTPS, report.Dur(rds.F), report.Dur(rds.R))
	fmt.Println("\nThe remote buffer pool lets CDB4 promote a replica in seconds, while")
	fmt.Println("RDS replays ARIES redo/undo before the service returns (Table VIII).")
}
