module cloudybench

go 1.23
