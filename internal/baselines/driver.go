// Package baselines implements the two comparison workloads of paper
// §III-I (Figure 9): a SysBench-style oltp_read_write microbenchmark and a
// TPC-C macrobenchmark. Both issue constant, non-bursty load — which is
// exactly why the paper shows they barely exercise a serverless database's
// scaling range, while CloudyBench's peak-and-valley patterns drive it
// across its whole capacity span.
package baselines

import (
	"errors"
	"fmt"
	"time"

	"cloudybench/internal/core"
	"cloudybench/internal/node"
	"cloudybench/internal/rng"
	"cloudybench/internal/sim"
)

// TxnFunc executes one transaction against the target node, returning nil
// on commit.
type TxnFunc func(p *sim.Proc, n *node.Node, src *rng.Source) error

// Driver runs a baseline workload at a fixed (but adjustable) concurrency,
// mirroring the CloudyBench runner's lifecycle so evaluators can treat all
// three workloads uniformly.
type Driver struct {
	s         *sim.Sim
	name      string
	seed      int64
	target    func() *node.Node
	txn       TxnFunc
	collector *core.Collector
	group     *sim.Group

	conc    int
	spawned int
	stopped bool
}

// NewDriver creates a stopped driver.
func NewDriver(s *sim.Sim, name string, seed int64, target func() *node.Node, txn TxnFunc, col *core.Collector) *Driver {
	return &Driver{
		s: s, name: name, seed: seed, target: target, txn: txn,
		collector: col, group: sim.NewGroup(s),
	}
}

// SetConcurrency reshapes the worker pool.
func (d *Driver) SetConcurrency(n int) {
	if n < 0 {
		n = 0
	}
	d.conc = n
	for d.spawned < n {
		idx := d.spawned
		d.spawned++
		src := rng.ChildOf(d.seed, fmt.Sprintf("%s/w%d", d.name, idx))
		d.group.Go(fmt.Sprintf("%s/w%d", d.name, idx), func(p *sim.Proc) {
			for !d.stopped && idx < d.conc {
				start := p.Elapsed()
				err := d.txn(p, d.target(), src)
				switch {
				case err == nil:
					d.collector.RecordCommit(core.T1NewOrderline, p.Elapsed(), p.Elapsed()-start)
				case errors.Is(err, node.ErrNodeDown):
					d.collector.RecordError(p.Elapsed())
					p.Sleep(100 * time.Millisecond) // reconnect backoff
				default:
					d.collector.RecordError(p.Elapsed())
				}
			}
		})
	}
}

// Stop terminates all workers after their current transaction.
func (d *Driver) Stop() {
	d.stopped = true
	d.conc = 0
}

// Wait blocks until every worker exits.
func (d *Driver) Wait(p *sim.Proc) { d.group.Wait(p) }

// Collector returns the driver's collector.
func (d *Driver) Collector() *core.Collector { return d.collector }
