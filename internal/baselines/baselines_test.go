package baselines

import (
	"testing"
	"time"

	"cloudybench/internal/core"
	"cloudybench/internal/engine"
	"cloudybench/internal/node"
	"cloudybench/internal/rng"
	"cloudybench/internal/sim"
)

var epoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func makeNode(s *sim.Sim) *node.Node {
	return node.New(s, node.Config{
		Name: "n", VCores: 4, MemoryBytes: 512 << 20,
		OpCPU: 50 * time.Microsecond, TxnCPU: 30 * time.Microsecond,
	}, node.NullBackend{})
}

func TestSysBenchSetupAndRun(t *testing.T) {
	s := sim.New(epoch)
	n := makeNode(s)
	sb := NewSysBench()
	if err := sb.CreateTables(n.DB, 42); err != nil {
		t.Fatal(err)
	}
	// Paper cites ~226 MB for 3 tables of 300k rows.
	if gb := float64(sb.RawBytes()) / (1 << 20); gb < 150 || gb > 300 {
		t.Fatalf("raw size = %.0f MB, want ~226", gb)
	}
	col := core.NewCollector()
	d := NewDriver(s, "sysbench", 7, func() *node.Node { return n }, sb.Txn, col)
	s.Go("ctl", func(p *sim.Proc) {
		d.SetConcurrency(11) // the paper's thread count
		p.Sleep(2 * time.Second)
		d.Stop()
		d.Wait(p)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if col.Commits() < 100 {
		t.Fatalf("commits = %d", col.Commits())
	}
	if col.Errors() != 0 {
		t.Fatalf("errors = %d", col.Errors())
	}
	// Writes actually happened: some sbtest table has delta entries.
	touched := 0
	for i := 1; i <= 3; i++ {
		touched += n.DB.Table("sbtest" + string(rune('0'+i))).DeltaLen()
	}
	if touched == 0 {
		t.Fatal("no writes recorded")
	}
}

func newTPCCNode(t *testing.T, s *sim.Sim) (*node.Node, *TPCC) {
	t.Helper()
	n := makeNode(s)
	tp := NewTPCC(1)
	if err := tp.CreateTables(n.DB, 42); err != nil {
		t.Fatal(err)
	}
	return n, tp
}

func TestTPCCLoadInvariants(t *testing.T) {
	s := sim.New(epoch)
	n, _ := newTPCCNode(t, s)
	db := n.DB
	if got := db.Table("warehouse").LiveRows(); got != 1 {
		t.Fatalf("warehouses = %d", got)
	}
	if got := db.Table("district").LiveRows(); got != 10 {
		t.Fatalf("districts = %d", got)
	}
	if got := db.Table("customer").LiveRows(); got != 30_000 {
		t.Fatalf("customers = %d", got)
	}
	if got := db.Table("stock").LiveRows(); got != 100_000 {
		t.Fatalf("stock = %d", got)
	}
	if got := db.Table("orders").LiveRows(); got != 30_000 {
		t.Fatalf("orders = %d", got)
	}
	if got := db.Table("new_order").LiveRows(); got != 9_000 {
		t.Fatalf("new orders = %d, want 900/district", got)
	}
	if got := db.Table("order_line").LiveRows(); got != 300_000 {
		t.Fatalf("order lines = %d", got)
	}
	// District rows carry the next order id.
	drow, _, _ := db.Table("district").Get(engine.IntKey(3))
	if drow[4].I != tpccInitialOrders+1 {
		t.Fatalf("D_NEXT_O_ID = %d", drow[4].I)
	}
}

func TestTPCCNewOrderAdvancesDistrictAndStock(t *testing.T) {
	s := sim.New(epoch)
	n, tp := newTPCCNode(t, s)
	s.Go("t", func(p *sim.Proc) {
		if err := tp.NewOrder(p, n, newSrc(7)); err != nil {
			t.Error(err)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// Exactly one district advanced its order counter.
	advanced := 0
	var district int64
	for dk := int64(1); dk <= 10; dk++ {
		drow, _, _ := n.DB.Table("district").Get(engine.IntKey(dk))
		if drow[4].I == tpccInitialOrders+2 {
			advanced++
			district = dk
		}
	}
	if advanced != 1 {
		t.Fatalf("districts advanced = %d", advanced)
	}
	// The new order and its lines exist.
	okey := orderKeyID(1, int(district), tpccInitialOrders+1)
	orow, _, ok := n.DB.Table("orders").Get(engine.IntKey(okey))
	if !ok {
		t.Fatal("order row missing")
	}
	cnt := int(orow[4].I)
	if cnt < 5 || cnt > 15 {
		t.Fatalf("ol count = %d", cnt)
	}
	for ol := 1; ol <= cnt; ol++ {
		if _, _, ok := n.DB.Table("order_line").Get(engine.IntKey(orderLineKeyID(okey, ol))); !ok {
			t.Fatalf("order line %d missing", ol)
		}
	}
	if _, _, ok := n.DB.Table("new_order").Get(engine.IntKey(okey)); !ok {
		t.Fatal("new_order row missing")
	}
}

func TestTPCCPaymentMovesMoney(t *testing.T) {
	s := sim.New(epoch)
	n, tp := newTPCCNode(t, s)
	wBefore, _, _ := n.DB.Table("warehouse").Get(engine.IntKey(1))
	s.Go("t", func(p *sim.Proc) {
		if err := tp.Payment(p, n, newSrc(9)); err != nil {
			t.Error(err)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	wAfter, _, _ := n.DB.Table("warehouse").Get(engine.IntKey(1))
	if wAfter[3].F <= wBefore[3].F {
		t.Fatal("warehouse YTD did not grow")
	}
	if n.DB.Table("history").LiveRows() != 1 {
		t.Fatal("history row missing")
	}
}

func TestTPCCDeliveryConsumesNewOrders(t *testing.T) {
	s := sim.New(epoch)
	n, tp := newTPCCNode(t, s)
	before := n.DB.Table("new_order").LiveRows()
	s.Go("t", func(p *sim.Proc) {
		if err := tp.Delivery(p, n, newSrc(11)); err != nil {
			t.Error(err)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	after := n.DB.Table("new_order").LiveRows()
	if after != before-10 {
		t.Fatalf("new_order rows %d -> %d, want -10 (one per district)", before, after)
	}
}

func TestTPCCFullMixRuns(t *testing.T) {
	s := sim.New(epoch)
	n, tp := newTPCCNode(t, s)
	col := core.NewCollector()
	d := NewDriver(s, "tpcc", 13, func() *node.Node { return n }, tp.Txn, col)
	s.Go("ctl", func(p *sim.Proc) {
		d.SetConcurrency(8)
		p.Sleep(2 * time.Second)
		d.Stop()
		d.Wait(p)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if col.Commits() < 100 {
		t.Fatalf("commits = %d", col.Commits())
	}
	if col.Errors() != 0 {
		t.Fatalf("errors = %d", col.Errors())
	}
	// Money conservation-ish sanity: warehouse YTD only grows.
	wrow, _, _ := n.DB.Table("warehouse").Get(engine.IntKey(1))
	if wrow[3].F < 300_000 {
		t.Fatalf("warehouse YTD shrank: %v", wrow[3].F)
	}
}

// newSrc builds a deterministic source for direct transaction tests.
func newSrc(seed int64) *rng.Source { return rng.New(seed) }
