package baselines

import (
	"errors"
	"fmt"
	"sort"

	"cloudybench/internal/engine"
	"cloudybench/internal/node"
	"cloudybench/internal/rng"
	"cloudybench/internal/sim"
)

// TPCC is a TPC-C implementation over the engine: the nine-table schema
// and all five transactions (New-Order, Payment, Order-Status, Delivery,
// Stock-Level) at the standard 45/43/4/4/4 mix, without keying/think
// times. The paper runs it at scale factor 1 (one warehouse) through
// OLTP-Bench as the constant-load macrobenchmark of Figure 9.
//
// Composite TPC-C keys map onto dense int64 key spaces so dimension tables
// ride the generator-backed loader; order tables are populated with real
// inserts (3000 initial orders per district, the last 900 undelivered).
type TPCC struct {
	Warehouses int

	// Per-district order counters (workload-owned, like a terminal's
	// cached D_NEXT_O_ID; the authoritative copy lives in the district
	// row and is updated transactionally by New-Order).
	nextOID   []int64
	oldestNew []int64
}

// TPC-C cardinalities per the specification.
const (
	tpccDistrictsPerW = 10
	tpccCustomersPerD = 3000
	tpccItems         = 100_000
	tpccStockPerW     = 100_000
	tpccInitialOrders = 3000
	tpccUndelivered   = 900 // last 900 orders per district start undelivered
	tpccOrderKeySpan  = 10_000_000
)

// NewTPCC returns a TPC-C instance with the given warehouse count.
func NewTPCC(warehouses int) *TPCC {
	if warehouses < 1 {
		warehouses = 1
	}
	nd := warehouses * tpccDistrictsPerW
	t := &TPCC{
		Warehouses: warehouses,
		nextOID:    make([]int64, nd),
		oldestNew:  make([]int64, nd),
	}
	for i := range t.nextOID {
		t.nextOID[i] = tpccInitialOrders + 1
		t.oldestNew[i] = tpccInitialOrders - tpccUndelivered + 1
	}
	return t
}

// Key-space mapping helpers (1-based warehouse/district/customer ids).
func districtIdx(w, d int) int64 { return int64((w-1)*tpccDistrictsPerW + (d - 1)) }

func districtKeyID(w, d int) int64 { return districtIdx(w, d) + 1 }

func customerKeyID(w, d, c int) int64 {
	return districtIdx(w, d)*tpccCustomersPerD + int64(c)
}

func stockKeyID(w, i int) int64 { return int64(w-1)*tpccStockPerW + int64(i) }

func orderKeyID(w, d int, o int64) int64 {
	return districtIdx(w, d)*tpccOrderKeySpan + o
}

func orderLineKeyID(orderKey int64, ol int) int64 { return orderKey*16 + int64(ol) }

func schema(name string, keyCol int, cols ...engine.Column) *engine.Schema {
	avg := 0
	for _, c := range cols {
		switch c.Kind {
		case engine.KindString:
			avg += 24
		default:
			avg += 8
		}
	}
	return &engine.Schema{Name: name, Cols: cols, KeyCols: []int{keyCol}, AvgRowBytes: avg + 8}
}

func col(name string, k engine.Kind) engine.Column { return engine.Column{Name: name, Kind: k} }

// CreateTables registers the nine tables and performs the initial load.
func (t *TPCC) CreateTables(db *engine.DB, seed int64) error {
	W := t.Warehouses
	mk := func(s *engine.Schema, rows int64, gen engine.RowGen) error {
		_, err := db.CreateTable(s, rows, gen)
		return err
	}

	err := mk(schema("warehouse", 0,
		col("W_ID", engine.KindInt), col("W_NAME", engine.KindString),
		col("W_TAX", engine.KindFloat), col("W_YTD", engine.KindFloat)),
		int64(W), func(id int64) engine.Row {
			r := rng.QuickOf(seed, 0x7a1, id)
			return engine.Row{engine.Int(id), engine.Str("wh-" + r.Letters(6)),
				engine.Float(r.Float64() * 0.2), engine.Float(300_000)}
		})
	if err != nil {
		return err
	}

	err = mk(schema("district", 0,
		col("D_KEY", engine.KindInt), col("D_W_ID", engine.KindInt),
		col("D_TAX", engine.KindFloat), col("D_YTD", engine.KindFloat),
		col("D_NEXT_O_ID", engine.KindInt)),
		int64(W*tpccDistrictsPerW), func(id int64) engine.Row {
			r := rng.QuickOf(seed, 0xd15, id)
			w := (id-1)/tpccDistrictsPerW + 1
			return engine.Row{engine.Int(id), engine.Int(w),
				engine.Float(r.Float64() * 0.2), engine.Float(30_000),
				engine.Int(tpccInitialOrders + 1)}
		})
	if err != nil {
		return err
	}

	err = mk(schema("customer", 0,
		col("C_KEY", engine.KindInt), col("C_D_KEY", engine.KindInt),
		col("C_NAME", engine.KindString), col("C_BALANCE", engine.KindFloat),
		col("C_YTD_PAYMENT", engine.KindFloat), col("C_PAYMENT_CNT", engine.KindInt),
		col("C_DELIVERY_CNT", engine.KindInt)),
		int64(W*tpccDistrictsPerW*tpccCustomersPerD), func(id int64) engine.Row {
			r := rng.QuickOf(seed, 0xc57, id)
			dkey := (id-1)/tpccCustomersPerD + 1
			return engine.Row{engine.Int(id), engine.Int(dkey),
				engine.Str("cust-" + r.Letters(10)), engine.Float(-10),
				engine.Float(10), engine.Int(1), engine.Int(0)}
		})
	if err != nil {
		return err
	}

	err = mk(schema("item", 0,
		col("I_ID", engine.KindInt), col("I_NAME", engine.KindString),
		col("I_PRICE", engine.KindFloat)),
		tpccItems, func(id int64) engine.Row {
			r := rng.QuickOf(seed, 0x17e, id)
			return engine.Row{engine.Int(id), engine.Str("item-" + r.Letters(8)),
				engine.Float(1 + r.Float64()*99)}
		})
	if err != nil {
		return err
	}

	err = mk(schema("stock", 0,
		col("S_KEY", engine.KindInt), col("S_QUANTITY", engine.KindInt),
		col("S_YTD", engine.KindInt), col("S_ORDER_CNT", engine.KindInt)),
		int64(W)*tpccStockPerW, func(id int64) engine.Row {
			r := rng.QuickOf(seed, 0x57c, id)
			return engine.Row{engine.Int(id), engine.Int(10 + r.Int63n(91)),
				engine.Int(0), engine.Int(0)}
		})
	if err != nil {
		return err
	}

	// Order-side tables hold sparse computed keys, so they load with real
	// inserts rather than a dense generator.
	if err := mk(schema("orders", 0,
		col("O_KEY", engine.KindInt), col("O_D_KEY", engine.KindInt),
		col("O_C_ID", engine.KindInt), col("O_CARRIER_ID", engine.KindInt),
		col("O_OL_CNT", engine.KindInt), col("O_ENTRY_D", engine.KindInt)),
		0, nil); err != nil {
		return err
	}
	if err := mk(schema("new_order", 0, col("NO_KEY", engine.KindInt)), 0, nil); err != nil {
		return err
	}
	if err := mk(schema("order_line", 0,
		col("OL_KEY", engine.KindInt), col("OL_O_KEY", engine.KindInt),
		col("OL_I_ID", engine.KindInt), col("OL_QUANTITY", engine.KindInt),
		col("OL_AMOUNT", engine.KindFloat), col("OL_DELIVERY_D", engine.KindInt)),
		0, nil); err != nil {
		return err
	}
	if err := mk(schema("history", 0,
		col("H_ID", engine.KindInt), col("H_C_KEY", engine.KindInt),
		col("H_AMOUNT", engine.KindFloat)), 0, nil); err != nil {
		return err
	}
	return t.loadOrders(db, seed)
}

// loadOrders populates the initial 3000 orders per district, ten lines
// each, with the last 900 undelivered.
func (t *TPCC) loadOrders(db *engine.DB, seed int64) error {
	orders := db.Table("orders")
	newOrder := db.Table("new_order")
	orderLine := db.Table("order_line")
	for w := 1; w <= t.Warehouses; w++ {
		for d := 1; d <= tpccDistrictsPerW; d++ {
			r := rng.QuickOf(seed, 0x04d, districtIdx(w, d))
			for o := int64(1); o <= tpccInitialOrders; o++ {
				okey := orderKeyID(w, d, o)
				carrier := int64(1 + r.Int63n(10))
				if o > tpccInitialOrders-tpccUndelivered {
					carrier = 0 // undelivered
				}
				row := engine.Row{
					engine.Int(okey), engine.Int(districtKeyID(w, d)),
					engine.Int(customerKeyID(w, d, int(1+r.Int63n(tpccCustomersPerD)))),
					engine.Int(carrier), engine.Int(10), engine.Int(0),
				}
				if _, err := orders.Insert(engine.IntKey(okey), row); err != nil {
					return fmt.Errorf("tpcc load orders: %w", err)
				}
				if carrier == 0 {
					if _, err := newOrder.Insert(engine.IntKey(okey), engine.Row{engine.Int(okey)}); err != nil {
						return fmt.Errorf("tpcc load new_order: %w", err)
					}
				}
				for ol := 1; ol <= 10; ol++ {
					olkey := orderLineKeyID(okey, ol)
					lrow := engine.Row{
						engine.Int(olkey), engine.Int(okey),
						engine.Int(1 + r.Int63n(tpccItems)),
						engine.Int(1 + r.Int63n(9)),
						engine.Float(r.Float64() * 999),
						engine.Int(0),
					}
					if _, err := orderLine.Insert(engine.IntKey(olkey), lrow); err != nil {
						return fmt.Errorf("tpcc load order_line: %w", err)
					}
				}
			}
		}
	}
	return nil
}

// Txn executes one TPC-C transaction at the standard mix.
func (t *TPCC) Txn(p *sim.Proc, n *node.Node, src *rng.Source) error {
	x := src.Intn(100)
	switch {
	case x < 45:
		return t.NewOrder(p, n, src)
	case x < 88:
		return t.Payment(p, n, src)
	case x < 92:
		return t.OrderStatus(p, n, src)
	case x < 96:
		return t.Delivery(p, n, src)
	default:
		return t.StockLevel(p, n, src)
	}
}

func (t *TPCC) randWD(src *rng.Source) (int, int) {
	return src.Intn(t.Warehouses) + 1, src.Intn(tpccDistrictsPerW) + 1
}

// NewOrder places an order: read warehouse/district/customer, advance
// D_NEXT_O_ID, insert the order and its lines, and update stock for each
// (sorted) item.
func (t *TPCC) NewOrder(p *sim.Proc, n *node.Node, src *rng.Source) error {
	w, d := t.randWD(src)
	didx := districtIdx(w, d)
	c := src.Intn(tpccCustomersPerD) + 1
	nItems := 5 + src.Intn(11)
	items := make([]int64, 0, nItems)
	seen := map[int64]bool{}
	for len(items) < nItems {
		i := src.Int63n(tpccItems) + 1
		if !seen[i] {
			seen[i] = true
			items = append(items, i)
		}
	}
	// Lock stock rows in sorted order to stay deadlock-free across
	// concurrent New-Orders.
	sort.Slice(items, func(a, b int) bool { return items[a] < items[b] })

	tx, err := n.Begin(p)
	if err != nil {
		return err
	}
	warehouse := n.DB.Table("warehouse")
	district := n.DB.Table("district")
	customer := n.DB.Table("customer")
	item := n.DB.Table("item")
	stock := n.DB.Table("stock")
	orders := n.DB.Table("orders")
	newOrder := n.DB.Table("new_order")
	orderLine := n.DB.Table("order_line")

	if _, err := tx.Get(warehouse, engine.IntKey(int64(w))); err != nil {
		tx.Abort()
		return err
	}
	drow, err := tx.GetForUpdate(district, engine.IntKey(districtKeyID(w, d)))
	if err != nil {
		tx.Abort()
		return err
	}
	oid := drow[4].I
	dupd := drow.Clone()
	dupd[4] = engine.Int(oid + 1)
	if err := tx.Update(district, engine.IntKey(districtKeyID(w, d)), dupd); err != nil {
		tx.Abort()
		return err
	}
	if _, err := tx.Get(customer, engine.IntKey(customerKeyID(w, d, c))); err != nil {
		tx.Abort()
		return err
	}

	okey := orderKeyID(w, d, oid)
	orow := engine.Row{
		engine.Int(okey), engine.Int(districtKeyID(w, d)),
		engine.Int(customerKeyID(w, d, c)), engine.Int(0),
		engine.Int(int64(nItems)), engine.Int(p.Now().UnixMicro()),
	}
	if err := tx.Insert(orders, orow); err != nil {
		tx.Abort()
		return err
	}
	if err := tx.Insert(newOrder, engine.Row{engine.Int(okey)}); err != nil {
		tx.Abort()
		return err
	}
	for idx, iid := range items {
		irow, err := tx.Get(item, engine.IntKey(iid))
		if err != nil {
			tx.Abort()
			return err
		}
		skey := engine.IntKey(stockKeyID(w, int(iid)))
		srow, err := tx.GetForUpdate(stock, skey)
		if err != nil {
			tx.Abort()
			return err
		}
		qty := int64(1 + src.Intn(9))
		supd := srow.Clone()
		newQty := srow[1].I - qty
		if newQty < 10 {
			newQty += 91
		}
		supd[1] = engine.Int(newQty)
		supd[2] = engine.Int(srow[2].I + qty)
		supd[3] = engine.Int(srow[3].I + 1)
		if err := tx.Update(stock, skey, supd); err != nil {
			tx.Abort()
			return err
		}
		olkey := orderLineKeyID(okey, idx+1)
		lrow := engine.Row{
			engine.Int(olkey), engine.Int(okey), engine.Int(iid),
			engine.Int(qty), engine.Float(float64(qty) * irow[2].F), engine.Int(0),
		}
		if err := tx.Insert(orderLine, lrow); err != nil {
			tx.Abort()
			return err
		}
	}
	if err := tx.Commit(); err != nil {
		return err
	}
	if oid >= t.nextOID[didx] {
		t.nextOID[didx] = oid + 1
	}
	return nil
}

// Payment records a customer payment against warehouse/district/customer
// YTD totals and appends a history row.
func (t *TPCC) Payment(p *sim.Proc, n *node.Node, src *rng.Source) error {
	w, d := t.randWD(src)
	c := src.Intn(tpccCustomersPerD) + 1
	amount := 1 + src.Float64()*4999

	tx, err := n.Begin(p)
	if err != nil {
		return err
	}
	warehouse := n.DB.Table("warehouse")
	district := n.DB.Table("district")
	customer := n.DB.Table("customer")
	history := n.DB.Table("history")

	wrow, err := tx.GetForUpdate(warehouse, engine.IntKey(int64(w)))
	if err != nil {
		tx.Abort()
		return err
	}
	wupd := wrow.Clone()
	wupd[3] = engine.Float(wrow[3].F + amount)
	if err := tx.Update(warehouse, engine.IntKey(int64(w)), wupd); err != nil {
		tx.Abort()
		return err
	}
	dkey := engine.IntKey(districtKeyID(w, d))
	drow, err := tx.GetForUpdate(district, dkey)
	if err != nil {
		tx.Abort()
		return err
	}
	dupd := drow.Clone()
	dupd[3] = engine.Float(drow[3].F + amount)
	if err := tx.Update(district, dkey, dupd); err != nil {
		tx.Abort()
		return err
	}
	ckey := engine.IntKey(customerKeyID(w, d, c))
	crow, err := tx.GetForUpdate(customer, ckey)
	if err != nil {
		tx.Abort()
		return err
	}
	cupd := crow.Clone()
	cupd[3] = engine.Float(crow[3].F - amount)
	cupd[4] = engine.Float(crow[4].F + amount)
	cupd[5] = engine.Int(crow[5].I + 1)
	if err := tx.Update(customer, ckey, cupd); err != nil {
		tx.Abort()
		return err
	}
	hrow := engine.Row{
		engine.Int(history.NextAutoID()),
		engine.Int(customerKeyID(w, d, c)),
		engine.Float(amount),
	}
	if err := tx.Insert(history, hrow); err != nil {
		tx.Abort()
		return err
	}
	return tx.Commit()
}

// OrderStatus reads a customer's most recent known order and its lines.
func (t *TPCC) OrderStatus(p *sim.Proc, n *node.Node, src *rng.Source) error {
	w, d := t.randWD(src)
	didx := districtIdx(w, d)
	maxO := t.nextOID[didx] - 1
	o := 1 + src.Int63n(maxO)
	okey := orderKeyID(w, d, o)

	tx, err := n.Begin(p)
	if err != nil {
		return err
	}
	orders := n.DB.Table("orders")
	customer := n.DB.Table("customer")
	orderLine := n.DB.Table("order_line")

	orow, err := tx.Get(orders, engine.IntKey(okey))
	if errors.Is(err, engine.ErrRowNotFound) {
		return tx.Commit() // order id raced ahead of replication of state
	}
	if err != nil {
		tx.Abort()
		return err
	}
	if _, err := tx.Get(customer, engine.IntKey(orow[2].I)); err != nil {
		tx.Abort()
		return err
	}
	cnt := int(orow[4].I)
	for ol := 1; ol <= cnt; ol++ {
		if _, err := tx.Get(orderLine, engine.IntKey(orderLineKeyID(okey, ol))); err != nil &&
			!errors.Is(err, engine.ErrRowNotFound) {
			tx.Abort()
			return err
		}
	}
	return tx.Commit()
}

// Delivery delivers the oldest undelivered order in each district of one
// warehouse: consume new_order, stamp the carrier, mark lines delivered,
// and credit the customer.
func (t *TPCC) Delivery(p *sim.Proc, n *node.Node, src *rng.Source) error {
	w := src.Intn(t.Warehouses) + 1
	carrier := int64(1 + src.Intn(10))

	tx, err := n.Begin(p)
	if err != nil {
		return err
	}
	orders := n.DB.Table("orders")
	newOrder := n.DB.Table("new_order")
	orderLine := n.DB.Table("order_line")
	customer := n.DB.Table("customer")

	for d := 1; d <= tpccDistrictsPerW; d++ {
		didx := districtIdx(w, d)
		o := t.oldestNew[didx]
		if o >= t.nextOID[didx] {
			continue
		}
		okey := orderKeyID(w, d, o)
		if err := tx.Delete(newOrder, engine.IntKey(okey)); err != nil {
			if errors.Is(err, engine.ErrRowNotFound) {
				t.oldestNew[didx]++
				continue
			}
			tx.Abort()
			return err
		}
		orow, err := tx.GetForUpdate(orders, engine.IntKey(okey))
		if err != nil {
			tx.Abort()
			return err
		}
		oupd := orow.Clone()
		oupd[3] = engine.Int(carrier)
		if err := tx.Update(orders, engine.IntKey(okey), oupd); err != nil {
			tx.Abort()
			return err
		}
		var total float64
		cnt := int(orow[4].I)
		now := p.Now().UnixMicro()
		for ol := 1; ol <= cnt; ol++ {
			olk := engine.IntKey(orderLineKeyID(okey, ol))
			lrow, err := tx.Get(orderLine, olk)
			if errors.Is(err, engine.ErrRowNotFound) {
				continue
			}
			if err != nil {
				tx.Abort()
				return err
			}
			total += lrow[4].F
			lupd := lrow.Clone()
			lupd[5] = engine.Int(now)
			if err := tx.Update(orderLine, olk, lupd); err != nil {
				tx.Abort()
				return err
			}
		}
		ckey := engine.IntKey(orow[2].I)
		crow, err := tx.GetForUpdate(customer, ckey)
		if err != nil {
			tx.Abort()
			return err
		}
		cupd := crow.Clone()
		cupd[3] = engine.Float(crow[3].F + total)
		cupd[6] = engine.Int(crow[6].I + 1)
		if err := tx.Update(customer, ckey, cupd); err != nil {
			tx.Abort()
			return err
		}
		t.oldestNew[didx]++
	}
	return tx.Commit()
}

// StockLevel counts recently-sold items below a stock threshold in one
// district — the classic read-heavy TPC-C transaction.
func (t *TPCC) StockLevel(p *sim.Proc, n *node.Node, src *rng.Source) error {
	w, d := t.randWD(src)
	didx := districtIdx(w, d)
	threshold := int64(10 + src.Intn(11))

	tx, err := n.Begin(p)
	if err != nil {
		return err
	}
	orderLine := n.DB.Table("order_line")
	stock := n.DB.Table("stock")

	hi := t.nextOID[didx] - 1
	lo := hi - 19
	if lo < 1 {
		lo = 1
	}
	seen := map[int64]bool{}
	below := 0
	for o := lo; o <= hi; o++ {
		okey := orderKeyID(w, d, o)
		for ol := 1; ol <= 10; ol++ {
			lrow, err := tx.Get(orderLine, engine.IntKey(orderLineKeyID(okey, ol)))
			if errors.Is(err, engine.ErrRowNotFound) {
				break
			}
			if err != nil {
				tx.Abort()
				return err
			}
			iid := lrow[2].I
			if seen[iid] {
				continue
			}
			seen[iid] = true
			srow, err := tx.Get(stock, engine.IntKey(stockKeyID(w, int(iid))))
			if err != nil {
				tx.Abort()
				return err
			}
			if srow[1].I < threshold {
				below++
			}
		}
	}
	return tx.Commit()
}
