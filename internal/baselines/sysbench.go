package baselines

import (
	"errors"
	"fmt"

	"cloudybench/internal/engine"
	"cloudybench/internal/node"
	"cloudybench/internal/rng"
	"cloudybench/internal/sim"
)

// SysBench models the sysbench oltp_read_write workload the paper compares
// against (§III-I): independent point reads and writes over sbtest tables
// with no cross-operation transaction logic. The paper's configuration —
// three tables of 300,000 rows (~226 MB) — is the default.
type SysBench struct {
	Tables    int
	RowsPerTB int64
	// Mix per "transaction event", following sysbench defaults scaled
	// down: point selects dominate, plus indexed/non-indexed updates and
	// a delete+insert pair.
	PointSelects   int
	IndexUpdates   int
	NonIndexUpdate int
	DeleteInserts  int
}

// NewSysBench returns the paper's configuration.
func NewSysBench() *SysBench {
	return &SysBench{
		Tables: 3, RowsPerTB: 300_000,
		PointSelects: 10, IndexUpdates: 1, NonIndexUpdate: 1, DeleteInserts: 1,
	}
}

const sbRowBytes = 200 // id + k + c(120) + pad(60)

func sbSchema(i int) *engine.Schema {
	return &engine.Schema{
		Name: fmt.Sprintf("sbtest%d", i+1),
		Cols: []engine.Column{
			{Name: "id", Kind: engine.KindInt},
			{Name: "k", Kind: engine.KindInt},
			{Name: "c", Kind: engine.KindString},
			{Name: "pad", Kind: engine.KindString},
		},
		KeyCols:     []int{0},
		AvgRowBytes: sbRowBytes,
	}
}

// CreateTables registers the sbtest tables with generator-backed rows.
func (sb *SysBench) CreateTables(db *engine.DB, seed int64) error {
	for i := 0; i < sb.Tables; i++ {
		tag := uint64(0x5B7E57 + i)
		gen := func(id int64) engine.Row {
			r := rng.QuickOf(seed, tag, id)
			return engine.Row{
				engine.Int(id),
				engine.Int(r.Int63n(sb.RowsPerTB) + 1),
				engine.Str(r.Letters(32)),
				engine.Str(r.Letters(16)),
			}
		}
		if _, err := db.CreateTable(sbSchema(i), sb.RowsPerTB, gen); err != nil {
			return err
		}
	}
	return nil
}

// RawBytes estimates the dataset size (the paper cites 226 MB).
func (sb *SysBench) RawBytes() int64 {
	return int64(sb.Tables) * sb.RowsPerTB * sbRowBytes
}

// Txn executes one oltp_read_write event against the node.
func (sb *SysBench) Txn(p *sim.Proc, n *node.Node, src *rng.Source) error {
	tx, err := n.Begin(p)
	if err != nil {
		return err
	}
	pick := func() (*engine.Table, engine.Key) {
		tbl := n.DB.Table(fmt.Sprintf("sbtest%d", src.Intn(sb.Tables)+1))
		id := src.Int63n(sb.RowsPerTB) + 1
		return tbl, engine.IntKey(id)
	}
	for i := 0; i < sb.PointSelects; i++ {
		tbl, k := pick()
		if _, err := tx.Get(tbl, k); err != nil && !errors.Is(err, engine.ErrRowNotFound) {
			tx.Abort()
			return err
		}
	}
	for i := 0; i < sb.IndexUpdates+sb.NonIndexUpdate; i++ {
		tbl, k := pick()
		row, err := tx.GetForUpdate(tbl, k)
		if errors.Is(err, engine.ErrRowNotFound) {
			continue
		}
		if err != nil {
			tx.Abort()
			return err
		}
		upd := row.Clone()
		if i < sb.IndexUpdates {
			upd[1] = engine.Int(src.Int63n(sb.RowsPerTB) + 1)
		} else {
			upd[2] = engine.Str(src.Letters(32))
		}
		if err := tx.Update(tbl, k, upd); err != nil {
			tx.Abort()
			return err
		}
	}
	for i := 0; i < sb.DeleteInserts; i++ {
		tbl, k := pick()
		row, err := tx.GetForUpdate(tbl, k)
		if errors.Is(err, engine.ErrRowNotFound) {
			continue
		}
		if err != nil {
			tx.Abort()
			return err
		}
		if err := tx.Delete(tbl, k); err != nil {
			tx.Abort()
			return err
		}
		if err := tx.Insert(tbl, row.Clone()); err != nil {
			tx.Abort()
			return err
		}
	}
	return tx.Commit()
}
