// Package metrics implements the paper's "PERFECT" metric framework
// (§II-G): Productivity, two Elasticity scores, Recovery, Fail-over,
// Consistency (replication lag), Tenancy, and the unified O-Score.
//
// Conventions: TPS values are transactions/second; costs are dollars per
// minute of resource-unit cost (the unit Table V reports); F and R are
// seconds; C is reported in milliseconds but enters the O-Score in seconds
// (reproducing Table IX's published values requires C in seconds — e.g.
// CDB1's O = lg(131906·52705·16024·3 / (9·6·0.178)) = 13.5, matching the
// paper's 13.48).
package metrics

import (
	"math"
	"time"
)

// PScore is the cost-aware productivity of equation (1): average TPS per
// dollar-per-minute of total resource cost.
func PScore(avgTPS, costPerMinute float64) float64 {
	if costPerMinute <= 0 {
		return 0
	}
	return avgTPS / costPerMinute
}

// E1Score is the scale-up/down elasticity of equation (2): average TPS per
// dollar-per-minute of the elasticity-relevant resources (CPU, memory,
// IOPS).
func E1Score(avgTPS, cpuMemIOPSCostPerMinute float64) float64 {
	if cpuMemIOPSCostPerMinute <= 0 {
		return 0
	}
	return avgTPS / cpuMemIOPSCostPerMinute
}

// FScore is equation (3): the mean time from failure injection to service
// recovery across k recovery phases.
func FScore(phases []time.Duration) time.Duration {
	return meanDuration(phases)
}

// RScore is equation (4): the mean time from service recovery to TPS
// recovery across k recovery phases.
func RScore(phases []time.Duration) time.Duration {
	return meanDuration(phases)
}

func meanDuration(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	var total time.Duration
	for _, d := range ds {
		total += d
	}
	return total / time.Duration(len(ds))
}

// E2Score is equation (5): average TPS improvement per added RO node,
// scaled by δ. tps[i] is the throughput with i read-only nodes, so tps
// must hold λ+1 entries (including the zero-replica baseline).
func E2Score(tps []float64, delta float64) float64 {
	if len(tps) < 2 || delta <= 0 {
		return 0
	}
	lambda := float64(len(tps) - 1)
	var sum float64
	for i := 1; i < len(tps); i++ {
		sum += (tps[i] - tps[i-1]) / delta
	}
	return sum / lambda
}

// CScore is equation (6): (T_insert + T_update + T_delete) / λ, the summed
// mean per-DML replication lags over the replica count. Smaller is faster.
func CScore(insert, update, del time.Duration, replicas int) time.Duration {
	if replicas <= 0 {
		replicas = 1
	}
	return (insert + update + del) / time.Duration(replicas)
}

// TScore is equation (7): geometric mean of per-tenant TPS divided by the
// summed per-tenant resource cost (dollars per minute).
func TScore(tenantTPS []float64, totalCostPerMinute float64) float64 {
	if len(tenantTPS) == 0 || totalCostPerMinute <= 0 {
		return 0
	}
	logSum := 0.0
	for _, tps := range tenantTPS {
		if tps <= 0 {
			return 0
		}
		logSum += math.Log(tps)
	}
	geo := math.Exp(logSum / float64(len(tenantTPS)))
	return geo / totalCostPerMinute
}

// OScore is equation (8): SF · lg(P·T·E1·E2 / (R·F·C)) with R, F, and C in
// seconds. Non-positive components yield NaN-free zero.
func OScore(sf, p, t, e1, e2 float64, r, f, c time.Duration) float64 {
	rs, fs, cs := r.Seconds(), f.Seconds(), c.Seconds()
	if p <= 0 || t <= 0 || e1 <= 0 || e2 <= 0 || rs <= 0 || fs <= 0 || cs <= 0 {
		return 0
	}
	return sf * math.Log10(p*t*e1*e2/(rs*fs*cs))
}

// FPartScore is the partition-tolerance extension of the F-Score: the mean
// time from partition injection to restored write service (MTTR) across
// runs. Like F, it rewards architectures that recover autonomously.
func FPartScore(phases []time.Duration) time.Duration {
	return meanDuration(phases)
}

// OScorePart extends equation (8) with the partition-recovery term: the
// denominator gains FPart seconds, so O' = SF · lg(P·T·E1·E2/(R·F·C·FPart)).
// A zero fpart (partition tolerance not measured) reduces to the published
// O-Score, keeping Table IX reproducible.
func OScorePart(sf, p, t, e1, e2 float64, r, f, c, fpart time.Duration) float64 {
	base := OScore(sf, p, t, e1, e2, r, f, c)
	if base == 0 || fpart <= 0 {
		return base
	}
	return base - sf*math.Log10(fpart.Seconds())
}

// Scores aggregates one SUT's full PERFECT row (Table IX).
type Scores struct {
	System string
	P      float64
	PStar  float64
	E1     float64
	E1Star float64
	R      time.Duration
	F      time.Duration
	E2     float64
	C      time.Duration
	T      float64
	TStar  float64
	SF     float64
	// FPart is the partition-tolerance extension: mean time from partition
	// injection to restored write service. Zero means not measured, and the
	// O-Score reduces to the paper's published form.
	FPart time.Duration
}

// O computes the unified metric from the RUC-based components.
func (s Scores) O() float64 {
	sf := s.SF
	if sf == 0 {
		sf = 1
	}
	return OScorePart(sf, s.P, s.T, s.E1, s.E2, s.R, s.F, s.C, s.FPart)
}

// OStar computes the unified metric from the actual-cost components.
func (s Scores) OStar() float64 {
	sf := s.SF
	if sf == 0 {
		sf = 1
	}
	return OScorePart(sf, s.PStar, s.TStar, s.E1Star, s.E2, s.R, s.F, s.C, s.FPart)
}
