package metrics

import (
	"math"
	"testing"
	"time"
)

func almost(got, want, tol float64) bool { return math.Abs(got-want) <= tol }

func TestPScoreMatchesTableV(t *testing.T) {
	// Table V, AWS RDS RO: TPS 22092 at $0.0437/min -> 505538.
	got := PScore(22092, 0.0437)
	if !almost(got, 505538, 1000) {
		t.Fatalf("P-Score = %v, want ~505538", got)
	}
	if PScore(100, 0) != 0 {
		t.Fatal("zero cost should yield 0")
	}
}

func TestE1Score(t *testing.T) {
	if got := E1Score(1000, 0.01); got != 100000 {
		t.Fatalf("E1 = %v", got)
	}
	if E1Score(1000, 0) != 0 {
		t.Fatal("zero cost")
	}
}

func TestFAndRScores(t *testing.T) {
	phases := []time.Duration{10 * time.Second, 20 * time.Second}
	if FScore(phases) != 15*time.Second {
		t.Fatal("F mean")
	}
	if RScore(nil) != 0 {
		t.Fatal("empty phases")
	}
}

func TestE2Score(t *testing.T) {
	// Paper: add RO nodes, TPS per node improvement / δ.
	// RDS E2=20: TPS went 17003 -> 36198 with one RO at δ~1000:
	// (36198-17003)/1000/1 = 19.2 ~ 20.
	got := E2Score([]float64{17003, 36198}, 1000)
	if !almost(got, 19.2, 0.1) {
		t.Fatalf("E2 = %v", got)
	}
	// Two replicas: average of increments.
	got = E2Score([]float64{100, 200, 260}, 10)
	if !almost(got, (10+6)/2.0, 1e-9) {
		t.Fatalf("E2 = %v", got)
	}
	if E2Score([]float64{100}, 10) != 0 || E2Score(nil, 10) != 0 {
		t.Fatal("degenerate inputs")
	}
}

func TestCScore(t *testing.T) {
	got := CScore(3*time.Millisecond, 2*time.Millisecond, time.Millisecond, 1)
	if got != 6*time.Millisecond {
		t.Fatalf("C = %v", got)
	}
	if CScore(6*time.Millisecond, 0, 0, 2) != 3*time.Millisecond {
		t.Fatal("replica division")
	}
	if CScore(time.Millisecond, 0, 0, 0) != time.Millisecond {
		t.Fatal("replica floor")
	}
}

func TestTScoreGeometricMean(t *testing.T) {
	// Table VII CDB2 pattern (a): tenants' geometric mean ~4200 at
	// $0.06/min -> 70008.
	got := TScore([]float64{4200, 4200, 4200}, 0.06)
	if !almost(got, 70000, 100) {
		t.Fatalf("T = %v", got)
	}
	// Geometric mean punishes imbalance at equal arithmetic mean:
	// geo(1, 9999) << geo(5000, 5000).
	unbalanced := TScore([]float64{1, 9999}, 0.06)
	balanced := TScore([]float64{5000, 5000}, 0.06)
	if unbalanced >= balanced {
		t.Fatalf("geo mean should punish imbalance: %v vs %v", unbalanced, balanced)
	}
	if TScore(nil, 1) != 0 || TScore([]float64{0, 5}, 1) != 0 {
		t.Fatal("degenerate inputs")
	}
}

func TestOScoreReproducesTableIX(t *testing.T) {
	// CDB1 row: P=131906, T=52705, E1=16024, E2=3, R=9s, F=6s, C=178ms
	// -> paper O-Score 13.48.
	got := OScore(1, 131906, 52705, 16024, 3, 9*time.Second, 6*time.Second, 178*time.Millisecond)
	if !almost(got, 13.48, 0.1) {
		t.Fatalf("CDB1 O-Score = %v, want ~13.48", got)
	}
	// CDB4 row: P=153566, T=75305, E1=80565, E2=10, R=3.5s, F=2.5s,
	// C=1.5ms -> paper 17.7.
	got = OScore(1, 153566, 75305, 80565, 10, 3500*time.Millisecond, 2500*time.Millisecond, 1500*time.Microsecond)
	if !almost(got, 17.7, 0.2) {
		t.Fatalf("CDB4 O-Score = %v, want ~17.7", got)
	}
	// Degenerate components must not produce NaN/Inf.
	if OScore(1, 0, 1, 1, 1, time.Second, time.Second, time.Second) != 0 {
		t.Fatal("zero component should yield 0")
	}
}

func TestScoresAggregation(t *testing.T) {
	s := Scores{
		System: "cdb4",
		P:      153566, PStar: 19124,
		E1: 80565, E1Star: 52241,
		R: 3500 * time.Millisecond, F: 2500 * time.Millisecond,
		E2: 10, C: 1500 * time.Microsecond,
		T: 75305, TStar: 13806,
	}
	if !almost(s.O(), 17.7, 0.2) {
		t.Fatalf("O = %v", s.O())
	}
	// Paper O* for CDB4 = 15.87.
	if !almost(s.OStar(), 15.87, 0.2) {
		t.Fatalf("O* = %v", s.OStar())
	}
	// SF scaling multiplies the score.
	s.SF = 2
	if !almost(s.O(), 2*17.7, 0.5) {
		t.Fatalf("SF-scaled O = %v", s.O())
	}
}

func TestFPartExtendsOScore(t *testing.T) {
	if got := FPartScore([]time.Duration{6 * time.Second, 10 * time.Second}); got != 8*time.Second {
		t.Fatalf("FPart = %v, want 8s", got)
	}
	if FPartScore(nil) != 0 {
		t.Fatal("empty FPart should be 0")
	}
	base := OScore(1, 100, 100, 100, 100, time.Second, time.Second, time.Second)
	// Zero FPart (partition tolerance not measured) reduces to the published
	// form — Table IX stays reproducible.
	if got := OScorePart(1, 100, 100, 100, 100, time.Second, time.Second, time.Second, 0); got != base {
		t.Fatalf("OScorePart with zero fpart = %v, want base %v", got, base)
	}
	// 10s of partition recovery subtracts exactly one decade.
	if got := OScorePart(1, 100, 100, 100, 100, time.Second, time.Second, time.Second, 10*time.Second); !almost(got, base-1, 1e-9) {
		t.Fatalf("OScorePart = %v, want %v", got, base-1)
	}
	// A zeroed component still yields a NaN-free zero.
	if got := OScorePart(1, 0, 100, 100, 100, time.Second, time.Second, time.Second, 10*time.Second); got != 0 {
		t.Fatalf("OScorePart with zero P = %v, want 0", got)
	}
	// The aggregate picks FPart up through O() and O*().
	s := Scores{P: 100, E1: 100, E2: 100, T: 100,
		PStar: 100, E1Star: 100, TStar: 100,
		R: time.Second, F: time.Second, C: time.Second}
	without := s.O()
	s.FPart = 10 * time.Second
	if got := s.O(); !almost(got, without-1, 1e-9) {
		t.Fatalf("Scores.O with FPart = %v, want %v", got, without-1)
	}
	if got := s.OStar(); !almost(got, without-1, 1e-9) {
		t.Fatalf("Scores.OStar with FPart = %v, want %v", got, without-1)
	}
}
