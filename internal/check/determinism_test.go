package check

import (
	"reflect"
	"testing"
	"time"

	"cloudybench/internal/core"
	"cloudybench/internal/engine"
	"cloudybench/internal/sim"
)

// TestConservationDetailsGolden is the regression guard for the sort that
// detlint's maporder rule forced into Conservation: the per-txn sums live
// in a map, Verdict.Details keeps only the first maxDetails violations,
// and Verdict.String surfaces Details[0] in the chaos report — so before
// the sort, *which* violations a report showed depended on map iteration
// order. With more violating transactions than the Details cap, the golden
// below only holds if the walk is in sorted txn order; repeated runs catch
// any relapse into map order (Go randomizes it per range).
func TestConservationDetailsGolden(t *testing.T) {
	build := func() *Recorder {
		rec := NewRecorder()
		// Eight committed transactions that each credit a customer without
		// paying an order — every one violates conservation. Deliberately
		// out-of-order txn ids so insertion order != numeric order.
		cust := engine.Row{engine.Int(1), engine.Str("c"), engine.Float(100), engine.Int(0)}
		credited := cust.Clone()
		credited[2] = engine.Float(150)
		for _, txn := range []uint64{11, 3, 7, 1, 9, 5, 12, 2} {
			rec.OnWrite(0, txn, core.TableCustomer, engine.IntKey(1), cust, credited)
			rec.OnCommit(0, txn)
		}
		return rec
	}

	golden := []string{
		"txn 1: touched customer=true orders=false — payment must touch both",
		"txn 2: touched customer=true orders=false — payment must touch both",
		"txn 3: touched customer=true orders=false — payment must touch both",
		"txn 5: touched customer=true orders=false — payment must touch both",
		"txn 7: touched customer=true orders=false — payment must touch both",
	}
	for run := 0; run < 25; run++ {
		v := Conservation(build())
		if v.Passed {
			t.Fatal("conservation unexpectedly passed")
		}
		if v.Checked != 8 {
			t.Fatalf("run %d: checked %d txns, want 8", run, v.Checked)
		}
		if !reflect.DeepEqual(v.Details, golden) {
			t.Fatalf("run %d: details depend on iteration order:\ngot  %q\nwant %q", run, v.Details, golden)
		}
		if got := v.String(); got != "FAIL: "+golden[0] {
			t.Fatalf("run %d: rendered verdict %q, want %q", run, got, "FAIL: "+golden[0])
		}
	}
}

// TestRowBalanceDetailsSorted covers the same hazard on the table map:
// RowBalance walks db.Tables() — a map — and its failure details must come
// out in table-name order every run.
func TestRowBalanceDetailsSorted(t *testing.T) {
	db, rec := brokenSalesDB(t)
	for run := 0; run < 25; run++ {
		v := RowBalance(rec, db)
		if v.Passed {
			t.Fatal("row balance unexpectedly passed")
		}
		want := []string{
			"table customer: live rows 4, want base 4 +1 committed net inserts = 5",
			"table orderline: live rows 8, want base 8 +1 committed net inserts = 9",
			"table orders: live rows 4, want base 4 +1 committed net inserts = 5",
		}
		if !reflect.DeepEqual(v.Details, want) {
			t.Fatalf("run %d: details depend on iteration order:\ngot  %q\nwant %q", run, v.Details, want)
		}
	}
}

// brokenSalesDB fabricates a history claiming one committed insert per
// table that never reached the database, so every table fails row balance.
func brokenSalesDB(t *testing.T) (*engine.DB, *Recorder) {
	t.Helper()
	db := salesDB(sim.New(time.Unix(0, 0)))
	rec := NewRecorder()
	row := engine.Row{engine.Int(99)}
	for i, table := range []string{core.TableOrderline, core.TableCustomer, core.TableOrders} {
		txn := uint64(i + 1)
		rec.OnWrite(0, txn, table, engine.IntKey(99), nil, row)
		rec.OnCommit(0, txn)
	}
	return db, rec
}
