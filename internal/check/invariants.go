package check

import (
	"bytes"
	"fmt"
	"math"
	"sort"

	"cloudybench/internal/core"
	"cloudybench/internal/engine"
)

// Verdict is the outcome of one invariant check.
type Verdict struct {
	Name    string
	Passed  bool
	Checked int      // items the check examined (txns, reads, keys, ...)
	Details []string // first few violations, for the report
}

const maxDetails = 5

func (v *Verdict) fail(format string, args ...any) {
	v.Passed = false
	if len(v.Details) < maxDetails {
		v.Details = append(v.Details, fmt.Sprintf(format, args...))
	}
}

// String renders "PASS" or "FAIL (first violation)".
func (v Verdict) String() string {
	if v.Passed {
		return fmt.Sprintf("PASS (%d checked)", v.Checked)
	}
	if len(v.Details) > 0 {
		return "FAIL: " + v.Details[0]
	}
	return "FAIL"
}

// Conservation verifies the T2 money-conservation invariant over the sales
// schema: within every committed transaction, the total credit added to
// CUSTOMER rows equals the O_TOTALAMOUNT of the ORDERS rows the same
// transaction marked PAID — money moves, it is never created or destroyed.
// A transaction that credits a customer without paying an order (or vice
// versa with a mismatched amount) is a violation.
func Conservation(h *Recorder) Verdict {
	v := Verdict{Name: "conservation", Passed: true}
	committed := h.committedTxns()

	custCredit := core.CustomerSchema().ColIndex("C_CREDIT")
	ordAmount := core.OrdersSchema().ColIndex("O_TOTALAMOUNT")
	ordStatus := core.OrdersSchema().ColIndex("O_STATUS")

	type txnSums struct {
		creditDelta float64
		paidAmount  float64
		touchedCust bool
		touchedOrd  bool
	}
	sums := make(map[uint64]*txnSums)
	get := func(txn uint64) *txnSums {
		s := sums[txn]
		if s == nil {
			s = &txnSums{}
			sums[txn] = s
		}
		return s
	}

	for i := range h.events {
		ev := &h.events[i]
		if ev.Kind != EvWrite || !committed[ev.Txn] {
			continue
		}
		switch ev.Table {
		case core.TableCustomer:
			s := get(ev.Txn)
			s.touchedCust = true
			if ev.Before == nil || ev.After == nil {
				v.fail("txn %d: customer rows must only be updated, saw insert/delete of key %x", ev.Txn, ev.Key)
				continue
			}
			s.creditDelta += ev.After[custCredit].F - ev.Before[custCredit].F
		case core.TableOrders:
			s := get(ev.Txn)
			s.touchedOrd = true
			if ev.Before == nil || ev.After == nil {
				v.fail("txn %d: order rows must only be updated, saw insert/delete of key %x", ev.Txn, ev.Key)
				continue
			}
			if ev.After[ordStatus].S != core.StatusPaid {
				v.fail("txn %d: order update left status %q, want %q", ev.Txn, ev.After[ordStatus].S, core.StatusPaid)
			}
			if ev.After[ordAmount].F != ev.Before[ordAmount].F {
				v.fail("txn %d: order amount changed %.2f -> %.2f", ev.Txn, ev.Before[ordAmount].F, ev.After[ordAmount].F)
			}
			s.paidAmount += ev.Before[ordAmount].F
		}
	}
	// Verdict.Details keeps only the first maxDetails violations, so the
	// iteration order here is visible in the chaos report: walk txns in
	// numeric order, not map order.
	txns := make([]uint64, 0, len(sums))
	for txn := range sums {
		txns = append(txns, txn)
	}
	sort.Slice(txns, func(i, j int) bool { return txns[i] < txns[j] })
	for _, txn := range txns {
		s := sums[txn]
		v.Checked++
		if s.touchedCust != s.touchedOrd {
			v.fail("txn %d: touched customer=%v orders=%v — payment must touch both", txn, s.touchedCust, s.touchedOrd)
			continue
		}
		if math.Abs(s.creditDelta-s.paidAmount) > 1e-6 {
			v.fail("txn %d: credited %.4f but paid orders total %.4f", txn, s.creditDelta, s.paidAmount)
		}
	}
	return v
}

// RowBalance verifies the row-count conservation invariant: for every table,
// the live row count must equal the base rows plus committed inserts minus
// committed deletes observed in the history (T1 grows ORDERLINE, T4 shrinks
// it; nothing else changes cardinality). Catches lost or double-applied
// writes on the primary.
func RowBalance(h *Recorder, db *engine.DB) Verdict {
	v := Verdict{Name: "row-balance", Passed: true}
	committed := h.committedTxns()

	net := make(map[string]int64)
	for i := range h.events {
		ev := &h.events[i]
		if ev.Kind != EvWrite || !committed[ev.Txn] {
			continue
		}
		switch {
		case ev.Before == nil && ev.After != nil:
			net[ev.Table]++
		case ev.Before != nil && ev.After == nil:
			net[ev.Table]--
		}
	}
	tables := db.Tables()
	for _, name := range sortedTableNames(tables) {
		t := tables[name]
		v.Checked++
		want := t.BaseRows() + net[name]
		if got := t.LiveRows(); got != want {
			v.fail("table %s: live rows %d, want base %d %+d committed net inserts = %d",
				name, got, t.BaseRows(), net[name], want)
		}
	}
	return v
}

// sortedTableNames fixes the walk order over a table map: failure details
// are truncated to maxDetails, so which tables get reported must not
// depend on map iteration order.
func sortedTableNames(m map[string]*engine.Table) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// ReadCommitted replays the recorded history and verifies the isolation
// contract of strict 2PL:
//
//   - every read observes either the reader's own pending write, the latest
//     committed value of the key, or (before the first committed write) the
//     key's immutable baseline;
//   - every write's before-image matches the value the key held at that
//     point — an interleaved uncommitted write from another transaction
//     (impossible under 2PL, symptomatic of a broken lock table) surfaces
//     as a before-image mismatch.
//
// Baselines are generator-backed and not visible in the history a priori,
// so the checker learns them: the first observation of an unwritten key
// fixes its baseline, and every later observation must agree.
func ReadCommitted(h *Recorder) Verdict {
	v := Verdict{Name: "read-committed", Passed: true}

	type keyState struct {
		known bool
		val   string
	}
	state := make(map[string]*keyState)
	pending := make(map[uint64]map[string]string)

	tk := func(table string, key engine.Key) string { return table + "\x00" + string(key) }
	expect := func(txn uint64, k string) (string, bool) {
		if p, ok := pending[txn][k]; ok {
			return p, true
		}
		if st, ok := state[k]; ok && st.known {
			return st.val, true
		}
		return "", false
	}
	learn := func(k, val string) {
		state[k] = &keyState{known: true, val: val}
	}

	for i := range h.events {
		ev := &h.events[i]
		k := tk(ev.Table, ev.Key)
		switch ev.Kind {
		case EvRead:
			v.Checked++
			got := encRow(ev.After)
			if want, ok := expect(ev.Txn, k); ok {
				if got != want {
					v.fail("seq %d txn %d: read of %s key %x saw a value that is neither the latest committed one nor its own write",
						ev.Seq, ev.Txn, ev.Table, ev.Key)
				}
			} else {
				learn(k, got)
			}
		case EvWrite:
			v.Checked++
			before := encRow(ev.Before)
			if want, ok := expect(ev.Txn, k); ok {
				if before != want {
					v.fail("seq %d txn %d: write to %s key %x has a stale before-image (lost update or lock violation)",
						ev.Seq, ev.Txn, ev.Table, ev.Key)
				}
			} else {
				learn(k, before)
			}
			if pending[ev.Txn] == nil {
				pending[ev.Txn] = make(map[string]string)
			}
			pending[ev.Txn][k] = encRow(ev.After)
		case EvCommit:
			for pk, val := range pending[ev.Txn] {
				learn(pk, val)
			}
			delete(pending, ev.Txn)
		case EvAbort:
			delete(pending, ev.Txn)
		}
	}
	return v
}

// Convergence verifies that a replica's replayed state matches the primary
// byte for byte after quiesce: identical live row counts and identical
// delta overlays (including tombstones — a missing tombstone is a lost
// delete). The caller must quiesce replication first (backlog drained).
func Convergence(name string, primary, replica *engine.DB) Verdict {
	v := Verdict{Name: "convergence/" + name, Passed: true}
	primaryTables := primary.Tables()
	for _, tname := range sortedTableNames(primaryTables) {
		pt := primaryTables[tname]
		rt := replica.Table(tname)
		if rt == nil {
			v.fail("table %s missing on replica", tname)
			continue
		}
		if pt.LiveRows() != rt.LiveRows() {
			v.fail("table %s: primary has %d live rows, replica %d", tname, pt.LiveRows(), rt.LiveRows())
		}
		type entry struct {
			key string
			val string
		}
		collect := func(t *engine.Table) []entry {
			var out []entry
			t.ScanDelta(func(k engine.Key, row engine.Row, tombstone bool) bool {
				val := "<tombstone>"
				if !tombstone {
					val = encRow(row)
				}
				out = append(out, entry{key: string(k), val: val})
				return true
			})
			return out
		}
		pd, rd := collect(pt), collect(rt)
		v.Checked += len(pd)
		if len(pd) != len(rd) {
			v.fail("table %s: primary delta has %d entries, replica %d", tname, len(pd), len(rd))
			continue
		}
		for i := range pd {
			if pd[i].key != rd[i].key {
				v.fail("table %s: delta key mismatch at entry %d", tname, i)
				break
			}
			if pd[i].val != rd[i].val {
				v.fail("table %s: row divergence at key %x", tname, []byte(pd[i].key))
				break
			}
		}
	}
	return v
}

// IndexCoherent verifies that every secondary index on every table of the
// database is an exact projection of the table's visible rows, byte for
// byte and in both directions: each visible row has exactly one index
// entry, and no entry points at a row that is gone or has moved to another
// value of the indexed column. Because replicas re-derive index contents
// from the replicated row stream, running this on each node (after quiesce
// for replicas) proves index maintenance survived rollbacks, fail-overs,
// and chaos without drifting from the data it summarizes.
func IndexCoherent(name string, db *engine.DB) Verdict {
	v := Verdict{Name: "index-coherent/" + name, Passed: true}
	tables := db.Tables()
	for _, tname := range sortedTableNames(tables) {
		t := tables[tname]
		for _, ix := range t.Indexes() {
			var want []engine.Key
			t.VisibleScan(func(pk engine.Key, r engine.Row) bool {
				want = append(want, ix.EntryKey(r[ix.Col], pk))
				return true
			})
			sort.Slice(want, func(i, j int) bool { return bytes.Compare(want[i], want[j]) < 0 })
			var got []engine.Key
			ix.Walk(func(ek, pk engine.Key) bool {
				got = append(got, append(engine.Key(nil), ek...))
				return true
			})
			v.Checked += len(want)
			if len(got) != len(want) {
				v.fail("index %s on %s: %d entries, table projects %d visible rows", ix.Name, tname, len(got), len(want))
				continue
			}
			for i := range got {
				if !bytes.Equal(got[i], want[i]) {
					v.fail("index %s on %s: entry %d is %x, projection says %x", ix.Name, tname, i, got[i], want[i])
					break
				}
			}
		}
	}
	return v
}

// AllPassed reports whether every verdict passed.
func AllPassed(vs []Verdict) bool {
	for _, v := range vs {
		if !v.Passed {
			return false
		}
	}
	return true
}
