package check

import (
	"strings"
	"testing"
	"time"

	"cloudybench/internal/storage"
)

// fenceHistory builds a healthy fail-over history: node rw commits under
// epoch 1, the fence advances, node ro0 commits under epoch 2, and a
// straggling rw commit is rejected.
func fenceHistory() *storage.Fence {
	f := storage.NewFence()
	f.SetRecording(true)
	if err := f.CheckCommit(1*time.Second, "rw", 1); err != nil {
		panic(err)
	}
	f.Advance(2 * time.Second)
	if err := f.CheckCommit(3*time.Second, "ro0", 2); err != nil {
		panic(err)
	}
	if err := f.CheckCommit(4*time.Second, "rw", 1); err == nil {
		panic("stale commit not fenced")
	}
	return f
}

func TestFenceInvariantsPassOnHealthyFailover(t *testing.T) {
	for _, v := range FenceVerdicts(fenceHistory()) {
		if !v.Passed {
			t.Errorf("%s: %s", v.Name, v)
		}
		if v.Checked == 0 {
			t.Errorf("%s: checked nothing — the invariant is vacuous", v.Name)
		}
	}
}

func TestNoSplitBrainCatchesDisabledFencing(t *testing.T) {
	// The split-brain fixture: fencing disabled, so after the epoch advance
	// the old primary's stale-epoch commits are still acknowledged — exactly
	// the double-primary history a broken lease would produce.
	f := storage.NewFence()
	f.SetRecording(true)
	f.Disable()
	if err := f.CheckCommit(1*time.Second, "rw", 1); err != nil {
		t.Fatal(err)
	}
	f.Advance(2 * time.Second)
	if err := f.CheckCommit(3*time.Second, "ro0", 2); err != nil {
		t.Fatal(err)
	}
	if err := f.CheckCommit(4*time.Second, "rw", 1); err != nil {
		t.Fatalf("disabled fence must ack the stale write, got %v", err)
	}

	v := NoSplitBrain(f.Events())
	if v.Passed {
		t.Fatal("NoSplitBrain passed on a history with two unfenced primaries")
	}
	if len(v.Details) == 0 || !strings.Contains(v.Details[0], "stale epoch") {
		t.Errorf("violation detail should name the stale-epoch ack, got %q", v.Details)
	}
}

func TestNoSplitBrainCatchesTwoNodesSharingAnEpoch(t *testing.T) {
	events := []storage.FenceEvent{
		{At: 1 * time.Second, Kind: storage.FenceAck, Node: "rw", Epoch: 1, FenceEpoch: 1},
		{At: 2 * time.Second, Kind: storage.FenceAck, Node: "ro0", Epoch: 1, FenceEpoch: 1},
	}
	v := NoSplitBrain(events)
	if v.Passed {
		t.Fatal("NoSplitBrain passed with two nodes acking under one epoch")
	}
}

func TestMonotonicEpochCatchesRegressionAndSkip(t *testing.T) {
	regress := []storage.FenceEvent{
		{At: 1 * time.Second, Kind: storage.FenceAdvance, FenceEpoch: 2},
		{At: 2 * time.Second, Kind: storage.FenceAck, Node: "rw", Epoch: 1, FenceEpoch: 1},
	}
	if v := MonotonicEpoch(regress); v.Passed {
		t.Error("MonotonicEpoch passed on an epoch regression")
	}
	skip := []storage.FenceEvent{
		{At: 1 * time.Second, Kind: storage.FenceAck, Node: "rw", Epoch: 1, FenceEpoch: 1},
		{At: 2 * time.Second, Kind: storage.FenceAdvance, FenceEpoch: 4},
	}
	if v := MonotonicEpoch(skip); v.Passed {
		t.Error("MonotonicEpoch passed on a skipped epoch")
	}
}

func TestFencedWritesCatchesLegitimateWriteFenced(t *testing.T) {
	events := []storage.FenceEvent{
		{At: 1 * time.Second, Kind: storage.FenceReject, Node: "rw", Epoch: 2, FenceEpoch: 2},
	}
	if v := FencedWrites(events); v.Passed {
		t.Error("FencedWrites passed on a current-epoch reject")
	}
}

func TestRecorderBeforeTruncatesHistory(t *testing.T) {
	r := NewRecorder()
	r.OnWrite(1*time.Second, 7, "t", []byte("k"), nil, nil)
	r.OnCommit(2*time.Second, 7)
	r.OnWrite(3*time.Second, 8, "t", []byte("k"), nil, nil)
	r.OnAbort(4*time.Second, 8)

	pre := r.Before(3 * time.Second)
	if got := len(pre.Events()); got != 2 {
		t.Fatalf("Before kept %d events, want 2", got)
	}
	commits, aborts := pre.Counts()
	if commits != 1 || aborts != 0 {
		t.Errorf("Before counts = %d commits %d aborts, want 1/0", commits, aborts)
	}
	// The source recorder is untouched.
	commits, aborts = r.Counts()
	if commits != 1 || aborts != 1 {
		t.Errorf("source counts changed: %d commits %d aborts", commits, aborts)
	}
}
