// Package check turns the testbed from a load generator into a correctness
// harness: a history recorder taps the engine's transaction path (via
// engine.Observer) and a set of invariant checkers pass judgement on the
// recorded history and on the final replicated state.
//
// The checkers exploit two properties of the simulation. First, the DES
// kernel is deterministic, so a violation found under an injected fault
// schedule replays exactly from the same seed. Second, callbacks arrive in
// a single deterministic order, so the recorder can assign a global
// sequence number and the checkers can replay the history without worrying
// about timestamp ties.
package check

import (
	"time"

	"cloudybench/internal/engine"
)

// EventKind classifies one history event.
type EventKind int

// Event kinds.
const (
	EvRead EventKind = iota
	EvWrite
	EvCommit
	EvAbort
)

func (k EventKind) String() string {
	switch k {
	case EvRead:
		return "read"
	case EvWrite:
		return "write"
	case EvCommit:
		return "commit"
	default:
		return "abort"
	}
}

// Event is one recorded history event. For reads, After holds the value
// observed (nil = row absent). For writes, Before/After hold the images
// (nil Before = insert, nil After = delete). Commit/abort events carry only
// the transaction id.
type Event struct {
	Seq    int64
	At     time.Duration
	Txn    uint64
	Kind   EventKind
	Table  string
	Key    engine.Key
	Before engine.Row
	After  engine.Row
}

// Recorder implements engine.Observer, accumulating the full history of the
// database it is attached to. It runs inside the simulation's
// single-runnable discipline and needs no locking.
type Recorder struct {
	events  []Event
	commits int64
	aborts  int64
}

// NewRecorder returns an empty recorder; attach it with db.SetObserver.
func NewRecorder() *Recorder { return &Recorder{} }

var _ engine.Observer = (*Recorder)(nil)

func (r *Recorder) add(ev Event) {
	ev.Seq = int64(len(r.events))
	r.events = append(r.events, ev)
}

// cloneRow copies a row preserving nilness (Row.Clone turns nil into an
// empty row, which would erase the absent-row signal).
func cloneRow(r engine.Row) engine.Row {
	if r == nil {
		return nil
	}
	return r.Clone()
}

// OnRead implements engine.Observer.
func (r *Recorder) OnRead(at time.Duration, txn uint64, table string, key engine.Key, row engine.Row) {
	r.add(Event{At: at, Txn: txn, Kind: EvRead, Table: table, Key: key, After: cloneRow(row)})
}

// OnWrite implements engine.Observer.
func (r *Recorder) OnWrite(at time.Duration, txn uint64, table string, key engine.Key, before, after engine.Row) {
	r.add(Event{At: at, Txn: txn, Kind: EvWrite, Table: table, Key: key, Before: cloneRow(before), After: cloneRow(after)})
}

// OnCommit implements engine.Observer.
func (r *Recorder) OnCommit(at time.Duration, txn uint64) {
	r.commits++
	r.add(Event{At: at, Txn: txn, Kind: EvCommit})
}

// OnAbort implements engine.Observer.
func (r *Recorder) OnAbort(at time.Duration, txn uint64) {
	r.aborts++
	r.add(Event{At: at, Txn: txn, Kind: EvAbort})
}

// Events returns the recorded history in order.
func (r *Recorder) Events() []Event { return r.events }

// Counts returns recorded commit and abort totals.
func (r *Recorder) Counts() (commits, aborts int64) { return r.commits, r.aborts }

// committedTxns returns the set of transaction ids that committed.
func (r *Recorder) committedTxns() map[uint64]bool {
	out := make(map[uint64]bool)
	for i := range r.events {
		if r.events[i].Kind == EvCommit {
			out[r.events[i].Txn] = true
		}
	}
	return out
}

// encRow canonicalizes a row for equality comparison. The sentinel for an
// absent row cannot collide with EncodeRow output, which always begins with
// a column count.
func encRow(r engine.Row) string {
	if r == nil {
		return "<absent>"
	}
	return string(engine.EncodeRow(nil, r))
}
