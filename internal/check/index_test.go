package check

import (
	"strings"
	"testing"
	"time"

	"cloudybench/internal/engine"
	"cloudybench/internal/sim"
)

// TestIndexCoherent proves the invariant passes on a live indexed table
// across committed and rolled-back work, and — the teeth — fails when an
// index entry is forced out of sync with the table.
func TestIndexCoherent(t *testing.T) {
	s := sim.New(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	db := engine.NewDB(s)
	schema := &engine.Schema{
		Name: "items",
		Cols: []engine.Column{
			{Name: "IT_ID", Kind: engine.KindInt},
			{Name: "IT_GROUP", Kind: engine.KindInt},
		},
		KeyCols:     []int{0},
		AvgRowBytes: 32,
	}
	tbl := db.MustCreateTable(schema, 30, func(id int64) engine.Row {
		return engine.Row{engine.Int(id), engine.Int(id % 5)}
	})
	ix := db.MustCreateIndex("items", "ix_items_group", "IT_GROUP")

	s.Go("mutate", func(p *sim.Proc) {
		txn := db.Begin(p)
		txn.Insert(tbl, engine.Row{engine.Int(100), engine.Int(7)})
		txn.Update(tbl, engine.IntKey(3), engine.Row{engine.Int(3), engine.Int(9)})
		txn.Delete(tbl, engine.IntKey(4))
		txn.Commit()
		txn = db.Begin(p)
		txn.Insert(tbl, engine.Row{engine.Int(200), engine.Int(8)})
		txn.Abort()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}

	v := IndexCoherent("rw", db)
	if !v.Passed || v.Checked != 30 {
		t.Fatalf("coherent index reported %v (checked %d)", v, v.Checked)
	}

	// Teeth: a dangling entry (no matching visible row) must fail.
	ghost := ix.EntryKey(engine.Int(3), engine.IntKey(999))
	ix.CorruptEntryForTest(ghost, engine.IntKey(999))
	v = IndexCoherent("rw", db)
	if v.Passed {
		t.Fatal("IndexCoherent missed a dangling index entry")
	}
	if len(v.Details) == 0 || !strings.Contains(v.Details[0], "ix_items_group") {
		t.Fatalf("failure detail does not name the index: %v", v.Details)
	}
}
