package check

import (
	"strings"
	"testing"
	"time"

	"cloudybench/internal/core"
	"cloudybench/internal/engine"
	"cloudybench/internal/sim"
	"cloudybench/internal/storage"
)

// crashRecover crashes db's log with the given torn mode and recovers a
// fresh salesDB from it with the given teeth options, carrying the
// recorder onto the rebuilt instance (as node recovery does).
func crashRecover(t *testing.T, s *sim.Sim, db *engine.DB, torn storage.TornMode, opts engine.RecoveryOpts) *engine.DB {
	t.Helper()
	tail, _ := db.Log().Crash(torn)
	fresh := salesDB(s)
	if _, err := fresh.Recover(db.Log().Snapshot(), tail, opts); err != nil {
		t.Fatalf("recover: %v", err)
	}
	fresh.SetObserver(db.Observer())
	return fresh
}

// crashHistory drives committed payments plus one in-flight transaction
// that dies with the crash, returning the recorder and the crashed DB.
func crashHistory(t *testing.T, s *sim.Sim) (*Recorder, *engine.DB) {
	t.Helper()
	db := salesDB(s)
	rec := NewRecorder()
	db.SetObserver(rec)
	s.Go("txns", func(p *sim.Proc) {
		payOrder(t, p, db, 1, 0)
		payOrder(t, p, db, 2, 0)
		// In-flight at the crash: marks order 3 PAID but never commits —
		// the client never got an ack, so recovery must erase it.
		orders := db.Table(core.TableOrders)
		tx := db.Begin(p)
		row, _, err := tx.GetForUpdate(orders, engine.IntKey(3))
		if err != nil {
			t.Errorf("get: %v", err)
			return
		}
		upd := row.Clone()
		upd[4] = engine.Str(core.StatusPaid)
		if _, err := tx.Update(orders, engine.IntKey(3), upd); err != nil {
			t.Errorf("update: %v", err)
			return
		}
		// A committed successor group-commits the loser's record into the
		// durable log, so honest recovery has real undo work to do.
		payOrder(t, p, db, 4, 0)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	return rec, db
}

func TestDurabilityPassesAfterHonestRecovery(t *testing.T) {
	s := sim.New(time.Unix(0, 0))
	rec, db := crashHistory(t, s)
	recovered := crashRecover(t, s, db, storage.TornNone, engine.RecoveryOpts{})

	if v := Durability("rw", rec, recovered); !v.Passed {
		t.Fatalf("durability failed on honest recovery: %v", v)
	} else if v.Checked == 0 {
		t.Fatal("durability checked nothing")
	}
	if v := NoResurrection("rw", rec, recovered); !v.Passed {
		t.Fatalf("no-resurrection failed on honest recovery: %v", v)
	} else if v.Checked == 0 {
		t.Fatal("no-resurrection checked nothing (no loser writes recorded?)")
	}
}

// TestNoResurrectionCatchesSkippedUndo is a teeth test: recovery that skips
// the undo pass leaves the in-flight transaction's PAID marker in place,
// and NoResurrection must name it a resurrected write.
func TestNoResurrectionCatchesSkippedUndo(t *testing.T) {
	s := sim.New(time.Unix(0, 0))
	rec, db := crashHistory(t, s)
	broken := crashRecover(t, s, db, storage.TornNone, engine.RecoveryOpts{SkipUndo: true})

	v := NoResurrection("rw", rec, broken)
	if v.Passed {
		t.Fatal("no-resurrection passed despite skipped undo")
	}
	if !strings.Contains(v.Details[0], "resurrected write") {
		t.Fatalf("unexpected detail: %q", v.Details[0])
	}
	if d := Durability("rw", rec, broken); d.Passed {
		t.Fatal("durability passed despite skipped undo")
	}
}

// TestDurabilityCatchesLostCommit is a teeth test: dropping a committed
// transaction's effects (simulated by recovering from a log truncated
// before its records) must fail Durability.
func TestDurabilityCatchesLostCommit(t *testing.T) {
	s := sim.New(time.Unix(0, 0))
	db := salesDB(s)
	rec := NewRecorder()
	db.SetObserver(rec)
	s.Go("txns", func(p *sim.Proc) {
		payOrder(t, p, db, 1, 0)
		payOrder(t, p, db, 2, 0)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// Rebuild from a log that never saw the second payment.
	full := db.Log().Read(0, 0)
	liar := storage.NewLog()
	seen := 0
	for i := range full {
		if full[i].Type == storage.RecCommit {
			seen++
		}
		liar.Append(full[i])
		if seen == 1 {
			break
		}
	}
	liar.Sync()
	fresh := salesDB(s)
	if _, err := fresh.Recover(liar.Snapshot(), nil, engine.RecoveryOpts{}); err != nil {
		t.Fatalf("recover: %v", err)
	}
	v := Durability("rw", rec, fresh)
	if v.Passed {
		t.Fatal("durability passed despite a dropped acknowledged commit")
	}
}
