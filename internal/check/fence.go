package check

import (
	"time"

	"cloudybench/internal/storage"
)

// NoSplitBrain verifies the write lease held: shared storage never
// acknowledged a commit under a stale epoch, and no two nodes ever
// acknowledged commits under the same epoch. Either violation means two
// primaries were writing concurrently — the split-brain the lease exists to
// prevent. The fence must have had ack recording on (Fence.SetRecording)
// during the window under judgement.
func NoSplitBrain(events []storage.FenceEvent) Verdict {
	v := Verdict{Name: "no-split-brain", Passed: true}
	owner := make(map[uint64]string)
	for _, ev := range events {
		if ev.Kind != storage.FenceAck {
			continue
		}
		v.Checked++
		if ev.Epoch != ev.FenceEpoch {
			v.fail("ack at %v: node %s committed under stale epoch %d while the fence was at %d (split-brain write)",
				ev.At, ev.Node, ev.Epoch, ev.FenceEpoch)
			continue
		}
		if prev, ok := owner[ev.Epoch]; ok && prev != ev.Node {
			v.fail("epoch %d acknowledged commits from both %s and %s (two primaries under one lease)",
				ev.Epoch, prev, ev.Node)
			continue
		}
		owner[ev.Epoch] = ev.Node
	}
	return v
}

// MonotonicEpoch verifies the lease epoch only ever moved forward: each
// advance increments the epoch by exactly one, and no event in the log
// observes the fence at an earlier epoch than a previous event did. A
// regression or a skipped epoch means the lease state itself was corrupted
// (and every fencing decision made from it is suspect).
func MonotonicEpoch(events []storage.FenceEvent) Verdict {
	v := Verdict{Name: "monotonic-epoch", Passed: true}
	var last uint64
	for _, ev := range events {
		v.Checked++
		if ev.FenceEpoch < last {
			v.fail("event at %v (%s): fence epoch went backwards, %d after %d",
				ev.At, ev.Kind, ev.FenceEpoch, last)
			continue
		}
		if ev.Kind == storage.FenceAdvance && last != 0 && ev.FenceEpoch != last+1 {
			v.fail("advance at %v: epoch jumped %d -> %d, want +1 steps",
				ev.At, last, ev.FenceEpoch)
		}
		last = ev.FenceEpoch
	}
	return v
}

// FencedWrites verifies every rejected commit deserved it: each reject names
// a node epoch strictly older than the fence epoch at that instant. A reject
// of a current-epoch commit would mean the fence refused the legitimate
// primary — fencing turned from a safety mechanism into an availability bug.
func FencedWrites(events []storage.FenceEvent) Verdict {
	v := Verdict{Name: "fenced-writes", Passed: true}
	for _, ev := range events {
		if ev.Kind != storage.FenceReject {
			continue
		}
		v.Checked++
		if ev.Epoch >= ev.FenceEpoch {
			v.fail("reject at %v: node %s held epoch %d, fence at %d — a legitimate write was fenced",
				ev.At, ev.Node, ev.Epoch, ev.FenceEpoch)
		}
	}
	return v
}

// FenceVerdicts bundles the three lease invariants over one fence's event
// log, in reporting order.
func FenceVerdicts(f *storage.Fence) []Verdict {
	events := f.Events()
	return []Verdict{
		NoSplitBrain(events),
		MonotonicEpoch(events),
		FencedWrites(events),
	}
}

// Before returns a recorder holding only the history strictly before the
// given instant, with commit/abort totals recomputed over that prefix. After
// a partition fail-over the old primary's post-rejoin replay mutates its DB
// without observer callbacks, so state-bound invariants (conservation,
// read-committed) are judged on the pre-fail-over prefix of its history.
func (r *Recorder) Before(at time.Duration) *Recorder {
	out := &Recorder{}
	for i := range r.events {
		ev := r.events[i]
		if ev.At >= at {
			break
		}
		out.events = append(out.events, ev)
		switch ev.Kind {
		case EvCommit:
			out.commits++
		case EvAbort:
			out.aborts++
		}
	}
	return out
}
