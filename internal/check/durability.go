package check

import (
	"cloudybench/internal/engine"
)

// Crash-durability invariants. The recorder survives node crashes (recovery
// carries the observer onto the rebuilt engine), so its history spans every
// crash in a run: commit events mark exactly the transactions the engine
// made durable (commit append + fsync are atomic), write events carry the
// images of both acknowledged and doomed transactions. That history plus
// the final post-recovery state is enough to judge the two contracts a
// crash must not break:
//
//   - Durability: every key's final value is the one the last acknowledged
//     commit gave it (or its untouched baseline);
//   - NoResurrection: no key's final value is an image only an unacked
//     transaction ever wrote — the signature of recovery skipping undo or
//     trusting a torn log tail.

// keyRef locates one touched key for final-state lookup.
type keyRef struct {
	table string
	key   engine.Key
}

// durabilityExpectations walks the history once, returning every touched
// key in first-touch order, the value the committed history says it must
// end at (baseline until a committed write lands), and the after-images
// non-committed transactions wrote to it.
func durabilityExpectations(h *Recorder) (order []string, refs map[string]keyRef, expected map[string]string, zombie map[string]map[string][]uint64) {
	committed := h.committedTxns()
	refs = make(map[string]keyRef)
	expected = make(map[string]string)
	zombie = make(map[string]map[string][]uint64)
	for i := range h.events {
		ev := &h.events[i]
		if ev.Kind != EvWrite {
			continue
		}
		k := ev.Table + "\x00" + string(ev.Key)
		if _, ok := refs[k]; !ok {
			refs[k] = keyRef{table: ev.Table, key: append(engine.Key(nil), ev.Key...)}
			order = append(order, k)
			// Until a committed write lands, the key must end at the value
			// it held when first touched: the before-image of the first
			// write is that baseline (write order per key is lock order).
			expected[k] = encRow(ev.Before)
		}
		if committed[ev.Txn] {
			expected[k] = encRow(ev.After)
		} else {
			img := encRow(ev.After)
			if zombie[k] == nil {
				zombie[k] = make(map[string][]uint64)
			}
			zombie[k][img] = append(zombie[k][img], ev.Txn)
		}
	}
	return order, refs, expected, zombie
}

// finalValue reads a key's committed value from the post-recovery database.
func finalValue(db *engine.DB, ref keyRef) string {
	row, _, ok := db.Read(ref.table, ref.key)
	if !ok {
		return encRow(nil)
	}
	return encRow(row)
}

// Durability verifies that after every crash and recovery in the run, each
// touched key's final value is exactly what the acknowledged-commit history
// dictates: the after-image of the last committed write, or the key's
// baseline if no write to it ever committed. A divergence means an acked
// commit was lost, a doomed write survived, or recovery mangled a value —
// run NoResurrection alongside to classify which.
func Durability(name string, h *Recorder, db *engine.DB) Verdict {
	v := Verdict{Name: "durability/" + name, Passed: true}
	order, refs, expected, _ := durabilityExpectations(h)
	for _, k := range order {
		v.Checked++
		ref := refs[k]
		if got := finalValue(db, ref); got != expected[k] {
			v.fail("table %s key %x: final value diverges from the last acknowledged commit",
				ref.table, ref.key)
		}
	}
	return v
}

// NoResurrection verifies that no key ends the run holding a value that
// only a non-committed transaction ever wrote: an in-flight loser the crash
// took, or a rolled-back abort. Such a zombie value means recovery failed
// to undo a loser (or applied a torn tail) — the client was told "not
// committed" yet the write is visible.
func NoResurrection(name string, h *Recorder, db *engine.DB) Verdict {
	v := Verdict{Name: "no-resurrection/" + name, Passed: true}
	order, refs, expected, zombie := durabilityExpectations(h)
	for _, k := range order {
		images := zombie[k]
		if len(images) == 0 {
			continue
		}
		v.Checked++
		ref := refs[k]
		got := finalValue(db, ref)
		if got == expected[k] {
			continue // committed value wins, even if some zombie wrote the same bytes
		}
		if txns, ok := images[got]; ok {
			v.fail("table %s key %x: holds a value only non-committed txn %d wrote (resurrected write)",
				ref.table, ref.key, txns[0])
		}
	}
	return v
}
