package check

import (
	"strings"
	"testing"
	"time"

	"cloudybench/internal/core"
	"cloudybench/internal/engine"
	"cloudybench/internal/node"
	"cloudybench/internal/replication"
	"cloudybench/internal/sim"
	"cloudybench/internal/storage"
)

// salesDB builds a tiny sales-schema database: 4 customers, 4 orders
// (amounts 10.00/20.00/..., all NEW), 8 base orderlines.
func salesDB(s *sim.Sim) *engine.DB {
	db := engine.NewDB(s)
	db.MustCreateTable(core.CustomerSchema(), 4, func(id int64) engine.Row {
		return engine.Row{engine.Int(id), engine.Str("c"), engine.Float(100), engine.Int(0)}
	})
	db.MustCreateTable(core.OrdersSchema(), 4, func(id int64) engine.Row {
		return engine.Row{engine.Int(id), engine.Int(id), engine.Float(float64(id) * 10), engine.Int(0), engine.Str(core.StatusNew), engine.Int(0)}
	})
	db.MustCreateTable(core.OrderlineSchema(), 8, func(id int64) engine.Row {
		return engine.Row{engine.Int(id), engine.Int((id-1)/2 + 1), engine.Str("sku"), engine.Int(1), engine.Float(5)}
	})
	return db
}

// payOrder runs the T2 shape: mark order oid PAID, credit its customer by
// the order amount plus skim (zero skim conserves money).
func payOrder(t *testing.T, p *sim.Proc, db *engine.DB, oid int64, skim float64) {
	t.Helper()
	orders := db.Table(core.TableOrders)
	customers := db.Table(core.TableCustomer)
	tx := db.Begin(p)
	row, _, err := tx.GetForUpdate(orders, engine.IntKey(oid))
	if err != nil {
		t.Fatalf("get order: %v", err)
	}
	upd := row.Clone()
	upd[4] = engine.Str(core.StatusPaid)
	if _, err := tx.Update(orders, engine.IntKey(oid), upd); err != nil {
		t.Fatalf("update order: %v", err)
	}
	crow, _, err := tx.GetForUpdate(customers, engine.IntKey(row[1].I))
	if err != nil {
		t.Fatalf("get customer: %v", err)
	}
	cupd := crow.Clone()
	cupd[2] = engine.Float(crow[2].F + row[2].F + skim)
	if _, err := tx.Update(customers, engine.IntKey(row[1].I), cupd); err != nil {
		t.Fatalf("update customer: %v", err)
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
}

func TestInvariantsPassOnCleanHistory(t *testing.T) {
	s := sim.New(time.Unix(0, 0))
	db := salesDB(s)
	rec := NewRecorder()
	db.SetObserver(rec)

	s.Go("txns", func(p *sim.Proc) {
		payOrder(t, p, db, 1, 0)
		payOrder(t, p, db, 3, 0)

		ol := db.Table(core.TableOrderline)
		tx := db.Begin(p)
		if _, err := tx.Insert(ol, engine.Row{engine.Int(ol.NextAutoID()), engine.Int(2), engine.Str("sku"), engine.Int(1), engine.Float(7)}); err != nil {
			t.Errorf("insert: %v", err)
		}
		tx.Commit()

		tx = db.Begin(p)
		if _, err := tx.Delete(ol, engine.IntKey(5)); err != nil {
			t.Errorf("delete: %v", err)
		}
		tx.Commit()

		// An aborted payment must not count toward any invariant.
		orders := db.Table(core.TableOrders)
		tx = db.Begin(p)
		row, _, _ := tx.GetForUpdate(orders, engine.IntKey(2))
		upd := row.Clone()
		upd[4] = engine.Str(core.StatusPaid)
		tx.Update(orders, engine.IntKey(2), upd)
		tx.Abort()
	})
	if err := s.Run(); err != nil {
		t.Fatalf("sim: %v", err)
	}

	for _, v := range []Verdict{Conservation(rec), RowBalance(rec, db), ReadCommitted(rec)} {
		if !v.Passed {
			t.Errorf("%s: %s", v.Name, v)
		}
		if v.Checked == 0 {
			t.Errorf("%s: checked nothing", v.Name)
		}
	}
}

func TestConservationCatchesSkimmedCredit(t *testing.T) {
	s := sim.New(time.Unix(0, 0))
	db := salesDB(s)
	rec := NewRecorder()
	db.SetObserver(rec)

	s.Go("txns", func(p *sim.Proc) {
		payOrder(t, p, db, 1, 0.01) // credits one cent too much
	})
	if err := s.Run(); err != nil {
		t.Fatalf("sim: %v", err)
	}
	v := Conservation(rec)
	if v.Passed {
		t.Fatal("conservation passed despite a skimmed credit")
	}
	if !strings.Contains(v.String(), "credited") {
		t.Errorf("unexpected detail: %s", v)
	}
}

func TestRowBalanceCatchesLostWrite(t *testing.T) {
	s := sim.New(time.Unix(0, 0))
	db := salesDB(s)
	rec := NewRecorder()
	db.SetObserver(rec)

	s.Go("txns", func(p *sim.Proc) {
		ol := db.Table(core.TableOrderline)
		tx := db.Begin(p)
		tx.Insert(ol, engine.Row{engine.Int(ol.NextAutoID()), engine.Int(1), engine.Str("sku"), engine.Int(1), engine.Float(1)})
		tx.Commit()
	})
	if err := s.Run(); err != nil {
		t.Fatalf("sim: %v", err)
	}

	// Fabricate a second committed insert that never reached the table — as
	// if the engine lost the write.
	rec.OnWrite(0, 999, core.TableOrderline, engine.IntKey(12345), nil,
		engine.Row{engine.Int(12345), engine.Int(1), engine.Str("sku"), engine.Int(1), engine.Float(1)})
	rec.OnCommit(0, 999)

	if v := RowBalance(rec, db); v.Passed {
		t.Fatal("row-balance passed despite a lost committed insert")
	}
}

func TestReadCommittedCatchesDirtyRead(t *testing.T) {
	rec := NewRecorder()
	key := engine.IntKey(1)
	v1 := engine.Row{engine.Int(1), engine.Str("v1")}
	v2 := engine.Row{engine.Int(1), engine.Str("v2")}

	// Txn 1 writes v2 but has not committed; txn 2 reads v2 anyway (a dirty
	// read that strict 2PL must make impossible).
	rec.OnRead(0, 1, "t", key, v1)
	rec.OnWrite(0, 1, "t", key, v1, v2)
	rec.OnRead(0, 2, "t", key, v2)
	rec.OnCommit(0, 1)
	rec.OnCommit(0, 2)

	if v := ReadCommitted(rec); v.Passed {
		t.Fatal("read-committed passed despite a dirty read")
	}

	// Control: the same history with txn 2 reading the committed value.
	clean := NewRecorder()
	clean.OnRead(0, 1, "t", key, v1)
	clean.OnWrite(0, 1, "t", key, v1, v2)
	clean.OnCommit(0, 1)
	clean.OnRead(0, 2, "t", key, v2)
	clean.OnCommit(0, 2)
	if v := ReadCommitted(clean); !v.Passed {
		t.Fatalf("clean history failed: %s", v)
	}
}

func salesInto(db *engine.DB) {
	db.MustCreateTable(core.OrderlineSchema(), 8, func(id int64) engine.Row {
		return engine.Row{engine.Int(id), engine.Int((id-1)/2 + 1), engine.Str("sku"), engine.Int(1), engine.Float(5)}
	})
}

func TestConvergenceHasTeeth(t *testing.T) {
	run := func(drop int) Verdict {
		s := sim.New(time.Unix(0, 0))
		cfg := node.Config{VCores: 4, MemoryBytes: 1 << 24, OpCPU: time.Microsecond, TxnCPU: time.Microsecond}
		cfg.Name = "rw"
		rw := node.New(s, cfg, node.NullBackend{})
		salesInto(rw.DB)
		cfg.Name = "ro"
		ro := node.New(s, cfg, node.NullBackend{})
		salesInto(ro.DB)
		st := replication.NewStream(s, replication.Config{
			Name:         "test-stream",
			PerRecord:    10 * time.Microsecond,
			DropEveryNth: drop,
		}, ro)
		rw.OnCommit = func(p *sim.Proc, recs []storage.Record) { st.Publish(p, recs) }

		s.Go("writer", func(p *sim.Proc) {
			ol := rw.DB.Table(core.TableOrderline)
			for i := 0; i < 10; i++ {
				tx, err := rw.Begin(p)
				if err != nil {
					t.Errorf("begin: %v", err)
					return
				}
				if err := tx.Insert(ol, engine.Row{engine.Int(ol.NextAutoID()), engine.Int(1), engine.Str("sku"), engine.Int(1), engine.Float(1)}); err != nil {
					t.Errorf("insert: %v", err)
				}
				if err := tx.Commit(); err != nil {
					t.Errorf("commit: %v", err)
				}
			}
			for st.Backlog() > 0 {
				p.Sleep(time.Millisecond)
			}
			st.Stop()
		})
		if err := s.Run(); err != nil {
			t.Fatalf("sim: %v", err)
		}
		return Convergence("ro", rw.DB, ro.DB)
	}

	if v := run(0); !v.Passed {
		t.Errorf("healthy stream did not converge: %s", v)
	}
	if v := run(3); v.Passed {
		t.Error("convergence passed despite the stream dropping every 3rd record")
	}
}
