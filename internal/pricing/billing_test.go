package pricing

import (
	"testing"
	"time"
)

// The §III-G billing quirks, table-driven over the vendor models the SUT
// profiles wire up: AWS RDS bills at least 10 minutes, CDB2's elastic pool
// bills at least one hour, CDB3 bills per second at a ~3x cheaper vCore
// rate. Each case sits on or immediately beside a billing-slot edge, where
// rounding bugs live.
func TestBillingQuirkSlotEdges(t *testing.T) {
	rds := Actual{Vendor: "aws-rds", PerVCoreHour: 0.40, MinBilling: 10 * time.Minute}
	pool := Actual{Vendor: "cdb2", PerVCoreHour: 0.42, MinBilling: time.Hour}
	cheap := Actual{Vendor: "cdb3", PerVCoreHour: 0.16, MinBilling: 0}

	cases := []struct {
		name   string
		vendor Actual
		d      time.Duration
		want   time.Duration
	}{
		// RDS: "charges for at least 10 minutes".
		{"rds/zero", rds, 0, 0},
		{"rds/one-second", rds, time.Second, 10 * time.Minute},
		{"rds/just-under-slot", rds, 10*time.Minute - time.Nanosecond, 10 * time.Minute},
		{"rds/exact-slot", rds, 10 * time.Minute, 10 * time.Minute},
		{"rds/just-over-slot", rds, 10*time.Minute + time.Nanosecond, 20 * time.Minute},
		{"rds/exact-two-slots", rds, 20 * time.Minute, 20 * time.Minute},
		{"rds/mid-second-slot", rds, 15 * time.Minute, 20 * time.Minute},
		{"rds/negative-clamps", rds, -time.Minute, 0},

		// CDB2: "the elastic pool is charged at least one hour".
		{"cdb2/one-minute", pool, time.Minute, time.Hour},
		{"cdb2/just-under-hour", pool, time.Hour - time.Second, time.Hour},
		{"cdb2/exact-hour", pool, time.Hour, time.Hour},
		{"cdb2/just-over-hour", pool, time.Hour + time.Second, 2 * time.Hour},
		{"cdb2/exact-two-hours", pool, 2 * time.Hour, 2 * time.Hour},

		// CDB3: per-second billing, no rounding at any edge.
		{"cdb3/one-second", cheap, time.Second, time.Second},
		{"cdb3/exact-hour", cheap, time.Hour, time.Hour},
		{"cdb3/odd-duration", cheap, 37*time.Minute + 13*time.Second, 37*time.Minute + 13*time.Second},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := c.vendor.BillableDuration(c.d); got != c.want {
				t.Fatalf("BillableDuration(%v) = %v, want %v", c.d, got, c.want)
			}
		})
	}

	one := Package{VCores: 1}
	costCases := []struct {
		name   string
		vendor Actual
		d      time.Duration
		want   float64
	}{
		{"rds/second-costs-ten-minutes", rds, time.Second, 0.40 / 6},
		{"rds/over-edge-doubles", rds, 10*time.Minute + time.Second, 2 * 0.40 / 6},
		{"cdb2/minute-costs-full-hour", pool, time.Minute, 0.42},
		{"cdb2/over-edge-doubles", pool, time.Hour + time.Second, 0.84},
		{"cdb3/half-hour-costs-half", cheap, 30 * time.Minute, 0.08},
		{"cdb3/second-costs-a-second", cheap, time.Second, 0.16 / 3600},
	}
	for _, c := range costCases {
		t.Run(c.name, func(t *testing.T) {
			if got := c.vendor.Cost(one, c.d); !within(got, c.want, 1e-9) {
				t.Fatalf("Cost(1 vCore, %v) = %v, want %v", c.d, got, c.want)
			}
		})
	}

	// The cheap-vCore claim itself: "$0.16 per vCore compared with $0.42 per
	// vCore by CDB2" — at exactly one pool slot the ratio is the rate ratio,
	// and one second past the slot edge CDB2 doubles while CDB3 barely moves.
	atSlot := pool.Cost(one, time.Hour) / cheap.Cost(one, time.Hour)
	if !within(atSlot, 0.42/0.16, 1e-9) {
		t.Fatalf("pool/cheap ratio at exact slot = %v, want %v", atSlot, 0.42/0.16)
	}
	pastSlot := pool.Cost(one, time.Hour+time.Second) / cheap.Cost(one, time.Hour+time.Second)
	if pastSlot <= atSlot*1.9 {
		t.Fatalf("pool/cheap ratio past slot edge = %v, want ~2x the at-slot ratio %v", pastSlot, atSlot)
	}
}
