// Package pricing implements CloudyBench's resource unit cost (RUC) model
// (paper §II-F, Table III) and the per-vendor actual-cost models used for
// the starred score variants of §III-G.
//
// The RUC idea: cloud vendors package resources differently (Aurora ACUs,
// PolarDB instances, elastic pools) and price them differently, so a fair
// horizontal comparison normalizes everything to standard unit prices —
// dollars per vCore-hour, GB-hour, 100-IOPS-hour, and Gbps-hour. Costs are
// then pure functions of the resource package and the duration it was held.
package pricing

import (
	"time"

	"cloudybench/internal/netsim"
)

// Resource unit costs per hour from paper Table III.
const (
	CPUPerVCoreHour  = 0.1847   // $/vCore/h   (avg of Aurora/PolarDB/HyperScale/Neon)
	MemPerGBHour     = 0.0095   // $/GB/h
	StoragePerGBHour = 0.000853 // $/GB/h
	IOPSPer100Hour   = 0.00015  // $/100 IOPS/h (AWS RDS IOPS pricing)
	TCPPerGbpsHour   = 0.07696  // $/Gbps/h    (Huawei S1730S 10G reference)
	RDMAPerGbpsHour  = 0.23088  // $/Gbps/h    (Mellanox MSB7890 100G reference)
	HoursPerMinute   = 1.0 / 60
)

// Package describes a provisioned resource bundle. Fractional vCores are
// allowed (CDB3's minimum capacity unit is 0.25 CU = 0.25 vCore).
type Package struct {
	VCores    float64
	MemoryGB  float64
	StorageGB float64
	IOPS      float64
	NetGbps   float64
	Fabric    netsim.Fabric
}

// Add returns the component-wise sum of two packages (used to total the
// isolated per-tenant instances of Table VII). The fabric of p is kept.
func (p Package) Add(q Package) Package {
	p.VCores += q.VCores
	p.MemoryGB += q.MemoryGB
	p.StorageGB += q.StorageGB
	p.IOPS += q.IOPS
	p.NetGbps += q.NetGbps
	return p
}

// Scale returns the package with every component multiplied by f.
func (p Package) Scale(f float64) Package {
	p.VCores *= f
	p.MemoryGB *= f
	p.StorageGB *= f
	p.IOPS *= f
	p.NetGbps *= f
	return p
}

// ClusterPackage expands a per-node package to a cluster with the given
// number of compute nodes. Per-node resources (vCores, memory, storage) are
// multiplied by the node count; IOPS and network are provisioned once for
// the cluster. This is exactly how paper Table V totals its "Resource"
// column for the 1 RW + 1 RO deployments: the per-resource columns list
// per-node values, and the total doubles CPU, memory, and storage only.
func ClusterPackage(node Package, computeNodes int) Package {
	if computeNodes < 1 {
		computeNodes = 1
	}
	n := float64(computeNodes)
	return Package{
		VCores:    node.VCores * n,
		MemoryGB:  node.MemoryGB * n,
		StorageGB: node.StorageGB * n,
		IOPS:      node.IOPS,
		NetGbps:   node.NetGbps,
		Fabric:    node.Fabric,
	}
}

// Breakdown is an itemized cost, in dollars, over some duration. Table V
// reports exactly these five components per minute.
type Breakdown struct {
	CPU     float64
	Memory  float64
	Storage float64
	IOPS    float64
	Network float64
}

// Total returns the sum of all components.
func (b Breakdown) Total() float64 {
	return b.CPU + b.Memory + b.Storage + b.IOPS + b.Network
}

// Add returns the component-wise sum.
func (b Breakdown) Add(o Breakdown) Breakdown {
	b.CPU += o.CPU
	b.Memory += o.Memory
	b.Storage += o.Storage
	b.IOPS += o.IOPS
	b.Network += o.Network
	return b
}

func netRate(f netsim.Fabric) float64 {
	switch f {
	case netsim.RDMA:
		return RDMAPerGbpsHour
	case netsim.Local:
		return 0
	default:
		return TCPPerGbpsHour
	}
}

// HourlyBreakdown itemizes the RUC cost of holding the package for one hour.
func HourlyBreakdown(p Package) Breakdown {
	return Breakdown{
		CPU:     p.VCores * CPUPerVCoreHour,
		Memory:  p.MemoryGB * MemPerGBHour,
		Storage: p.StorageGB * StoragePerGBHour,
		IOPS:    p.IOPS / 100 * IOPSPer100Hour,
		Network: p.NetGbps * netRate(p.Fabric),
	}
}

// PerMinuteBreakdown itemizes the RUC cost per minute, the unit Table V and
// Table VII report.
func PerMinuteBreakdown(p Package) Breakdown {
	h := HourlyBreakdown(p)
	return Breakdown{
		CPU:     h.CPU * HoursPerMinute,
		Memory:  h.Memory * HoursPerMinute,
		Storage: h.Storage * HoursPerMinute,
		IOPS:    h.IOPS * HoursPerMinute,
		Network: h.Network * HoursPerMinute,
	}
}

// Cost returns the RUC cost of holding the package for d.
func Cost(p Package, d time.Duration) float64 {
	return HourlyBreakdown(p).Total() * d.Hours()
}

// CostBreakdown itemizes the RUC cost of holding the package for d.
func CostBreakdown(p Package, d time.Duration) Breakdown {
	h := HourlyBreakdown(p)
	f := d.Hours()
	return Breakdown{
		CPU:     h.CPU * f,
		Memory:  h.Memory * f,
		Storage: h.Storage * f,
		IOPS:    h.IOPS * f,
		Network: h.Network * f,
	}
}

// Actual models a vendor's real pricing, which differs from RUC in unit
// rates and in billing granularity (paper §III-G: "AWS RDS has the lowest
// P-Score* because its pricing model charges for at least 10 minutes", the
// CDB2 elastic pool "is charged at least one hour", and CDB3's startup
// pricing is ~3x cheaper per vCore than CDB2's).
type Actual struct {
	Vendor           string
	PerVCoreHour     float64
	PerGBMemHour     float64
	PerGBStorageHour float64
	PerIOPS100Hour   float64
	PerGbpsHour      float64
	// MinBilling rounds any usage duration up to this granularity before
	// charging (zero means per-second billing).
	MinBilling time.Duration
}

// BillableDuration applies the vendor's minimum billing window.
func (a Actual) BillableDuration(d time.Duration) time.Duration {
	if a.MinBilling <= 0 || d <= 0 {
		if d < 0 {
			return 0
		}
		return d
	}
	n := (d + a.MinBilling - 1) / a.MinBilling
	return n * a.MinBilling
}

// Cost returns the vendor-actual cost of holding the package for d, after
// applying the minimum billing window.
func (a Actual) Cost(p Package, d time.Duration) float64 {
	h := a.PerVCoreHour*p.VCores +
		a.PerGBMemHour*p.MemoryGB +
		a.PerGBStorageHour*p.StorageGB +
		a.PerIOPS100Hour*p.IOPS/100 +
		a.PerGbpsHour*p.NetGbps
	return h * a.BillableDuration(d).Hours()
}
