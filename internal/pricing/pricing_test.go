package pricing

import (
	"math"
	"testing"
	"time"

	"cloudybench/internal/netsim"
)

func within(got, want, tol float64) bool { return math.Abs(got-want) <= tol }

// awsRDSPackage is the AWS RDS row of paper Table V:
// 4 vCores, 16 GB, 42 GB storage, 1000 IOPS, 10 Gbps TCP.
func awsRDSPackage() Package {
	return Package{VCores: 4, MemoryGB: 16, StorageGB: 42, IOPS: 1000, NetGbps: 10, Fabric: netsim.TCP}
}

func TestPerMinuteBreakdownMatchesTableVForRDS(t *testing.T) {
	b := PerMinuteBreakdown(awsRDSPackage())
	// Expected values are exactly paper Table V, AWS RDS row.
	if !within(b.CPU, 0.0123, 0.0001) {
		t.Errorf("CPU/min = %v, want ~0.0123", b.CPU)
	}
	if !within(b.Memory, 0.0025, 0.0001) {
		t.Errorf("Memory/min = %v, want ~0.0025", b.Memory)
	}
	if !within(b.Storage, 0.0006, 0.0001) {
		t.Errorf("Storage/min = %v, want ~0.0006", b.Storage)
	}
	if !within(b.IOPS, 0.000025, 0.000001) {
		t.Errorf("IOPS/min = %v, want ~0.000025", b.IOPS)
	}
	if !within(b.Network, 0.0128, 0.0001) {
		t.Errorf("Network/min = %v, want ~0.0128", b.Network)
	}
	// Table V's "Resource" total covers the 1 RW + 1 RO cluster: per-node
	// CPU/memory/storage doubled, IOPS and network shared.
	cluster := PerMinuteBreakdown(ClusterPackage(awsRDSPackage(), 2))
	if !within(cluster.Total(), 0.0437, 0.0005) {
		t.Errorf("cluster total/min = %v, want ~$0.0437 (Table V)", cluster.Total())
	}
}

func TestRDMACostsThreexTCP(t *testing.T) {
	tcp := Package{NetGbps: 10, Fabric: netsim.TCP}
	rdma := Package{NetGbps: 10, Fabric: netsim.RDMA}
	ct := HourlyBreakdown(tcp).Network
	cr := HourlyBreakdown(rdma).Network
	if !within(cr/ct, 3.0, 0.01) {
		t.Fatalf("RDMA/TCP cost ratio = %v, want 3x (paper §III-B)", cr/ct)
	}
}

func TestLocalFabricHasNoNetworkCost(t *testing.T) {
	p := Package{NetGbps: 10, Fabric: netsim.Local}
	if got := HourlyBreakdown(p).Network; got != 0 {
		t.Fatalf("local fabric network cost = %v, want 0", got)
	}
}

func TestCDB4RowMatchesTableV(t *testing.T) {
	// CDB4: 4 vCores, 40 GB (16 local + 24 remote), 63 GB storage,
	// 84000 IOPS, 10 Gbps RDMA -> total $0.0797/min.
	p := Package{VCores: 4, MemoryGB: 40, StorageGB: 63, IOPS: 84000, NetGbps: 10, Fabric: netsim.RDMA}
	b := PerMinuteBreakdown(p)
	if !within(b.Memory, 0.0063, 0.0001) {
		t.Errorf("Memory/min = %v, want ~0.0063", b.Memory)
	}
	if !within(b.IOPS, 0.0021, 0.0001) {
		t.Errorf("IOPS/min = %v, want ~0.0021", b.IOPS)
	}
	if !within(b.Network, 0.0385, 0.0001) {
		t.Errorf("Network/min = %v, want ~0.0385", b.Network)
	}
	cluster := PerMinuteBreakdown(ClusterPackage(p, 2))
	if !within(cluster.Total(), 0.0797, 0.001) {
		t.Errorf("cluster total/min = %v, want ~$0.0797 (Table V)", cluster.Total())
	}
}

func TestCostScalesLinearlyWithDuration(t *testing.T) {
	p := awsRDSPackage()
	oneH := Cost(p, time.Hour)
	twoH := Cost(p, 2*time.Hour)
	if !within(twoH, 2*oneH, 1e-9) {
		t.Fatalf("cost not linear: 1h=%v 2h=%v", oneH, twoH)
	}
	if Cost(p, 0) != 0 {
		t.Fatal("zero duration should cost zero")
	}
}

func TestCostBreakdownTotalsMatchCost(t *testing.T) {
	p := awsRDSPackage()
	d := 17 * time.Minute
	if !within(CostBreakdown(p, d).Total(), Cost(p, d), 1e-12) {
		t.Fatal("CostBreakdown total != Cost")
	}
}

func TestPackageAddAndScale(t *testing.T) {
	a := Package{VCores: 4, MemoryGB: 16, StorageGB: 63, IOPS: 1000, NetGbps: 10, Fabric: netsim.TCP}
	sum := a.Add(a).Add(a)
	if sum.VCores != 12 || sum.MemoryGB != 48 || sum.NetGbps != 30 {
		t.Fatalf("Add: %+v", sum)
	}
	half := a.Scale(0.5)
	if half.VCores != 2 || half.MemoryGB != 8 {
		t.Fatalf("Scale: %+v", half)
	}
}

func TestActualMinBillingRoundsUp(t *testing.T) {
	a := Actual{Vendor: "rds", PerVCoreHour: 0.1, MinBilling: 10 * time.Minute}
	cases := []struct {
		d, want time.Duration
	}{
		{0, 0},
		{time.Second, 10 * time.Minute},
		{10 * time.Minute, 10 * time.Minute},
		{10*time.Minute + time.Second, 20 * time.Minute},
		{-time.Second, 0},
	}
	for _, c := range cases {
		if got := a.BillableDuration(c.d); got != c.want {
			t.Errorf("BillableDuration(%v) = %v, want %v", c.d, got, c.want)
		}
	}
}

func TestActualCostUsesVendorRatesAndGranularity(t *testing.T) {
	// One-hour-minimum vendor (CDB2's elastic pool quirk).
	pool := Actual{Vendor: "cdb2", PerVCoreHour: 0.42, MinBilling: time.Hour}
	p := Package{VCores: 1}
	got := pool.Cost(p, time.Minute)
	if !within(got, 0.42, 1e-9) {
		t.Fatalf("1-minute use of 1-hour-minimum vendor = %v, want 0.42", got)
	}
	// Per-second vendor.
	cheap := Actual{Vendor: "cdb3", PerVCoreHour: 0.16}
	got = cheap.Cost(p, 30*time.Minute)
	if !within(got, 0.08, 1e-9) {
		t.Fatalf("30-minute use of per-second vendor = %v, want 0.08", got)
	}
}
