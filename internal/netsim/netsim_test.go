package netsim

import (
	"testing"
	"time"

	"cloudybench/internal/sim"
)

var epoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func TestFabricLatencyOrdering(t *testing.T) {
	if !(DefaultLatency(Local) < DefaultLatency(RDMA) && DefaultLatency(RDMA) < DefaultLatency(TCP)) {
		t.Fatal("latency ordering should be local < rdma < tcp")
	}
}

func TestSendPaysLatencyAndBandwidth(t *testing.T) {
	s := sim.New(epoch)
	// 0.008 Gbps = 1e6 bytes/sec, so 1e6 bytes takes 1 second of bandwidth.
	l := NewLink(s, TCP, 0.008).WithLatency(50 * time.Millisecond)
	var d time.Duration
	s.Go("sender", func(p *sim.Proc) {
		d = l.Send(p, 1_000_000)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := time.Second + 50*time.Millisecond
	if d != want {
		t.Fatalf("send delay = %v, want %v", d, want)
	}
	if l.BytesSent() != 1_000_000 {
		t.Fatalf("bytes sent = %d", l.BytesSent())
	}
}

func TestConcurrentSendersShareBandwidth(t *testing.T) {
	s := sim.New(epoch)
	l := NewLink(s, TCP, 0.008).WithLatency(0) // 1e6 B/s
	var d1, d2 time.Duration
	s.Go("a", func(p *sim.Proc) { d1 = l.Send(p, 1_000_000) })
	s.Go("b", func(p *sim.Proc) { d2 = l.Send(p, 1_000_000) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if d1 != time.Second {
		t.Fatalf("first transfer = %v, want 1s", d1)
	}
	if d2 != 2*time.Second {
		t.Fatalf("queued transfer = %v, want 2s", d2)
	}
}

func TestUnconstrainedBandwidthPaysLatencyOnly(t *testing.T) {
	s := sim.New(epoch)
	l := NewLink(s, RDMA, 0)
	var d time.Duration
	s.Go("p", func(p *sim.Proc) {
		d = l.Send(p, 1<<30)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if d != DefaultLatency(RDMA) {
		t.Fatalf("delay = %v, want latency-only %v", d, DefaultLatency(RDMA))
	}
}

func TestRoundTripIsTwoLegs(t *testing.T) {
	s := sim.New(epoch)
	l := NewLink(s, TCP, 0).WithLatency(100 * time.Microsecond)
	var d time.Duration
	s.Go("p", func(p *sim.Proc) {
		d = l.RoundTrip(p, 100, 8192)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if d != 200*time.Microsecond {
		t.Fatalf("round trip = %v, want 200µs", d)
	}
}

func TestNegativeBytesClamped(t *testing.T) {
	s := sim.New(epoch)
	l := NewLink(s, TCP, 1)
	s.Go("p", func(p *sim.Proc) {
		l.Send(p, -5)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if l.BytesSent() != 0 {
		t.Fatalf("bytes sent = %d, want 0", l.BytesSent())
	}
}
