package netsim

import (
	"testing"
	"time"

	"cloudybench/internal/sim"
)

func TestCutBlocksSendUntilHeal(t *testing.T) {
	s := sim.New(epoch)
	l := NewLink(s, TCP, 0).WithLatency(time.Millisecond)
	l.Cut()
	var done time.Duration
	s.Go("sender", func(p *sim.Proc) {
		l.Send(p, 100)
		done = p.Elapsed()
	})
	s.Go("healer", func(p *sim.Proc) {
		p.Sleep(5 * time.Second)
		l.Heal()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if want := 5*time.Second + time.Millisecond; done != want {
		t.Fatalf("send completed at %v, want %v (blocked until heal + latency)", done, want)
	}
}

func TestUnhealedCutIsADrainDeadlock(t *testing.T) {
	s := sim.New(epoch)
	l := NewLink(s, TCP, 0)
	l.Cut()
	s.Go("sender", func(p *sim.Proc) { l.Send(p, 1) })
	if err := s.Run(); err == nil {
		t.Fatal("sender blocked forever on a cut link should surface as a deadlock error")
	}
}

func TestNetSymmetricPartitionAndHeal(t *testing.T) {
	s := sim.New(epoch)
	n := NewNet()
	ab := NewLink(s, TCP, 0)
	ba := NewLink(s, TCP, 0)
	n.Register("a", "b", ab)
	n.Register("b", "a", ba)
	n.Partition([]string{"a"}, []string{"b"}, true)
	if !ab.IsCut() || !ba.IsCut() {
		t.Fatal("symmetric partition should cut both directions")
	}
	if n.Reachable("a", "b") || n.Reachable("b", "a") {
		t.Fatal("reachability should reflect the cut")
	}
	if !n.Reachable("a", "a") {
		t.Fatal("endpoints always reach themselves")
	}
	n.Heal([]string{"a"}, []string{"b"})
	if ab.IsCut() || ba.IsCut() || n.Partitioned() {
		t.Fatal("heal should clear both directions")
	}
}

func TestNetAsymmetricPartitionCutsOneDirection(t *testing.T) {
	s := sim.New(epoch)
	n := NewNet()
	ab := NewLink(s, TCP, 0)
	ba := NewLink(s, TCP, 0)
	n.Register("a", "b", ab)
	n.Register("b", "a", ba)
	n.Partition([]string{"a"}, []string{"b"}, false)
	if !ab.IsCut() {
		t.Fatal("a->b should be cut")
	}
	if ba.IsCut() {
		t.Fatal("b->a must stay up in an asymmetric partition")
	}
	if n.Reachable("a", "b") || !n.Reachable("b", "a") {
		t.Fatal("reachability should be one-way")
	}
}

func TestNetRegisterDuringActiveCutSeversNewLink(t *testing.T) {
	s := sim.New(epoch)
	n := NewNet()
	n.AddEndpoint("a")
	n.AddEndpoint("b")
	n.Partition([]string{"a"}, []string{"b"}, true)
	l := NewLink(s, TCP, 0)
	n.Register("a", "b", l)
	if !l.IsCut() {
		t.Fatal("a link registered inside an active partition must arrive severed")
	}
	n.HealAll()
	if l.IsCut() || n.Partitioned() {
		t.Fatal("HealAll should clear everything")
	}
}

func TestNetSpikeDegradesLinksBetweenGroups(t *testing.T) {
	s := sim.New(epoch)
	n := NewNet()
	ab := NewLink(s, TCP, 0).WithLatency(100 * time.Microsecond)
	cd := NewLink(s, TCP, 0).WithLatency(100 * time.Microsecond)
	n.Register("a", "b", ab)
	n.Register("c", "d", cd)
	n.Spike([]string{"a"}, []string{"b"}, 10*time.Millisecond, 1)
	if !ab.Degraded() {
		t.Fatal("spiked link should be degraded")
	}
	if cd.Degraded() {
		t.Fatal("spike must only touch links between the named groups")
	}
	n.Unspike([]string{"a"}, []string{"b"})
	if ab.Degraded() {
		t.Fatal("unspike should restore the link")
	}
}

func TestNetEndpointBookkeeping(t *testing.T) {
	n := NewNet()
	n.AddEndpoint("client")
	n.AddEndpoint("client") // idempotent
	if !n.HasEndpoint("client") || n.HasEndpoint("ctrl") {
		t.Fatal("endpoint lookup wrong")
	}
	if got := len(n.Endpoints()); got != 1 {
		t.Fatalf("endpoint count = %d, want 1", got)
	}
}
