package netsim

import "time"

// Net is a deployment-wide registry of named endpoints and the directed
// links between them, so chaos schedules can cut the fabric by *who talks
// to whom* instead of by individual link handles. Partitions are tracked as
// a directed cut set over endpoint pairs; links registered while a cut is
// active (e.g. the replication stream a fail-over creates mid-partition)
// are severed on arrival, which is what a real partition does to a fresh
// TCP connection between the same hosts.
//
// Endpoint names are short deployment-local names: node names like "rw" and
// "ro0", plus the synthetic "client" (workload drivers) and "ctrl" (the
// control plane the failure detector heartbeats over).
type Net struct {
	endpoints []string
	edges     []edge
	// cut is the directed cut set keyed "from\x00to". Lookup-only: it is
	// never ranged into output (detlint maporder); all rendering walks the
	// edges slice, whose order is registration order.
	cut map[string]bool
}

type edge struct {
	from, to string
	link     *Link
}

// NewNet returns an empty network registry.
func NewNet() *Net {
	return &Net{cut: make(map[string]bool)}
}

func cutKey(from, to string) string { return from + "\x00" + to }

// AddEndpoint declares a named endpoint (idempotent). Register adds its
// endpoints implicitly; this exists for link-less endpoints like "client"
// and "ctrl" whose reachability is purely cut-set arithmetic.
func (n *Net) AddEndpoint(name string) {
	if !n.HasEndpoint(name) {
		n.endpoints = append(n.endpoints, name)
	}
}

// HasEndpoint reports whether name is a declared endpoint.
func (n *Net) HasEndpoint(name string) bool {
	for _, e := range n.endpoints {
		if e == name {
			return true
		}
	}
	return false
}

// Endpoints returns the declared endpoint names in declaration order.
func (n *Net) Endpoints() []string { return n.endpoints }

// Register records a directed link between two endpoints. If the pair is
// inside an active cut, the new link is severed immediately.
func (n *Net) Register(from, to string, l *Link) {
	n.AddEndpoint(from)
	n.AddEndpoint(to)
	n.edges = append(n.edges, edge{from: from, to: to, link: l})
	if n.cut[cutKey(from, to)] {
		l.Cut()
	}
}

// Partition cuts traffic from every endpoint in a to every endpoint in b —
// and the reverse direction too when symmetric is true. An asymmetric
// partition (symmetric=false) models a gray failure where a can no longer
// reach b but b still reaches a.
func (n *Net) Partition(a, b []string, symmetric bool) {
	for _, from := range a {
		for _, to := range b {
			n.cut[cutKey(from, to)] = true
			if symmetric {
				n.cut[cutKey(to, from)] = true
			}
		}
	}
	n.applyCuts()
}

// Heal removes the cuts between groups a and b in both directions and wakes
// senders blocked on the healed links.
func (n *Net) Heal(a, b []string) {
	for _, from := range a {
		for _, to := range b {
			delete(n.cut, cutKey(from, to))
			delete(n.cut, cutKey(to, from))
		}
	}
	n.applyCuts()
}

// HealAll clears every active cut. Deployments call this at shutdown so no
// sender is left blocked on a severed link when the simulation drains.
func (n *Net) HealAll() {
	n.cut = make(map[string]bool)
	n.applyCuts()
}

// applyCuts reconciles every registered link with the cut set, in
// registration order (deterministic heal wake-up order).
func (n *Net) applyCuts() {
	for _, e := range n.edges {
		if n.cut[cutKey(e.from, e.to)] {
			e.link.Cut()
		} else {
			e.link.Heal()
		}
	}
}

// Reachable reports whether traffic from one endpoint currently reaches
// another. Endpoints always reach themselves.
func (n *Net) Reachable(from, to string) bool {
	if from == to {
		return true
	}
	return !n.cut[cutKey(from, to)]
}

// Partitioned reports whether any cut is active.
func (n *Net) Partitioned() bool { return len(n.cut) > 0 }

// Spike degrades every registered link between groups a and b (both
// directions) with extra latency and a bandwidth factor — a packet-delay
// spike rather than a full cut.
func (n *Net) Spike(a, b []string, extraLatency time.Duration, bwFactor float64) {
	n.forEachBetween(a, b, func(l *Link) { l.Degrade(extraLatency, bwFactor) })
}

// Unspike restores every registered link between groups a and b.
func (n *Net) Unspike(a, b []string) {
	n.forEachBetween(a, b, func(l *Link) { l.Restore() })
}

func (n *Net) forEachBetween(a, b []string, fn func(*Link)) {
	match := func(groups []string, name string) bool {
		for _, g := range groups {
			if g == name {
				return true
			}
		}
		return false
	}
	for _, e := range n.edges {
		if (match(a, e.from) && match(b, e.to)) || (match(b, e.from) && match(a, e.to)) {
			fn(e.link)
		}
	}
}
