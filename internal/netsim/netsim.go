// Package netsim models the network fabrics connecting compute, log, page,
// and storage services in a disaggregated cloud database: a link has a
// propagation latency and a shared bandwidth channel. The paper's SUTs use
// 10 Gbps TCP/IP fabrics except CDB4, whose memory-disaggregation tier rides
// a 10 Gbps RDMA fabric with roughly an order of magnitude lower latency
// (paper Table IV and §III-F).
package netsim

import (
	"time"

	"cloudybench/internal/obs"
	"cloudybench/internal/sim"
)

// Fabric identifies the link technology, which determines both the latency
// class and the resource-unit price (paper Table III prices TCP/IP and RDMA
// bandwidth differently).
type Fabric string

// Supported fabrics.
const (
	TCP  Fabric = "tcp"
	RDMA Fabric = "rdma"
	// Local marks an in-box path (RDS's coupled compute and storage):
	// negligible latency, no provisioned network bandwidth billed.
	Local Fabric = "local"
)

// DefaultLatency returns the canonical one-way latency for a fabric inside
// one cloud region: intra-VPC TCP round trips are a few hundred
// microseconds, RDMA an order of magnitude lower, local paths negligible.
func DefaultLatency(f Fabric) time.Duration {
	switch f {
	case RDMA:
		return 10 * time.Microsecond
	case Local:
		return 1 * time.Microsecond
	default:
		return 100 * time.Microsecond
	}
}

// Link is a one-directional network path with propagation latency and a
// shared bandwidth channel. Concurrent transfers queue for bandwidth, so a
// saturated link produces honest transfer delays.
type Link struct {
	fabric  Fabric
	latency time.Duration
	gbps    float64
	channel *sim.Queue // one "op" = one byte
	bytes   int64

	// Degradation state (chaos injection): the nominal values are kept so
	// Restore can undo a Degrade exactly.
	baseLatency time.Duration
	baseGbps    float64
	degraded    bool

	// Partition state (chaos injection): while cut, Send blocks the sender
	// until Heal, modelling packets that never arrive. cutCond wakes the
	// blocked senders on heal.
	cut     bool
	cutCond *sim.Cond

	trace *obs.Tracer
}

// NewLink creates a link of the given fabric with the given bandwidth. A
// non-positive gbps means unconstrained bandwidth (latency only).
func NewLink(s *sim.Sim, fabric Fabric, gbps float64) *Link {
	var bytesPerSec float64
	if gbps > 0 {
		bytesPerSec = gbps * 1e9 / 8
	}
	return &Link{
		fabric:  fabric,
		latency: DefaultLatency(fabric),
		gbps:    gbps,
		channel: sim.NewQueue(s, bytesPerSec),
		cutCond: sim.NewCond(s),
	}
}

// WithLatency overrides the link's one-way latency and returns the link.
func (l *Link) WithLatency(d time.Duration) *Link {
	l.latency = d
	return l
}

// SetTracer attaches (or, with nil, detaches) the observability tracer.
// Every blocking transfer then records a net-hop span on the sending
// process's active trace.
func (l *Link) SetTracer(t *obs.Tracer) { l.trace = t }

// Degrade is the chaos-injection hook for network faults: it adds
// extraLatency to every transfer and scales the provisioned bandwidth by
// bwFactor (0 < bwFactor <= 1; factors above 1 or non-positive are clamped
// to 1, i.e. latency-only degradation). In-flight transfers keep their
// already-reserved completion times; subsequent transfers see the degraded
// link. Calling Degrade on an already-degraded link restacks from the
// nominal values, not cumulatively.
func (l *Link) Degrade(extraLatency time.Duration, bwFactor float64) {
	if !l.degraded {
		l.baseLatency = l.latency
		l.baseGbps = l.gbps
		l.degraded = true
	}
	if bwFactor <= 0 || bwFactor > 1 {
		bwFactor = 1
	}
	l.latency = l.baseLatency + extraLatency
	l.gbps = l.baseGbps * bwFactor
	if l.baseGbps > 0 {
		l.channel.SetRate(l.gbps * 1e9 / 8)
	}
}

// Restore undoes a Degrade, returning the link to its nominal latency and
// bandwidth. It is a no-op on a healthy link.
func (l *Link) Restore() {
	if !l.degraded {
		return
	}
	l.latency = l.baseLatency
	l.gbps = l.baseGbps
	if l.gbps > 0 {
		l.channel.SetRate(l.gbps * 1e9 / 8)
	}
	l.degraded = false
}

// Degraded reports whether the link is currently operating under an
// injected degradation.
func (l *Link) Degraded() bool { return l.degraded }

// Cut severs the link: subsequent Send calls block until Heal. Transfers
// already past the cut check (mid-flight packets) complete normally, which
// matches a real partition — the wire drops new packets, it does not recall
// delivered ones.
func (l *Link) Cut() { l.cut = true }

// Heal reconnects a cut link and wakes every sender blocked on it; their
// transfers then proceed at the link's current latency and bandwidth. It is
// a no-op on a healthy link.
func (l *Link) Heal() {
	if !l.cut {
		return
	}
	l.cut = false
	l.cutCond.Broadcast()
}

// IsCut reports whether the link is currently severed.
func (l *Link) IsCut() bool { return l.cut }

// Fabric returns the link's fabric type.
func (l *Link) Fabric() Fabric { return l.fabric }

// Gbps returns the provisioned bandwidth (0 = unconstrained).
func (l *Link) Gbps() float64 { return l.gbps }

// Latency returns the one-way propagation latency.
func (l *Link) Latency() time.Duration { return l.latency }

// Send transfers bytes over the link, blocking the process for propagation
// latency plus bandwidth (and any queueing behind concurrent transfers).
// On a cut link the sender blocks until Heal before the transfer starts.
// It returns the total delay experienced, including any partition wait.
func (l *Link) Send(p *sim.Proc, bytes int) time.Duration {
	if bytes < 0 {
		bytes = 0
	}
	tr := l.trace
	var t0 time.Duration
	if tr != nil {
		t0 = p.Elapsed()
	}
	start := p.Elapsed()
	for l.cut {
		l.cutCond.Wait(p)
	}
	l.bytes += int64(bytes)
	d := l.channel.Reserve(bytes) + l.latency
	p.Sleep(d)
	if tr != nil {
		tr.Record(p, obs.KindNetHop, t0, p.Elapsed())
	}
	return p.Elapsed() - start // transfer delay + any partition wait
}

// Reserve books a transfer on the link and returns its total delay
// (bandwidth queueing + propagation) without sleeping, so callers can fold
// several path segments into one scheduler block. Unlike Send it does not
// observe partitions: it models in-box fast paths that no chaos schedule
// cuts (callers on partitionable paths must use Send).
func (l *Link) Reserve(bytes int) time.Duration {
	if bytes < 0 {
		bytes = 0
	}
	l.bytes += int64(bytes)
	return l.channel.Reserve(bytes) + l.latency
}

// RoundTrip performs a request/response exchange: request bytes out,
// response bytes back, each paying propagation latency.
func (l *Link) RoundTrip(p *sim.Proc, reqBytes, respBytes int) time.Duration {
	d := l.Send(p, reqBytes)
	d += l.Send(p, respBytes)
	return d
}

// BytesSent returns the cumulative payload bytes pushed through the link.
func (l *Link) BytesSent() int64 { return l.bytes }
