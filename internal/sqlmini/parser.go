package sqlmini

import (
	"fmt"
	"strconv"
	"strings"

	"cloudybench/internal/engine"
)

// StmtKind is the statement class.
type StmtKind int

// Statement kinds.
const (
	StmtSelect StmtKind = iota + 1
	StmtInsert
	StmtUpdate
	StmtDelete
	StmtCreateIndex
)

func (k StmtKind) String() string {
	switch k {
	case StmtSelect:
		return "SELECT"
	case StmtInsert:
		return "INSERT"
	case StmtUpdate:
		return "UPDATE"
	case StmtDelete:
		return "DELETE"
	case StmtCreateIndex:
		return "CREATE INDEX"
	}
	return "?"
}

type exprKind int

const (
	exprPlaceholder exprKind = iota + 1
	exprLiteral
	exprDefault
	exprSelfPlus // col = col + <placeholder|literal>
)

type expr struct {
	kind   exprKind
	lit    engine.Value
	argIdx int   // placeholder position, assigned left-to-right
	addend *expr // for exprSelfPlus
}

// Stmt is a prepared statement bound to one database's table.
type Stmt struct {
	Kind  StmtKind
	SQL   string
	db    *engine.DB
	table *engine.Table

	// SELECT
	selectCols []int // projected column indexes; nil = *

	// WHERE pk = <expr> (select/update/delete)
	whereExpr *expr

	// WHERE <col> = <expr> / WHERE <col> BETWEEN <lo> AND <hi>
	// (SELECT only). whereCol is -1 for the point-access form above;
	// equality on a non-key column stores the same *expr as both bounds.
	whereCol int
	whereLo  *expr
	whereHi  *expr

	// Plan selects the scan strategy for range SELECTs. Zero value
	// (engine.PlanAuto) lets the selectivity rule decide; the differential
	// harness forces each side.
	Plan engine.PlanMode

	// UPDATE SET
	setCols  []int
	setExprs []*expr

	// INSERT values, one per schema column
	insertExprs []*expr

	// CREATE INDEX
	ixName string
	ixCol  int

	// NumArgs is the number of '?' placeholders.
	NumArgs int
}

type parser struct {
	db   *engine.DB
	toks []token
	pos  int
	args int
	sql  string
}

// Prepare parses and binds sql against the database's catalog.
func Prepare(db *engine.DB, sql string) (*Stmt, error) {
	toks, err := lex(sql)
	if err != nil {
		return nil, err
	}
	p := &parser{db: db, toks: toks, sql: sql}
	st, err := p.parse()
	if err != nil {
		return nil, fmt.Errorf("sqlmini: %v in %q", err, sql)
	}
	st.SQL = sql
	st.db = db
	st.NumArgs = p.args
	return st, nil
}

// MustPrepare is Prepare that panics on error (setup code).
func MustPrepare(db *engine.DB, sql string) *Stmt {
	st, err := Prepare(db, sql)
	if err != nil {
		panic(err)
	}
	return st
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) isKeyword(kw string) bool {
	t := p.peek()
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

func (p *parser) expectKeyword(kw string) error {
	if !p.isKeyword(kw) {
		return fmt.Errorf("expected %s, got %s", kw, p.peek())
	}
	p.pos++
	return nil
}

func (p *parser) isSymbol(sym string) bool {
	t := p.peek()
	return t.kind == tokSymbol && t.text == sym
}

func (p *parser) expectSymbol(sym string) error {
	if !p.isSymbol(sym) {
		return fmt.Errorf("expected %q, got %s", sym, p.peek())
	}
	p.pos++
	return nil
}

func (p *parser) ident() (string, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return "", fmt.Errorf("expected identifier, got %s", t)
	}
	p.pos++
	return t.text, nil
}

func (p *parser) parse() (*Stmt, error) {
	switch {
	case p.isKeyword("SELECT"):
		return p.parseSelect()
	case p.isKeyword("INSERT"):
		return p.parseInsert()
	case p.isKeyword("UPDATE"):
		return p.parseUpdate()
	case p.isKeyword("DELETE"):
		return p.parseDelete()
	case p.isKeyword("CREATE"):
		return p.parseCreateIndex()
	default:
		return nil, fmt.Errorf("expected SELECT/INSERT/UPDATE/DELETE/CREATE, got %s", p.peek())
	}
}

func (p *parser) resolveTable(name string) (*engine.Table, error) {
	tbl := p.db.Table(strings.ToLower(name))
	if tbl == nil {
		return nil, fmt.Errorf("unknown table %q", name)
	}
	return tbl, nil
}

func (p *parser) colIndex(tbl *engine.Table, name string) (int, error) {
	idx := tbl.Schema.ColIndex(strings.ToUpper(name))
	if idx < 0 {
		idx = tbl.Schema.ColIndex(name)
	}
	if idx < 0 {
		return 0, fmt.Errorf("unknown column %q in table %s", name, tbl.Schema.Name)
	}
	return idx, nil
}

// valueExpr parses '?' or a literal.
func (p *parser) valueExpr() (*expr, error) {
	t := p.peek()
	switch t.kind {
	case tokPlaceholder:
		p.pos++
		e := &expr{kind: exprPlaceholder, argIdx: p.args}
		p.args++
		return e, nil
	case tokString:
		p.pos++
		return &expr{kind: exprLiteral, lit: engine.Str(t.text)}, nil
	case tokNumber:
		p.pos++
		if strings.ContainsRune(t.text, '.') {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, fmt.Errorf("bad number %q", t.text)
			}
			return &expr{kind: exprLiteral, lit: engine.Float(f)}, nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad number %q", t.text)
		}
		return &expr{kind: exprLiteral, lit: engine.Int(n)}, nil
	default:
		return nil, fmt.Errorf("expected value, got %s", t)
	}
}

// where parses the WHERE clause into st. DML statements (allowRange false)
// keep the subset's point-access contract: "WHERE <pkcol> = <value>" only.
// SELECT (allowRange true) additionally accepts equality on any column and
// "WHERE <col> BETWEEN <lo> AND <hi>", which lower onto the range planner.
func (p *parser) where(st *Stmt, allowRange bool) error {
	if err := p.expectKeyword("WHERE"); err != nil {
		return err
	}
	col, err := p.ident()
	if err != nil {
		return err
	}
	tbl := st.table
	idx, err := p.colIndex(tbl, col)
	if err != nil {
		return err
	}
	isPK := len(tbl.Schema.KeyCols) == 1 && tbl.Schema.KeyCols[0] == idx
	if p.isKeyword("BETWEEN") {
		if !allowRange {
			return fmt.Errorf("BETWEEN is only supported in SELECT")
		}
		p.pos++
		lo, err := p.valueExpr()
		if err != nil {
			return err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return err
		}
		hi, err := p.valueExpr()
		if err != nil {
			return err
		}
		st.whereCol, st.whereLo, st.whereHi = idx, lo, hi
		return nil
	}
	if err := p.expectSymbol("="); err != nil {
		return err
	}
	e, err := p.valueExpr()
	if err != nil {
		return err
	}
	if isPK {
		st.whereExpr = e
		return nil
	}
	if !allowRange {
		return fmt.Errorf("WHERE column %q is not the primary key of %s", col, tbl.Schema.Name)
	}
	// Equality on a secondary column: a degenerate range sharing one expr.
	st.whereCol, st.whereLo, st.whereHi = idx, e, e
	return nil
}

func (p *parser) parseSelect() (*Stmt, error) {
	p.pos++ // SELECT
	st := &Stmt{Kind: StmtSelect, whereCol: -1}
	star := false
	var colNames []string
	if p.isSymbol("*") {
		p.pos++
		star = true
	} else {
		for {
			name, err := p.ident()
			if err != nil {
				return nil, err
			}
			colNames = append(colNames, name)
			if !p.isSymbol(",") {
				break
			}
			p.pos++
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	tname, err := p.ident()
	if err != nil {
		return nil, err
	}
	st.table, err = p.resolveTable(tname)
	if err != nil {
		return nil, err
	}
	if !star {
		for _, name := range colNames {
			idx, err := p.colIndex(st.table, name)
			if err != nil {
				return nil, err
			}
			st.selectCols = append(st.selectCols, idx)
		}
	}
	if err := p.where(st, true); err != nil {
		return nil, err
	}
	return st, p.finish()
}

func (p *parser) parseInsert() (*Stmt, error) {
	p.pos++ // INSERT
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	tname, err := p.ident()
	if err != nil {
		return nil, err
	}
	st := &Stmt{Kind: StmtInsert, whereCol: -1}
	st.table, err = p.resolveTable(tname)
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	for {
		if p.isKeyword("DEFAULT") {
			p.pos++
			st.insertExprs = append(st.insertExprs, &expr{kind: exprDefault})
		} else {
			e, err := p.valueExpr()
			if err != nil {
				return nil, err
			}
			st.insertExprs = append(st.insertExprs, e)
		}
		if p.isSymbol(",") {
			p.pos++
			continue
		}
		break
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	if got, want := len(st.insertExprs), len(st.table.Schema.Cols); got != want {
		return nil, fmt.Errorf("INSERT supplies %d values, table %s has %d columns", got, st.table.Schema.Name, want)
	}
	for i, e := range st.insertExprs {
		if e.kind == exprDefault {
			if len(st.table.Schema.KeyCols) != 1 || st.table.Schema.KeyCols[0] != i {
				return nil, fmt.Errorf("DEFAULT only supported for the auto-increment primary key column")
			}
		}
	}
	return st, p.finish()
}

func (p *parser) parseUpdate() (*Stmt, error) {
	p.pos++ // UPDATE
	tname, err := p.ident()
	if err != nil {
		return nil, err
	}
	st := &Stmt{Kind: StmtUpdate, whereCol: -1}
	st.table, err = p.resolveTable(tname)
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	for {
		colName, err := p.ident()
		if err != nil {
			return nil, err
		}
		idx, err := p.colIndex(st.table, colName)
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("="); err != nil {
			return nil, err
		}
		// Either "col = col + value" (self-relative) or a plain value.
		if p.peek().kind == tokIdent && !p.isKeyword("DEFAULT") {
			ref, err := p.ident()
			if err != nil {
				return nil, err
			}
			refIdx, err := p.colIndex(st.table, ref)
			if err != nil {
				return nil, err
			}
			if refIdx != idx {
				return nil, fmt.Errorf("SET %s = %s: only self-referencing arithmetic is supported", colName, ref)
			}
			if err := p.expectSymbol("+"); err != nil {
				return nil, err
			}
			addend, err := p.valueExpr()
			if err != nil {
				return nil, err
			}
			st.setCols = append(st.setCols, idx)
			st.setExprs = append(st.setExprs, &expr{kind: exprSelfPlus, addend: addend})
		} else {
			e, err := p.valueExpr()
			if err != nil {
				return nil, err
			}
			st.setCols = append(st.setCols, idx)
			st.setExprs = append(st.setExprs, e)
		}
		if p.isSymbol(",") {
			p.pos++
			continue
		}
		break
	}
	if err := p.where(st, false); err != nil {
		return nil, err
	}
	return st, p.finish()
}

func (p *parser) parseDelete() (*Stmt, error) {
	p.pos++ // DELETE
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	tname, err := p.ident()
	if err != nil {
		return nil, err
	}
	st := &Stmt{Kind: StmtDelete, whereCol: -1}
	var err2 error
	st.table, err2 = p.resolveTable(tname)
	if err2 != nil {
		return nil, err2
	}
	if err := p.where(st, false); err != nil {
		return nil, err
	}
	return st, p.finish()
}

// parseCreateIndex parses "CREATE INDEX <name> ON <table> (<col>)". The
// index is created at Exec time, not at Prepare, so preparing the same DDL
// twice is harmless.
func (p *parser) parseCreateIndex() (*Stmt, error) {
	p.pos++ // CREATE
	if err := p.expectKeyword("INDEX"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	// The canonical form lowercases the index name, which is only
	// byte-stable for ASCII identifiers; the lexer is looser (any letter).
	for i := 0; i < len(name); i++ {
		c := name[i]
		if c != '_' && (c < 'a' || c > 'z') && (c < 'A' || c > 'Z') && (c < '0' || c > '9') {
			return nil, fmt.Errorf("index name %q must be an ASCII identifier", name)
		}
	}
	if err := p.expectKeyword("ON"); err != nil {
		return nil, err
	}
	tname, err := p.ident()
	if err != nil {
		return nil, err
	}
	st := &Stmt{Kind: StmtCreateIndex, whereCol: -1, ixName: strings.ToLower(name)}
	st.table, err = p.resolveTable(tname)
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	col, err := p.ident()
	if err != nil {
		return nil, err
	}
	st.ixCol, err = p.colIndex(st.table, col)
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return st, p.finish()
}

func (p *parser) finish() error {
	if p.isSymbol(";") {
		p.pos++
	}
	if p.peek().kind != tokEOF {
		return fmt.Errorf("trailing input starting at %s", p.peek())
	}
	return nil
}
