package sqlmini

import (
	"strconv"
	"strings"

	"cloudybench/internal/engine"
)

// Render prints the prepared statement back as canonical SQL: schema-cased
// identifiers, single spacing, '?' placeholders in positional order. The
// canonical form is a fixed point — parsing Render's output and rendering
// again reproduces it byte for byte (the property the parser fuzz test
// enforces).
func (st *Stmt) Render() string {
	var b strings.Builder
	switch st.Kind {
	case StmtSelect:
		b.WriteString("SELECT ")
		if st.selectCols == nil {
			b.WriteString("*")
		} else {
			for i, ci := range st.selectCols {
				if i > 0 {
					b.WriteString(", ")
				}
				b.WriteString(st.table.Schema.Cols[ci].Name)
			}
		}
		b.WriteString(" FROM ")
		b.WriteString(st.table.Schema.Name)
		st.renderWhere(&b)
	case StmtInsert:
		b.WriteString("INSERT INTO ")
		b.WriteString(st.table.Schema.Name)
		b.WriteString(" VALUES (")
		for i, e := range st.insertExprs {
			if i > 0 {
				b.WriteString(", ")
			}
			renderExpr(&b, e, "")
		}
		b.WriteString(")")
	case StmtUpdate:
		b.WriteString("UPDATE ")
		b.WriteString(st.table.Schema.Name)
		b.WriteString(" SET ")
		for i, ci := range st.setCols {
			if i > 0 {
				b.WriteString(", ")
			}
			name := st.table.Schema.Cols[ci].Name
			b.WriteString(name)
			b.WriteString(" = ")
			renderExpr(&b, st.setExprs[i], name)
		}
		st.renderWhere(&b)
	case StmtDelete:
		b.WriteString("DELETE FROM ")
		b.WriteString(st.table.Schema.Name)
		st.renderWhere(&b)
	case StmtCreateIndex:
		b.WriteString("CREATE INDEX ")
		b.WriteString(st.ixName)
		b.WriteString(" ON ")
		b.WriteString(st.table.Schema.Name)
		b.WriteString(" (")
		b.WriteString(st.table.Schema.Cols[st.ixCol].Name)
		b.WriteString(")")
	}
	return b.String()
}

func (st *Stmt) renderWhere(b *strings.Builder) {
	if st.whereLo != nil {
		b.WriteString(" WHERE ")
		b.WriteString(st.table.Schema.Cols[st.whereCol].Name)
		if st.whereLo == st.whereHi {
			// Secondary-column equality: one shared bound expr.
			b.WriteString(" = ")
			renderExpr(b, st.whereLo, "")
			return
		}
		b.WriteString(" BETWEEN ")
		renderExpr(b, st.whereLo, "")
		b.WriteString(" AND ")
		renderExpr(b, st.whereHi, "")
		return
	}
	if st.whereExpr == nil {
		return
	}
	b.WriteString(" WHERE ")
	b.WriteString(st.table.Schema.Cols[st.table.Schema.KeyCols[0]].Name)
	b.WriteString(" = ")
	renderExpr(b, st.whereExpr, "")
}

// renderExpr prints one value expression. col is the SET target column name,
// needed for the self-referencing "col = col + x" form.
func renderExpr(b *strings.Builder, e *expr, col string) {
	switch e.kind {
	case exprPlaceholder:
		b.WriteString("?")
	case exprDefault:
		b.WriteString("DEFAULT")
	case exprSelfPlus:
		b.WriteString(col)
		b.WriteString(" + ")
		renderExpr(b, e.addend, "")
	case exprLiteral:
		renderLiteral(b, e.lit)
	}
}

func renderLiteral(b *strings.Builder, v engine.Value) {
	switch v.Kind {
	case engine.KindInt:
		b.WriteString(strconv.FormatInt(v.I, 10))
	case engine.KindFloat:
		// 'f' avoids exponent forms the lexer cannot read; the forced
		// decimal point keeps the literal a float on reparse.
		s := strconv.FormatFloat(v.F, 'f', -1, 64)
		if !strings.ContainsAny(s, ".") {
			s += ".0"
		}
		b.WriteString(s)
	case engine.KindString:
		b.WriteString("'")
		b.WriteString(strings.ReplaceAll(v.S, "'", "''"))
		b.WriteString("'")
	}
}
