package sqlmini

import (
	"strings"
	"testing"

	"cloudybench/internal/engine"
	"cloudybench/internal/sim"
)

// TestCreateIndexAndRangeSelect drives the new DDL and range syntax end to
// end: CREATE INDEX through SQL, then BETWEEN and secondary-equality
// SELECTs whose forced index and forced full-scan executions must agree.
func TestCreateIndexAndRangeSelect(t *testing.T) {
	s := sim.New(epoch)
	db := testDB(s, t)

	ddl := MustPrepare(db, "CREATE INDEX ix_orders_cust ON orders (O_C_ID)")
	res, err := ddl.Exec(nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Affected == 0 {
		t.Fatal("CREATE INDEX materialized no base rows")
	}
	if db.Index("ix_orders_cust") == nil {
		t.Fatal("index not registered in the catalog")
	}
	if _, err := ddl.Exec(nil); err == nil {
		t.Fatal("re-running CREATE INDEX did not report the duplicate")
	}

	between := MustPrepare(db, "SELECT O_ID, O_C_ID FROM orders WHERE O_C_ID BETWEEN ? AND ?")
	if between.NumArgs != 2 {
		t.Fatalf("BETWEEN placeholders: %d args", between.NumArgs)
	}
	eq := MustPrepare(db, "SELECT * FROM orders WHERE O_C_ID = ?")
	if eq.NumArgs != 1 {
		t.Fatalf("secondary equality: %d args", eq.NumArgs)
	}

	inTxn(t, db, s, func(ex Execer) {
		between.Plan = engine.PlanForceIndex
		a, err := between.Exec(ex, engine.Int(1), engine.Int(3))
		if err != nil {
			t.Fatalf("index plan: %v", err)
		}
		between.Plan = engine.PlanForceScan
		b, err := between.Exec(ex, engine.Int(1), engine.Int(3))
		if err != nil {
			t.Fatalf("scan plan: %v", err)
		}
		if len(a.Rows) == 0 || len(a.Rows) != len(b.Rows) {
			t.Fatalf("plans disagree: index %d rows, scan %d rows", len(a.Rows), len(b.Rows))
		}
		for i := range a.Rows {
			if !a.Rows[i].Equal(b.Rows[i]) {
				t.Fatalf("row %d differs between plans: %v vs %v", i, a.Rows[i], b.Rows[i])
			}
		}
		if len(a.Cols) != 2 || a.Cols[1] != "O_C_ID" {
			t.Fatalf("projection lost: %v", a.Cols)
		}
		one, err := eq.Exec(ex, engine.Int(2))
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range one.Rows {
			if row[1].I != 2 {
				t.Fatalf("equality predicate returned row with O_C_ID=%d", row[1].I)
			}
		}
	})
}

// TestRangeSelectNeedsScanExecer pins the error when a range statement runs
// against an executor without scan support.
func TestRangeSelectNeedsScanExecer(t *testing.T) {
	s := sim.New(epoch)
	db := testDB(s, t)
	st := MustPrepare(db, "SELECT * FROM orders WHERE O_C_ID BETWEEN 1 AND 2")
	var ex pointOnlyExec
	if _, err := st.Exec(ex); err == nil || !strings.Contains(err.Error(), "range scans") {
		t.Fatalf("want range-scan capability error, got %v", err)
	}
}

type pointOnlyExec struct{}

func (pointOnlyExec) Get(*engine.Table, engine.Key) (engine.Row, error) { return nil, nil }
func (pointOnlyExec) Insert(*engine.Table, engine.Row) error            { return nil }
func (pointOnlyExec) Update(*engine.Table, engine.Key, engine.Row) error {
	return nil
}
func (pointOnlyExec) Delete(*engine.Table, engine.Key) error { return nil }

// TestRenderNewSyntaxCanonicalForms checks the printer's canonical output
// for CREATE INDEX, BETWEEN, and secondary equality, and that each form is
// a parse/render fixed point.
func TestRenderNewSyntaxCanonicalForms(t *testing.T) {
	s := sim.New(epoch)
	db := testDB(s, t)
	cases := []struct{ sql, want string }{
		{"create index IX_ORDERS_CUST on ORDERS ( o_c_id )", "CREATE INDEX ix_orders_cust ON orders (O_C_ID)"},
		{"select o_id from orders where o_c_id between 1 and 5", "SELECT O_ID FROM orders WHERE O_C_ID BETWEEN 1 AND 5"},
		{"SELECT * FROM orders WHERE O_C_ID BETWEEN ? AND ?", "SELECT * FROM orders WHERE O_C_ID BETWEEN ? AND ?"},
		{"SELECT * FROM orders WHERE O_STATUS = 'PAID'", "SELECT * FROM orders WHERE O_STATUS = 'PAID'"},
		{"SELECT * FROM orders WHERE O_TOTALAMOUNT BETWEEN 0.5 AND 2", "SELECT * FROM orders WHERE O_TOTALAMOUNT BETWEEN 0.5 AND 2"},
		{"SELECT * FROM orders WHERE O_ID BETWEEN ? AND 7;", "SELECT * FROM orders WHERE O_ID BETWEEN ? AND 7"},
	}
	for _, c := range cases {
		st, err := Prepare(db, c.sql)
		if err != nil {
			t.Fatalf("prepare %q: %v", c.sql, err)
		}
		got := st.Render()
		if got != c.want {
			t.Fatalf("Render(%q) = %q, want %q", c.sql, got, c.want)
		}
		st2, err := Prepare(db, got)
		if err != nil {
			t.Fatalf("canonical form rejected: %q: %v", got, err)
		}
		if again := st2.Render(); again != got {
			t.Fatalf("not a fixed point: %q vs %q", again, got)
		}
	}
}
