package sqlmini

import (
	"strings"
	"testing"
	"time"

	"cloudybench/internal/core"
	"cloudybench/internal/engine"
	"cloudybench/internal/sim"
)

var epoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

// testDB builds a DB with the CloudyBench sales schema at a tiny scale.
func testDB(s *sim.Sim, t *testing.T) *engine.DB {
	t.Helper()
	db := engine.NewDB(s)
	d := core.NewDataset(1, 42)
	if err := d.CreateTables(db); err != nil {
		t.Fatal(err)
	}
	return db
}

// inTxn runs fn inside a simulation process with a fresh transaction,
// committing afterwards.
func inTxn(t *testing.T, db *engine.DB, s *sim.Sim, fn func(ex Execer)) {
	t.Helper()
	s.Go("txn", func(p *sim.Proc) {
		txn := db.Begin(p)
		fn(EngineExec{Txn: txn})
		if _, err := txn.Commit(); err != nil {
			t.Error(err)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestPrepareTableIIStatements(t *testing.T) {
	s := sim.New(epoch)
	db := testDB(s, t)
	stmts, err := LoadDefaultSqlstmts(db)
	if err != nil {
		t.Fatal(err)
	}
	if stmts.T1Insert.Kind != StmtInsert || stmts.T1Insert.NumArgs != 4 {
		t.Fatalf("T1: %v args %d", stmts.T1Insert.Kind, stmts.T1Insert.NumArgs)
	}
	if stmts.T2SelectOrder.Kind != StmtSelect || stmts.T2SelectOrder.NumArgs != 1 {
		t.Fatal("T2 select")
	}
	if stmts.T2UpdateOrder.NumArgs != 2 || stmts.T2UpdateCustomer.NumArgs != 3 {
		t.Fatal("T2 updates arg counts")
	}
	if stmts.T4Delete.Kind != StmtDelete {
		t.Fatal("T4")
	}
}

func TestSelectByPrimaryKey(t *testing.T) {
	s := sim.New(epoch)
	db := testDB(s, t)
	sel := MustPrepare(db, "SELECT O_ID, O_DATE, O_STATUS FROM orders WHERE O_ID = ?")
	inTxn(t, db, s, func(ex Execer) {
		res, err := sel.Exec(ex, engine.Int(7))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 1 || res.Rows[0][0].I != 7 {
			t.Fatalf("rows: %v", res.Rows)
		}
		if len(res.Cols) != 3 || res.Cols[2] != "O_STATUS" {
			t.Fatalf("cols: %v", res.Cols)
		}
		// Missing row: zero rows, no error.
		res, err = sel.Exec(ex, engine.Int(999_999_999))
		if err != nil || len(res.Rows) != 0 {
			t.Fatalf("missing row: %v %v", res.Rows, err)
		}
	})
}

func TestSelectStar(t *testing.T) {
	s := sim.New(epoch)
	db := testDB(s, t)
	sel := MustPrepare(db, "SELECT * FROM customer WHERE C_ID = ?")
	inTxn(t, db, s, func(ex Execer) {
		res, err := sel.Exec(ex, engine.Int(3))
		if err != nil || len(res.Rows) != 1 {
			t.Fatalf("%v %v", res, err)
		}
		if len(res.Cols) != 4 || len(res.Rows[0]) != 4 {
			t.Fatalf("star projection: %v", res.Cols)
		}
	})
}

func TestInsertWithDefaultAutoID(t *testing.T) {
	s := sim.New(epoch)
	db := testDB(s, t)
	ins := MustPrepare(db, "INSERT INTO orderline VALUES (DEFAULT, ?, ?, ?, ?)")
	ol := db.Table(core.TableOrderline)
	before := ol.MaxID()
	inTxn(t, db, s, func(ex Execer) {
		res, err := ins.Exec(ex, engine.Int(5), engine.Str("sku-x"), engine.Int(2), engine.Float(9.5))
		if err != nil {
			t.Fatal(err)
		}
		if res.Affected != 1 || res.AutoID != before+1 {
			t.Fatalf("insert result: %+v", res)
		}
	})
	row, _, ok := ol.Get(engine.IntKey(before + 1))
	if !ok || row[1].I != 5 || row[2].S != "sku-x" {
		t.Fatalf("inserted row: %v %v", row, ok)
	}
}

func TestUpdateWithLiteralAndArithmetic(t *testing.T) {
	s := sim.New(epoch)
	db := testDB(s, t)
	updOrder := MustPrepare(db, "UPDATE orders SET O_UPDATEDDATE = ?, O_STATUS = 'PAID' WHERE O_ID = ?")
	updCust := MustPrepare(db, "UPDATE customer SET C_CREDIT = C_CREDIT + ?, C_UPDATEDDATE = ? WHERE C_ID = ?")
	cust := db.Table(core.TableCustomer)
	beforeRow, _, _ := cust.Get(engine.IntKey(9))
	beforeCredit := beforeRow[2].F
	inTxn(t, db, s, func(ex Execer) {
		res, err := updOrder.Exec(ex, engine.Int(123456), engine.Int(4))
		if err != nil || res.Affected != 1 {
			t.Fatalf("order update: %+v %v", res, err)
		}
		res, err = updCust.Exec(ex, engine.Float(25.5), engine.Int(777), engine.Int(9))
		if err != nil || res.Affected != 1 {
			t.Fatalf("customer update: %+v %v", res, err)
		}
		// Missing row affects zero.
		res, err = updOrder.Exec(ex, engine.Int(1), engine.Int(987_654_321))
		if err != nil || res.Affected != 0 {
			t.Fatalf("missing update: %+v %v", res, err)
		}
	})
	orow, _, _ := db.Table(core.TableOrders).Get(engine.IntKey(4))
	if orow[4].S != "PAID" || orow[5].I != 123456 {
		t.Fatalf("order after update: %v", orow)
	}
	crow, _, _ := cust.Get(engine.IntKey(9))
	if crow[2].F != beforeCredit+25.5 || crow[3].I != 777 {
		t.Fatalf("credit = %v, want %v", crow[2].F, beforeCredit+25.5)
	}
}

func TestUpdateIntArithmeticAndCoercion(t *testing.T) {
	s := sim.New(epoch)
	db := testDB(s, t)
	// Integer self-plus on an int column.
	upd := MustPrepare(db, "UPDATE orderline SET OL_QUANTITY = OL_QUANTITY + ? WHERE OL_ID = ?")
	ol := db.Table(core.TableOrderline)
	before, _, _ := ol.Get(engine.IntKey(11))
	inTxn(t, db, s, func(ex Execer) {
		if _, err := upd.Exec(ex, engine.Int(3), engine.Int(11)); err != nil {
			t.Fatal(err)
		}
		// Int arg against a float column coerces.
		updAmt := MustPrepare(db, "UPDATE orderline SET OL_AMOUNT = ? WHERE OL_ID = ?")
		if _, err := updAmt.Exec(ex, engine.Int(42), engine.Int(11)); err != nil {
			t.Fatal(err)
		}
	})
	after, _, _ := ol.Get(engine.IntKey(11))
	if after[3].I != before[3].I+3 {
		t.Fatalf("quantity: %v -> %v", before[3], after[3])
	}
	if after[4].Kind != engine.KindFloat || after[4].F != 42 {
		t.Fatalf("amount coercion: %v", after[4])
	}
}

func TestDeleteStatement(t *testing.T) {
	s := sim.New(epoch)
	db := testDB(s, t)
	del := MustPrepare(db, "DELETE FROM orderline WHERE OL_ID = ?")
	inTxn(t, db, s, func(ex Execer) {
		res, err := del.Exec(ex, engine.Int(42))
		if err != nil || res.Affected != 1 {
			t.Fatalf("delete: %+v %v", res, err)
		}
		res, err = del.Exec(ex, engine.Int(42))
		if err != nil || res.Affected != 0 {
			t.Fatalf("double delete: %+v %v", res, err)
		}
	})
	if _, _, ok := db.Table(core.TableOrderline).Get(engine.IntKey(42)); ok {
		t.Fatal("row visible after delete")
	}
}

func TestArgCountMismatch(t *testing.T) {
	s := sim.New(epoch)
	db := testDB(s, t)
	sel := MustPrepare(db, "SELECT * FROM orders WHERE O_ID = ?")
	inTxn(t, db, s, func(ex Execer) {
		if _, err := sel.Exec(ex); err == nil {
			t.Error("missing args accepted")
		}
		if _, err := sel.Exec(ex, engine.Int(1), engine.Int(2)); err == nil {
			t.Error("extra args accepted")
		}
	})
}

func TestPrepareErrors(t *testing.T) {
	s := sim.New(epoch)
	db := testDB(s, t)
	bad := []struct {
		sql, wantSub string
	}{
		{"SELEC * FROM orders WHERE O_ID = ?", "expected SELECT"},
		{"SELECT * FROM nope WHERE X = ?", "unknown table"},
		{"UPDATE orders SET O_STATUS = 'X' WHERE O_STATUS = ?", "not the primary key"},
		{"DELETE FROM orders WHERE O_STATUS = ?", "not the primary key"},
		{"UPDATE orders SET O_STATUS = 'X' WHERE O_ID BETWEEN ? AND ?", "only supported in SELECT"},
		{"DELETE FROM orders WHERE O_ID BETWEEN ? AND ?", "only supported in SELECT"},
		{"SELECT * FROM orders WHERE O_ID BETWEEN ?", "expected AND"},
		{"CREATE INDEX ix ON nope (X)", "unknown table"},
		{"CREATE INDEX ix ON orders (NOPE)", "unknown column"},
		{"CREATE INDEX ix ON orders O_STATUS", `expected "("`},
		{"CREATE TABLE t (x)", "expected INDEX"},
		{"SELECT NOPE FROM orders WHERE O_ID = ?", "unknown column"},
		{"INSERT INTO orders VALUES (?)", "columns"},
		{"INSERT INTO orderline VALUES (?, DEFAULT, ?, ?, ?)", "DEFAULT only supported"},
		{"UPDATE orders SET O_STATUS = O_DATE + ? WHERE O_ID = ?", "self-referencing"},
		{"DELETE FROM orders", "expected WHERE"},
		{"SELECT * FROM orders WHERE O_ID = ? garbage", "trailing input"},
		{"UPDATE orders SET O_STATUS 'PAID' WHERE O_ID = ?", `expected "="`},
		{"SELECT * FROM orders WHERE O_ID = 'x", "unterminated string"},
	}
	for _, c := range bad {
		_, err := Prepare(db, c.sql)
		if err == nil {
			t.Errorf("Prepare(%q) succeeded", c.sql)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("Prepare(%q) error %q missing %q", c.sql, err, c.wantSub)
		}
	}
}

func TestLexerEdgeCases(t *testing.T) {
	toks, err := lex("SELECT a, b2 FROM t WHERE x = -3.5; ")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []tokenKind
	for _, tk := range toks {
		kinds = append(kinds, tk.kind)
	}
	if toks[len(toks)-1].kind != tokEOF {
		t.Fatal("no EOF token")
	}
	// -3.5 must lex as one number.
	found := false
	for _, tk := range toks {
		if tk.kind == tokNumber && tk.text == "-3.5" {
			found = true
		}
	}
	if !found {
		t.Fatalf("negative float not lexed: %v", toks)
	}
	// Escaped quote inside string.
	toks, err = lex("UPDATE t SET s = 'it''s' WHERE id = ?")
	if err != nil {
		t.Fatal(err)
	}
	for _, tk := range toks {
		if tk.kind == tokString && tk.text != "it's" {
			t.Fatalf("string escape: %q", tk.text)
		}
	}
	if _, err := lex("SELECT @ FROM t"); err == nil {
		t.Fatal("bad character accepted")
	}
	_ = kinds
}

// TestSQLPathEquivalentToNativeT2 runs the T2 transaction via SQL and
// verifies the database state matches the native path's behaviour.
func TestSQLPathEquivalentToNativeT2(t *testing.T) {
	s := sim.New(epoch)
	db := testDB(s, t)
	stmts, err := LoadDefaultSqlstmts(db)
	if err != nil {
		t.Fatal(err)
	}
	inTxn(t, db, s, func(ex Execer) {
		res, err := stmts.T2SelectOrder.Exec(ex, engine.Int(20))
		if err != nil || len(res.Rows) != 1 {
			t.Fatalf("select order: %v %v", res, err)
		}
		order := res.Rows[0]
		cid, amount := order[1].I, order[2].F
		if _, err := stmts.T2UpdateOrder.Exec(ex, engine.Int(999), engine.Int(20)); err != nil {
			t.Fatal(err)
		}
		if _, err := stmts.T2UpdateCustomer.Exec(ex, engine.Float(amount), engine.Int(999), engine.Int(cid)); err != nil {
			t.Fatal(err)
		}
	})
	orow, _, _ := db.Table(core.TableOrders).Get(engine.IntKey(20))
	if orow[4].S != core.StatusPaid {
		t.Fatal("order not paid via SQL path")
	}
}
