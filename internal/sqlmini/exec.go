package sqlmini

import (
	"errors"
	"fmt"

	"cloudybench/internal/engine"
)

// Execer is the transactional surface a prepared statement executes
// against. node.Tx implements it, so SQL execution pays the same CPU,
// buffer, and I/O costs as the native workload path; engine-level adapters
// work too for pure-logic tests.
type Execer interface {
	Get(tbl *engine.Table, k engine.Key) (engine.Row, error)
	Insert(tbl *engine.Table, row engine.Row) error
	Update(tbl *engine.Table, k engine.Key, row engine.Row) error
	Delete(tbl *engine.Table, k engine.Key) error
}

// ScanExecer is implemented by executors that can run a range scan through
// the engine's planner. Range and secondary-equality SELECTs require it;
// node.Tx and EngineExec both qualify.
type ScanExecer interface {
	ScanRange(tbl *engine.Table, col int, lo, hi engine.Value, limit int, mode engine.PlanMode) ([]engine.Row, error)
}

// Result is a statement outcome: projected rows for SELECT, affected row
// count for DML.
type Result struct {
	Cols     []string
	Rows     []engine.Row
	Affected int
	// AutoID is the auto-increment id assigned by an INSERT ... DEFAULT.
	AutoID int64
}

// ErrArgCount reports a placeholder/argument mismatch.
var ErrArgCount = errors.New("sqlmini: wrong number of arguments")

func (e *expr) value(args []engine.Value) (engine.Value, error) {
	switch e.kind {
	case exprPlaceholder:
		return args[e.argIdx], nil
	case exprLiteral:
		return e.lit, nil
	default:
		return engine.Value{}, fmt.Errorf("sqlmini: expression has no direct value")
	}
}

// coerce adapts a value to the column kind where lossless (int -> float).
func coerce(v engine.Value, kind engine.Kind) engine.Value {
	if v.Kind == engine.KindInt && kind == engine.KindFloat {
		return engine.Float(float64(v.I))
	}
	return v
}

// Exec runs the statement with the given placeholder arguments.
func (s *Stmt) Exec(ex Execer, args ...engine.Value) (Result, error) {
	if len(args) != s.NumArgs {
		return Result{}, fmt.Errorf("%w: statement %q needs %d, got %d", ErrArgCount, s.SQL, s.NumArgs, len(args))
	}
	switch s.Kind {
	case StmtSelect:
		return s.execSelect(ex, args)
	case StmtInsert:
		return s.execInsert(ex, args)
	case StmtUpdate:
		return s.execUpdate(ex, args)
	case StmtDelete:
		return s.execDelete(ex, args)
	case StmtCreateIndex:
		return s.execCreateIndex()
	}
	return Result{}, fmt.Errorf("sqlmini: unknown statement kind %d", s.Kind)
}

// execCreateIndex runs DDL directly against the owning database (indexes
// are per-node derived state, not transactional writes). Affected reports
// the number of base rows materialized into the new index.
func (s *Stmt) execCreateIndex() (Result, error) {
	ix, err := s.db.CreateIndex(s.table.Schema.Name, s.ixName, s.table.Schema.Cols[s.ixCol].Name)
	if err != nil {
		return Result{}, err
	}
	return Result{Affected: ix.Len()}, nil
}

func (s *Stmt) whereKey(args []engine.Value) (engine.Key, error) {
	v, err := s.whereExpr.value(args)
	if err != nil {
		return nil, err
	}
	return engine.EncodeKey(v), nil
}

func (s *Stmt) execSelect(ex Execer, args []engine.Value) (Result, error) {
	if s.whereLo != nil {
		return s.execSelectRange(ex, args)
	}
	key, err := s.whereKey(args)
	if err != nil {
		return Result{}, err
	}
	res := Result{Cols: s.projectedCols()}
	row, err := ex.Get(s.table, key)
	if errors.Is(err, engine.ErrRowNotFound) {
		return res, nil
	}
	if err != nil {
		return Result{}, err
	}
	if s.selectCols == nil {
		res.Rows = []engine.Row{row.Clone()}
	} else {
		out := make(engine.Row, len(s.selectCols))
		for i, ci := range s.selectCols {
			out[i] = row[ci]
		}
		res.Rows = []engine.Row{out}
	}
	return res, nil
}

// execSelectRange lowers a BETWEEN / secondary-equality predicate onto the
// engine planner through a ScanExecer. s.Plan picks the strategy.
func (s *Stmt) execSelectRange(ex Execer, args []engine.Value) (Result, error) {
	sc, ok := ex.(ScanExecer)
	if !ok {
		return Result{}, fmt.Errorf("sqlmini: executor cannot run range scans for %q", s.SQL)
	}
	kind := s.table.Schema.Cols[s.whereCol].Kind
	lo, err := s.whereLo.value(args)
	if err != nil {
		return Result{}, err
	}
	hi, err := s.whereHi.value(args)
	if err != nil {
		return Result{}, err
	}
	rows, err := sc.ScanRange(s.table, s.whereCol, coerce(lo, kind), coerce(hi, kind), 0, s.Plan)
	if err != nil {
		return Result{}, err
	}
	res := Result{Cols: s.projectedCols()}
	for _, row := range rows {
		if s.selectCols == nil {
			res.Rows = append(res.Rows, row.Clone())
			continue
		}
		out := make(engine.Row, len(s.selectCols))
		for i, ci := range s.selectCols {
			out[i] = row[ci]
		}
		res.Rows = append(res.Rows, out)
	}
	return res, nil
}

func (s *Stmt) projectedCols() []string {
	schema := s.table.Schema
	if s.selectCols == nil {
		out := make([]string, len(schema.Cols))
		for i, c := range schema.Cols {
			out[i] = c.Name
		}
		return out
	}
	out := make([]string, len(s.selectCols))
	for i, ci := range s.selectCols {
		out[i] = schema.Cols[ci].Name
	}
	return out
}

func (s *Stmt) execInsert(ex Execer, args []engine.Value) (Result, error) {
	schema := s.table.Schema
	row := make(engine.Row, len(schema.Cols))
	var autoID int64
	for i, e := range s.insertExprs {
		if e.kind == exprDefault {
			autoID = s.table.NextAutoID()
			row[i] = engine.Int(autoID)
			continue
		}
		v, err := e.value(args)
		if err != nil {
			return Result{}, err
		}
		row[i] = coerce(v, schema.Cols[i].Kind)
	}
	if err := ex.Insert(s.table, row); err != nil {
		return Result{}, err
	}
	return Result{Affected: 1, AutoID: autoID}, nil
}

// ForUpdateExecer is implemented by executors that can take an exclusive
// lock at read time; UPDATE uses it to avoid S->X upgrade deadlocks.
type ForUpdateExecer interface {
	GetForUpdate(tbl *engine.Table, k engine.Key) (engine.Row, error)
}

func (s *Stmt) execUpdate(ex Execer, args []engine.Value) (Result, error) {
	key, err := s.whereKey(args)
	if err != nil {
		return Result{}, err
	}
	var row engine.Row
	if fu, ok := ex.(ForUpdateExecer); ok {
		row, err = fu.GetForUpdate(s.table, key)
	} else {
		row, err = ex.Get(s.table, key)
	}
	if errors.Is(err, engine.ErrRowNotFound) {
		return Result{}, nil // UPDATE of a missing row affects 0 rows
	}
	if err != nil {
		return Result{}, err
	}
	upd := row.Clone()
	schema := s.table.Schema
	for i, ci := range s.setCols {
		e := s.setExprs[i]
		switch e.kind {
		case exprSelfPlus:
			add, err := e.addend.value(args)
			if err != nil {
				return Result{}, err
			}
			cur := upd[ci]
			switch cur.Kind {
			case engine.KindFloat:
				inc := add.F
				if add.Kind == engine.KindInt {
					inc = float64(add.I)
				}
				upd[ci] = engine.Float(cur.F + inc)
			case engine.KindInt:
				if add.Kind != engine.KindInt {
					return Result{}, fmt.Errorf("sqlmini: non-integer addend for integer column %s", schema.Cols[ci].Name)
				}
				upd[ci] = engine.Int(cur.I + add.I)
			default:
				return Result{}, fmt.Errorf("sqlmini: arithmetic on non-numeric column %s", schema.Cols[ci].Name)
			}
		default:
			v, err := e.value(args)
			if err != nil {
				return Result{}, err
			}
			upd[ci] = coerce(v, schema.Cols[ci].Kind)
		}
	}
	if err := ex.Update(s.table, key, upd); err != nil {
		return Result{}, err
	}
	return Result{Affected: 1}, nil
}

func (s *Stmt) execDelete(ex Execer, args []engine.Value) (Result, error) {
	key, err := s.whereKey(args)
	if err != nil {
		return Result{}, err
	}
	err = ex.Delete(s.table, key)
	if errors.Is(err, engine.ErrRowNotFound) {
		return Result{}, nil
	}
	if err != nil {
		return Result{}, err
	}
	return Result{Affected: 1}, nil
}

// EngineExec adapts a bare engine transaction to the Execer interface for
// resource-free execution (tests, tooling).
type EngineExec struct {
	Txn *engine.Txn
}

// Get implements Execer.
func (e EngineExec) Get(tbl *engine.Table, k engine.Key) (engine.Row, error) {
	row, _, err := e.Txn.Get(tbl, k)
	return row, err
}

// Insert implements Execer.
func (e EngineExec) Insert(tbl *engine.Table, row engine.Row) error {
	_, err := e.Txn.Insert(tbl, row)
	return err
}

// Update implements Execer.
func (e EngineExec) Update(tbl *engine.Table, k engine.Key, row engine.Row) error {
	_, err := e.Txn.Update(tbl, k, row)
	return err
}

// Delete implements Execer.
func (e EngineExec) Delete(tbl *engine.Table, k engine.Key) error {
	_, err := e.Txn.Delete(tbl, k)
	return err
}

// ScanRange implements ScanExecer.
func (e EngineExec) ScanRange(tbl *engine.Table, col int, lo, hi engine.Value, limit int, mode engine.PlanMode) ([]engine.Row, error) {
	res, err := e.Txn.ScanRange(tbl, col, lo, hi, limit, mode)
	if err != nil {
		return nil, err
	}
	return res.Rows, nil
}
