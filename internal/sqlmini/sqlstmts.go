package sqlmini

import (
	"fmt"

	"cloudybench/internal/config"
	"cloudybench/internal/engine"
)

// Sqlstmts holds the prepared CloudyBench workload statements for one
// database, mirroring the paper's Sqlstmts class: statement text comes from
// stmt_db.toml (via config.StmtCatalog) so workloads are decoupled from
// SQL, and adding a new workload means adding catalog entries.
type Sqlstmts struct {
	T1Insert         *Stmt
	T2SelectOrder    *Stmt
	T2UpdateOrder    *Stmt
	T2UpdateCustomer *Stmt
	T3Select         *Stmt
	T4Delete         *Stmt
}

// LoadSqlstmts prepares the Table II statements from the catalog against
// the given database.
func LoadSqlstmts(db *engine.DB, cat *config.StmtCatalog) (*Sqlstmts, error) {
	prep := func(section, key string) (*Stmt, error) {
		sql, ok := cat.Stmt(section, key)
		if !ok {
			return nil, fmt.Errorf("sqlmini: catalog missing %s.%s", section, key)
		}
		return Prepare(db, sql)
	}
	var (
		s   Sqlstmts
		err error
	)
	if s.T1Insert, err = prep("t1_new_orderline", "insert"); err != nil {
		return nil, err
	}
	if s.T2SelectOrder, err = prep("t2_order_payment", "select_order"); err != nil {
		return nil, err
	}
	if s.T2UpdateOrder, err = prep("t2_order_payment", "update_order"); err != nil {
		return nil, err
	}
	if s.T2UpdateCustomer, err = prep("t2_order_payment", "update_customer"); err != nil {
		return nil, err
	}
	if s.T3Select, err = prep("t3_order_status", "select"); err != nil {
		return nil, err
	}
	if s.T4Delete, err = prep("t4_orderline_deletion", "delete"); err != nil {
		return nil, err
	}
	return &s, nil
}

// LoadDefaultSqlstmts prepares the built-in stmt_db.toml catalog.
func LoadDefaultSqlstmts(db *engine.DB) (*Sqlstmts, error) {
	cat, err := config.ParseStmtTOML(config.DefaultStmtDB)
	if err != nil {
		return nil, err
	}
	return LoadSqlstmts(db, cat)
}
