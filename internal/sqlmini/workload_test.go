package sqlmini

import (
	"testing"
	"time"

	"cloudybench/internal/core"
	"cloudybench/internal/engine"
	"cloudybench/internal/node"
	"cloudybench/internal/rng"
	"cloudybench/internal/sim"
)

func makeNode(s *sim.Sim, t *testing.T) *node.Node {
	t.Helper()
	n := node.New(s, node.Config{
		Name: "n", VCores: 4, MemoryBytes: 256 << 20,
		OpCPU: 100 * time.Microsecond, TxnCPU: 50 * time.Microsecond,
	}, node.NullBackend{})
	if err := core.NewDataset(1, 42).CreateTables(n.DB); err != nil {
		t.Fatal(err)
	}
	return n
}

func TestSQLWorkloadRunsAllTransactionTypes(t *testing.T) {
	s := sim.New(epoch)
	n := makeNode(s, t)
	w := NewWorkload(7)
	s.Go("worker", func(p *sim.Proc) {
		src := rng.New(7)
		dist := &rng.Uniform{Src: rng.New(8)}
		for i := 0; i < 50; i++ {
			for _, typ := range []core.TxnType{
				core.T1NewOrderline, core.T2OrderPayment,
				core.T3OrderStatus, core.T4OrderlineDeletion,
			} {
				if err := w.Exec(typ, p, n, src, dist); err != nil {
					t.Errorf("%v: %v", typ, err)
					return
				}
			}
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	commits, aborts := n.DB.Stats()
	if commits != 200 {
		t.Fatalf("commits = %d, want 200", commits)
	}
	if aborts != 0 {
		t.Fatalf("aborts = %d", aborts)
	}
	// T1 inserted 50 orderlines beyond the base.
	if got := n.DB.Table(core.TableOrderline).MaxID(); got != 3_000_050 {
		t.Fatalf("orderline max id = %d", got)
	}
	if w.Exec(core.TxnType(99), nil, n, nil, nil) == nil {
		t.Fatal("unknown type accepted")
	}
}

// TestSQLWorkloadMatchesNative runs the same seeded T2 against two
// identical nodes — one via the SQL path, one via the native runner logic —
// and checks the resulting database states agree.
func TestSQLWorkloadMatchesNative(t *testing.T) {
	s := sim.New(epoch)
	sqlNode := makeNode(s, t)
	natNode := makeNode(s, t)
	w := NewWorkload(7)

	const oid = 1234
	s.Go("drive", func(p *sim.Proc) {
		// SQL path.
		fixed := &fixedDist{id: oid}
		if err := w.T2OrderPayment(p, sqlNode, rng.New(1), fixed); err != nil {
			t.Error(err)
			return
		}
		// Native path: same logical transaction by hand.
		tx, _ := natNode.Begin(p)
		orders := natNode.DB.Table(core.TableOrders)
		customers := natNode.DB.Table(core.TableCustomer)
		row, err := tx.GetForUpdate(orders, engine.IntKey(oid))
		if err != nil {
			t.Error(err)
			return
		}
		upd := row.Clone()
		upd[4] = engine.Str(core.StatusPaid)
		upd[5] = engine.Int(p.Now().UnixMicro())
		tx.Update(orders, engine.IntKey(oid), upd)
		crow, _ := tx.GetForUpdate(customers, engine.IntKey(row[1].I))
		cupd := crow.Clone()
		cupd[2] = engine.Float(crow[2].F + row[2].F)
		cupd[3] = engine.Int(p.Now().UnixMicro())
		tx.Update(customers, engine.IntKey(row[1].I), cupd)
		tx.Commit()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// Both orders are PAID with identical customer credit.
	so, _, _ := sqlNode.DB.Table(core.TableOrders).Get(engine.IntKey(oid))
	no, _, _ := natNode.DB.Table(core.TableOrders).Get(engine.IntKey(oid))
	if so[4].S != core.StatusPaid || no[4].S != core.StatusPaid {
		t.Fatalf("statuses: sql=%v native=%v", so[4], no[4])
	}
	cid := so[1].I
	sc, _, _ := sqlNode.DB.Table(core.TableCustomer).Get(engine.IntKey(cid))
	nc, _, _ := natNode.DB.Table(core.TableCustomer).Get(engine.IntKey(cid))
	if sc[2].F != nc[2].F {
		t.Fatalf("credits diverge: sql=%v native=%v", sc[2].F, nc[2].F)
	}
}

type fixedDist struct{ id int64 }

func (f *fixedDist) Next(max int64) int64 { return f.id }
func (f *fixedDist) Name() string         { return "fixed" }
