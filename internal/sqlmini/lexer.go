// Package sqlmini implements the SQL subset CloudyBench's statement
// catalog uses (paper Table II): single-row SELECT/UPDATE/DELETE by
// primary key and positional INSERT, with '?' placeholders, DEFAULT
// auto-increment values, string/number literals, and column arithmetic of
// the form "col = col + ?".
//
// Statements are parsed once into prepared form and executed against any
// Execer (typically a node transaction, so execution pays the same
// resource costs as the native path). This mirrors the paper's SqlReader/
// Sqlstmts design: workloads are decoupled from SQL text, and new
// statements drop in via stmt_db.toml.
package sqlmini

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokPlaceholder // ?
	tokSymbol      // ( ) , = + * . ;
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of statement"
	case tokPlaceholder:
		return "?"
	case tokString:
		return fmt.Sprintf("'%s'", t.text)
	default:
		return t.text
	}
}

type lexer struct {
	src    string
	pos    int
	tokens []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '?':
			l.emit(tokPlaceholder, "?")
			l.pos++
		case strings.IndexByte("(),=+*.;", c) >= 0:
			l.emit(tokSymbol, string(c))
			l.pos++
		case c == '\'':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		case c == '-' || (c >= '0' && c <= '9'):
			if err := l.lexNumber(); err != nil {
				return nil, err
			}
		case isIdentStart(rune(c)):
			l.lexIdent()
		default:
			return nil, fmt.Errorf("sqlmini: unexpected character %q at %d", c, l.pos)
		}
	}
	l.emit(tokEOF, "")
	return l.tokens, nil
}

func (l *lexer) emit(kind tokenKind, text string) {
	l.tokens = append(l.tokens, token{kind: kind, text: text, pos: l.pos})
}

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			// '' escapes a quote, SQL style.
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				b.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			l.tokens = append(l.tokens, token{kind: tokString, text: b.String(), pos: start})
			return nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("sqlmini: unterminated string starting at %d", start)
}

func (l *lexer) lexNumber() error {
	start := l.pos
	if l.src[l.pos] == '-' {
		l.pos++
		if l.pos >= len(l.src) || l.src[l.pos] < '0' || l.src[l.pos] > '9' {
			return fmt.Errorf("sqlmini: stray '-' at %d", start)
		}
	}
	seenDot := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c >= '0' && c <= '9' {
			l.pos++
			continue
		}
		if c == '.' && !seenDot {
			seenDot = true
			l.pos++
			continue
		}
		break
	}
	l.tokens = append(l.tokens, token{kind: tokNumber, text: l.src[start:l.pos], pos: start})
	return nil
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
		l.pos++
	}
	l.tokens = append(l.tokens, token{kind: tokIdent, text: l.src[start:l.pos], pos: start})
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
