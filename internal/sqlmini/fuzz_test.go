package sqlmini

import (
	"testing"

	"cloudybench/internal/config"
	"cloudybench/internal/core"
	"cloudybench/internal/engine"
	"cloudybench/internal/sim"
)

// seedCorpus is every statement shape the workload actually issues (the
// default stmt_db) plus malformed variants that probe each parser branch.
func seedCorpus() []string {
	var seeds []string
	cat, err := config.ParseStmtTOML(config.DefaultStmtDB)
	if err != nil {
		panic(err)
	}
	for _, sec := range cat.Sections() {
		for _, sql := range cat.SectionStmts(sec) {
			seeds = append(seeds, sql)
		}
	}
	seeds = append(seeds,
		"SELECT * FROM orders WHERE O_ID = 7",
		"SELECT * FROM orders WHERE O_ID = -7",
		"UPDATE customer SET C_CREDIT = C_CREDIT + -12.5 WHERE C_ID = 1",
		"INSERT INTO orderline VALUES (DEFAULT, 1, 2.5, 'it''s', 'x')",
		"DELETE FROM orderline WHERE OL_ID = 9",
		// Secondary predicates and index DDL.
		"SELECT O_ID FROM orders WHERE O_STATUS = 'PAID'",
		"SELECT * FROM orders WHERE O_C_ID BETWEEN 1 AND 5",
		"SELECT O_ID, O_TOTALAMOUNT FROM orders WHERE O_TOTALAMOUNT BETWEEN ? AND ?",
		"SELECT * FROM orders WHERE O_ID BETWEEN -2 AND 7",
		"CREATE INDEX ix_orders_cust ON orders (O_C_ID)",
		"create index IX on ORDERS ( o_status ) ;",
		// Malformed on purpose: unknown table, arity mismatch, unterminated
		// string, stray symbols, empty input, half-written clauses.
		"SELECT * FROM nope WHERE X = 1",
		"INSERT INTO orders VALUES (1, 2)",
		"SELECT * FROM orders WHERE O_ID = 'abc",
		"UPDATE orders SET",
		"((((,,,===",
		"",
		"SELECT",
		"INSERT INTO orders VALUES (1.2.3)",
		"DELETE FROM orders WHERE O_ID = ?;",
		"SELECT * FROM orders WHERE O_C_ID BETWEEN 1",
		"SELECT * FROM orders WHERE O_C_ID BETWEEN 1 OR 2",
		"UPDATE orders SET O_STATUS = 'X' WHERE O_C_ID BETWEEN 1 AND 2",
		"DELETE FROM orders WHERE O_C_ID = 3",
		"CREATE INDEX ix ON orders",
		"CREATE INDEX ON orders (O_C_ID)",
		"CREATE TABLE t (x)",
		"CREATE INDEX ix ON orders (O_C_ID, O_DATE)",
	)
	return seeds
}

func fuzzDB() *engine.DB {
	s := sim.New(epoch)
	db := engine.NewDB(s)
	d := core.NewDataset(1, 42)
	d.CreateTables(db)
	return db
}

// FuzzLexer feeds arbitrary bytes to the tokenizer; the only contract is
// that it never panics (errors are fine).
func FuzzLexer(f *testing.F) {
	for _, s := range seedCorpus() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		_, _ = lex(src)
	})
}

// FuzzParser checks Prepare never panics, and that every accepted statement
// survives a print→parse→print round trip with the canonical form as a fixed
// point. A drift here means Render and the parser disagree about what a
// statement says — exactly the kind of bug that silently corrupts workloads.
func FuzzParser(f *testing.F) {
	for _, s := range seedCorpus() {
		f.Add(s)
	}
	db := fuzzDB()
	f.Fuzz(func(t *testing.T, src string) {
		st, err := Prepare(db, src)
		if err != nil {
			return
		}
		r1 := st.Render()
		st2, err := Prepare(db, r1)
		if err != nil {
			t.Fatalf("canonical form rejected: %q (from %q): %v", r1, src, err)
		}
		if r2 := st2.Render(); r2 != r1 {
			t.Fatalf("render not a fixed point:\n r1=%q\n r2=%q\n src=%q", r1, r2, src)
		}
		if st2.Kind != st.Kind || st2.NumArgs != st.NumArgs {
			t.Fatalf("round trip changed shape: kind %v→%v args %d→%d (src %q)",
				st.Kind, st2.Kind, st.NumArgs, st2.NumArgs, src)
		}
	})
}

// TestRenderCanonicalForms runs the whole default statement catalog through
// the round trip so the printer is exercised even when fuzzing is off.
func TestRenderCanonicalForms(t *testing.T) {
	db := fuzzDB()
	cat, err := config.ParseStmtTOML(config.DefaultStmtDB)
	if err != nil {
		t.Fatal(err)
	}
	for _, sec := range cat.Sections() {
		for _, sql := range cat.SectionStmts(sec) {
			st, err := Prepare(db, sql)
			if err != nil {
				t.Fatalf("prepare %q: %v", sql, err)
			}
			r := st.Render()
			st2, err := Prepare(db, r)
			if err != nil {
				t.Fatalf("reparse %q: %v", r, err)
			}
			if got := st2.Render(); got != r {
				t.Fatalf("not canonical: %q vs %q", got, r)
			}
			t.Logf("%s -> %s", sql, r)
		}
	}
}
