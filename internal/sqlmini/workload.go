package sqlmini

import (
	"fmt"

	"cloudybench/internal/core"
	"cloudybench/internal/engine"
	"cloudybench/internal/node"
	"cloudybench/internal/rng"
	"cloudybench/internal/sim"
)

// Workload executes the CloudyBench T1–T4 transactions through prepared
// SQL statements instead of direct engine calls — the path the paper's
// testbed takes (SQL text from stmt_db.toml via SqlReader/Sqlstmts). Both
// paths run identical logical transactions against the same node
// resources; the SQL path adds only statement-dispatch logic.
//
// Statements are prepared lazily per node, since each node owns its own
// engine catalog.
type Workload struct {
	Seed     int64
	prepared map[*node.Node]*Sqlstmts
}

// NewWorkload returns an empty SQL-path workload.
func NewWorkload(seed int64) *Workload {
	return &Workload{Seed: seed, prepared: make(map[*node.Node]*Sqlstmts)}
}

func (w *Workload) stmts(n *node.Node) (*Sqlstmts, error) {
	if s, ok := w.prepared[n]; ok {
		return s, nil
	}
	s, err := LoadDefaultSqlstmts(n.DB)
	if err != nil {
		return nil, err
	}
	w.prepared[n] = s
	return s, nil
}

// T1NewOrderline runs INSERT INTO orderline VALUES (DEFAULT, ?,?,?,?).
func (w *Workload) T1NewOrderline(p *sim.Proc, n *node.Node, src *rng.Source, dist rng.Dist) error {
	stmts, err := w.stmts(n)
	if err != nil {
		return err
	}
	tx, err := n.Begin(p)
	if err != nil {
		return err
	}
	oid := dist.Next(n.DB.Table(core.TableOrders).MaxID())
	_, err = stmts.T1Insert.Exec(tx,
		engine.Int(oid),
		engine.Str("sku-"+src.Letters(6)),
		engine.Int(src.IntRange(1, 9)),
		engine.Float(float64(src.IntRange(100, 99_99))/100),
	)
	if err != nil {
		tx.Abort()
		return err
	}
	return tx.Commit()
}

// T2OrderPayment runs the three-statement payment transaction.
func (w *Workload) T2OrderPayment(p *sim.Proc, n *node.Node, src *rng.Source, dist rng.Dist) error {
	stmts, err := w.stmts(n)
	if err != nil {
		return err
	}
	tx, err := n.Begin(p)
	if err != nil {
		return err
	}
	oid := dist.Next(n.DB.Table(core.TableOrders).MaxID())
	now := engine.Int(p.Now().UnixMicro())

	sel, err := stmts.T2SelectOrder.Exec(tx, engine.Int(oid))
	if err != nil {
		tx.Abort()
		return err
	}
	if len(sel.Rows) == 0 {
		return tx.Commit() // order vanished: empty but successful check
	}
	order := sel.Rows[0] // O_ID, O_C_ID, O_TOTALAMOUNT, O_UPDATEDDATE
	if _, err := stmts.T2UpdateOrder.Exec(tx, now, engine.Int(oid)); err != nil {
		tx.Abort()
		return err
	}
	if _, err := stmts.T2UpdateCustomer.Exec(tx,
		engine.Float(order[2].F), now, engine.Int(order[1].I)); err != nil {
		tx.Abort()
		return err
	}
	return tx.Commit()
}

// T3OrderStatus runs the read-only status check on a read node.
func (w *Workload) T3OrderStatus(p *sim.Proc, n *node.Node, src *rng.Source, dist rng.Dist) error {
	stmts, err := w.stmts(n)
	if err != nil {
		return err
	}
	tx, err := n.Begin(p)
	if err != nil {
		return err
	}
	oid := dist.Next(n.DB.Table(core.TableOrders).MaxID())
	if _, err := stmts.T3Select.Exec(tx, engine.Int(oid)); err != nil {
		tx.Abort()
		return err
	}
	return tx.Commit()
}

// T4OrderlineDeletion runs DELETE FROM orderline WHERE OL_ID = ?.
func (w *Workload) T4OrderlineDeletion(p *sim.Proc, n *node.Node, src *rng.Source, dist rng.Dist) error {
	stmts, err := w.stmts(n)
	if err != nil {
		return err
	}
	tx, err := n.Begin(p)
	if err != nil {
		return err
	}
	olid := dist.Next(n.DB.Table(core.TableOrderline).MaxID())
	if _, err := stmts.T4Delete.Exec(tx, engine.Int(olid)); err != nil {
		tx.Abort()
		return err
	}
	return tx.Commit()
}

// Exec dispatches by transaction type, matching core's runner semantics.
func (w *Workload) Exec(typ core.TxnType, p *sim.Proc, n *node.Node, src *rng.Source, dist rng.Dist) error {
	switch typ {
	case core.T1NewOrderline:
		return w.T1NewOrderline(p, n, src, dist)
	case core.T2OrderPayment:
		return w.T2OrderPayment(p, n, src, dist)
	case core.T3OrderStatus:
		return w.T3OrderStatus(p, n, src, dist)
	case core.T4OrderlineDeletion:
		return w.T4OrderlineDeletion(p, n, src, dist)
	}
	return fmt.Errorf("sqlmini: unknown transaction %v", typ)
}
