package experiments

import (
	"fmt"
	"math"
	"strings"
	"time"

	"cloudybench/internal/cdb"
	"cloudybench/internal/core"
	"cloudybench/internal/evaluator"
	"cloudybench/internal/metrics"
	"cloudybench/internal/report"
)

// Partition runs every SUT through the partition gauntlet: a gray network
// partition cuts the primary off from the control plane and its replica
// (clients still reach it — the dangerous case), the profile's failure
// detector reacts with a lease-fenced promotion or an await-heal restart,
// and the resilient client rides through on backoff, breakers, and reroutes.
// The report contrasts the two repair architectures — quorum promotion
// restores writes in seconds while restart-in-place must wait the partition
// out — and shows each system's FPart penalty to the O-Score. Deterministic:
// the same scale and seed reproduce the report byte for byte.
func Partition(sc Scale) (string, []evaluator.PartitionResult) {
	results := runCells(len(SUTs), func(i int) evaluator.PartitionResult {
		return evaluator.RunPartition(evaluator.PartitionConfig{
			Kind: SUTs[i], Span: sc.PartSpan, Concurrency: sc.PartConc, Seed: sc.Seed,
		})
	})
	tbl := report.NewTable("Partition gauntlet — detection, lease-fenced repair, resilient client",
		"System", "Verdict", "MTTD", "MTTR", "Unavail", "Commits", "Term", "Reroute", "Fenced", "Epoch", "dO")
	var detail strings.Builder
	for _, r := range results {
		kind := r.Kind
		verdict := "PASS"
		if !r.Passed() {
			verdict = "FAIL"
		}
		// FPart enters the O-Score denominator: O' = O - SF*lg(FPart seconds).
		// dO is that per-system penalty (SF=1 here); "-" means the partition
		// never interrupted write service, so the published O-Score stands.
		fpart := metrics.FPartScore([]time.Duration{r.MTTR})
		deltaO := "-"
		if fpart > 0 {
			deltaO = fmt.Sprintf("%+.2f", -math.Log10(fpart.Seconds()))
		}
		tbl.AddRow(string(kind), verdict,
			report.Dur(r.MTTD), report.Dur(r.MTTR), report.Dur(r.Unavailable),
			fmt.Sprintf("%d", r.Commits),
			fmt.Sprintf("%d", r.Terminals),
			fmt.Sprintf("%d", r.Reroutes),
			fmt.Sprintf("%d", r.Fenced),
			fmt.Sprintf("%d", r.Epoch),
			deltaO)
		fmt.Fprintf(&detail, "\n%s invariants:\n", kind)
		for _, v := range r.Verdicts {
			fmt.Fprintf(&detail, "  %-18s %s\n", v.Name, v)
		}
		for _, ev := range r.Timeline {
			if strings.HasPrefix(ev.Phase, "partition") || strings.HasPrefix(ev.Phase, "fence") ||
				strings.HasPrefix(ev.Phase, "RW' serving") || strings.HasPrefix(ev.Phase, "RW service restored") {
				fmt.Fprintf(&detail, "  %10v  %s\n", ev.At, ev.Phase)
			}
		}
	}
	// Suite gauntlet: every registered workload suite rides the same gray
	// partition on the promote architecture (CDB4), so the fenced-write
	// check judges secondary-index WAL records, not just heap records — a
	// stale-epoch primary must have its index maintenance refused along
	// with the data it derives from.
	suiteNames := core.SuiteNames()
	suiteResults := runCells(len(suiteNames), func(i int) evaluator.SuiteResult {
		return evaluator.RunSuite(evaluator.SuiteConfig{
			Suite: suiteNames[i], Kind: cdb.CDB4,
			Span: sc.PartSpan, Concurrency: sc.PartConc, Seed: sc.Seed,
			Partition: true,
		})
	})
	stbl := report.NewTable("Suite gauntlet — registered suites through the same gray partition (cdb4)",
		"Suite", "Verdict", "Commits", "Fenced", "Epoch", "IxPut", "IxDel")
	for _, r := range suiteResults {
		verdict := "PASS"
		if !r.Passed() {
			verdict = "FAIL"
		}
		stbl.AddRow(r.Suite, verdict,
			fmt.Sprintf("%d", r.Commits),
			fmt.Sprintf("%d", r.Fenced),
			fmt.Sprintf("%d", r.Epoch),
			fmt.Sprintf("%d", r.IndexWALPuts),
			fmt.Sprintf("%d", r.IndexWALDels))
	}

	var b strings.Builder
	b.WriteString(tbl.String())
	b.WriteString(detail.String())
	b.WriteString("\n")
	b.WriteString(stbl.String())
	fmt.Fprintf(&b, "\nPartition schedule (per run): cut rw | {ctrl, ro0} at %v (gray: clients still reach rw), heal at %v\n",
		time.Duration(float64(sc.PartSpan)*0.25), time.Duration(float64(sc.PartSpan)*0.60))
	b.WriteString("dO = -SF*lg(FPart) — the partition-recovery term the MTTR adds to the O-Score denominator\n")
	return b.String(), results
}
