package experiments

import (
	"runtime"
	"strings"
	"testing"
	"time"

	"cloudybench/internal/cdb"
)

// tiny is an ultra-small scale for unit tests.
var tiny = Scale{
	Name:           "tiny",
	Warmup:         500 * time.Millisecond,
	Measure:        time.Second,
	Concurrency:    []int{16},
	SFs:            []int{1},
	SlotLength:     2 * time.Second,
	CostSlots:      4,
	Tau:            24,
	FailBaseline:   6 * time.Second,
	FailTimeout:    60 * time.Second,
	FailConc:       24,
	LagDuration:    2 * time.Second,
	LagConc:        4,
	PartSpan:       8 * time.Second,
	PartConc:       4,
	CrashSpan:      10 * time.Second,
	CrashConc:      6,
	SuiteSpan:      3 * time.Second,
	SuiteConc:      4,
	SoakDays:       3,
	SoakWindow:     6 * time.Hour,
	SoakBurst:      200 * time.Millisecond,
	SoakConc:       1,
	SoakSweepEvery: 2,
	Seed:           42,
}

// mini shrinks every window to the determinism-test minimum: big enough to
// exercise queueing, autoscaling transitions, and replication, small enough
// to re-run the same experiment several times in one test.
var mini = Scale{
	Name:           "mini",
	Warmup:         200 * time.Millisecond,
	Measure:        600 * time.Millisecond,
	Concurrency:    []int{8},
	SFs:            []int{1},
	SlotLength:     time.Second,
	CostSlots:      3,
	Tau:            12,
	FailBaseline:   2 * time.Second,
	FailTimeout:    20 * time.Second,
	FailConc:       8,
	LagDuration:    time.Second,
	LagConc:        3,
	ChaosSpan:      3 * time.Second,
	ChaosConc:      3,
	PartSpan:       4 * time.Second,
	PartConc:       3,
	CrashSpan:      8 * time.Second,
	CrashConc:      4,
	SuiteSpan:      1500 * time.Millisecond,
	SuiteConc:      3,
	SoakDays:       3,
	SoakWindow:     6 * time.Hour,
	SoakBurst:      300 * time.Millisecond,
	SoakConc:       1,
	SoakSweepEvery: 2,
	Seed:           42,
}

// TestParallelCellsAreByteIdentical is the parallel cell runner's
// determinism contract: the same experiment must render byte-identically
// with sequential cells, with a worker pool, and regardless of how many OS
// threads Go may schedule underneath (GOMAXPROCS). This extends the
// evaluator-level cross-GOMAXPROCS test up through the fan-out layer.
func TestParallelCellsAreByteIdentical(t *testing.T) {
	defer SetParallelism(0)
	run := func(id string) string {
		out, err := Run(id, mini)
		if err != nil {
			t.Fatal(id, err)
		}
		return out
	}
	for _, id := range []string{"crash", "f5", "f6", "lag", "partition", "soak", "suites"} {
		SetParallelism(1)
		seq := run(id)
		SetParallelism(4)
		par := run(id)
		if seq != par {
			t.Fatalf("%s: parallel output differs from sequential:\n--- parallel=1:\n%s\n--- parallel=4:\n%s", id, seq, par)
		}
		prev := runtime.GOMAXPROCS(1)
		pinned := run(id) // 4 workers multiplexed onto one OS thread
		runtime.GOMAXPROCS(prev)
		if pinned != seq {
			t.Fatalf("%s: output differs at GOMAXPROCS=1:\n%s\nvs\n%s", id, pinned, seq)
		}
	}
}

func TestRegistryCoversEveryPaperArtifact(t *testing.T) {
	want := []string{"ablations", "chaos", "crash", "f5", "f6", "f7", "f8", "f9", "lag", "oltp", "partition", "soak", "suites", "t5", "t6", "t7", "t8", "t9"}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("ids = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ids = %v, want %v", got, want)
		}
	}
	for _, id := range want {
		if desc, ok := Describe(id); !ok || desc == "" {
			t.Fatalf("no description for %s", id)
		}
	}
	if _, err := Run("nope", tiny); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestScaleByName(t *testing.T) {
	if sc, ok := ScaleByName(""); !ok || sc.Name != "quick" {
		t.Fatal("default scale")
	}
	if sc, ok := ScaleByName("paper"); !ok || sc.SlotLength != time.Minute {
		t.Fatal("paper scale")
	}
	if _, ok := ScaleByName("nope"); ok {
		t.Fatal("bad scale accepted")
	}
}

func TestTableVRendersAllSystems(t *testing.T) {
	out, results := TableV(tiny)
	for _, kind := range SUTs {
		if !strings.Contains(out, string(kind)) {
			t.Fatalf("missing %s in:\n%s", kind, out)
		}
	}
	if len(results) != 15 { // 5 SUTs x 3 mixes
		t.Fatalf("results = %d", len(results))
	}
	for _, r := range results {
		if r.TPS <= 0 || r.PScore <= 0 {
			t.Fatalf("bad result: %+v", r)
		}
	}
}

func TestFigure5ProducesCells(t *testing.T) {
	out, results := Figure5(tiny)
	if len(results) != 1*3*1*5 { // SFs x mixes x cons x SUTs
		t.Fatalf("cells = %d", len(results))
	}
	if !strings.Contains(out, "SF1") || !strings.Contains(out, "con=16") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestFigure8BufferSweepShape(t *testing.T) {
	out, results := Figure8(tiny)
	if len(results) != 12 { // 3 SUTs x 4 buffers
		t.Fatalf("cells = %d", len(results))
	}
	// Within each SUT, bigger buffers must not reduce hit ratio.
	byKind := map[cdb.Kind][]float64{}
	for _, r := range results {
		byKind[r.Kind] = append(byKind[r.Kind], r.HitRatio)
	}
	for kind, hits := range byKind {
		for i := 1; i < len(hits); i++ {
			if hits[i]+0.02 < hits[i-1] {
				t.Fatalf("%s: hit ratio fell with bigger buffer: %v", kind, hits)
			}
		}
	}
	_ = out
}

func TestAblationsShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	out := Ablations(tiny)
	for _, want := range []string{"parallel log replay", "remote buffer pool", "redo pushdown"} {
		if !strings.Contains(out, want) {
			t.Fatalf("ablation output missing %q:\n%s", want, out)
		}
	}
}

func TestFigure9ScalingRangeShape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	out, results := Figure9(tiny)
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	cb, sys, tpcc := results[0], results[1], results[2]
	// The paper's headline: CloudyBench exercises a wider scaling range
	// than either constant-load baseline.
	if cb.Max-cb.Min <= sys.Max-sys.Min {
		t.Fatalf("cloudybench range %.2f <= sysbench %.2f\n%s",
			cb.Max-cb.Min, sys.Max-sys.Min, out)
	}
	if cb.Max-cb.Min <= tpcc.Max-tpcc.Min {
		t.Fatalf("cloudybench range %.2f <= tpcc %.2f\n%s",
			cb.Max-cb.Min, tpcc.Max-tpcc.Min, out)
	}
	for _, r := range results {
		if r.Commits == 0 {
			t.Fatalf("%s: no commits", r.Workload)
		}
	}
}

func TestRunCustomElasticityFromProps(t *testing.T) {
	props := `
elastic_testTime = 3
first_con  = 4
second_con = 16
third_con  = 4
system = cdb2
mix = 0:0:100
slot = 2s
cost_slots = 4
`
	out, err := RunCustomElasticity(props)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"cdb2", "avg TPS", "E1-Score", "Transitions"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// Error paths: bad props, unknown system, all-zero pattern, bad mix.
	for _, bad := range []string{
		"nonsense",
		"elastic_testTime = 1\nfirst_con = 5\nsystem = nope",
		"elastic_testTime = 1\nfirst_con = 0",
		"elastic_testTime = 1\nfirst_con = 5\nmix = bad",
	} {
		if _, err := RunCustomElasticity(bad); err == nil {
			t.Errorf("props %q accepted", bad)
		}
	}
}
