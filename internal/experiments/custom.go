package experiments

import (
	"fmt"
	"time"

	"cloudybench/internal/cdb"
	"cloudybench/internal/config"
	"cloudybench/internal/core"
	"cloudybench/internal/evaluator"
	"cloudybench/internal/patterns"
	"cloudybench/internal/report"
)

// RunCustomElasticity runs a user-defined elasticity pattern from a props
// document, following the paper's extension mechanism: "users can simply
// modify the length of elastic_testTime (e.g. 4) and add corresponding
// concurrency in the props file (e.g. fourth_con)". Recognized keys:
//
//	elastic_testTime = 4        # number of slots
//	first_con  = 11             # concurrency per slot (second_con, ...)
//	system     = cdb3           # SUT (default cdb3)
//	mix        = 15:5:80        # transaction ratio (default read-write)
//	slot       = 20s            # slot length (default 20s)
//	cost_slots = 10             # costing window in slots
//	seed       = 42
func RunCustomElasticity(propsText string) (string, error) {
	props, err := config.ParseProps(propsText)
	if err != nil {
		return "", err
	}
	cons, err := props.SlotConcurrency()
	if err != nil {
		return "", err
	}
	tau := 0
	for _, c := range cons {
		if c > tau {
			tau = c
		}
	}
	if tau == 0 {
		return "", fmt.Errorf("experiments: custom pattern is all-zero")
	}
	proportions := make([]float64, len(cons))
	for i, c := range cons {
		proportions[i] = float64(c) / float64(tau)
	}
	pat, err := patterns.Custom("custom", proportions)
	if err != nil {
		return "", err
	}

	kind := cdb.Kind(props.Str("system", string(cdb.CDB3)))
	found := false
	for _, k := range cdb.Kinds {
		if k == kind {
			found = true
		}
	}
	if !found {
		return "", fmt.Errorf("experiments: unknown system %q", kind)
	}
	mix := core.MixReadWrite
	if props.Has("mix") {
		mix, err = core.ParseMix(props.Str("mix", ""))
		if err != nil {
			return "", err
		}
	}

	res := evaluator.RunElasticity(evaluator.ElasticityConfig{
		Kind:       kind,
		Pattern:    pat,
		Mix:        mix,
		Tau:        tau,
		SlotLength: props.Duration("slot", 20*time.Second),
		CostSlots:  props.Int("cost_slots", 10),
		Seed:       int64(props.Int("seed", 42)),
	})

	tbl := report.NewTable(
		fmt.Sprintf("Custom elasticity pattern on %s (slots %v)", kind, cons),
		"Metric", "Value")
	tbl.AddRow("avg TPS", report.F(res.AvgTPS))
	tbl.AddRow("total cost", report.Money(res.TotalCost))
	tbl.AddRow("actual cost", report.Money(res.ActualCost))
	tbl.AddRow("E1-Score", report.F(res.E1Score))
	out := tbl.String() + "\n" + report.Series("vCores", res.Cores, 4) + "\n\nTransitions:\n"
	for _, tr := range res.Transitions {
		out += fmt.Sprintf("  %3d -> %-3d  scaling %-8s cost %s\n",
			tr.FromCon, tr.ToCon, report.Dur(tr.ScalingTime), report.Money(tr.ScalingCost))
	}
	return out, nil
}
