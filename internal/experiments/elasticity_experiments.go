package experiments

import (
	"fmt"
	"strings"

	"cloudybench/internal/cdb"
	"cloudybench/internal/core"
	"cloudybench/internal/evaluator"
	"cloudybench/internal/patterns"
	"cloudybench/internal/report"
)

// Figure6 regenerates the elasticity evaluation: average TPS, total cost
// (execution plus scaling over the 10-slot costing window), and E1-Score
// per SUT across the four elastic patterns.
func Figure6(sc Scale) (string, []evaluator.ElasticityResult) {
	var cfgs []evaluator.ElasticityConfig
	for _, pat := range patterns.ElasticPatterns() {
		for _, kind := range SUTs {
			cfgs = append(cfgs, evaluator.ElasticityConfig{
				Kind: kind, Pattern: pat, Mix: core.MixReadWrite,
				Tau: sc.Tau, SlotLength: sc.SlotLength, CostSlots: sc.CostSlots,
				Seed: sc.Seed,
			})
		}
	}
	results := runCells(len(cfgs), func(i int) evaluator.ElasticityResult {
		return evaluator.RunElasticity(cfgs[i])
	})
	var b strings.Builder
	b.WriteString("Figure 6 — Elasticity Evaluation (RW mix)\n\n")
	i := 0
	for _, pat := range patterns.ElasticPatterns() {
		tbl := report.NewTable(
			fmt.Sprintf("Pattern %s, concurrency %v", pat.Name, pat.Concurrency(sc.Tau)),
			"System", "AvgTPS", "TotalCost", "ActualCost", "E1-Score")
		for _, kind := range SUTs {
			r := results[i]
			i++
			tbl.AddRow(string(kind), report.F(r.AvgTPS),
				report.Money(r.TotalCost), report.Money(r.ActualCost), report.F(r.E1Score))
		}
		b.WriteString(tbl.String())
		b.WriteString("\n")
	}
	return b.String(), results
}

// TableVI regenerates the autoscaling detail: per-transition scaling time
// and scaling cost for the three serverless SUTs.
func TableVI(sc Scale) (string, []evaluator.ElasticityResult) {
	var autoscaling []cdb.Kind
	for _, kind := range SUTs {
		if cdb.ProfileFor(kind).Autoscale != nil {
			autoscaling = append(autoscaling, kind) // Table VI covers only the autoscaling SUTs
		}
	}
	var cfgs []evaluator.ElasticityConfig
	for _, pat := range patterns.ElasticPatterns() {
		for _, kind := range autoscaling {
			cfgs = append(cfgs, evaluator.ElasticityConfig{
				Kind: kind, Pattern: pat, Mix: core.MixReadWrite,
				Tau: sc.Tau, SlotLength: sc.SlotLength, CostSlots: sc.CostSlots,
				Seed: sc.Seed,
			})
		}
	}
	results := runCells(len(cfgs), func(i int) evaluator.ElasticityResult {
		return evaluator.RunElasticity(cfgs[i])
	})
	var b strings.Builder
	b.WriteString("Table VI — Scaling time and cost during autoscaling (serverless SUTs)\n\n")
	i := 0
	for _, pat := range patterns.ElasticPatterns() {
		tbl := report.NewTable(
			fmt.Sprintf("Pattern %s", pat.Name),
			"System", "Transition", "ScalingTime", "ScalingCost")
		for _, kind := range autoscaling {
			r := results[i]
			i++
			for _, tr := range r.Transitions {
				tbl.AddRow(string(kind),
					fmt.Sprintf("%d->%d", tr.FromCon, tr.ToCon),
					report.Dur(tr.ScalingTime), report.Money(tr.ScalingCost))
			}
		}
		b.WriteString(tbl.String())
		b.WriteString("\n")
	}
	return b.String(), results
}
