package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cloudybench/internal/cdb"
)

// TestCrashGolden pins the rendered crash-gauntlet report byte for byte: it
// feeds EXPERIMENTS.md verbatim, and any drift in recovery stats, verdicts,
// or timeline marks under the fixed seed is a behaviour change. Regenerate
// deliberately with -update.
func TestCrashGolden(t *testing.T) {
	out, _ := Crash(mini)
	path := filepath.Join("testdata", "crash.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if out != string(want) {
		t.Errorf("crash report drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", out, want)
	}
}

// TestCrashGauntletShapes: the experiment's headline — every architecture
// survives the kill schedule with its durability verdicts green, and the
// recovery work is real (some primary kill redoes log records; some torn
// tail is detected and cut) — must be visible in the raw results and the
// rendered report.
func TestCrashGauntletShapes(t *testing.T) {
	out, results := Crash(tiny)
	if len(results) != len(SUTs) {
		t.Fatalf("results = %d, want %d", len(results), len(SUTs))
	}
	sawRedo, sawTorn := false, false
	for _, r := range results {
		if !r.Passed() {
			for _, v := range r.Verdicts {
				t.Errorf("%s %s: %s", r.Kind, v.Name, v)
			}
		}
		if r.Commits == 0 {
			t.Errorf("%s: no commits under the crash schedule", r.Kind)
		}
		if len(r.Crashes) == 0 {
			t.Errorf("%s: no kills fired", r.Kind)
		}
		for _, c := range r.Crashes {
			if c.Err != "" {
				t.Errorf("%s: recovery failed at %v on %s: %s", r.Kind, c.At, c.Target, c.Err)
			}
			if c.Stats.RedoSince > 0 {
				sawRedo = true
			}
			if c.Stats.TornDetected {
				sawTorn = true
			}
		}
	}
	if !sawRedo {
		t.Error("no kill ever recovered through a non-empty redo window")
	}
	if !sawTorn {
		t.Error("no torn tail was ever detected and cut")
	}
	// RDS recovers in place (epoch stays 1); CDB4 promotes on the first RW
	// kill (epoch advances). Both architectures' reports carry the verdicts.
	byKind := map[cdb.Kind]int{}
	for _, r := range results {
		byKind[r.Kind] = int(r.Epoch)
	}
	if byKind[cdb.RDS] != 1 {
		t.Errorf("RDS epoch = %d, want 1 (recover-in-place never advances the lease)", byKind[cdb.RDS])
	}
	if byKind[cdb.CDB4] < 2 {
		t.Errorf("CDB4 epoch = %d, want >= 2 (lease-fenced promotion on the RW kill)", byKind[cdb.CDB4])
	}
	for _, want := range []string{"rds", "cdb4", "durability", "no-resurrection", "Crash schedule"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}
