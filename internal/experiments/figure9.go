package experiments

import (
	"fmt"
	"strings"
	"time"

	"cloudybench/internal/baselines"
	"cloudybench/internal/cdb"
	"cloudybench/internal/core"
	"cloudybench/internal/node"
	"cloudybench/internal/patterns"
	"cloudybench/internal/report"
	"cloudybench/internal/sim"
)

// Figure9Result holds one workload's CPU-allocation timeline on CDB3.
type Figure9Result struct {
	Workload string
	// Cores is the allocated vCores sampled once per slot.
	Cores []float64
	Min   float64
	Max   float64
	// MaxDrop is the largest slot-to-slot decrease — the paper highlights
	// CloudyBench's 2.25-vCore drop versus the baselines' 1 vCore.
	MaxDrop float64
	Commits int64
}

// Figure9 regenerates the benchmark comparison of §III-I: a 12-slot run on
// CDB3 for (a) CloudyBench's four elasticity patterns back to back,
// (b) SysBench at a constant 11 threads, and (c) TPC-C at a constant 44
// threads — those two thread counts being CloudyBench's valley and peak
// levels. The output is each run's allocated-vCPU timeline.
// fig9Prelude is the settling period before sampling begins, letting each
// workload reach its steady allocation (the paper measures services that
// were already running, not cold starts).
const fig9Prelude = 3

func Figure9(sc Scale) (string, []Figure9Result) {
	const slots = 12
	epoch := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	runs := []func() Figure9Result{
		func() Figure9Result { return runFig9CloudyBench(sc, epoch, slots) },
		func() Figure9Result { return runFig9Baseline(sc, epoch, slots, "sysbench", 11) },
		func() Figure9Result { return runFig9Baseline(sc, epoch, slots, "tpcc", 44) },
	}
	results := runCells(len(runs), func(i int) Figure9Result { return runs[i]() })
	var b strings.Builder
	b.WriteString("Figure 9 — CPU allocation on CDB3: CloudyBench vs SysBench vs TPC-C\n")
	fmt.Fprintf(&b, "(%d slots of %s; one sample per slot)\n\n", slots, sc.SlotLength)
	for _, r := range results {
		b.WriteString(report.Series(r.Workload, r.Cores, 4))
		b.WriteString("\n")
	}
	b.WriteString("\n")
	tbl := report.NewTable("", "Workload", "MinCores", "MaxCores", "ScalingRange", "MaxSlotDrop", "Commits")
	for _, r := range results {
		tbl.AddRow(r.Workload,
			fmt.Sprintf("%.2f", r.Min), fmt.Sprintf("%.2f", r.Max),
			fmt.Sprintf("%.2f", r.Max-r.Min), fmt.Sprintf("%.2f", r.MaxDrop),
			fmt.Sprintf("%d", r.Commits))
	}
	b.WriteString(tbl.String())
	return b.String(), results
}

// runFig9CloudyBench drives the four elasticity patterns sequentially on a
// serverless CDB3 deployment.
func runFig9CloudyBench(sc Scale, epoch time.Time, slots int) Figure9Result {
	s := sim.New(epoch)
	d := cdb.MustDeploy(s, cdb.ProfileFor(cdb.CDB3), cdb.Options{
		Replicas: -1, Seed: sc.Seed, PreWarm: true,
		CadenceScale: float64(time.Minute) / float64(sc.SlotLength),
	})
	col := core.NewCollector()
	r := core.NewRunner(s, core.Config{
		Name: "cb", Seed: sc.Seed, Mix: core.MixReadWrite,
		Write: d.RW, Read: d.ReadNode, Collector: col,
	})
	var cons []int
	for _, pat := range patterns.ElasticPatterns() {
		cons = append(cons, pat.Concurrency(sc.Tau)...)
	}
	if len(cons) != slots {
		panic("experiments: pattern slots mismatch")
	}
	s.Go("ctl", func(p *sim.Proc) {
		// Settle at the pattern's entry level before sampling begins.
		r.SetConcurrency(cons[0])
		p.Sleep(time.Duration(fig9Prelude) * sc.SlotLength)
		for _, c := range cons {
			r.SetConcurrency(c)
			p.Sleep(sc.SlotLength)
		}
		r.Stop()
		r.Wait(p)
		d.Shutdown()
	})
	if err := s.Run(); err != nil {
		panic("experiments: figure 9 cloudybench: " + err.Error())
	}
	return fig9Result("cloudybench", d.RW(), col.Commits(), sc, slots)
}

// runFig9Baseline drives a constant-concurrency baseline workload on the
// same CDB3 profile.
func runFig9Baseline(sc Scale, epoch time.Time, slots int, workload string, threads int) Figure9Result {
	s := sim.New(epoch)
	d := cdb.MustDeploy(s, cdb.ProfileFor(cdb.CDB3), cdb.Options{
		Replicas: -1, Seed: sc.Seed, NoDataset: true,
		CadenceScale: float64(time.Minute) / float64(sc.SlotLength),
	})
	n := d.RW()
	var txn baselines.TxnFunc
	switch workload {
	case "sysbench":
		sb := baselines.NewSysBench()
		if err := sb.CreateTables(n.DB, sc.Seed); err != nil {
			panic(err)
		}
		txn = sb.Txn
	case "tpcc":
		tp := baselines.NewTPCC(1)
		if err := tp.CreateTables(n.DB, sc.Seed); err != nil {
			panic(err)
		}
		txn = tp.Txn
	default:
		panic("experiments: unknown baseline " + workload)
	}
	col := core.NewCollector()
	drv := baselines.NewDriver(s, workload, sc.Seed, func() *node.Node { return n }, txn, col)
	s.Go("ctl", func(p *sim.Proc) {
		drv.SetConcurrency(threads)
		p.Sleep(time.Duration(fig9Prelude+slots) * sc.SlotLength)
		drv.Stop()
		drv.Wait(p)
		d.Shutdown()
	})
	if err := s.Run(); err != nil {
		panic("experiments: figure 9 " + workload + ": " + err.Error())
	}
	return fig9Result(workload, n, col.Commits(), sc, slots)
}

func fig9Result(name string, n *node.Node, commits int64, sc Scale, slots int) Figure9Result {
	from := time.Duration(fig9Prelude) * sc.SlotLength
	to := from + time.Duration(slots)*sc.SlotLength
	samples := n.Cores.Sample(from, to, sc.SlotLength)
	res := Figure9Result{Workload: name, Cores: samples, Commits: commits}
	if len(samples) == 0 {
		return res
	}
	res.Min, res.Max = samples[0], samples[0]
	for i, v := range samples {
		if v < res.Min {
			res.Min = v
		}
		if v > res.Max {
			res.Max = v
		}
		if i > 0 {
			if drop := samples[i-1] - v; drop > res.MaxDrop {
				res.MaxDrop = drop
			}
		}
	}
	return res
}
