package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cloudybench/internal/core"
)

// TestSuitesGolden pins the rendered scenario-suite report byte for byte —
// per-suite throughput, the planner split, index WAL traffic, the
// selectivity sweep, and the gauntlet composition table all feed
// EXPERIMENTS.md verbatim. Regenerate deliberately with -update.
func TestSuitesGolden(t *testing.T) {
	out, _ := Suites(mini)
	path := filepath.Join("testdata", "suites.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if out != string(want) {
		t.Errorf("suites report drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", out, want)
	}
}

// TestSuitesCoversGridAndPasses checks the experiment's shape: every
// registered suite appears on every SUT plus one chaos and one partition
// composition cell, every cell's invariants pass, and the report shows the
// selectivity cliff (both plans present in the sweep).
func TestSuitesCoversGridAndPasses(t *testing.T) {
	out, results := Suites(tiny)
	suites := core.SuiteNames()
	wantCells := len(suites)*len(SUTs) + 2*len(suites)
	if len(results) != wantCells {
		t.Fatalf("cells = %d, want %d", len(results), wantCells)
	}
	for _, r := range results {
		if !r.Passed() {
			t.Errorf("%s on %s: invariants failed: %v", r.Suite, r.Kind, r.Verdicts)
		}
		if r.Commits == 0 {
			t.Errorf("%s on %s: no commits", r.Suite, r.Kind)
		}
	}
	for _, suite := range suites {
		if !strings.Contains(out, suite) {
			t.Fatalf("report missing suite %q:\n%s", suite, out)
		}
	}
	for _, kind := range SUTs {
		if !strings.Contains(out, string(kind)) {
			t.Fatalf("report missing SUT %q:\n%s", kind, out)
		}
	}
	for _, want := range []string{"index-scan", "full-scan", "Selectivity sweep", "chaos", "partition", "IxPut"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
	// The partition composition on CDB4 must exercise fencing of index
	// writes: at least one suite run fenced stale writes or advanced the
	// epoch, and index WAL records flowed in every partition cell.
	var sawPromotion bool
	for i, r := range results {
		c := suiteGrid()[i]
		if !c.partition {
			continue
		}
		if r.Epoch >= 2 {
			sawPromotion = true
		}
		if r.IndexWALPuts == 0 {
			t.Errorf("%s under partition: no index WAL records", r.Suite)
		}
	}
	if !sawPromotion {
		t.Error("no partition cell promoted (epoch never advanced) — gauntlet composition inert")
	}
}
