package experiments

import (
	"fmt"
	"strings"
	"time"

	"cloudybench/internal/cluster"
	"cloudybench/internal/evaluator"
	"cloudybench/internal/patterns"
	"cloudybench/internal/report"
)

// TableVII regenerates the multi-tenancy evaluation: per-pattern TPS,
// total provisioned resources, cost, and T-Score per SUT.
func TableVII(sc Scale) (string, []evaluator.TenancyResult) {
	var cfgs []evaluator.TenancyConfig
	for _, kind := range SUTs {
		for _, pk := range patterns.TenancyKinds {
			cfgs = append(cfgs, evaluator.TenancyConfig{
				Kind: kind, Pattern: patterns.PaperTenancy(pk),
				SlotLength: sc.SlotLength, Seed: sc.Seed,
			})
		}
	}
	results := runCells(len(cfgs), func(i int) evaluator.TenancyResult {
		return evaluator.RunTenancy(cfgs[i])
	})
	tbl := report.NewTable("Table VII — Multi-Tenancy Evaluation (3 tenants)",
		"System", "TPS(a)", "TPS(b)", "TPS(c)", "TPS(d)",
		"Resources", "Cost/min", "T(a)", "T(b)", "T(c)", "T(d)", "T(AVG)")
	for k, kind := range SUTs {
		var tps, tscores [4]float64
		var resources, cost string
		for i := range patterns.TenancyKinds {
			r := results[k*len(patterns.TenancyKinds)+i]
			tps[i] = r.TotalTPS
			tscores[i] = r.TScore
			p := r.Package
			resources = fmt.Sprintf("%gvC %gGB %gGB %.0fIOPS %gGbps",
				p.VCores, p.MemoryGB, p.StorageGB, p.IOPS, p.NetGbps)
			cost = report.Money(r.CostPerMin)
		}
		avg := (tscores[0] + tscores[1] + tscores[2] + tscores[3]) / 4
		tbl.AddRow(string(kind),
			report.F(tps[0]), report.F(tps[1]), report.F(tps[2]), report.F(tps[3]),
			resources, cost,
			report.F(tscores[0]), report.F(tscores[1]), report.F(tscores[2]), report.F(tscores[3]),
			report.F(avg))
	}
	return tbl.String(), results
}

// TableVIII regenerates the fail-over evaluation: F-Score and R-Score for
// RW and RO node failures per SUT.
func TableVIII(sc Scale) (string, []evaluator.FailoverResult) {
	var cfgs []evaluator.FailoverConfig
	for _, kind := range SUTs {
		for _, role := range []cluster.Role{cluster.RW, cluster.RO} {
			cfgs = append(cfgs, evaluator.FailoverConfig{
				Kind: kind, Role: role, Concurrency: sc.FailConc,
				Baseline: sc.FailBaseline, Timeout: sc.FailTimeout, Seed: sc.Seed,
			})
		}
	}
	results := runCells(len(cfgs), func(i int) evaluator.FailoverResult {
		return evaluator.RunFailover(cfgs[i])
	})
	tbl := report.NewTable("Table VIII — F-Score and R-Score",
		"System", "F(RW)", "F(RO)", "F(AVG)", "R(RW)", "R(RO)", "R(AVG)", "Total")
	for k, kind := range SUTs {
		rw, ro := results[2*k], results[2*k+1]
		fAvg := (rw.F + ro.F) / 2
		rAvg := (rw.R + ro.R) / 2
		total := rw.F + ro.F + rw.R + ro.R
		tbl.AddRow(string(kind),
			report.Dur(rw.F), report.Dur(ro.F), report.Dur(fAvg),
			report.Dur(rw.R), report.Dur(ro.R), report.Dur(rAvg),
			report.Dur(total))
	}
	return tbl.String(), results
}

// Figure7 regenerates CDB4's fail-over timeline: the phase trace of the
// promote-RO switch-over.
func Figure7(sc Scale) (string, evaluator.FailoverResult) {
	r := evaluator.RunFailover(evaluator.FailoverConfig{
		Kind: "cdb4", Role: cluster.RW, Concurrency: sc.FailConc,
		Baseline: sc.FailBaseline, Timeout: sc.FailTimeout, Seed: sc.Seed,
	})
	var b strings.Builder
	b.WriteString("Figure 7 — Timeline of CDB4's fail-over process\n\n")
	tbl := report.NewTable("", "t (since injection)", "Phase")
	var injected time.Duration
	for _, ev := range r.Timeline {
		if strings.Contains(ev.Phase, "failure detected") {
			injected = ev.At
		}
	}
	if injected == 0 {
		injected = sc.FailBaseline
	}
	for _, ev := range r.Timeline {
		tbl.AddRow(report.Dur(ev.At-injected), ev.Phase)
	}
	b.WriteString(tbl.String())
	fmt.Fprintf(&b, "\nService recovery F = %s, throughput recovery R = %s\n",
		report.Dur(r.F), report.Dur(r.R))
	return b.String(), r
}

// LagTable regenerates the §III-F replication lag evaluation across the
// four IUD mixes.
func LagTable(sc Scale) (string, []evaluator.LagResult) {
	var cfgs []evaluator.LagConfig
	for _, iud := range evaluator.PaperIUDMixes {
		for _, kind := range SUTs {
			cfgs = append(cfgs, evaluator.LagConfig{
				Kind: kind, IUD: iud, Concurrency: sc.LagConc,
				Duration: sc.LagDuration, Seed: sc.Seed,
			})
		}
	}
	results := runCells(len(cfgs), func(i int) evaluator.LagResult {
		return evaluator.RunLag(cfgs[i])
	})
	var b strings.Builder
	b.WriteString("Replication lag time between RW and RO (§III-F)\n\n")
	i := 0
	for _, iud := range evaluator.PaperIUDMixes {
		tbl := report.NewTable(
			fmt.Sprintf("IUD = (%.0f%%, %.0f%%, %.0f%%)", iud[0], iud[1], iud[2]),
			"System", "InsertLag", "UpdateLag", "DeleteLag", "C-Score")
		for range SUTs {
			r := results[i]
			i++
			tbl.AddRow(string(r.Kind),
				report.Dur(r.InsertLag), report.Dur(r.UpdateLag),
				report.Dur(r.DeleteLag), report.Dur(r.CScore))
		}
		b.WriteString(tbl.String())
		b.WriteString("\n")
	}
	return b.String(), results
}

// TableIX regenerates the overall PERFECT comparison, including the
// actual-cost starred variants.
func TableIX(sc Scale) (string, []evaluator.OverallResult) {
	results := runCells(len(SUTs), func(i int) evaluator.OverallResult {
		return evaluator.RunOverall(evaluator.OverallConfig{
			Kind: SUTs[i], SlotLength: sc.SlotLength, Measure: sc.Measure,
			Tau: sc.Tau, Seed: sc.Seed,
			FailBaseline: sc.FailBaseline, FailTimeout: sc.FailTimeout, FailConc: sc.FailConc,
			LagDuration: sc.LagDuration,
			Warm:        warmCache,
		})
	})
	tbl := report.NewTable("Table IX — Overall performance (PERFECT framework)",
		"System", "P", "P*", "E1", "E1*", "R", "F", "E2", "C", "T", "T*", "O", "O*")
	for _, r := range results {
		kind := r.Kind
		s := r.Scores
		tbl.AddRow(string(kind),
			report.F(s.P), report.F(s.PStar),
			report.F(s.E1), report.F(s.E1Star),
			report.Dur(s.R), report.Dur(s.F),
			report.F(s.E2), report.Dur(s.C),
			report.F(s.T), report.F(s.TStar),
			fmt.Sprintf("%.2f", s.O()), fmt.Sprintf("%.2f", s.OStar()))
	}
	return tbl.String(), results
}
