package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cloudybench/internal/cdb"
	"cloudybench/internal/evaluator"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

// TestPartitionGolden pins the rendered partition report byte for byte: the
// report feeds EXPERIMENTS.md verbatim, and any drift in metrics, verdicts,
// or timeline marks under the fixed seed is a behaviour change. Regenerate
// deliberately with -update.
func TestPartitionGolden(t *testing.T) {
	out, _ := Partition(mini)
	path := filepath.Join("testdata", "partition.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if out != string(want) {
		t.Errorf("partition report drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", out, want)
	}
}

// TestPartitionContrastsRepairArchitectures: the experiment's headline —
// promote architectures restore writes during the partition, while RDS's
// restart-in-place waits for the heal — must be visible in the rendered
// report and the raw results.
func TestPartitionContrastsRepairArchitectures(t *testing.T) {
	out, results := Partition(tiny)
	if len(results) != len(SUTs) {
		t.Fatalf("results = %d, want %d", len(results), len(SUTs))
	}
	byKind := map[cdb.Kind]evaluator.PartitionResult{}
	for _, r := range results {
		if !r.Passed() {
			for _, v := range r.Verdicts {
				t.Errorf("%s %s: %s", r.Kind, v.Name, v)
			}
		}
		byKind[r.Kind] = r
	}
	rds, cdb4 := byKind[cdb.RDS], byKind[cdb.CDB4]
	if rds.Epoch != 1 {
		t.Errorf("RDS epoch = %d, want 1 (restart model never advances the lease)", rds.Epoch)
	}
	if cdb4.Epoch != 2 {
		t.Errorf("CDB4 epoch = %d, want 2 (one lease-fenced promotion)", cdb4.Epoch)
	}
	if rds.MTTR <= cdb4.MTTR {
		t.Errorf("RDS MTTR %v <= CDB4 MTTR %v: restart-in-place should be visibly slower", rds.MTTR, cdb4.MTTR)
	}
	for _, want := range []string{"rds", "cdb4", "Partition schedule", "dO ="} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}
