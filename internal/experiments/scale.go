// Package experiments maps every table and figure of the paper's
// evaluation (§III) to a runnable driver: Figure 5 and Table V (OLTP and
// P-Score), Figure 6 and Table VI (elasticity), Table VII (multi-tenancy),
// Table VIII and Figure 7 (fail-over), the §III-F lag-time table, Table IX
// (PERFECT overall), Figure 8 (buffer sweep), and Figure 9 (comparison
// with SysBench and TPC-C).
//
// Each driver takes a Scale: Quick shrinks windows so the whole suite
// regenerates in minutes of wall time, Paper uses the paper's one-minute
// slots and full sweeps. Shapes — who wins, by what rough factor, where
// crossovers fall — are slot-length invariant in the simulator, so Quick
// reproduces the paper's qualitative results.
package experiments

import (
	"time"

	"cloudybench/internal/cdb"
	"cloudybench/internal/core"
)

// Scale sizes all experiment windows.
type Scale struct {
	Name string

	// OLTP cells (Figure 5, Table V, Figure 8, E2).
	Warmup      time.Duration
	Measure     time.Duration
	Concurrency []int // concurrency sweep for Figure 5
	SFs         []int // scale factors for Figure 5

	// Elasticity (Figure 6, Table VI, Figure 9).
	SlotLength time.Duration
	CostSlots  int
	Tau        int

	// Fail-over (Table VIII, Figure 7).
	FailBaseline time.Duration
	FailTimeout  time.Duration
	FailConc     int

	// Lag (§III-F table).
	LagDuration time.Duration
	LagConc     int

	// Chaos gauntlet (cloudybench run chaos).
	ChaosSpan time.Duration
	ChaosConc int

	// Partition gauntlet (cloudybench run partition).
	PartSpan time.Duration
	PartConc int

	// Crash gauntlet (cloudybench run crash) — the traffic window the
	// kill schedule is compiled onto, and the client count keeping the WAL
	// growing while the kills land.
	CrashSpan time.Duration
	CrashConc int

	// Scenario suites (cloudybench run suites) — registered workload
	// families on every SUT, plus their chaos/partition composition cells.
	SuiteSpan time.Duration
	SuiteConc int

	// Soak (cloudybench soak) — days of virtual time per SUT, the timeline
	// window width (must divide 24h into >= 4 windows), the traffic burst
	// per window, the per-tenant client count, and how many windows pass
	// between in-flight invariant sweeps.
	SoakDays       int
	SoakWindow     time.Duration
	SoakBurst      time.Duration
	SoakConc       int
	SoakSweepEvery int

	// ArtifactDir, when non-empty, makes artifact-emitting experiments
	// (the "soak" comparison bundle) write their CSV/Markdown files into
	// the directory (created if missing). Empty keeps output on stdout.
	ArtifactDir string

	// TraceDir, when non-empty, makes trace-aware experiments (the "oltp"
	// stage-profile run) write JSONL span files and a Prometheus-text
	// metrics snapshot into the directory (created if missing). Empty
	// disables file emission; the stage-breakdown tables still render.
	TraceDir string

	Seed int64
}

// Quick is the default scale: seconds-long windows, single scale factor,
// reduced sweep. The full suite completes in a few minutes.
var Quick = Scale{
	Name:           "quick",
	Warmup:         time.Second,
	Measure:        3 * time.Second,
	Concurrency:    []int{50, 150},
	SFs:            []int{1},
	SlotLength:     5 * time.Second,
	CostSlots:      10,
	Tau:            110,
	FailBaseline:   6 * time.Second,
	FailTimeout:    60 * time.Second,
	FailConc:       60,
	LagDuration:    4 * time.Second,
	LagConc:        8,
	ChaosSpan:      8 * time.Second,
	ChaosConc:      8,
	PartSpan:       18 * time.Second,
	PartConc:       12,
	CrashSpan:      20 * time.Second,
	CrashConc:      12,
	SuiteSpan:      6 * time.Second,
	SuiteConc:      8,
	SoakDays:       3,
	SoakWindow:     2 * time.Hour,
	SoakBurst:      time.Second,
	SoakConc:       4,
	SoakSweepEvery: 3,
	Seed:           42,
}

// Paper approximates the paper's setup: one-minute slots, the full
// concurrency sweep, and all three scale factors. Expect tens of minutes.
var Paper = Scale{
	Name:           "paper",
	Warmup:         5 * time.Second,
	Measure:        20 * time.Second,
	Concurrency:    []int{50, 100, 150, 200},
	SFs:            []int{1, 10, 100},
	SlotLength:     time.Minute,
	CostSlots:      10,
	Tau:            110,
	FailBaseline:   10 * time.Second,
	FailTimeout:    120 * time.Second,
	FailConc:       150,
	LagDuration:    15 * time.Second,
	LagConc:        16,
	ChaosSpan:      30 * time.Second,
	ChaosConc:      32,
	PartSpan:       40 * time.Second,
	PartConc:       32,
	CrashSpan:      40 * time.Second,
	CrashConc:      24,
	SuiteSpan:      20 * time.Second,
	SuiteConc:      16,
	SoakDays:       7,
	SoakWindow:     time.Hour,
	SoakBurst:      2 * time.Second,
	SoakConc:       8,
	SoakSweepEvery: 4,
	Seed:           42,
}

// Bench compresses the experiment windows further than Quick so the whole
// suite of artifacts completes in seconds — the scale used by the
// regeneration benchmarks (bench_test.go) and by kernel wall-clock
// measurements (BENCH_sim.json).
var Bench = Scale{
	Name:           "bench",
	Warmup:         500 * time.Millisecond,
	Measure:        1500 * time.Millisecond,
	Concurrency:    []int{100},
	SFs:            []int{1},
	SlotLength:     3 * time.Second,
	CostSlots:      6,
	Tau:            110,
	FailBaseline:   6 * time.Second,
	FailTimeout:    45 * time.Second,
	FailConc:       30,
	LagDuration:    2500 * time.Millisecond,
	LagConc:        6,
	ChaosSpan:      6 * time.Second,
	ChaosConc:      6,
	PartSpan:       12 * time.Second,
	PartConc:       6,
	CrashSpan:      12 * time.Second,
	CrashConc:      6,
	SuiteSpan:      3 * time.Second,
	SuiteConc:      4,
	SoakDays:       3,
	SoakWindow:     6 * time.Hour,
	SoakBurst:      600 * time.Millisecond,
	SoakConc:       2,
	SoakSweepEvery: 2,
	Seed:           42,
}

// ScaleByName resolves "quick", "paper", or "bench".
func ScaleByName(name string) (Scale, bool) {
	switch name {
	case "", "quick":
		return Quick, true
	case "paper":
		return Paper, true
	case "bench":
		return Bench, true
	}
	return Scale{}, false
}

// Mixes are the paper's three workload modes in reporting order.
var Mixes = []struct {
	Name string
	Mix  core.Mix
}{
	{"RO", core.MixReadOnly},
	{"RW", core.MixReadWrite},
	{"WO", core.MixWriteOnly},
}

// SUTs lists the systems in the paper's reporting order.
var SUTs = cdb.Kinds
