package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"cloudybench/internal/evaluator"
)

// soakGolden pins one rendered soak artifact byte for byte against
// testdata/<name>.golden.
func soakGolden(t *testing.T, name, out string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if out != string(want) {
		t.Errorf("%s drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", name, out, want)
	}
}

// TestSoakGolden pins the full comparison artifact — the Markdown document
// and the flat CSV — byte for byte at the mini scale. These are the files
// `cloudybench soak -o` ships, so any drift in a window row, sweep verdict,
// anomaly timestamp, or cost figure is a behaviour change. Regenerate
// deliberately with -update.
func TestSoakGolden(t *testing.T) {
	sc := mini
	sc.ArtifactDir = t.TempDir()
	md, results := Soak(sc)

	csv, err := os.ReadFile(filepath.Join(sc.ArtifactDir, "soak.csv"))
	if err != nil {
		t.Fatal(err)
	}
	diskMD, err := os.ReadFile(filepath.Join(sc.ArtifactDir, "soak.md"))
	if err != nil {
		t.Fatal(err)
	}
	// The returned document is the written soak.md plus the footer line
	// naming the (temp, non-deterministic) directory; golden only the
	// stable parts.
	if !strings.HasPrefix(md, string(diskMD)) {
		t.Fatal("returned markdown does not start with the written soak.md")
	}
	soakGolden(t, "soak_md", string(diskMD))
	soakGolden(t, "soak_csv", string(csv))

	if len(results) != len(SUTs) {
		t.Fatalf("results = %d, want %d", len(results), len(SUTs))
	}
	for _, r := range results {
		if !r.Passed() {
			t.Errorf("%s soak verdicts failed", r.Kind)
		}
	}
}

// TestSoakExperimentShape is the fast structural smoke (the CI race-job
// entry point): every SUT completes three virtual days, every sweep passes,
// and each SUT's seeded blackout anomalies land at the same deterministic
// virtual timestamps.
func TestSoakExperimentShape(t *testing.T) {
	out, results := Soak(tiny)
	if len(results) != len(SUTs) {
		t.Fatalf("results = %d, want %d", len(results), len(SUTs))
	}
	wpd := int(24 * time.Hour / tiny.SoakWindow)
	for _, r := range results {
		if !r.Passed() {
			t.Errorf("%s: soak invariants failed", r.Kind)
		}
		if r.Days != tiny.SoakDays || len(r.Windows) != tiny.SoakDays*wpd {
			t.Fatalf("%s: %d windows over %d days", r.Kind, len(r.Windows), r.Days)
		}
		// Every SUT sees the same blackout schedule: the last window of each
		// day must be flagged unavailable.
		flagged := map[int]string{}
		for _, a := range r.Anomalies {
			flagged[a.Window] = a.Kind
		}
		for d := 0; d < r.Days; d++ {
			w := d*wpd + wpd - 1
			if flagged[w] != "unavailability" {
				t.Errorf("%s: window %d flagged %q, want unavailability (anomalies %+v)",
					r.Kind, w, flagged[w], r.Anomalies)
			}
		}
	}
	for _, want := range []string{
		"# CloudyBench soak", "## rds", "## cdb4",
		"### In-flight invariant sweeps", "### Anomalies", "### Chaos log",
		"## Cost efficiency", "RUC per 1k transactions",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("soak artifact missing %q", want)
		}
	}
	// No artifact dir: nothing may have been written anywhere.
	if strings.Contains(out, "Wrote soak.csv") {
		t.Fatal("file footer present without ArtifactDir")
	}
	var _ []evaluator.SoakResult = results
}
