package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"cloudybench/internal/core"
	"cloudybench/internal/evaluator"
	"cloudybench/internal/obs"
	"cloudybench/internal/report"
)

// OLTPTrace runs one read-write OLTP cell per SUT with the virtual-time
// tracer attached and renders each system's stage breakdown — where a
// transaction's virtual time actually goes (CPU, lock waits, page IO, WAL
// appends, network hops, checkpoint interference). With sc.TraceDir set it
// additionally writes trace_<sut>.jsonl span files and one combined
// metrics.prom Prometheus-text snapshot into the directory.
//
// This is the paper's "why is SUT X slower" companion to Figure 5: the TPS
// tables say CDB2 trails CDB1; the stage breakdown shows the extra log-hop
// and page-service time that explains it.
func OLTPTrace(sc Scale) (string, []*obs.StageAgg) {
	var b strings.Builder
	var aggs []*obs.StageAgg
	emit := sc.TraceDir != ""
	if emit {
		if err := os.MkdirAll(sc.TraceDir, 0o755); err != nil {
			return fmt.Sprintf("trace: creating %s: %v\n", sc.TraceDir, err), nil
		}
	}
	conc := 50
	if len(sc.Concurrency) > 0 {
		conc = sc.Concurrency[0]
	}
	// Each cell traces one SUT's OLTP run and, when emitting, owns its own
	// trace_<sut>.jsonl file — cells never share file handles, so the fan-out
	// is safe and the per-SUT files are identical to a sequential run.
	type traceCell struct {
		agg *obs.StageAgg
		res evaluator.OLTPResult
		err string
	}
	cells := runCells(len(SUTs), func(i int) traceCell {
		kind := SUTs[i]
		var sink obs.Sink
		var file *os.File
		var jsonl *obs.JSONLSink
		if emit {
			path := filepath.Join(sc.TraceDir, fmt.Sprintf("trace_%s.jsonl", kind))
			f, err := os.Create(path)
			if err != nil {
				return traceCell{err: fmt.Sprintf("trace: creating %s: %v\n", path, err)}
			}
			file = f
			jsonl = obs.NewJSONLSink(f)
			sink = jsonl
		}
		tr := obs.NewTracer(string(kind), sink)
		res := evaluator.RunOLTP(evaluator.OLTPConfig{
			Kind: kind, SF: 1, Mix: core.MixReadWrite,
			Concurrency: conc,
			Warmup:      sc.Warmup, Measure: sc.Measure,
			Seed:   sc.Seed,
			Tracer: tr,
		})
		if file != nil {
			if err := jsonl.Err(); err != nil {
				return traceCell{err: fmt.Sprintf("trace: writing %s spans: %v\n", kind, err)}
			}
			if err := file.Close(); err != nil {
				return traceCell{err: fmt.Sprintf("trace: closing %s spans: %v\n", kind, err)}
			}
		}
		return traceCell{agg: tr.Agg(), res: res}
	})
	for i, c := range cells {
		if c.err != "" {
			return c.err, nil
		}
		aggs = append(aggs, c.agg)
		fmt.Fprintf(&b, "%s: TPS=%s p50=%s p99=%s\n\n",
			SUTs[i], report.F(c.res.TPS), report.Dur(c.res.P50), report.Dur(c.res.P99))
		b.WriteString(report.TxnSummary(c.agg))
		b.WriteByte('\n')
		b.WriteString(report.StageBreakdown(c.agg))
		b.WriteByte('\n')
	}
	if emit {
		path := filepath.Join(sc.TraceDir, "metrics.prom")
		f, err := os.Create(path)
		if err != nil {
			return fmt.Sprintf("trace: creating %s: %v\n", path, err), nil
		}
		werr := obs.WritePrometheus(f, aggs...)
		cerr := f.Close()
		if werr == nil {
			werr = cerr
		}
		if werr != nil {
			return fmt.Sprintf("trace: writing %s: %v\n", path, werr), nil
		}
		fmt.Fprintf(&b, "Wrote %d JSONL trace files and metrics.prom to %s\n", len(SUTs), sc.TraceDir)
	}
	return b.String(), aggs
}
