package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"

	"cloudybench/internal/evaluator"
)

// Every experiment is a grid of independent cells — one (SUT, SF, mix,
// concurrency, pattern, ...) combination, each building its own sim.Sim —
// so cells can execute on all cores at once. runCells is the shared fan-out
// every driver goes through; rendering always happens afterwards, from the
// results slice in declaration order, so the report is byte-identical to a
// sequential run no matter how many workers raced.

// warmCache memoizes OLTP warm-ups across every experiment in a process:
// sweep grids (Figure 5's concurrency axis, Figure 8's buffer axis, Table V
// vs Figure 5 overlaps) re-run the same (SUT, scale, mix, seed) warm-up many
// times, and a cache hit is byte-identical to a miss by construction, so
// sharing one cache process-wide only saves wall-clock. Safe under the cell
// pool below (WarmCache locks internally).
var warmCache = evaluator.NewWarmCache()

// WarmStats reports the shared warm-up cache's request/computed counters
// (the run-all summary prints the wall-clock win).
func WarmStats() (requests, computed int64) { return warmCache.Stats() }

// parallelism is the cell worker-pool width. Guarded by parMu; read through
// cellWorkers at the start of each fan-out.
var (
	parMu       sync.Mutex
	parallelism = runtime.GOMAXPROCS(0)
)

// SetParallelism sets how many experiment cells may execute concurrently.
// n < 1 resets to all cores (GOMAXPROCS); 1 restores strictly sequential
// execution. Results are identical either way — only wall-clock changes.
func SetParallelism(n int) {
	parMu.Lock()
	defer parMu.Unlock()
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	parallelism = n
}

// Parallelism reports the current cell worker-pool width.
func Parallelism() int {
	parMu.Lock()
	defer parMu.Unlock()
	return parallelism
}

// runCells executes fn(0..n-1) on a bounded worker pool and returns the
// results indexed by cell. Each cell must be self-contained (its own Sim,
// collector, and deployment — true for every evaluator entry point). A
// panicking cell is re-panicked on the caller's goroutine, preserving the
// sequential path's failure behaviour.
func runCells[T any](n int, fn func(i int) T) []T {
	out := make([]T, n)
	workers := Parallelism()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			out[i] = fn(i)
		}
		return out
	}
	var (
		next atomic.Int64
		//detlint:allow rawgo(joins the blessed cell pool below; cells are independent Sims and results merge in declaration order)
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicked any
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		//detlint:allow rawgo(blessed cell worker pool — the one sanctioned fan-out; each cell owns its Sim, output is merged by cell index)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicMu.Lock()
							if panicked == nil {
								panicked = r
							}
							panicMu.Unlock()
						}
					}()
					out[i] = fn(i)
				}()
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
	return out
}
