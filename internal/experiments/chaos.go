package experiments

import (
	"fmt"
	"strings"

	"cloudybench/internal/evaluator"
	"cloudybench/internal/report"
)

// Chaos runs every SUT through the standard fault gauntlet (disk stall,
// cache drop, link degrade, IO-error burst, replica crash mid-replay, node
// pause) while the invariant recorder watches the transaction history, then
// reports a verdict sheet per system plus the recovery metrics the faults
// left behind. Deterministic: the same scale and seed reproduce the report
// byte for byte.
func Chaos(sc Scale) (string, []evaluator.ChaosResult) {
	results := runCells(len(SUTs), func(i int) evaluator.ChaosResult {
		return evaluator.RunChaos(evaluator.ChaosConfig{
			Kind: SUTs[i], Span: sc.ChaosSpan, Concurrency: sc.ChaosConc, Seed: sc.Seed,
		})
	})
	tbl := report.NewTable("Chaos gauntlet — invariant verdicts under injected faults",
		"System", "Verdict", "Commits", "Errors", "Faults", "TPS", "Quiesce")
	var detail strings.Builder
	for _, r := range results {
		kind := r.Kind
		verdict := "PASS"
		if !r.Passed() {
			verdict = "FAIL"
		}
		tbl.AddRow(string(kind), verdict,
			fmt.Sprintf("%d", r.Commits),
			fmt.Sprintf("%d", r.Errors),
			fmt.Sprintf("%d", len(r.Applied)),
			report.F(r.TPS),
			report.Dur(r.QuiesceTime))
		fmt.Fprintf(&detail, "\n%s invariants:\n", kind)
		for _, v := range r.Verdicts {
			fmt.Fprintf(&detail, "  %-18s %s\n", v.Name, v)
		}
	}
	var b strings.Builder
	b.WriteString(tbl.String())
	b.WriteString(detail.String())
	b.WriteString("\nFault schedule (per run): disk-stall(rw), cache-drop(rw), link-degrade(all), io-error-burst(rw), replica-crash(ro0), node-pause(rw), disk-stall(ro0)\n")
	return b.String(), results
}
