package experiments

import (
	"fmt"
	"strings"
	"time"

	"cloudybench/internal/cdb"
	"cloudybench/internal/core"
	"cloudybench/internal/node"
	"cloudybench/internal/report"
	"cloudybench/internal/sim"
)

// Ablations isolate the architectural mechanisms the paper credits for
// each SUT's behaviour, by re-deploying a profile with exactly one
// mechanism changed:
//
//   - ab-replay: CDB3 with parallel replay lanes vs forced-sequential —
//     the paper attributes CDB3's low lag to parallel log replay (§III-F).
//   - ab-rembuf: CDB4 with vs without its remote buffer pool — the paper
//     credits the remote pool for CDB4's throughput and recovery.
//   - ab-redo: CDB1 with redo pushdown vs classic dirty-page writeback —
//     the log-is-the-database design the paper contrasts with RDS.

// AblationReplay compares CDB3's replication lag with 1 vs N replay lanes.
func AblationReplay(sc Scale) string {
	lanes := []int{1, cdb.ProfileFor(cdb.CDB3).Replication.Lanes}
	runs := runCells(len(lanes), func(i int) time.Duration {
		prof := cdb.ProfileFor(cdb.CDB3)
		prof.Replication.Lanes = lanes[i]
		return runLagWithProfile(sc, prof)
	})
	seq, par := runs[0], runs[1]
	tbl := report.NewTable("Ablation — parallel log replay (CDB3, write-heavy)",
		"Replay", "Mean update lag")
	tbl.AddRow("sequential (1 lane)", report.Dur(seq))
	tbl.AddRow("parallel (profile lanes)", report.Dur(par))
	return tbl.String() + fmt.Sprintf("\nParallel replay cuts lag %.1fx.\n",
		float64(seq)/float64(par))
}

// runLagWithProfile measures update lag under a write-heavy load for an
// arbitrary profile variant.
func runLagWithProfile(sc Scale, prof cdb.Profile) time.Duration {
	s := sim.New(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	d := cdb.MustDeploy(s, prof, cdb.Options{
		Replicas: 1, Seed: sc.Seed, PreWarm: true, Serverless: cdb.Bool(false),
	})
	col := core.NewCollector()
	r := core.NewRunner(s, core.Config{
		Name: "ab", Seed: sc.Seed, Mix: core.IUDMix(40, 50, 10),
		Write: d.RW, Read: d.ReadNode, Collector: col,
	})
	s.Go("ctl", func(p *sim.Proc) {
		r.SetConcurrency(sc.LagConc)
		p.Sleep(sc.LagDuration)
		r.Stop()
		r.Wait(p)
		p.Sleep(3 * time.Second)
		d.Shutdown()
	})
	if err := s.Run(); err != nil {
		panic("experiments: ablation lag: " + err.Error())
	}
	_, upd, _ := d.Streams()[0].LagReservoirs()
	return upd.Mean()
}

// AblationRemoteBuffer compares CDB4's transaction latency with and
// without the shared remote buffer pool. Throughput stays CPU-bound either
// way at this scale; what the remote pool buys is the *miss path*: an RDMA
// round trip (~tens of µs) instead of a storage-service fetch (~600 µs),
// which shows up directly in p50 latency when the local buffer is small.
func AblationRemoteBuffer(sc Scale) string {
	runs := runCells(2, func(i int) ablationOLTP {
		prof := cdb.ProfileFor(cdb.CDB4)
		// Shrink the local buffer so the second tier actually matters
		// (at SF1 the stock 10 GB local buffer absorbs everything).
		if i == 1 {
			prof.RemoteBufBytes = 0
		}
		return runOLTPWithProfile(sc, prof, 16<<20, true)
	})
	with, without := runs[0], runs[1]
	tbl := report.NewTable("Ablation — remote buffer pool (CDB4, 16MB local buffer, RW)",
		"Configuration", "TPS", "p50 latency", "p99 latency")
	tbl.AddRow("local + remote pool (RDMA)", report.F(with.tps),
		report.Dur(with.p50), report.Dur(with.p99))
	tbl.AddRow("local only (misses go to storage)", report.F(without.tps),
		report.Dur(without.p50), report.Dur(without.p99))
	ratio := float64(without.p50) / float64(with.p50)
	return tbl.String() + fmt.Sprintf("\nServing misses from the remote pool cuts p50 latency %.1fx.\n", ratio)
}

// AblationRedoPushdown compares CDB1 with redo pushdown against a variant
// that writes dirty pages back to storage like a classic engine. The
// delete-heavy mix dirties pages across the whole table, so writeback and
// checkpoints fight foreground traffic for the storage channel.
func AblationRedoPushdown(sc Scale) string {
	runs := runCells(2, func(i int) ablationOLTP {
		prof := cdb.ProfileFor(cdb.CDB1)
		prof.RedoPushdown = i == 0
		if i == 1 {
			// Classic engines must also checkpoint frequently.
			prof.CheckpointEvery = 2 * time.Second
		}
		// Start cold so the buffer fills with freshly dirtied pages and
		// eviction writeback engages within the measurement window.
		return runOLTPWithProfile(sc, prof, 0, false)
	})
	with, without := runs[0], runs[1]
	tbl := report.NewTable("Ablation — redo pushdown (CDB1, insert+delete mix)",
		"Configuration", "TPS", "p50 latency", "p99 latency")
	tbl.AddRow("redo pushed to storage (no writeback)", report.F(with.tps),
		report.Dur(with.p50), report.Dur(with.p99))
	tbl.AddRow("dirty-page writeback + checkpoints", report.F(without.tps),
		report.Dur(without.p50), report.Dur(without.p99))
	note := "\nAt this scale CDB1 stays compute-bound either way: the shared storage\n" +
		"service absorbs writeback and checkpoint traffic without throttling\n" +
		"foreground work — redo pushdown's advantage appears once the storage\n" +
		"channel, not the CPU, is the binding constraint (see Figure 8's SF10\n" +
		"sweep, where the miss path dominates).\n"
	return tbl.String() + note
}

type ablationOLTP struct {
	tps      float64
	hitRatio float64
	p50, p99 time.Duration
}

func runOLTPWithProfile(sc Scale, prof cdb.Profile, buffer int64, preWarm bool) ablationOLTP {
	s := sim.New(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	d := cdb.MustDeploy(s, prof, cdb.Options{
		Replicas: -1, Seed: sc.Seed, PreWarm: preWarm, Serverless: cdb.Bool(false),
		BufferBytes: buffer,
	})
	col := core.NewCollector()
	mix := core.MixReadWrite
	if prof.Kind == cdb.CDB1 {
		// Insert+delete dirties pages across the whole key space.
		mix = core.Mix{T1: 50, T4: 50}
	}
	r := core.NewRunner(s, core.Config{
		Name: "ab", Seed: sc.Seed, Mix: mix,
		Write: d.RW, Read: func() *node.Node { return d.RW() }, Collector: col,
	})
	s.Go("ctl", func(p *sim.Proc) {
		r.SetConcurrency(64)
		p.Sleep(sc.Warmup + sc.Measure)
		r.Stop()
		r.Wait(p)
		d.Shutdown()
	})
	if err := s.Run(); err != nil {
		panic("experiments: ablation oltp: " + err.Error())
	}
	return ablationOLTP{
		tps:      col.TPS(sc.Warmup, sc.Warmup+sc.Measure),
		hitRatio: d.RW().Buf.HitRatio(),
		p50:      col.Latency().Quantile(0.5),
		p99:      col.Latency().Quantile(0.99),
	}
}

// Ablations runs all three and concatenates their reports. The three
// sections fan out as cells themselves (each of which fans out its own two
// variant runs), so all six underlying simulations can occupy cores at once.
func Ablations(sc Scale) string {
	sections := []func(Scale) string{AblationReplay, AblationRemoteBuffer, AblationRedoPushdown}
	parts := runCells(len(sections), func(i int) string { return sections[i](sc) })
	var b strings.Builder
	for i, part := range parts {
		if i > 0 {
			b.WriteString("\n")
		}
		b.WriteString(part)
	}
	return b.String()
}
