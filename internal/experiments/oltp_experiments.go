package experiments

import (
	"fmt"
	"strings"

	"cloudybench/internal/cdb"
	"cloudybench/internal/core"
	"cloudybench/internal/evaluator"
	"cloudybench/internal/report"
)

// Figure5 regenerates the transaction-processing comparison: TPS per SUT
// across scale factors, workload modes, and concurrency levels. Cells fan
// out across cores; the tables render afterwards in declaration order.
func Figure5(sc Scale) (string, []evaluator.OLTPResult) {
	var cfgs []evaluator.OLTPConfig
	for _, sf := range sc.SFs {
		for _, mix := range Mixes {
			for _, kind := range SUTs {
				for _, con := range sc.Concurrency {
					cfgs = append(cfgs, evaluator.OLTPConfig{
						Kind: kind, SF: sf, Mix: mix.Mix, Concurrency: con,
						Warmup: sc.Warmup, Measure: sc.Measure, Seed: sc.Seed,
						Warm: warmCache,
					})
				}
			}
		}
	}
	results := runCells(len(cfgs), func(i int) evaluator.OLTPResult {
		return evaluator.RunOLTP(cfgs[i])
	})
	var b strings.Builder
	b.WriteString("Figure 5 — Transaction Processing Performance (TPS)\n\n")
	i := 0
	for _, sf := range sc.SFs {
		for _, mix := range Mixes {
			tbl := report.NewTable(
				fmt.Sprintf("SF%d, %s (%s)", sf, mix.Name, mix.Mix),
				append([]string{"System"}, concurrencyHeaders(sc.Concurrency)...)...)
			for _, kind := range SUTs {
				row := []string{string(kind)}
				for range sc.Concurrency {
					row = append(row, report.F(results[i].TPS))
					i++
				}
				tbl.AddRow(row...)
			}
			b.WriteString(tbl.String())
			b.WriteString("\n")
		}
	}
	return b.String(), results
}

func concurrencyHeaders(cons []int) []string {
	out := make([]string, len(cons))
	for i, c := range cons {
		out[i] = fmt.Sprintf("con=%d", c)
	}
	return out
}

// TableV regenerates the P-Score table: per-SUT resource cost breakdown
// and productivity per workload mode.
func TableV(sc Scale) (string, []evaluator.OLTPResult) {
	con := 150
	if len(sc.Concurrency) > 0 {
		con = sc.Concurrency[len(sc.Concurrency)-1]
	}
	var cfgs []evaluator.OLTPConfig
	for _, kind := range SUTs {
		for _, mix := range Mixes {
			cfgs = append(cfgs, evaluator.OLTPConfig{
				Kind: kind, SF: 1, Mix: mix.Mix, Concurrency: con,
				Warmup: sc.Warmup, Measure: sc.Measure, Seed: sc.Seed,
				Warm: warmCache,
			})
		}
	}
	results := runCells(len(cfgs), func(i int) evaluator.OLTPResult {
		return evaluator.RunOLTP(cfgs[i])
	})
	tbl := report.NewTable("Table V — P-Score with detailed resource cost ($/min, 1 RW + 1 RO)",
		"System", "CPU", "Memory", "Storage", "IOPS", "Network", "Total",
		"P(RO)", "P(RW)", "P(WO)", "P(AVG)")
	for k, kind := range SUTs {
		var ps [3]float64
		var cost string
		var parts [5]string
		for i := range Mixes {
			r := results[k*len(Mixes)+i]
			ps[i] = r.PScore
			cost = report.Money(r.CostPerMin.Total())
			parts = [5]string{
				report.Money(r.CostPerMin.CPU), report.Money(r.CostPerMin.Memory),
				report.Money(r.CostPerMin.Storage), report.Money(r.CostPerMin.IOPS),
				report.Money(r.CostPerMin.Network),
			}
		}
		avg := (ps[0] + ps[1] + ps[2]) / 3
		tbl.AddRow(string(kind), parts[0], parts[1], parts[2], parts[3], parts[4], cost,
			report.F(ps[0]), report.F(ps[1]), report.F(ps[2]), report.F(avg))
	}
	return tbl.String(), results
}

// Figure8 regenerates the buffer-size sweep: TPS, cost, and P-Score for
// RDS, CDB1, and CDB4 as the buffer grows from 128 MB to 10 GB. The paper
// sweeps at SF1; our generator's hot working set at SF1 fits even the
// smallest buffer, so the sweep runs at SF10 where the buffer binds —
// the shape (TPS grows with buffer at constant cost) is the artifact.
func Figure8(sc Scale) (string, []evaluator.OLTPResult) {
	buffers := []int64{128 << 20, 1 << 30, 4 << 30, 10 << 30}
	kinds := []cdb.Kind{cdb.RDS, cdb.CDB1, cdb.CDB4}
	con := 100
	var cfgs []evaluator.OLTPConfig
	for _, kind := range kinds {
		for _, buf := range buffers {
			cfgs = append(cfgs, evaluator.OLTPConfig{
				Kind: kind, SF: 10, Mix: core.MixReadWrite, Concurrency: con,
				Warmup: sc.Warmup, Measure: sc.Measure, Seed: sc.Seed,
				BufferBytes: buf,
				Warm:        warmCache,
			})
		}
	}
	results := runCells(len(cfgs), func(i int) evaluator.OLTPResult {
		return evaluator.RunOLTP(cfgs[i])
	})
	tbl := report.NewTable("Figure 8 — Varying the Buffer Size (RW, SF10)",
		"System", "Buffer", "TPS", "HitRatio", "Cost/min", "P-Score")
	for i, r := range results {
		tbl.AddRow(string(cfgs[i].Kind), fmt.Sprintf("%dMB", cfgs[i].BufferBytes>>20),
			report.F(r.TPS), fmt.Sprintf("%.2f", r.HitRatio),
			report.Money(r.CostPerMin.Total()), report.F(r.PScore))
	}
	return tbl.String(), results
}
