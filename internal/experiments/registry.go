package experiments

import (
	"fmt"
	"sort"
)

// Runner regenerates one paper artifact, returning its rendered report.
type Runner func(sc Scale) string

// registry maps experiment ids to drivers and descriptions.
var registry = map[string]struct {
	Desc string
	Run  Runner
}{
	"f5": {"Figure 5 — transaction processing TPS across SF/mix/concurrency",
		func(sc Scale) string { out, _ := Figure5(sc); return out }},
	"t5": {"Table V — P-Score with detailed resource cost",
		func(sc Scale) string { out, _ := TableV(sc); return out }},
	"f6": {"Figure 6 — elasticity: TPS, total cost, E1-Score",
		func(sc Scale) string { out, _ := Figure6(sc); return out }},
	"t6": {"Table VI — scaling time and cost during autoscaling",
		func(sc Scale) string { out, _ := TableVI(sc); return out }},
	"t7": {"Table VII — multi-tenancy TPS, resources, cost, T-Score",
		func(sc Scale) string { out, _ := TableVII(sc); return out }},
	"t8": {"Table VIII — fail-over F-Score and R-Score",
		func(sc Scale) string { out, _ := TableVIII(sc); return out }},
	"f7": {"Figure 7 — CDB4 fail-over timeline",
		func(sc Scale) string { out, _ := Figure7(sc); return out }},
	"lag": {"§III-F — replication lag time across IUD mixes",
		func(sc Scale) string { out, _ := LagTable(sc); return out }},
	"t9": {"Table IX — overall PERFECT scores (with actual-cost variants)",
		func(sc Scale) string { out, _ := TableIX(sc); return out }},
	"f8": {"Figure 8 — buffer size sweep for RDS/CDB1/CDB4",
		func(sc Scale) string { out, _ := Figure8(sc); return out }},
	"f9": {"Figure 9 — CPU allocation vs SysBench and TPC-C on CDB3",
		func(sc Scale) string { out, _ := Figure9(sc); return out }},
	"ablations": {"Ablations — parallel replay, remote buffer pool, redo pushdown",
		Ablations},
	"chaos": {"Chaos gauntlet — ACID invariants under injected faults, all SUTs",
		func(sc Scale) string { out, _ := Chaos(sc); return out }},
	"crash": {"Crash gauntlet — WAL redo/undo recovery, torn-tail kills, and the durability/no-resurrection verdicts, all SUTs",
		func(sc Scale) string { out, _ := Crash(sc); return out }},
	"oltp": {"Stage profile — traced OLTP run with per-SUT virtual-time stage breakdown (honours --trace)",
		func(sc Scale) string { out, _ := OLTPTrace(sc); return out }},
	"partition": {"Partition gauntlet — MTTD/MTTR, lease fencing, and resilient-client metrics under a gray partition, all SUTs",
		func(sc Scale) string { out, _ := Partition(sc); return out }},
	"suites": {"Scenario suites — registered workload families (indexed range scan, time-series, LOB) on every SUT, with selectivity sweep and chaos/partition composition",
		func(sc Scale) string { out, _ := Suites(sc); return out }},
	"soak": {"Soak — multi-day longitudinal run per SUT with windowed telemetry, rolling chaos, tenant churn, in-flight invariant sweeps, and the CSV/Markdown comparison artifact (honours --artifacts)",
		func(sc Scale) string { out, _ := Soak(sc); return out }},
}

// IDs returns all experiment ids in sorted order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Describe returns an experiment's description.
func Describe(id string) (string, bool) {
	e, ok := registry[id]
	if !ok {
		return "", false
	}
	return e.Desc, true
}

// Run executes one experiment by id at the given scale.
func Run(id string, sc Scale) (string, error) {
	e, ok := registry[id]
	if !ok {
		return "", fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
	return e.Run(sc), nil
}
