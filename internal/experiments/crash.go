package experiments

import (
	"fmt"
	"strings"
	"time"

	"cloudybench/internal/evaluator"
	"cloudybench/internal/report"
)

// Crash runs every SUT through the durability gauntlet: steady mixed traffic
// while the crash schedule kills the primary with a torn WAL tail, kills the
// replica (its volatile apply state dies and it resyncs from the primary's
// durable log), then kills the primary twice more — once clean, once torn
// again near the end of the window. Each kill's recovery is the real ARIES
// pass (analysis from the last fuzzy checkpoint, redo, undo, checksum-cut of
// the torn tail) priced into virtual time, so the recovery numbers are
// emergent from log volume, not scripted: full-redo architectures pay the
// whole redo window while log-is-the-database architectures pay analysis and
// undo only. The verdict judges the two contracts a crash must not break —
// every acknowledged commit survives, and no unacknowledged write
// resurrects. Deterministic: the same scale and seed reproduce the report
// byte for byte.
func Crash(sc Scale) (string, []evaluator.CrashResult) {
	results := runCells(len(SUTs), func(i int) evaluator.CrashResult {
		return evaluator.RunCrash(evaluator.CrashConfig{
			Kind: SUTs[i], Span: sc.CrashSpan, Concurrency: sc.CrashConc, Seed: sc.Seed,
		})
	})
	tbl := report.NewTable("Crash gauntlet — WAL redo/undo, torn tails, durability verdicts",
		"System", "Verdict", "Commits", "Term", "Reroute", "Fenced", "Epoch", "Kills", "Torn", "Redo", "Undo")
	var detail strings.Builder
	for _, r := range results {
		verdict := "PASS"
		if !r.Passed() {
			verdict = "FAIL"
		}
		// A kill landing while the node is still mid-recovery is recorded as
		// a skipped no-op (zero stats); the table counts only real crashes.
		fired, torn, redo, undo := 0, 0, 0, 0
		for _, c := range r.Crashes {
			if c.Stats.Records == 0 && c.Err == "" {
				continue
			}
			fired++
			if c.Stats.TornDetected {
				torn++
			}
			redo += c.Stats.RedoSince
			undo += c.Stats.UndoRecords
		}
		tbl.AddRow(string(r.Kind), verdict,
			fmt.Sprintf("%d", r.Commits),
			fmt.Sprintf("%d", r.Terminals),
			fmt.Sprintf("%d", r.Reroutes),
			fmt.Sprintf("%d", r.Fenced),
			fmt.Sprintf("%d", r.Epoch),
			fmt.Sprintf("%d", fired),
			fmt.Sprintf("%d", torn),
			fmt.Sprintf("%d", redo),
			fmt.Sprintf("%d", undo))

		fmt.Fprintf(&detail, "\n%s invariants:\n", r.Kind)
		for _, v := range r.Verdicts {
			fmt.Fprintf(&detail, "  %-18s %s\n", v.Name, v)
		}
		fmt.Fprintf(&detail, "%s kills:\n", r.Kind)
		for _, c := range r.Crashes {
			switch {
			case c.Err != "":
				fmt.Fprintf(&detail, "  %10v  %-4s recovery failed: %s\n", c.At, c.Target, c.Err)
			case c.Stats.Records == 0:
				fmt.Fprintf(&detail, "  %10v  %-4s skipped (still recovering from the previous kill)\n",
					c.At, c.Target)
			default:
				tornNote := ""
				if c.Stats.TornDetected {
					tornNote = " torn-tail cut"
				}
				fmt.Fprintf(&detail, "  %10v  %-4s log=%d ckpt=%d redo=%d undo=%d losers=%d%s\n",
					c.At, c.Target, c.Stats.Records, c.Stats.CheckpointLSN,
					c.Stats.RedoSince, c.Stats.UndoRecords, c.Stats.Losers, tornNote)
			}
		}
		for _, ev := range r.Timeline {
			if strings.Contains(ev.Phase, "crash") || strings.Contains(ev.Phase, "service restored") ||
				strings.Contains(ev.Phase, "RW'") {
				fmt.Fprintf(&detail, "  %10v  %s\n", ev.At, ev.Phase)
			}
		}
	}

	var b strings.Builder
	b.WriteString(tbl.String())
	b.WriteString(detail.String())
	frac := func(f float64) time.Duration { return time.Duration(float64(sc.CrashSpan) * f) }
	fmt.Fprintf(&b, "\nCrash schedule (per run): kill rw@%v (torn tail), ro0@%v (resync), rw@%v, rw@%v (torn tail)\n",
		frac(0.25), frac(0.45), frac(0.65), frac(0.85))
	b.WriteString("Redo/Undo are records actually replayed/rolled back by recovery — the inputs recovery time is priced from\n")
	return b.String(), results
}
