package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"cloudybench/internal/evaluator"
	"cloudybench/internal/report"
)

// soakSheet digests one SUT's soak result into the renderer's neutral
// sheet form.
func soakSheet(r evaluator.SoakResult) report.SoakSheet {
	sh := report.SoakSheet{
		SUT: string(r.Kind), Days: r.Days, Window: r.Window,
		Agg:     r.Agg,
		Commits: r.Commits, Errors: r.Errors, Terminals: r.Terminals,
		TotalCost: r.TotalCost,
	}
	for _, w := range r.Windows {
		sh.Windows = append(sh.Windows, report.SoakWindowRow{
			Index: w.Index, Start: w.Start, End: w.End,
			Txns: w.Txns, Commits: w.Commits, Errors: w.Errors,
			P50: w.P50, P99: w.P99, Throughput: w.Throughput,
			Cost: w.Cost, CostPer1kTxn: w.CostPer1kTxn,
		})
	}
	for _, s := range r.Sweeps {
		detail := make([]string, len(s.Verdicts))
		for i, v := range s.Verdicts {
			status := "PASS"
			if !v.Passed {
				status = "FAIL"
			}
			detail[i] = v.Name + "=" + status
		}
		sh.Sweeps = append(sh.Sweeps, report.SoakSweepRow{
			At: s.At, Window: s.Window, Detail: strings.Join(detail, " "), Pass: s.Passed(),
		})
	}
	for _, a := range r.Anomalies {
		sh.Anomalies = append(sh.Anomalies, report.SoakAnomalyRow{
			At: a.At, Window: a.Window, Kind: a.Kind, Detail: a.Detail,
		})
	}
	for _, c := range r.Applied {
		sh.Chaos = append(sh.Chaos, report.SoakChaosRow{
			At: c.At, Kind: string(c.Kind), Target: c.Target,
		})
	}
	for _, v := range r.Verdicts {
		sh.Verdicts = append(sh.Verdicts, report.SoakVerdictRow{
			Name: v.Name, Passed: v.Passed, Checked: v.Checked,
		})
	}
	return sh
}

// Soak runs the multi-day longitudinal soak on every SUT — duty-cycled
// bursts per timeline window, the rolling chaos schedule, tenant churn, and
// in-flight invariant sweeps — then renders the comparison artifact. The
// returned string is the Markdown document; with sc.ArtifactDir set, the
// same content lands in soak.md next to the flat soak.csv, so one command
// produces the whole comparison bundle.
func Soak(sc Scale) (string, []evaluator.SoakResult) {
	results := runCells(len(SUTs), func(i int) evaluator.SoakResult {
		return evaluator.RunSoak(evaluator.SoakConfig{
			Kind: SUTs[i], SF: 1,
			Days: sc.SoakDays, Window: sc.SoakWindow, Burst: sc.SoakBurst,
			Concurrency: sc.SoakConc, SweepEvery: sc.SoakSweepEvery,
			Seed: sc.Seed,
		})
	})
	sheets := make([]report.SoakSheet, len(results))
	for i, r := range results {
		sheets[i] = soakSheet(r)
	}
	days, window := sc.SoakDays, sc.SoakWindow
	if len(results) > 0 {
		days, window = results[0].Days, results[0].Window
	}
	title := fmt.Sprintf("CloudyBench soak — %d virtual days, %v windows, scale %s",
		days, window, sc.Name)
	md := report.SoakMarkdown(title, sheets)

	if sc.ArtifactDir != "" {
		if err := os.MkdirAll(sc.ArtifactDir, 0o755); err != nil {
			return fmt.Sprintf("soak: creating %s: %v\n", sc.ArtifactDir, err), results
		}
		for _, f := range []struct{ name, content string }{
			{"soak.csv", report.SoakCSV(sheets)},
			{"soak.md", md},
		} {
			path := filepath.Join(sc.ArtifactDir, f.name)
			if err := os.WriteFile(path, []byte(f.content), 0o644); err != nil {
				return fmt.Sprintf("soak: writing %s: %v\n", path, err), results
			}
		}
		md += fmt.Sprintf("\nWrote soak.csv and soak.md to %s\n", sc.ArtifactDir)
	}
	return md, results
}
