package experiments

import (
	"fmt"
	"strings"
	"time"

	"cloudybench/internal/cdb"
	"cloudybench/internal/core"
	"cloudybench/internal/engine"
	"cloudybench/internal/evaluator"
	"cloudybench/internal/report"
	"cloudybench/internal/sim"
)

// suiteCell is one (suite, SUT, gauntlet) combination of the scenario-suite
// experiment grid.
type suiteCell struct {
	suite     string
	kind      cdb.Kind
	chaos     bool
	partition bool
}

// suiteGrid enumerates the experiment's cells in rendering order: every
// registered suite on every SUT plain, then every suite under the chaos
// gauntlet (CDB1), then every suite under the partition gauntlet (CDB4).
func suiteGrid() []suiteCell {
	var cells []suiteCell
	for _, suite := range core.SuiteNames() {
		for _, kind := range SUTs {
			cells = append(cells, suiteCell{suite: suite, kind: kind})
		}
	}
	for _, suite := range core.SuiteNames() {
		cells = append(cells, suiteCell{suite: suite, kind: cdb.CDB1, chaos: true})
	}
	for _, suite := range core.SuiteNames() {
		cells = append(cells, suiteCell{suite: suite, kind: cdb.CDB4, partition: true})
	}
	return cells
}

// Suites runs every registered workload suite (indexed range scans,
// append-heavy time-series, large-object read/write) on every SUT, then
// re-runs each suite composed with the chaos and partition gauntlets —
// the registry's pitch is that a workload family is defined once and
// composes with every evaluation mode. The report shows per-suite
// throughput, the planner's index/full-scan split, index WAL traffic, and
// the invariant verdicts (IndexCoherent on every node), plus a selectivity
// sweep demonstrating the planner's cliff at the index-scan fraction
// threshold. Deterministic: the same scale and seed reproduce the report
// byte for byte.
func Suites(sc Scale) (string, []evaluator.SuiteResult) {
	cells := suiteGrid()
	results := runCells(len(cells), func(i int) evaluator.SuiteResult {
		c := cells[i]
		return evaluator.RunSuite(evaluator.SuiteConfig{
			Suite: c.suite, Kind: c.kind,
			Span: sc.SuiteSpan, Concurrency: sc.SuiteConc, Seed: sc.Seed,
			Chaos: c.chaos, Partition: c.partition,
		})
	})

	var b strings.Builder
	tbl := report.NewTable("Scenario suites — registered workload families on every SUT",
		"Suite", "System", "Verdict", "Commits", "Errors", "TPS", "IdxScan", "FullScan", "IxPut", "IxDel")
	var detail strings.Builder
	for i, r := range results {
		if cells[i].chaos || cells[i].partition {
			continue
		}
		tbl.AddRow(r.Suite, string(r.Kind), passFail(r.Passed()),
			fmt.Sprintf("%d", r.Commits),
			fmt.Sprintf("%d", r.Errors),
			report.F(r.TPS),
			fmt.Sprintf("%d", r.IndexScans),
			fmt.Sprintf("%d", r.FullScans),
			fmt.Sprintf("%d", r.IndexWALPuts),
			fmt.Sprintf("%d", r.IndexWALDels))
		if r.Kind == cdb.CDB1 {
			fmt.Fprintf(&detail, "\n%s op mix (cdb1):", r.Suite)
			for _, oc := range r.Ops {
				fmt.Fprintf(&detail, " %s=%d", oc.Op, oc.N)
			}
			detail.WriteString("\n")
			for _, v := range r.Verdicts {
				fmt.Fprintf(&detail, "  %-22s %s\n", v.Name, v)
			}
		}
	}
	b.WriteString(tbl.String())
	b.WriteString(detail.String())

	b.WriteString("\n")
	b.WriteString(selectivitySweep(sc.Seed))

	gnt := report.NewTable("Suite x gauntlet composition — same suites under chaos (cdb1) and a gray partition (cdb4)",
		"Suite", "Gauntlet", "Verdict", "Commits", "Faults", "Fenced", "Epoch", "IxPut", "IxDel")
	for i, r := range results {
		c := cells[i]
		if !c.chaos && !c.partition {
			continue
		}
		mode := "chaos"
		if c.partition {
			mode = "partition"
		}
		gnt.AddRow(r.Suite, mode, passFail(r.Passed()),
			fmt.Sprintf("%d", r.Commits),
			fmt.Sprintf("%d", len(r.Applied)),
			fmt.Sprintf("%d", r.Fenced),
			fmt.Sprintf("%d", r.Epoch),
			fmt.Sprintf("%d", r.IndexWALPuts),
			fmt.Sprintf("%d", r.IndexWALDels))
	}
	b.WriteString(gnt.String())
	b.WriteString("Index maintenance flows through the WAL (IxPut/IxDel), so fenced writes refuse index\n")
	b.WriteString("records with their data and IndexCoherent holds on every node after fail-over.\n")
	return b.String(), results
}

func passFail(ok bool) string {
	if ok {
		return "PASS"
	}
	return "FAIL"
}

// selectivitySweep renders the planner's cliff: the idx-range suite's table
// is queried with progressively wider group ranges (domain: 100 groups) and
// the planner switches from index scan to full scan once the estimated
// selected fraction exceeds engine.IndexScanMaxFraction. Page counts show
// why — past the cliff the index's page touches approach the sequential
// scan's, without its locality.
func selectivitySweep(seed int64) string {
	s := sim.New(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	db := engine.NewDB(s)
	suite := core.SuiteByName(core.SuiteIdxRange)
	if err := suite.Tables(db, 1, seed); err != nil {
		panic("experiments: selectivity sweep schema: " + err.Error())
	}
	tbl := db.Table(core.TableIdxItems)
	group := tbl.Schema.ColIndex("II_GROUP")

	out := report.NewTable(
		fmt.Sprintf("Selectivity sweep — planner cliff at fraction %.2f (idx-range suite, sf 1)",
			engine.IndexScanMaxFraction),
		"Width", "Rows", "Frac", "Plan", "Pages", "ScanPages")
	oracle, err := tbl.SelectRange(group, engine.Int(0), engine.Int(0), 0, engine.PlanForceScan)
	if err != nil {
		panic("experiments: selectivity sweep: " + err.Error())
	}
	scanPages := len(oracle.Pages)
	live := tbl.LiveRows()
	for _, width := range []int64{1, 2, 5, 10, 25, 50, 100} {
		res, err := tbl.SelectRange(group, engine.Int(0), engine.Int(width-1), 0, engine.PlanAuto)
		if err != nil {
			panic("experiments: selectivity sweep: " + err.Error())
		}
		out.AddRow(
			fmt.Sprintf("%d", width),
			fmt.Sprintf("%d", len(res.Rows)),
			fmt.Sprintf("%.2f", float64(len(res.Rows))/float64(live)),
			res.Plan.String(),
			fmt.Sprintf("%d", len(res.Pages)),
			fmt.Sprintf("%d", scanPages))
	}
	return out.String()
}
