package core

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"cloudybench/internal/engine"
	"cloudybench/internal/node"
	"cloudybench/internal/obs"
	"cloudybench/internal/rng"
	"cloudybench/internal/sim"
)

// Mix is a transaction weighting. The paper's configurations express
// (t1:t2:t3) ratios for throughput experiments and (I,U,D) ratios — mapped
// to (T1, T2, T4) — for lag-time experiments.
type Mix struct {
	T1, T2, T3, T4 float64
}

// ParseMix parses a "t1:t2:t3" ratio string such as "15:5:80".
func ParseMix(s string) (Mix, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return Mix{}, fmt.Errorf("core: mix %q must have three parts t1:t2:t3", s)
	}
	var vals [3]float64
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil || v < 0 {
			return Mix{}, fmt.Errorf("core: bad mix component %q", p)
		}
		vals[i] = v
	}
	m := Mix{T1: vals[0], T2: vals[1], T3: vals[2]}
	if m.T1+m.T2+m.T3 == 0 {
		return Mix{}, fmt.Errorf("core: mix %q is all zero", s)
	}
	return m, nil
}

// Canonical paper mixes (§III-A): (t1:t2:t3) in {(0:0:100), (15:5:80), (100:0:0)}.
var (
	MixReadOnly  = Mix{T3: 100}
	MixReadWrite = Mix{T1: 15, T2: 5, T3: 80}
	MixWriteOnly = Mix{T1: 100}
)

// IUDMix builds the lag-time evaluation mix from insert/update/delete
// percentages (paper §III-F), mapping I->T1, U->T2, D->T4.
func IUDMix(i, u, d float64) Mix { return Mix{T1: i, T2: u, T4: d} }

func (m Mix) weights() []float64 { return []float64{m.T1, m.T2, m.T3, m.T4} }

// IsReadOnly reports whether the mix performs no writes.
func (m Mix) IsReadOnly() bool { return m.T1 == 0 && m.T2 == 0 && m.T4 == 0 }

// String renders the mix as "t1:t2:t3(:t4)".
func (m Mix) String() string {
	if m.T4 == 0 {
		return fmt.Sprintf("%g:%g:%g", m.T1, m.T2, m.T3)
	}
	return fmt.Sprintf("%g:%g:%g:%g", m.T1, m.T2, m.T3, m.T4)
}

// Config parameterizes a workload runner.
type Config struct {
	Name string
	Seed int64
	Mix  Mix
	// Distribution is "uniform" or "latest" (paper §II-B); LatestK bounds
	// the access range for the latest distribution (default 10).
	Distribution string
	LatestK      int64
	// Write returns the node for read-write transactions (the current RW —
	// a function so fail-over promotion redirects traffic).
	Write func() *node.Node
	// Read returns the node for read-only transactions (round-robin RO).
	Read func() *node.Node
	// ReadCandidates, if set, lists every node reads may fall back to when
	// the primary pick is unusable (down breaker, unreachable) —
	// reroute-on-open. Nil disables rerouting.
	ReadCandidates func() []*node.Node
	// Reachable, if set, answers whether the client currently reaches a
	// node (wired to netsim.Net partitions). Nil means always reachable.
	Reachable func(*node.Node) bool
	// Collector receives commits/errors; required.
	Collector *Collector
	// RetryBackoff is the base client backoff after a failed request; kept
	// for compatibility, it seeds Retry.BackoffBase. Default 100 ms.
	RetryBackoff time.Duration
	// Retry tunes the resilient client (backoff, attempt budget, breaker);
	// zero fields take defaults (see RetryPolicy).
	Retry RetryPolicy
	// Tracer, if non-nil, opens a trace per transaction and records retry
	// backoffs, breaker-open windows, and reroutes. Nil disables tracing.
	Tracer *obs.Tracer
	// Ops, if non-empty, replaces the Table II mix with a suite's weighted
	// operation set (see RegisterSuite); commits are then recorded per op
	// name. Routing, retries, breakers, and rerouting behave exactly as for
	// the mix, with op.ReadOnly playing T3's role.
	Ops []SuiteOp
	// ScanOverride, if set, intercepts OpCtx.ScanRead for every suite op —
	// the differential harness's dual-plan hook. Nil scans normally.
	ScanOverride ScanFunc
}

// Runner drives a workload at a runtime-variable concurrency: the
// elasticity and multi-tenancy evaluators reshape traffic by calling
// SetConcurrency at slot boundaries.
type Runner struct {
	s     *sim.Sim
	cfg   Config
	pol   RetryPolicy
	group *sim.Group

	target     int
	spawned    int
	stopped    bool
	activeCond *sim.Cond

	// breakers holds the shared per-node circuit breakers (lookup-only map,
	// keyed by node pointer — never ranged).
	breakers     map[*node.Node]*Breaker
	reroutes     int64
	breakerOpens int64

	// opWeights caches the suite ops' weight vector (suite mode only).
	opWeights []float64
}

// NewRunner creates a stopped runner; call SetConcurrency to start traffic.
func NewRunner(s *sim.Sim, cfg Config) *Runner {
	if cfg.Collector == nil {
		panic("core: Runner requires a Collector")
	}
	if cfg.Distribution == "" {
		cfg.Distribution = "uniform"
	}
	if cfg.LatestK <= 0 {
		cfg.LatestK = 10
	}
	r := &Runner{
		s:          s,
		cfg:        cfg,
		pol:        cfg.Retry.withDefaults(cfg.RetryBackoff),
		group:      sim.NewGroup(s),
		activeCond: sim.NewCond(s),
		breakers:   make(map[*node.Node]*Breaker),
	}
	for _, op := range cfg.Ops {
		r.opWeights = append(r.opWeights, op.Weight)
	}
	return r
}

// SetConcurrency reshapes the worker pool to n. Increases spawn fresh
// workers immediately; decreases take effect as surplus workers finish
// their current transaction.
func (r *Runner) SetConcurrency(n int) {
	if n < 0 {
		n = 0
	}
	r.target = n
	for r.spawned < n {
		idx := r.spawned
		r.spawned++
		w := &worker{
			r:    r,
			idx:  idx,
			src:  rng.ChildOf(r.cfg.Seed, fmt.Sprintf("%s/w%d", r.cfg.Name, idx)),
			boff: rng.ChildOf(r.cfg.Seed, fmt.Sprintf("%s/w%d/backoff", r.cfg.Name, idx)),
		}
		w.dist = r.makeDist(w.src)
		r.group.Go(fmt.Sprintf("%s/w%d", r.cfg.Name, idx), w.run)
	}
}

func (r *Runner) makeDist(src *rng.Source) rng.Dist {
	switch r.cfg.Distribution {
	case "latest":
		return &rng.Latest{Src: src, K: r.cfg.LatestK}
	case "zipf":
		return &rng.Zipf{Src: src, Theta: 1.1}
	default:
		return &rng.Uniform{Src: src}
	}
}

// Concurrency returns the current target concurrency.
func (r *Runner) Concurrency() int { return r.target }

// Stop terminates all workers (after their current transaction).
func (r *Runner) Stop() {
	r.stopped = true
	r.target = 0
}

// Wait blocks until every spawned worker has exited.
func (r *Runner) Wait(p *sim.Proc) { r.group.Wait(p) }

type worker struct {
	r    *Runner
	idx  int
	src  *rng.Source
	boff *rng.Source // dedicated jitter stream: retries don't perturb the txn stream
	dist rng.Dist
}

func (w *worker) run(p *sim.Proc) {
	cfg := &w.r.cfg
	weights := cfg.Mix.weights()
	tr := cfg.Tracer
	pol := w.r.pol
	for {
		if w.r.stopped || w.idx >= w.r.target {
			return
		}
		// Suite mode swaps the Table II mix for the suite's weighted op set;
		// everything downstream (routing, retries, breakers) is shared.
		var typ TxnType
		var op *SuiteOp
		label := ""
		if len(cfg.Ops) > 0 {
			op = &cfg.Ops[w.src.PickWeighted(w.r.opWeights)]
			label = op.Name
		} else {
			typ = TxnType(w.src.PickWeighted(weights) + 1)
			label = typ.String()
		}
		start := p.Elapsed()
		if tr != nil {
			tr.StartTxn(p, label, start)
		}
		// Bounded retry loop: transient failures back off (capped
		// exponential + deterministic jitter) and retry until the per-txn
		// attempt budget is spent, then the txn is abandoned as terminal —
		// a worker pinned to a permanently dead node keeps measuring
		// instead of spinning.
		var err error
		for attempt := 0; ; attempt++ {
			err = w.executeOnce(p, typ, op)
			if err == nil || !isTransient(err) {
				break
			}
			cfg.Collector.RecordError(p.Elapsed())
			if attempt+1 >= pol.MaxAttempts {
				err = fmt.Errorf("%w after %d attempts: %w", ErrRetriesExhausted, pol.MaxAttempts, err)
				break
			}
			w.backoff(p, attempt)
			if w.r.stopped {
				break
			}
		}
		switch {
		case err == nil:
			end := p.Elapsed()
			tr.FinishTxn(p, "commit", end)
			if op != nil {
				cfg.Collector.RecordCommitOp(op.Name, end, end-start)
			} else {
				cfg.Collector.RecordCommit(typ, end, end-start)
			}
		case errors.Is(err, ErrRetriesExhausted):
			cfg.Collector.RecordTerminal(p.Elapsed())
			tr.FinishTxn(p, "error", p.Elapsed())
		case isTransient(err):
			// Stopped mid-retry: the error was already recorded above.
			tr.FinishTxn(p, "error", p.Elapsed())
		default:
			cfg.Collector.RecordError(p.Elapsed())
			tr.FinishTxn(p, "error", p.Elapsed())
		}
	}
}

// backoff sleeps the capped exponential backoff for the given attempt with
// deterministic jitter in [1/2, 1) of the nominal value, recorded as a
// fault-retry span when tracing.
func (w *worker) backoff(p *sim.Proc, attempt int) {
	d := w.r.pol.backoffFor(attempt)
	d = d/2 + time.Duration(w.boff.Float64()*float64(d/2))
	tr := w.r.cfg.Tracer
	if tr == nil {
		p.Sleep(d)
		return
	}
	t0 := p.Elapsed()
	p.Sleep(d)
	tr.Record(p, obs.KindFaultRetry, t0, p.Elapsed())
}

// pickNode gates a node through client-side health checks: reachability
// (partition between client and node) and the node's shared circuit
// breaker. A breaker transitioning open → half-open records the completed
// breaker-open window as a background span.
func (w *worker) pickNode(p *sim.Proc, n *node.Node) (*Breaker, error) {
	if f := w.r.cfg.Reachable; f != nil && !f(n) {
		return nil, ErrUnreachable
	}
	b := w.r.breaker(n)
	ok, openEnded := b.Allow(p.Elapsed())
	if openEnded {
		if tr := w.r.cfg.Tracer; tr != nil {
			tr.RecordBG("breaker", obs.KindBreakerOpen, n.Name, b.OpenedAt(), p.Elapsed())
		}
	}
	if !ok {
		return nil, ErrBreakerOpen
	}
	return b, nil
}

// executeOnce runs a single attempt of one transaction or suite op,
// reporting the outcome to the node's breaker. Reads reroute to a healthy
// candidate when the primary pick is unusable; writes cannot reroute (only
// the RW holds the lease) and fail fast instead.
func (w *worker) executeOnce(p *sim.Proc, typ TxnType, op *SuiteOp) error {
	readOnly := typ == T3OrderStatus
	if op != nil {
		readOnly = op.ReadOnly
	}
	n, rerouted, err := w.routeNode(p, readOnly)
	if err != nil {
		return err
	}
	b := w.r.breaker(n)
	t0 := p.Elapsed()
	if op != nil {
		err = op.Run(&OpCtx{P: p, Node: n, Src: w.src, Dist: w.dist, scan: w.r.cfg.ScanOverride})
	} else {
		err = w.execute(p, typ, n)
	}
	if err != nil && isTransient(err) {
		if b.OnFailure(p.Elapsed()) {
			w.r.breakerOpens++
		}
	} else {
		b.OnSuccess()
	}
	if rerouted {
		w.r.reroutes++
		if tr := w.r.cfg.Tracer; tr != nil {
			tr.Record(p, obs.KindReroute, t0, p.Elapsed())
		}
	}
	return err
}

// routeNode picks the node for one attempt. The primary pick comes from
// the configured Write/Read hooks; an unusable read pick falls back to the
// first healthy candidate (reroute-on-open).
func (w *worker) routeNode(p *sim.Proc, readOnly bool) (*node.Node, bool, error) {
	if !readOnly {
		n := w.r.cfg.Write()
		_, err := w.pickNode(p, n)
		return n, false, err
	}
	n := w.r.cfg.Read()
	_, err := w.pickNode(p, n)
	if err == nil {
		return n, false, nil
	}
	if w.r.cfg.ReadCandidates == nil {
		return nil, false, err
	}
	for _, c := range w.r.cfg.ReadCandidates() {
		if c == n {
			continue
		}
		if _, cerr := w.pickNode(p, c); cerr == nil {
			return c, true, nil
		}
	}
	return nil, false, err
}

// execute runs one transaction of the given type on the given node. A nil
// error means the transaction committed.
func (w *worker) execute(p *sim.Proc, typ TxnType, n *node.Node) error {
	switch typ {
	case T1NewOrderline:
		return w.t1NewOrderline(p, n)
	case T2OrderPayment:
		return w.t2OrderPayment(p, n)
	case T3OrderStatus:
		return w.t3OrderStatus(p, n)
	case T4OrderlineDeletion:
		return w.t4OrderlineDeletion(p, n)
	}
	return fmt.Errorf("core: unknown transaction %d", typ)
}

// t1NewOrderline: INSERT INTO orderline VALUES (DEFAULT, ?,?,?,?).
func (w *worker) t1NewOrderline(p *sim.Proc, n *node.Node) error {
	tx, err := n.Begin(p)
	if err != nil {
		return err
	}
	orders := n.DB.Table(TableOrders)
	ol := n.DB.Table(TableOrderline)
	oid := w.dist.Next(orders.MaxID())
	row := engine.Row{
		engine.Int(ol.NextAutoID()),
		engine.Int(oid),
		engine.Str("sku-" + w.src.Letters(6)),
		engine.Int(w.src.IntRange(1, 9)),
		engine.Float(float64(w.src.IntRange(100, 99_99)) / 100),
	}
	if err := tx.Insert(ol, row); err != nil {
		tx.Abort()
		return err
	}
	return tx.Commit()
}

// t2OrderPayment: select the order, mark it paid, credit the customer.
func (w *worker) t2OrderPayment(p *sim.Proc, n *node.Node) error {
	tx, err := n.Begin(p)
	if err != nil {
		return err
	}
	orders := n.DB.Table(TableOrders)
	customers := n.DB.Table(TableCustomer)
	oid := w.dist.Next(orders.MaxID())
	now := engine.Int(p.Now().UnixMicro())

	row, err := tx.GetForUpdate(orders, engine.IntKey(oid))
	if errors.Is(err, engine.ErrRowNotFound) {
		return tx.Commit() // order vanished: empty but successful payment check
	}
	if err != nil {
		tx.Abort()
		return err
	}
	upd := row.Clone()
	upd[4] = engine.Str(StatusPaid)
	upd[5] = now
	if err := tx.Update(orders, engine.IntKey(oid), upd); err != nil {
		tx.Abort()
		return err
	}
	cid := row[1].I
	crow, err := tx.GetForUpdate(customers, engine.IntKey(cid))
	if err != nil {
		tx.Abort()
		return err
	}
	cupd := crow.Clone()
	cupd[2] = engine.Float(crow[2].F + row[2].F)
	cupd[3] = now
	if err := tx.Update(customers, engine.IntKey(cid), cupd); err != nil {
		tx.Abort()
		return err
	}
	return tx.Commit()
}

// t3OrderStatus: SELECT O_ID, O_DATE, O_STATUS FROM orders WHERE O_ID = ?,
// served by a read-only node.
func (w *worker) t3OrderStatus(p *sim.Proc, n *node.Node) error {
	orders := n.DB.Table(TableOrders)
	oid := w.dist.Next(orders.MaxID())
	_, _, err := n.Read(p, TableOrders, engine.IntKey(oid))
	return err
}

// t4OrderlineDeletion: DELETE FROM orderline WHERE OL_ID = ?.
func (w *worker) t4OrderlineDeletion(p *sim.Proc, n *node.Node) error {
	tx, err := n.Begin(p)
	if err != nil {
		return err
	}
	ol := n.DB.Table(TableOrderline)
	olid := w.dist.Next(ol.MaxID())
	if err := tx.Delete(ol, engine.IntKey(olid)); err != nil && !errors.Is(err, engine.ErrRowNotFound) {
		tx.Abort()
		return err
	}
	return tx.Commit()
}
