package core

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"cloudybench/internal/engine"
	"cloudybench/internal/node"
	"cloudybench/internal/obs"
	"cloudybench/internal/rng"
	"cloudybench/internal/sim"
)

// Mix is a transaction weighting. The paper's configurations express
// (t1:t2:t3) ratios for throughput experiments and (I,U,D) ratios — mapped
// to (T1, T2, T4) — for lag-time experiments.
type Mix struct {
	T1, T2, T3, T4 float64
}

// ParseMix parses a "t1:t2:t3" ratio string such as "15:5:80".
func ParseMix(s string) (Mix, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return Mix{}, fmt.Errorf("core: mix %q must have three parts t1:t2:t3", s)
	}
	var vals [3]float64
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil || v < 0 {
			return Mix{}, fmt.Errorf("core: bad mix component %q", p)
		}
		vals[i] = v
	}
	m := Mix{T1: vals[0], T2: vals[1], T3: vals[2]}
	if m.T1+m.T2+m.T3 == 0 {
		return Mix{}, fmt.Errorf("core: mix %q is all zero", s)
	}
	return m, nil
}

// Canonical paper mixes (§III-A): (t1:t2:t3) in {(0:0:100), (15:5:80), (100:0:0)}.
var (
	MixReadOnly  = Mix{T3: 100}
	MixReadWrite = Mix{T1: 15, T2: 5, T3: 80}
	MixWriteOnly = Mix{T1: 100}
)

// IUDMix builds the lag-time evaluation mix from insert/update/delete
// percentages (paper §III-F), mapping I->T1, U->T2, D->T4.
func IUDMix(i, u, d float64) Mix { return Mix{T1: i, T2: u, T4: d} }

func (m Mix) weights() []float64 { return []float64{m.T1, m.T2, m.T3, m.T4} }

// IsReadOnly reports whether the mix performs no writes.
func (m Mix) IsReadOnly() bool { return m.T1 == 0 && m.T2 == 0 && m.T4 == 0 }

// String renders the mix as "t1:t2:t3(:t4)".
func (m Mix) String() string {
	if m.T4 == 0 {
		return fmt.Sprintf("%g:%g:%g", m.T1, m.T2, m.T3)
	}
	return fmt.Sprintf("%g:%g:%g:%g", m.T1, m.T2, m.T3, m.T4)
}

// Config parameterizes a workload runner.
type Config struct {
	Name string
	Seed int64
	Mix  Mix
	// Distribution is "uniform" or "latest" (paper §II-B); LatestK bounds
	// the access range for the latest distribution (default 10).
	Distribution string
	LatestK      int64
	// Write returns the node for read-write transactions (the current RW —
	// a function so fail-over promotion redirects traffic).
	Write func() *node.Node
	// Read returns the node for read-only transactions (round-robin RO).
	Read func() *node.Node
	// Collector receives commits/errors; required.
	Collector *Collector
	// RetryBackoff is the client pause after a failed request (node down),
	// matching a driver's reconnect loop. Default 100 ms.
	RetryBackoff time.Duration
	// Tracer, if non-nil, opens a trace per transaction attempt and records
	// the retry backoff as a fault-retry span. Nil disables tracing.
	Tracer *obs.Tracer
}

// Runner drives a workload at a runtime-variable concurrency: the
// elasticity and multi-tenancy evaluators reshape traffic by calling
// SetConcurrency at slot boundaries.
type Runner struct {
	s     *sim.Sim
	cfg   Config
	group *sim.Group

	target     int
	spawned    int
	stopped    bool
	activeCond *sim.Cond
}

// NewRunner creates a stopped runner; call SetConcurrency to start traffic.
func NewRunner(s *sim.Sim, cfg Config) *Runner {
	if cfg.Collector == nil {
		panic("core: Runner requires a Collector")
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 100 * time.Millisecond
	}
	if cfg.Distribution == "" {
		cfg.Distribution = "uniform"
	}
	if cfg.LatestK <= 0 {
		cfg.LatestK = 10
	}
	return &Runner{s: s, cfg: cfg, group: sim.NewGroup(s), activeCond: sim.NewCond(s)}
}

// SetConcurrency reshapes the worker pool to n. Increases spawn fresh
// workers immediately; decreases take effect as surplus workers finish
// their current transaction.
func (r *Runner) SetConcurrency(n int) {
	if n < 0 {
		n = 0
	}
	r.target = n
	for r.spawned < n {
		idx := r.spawned
		r.spawned++
		w := &worker{
			r:   r,
			idx: idx,
			src: rng.ChildOf(r.cfg.Seed, fmt.Sprintf("%s/w%d", r.cfg.Name, idx)),
		}
		w.dist = r.makeDist(w.src)
		r.group.Go(fmt.Sprintf("%s/w%d", r.cfg.Name, idx), w.run)
	}
}

func (r *Runner) makeDist(src *rng.Source) rng.Dist {
	switch r.cfg.Distribution {
	case "latest":
		return &rng.Latest{Src: src, K: r.cfg.LatestK}
	case "zipf":
		return &rng.Zipf{Src: src, Theta: 1.1}
	default:
		return &rng.Uniform{Src: src}
	}
}

// Concurrency returns the current target concurrency.
func (r *Runner) Concurrency() int { return r.target }

// Stop terminates all workers (after their current transaction).
func (r *Runner) Stop() {
	r.stopped = true
	r.target = 0
}

// Wait blocks until every spawned worker has exited.
func (r *Runner) Wait(p *sim.Proc) { r.group.Wait(p) }

type worker struct {
	r    *Runner
	idx  int
	src  *rng.Source
	dist rng.Dist
}

func (w *worker) run(p *sim.Proc) {
	cfg := &w.r.cfg
	weights := cfg.Mix.weights()
	tr := cfg.Tracer
	for {
		if w.r.stopped || w.idx >= w.r.target {
			return
		}
		typ := TxnType(w.src.PickWeighted(weights) + 1)
		start := p.Elapsed()
		if tr != nil {
			tr.StartTxn(p, typ.String(), start)
		}
		err := w.execute(p, typ)
		switch {
		case err == nil:
			end := p.Elapsed()
			tr.FinishTxn(p, "commit", end)
			cfg.Collector.RecordCommit(typ, end, end-start)
		case errors.Is(err, node.ErrNodeDown), errors.Is(err, node.ErrIOFault):
			cfg.Collector.RecordError(p.Elapsed())
			if tr == nil {
				p.Sleep(cfg.RetryBackoff)
			} else {
				// The backoff is client-observed retry penalty: keep the
				// trace open across it so the fault-retry span lands on the
				// failed attempt's breakdown.
				t0 := p.Elapsed()
				p.Sleep(cfg.RetryBackoff)
				tr.Record(p, obs.KindFaultRetry, t0, p.Elapsed())
				tr.FinishTxn(p, "error", p.Elapsed())
			}
		default:
			cfg.Collector.RecordError(p.Elapsed())
			tr.FinishTxn(p, "error", p.Elapsed())
		}
	}
}

// execute runs one transaction of the given type. A nil error means the
// transaction committed.
func (w *worker) execute(p *sim.Proc, typ TxnType) error {
	switch typ {
	case T1NewOrderline:
		return w.t1NewOrderline(p)
	case T2OrderPayment:
		return w.t2OrderPayment(p)
	case T3OrderStatus:
		return w.t3OrderStatus(p)
	case T4OrderlineDeletion:
		return w.t4OrderlineDeletion(p)
	}
	return fmt.Errorf("core: unknown transaction %d", typ)
}

// t1NewOrderline: INSERT INTO orderline VALUES (DEFAULT, ?,?,?,?).
func (w *worker) t1NewOrderline(p *sim.Proc) error {
	n := w.r.cfg.Write()
	tx, err := n.Begin(p)
	if err != nil {
		return err
	}
	orders := n.DB.Table(TableOrders)
	ol := n.DB.Table(TableOrderline)
	oid := w.dist.Next(orders.MaxID())
	row := engine.Row{
		engine.Int(ol.NextAutoID()),
		engine.Int(oid),
		engine.Str("sku-" + w.src.Letters(6)),
		engine.Int(w.src.IntRange(1, 9)),
		engine.Float(float64(w.src.IntRange(100, 99_99)) / 100),
	}
	if err := tx.Insert(ol, row); err != nil {
		tx.Abort()
		return err
	}
	return tx.Commit()
}

// t2OrderPayment: select the order, mark it paid, credit the customer.
func (w *worker) t2OrderPayment(p *sim.Proc) error {
	n := w.r.cfg.Write()
	tx, err := n.Begin(p)
	if err != nil {
		return err
	}
	orders := n.DB.Table(TableOrders)
	customers := n.DB.Table(TableCustomer)
	oid := w.dist.Next(orders.MaxID())
	now := engine.Int(p.Now().UnixMicro())

	row, err := tx.GetForUpdate(orders, engine.IntKey(oid))
	if errors.Is(err, engine.ErrRowNotFound) {
		return tx.Commit() // order vanished: empty but successful payment check
	}
	if err != nil {
		tx.Abort()
		return err
	}
	upd := row.Clone()
	upd[4] = engine.Str(StatusPaid)
	upd[5] = now
	if err := tx.Update(orders, engine.IntKey(oid), upd); err != nil {
		tx.Abort()
		return err
	}
	cid := row[1].I
	crow, err := tx.GetForUpdate(customers, engine.IntKey(cid))
	if err != nil {
		tx.Abort()
		return err
	}
	cupd := crow.Clone()
	cupd[2] = engine.Float(crow[2].F + row[2].F)
	cupd[3] = now
	if err := tx.Update(customers, engine.IntKey(cid), cupd); err != nil {
		tx.Abort()
		return err
	}
	return tx.Commit()
}

// t3OrderStatus: SELECT O_ID, O_DATE, O_STATUS FROM orders WHERE O_ID = ?,
// served by a read-only node.
func (w *worker) t3OrderStatus(p *sim.Proc) error {
	n := w.r.cfg.Read()
	orders := n.DB.Table(TableOrders)
	oid := w.dist.Next(orders.MaxID())
	_, _, err := n.Read(p, TableOrders, engine.IntKey(oid))
	return err
}

// t4OrderlineDeletion: DELETE FROM orderline WHERE OL_ID = ?.
func (w *worker) t4OrderlineDeletion(p *sim.Proc) error {
	n := w.r.cfg.Write()
	tx, err := n.Begin(p)
	if err != nil {
		return err
	}
	ol := n.DB.Table(TableOrderline)
	olid := w.dist.Next(ol.MaxID())
	if err := tx.Delete(ol, engine.IntKey(olid)); err != nil && !errors.Is(err, engine.ErrRowNotFound) {
		tx.Abort()
		return err
	}
	return tx.Commit()
}
