package core

import (
	"errors"

	"cloudybench/internal/engine"
)

// The three shipped suites. Each exercises secondary indexes differently:
// idx-range sweeps read selectivity, timeseries deletes through an index
// scan inside write transactions, lob stresses big-row I/O with an indexed
// listing.
const (
	SuiteIdxRange   = "idx-range"
	SuiteTimeseries = "timeseries"
	SuiteLob        = "lob"
)

// Suite table names.
const (
	TableIdxItems  = "idx_items"
	TableTsEvents  = "ts_events"
	TableLobObject = "lob_objects"
)

const (
	idxGroups = 100 // idx_items group domain: II_GROUP in [0, 99]
	tsPerBkt  = 50  // ts_events rows per time bucket
	lobBkts   = 16  // lob_objects bucket domain
)

// rangeWidths is the selectivity ladder the idx-range readers sweep:
// 1% point lookups up to 50% of the group domain, crossing the planner's
// index-vs-scan threshold in the middle.
var rangeWidths = []int64{1, 2, 5, 10, 25, 50}

func init() {
	RegisterSuite(&Suite{
		Name: SuiteIdxRange,
		Desc: "indexed range scans with a selectivity sweep over a grouped table",
		Tables: func(db *engine.DB, sf int, seed int64) error {
			schema := &engine.Schema{
				Name: TableIdxItems,
				Cols: []engine.Column{
					{Name: "II_ID", Kind: engine.KindInt},
					{Name: "II_GROUP", Kind: engine.KindInt},
					{Name: "II_SCORE", Kind: engine.KindFloat},
					{Name: "II_TAG", Kind: engine.KindString},
				},
				KeyCols:     []int{0},
				AvgRowBytes: 96,
			}
			_, err := db.CreateTable(schema, int64(sf)*2000, func(id int64) engine.Row {
				return engine.Row{
					engine.Int(id),
					engine.Int(id % idxGroups),
					engine.Float(float64(id%997) / 4),
					engine.Str("tag-base"),
				}
			})
			if err != nil {
				return err
			}
			_, err = db.CreateIndex(TableIdxItems, "ix_idx_items_group", "II_GROUP")
			return err
		},
		Ops: func(sf int) []SuiteOp {
			return []SuiteOp{
				{Name: "range-read", Weight: 70, ReadOnly: true, Run: opIdxRangeRead},
				{Name: "insert", Weight: 15, Run: opIdxInsert},
				{Name: "update", Weight: 10, Run: opIdxUpdate},
				{Name: "delete", Weight: 5, Run: opIdxDelete},
			}
		},
	})

	RegisterSuite(&Suite{
		Name: SuiteTimeseries,
		Desc: "append-heavy time-series with retention deletes through the bucket index",
		Tables: func(db *engine.DB, sf int, seed int64) error {
			schema := &engine.Schema{
				Name: TableTsEvents,
				Cols: []engine.Column{
					{Name: "TS_ID", Kind: engine.KindInt},
					{Name: "TS_BUCKET", Kind: engine.KindInt},
					{Name: "TS_VAL", Kind: engine.KindFloat},
					{Name: "TS_SRC", Kind: engine.KindString},
				},
				KeyCols:     []int{0},
				AvgRowBytes: 72,
			}
			_, err := db.CreateTable(schema, int64(sf)*2000, func(id int64) engine.Row {
				return engine.Row{
					engine.Int(id),
					engine.Int(id / tsPerBkt),
					engine.Float(float64(id%101) / 2),
					engine.Str("src-base"),
				}
			})
			if err != nil {
				return err
			}
			_, err = db.CreateIndex(TableTsEvents, "ix_ts_events_bucket", "TS_BUCKET")
			return err
		},
		Ops: func(sf int) []SuiteOp {
			return []SuiteOp{
				{Name: "append", Weight: 60, Run: opTsAppend},
				{Name: "recent-read", Weight: 25, ReadOnly: true, Run: opTsRecentRead},
				{Name: "retention", Weight: 15, Run: opTsRetention},
			}
		},
	})

	RegisterSuite(&Suite{
		Name: SuiteLob,
		Desc: "large-object read/write with an indexed bucket listing",
		Tables: func(db *engine.DB, sf int, seed int64) error {
			schema := &engine.Schema{
				Name: TableLobObject,
				Cols: []engine.Column{
					{Name: "LO_ID", Kind: engine.KindInt},
					{Name: "LO_BUCKET", Kind: engine.KindInt},
					{Name: "LO_DATA", Kind: engine.KindString},
				},
				KeyCols:     []int{0},
				AvgRowBytes: 16 * 1024,
			}
			_, err := db.CreateTable(schema, int64(sf)*200, func(id int64) engine.Row {
				return engine.Row{
					engine.Int(id),
					engine.Int(id % lobBkts),
					engine.Str("blob-base"),
				}
			})
			if err != nil {
				return err
			}
			_, err = db.CreateIndex(TableLobObject, "ix_lob_objects_bucket", "LO_BUCKET")
			return err
		},
		Ops: func(sf int) []SuiteOp {
			return []SuiteOp{
				{Name: "get", Weight: 60, ReadOnly: true, Run: opLobGet},
				{Name: "put", Weight: 25, Run: opLobPut},
				{Name: "list", Weight: 15, ReadOnly: true, Run: opLobList},
			}
		},
	})
}

// opIdxRangeRead sweeps the selectivity ladder: a random width from 1 to 50
// groups, so the same op stream exercises both sides of the planner's
// index-vs-scan threshold.
func opIdxRangeRead(c *OpCtx) error {
	width := rangeWidths[c.Src.PickWeighted([]float64{30, 20, 20, 15, 10, 5})]
	lo := c.Dist.Next(idxGroups) - 1
	hi := lo + width - 1
	_, err := c.ScanRead(TableIdxItems, 1, engine.Int(lo), engine.Int(hi), 0)
	return err
}

func opIdxInsert(c *OpCtx) error {
	tx, err := c.Node.Begin(c.P)
	if err != nil {
		return err
	}
	tbl := c.Node.DB.Table(TableIdxItems)
	id := tbl.NextAutoID()
	row := engine.Row{
		engine.Int(id),
		engine.Int(c.Src.IntRange(0, idxGroups-1)),
		engine.Float(float64(c.Src.IntRange(0, 999)) / 4),
		engine.Str("tag-" + c.Src.Letters(4)),
	}
	if err := tx.Insert(tbl, row); err != nil {
		tx.Abort()
		return err
	}
	return tx.Commit()
}

// opIdxUpdate moves a row to a new group, forcing a delete+put pair on the
// secondary index.
func opIdxUpdate(c *OpCtx) error {
	tx, err := c.Node.Begin(c.P)
	if err != nil {
		return err
	}
	tbl := c.Node.DB.Table(TableIdxItems)
	id := c.Dist.Next(tbl.MaxID())
	row := engine.Row{
		engine.Int(id),
		engine.Int(c.Src.IntRange(0, idxGroups-1)),
		engine.Float(float64(c.Src.IntRange(0, 999)) / 4),
		engine.Str("tag-upd"),
	}
	if err := tx.Update(tbl, engine.IntKey(id), row); err != nil && !errors.Is(err, engine.ErrRowNotFound) {
		tx.Abort()
		return err
	}
	return tx.Commit()
}

func opIdxDelete(c *OpCtx) error {
	tx, err := c.Node.Begin(c.P)
	if err != nil {
		return err
	}
	tbl := c.Node.DB.Table(TableIdxItems)
	id := c.Dist.Next(tbl.MaxID())
	if err := tx.Delete(tbl, engine.IntKey(id)); err != nil && !errors.Is(err, engine.ErrRowNotFound) {
		tx.Abort()
		return err
	}
	return tx.Commit()
}

func opTsAppend(c *OpCtx) error {
	tx, err := c.Node.Begin(c.P)
	if err != nil {
		return err
	}
	tbl := c.Node.DB.Table(TableTsEvents)
	id := tbl.NextAutoID()
	row := engine.Row{
		engine.Int(id),
		engine.Int(id / tsPerBkt),
		engine.Float(float64(c.Src.IntRange(0, 200)) / 2),
		engine.Str("src-" + c.Src.Letters(3)),
	}
	if err := tx.Insert(tbl, row); err != nil {
		tx.Abort()
		return err
	}
	return tx.Commit()
}

// opTsRecentRead scans the newest few time buckets through the index —
// the canonical time-series dashboard query.
func opTsRecentRead(c *OpCtx) error {
	tbl := c.Node.DB.Table(TableTsEvents)
	maxBkt := tbl.MaxID() / tsPerBkt
	lo := maxBkt - c.Src.IntRange(0, 3)
	if lo < 0 {
		lo = 0
	}
	_, err := c.ScanRead(TableTsEvents, 1, engine.Int(lo), engine.Int(maxBkt), 200)
	return err
}

// opTsRetention deletes a batch of rows older than the retention horizon,
// found through an index scan inside the write transaction — index reads
// and index maintenance in the same commit.
func opTsRetention(c *OpCtx) error {
	tx, err := c.Node.Begin(c.P)
	if err != nil {
		return err
	}
	tbl := c.Node.DB.Table(TableTsEvents)
	cutoff := tbl.MaxID()/tsPerBkt - 30
	if cutoff < 0 {
		return tx.Commit() // nothing old enough yet
	}
	rows, err := tx.ScanRange(tbl, 1, engine.Int(0), engine.Int(cutoff), 8, engine.PlanAuto)
	if err != nil {
		tx.Abort()
		return err
	}
	for _, row := range rows {
		if err := tx.Delete(tbl, engine.IntKey(row[0].I)); err != nil && !errors.Is(err, engine.ErrRowNotFound) {
			tx.Abort()
			return err
		}
	}
	return tx.Commit()
}

func opLobGet(c *OpCtx) error {
	tbl := c.Node.DB.Table(TableLobObject)
	id := c.Dist.Next(tbl.MaxID())
	_, _, err := c.Node.Read(c.P, TableLobObject, engine.IntKey(id))
	if errors.Is(err, engine.ErrRowNotFound) {
		return nil
	}
	return err
}

// opLobPut writes a large object: half the time a fresh insert, half an
// overwrite of an existing id (both pay the 16 KiB row cost).
func opLobPut(c *OpCtx) error {
	tx, err := c.Node.Begin(c.P)
	if err != nil {
		return err
	}
	tbl := c.Node.DB.Table(TableLobObject)
	payload := engine.Str("blob-" + c.Src.Letters(24))
	if c.Src.IntRange(0, 1) == 0 {
		id := tbl.NextAutoID()
		row := engine.Row{engine.Int(id), engine.Int(c.Src.IntRange(0, lobBkts-1)), payload}
		if err := tx.Insert(tbl, row); err != nil {
			tx.Abort()
			return err
		}
		return tx.Commit()
	}
	id := c.Dist.Next(tbl.MaxID())
	row := engine.Row{engine.Int(id), engine.Int(c.Src.IntRange(0, lobBkts-1)), payload}
	if err := tx.Update(tbl, engine.IntKey(id), row); err != nil && !errors.Is(err, engine.ErrRowNotFound) {
		tx.Abort()
		return err
	}
	return tx.Commit()
}

func opLobList(c *OpCtx) error {
	b := engine.Int(c.Src.IntRange(0, lobBkts-1))
	_, err := c.ScanRead(TableLobObject, 1, b, b, 20)
	return err
}
