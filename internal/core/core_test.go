package core

import (
	"testing"
	"time"

	"cloudybench/internal/engine"
	"cloudybench/internal/node"
	"cloudybench/internal/sim"
)

var epoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func TestDatasetScaling(t *testing.T) {
	d1 := NewDataset(1, 42)
	if d1.Customers != 300_000 || d1.Orders != 300_000 || d1.Orderlines != 3_000_000 {
		t.Fatalf("SF1 sizes: %+v", d1)
	}
	d10 := NewDataset(10, 42)
	if d10.Orderlines != 30_000_000 {
		t.Fatalf("SF10 orderlines = %d", d10.Orderlines)
	}
	if NewDataset(0, 1).SF != 1 {
		t.Fatal("SF floor")
	}
	// Raw size near the paper's 194 MB for SF1.
	gb := float64(d1.RawBytes()) / (1 << 30)
	if gb < 0.15 || gb > 0.25 {
		t.Fatalf("SF1 raw size = %.2f GB, want ~0.19", gb)
	}
}

func TestGeneratorsDeterministicAndKeyed(t *testing.T) {
	d := NewDataset(1, 42)
	cg, og, olg := d.CustomerGen(), d.OrdersGen(), d.OrderlineGen()
	for _, id := range []int64{1, 1000, 299_999} {
		a, b := cg(id), cg(id)
		if !a.Equal(b) {
			t.Fatalf("customer gen not deterministic for %d", id)
		}
		if a[0].I != id {
			t.Fatalf("customer PK mismatch: %v", a[0])
		}
	}
	o := og(5000)
	if o[0].I != 5000 || o[1].I < 1 || o[1].I > d.Customers {
		t.Fatalf("order row: %v", o)
	}
	if s := o[4].S; s != StatusNew && s != StatusPaid {
		t.Fatalf("order status %q", s)
	}
	// Orderline 47 belongs to order (47-1)/10+1 = 5.
	ol := olg(47)
	if ol[1].I != 5 {
		t.Fatalf("orderline 47 order ref = %d, want 5", ol[1].I)
	}
	// Different seeds produce different content.
	d2 := NewDataset(1, 43)
	if d2.CustomerGen()(7).Equal(cg(7)) {
		t.Fatal("different seeds produced identical rows")
	}
}

func TestCreateTables(t *testing.T) {
	s := sim.New(epoch)
	db := engine.NewDB(s)
	d := NewDataset(1, 42)
	if err := d.CreateTables(db); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{TableCustomer, TableOrders, TableOrderline} {
		if db.Table(name) == nil {
			t.Fatalf("missing table %s", name)
		}
	}
	if got := db.Table(TableOrders).BaseRows(); got != 300_000 {
		t.Fatalf("orders base rows = %d", got)
	}
	// Creating twice fails cleanly.
	if err := d.CreateTables(db); err == nil {
		t.Fatal("duplicate CreateTables succeeded")
	}
}

func TestParseMix(t *testing.T) {
	m, err := ParseMix("15:5:80")
	if err != nil || m.T1 != 15 || m.T2 != 5 || m.T3 != 80 || m.T4 != 0 {
		t.Fatalf("%+v %v", m, err)
	}
	for _, bad := range []string{"", "1:2", "1:2:3:4", "a:b:c", "-1:0:1", "0:0:0"} {
		if _, err := ParseMix(bad); err == nil {
			t.Errorf("ParseMix(%q) succeeded", bad)
		}
	}
	if !MixReadOnly.IsReadOnly() || MixReadWrite.IsReadOnly() {
		t.Fatal("IsReadOnly")
	}
	if MixReadWrite.String() != "15:5:80" {
		t.Fatalf("mix string = %q", MixReadWrite.String())
	}
	iud := IUDMix(60, 30, 10)
	if iud.T1 != 60 || iud.T2 != 30 || iud.T4 != 10 || iud.T3 != 0 {
		t.Fatalf("IUD mix: %+v", iud)
	}
}

func TestCollector(t *testing.T) {
	c := NewCollector()
	c.RecordCommit(T1NewOrderline, time.Second, 2*time.Millisecond)
	c.RecordCommit(T3OrderStatus, time.Second+200*time.Millisecond, time.Millisecond)
	c.RecordError(2 * time.Second)
	if c.Commits() != 2 || c.Errors() != 1 {
		t.Fatalf("commits/errors = %d/%d", c.Commits(), c.Errors())
	}
	if c.CountByType(T1NewOrderline) != 1 || c.CountByType(T2OrderPayment) != 0 {
		t.Fatal("per-type counts")
	}
	if got := c.TPS(time.Second, 2*time.Second); got != 2 {
		t.Fatalf("TPS = %v", got)
	}
	if c.Latency().Count() != 2 {
		t.Fatal("latency samples")
	}
}

// makeSUT builds a single-node SUT with the SF-scaled dataset. A tiny SF
// via dataset override keeps tests fast.
func makeSUT(s *sim.Sim) *node.Node {
	n := node.New(s, node.Config{
		Name: "rw", VCores: 4, MemoryBytes: 256 << 20,
		OpCPU: 200 * time.Microsecond, TxnCPU: 100 * time.Microsecond,
	}, node.NullBackend{})
	d := NewDataset(1, 42)
	if err := d.CreateTables(n.DB); err != nil {
		panic(err)
	}
	return n
}

func runWorkload(t *testing.T, mix Mix, dist string, dur time.Duration, conc int) (*Collector, *node.Node) {
	t.Helper()
	s := sim.New(epoch)
	n := makeSUT(s)
	col := NewCollector()
	r := NewRunner(s, Config{
		Name: "w", Seed: 7, Mix: mix, Distribution: dist,
		Write:     func() *node.Node { return n },
		Read:      func() *node.Node { return n },
		Collector: col,
	})
	s.Go("ctl", func(p *sim.Proc) {
		r.SetConcurrency(conc)
		p.Sleep(dur)
		r.Stop()
		r.Wait(p)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	return col, n
}

func TestRunnerExecutesMixedWorkload(t *testing.T) {
	col, n := runWorkload(t, MixReadWrite, "uniform", 2*time.Second, 8)
	if col.Commits() < 100 {
		t.Fatalf("commits = %d, want a few thousand", col.Commits())
	}
	if col.Errors() != 0 {
		t.Fatalf("errors = %d", col.Errors())
	}
	// Mix ratios approximately honored: T3 ~80%.
	frac := float64(col.CountByType(T3OrderStatus)) / float64(col.Commits())
	if frac < 0.7 || frac > 0.9 {
		t.Fatalf("T3 fraction = %.2f, want ~0.8", frac)
	}
	// T1 inserts landed in the orderline table.
	if got := n.DB.Table(TableOrderline).MaxID(); got <= 3_000_000 {
		t.Fatal("no orderlines inserted")
	}
	// T2 marked orders paid: commits recorded.
	if col.CountByType(T2OrderPayment) == 0 {
		t.Fatal("no payments executed")
	}
}

func TestRunnerWriteOnlyAndDeletes(t *testing.T) {
	col, n := runWorkload(t, Mix{T1: 50, T4: 50}, "uniform", time.Second, 4)
	if col.CountByType(T1NewOrderline) == 0 || col.CountByType(T4OrderlineDeletion) == 0 {
		t.Fatal("inserts or deletes missing")
	}
	ol := n.DB.Table(TableOrderline)
	if ol.LiveRows() == 3_000_000 {
		t.Fatal("live rows unchanged by write workload")
	}
	_ = col
}

func TestRunnerLatestDistributionSkewsAccess(t *testing.T) {
	// With the latest distribution, T2 touches only the 10 freshest
	// orders; verify by checking that low-id orders stay NEW... base
	// orders may already be PAID, so instead check buffer locality: the
	// read-write working set should be tiny.
	s := sim.New(epoch)
	n := makeSUT(s)
	col := NewCollector()
	r := NewRunner(s, Config{
		Name: "w", Seed: 7, Mix: Mix{T2: 100}, Distribution: "latest", LatestK: 10,
		Write:     func() *node.Node { return n },
		Read:      func() *node.Node { return n },
		Collector: col,
	})
	s.Go("ctl", func(p *sim.Proc) {
		r.SetConcurrency(4)
		p.Sleep(time.Second)
		r.Stop()
		r.Wait(p)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	orders := n.DB.Table(TableOrders)
	// Orders below MaxID-10 must never have been payment-updated: their
	// delta is empty, i.e. DeltaLen counts only rows near the tail plus
	// customers' rows live elsewhere.
	touched := orders.DeltaLen()
	if touched > 10 {
		t.Fatalf("latest-10 touched %d distinct orders, want <= 10", touched)
	}
	if col.Commits() == 0 {
		t.Fatal("no commits")
	}
}

func TestRunnerConcurrencyReshaping(t *testing.T) {
	s := sim.New(epoch)
	n := makeSUT(s)
	col := NewCollector()
	r := NewRunner(s, Config{
		Name: "w", Seed: 7, Mix: MixReadOnly,
		Write:     func() *node.Node { return n },
		Read:      func() *node.Node { return n },
		Collector: col,
	})
	s.Go("ctl", func(p *sim.Proc) {
		r.SetConcurrency(2)
		p.Sleep(time.Second)
		r.SetConcurrency(16)
		p.Sleep(time.Second)
		r.SetConcurrency(0) // quiesce
		p.Sleep(2 * time.Second)
		r.Stop()
		r.Wait(p)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	low := col.TPS(0, time.Second)
	high := col.TPS(time.Second, 2*time.Second)
	// Measure idle on a whole bucket strictly after the quiesce settles.
	idle := col.TPS(3*time.Second, 4*time.Second)
	if high < low*2 {
		t.Fatalf("TPS did not grow with concurrency: %v -> %v", low, high)
	}
	if idle != 0 {
		t.Fatalf("TPS during zero-concurrency slot = %v", idle)
	}
}

func TestRunnerRoutesFailuresToErrors(t *testing.T) {
	s := sim.New(epoch)
	n := makeSUT(s)
	col := NewCollector()
	r := NewRunner(s, Config{
		Name: "w", Seed: 7, Mix: MixReadWrite,
		Write:     func() *node.Node { return n },
		Read:      func() *node.Node { return n },
		Collector: col, RetryBackoff: 50 * time.Millisecond,
	})
	s.Go("ctl", func(p *sim.Proc) {
		r.SetConcurrency(4)
		p.Sleep(time.Second)
		n.SetState(node.Down)
		p.Sleep(2 * time.Second)
		n.SetState(node.Running)
		p.Sleep(time.Second)
		r.Stop()
		r.Wait(p)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if col.Errors() == 0 {
		t.Fatal("no errors during outage")
	}
	// Throughput resumed after restart (bucket fully after recovery).
	if col.TPS(3*time.Second, 4*time.Second) == 0 {
		t.Fatal("no TPS after recovery")
	}
	// Zero TPS during the outage (bucket fully inside it).
	if got := col.TPS(2*time.Second, 3*time.Second); got != 0 {
		t.Fatalf("TPS during outage = %v", got)
	}
}
