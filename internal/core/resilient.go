// Resilient-client machinery: capped exponential backoff with deterministic
// jitter, per-node circuit breakers on virtual time, and reroute-on-open
// for read traffic. NDBench's core argument applies to a testbed client:
// if the benchmark driver dies (or spins) with the SUT, it measures its own
// fragility rather than the database's availability — so the CloudyBench
// client keeps running through partitions and fail-overs, and what it
// records (errors, terminal give-ups, reroutes) becomes the measurement.
package core

import (
	"errors"
	"time"

	"cloudybench/internal/node"
)

// ErrUnreachable is returned when the client cannot reach the picked node
// (network partition between client and node).
var ErrUnreachable = errors.New("core: node unreachable (client-side partition)")

// ErrBreakerOpen is returned without touching the node when its circuit
// breaker is open: the client fails fast instead of hammering a dead node.
var ErrBreakerOpen = errors.New("core: circuit breaker open")

// ErrRetriesExhausted marks a transaction abandoned after its full retry
// budget — the terminal error a bounded client records instead of spinning
// for the rest of the run.
var ErrRetriesExhausted = errors.New("core: retry budget exhausted")

// RetryPolicy configures the resilient client. The zero value takes the
// defaults below (and Config.RetryBackoff, when set, becomes BackoffBase,
// preserving the pre-existing knob).
type RetryPolicy struct {
	// BackoffBase is the first retry's backoff; each subsequent retry
	// doubles it up to BackoffCap. Default 100 ms (Config.RetryBackoff).
	BackoffBase time.Duration
	// BackoffCap bounds the exponential growth. Default 2 s.
	BackoffCap time.Duration
	// MaxAttempts is the per-transaction attempt budget (first try
	// included); once exhausted the transaction is abandoned with a
	// terminal error. Default 8.
	MaxAttempts int
	// BreakerThreshold is how many consecutive transient failures open a
	// node's breaker. Default 5.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker waits before admitting a
	// single half-open probe. Default 1 s.
	BreakerCooldown time.Duration
}

func (p RetryPolicy) withDefaults(legacyBackoff time.Duration) RetryPolicy {
	if p.BackoffBase <= 0 {
		p.BackoffBase = legacyBackoff
	}
	if p.BackoffBase <= 0 {
		p.BackoffBase = 100 * time.Millisecond
	}
	if p.BackoffCap <= 0 {
		p.BackoffCap = 2 * time.Second
	}
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 8
	}
	if p.BreakerThreshold <= 0 {
		p.BreakerThreshold = 5
	}
	if p.BreakerCooldown <= 0 {
		p.BreakerCooldown = time.Second
	}
	return p
}

// backoffFor returns the capped exponential backoff for the given 0-based
// attempt, before jitter.
func (p RetryPolicy) backoffFor(attempt int) time.Duration {
	d := p.BackoffBase
	for i := 0; i < attempt; i++ {
		d *= 2
		if d >= p.BackoffCap {
			return p.BackoffCap
		}
	}
	if d > p.BackoffCap {
		d = p.BackoffCap
	}
	return d
}

// breakerState is the classic three-state circuit breaker.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// Breaker is a per-node circuit breaker running on virtual time. All
// workers of a Runner share one breaker per node, so the whole client
// learns a node is dead from BreakerThreshold failures total — not per
// worker. Single-runnable DES discipline makes the unsynchronized state
// safe and deterministic.
type Breaker struct {
	pol      RetryPolicy
	state    breakerState
	fails    int
	openedAt time.Duration
	probing  bool
}

// Allow reports whether a request may proceed now. An open breaker admits
// nothing until the cooldown elapses, then transitions to half-open and
// admits exactly one probe at a time. The returned transition flag is true
// when this call moved the breaker open → half-open (the caller records the
// completed breaker-open window).
func (b *Breaker) Allow(now time.Duration) (ok, openEnded bool) {
	switch b.state {
	case breakerClosed:
		return true, false
	case breakerOpen:
		if now-b.openedAt < b.pol.BreakerCooldown {
			return false, false
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true, true
	default: // half-open
		if b.probing {
			return false, false
		}
		b.probing = true
		return true, false
	}
}

// OnSuccess records a successful request: the breaker closes and the
// failure streak resets.
func (b *Breaker) OnSuccess() {
	b.state = breakerClosed
	b.fails = 0
	b.probing = false
}

// OnFailure records a transient failure; it reports true when this failure
// opened the breaker (threshold crossed, or a half-open probe failed).
func (b *Breaker) OnFailure(now time.Duration) bool {
	b.probing = false
	switch b.state {
	case breakerHalfOpen:
		b.state = breakerOpen
		b.openedAt = now
		return true
	case breakerClosed:
		b.fails++
		if b.fails >= b.pol.BreakerThreshold {
			b.state = breakerOpen
			b.openedAt = now
			return true
		}
	}
	return false
}

// State returns the breaker state name ("closed", "open", "half-open").
func (b *Breaker) State() string { return b.state.String() }

// OpenedAt returns when the breaker last opened (valid while open).
func (b *Breaker) OpenedAt() time.Duration { return b.openedAt }

// breaker returns (creating on first use) the shared breaker for a node.
// The map is keyed by node pointer and used for lookup only — never ranged.
func (r *Runner) breaker(n *node.Node) *Breaker {
	b := r.breakers[n]
	if b == nil {
		b = &Breaker{pol: r.pol}
		r.breakers[n] = b
	}
	return b
}

// isTransient reports whether an error is worth retrying: the node may
// recover (restart, heal) or traffic may be rerouted. Everything else is a
// hard failure surfaced immediately.
func isTransient(err error) bool {
	return errors.Is(err, node.ErrNodeDown) ||
		errors.Is(err, node.ErrIOFault) ||
		errors.Is(err, node.ErrFenced) ||
		errors.Is(err, ErrUnreachable) ||
		errors.Is(err, ErrBreakerOpen)
}

// Reroutes returns how many reads the client served from a fallback node
// after its primary read pick was unusable.
func (r *Runner) Reroutes() int64 { return r.reroutes }

// BreakerOpens returns how many times any node breaker opened.
func (r *Runner) BreakerOpens() int64 { return r.breakerOpens }
