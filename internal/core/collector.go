package core

import (
	"sort"
	"time"

	"cloudybench/internal/meter"
)

// TxnType identifies one of the CloudyBench transactions of paper Table II.
type TxnType int

// Transactions.
const (
	T1NewOrderline TxnType = iota + 1
	T2OrderPayment
	T3OrderStatus
	T4OrderlineDeletion
)

func (t TxnType) String() string {
	switch t {
	case T1NewOrderline:
		return "T1-NewOrderline"
	case T2OrderPayment:
		return "T2-OrderPayment"
	case T3OrderStatus:
		return "T3-OrderStatus"
	case T4OrderlineDeletion:
		return "T4-OrderlineDeletion"
	default:
		return "T?"
	}
}

// Collector is CloudyBench's performance collector: committed-transaction
// counts in per-second buckets (every TPS figure), latency reservoirs, and
// error counts (requests rejected during fail-over outages).
type Collector struct {
	commits   *meter.Counter
	errors    *meter.Counter
	terminals *meter.Counter
	latency   *meter.Reservoir
	byType    [5]int64
	byOp      map[string]int64
}

// NewCollector returns an empty collector with 1-second TPS buckets.
func NewCollector() *Collector {
	return &Collector{
		commits:   meter.NewCounter(time.Second),
		errors:    meter.NewCounter(time.Second),
		terminals: meter.NewCounter(time.Second),
		latency:   meter.NewReservoir(),
	}
}

// RecordCommit records one committed transaction.
func (c *Collector) RecordCommit(typ TxnType, at time.Duration, latency time.Duration) {
	c.commits.Add(at, 1)
	c.latency.Add(latency)
	if typ >= 1 && int(typ) < len(c.byType) {
		c.byType[typ]++
	}
}

// RecordCommitOp records one committed suite operation by name (the suite
// runner's analogue of RecordCommit; suites have op names, not Table II
// transaction types).
func (c *Collector) RecordCommitOp(op string, at time.Duration, latency time.Duration) {
	c.commits.Add(at, 1)
	c.latency.Add(latency)
	if c.byOp == nil {
		c.byOp = make(map[string]int64)
	}
	c.byOp[op]++
}

// CountByOp returns commits of one suite operation.
func (c *Collector) CountByOp(op string) int64 { return c.byOp[op] }

// OpCount is one suite operation's commit total.
type OpCount struct {
	Op string
	N  int64
}

// OpCounts returns per-operation commit totals sorted by op name.
func (c *Collector) OpCounts() []OpCount {
	names := make([]string, 0, len(c.byOp))
	for op := range c.byOp {
		names = append(names, op)
	}
	sort.Strings(names)
	out := make([]OpCount, len(names))
	for i, op := range names {
		out[i] = OpCount{Op: op, N: c.byOp[op]}
	}
	return out
}

// RecordError records one failed request (node down, lock timeout).
func (c *Collector) RecordError(at time.Duration) {
	c.errors.Add(at, 1)
}

// Commits returns the total committed transactions.
func (c *Collector) Commits() int64 { return c.commits.Total() }

// RecordTerminal records one transaction abandoned after exhausting its
// retry budget (the resilient client's give-up signal; each failed attempt
// was already counted as an error).
func (c *Collector) RecordTerminal(at time.Duration) {
	c.terminals.Add(at, 1)
}

// Errors returns the total failed requests.
func (c *Collector) Errors() int64 { return c.errors.Total() }

// Terminals returns the total transactions abandoned after their retry
// budget was exhausted.
func (c *Collector) Terminals() int64 { return c.terminals.Total() }

// CountByType returns commits of one transaction type.
func (c *Collector) CountByType(t TxnType) int64 {
	if t >= 1 && int(t) < len(c.byType) {
		return c.byType[t]
	}
	return 0
}

// TPS returns average committed transactions per second over [from, to).
func (c *Collector) TPS(from, to time.Duration) float64 {
	return c.commits.Rate(from, to)
}

// TPSBuckets returns the per-second TPS series over [from, to).
func (c *Collector) TPSBuckets(from, to time.Duration) []float64 {
	return c.commits.Buckets(from, to)
}

// CollectorSnapshot is a point-in-time capture of a Collector (warm-up
// memoization across sweep cells).
type CollectorSnapshot struct {
	commits   meter.CounterSnapshot
	errors    meter.CounterSnapshot
	terminals meter.CounterSnapshot
	latency   meter.ReservoirSnapshot
	byType    [5]int64
	byOp      map[string]int64
}

// Snapshot captures the collector's current state.
func (c *Collector) Snapshot() CollectorSnapshot {
	s := CollectorSnapshot{
		commits:   c.commits.Snapshot(),
		errors:    c.errors.Snapshot(),
		terminals: c.terminals.Snapshot(),
		latency:   c.latency.Snapshot(),
		byType:    c.byType,
	}
	if c.byOp != nil {
		s.byOp = make(map[string]int64, len(c.byOp))
		for op, n := range c.byOp {
			s.byOp[op] = n
		}
	}
	return s
}

// Restore resets the collector to a snapshot. All state is copied so
// collectors restored from one snapshot accumulate independently.
func (c *Collector) Restore(snap CollectorSnapshot) {
	c.commits.Restore(snap.commits)
	c.errors.Restore(snap.errors)
	c.terminals.Restore(snap.terminals)
	c.latency.Restore(snap.latency)
	c.byType = snap.byType
	c.byOp = nil
	if snap.byOp != nil {
		c.byOp = make(map[string]int64, len(snap.byOp))
		for op, n := range snap.byOp {
			c.byOp[op] = n
		}
	}
}

// Latency returns the latency reservoir.
func (c *Collector) Latency() *meter.Reservoir { return c.latency }

// CommitCounter exposes the raw commit counter (fail-over recovery search).
func (c *Collector) CommitCounter() *meter.Counter { return c.commits }
