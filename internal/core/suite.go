package core

import (
	"fmt"
	"sort"

	"cloudybench/internal/engine"
	"cloudybench/internal/node"
	"cloudybench/internal/rng"
	"cloudybench/internal/sim"
)

// ScanFunc intercepts read-only planner scans issued by suite operations.
// The differential harness installs one that runs both plans and compares;
// nil uses the node's planner directly.
type ScanFunc func(p *sim.Proc, n *node.Node, table string, col int, lo, hi engine.Value, limit int) ([]engine.Row, error)

// OpCtx is what one suite operation executes with: the routed node, the
// worker's deterministic random streams, and the scan hook.
type OpCtx struct {
	P    *sim.Proc
	Node *node.Node
	Src  *rng.Source
	Dist rng.Dist

	scan ScanFunc
}

// ScanRead runs a read-only range scan on the op's node through the
// engine planner, or through the configured override (the differential
// harness's dual-plan hook).
func (c *OpCtx) ScanRead(table string, col int, lo, hi engine.Value, limit int) ([]engine.Row, error) {
	if c.scan != nil {
		return c.scan(c.P, c.Node, table, col, lo, hi, limit)
	}
	return c.Node.ScanRead(c.P, table, col, lo, hi, limit, engine.PlanAuto)
}

// SuiteOp is one weighted operation of a workload suite. ReadOnly ops route
// to read replicas (and may reroute on failure) exactly like T3; writes pin
// to the current RW.
type SuiteOp struct {
	Name     string
	Weight   float64
	ReadOnly bool
	Run      func(c *OpCtx) error
}

// Suite is a registered workload family: a schema installer applied to
// every node of a deployment, and a weighted operation set. Suites compose
// with the same scale, chaos, and partition machinery as the Table II mix —
// the registry exists so a workload family is defined once and every
// evaluator, gauntlet, and the differential harness can pick it up by name.
type Suite struct {
	Name string
	Desc string
	// Tables installs the suite's tables and secondary indexes on one
	// node's engine; it runs identically on the RW and every replica so
	// derived index state lines up across the cluster.
	Tables func(db *engine.DB, sf int, seed int64) error
	// Ops returns the suite's weighted operation set at the given scale.
	Ops func(sf int) []SuiteOp
}

var suiteReg = map[string]*Suite{}

// RegisterSuite adds a suite to the registry; duplicate names panic
// (registration is init-time wiring, not user input).
func RegisterSuite(st *Suite) {
	if st.Name == "" || st.Tables == nil || st.Ops == nil {
		panic("core: suite needs a name, a Tables installer, and an Ops set")
	}
	if _, dup := suiteReg[st.Name]; dup {
		panic(fmt.Sprintf("core: duplicate suite %q", st.Name))
	}
	suiteReg[st.Name] = st
}

// SuiteNames returns every registered suite name, sorted.
func SuiteNames() []string {
	names := make([]string, 0, len(suiteReg))
	for name := range suiteReg {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// SuiteByName returns the registered suite or nil.
func SuiteByName(name string) *Suite { return suiteReg[name] }
