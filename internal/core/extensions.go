package core

import (
	"errors"

	"cloudybench/internal/engine"
	"cloudybench/internal/node"
	"cloudybench/internal/rng"
	"cloudybench/internal/sim"
)

// The paper's SaaS scenario (Figure 2) contains three microservices —
// Sales, Manufacturing, and Inventory — but evaluates only Sales, deferring
// the other two ("we will add the microservices of Manufacturing and
// Inventory in the future"). This file implements those two as an
// extension behind the same generator API so tenant schemas can grow
// without touching the evaluators. DESIGN.md documents this as an
// extension, not a paper claim.

// Extension table names.
const (
	TableProduct   = "product"
	TableWorkorder = "workorder"
	TableStockitem = "stockitem"
)

// Extension scaling: one product per ten orders; one workorder per product;
// stock items track products one-to-one.
const (
	ProductsPerSF   = 30_000
	WorkordersPerSF = 30_000
	StockitemsPerSF = 30_000
)

// Work-order status values.
const (
	WorkorderOpen = "OPEN"
	WorkorderDone = "DONE"
)

// ProductSchema returns the manufacturing PRODUCT table schema.
func ProductSchema() *engine.Schema {
	return &engine.Schema{
		Name: TableProduct,
		Cols: []engine.Column{
			{Name: "P_ID", Kind: engine.KindInt},
			{Name: "P_NAME", Kind: engine.KindString},
			{Name: "P_COST", Kind: engine.KindFloat},
			{Name: "P_UPDATEDDATE", Kind: engine.KindInt},
		},
		KeyCols:     []int{0},
		AvgRowBytes: 96,
	}
}

// WorkorderSchema returns the manufacturing WORKORDER table schema.
func WorkorderSchema() *engine.Schema {
	return &engine.Schema{
		Name: TableWorkorder,
		Cols: []engine.Column{
			{Name: "WO_ID", Kind: engine.KindInt},
			{Name: "WO_P_ID", Kind: engine.KindInt},
			{Name: "WO_QTY", Kind: engine.KindInt},
			{Name: "WO_STATUS", Kind: engine.KindString},
			{Name: "WO_UPDATEDDATE", Kind: engine.KindInt},
		},
		KeyCols:     []int{0},
		AvgRowBytes: 72,
	}
}

// StockitemSchema returns the inventory STOCKITEM table schema.
func StockitemSchema() *engine.Schema {
	return &engine.Schema{
		Name: TableStockitem,
		Cols: []engine.Column{
			{Name: "SI_ID", Kind: engine.KindInt},
			{Name: "SI_P_ID", Kind: engine.KindInt},
			{Name: "SI_QTY", Kind: engine.KindInt},
			{Name: "SI_RESERVED", Kind: engine.KindInt},
			{Name: "SI_UPDATEDDATE", Kind: engine.KindInt},
		},
		KeyCols:     []int{0},
		AvgRowBytes: 56,
	}
}

// Extension stream tags.
const (
	tagProduct   = 0x9807
	tagWorkorder = 0x3082
	tagStockitem = 0x570C
)

// CreateExtensionTables registers the Manufacturing and Inventory tables on
// a database that already has (or will have) the sales service.
func (d Dataset) CreateExtensionTables(db *engine.DB) error {
	seed := d.Seed
	products := int64(d.SF) * ProductsPerSF
	if _, err := db.CreateTable(ProductSchema(), products, func(id int64) engine.Row {
		r := rng.QuickOf(seed, tagProduct, id)
		return engine.Row{
			engine.Int(id),
			engine.Str("prod-" + r.Letters(8)),
			engine.Float(float64(r.IntRange(100, 50_000)) / 100),
			engine.Int(baseDate),
		}
	}); err != nil {
		return err
	}
	if _, err := db.CreateTable(WorkorderSchema(), int64(d.SF)*WorkordersPerSF, func(id int64) engine.Row {
		r := rng.QuickOf(seed, tagWorkorder, id)
		status := WorkorderDone
		if r.Float64() < 0.2 {
			status = WorkorderOpen
		}
		return engine.Row{
			engine.Int(id),
			engine.Int(1 + r.Int63n(products)),
			engine.Int(r.IntRange(1, 500)),
			engine.Str(status),
			engine.Int(baseDate),
		}
	}); err != nil {
		return err
	}
	if _, err := db.CreateTable(StockitemSchema(), int64(d.SF)*StockitemsPerSF, func(id int64) engine.Row {
		r := rng.QuickOf(seed, tagStockitem, id)
		return engine.Row{
			engine.Int(id),
			engine.Int(id), // stock item i tracks product i
			engine.Int(r.IntRange(0, 10_000)),
			engine.Int(0),
			engine.Int(baseDate),
		}
	}); err != nil {
		return err
	}
	return nil
}

// ErrInsufficientStock is returned by ReserveStock when the reservation
// exceeds the available quantity.
var ErrInsufficientStock = errors.New("core: insufficient stock")

// M1CompleteWorkorder is the manufacturing transaction: close an open work
// order and add its quantity to the product's stock item (cross-service
// write, Manufacturing -> Inventory).
func M1CompleteWorkorder(p *sim.Proc, n *node.Node, woID int64, nowMicros int64) error {
	tx, err := n.Begin(p)
	if err != nil {
		return err
	}
	workorders := n.DB.Table(TableWorkorder)
	stock := n.DB.Table(TableStockitem)
	wo, err := tx.GetForUpdate(workorders, engine.IntKey(woID))
	if err != nil {
		tx.Abort()
		return err
	}
	if wo[3].S != WorkorderOpen {
		return tx.Commit() // already done: idempotent no-op
	}
	upd := wo.Clone()
	upd[3] = engine.Str(WorkorderDone)
	upd[4] = engine.Int(nowMicros)
	if err := tx.Update(workorders, engine.IntKey(woID), upd); err != nil {
		tx.Abort()
		return err
	}
	siKey := engine.IntKey(wo[1].I)
	si, err := tx.GetForUpdate(stock, siKey)
	if err != nil {
		tx.Abort()
		return err
	}
	sup := si.Clone()
	sup[2] = engine.Int(si[2].I + wo[2].I)
	sup[4] = engine.Int(nowMicros)
	if err := tx.Update(stock, siKey, sup); err != nil {
		tx.Abort()
		return err
	}
	return tx.Commit()
}

// I1ReserveStock is the inventory transaction: reserve qty units of a
// product for a pending sale, failing atomically when stock is short
// (Inventory <- Sales dependency).
func I1ReserveStock(p *sim.Proc, n *node.Node, productID, qty int64, nowMicros int64) error {
	tx, err := n.Begin(p)
	if err != nil {
		return err
	}
	stock := n.DB.Table(TableStockitem)
	key := engine.IntKey(productID)
	si, err := tx.GetForUpdate(stock, key)
	if err != nil {
		tx.Abort()
		return err
	}
	available := si[2].I - si[3].I
	if available < qty {
		tx.Abort()
		return ErrInsufficientStock
	}
	upd := si.Clone()
	upd[3] = engine.Int(si[3].I + qty)
	upd[4] = engine.Int(nowMicros)
	if err := tx.Update(stock, key, upd); err != nil {
		tx.Abort()
		return err
	}
	return tx.Commit()
}
