// Package core implements the CloudyBench benchmark itself: the sales
// microservice schema and data generator (paper §II-A), the T1–T4 OLTP
// transactions of Table II, the uniform/latest access distributions, the
// workload manager with runtime-variable concurrency (the mechanism under
// every elasticity and multi-tenancy pattern), and the performance
// collector.
//
// The scaling model follows the paper: CUSTOMER and ORDERS both hold
// 300,000 rows per scale factor, and ORDERLINE is an order of magnitude
// larger. Base rows are materialized deterministically by id, so SF100's
// ~20 GB exists virtually and only written rows consume memory.
package core

import (
	"time"

	"cloudybench/internal/engine"
	"cloudybench/internal/rng"
)

// Table names.
const (
	TableCustomer  = "customer"
	TableOrders    = "orders"
	TableOrderline = "orderline"
)

// Rows-per-scale-factor constants (paper §II-A).
const (
	CustomersPerSF  = 300_000
	OrdersPerSF     = 300_000
	OrderlinesPerSF = 3_000_000 // "an order of magnitude larger"
)

// Physical row-size estimates chosen so SF1 lands near the paper's 194 MB
// raw size: 300k*120 + 300k*100 + 3M*48 ≈ 210 MB.
const (
	customerRowBytes  = 120
	ordersRowBytes    = 100
	orderlineRowBytes = 48
)

// Order status values.
const (
	StatusNew  = "NEW"
	StatusPaid = "PAID"
)

// CustomerSchema returns the CUSTOMER table schema.
func CustomerSchema() *engine.Schema {
	return &engine.Schema{
		Name: TableCustomer,
		Cols: []engine.Column{
			{Name: "C_ID", Kind: engine.KindInt},
			{Name: "C_NAME", Kind: engine.KindString},
			{Name: "C_CREDIT", Kind: engine.KindFloat},
			{Name: "C_UPDATEDDATE", Kind: engine.KindInt},
		},
		KeyCols:     []int{0},
		AvgRowBytes: customerRowBytes,
	}
}

// OrdersSchema returns the ORDERS table schema.
func OrdersSchema() *engine.Schema {
	return &engine.Schema{
		Name: TableOrders,
		Cols: []engine.Column{
			{Name: "O_ID", Kind: engine.KindInt},
			{Name: "O_C_ID", Kind: engine.KindInt},
			{Name: "O_TOTALAMOUNT", Kind: engine.KindFloat},
			{Name: "O_DATE", Kind: engine.KindInt},
			{Name: "O_STATUS", Kind: engine.KindString},
			{Name: "O_UPDATEDDATE", Kind: engine.KindInt},
		},
		KeyCols:     []int{0},
		AvgRowBytes: ordersRowBytes,
	}
}

// OrderlineSchema returns the ORDERLINE table schema.
func OrderlineSchema() *engine.Schema {
	return &engine.Schema{
		Name: TableOrderline,
		Cols: []engine.Column{
			{Name: "OL_ID", Kind: engine.KindInt},
			{Name: "OL_O_ID", Kind: engine.KindInt},
			{Name: "OL_PRODUCT", Kind: engine.KindString},
			{Name: "OL_QUANTITY", Kind: engine.KindInt},
			{Name: "OL_AMOUNT", Kind: engine.KindFloat},
		},
		KeyCols:     []int{0},
		AvgRowBytes: orderlineRowBytes,
	}
}

// Dataset describes one generated database at a scale factor.
type Dataset struct {
	SF         int
	Seed       int64
	Customers  int64
	Orders     int64
	Orderlines int64
}

// NewDataset returns the dataset description for a scale factor.
func NewDataset(sf int, seed int64) Dataset {
	if sf < 1 {
		sf = 1
	}
	return Dataset{
		SF:         sf,
		Seed:       seed,
		Customers:  int64(sf) * CustomersPerSF,
		Orders:     int64(sf) * OrdersPerSF,
		Orderlines: int64(sf) * OrderlinesPerSF,
	}
}

// RawBytes estimates the raw data size (the paper reports 194 MB, 1.99 GB,
// and 20.8 GB for SF1/10/100).
func (d Dataset) RawBytes() int64 {
	return d.Customers*customerRowBytes + d.Orders*ordersRowBytes + d.Orderlines*orderlineRowBytes
}

// baseDate is the synthetic load timestamp embedded in generated rows.
var baseDate = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC).UnixMicro()

// Per-table stream tags for the Quick derivation.
const (
	tagCustomer  = 0xC057
	tagOrders    = 0x04DE
	tagOrderline = 0x01AE
)

// CustomerGen returns the deterministic CUSTOMER row generator.
func (d Dataset) CustomerGen() engine.RowGen {
	seed := d.Seed
	return func(id int64) engine.Row {
		r := rng.QuickOf(seed, tagCustomer, id)
		return engine.Row{
			engine.Int(id),
			engine.Str("cust-" + r.Letters(8)),
			engine.Float(float64(r.IntRange(0, 50_000))),
			engine.Int(baseDate),
		}
	}
}

// OrdersGen returns the deterministic ORDERS row generator. Customer
// references are spread uniformly; ~70% of historical orders are PAID.
func (d Dataset) OrdersGen() engine.RowGen {
	seed := d.Seed
	customers := d.Customers
	return func(id int64) engine.Row {
		r := rng.QuickOf(seed, tagOrders, id)
		status := StatusPaid
		if r.Float64() < 0.3 {
			status = StatusNew
		}
		return engine.Row{
			engine.Int(id),
			engine.Int(1 + r.Int63n(customers)),
			engine.Float(float64(r.IntRange(1, 10_000)) / 100),
			engine.Int(baseDate - r.Int63n(86_400_000_000*365)),
			engine.Str(status),
			engine.Int(baseDate),
		}
	}
}

// OrderlineGen returns the deterministic ORDERLINE row generator. Each base
// order owns ten consecutive orderlines.
func (d Dataset) OrderlineGen() engine.RowGen {
	seed := d.Seed
	orders := d.Orders
	return func(id int64) engine.Row {
		r := rng.QuickOf(seed, tagOrderline, id)
		orderID := (id-1)/10 + 1
		if orderID > orders {
			orderID = orders
		}
		return engine.Row{
			engine.Int(id),
			engine.Int(orderID),
			engine.Str("sku-" + r.Letters(6)),
			engine.Int(r.IntRange(1, 9)),
			engine.Float(float64(r.IntRange(100, 99_99)) / 100),
		}
	}
}

// CreateTables registers the three sales-service tables on a database.
func (d Dataset) CreateTables(db *engine.DB) error {
	if _, err := db.CreateTable(CustomerSchema(), d.Customers, d.CustomerGen()); err != nil {
		return err
	}
	if _, err := db.CreateTable(OrdersSchema(), d.Orders, d.OrdersGen()); err != nil {
		return err
	}
	if _, err := db.CreateTable(OrderlineSchema(), d.Orderlines, d.OrderlineGen()); err != nil {
		return err
	}
	return nil
}
