package core

import (
	"testing"
	"time"

	"cloudybench/internal/node"
	"cloudybench/internal/sim"
)

func TestBackoffForCapsExponent(t *testing.T) {
	p := RetryPolicy{}.withDefaults(0)
	if got := p.backoffFor(0); got != 100*time.Millisecond {
		t.Fatalf("attempt 0 backoff = %v", got)
	}
	if got := p.backoffFor(1); got != 200*time.Millisecond {
		t.Fatalf("attempt 1 backoff = %v", got)
	}
	if got := p.backoffFor(10); got != 2*time.Second {
		t.Fatalf("attempt 10 backoff = %v, want cap", got)
	}
	// Deep exponents must not overflow past the cap.
	if got := p.backoffFor(200); got != 2*time.Second {
		t.Fatalf("attempt 200 backoff = %v, want cap", got)
	}
}

func TestBreakerStateMachine(t *testing.T) {
	pol := RetryPolicy{BreakerThreshold: 2, BreakerCooldown: time.Second}.withDefaults(0)
	b := &Breaker{pol: pol}

	if ok, _ := b.Allow(0); !ok || b.State() != "closed" {
		t.Fatal("fresh breaker must admit")
	}
	if b.OnFailure(10 * time.Millisecond) {
		t.Fatal("first failure must not open a threshold-2 breaker")
	}
	if !b.OnFailure(20 * time.Millisecond) {
		t.Fatal("second failure must open the breaker")
	}
	if ok, _ := b.Allow(100 * time.Millisecond); ok {
		t.Fatal("open breaker admitted a request inside the cooldown")
	}
	ok, openEnded := b.Allow(1100 * time.Millisecond)
	if !ok || !openEnded || b.State() != "half-open" {
		t.Fatalf("cooldown elapsed: Allow = (%v, %v), state %s", ok, openEnded, b.State())
	}
	// Only one probe at a time while half-open.
	if ok, _ := b.Allow(1100 * time.Millisecond); ok {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}
	// Failed probe snaps back open.
	if !b.OnFailure(1200 * time.Millisecond) {
		t.Fatal("failed probe must re-open the breaker")
	}
	if ok, _ := b.Allow(1300 * time.Millisecond); ok {
		t.Fatal("re-opened breaker admitted a request")
	}
	// Successful probe after the next cooldown closes it.
	if ok, _ := b.Allow(2300 * time.Millisecond); !ok {
		t.Fatal("second probe refused")
	}
	b.OnSuccess()
	if b.State() != "closed" {
		t.Fatalf("state after successful probe = %s", b.State())
	}
	if ok, _ := b.Allow(2400 * time.Millisecond); !ok {
		t.Fatal("closed breaker must admit")
	}
}

// TestRetryBudgetBoundsNeverHealedPartition is the regression test for the
// bounded retry loop: under a partition that never heals, every transaction
// must terminate with a terminal error after its attempt budget instead of
// spinning for the rest of the run.
func TestRetryBudgetBoundsNeverHealedPartition(t *testing.T) {
	s := sim.New(epoch)
	n := makeSUT(s)
	col := NewCollector()
	r := NewRunner(s, Config{
		Name: "w", Seed: 7, Mix: MixReadWrite,
		Write:     func() *node.Node { return n },
		Read:      func() *node.Node { return n },
		Reachable: func(*node.Node) bool { return false }, // never heals
		Collector: col,
		Retry: RetryPolicy{
			BackoffBase: 5 * time.Millisecond, BackoffCap: 20 * time.Millisecond,
			MaxAttempts: 3,
		},
	})
	s.Go("ctl", func(p *sim.Proc) {
		r.SetConcurrency(4)
		p.Sleep(2 * time.Second)
		r.Stop()
		r.Wait(p)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if col.Commits() != 0 {
		t.Fatalf("commits = %d through an unreachable node", col.Commits())
	}
	if col.Terminals() == 0 {
		t.Fatal("no terminal errors: transactions spun instead of giving up")
	}
	// Each terminal transaction burned exactly MaxAttempts failed attempts
	// (the final Stop can cut one transaction's retry loop short per worker).
	if errs, terms := col.Errors(), col.Terminals(); errs > terms*3+4*3 {
		t.Fatalf("errors = %d for %d terminals: retry loop not bounded by budget", errs, terms)
	}
}

// TestReaderReroutesAroundBrokenNode: when the primary read pick is
// unreachable, read-only transactions must fall back to another candidate
// instead of failing, and the reroute must be counted.
func TestReaderReroutesAroundBrokenNode(t *testing.T) {
	s := sim.New(epoch)
	broken := node.New(s, node.Config{
		Name: "ro0", VCores: 4, MemoryBytes: 256 << 20,
		OpCPU: 200 * time.Microsecond, TxnCPU: 100 * time.Microsecond,
	}, node.NullBackend{})
	healthy := makeSUT(s)
	col := NewCollector()
	r := NewRunner(s, Config{
		Name: "w", Seed: 7, Mix: MixReadOnly,
		Write:          func() *node.Node { return healthy },
		Read:           func() *node.Node { return broken }, // always picks the broken node
		ReadCandidates: func() []*node.Node { return []*node.Node{broken, healthy} },
		Reachable:      func(n *node.Node) bool { return n != broken },
		Collector:      col,
		Retry:          RetryPolicy{BackoffBase: 5 * time.Millisecond},
	})
	s.Go("ctl", func(p *sim.Proc) {
		r.SetConcurrency(4)
		p.Sleep(time.Second)
		r.Stop()
		r.Wait(p)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if col.Commits() == 0 {
		t.Fatal("no commits: reroute did not route reads around the broken node")
	}
	if col.Terminals() != 0 {
		t.Fatalf("terminals = %d, want 0 (reroute should save every read)", col.Terminals())
	}
	if r.Reroutes() == 0 {
		t.Fatal("reroutes not counted")
	}
}

// TestBreakerOpensUnderSustainedFailure: a down node must open its breaker
// after the threshold, and the breaker-open count must be visible.
func TestBreakerOpensUnderSustainedFailure(t *testing.T) {
	s := sim.New(epoch)
	n := makeSUT(s)
	col := NewCollector()
	r := NewRunner(s, Config{
		Name: "w", Seed: 7, Mix: MixReadWrite,
		Write:     func() *node.Node { return n },
		Read:      func() *node.Node { return n },
		Collector: col,
		Retry: RetryPolicy{
			BackoffBase: 5 * time.Millisecond, BackoffCap: 40 * time.Millisecond,
			MaxAttempts: 4, BreakerThreshold: 3, BreakerCooldown: 200 * time.Millisecond,
		},
	})
	s.Go("ctl", func(p *sim.Proc) {
		r.SetConcurrency(4)
		p.Sleep(500 * time.Millisecond)
		n.SetState(node.Down)
		p.Sleep(2 * time.Second)
		n.SetState(node.Running)
		p.Sleep(time.Second)
		r.Stop()
		r.Wait(p)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if r.BreakerOpens() == 0 {
		t.Fatal("breaker never opened during a sustained outage")
	}
	// Traffic resumed after the node recovered: a half-open probe succeeded
	// and closed the breaker.
	if col.TPS(3*time.Second, 3500*time.Millisecond) == 0 {
		t.Fatal("no TPS after recovery: breaker stuck open")
	}
}
