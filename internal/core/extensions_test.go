package core

import (
	"errors"
	"testing"
	"time"

	"cloudybench/internal/engine"
	"cloudybench/internal/node"
	"cloudybench/internal/sim"
)

func extNode(t *testing.T, s *sim.Sim) *node.Node {
	t.Helper()
	n := node.New(s, node.Config{
		Name: "n", VCores: 4, MemoryBytes: 128 << 20,
		OpCPU: 50 * time.Microsecond, TxnCPU: 20 * time.Microsecond,
	}, node.NullBackend{})
	d := NewDataset(1, 42)
	if err := d.CreateTables(n.DB); err != nil {
		t.Fatal(err)
	}
	if err := d.CreateExtensionTables(n.DB); err != nil {
		t.Fatal(err)
	}
	return n
}

func TestExtensionTablesCoexistWithSales(t *testing.T) {
	s := sim.New(epoch)
	n := extNode(t, s)
	for _, name := range []string{
		TableCustomer, TableOrders, TableOrderline,
		TableProduct, TableWorkorder, TableStockitem,
	} {
		if n.DB.Table(name) == nil {
			t.Fatalf("missing table %s", name)
		}
	}
	if got := n.DB.Table(TableProduct).BaseRows(); got != 30_000 {
		t.Fatalf("products = %d", got)
	}
	// Stock item i tracks product i.
	si, _, _ := n.DB.Table(TableStockitem).Get(engine.IntKey(77))
	if si[1].I != 77 {
		t.Fatalf("stockitem product ref = %d", si[1].I)
	}
}

func TestM1CompleteWorkorderMovesQuantity(t *testing.T) {
	s := sim.New(epoch)
	n := extNode(t, s)
	// Find an OPEN workorder deterministically.
	var woID int64
	wos := n.DB.Table(TableWorkorder)
	for id := int64(1); id <= 100; id++ {
		row, _, _ := wos.Get(engine.IntKey(id))
		if row[3].S == WorkorderOpen {
			woID = id
			break
		}
	}
	if woID == 0 {
		t.Fatal("no open workorder in first 100")
	}
	wo, _, _ := wos.Get(engine.IntKey(woID))
	product, qty := wo[1].I, wo[2].I
	before, _, _ := n.DB.Table(TableStockitem).Get(engine.IntKey(product))

	s.Go("t", func(p *sim.Proc) {
		if err := M1CompleteWorkorder(p, n, woID, 111); err != nil {
			t.Error(err)
		}
		// Idempotent: completing again is a no-op.
		if err := M1CompleteWorkorder(p, n, woID, 222); err != nil {
			t.Error(err)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	after, _, _ := n.DB.Table(TableStockitem).Get(engine.IntKey(product))
	if after[2].I != before[2].I+qty {
		t.Fatalf("stock qty %d -> %d, want +%d once", before[2].I, after[2].I, qty)
	}
	woAfter, _, _ := wos.Get(engine.IntKey(woID))
	if woAfter[3].S != WorkorderDone || woAfter[4].I != 111 {
		t.Fatalf("workorder after: %v", woAfter)
	}
}

func TestI1ReserveStockEnforcesAvailability(t *testing.T) {
	s := sim.New(epoch)
	n := extNode(t, s)
	stock := n.DB.Table(TableStockitem)
	row, _, _ := stock.Get(engine.IntKey(5))
	available := row[2].I

	s.Go("t", func(p *sim.Proc) {
		if err := I1ReserveStock(p, n, 5, available, 1); err != nil {
			t.Errorf("full reservation failed: %v", err)
		}
		// Nothing left: the next reservation must fail atomically.
		err := I1ReserveStock(p, n, 5, 1, 2)
		if !errors.Is(err, ErrInsufficientStock) {
			t.Errorf("overdraw: %v", err)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	after, _, _ := stock.Get(engine.IntKey(5))
	if after[3].I != available {
		t.Fatalf("reserved = %d, want %d", after[3].I, available)
	}
	// The failed reservation must not have bumped the timestamp.
	if after[4].I != 1 {
		t.Fatalf("updated date = %d, want 1 (failed txn rolled back)", after[4].I)
	}
}

func TestConcurrentReservationsNeverOverdraw(t *testing.T) {
	s := sim.New(epoch)
	n := extNode(t, s)
	stock := n.DB.Table(TableStockitem)
	row, _, _ := stock.Get(engine.IntKey(9))
	available := row[2].I
	chunk := available/10 + 1

	granted := int64(0)
	for w := 0; w < 16; w++ {
		s.Go("reserver", func(p *sim.Proc) {
			for {
				err := I1ReserveStock(p, n, 9, chunk, 7)
				if errors.Is(err, ErrInsufficientStock) {
					return
				}
				if err != nil {
					t.Error(err)
					return
				}
				granted += chunk
			}
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	after, _, _ := stock.Get(engine.IntKey(9))
	if after[3].I != granted {
		t.Fatalf("reserved %d != granted %d", after[3].I, granted)
	}
	if after[3].I > after[2].I {
		t.Fatalf("overdrawn: reserved %d > qty %d", after[3].I, after[2].I)
	}
}
