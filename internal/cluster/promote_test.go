package cluster

import (
	"testing"
	"time"

	"cloudybench/internal/engine"
	"cloudybench/internal/node"
	"cloudybench/internal/sim"
)

func TestPromoteWithTwoReplicasKeepsSecondServing(t *testing.T) {
	s := sim.New(epoch)
	cfg := FailoverConfig{
		PromoteOnRWFailure: true,
		PreparePhase:       time.Second,
		SwitchPhase:        time.Second,
		RecoverPhase:       time.Second,
		RestartServiceTime: time.Second,
	}
	c := makeCluster(s, cfg, 2)
	secondRO := c.Replica(1).Node
	s.Go("injector", func(p *sim.Proc) {
		c.InjectRestart(p, c.RWMember())
		c.Shutdown()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// Exactly one RW remains, and the untouched replica is running.
	rwCount := 0
	for _, m := range c.Members() {
		if m.Role == RW {
			rwCount++
		}
	}
	if rwCount != 1 {
		t.Fatalf("RW members = %d", rwCount)
	}
	if secondRO.State() != node.Running {
		t.Fatal("second replica not running after promotion")
	}
}

func TestWritesContinueOnPromotedRW(t *testing.T) {
	s := sim.New(epoch)
	cfg := FailoverConfig{
		PromoteOnRWFailure: true,
		PreparePhase:       time.Second,
		SwitchPhase:        time.Second,
		RecoverPhase:       time.Second,
		RestartServiceTime: time.Second,
	}
	c := makeCluster(s, cfg, 1)
	s.Go("flow", func(p *sim.Proc) {
		// Write before the failure.
		rw := c.RW()
		tbl := rw.DB.Table("orders")
		tx, _ := rw.Begin(p)
		tx.Update(tbl, engine.IntKey(1), engine.Row{engine.Int(1), engine.Str("PAID")})
		tx.Commit()
		p.Sleep(500 * time.Millisecond) // replicate

		c.InjectRestart(p, c.RWMember())

		// Write after promotion goes to the new RW; the pre-failure write
		// must be visible there (it was replicated before the switch).
		newRW := c.RW()
		ntbl := newRW.DB.Table("orders")
		row, _, ok := ntbl.Get(engine.IntKey(1))
		if !ok || row[1].S != "PAID" {
			t.Errorf("pre-failure write lost on promoted RW: %v %v", row, ok)
		}
		tx2, err := newRW.Begin(p)
		if err != nil {
			t.Errorf("promoted RW rejects writes: %v", err)
			return
		}
		if err := tx2.Update(ntbl, engine.IntKey(2), engine.Row{engine.Int(2), engine.Str("PAID")}); err != nil {
			t.Error(err)
		}
		if err := tx2.Commit(); err != nil {
			t.Error(err)
		}
		p.Sleep(500 * time.Millisecond)
		c.Shutdown()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// The post-promotion write replicated to the rejoined old RW.
	var oldRWMember *Member
	for _, m := range c.Members() {
		if m.Role == RO {
			oldRWMember = m
		}
	}
	if oldRWMember == nil {
		t.Fatal("no RO member after promotion")
	}
	row, _, ok := oldRWMember.Node.DB.Table("orders").Get(engine.IntKey(2))
	if !ok || row[1].S != "PAID" {
		t.Fatalf("post-promotion write not replicated back: %v %v", row, ok)
	}
}
