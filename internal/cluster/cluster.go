// Package cluster manages a database cluster: one read-write node, its
// read-only replicas, the replication streams between them, and fail-over.
//
// Failure injection follows the paper's restart model (§II-E): the testbed
// invokes a restart rather than a kill so the service comes back without
// operator action, and the evaluator measures two phases — time until the
// service accepts requests again (F-Score) and time until throughput
// recovers to its pre-failure level (R-Score).
//
// Two fail-over styles are supported: restart-in-place (RDS and most CDBs)
// and the memory-disaggregated switch-over of Figure 7 (CDB4): prepare
// (refuse requests, collect LSNs), promote an RO to the new RW, then
// recover by scanning undo — with the old RW rejoining as an RO.
package cluster

import (
	"fmt"
	"time"

	"cloudybench/internal/engine"
	"cloudybench/internal/node"
	"cloudybench/internal/obs"
	"cloudybench/internal/replication"
	"cloudybench/internal/sim"
	"cloudybench/internal/storage"
)

// Role is a member's current role.
type Role int

// Roles.
const (
	RW Role = iota
	RO
)

func (r Role) String() string {
	if r == RW {
		return "RW"
	}
	return "RO"
}

// Member is one node in the cluster.
type Member struct {
	Node   *node.Node
	Role   Role
	Stream *replication.Stream // stream feeding this node (nil for the RW)
}

// FailoverConfig sets the architecture's recovery behaviour.
type FailoverConfig struct {
	// DetectDelay is the heartbeat interval before a failure is noticed.
	DetectDelay time.Duration
	// RestartServiceTime is how long a restarted node stays down before
	// accepting requests again (ARIES redo/undo or log-replay recovery).
	RestartServiceTime time.Duration
	// RORestartServiceTime overrides RestartServiceTime for RO restarts
	// (zero = same).
	RORestartServiceTime time.Duration
	// ClearBufferOnRestart cold-starts the cache, making TPS recovery
	// gradual (the R phase).
	ClearBufferOnRestart bool
	// RecoveryRamp, if positive, throttles the restarted node's vCores,
	// ramping linearly from 25% back to full over this duration —
	// modeling background redo/undo replay and catch-up work competing
	// with foreground queries. It is what separates R-Score from zero:
	// the service is up (F done) but throughput lags (R phase).
	RecoveryRamp time.Duration
	// PromoteOnRWFailure switches over to an RO instead of restarting in
	// place (CDB4, Figure 7), using the three phase durations below.
	PromoteOnRWFailure bool
	PreparePhase       time.Duration
	SwitchPhase        time.Duration
	RecoverPhase       time.Duration
}

// PhaseEvent is one step of a fail-over timeline (Figure 7).
type PhaseEvent struct {
	At    time.Duration
	Phase string
}

// StreamFactory builds a replication stream from the current RW to the
// given replica (used at setup and again after promotion rewires roles).
type StreamFactory func(target *node.Node) *replication.Stream

// Cluster is one SUT deployment.
type Cluster struct {
	S       *sim.Sim
	Name    string
	cfg     FailoverConfig
	members []*Member
	rw      *Member
	factory StreamFactory

	timeline []PhaseEvent
	rrNext   int
	trace    *obs.Tracer

	// fence is the deployment-wide write lease (nil = no fencing); every
	// fail-over advances its epoch before promoting, so a partitioned old
	// RW is fenced at storage rather than trusted to step down.
	fence *storage.Fence

	// reachable answers whether the control plane currently reaches a node
	// (nil = always). The failure detector heartbeats through it.
	reachable func(*node.Node) bool
	detCfg    DetectorConfig
	detStop   bool
	detOn     bool
}

// SetTracer attaches (or, with nil, detaches) the observability tracer.
// Fail-over phases are then recorded as background storage-replay spans
// under the "failover" activity, phase name in the span detail.
func (c *Cluster) SetTracer(t *obs.Tracer) { c.trace = t }

// tracePhase records one fail-over phase interval on the tracer (no-op when
// tracing is off).
func (c *Cluster) tracePhase(phase string, start, end time.Duration) {
	if c.trace != nil {
		c.trace.RecordBG("failover", obs.KindStorageReplay, phase, start, end)
	}
}

// New builds a cluster from a read-write node and replicas. factory may be
// nil when the cluster has no replicas or replication is wired externally.
func New(s *sim.Sim, name string, cfg FailoverConfig, rwNode *node.Node, replicas []*node.Node, factory StreamFactory) *Cluster {
	c := &Cluster{S: s, Name: name, cfg: cfg, factory: factory}
	c.rw = &Member{Node: rwNode, Role: RW}
	c.members = append(c.members, c.rw)
	for _, r := range replicas {
		m := &Member{Node: r, Role: RO}
		if factory != nil {
			m.Stream = factory(r)
		}
		c.members = append(c.members, m)
	}
	c.wireCommit()
	return c
}

// wireCommit points the current RW's commit hook at every RO stream.
func (c *Cluster) wireCommit() {
	streams := c.roStreams()
	if len(streams) == 0 {
		c.rw.Node.OnCommit = nil
		return
	}
	c.rw.Node.OnCommit = func(p *sim.Proc, recs []storage.Record) {
		for _, st := range streams {
			st.Publish(p, recs)
		}
	}
}

func (c *Cluster) roStreams() []*replication.Stream {
	var out []*replication.Stream
	for _, m := range c.members {
		if m.Role == RO && m.Stream != nil {
			out = append(out, m.Stream)
		}
	}
	return out
}

// RW returns the current read-write node (changes after promotion).
func (c *Cluster) RW() *node.Node { return c.rw.Node }

// RWMember returns the current read-write member.
func (c *Cluster) RWMember() *Member { return c.rw }

// Members returns all members.
func (c *Cluster) Members() []*Member { return c.members }

// ReadNode returns a node for read traffic, balancing round-robin across
// every running member — the RW node serves reads too, so adding an RO
// node grows aggregate read capacity (the basis of the E2 score).
func (c *Cluster) ReadNode() *node.Node {
	n := len(c.members)
	for i := 0; i < n; i++ {
		m := c.members[(c.rrNext+i)%n]
		if m.Node.State() == node.Running {
			c.rrNext = (c.rrNext + i + 1) % n
			return m.Node
		}
	}
	return c.rw.Node
}

// Replica returns the i-th RO member (nil if out of range).
func (c *Cluster) Replica(i int) *Member {
	idx := 0
	for _, m := range c.members {
		if m.Role == RO {
			if idx == i {
				return m
			}
			idx++
		}
	}
	return nil
}

// Timeline returns the recorded fail-over phase events.
func (c *Cluster) Timeline() []PhaseEvent { return c.timeline }

func (c *Cluster) mark(phase string) {
	c.timeline = append(c.timeline, PhaseEvent{At: c.S.Elapsed(), Phase: phase})
}

// SetFence attaches the deployment-wide write lease so fail-overs advance
// the epoch (and fence the old RW) before promoting.
func (c *Cluster) SetFence(f *storage.Fence) { c.fence = f }

// Fence returns the attached write lease (nil if none).
func (c *Cluster) Fence() *storage.Fence { return c.fence }

// Shutdown stops all replication streams, checkpointers, and the failure
// detector so the simulation can drain.
func (c *Cluster) Shutdown() {
	c.StopDetector()
	for _, m := range c.members {
		if m.Stream != nil {
			m.Stream.Stop()
		}
		m.Node.StopCheckpointer()
	}
}

// InjectRestart restarts the given member per the restart model, blocking
// the calling process for the failure-detection delay plus the recovery
// flow. It returns when the service is accepting requests again.
func (c *Cluster) InjectRestart(p *sim.Proc, m *Member) {
	p.Sleep(c.cfg.DetectDelay)
	if m.Role == RW && c.cfg.PromoteOnRWFailure {
		c.promoteFailover(p, m, engine.RecoveryOpts{})
		return
	}
	c.restartInPlace(p, m)
}

func (c *Cluster) restartInPlace(p *sim.Proc, m *Member) {
	c.mark(fmt.Sprintf("%s failure injected", m.Role))
	m.Node.SetState(node.Down)
	if c.cfg.ClearBufferOnRestart {
		m.Node.Buf.Clear()
	}
	wait := c.cfg.RestartServiceTime
	if m.Role == RO && c.cfg.RORestartServiceTime > 0 {
		wait = c.cfg.RORestartServiceTime
	}
	t0 := c.S.Elapsed()
	p.Sleep(wait)
	c.tracePhase(fmt.Sprintf("%s restart recovery", m.Role), t0, c.S.Elapsed())
	m.Node.SetState(node.Running)
	c.mark(fmt.Sprintf("%s service restored", m.Role))
	c.rampUp(m.Node)
}

// InjectCrashMidReplay crashes the given RO member while its replication
// stream is mid-replay: the node goes Down for the RO restart service time
// (cache lost if the architecture cold-starts), while the stream keeps
// buffering shipped records. On restart the replica must drain the
// accumulated backlog — the replica-convergence checker verifies no record
// was lost or skipped across the crash. It blocks the calling process until
// the service is restored (backlog drain continues in the background).
func (c *Cluster) InjectCrashMidReplay(p *sim.Proc, m *Member) {
	if m == nil || m.Role != RO {
		return
	}
	p.Sleep(c.cfg.DetectDelay)
	c.restartInPlace(p, m)
}

// CrashOpts selects the fault shape for InjectNodeCrash.
type CrashOpts struct {
	// Torn selects how the record mid-write at the crash instant is mangled.
	Torn storage.TornMode
	// Recovery carries the teeth knobs for the durability gauntlet
	// (deliberately-broken recovery variants); zero value = honest recovery.
	Recovery engine.RecoveryOpts
}

// InjectNodeCrash kills the member's node at this instant — its WAL keeps
// only what fsync made durable (the in-flight record torn per opts), every
// volatile structure dies — then, after the failure-detection delay, drives
// real crash recovery: an RW either recovers in place via the ARIES pass
// (recovery time emergent from log-since-checkpoint) or, for
// promote-on-failure architectures, fails over to a replica seeded from the
// durable log (the returned stats are then the old primary's rejoin
// recovery); a crashed RO resyncs from the primary's durable log (its own
// apply state was volatile). Blocks until the member serves again; returns
// the recovery stats of the pass that restored it.
func (c *Cluster) InjectNodeCrash(p *sim.Proc, m *Member, opts CrashOpts) (engine.RecoveryStats, error) {
	if m == nil {
		return engine.RecoveryStats{}, nil
	}
	if m.Node.State() != node.Running {
		// The node is already down, recovering, or paused: crashing a
		// mid-recovery node would corrupt the restart model, so the fault is
		// recorded as a no-op (the schedule stays deterministic either way).
		c.mark(fmt.Sprintf("%s crash skipped (not running)", m.Role))
		return engine.RecoveryStats{}, nil
	}
	if opts.Torn != storage.TornNone {
		// An adversarial kill: wait (briefly) for an instant when the WAL
		// actually holds unsynced records, so the tear lands mid-write on a
		// real in-flight record instead of falling in a clean gap between
		// fsync barriers. Bounded so an idle node still crashes.
		log := m.Node.DB.Log()
		deadline := p.Elapsed() + 250*time.Millisecond
		for log.Head() <= log.DurableLSN() && p.Elapsed() < deadline {
			p.Sleep(20 * time.Microsecond)
		}
	}
	m.Node.Crash(opts.Torn)
	c.mark(fmt.Sprintf("%s crash injected", m.Role))
	p.Sleep(c.cfg.DetectDelay)
	if m.Role == RW && c.cfg.PromoteOnRWFailure && c.Replica(0) != nil {
		return c.promoteFailover(p, m, opts.Recovery)
	}
	if m.Role == RO {
		// Replica resync: rebuild from the primary's durable log.
		m.Node.SeedRecovery(c.rw.Node.DB.Log().DurableSnapshot(), nil)
	}
	return c.recoverNode(p, m, opts.Recovery)
}

// recoverNode drives real node recovery for a crashed member and restores
// it to service, recording the same timeline marks as a scripted restart so
// evaluator phase detection is agnostic to which path ran.
func (c *Cluster) recoverNode(p *sim.Proc, m *Member, opts engine.RecoveryOpts) (engine.RecoveryStats, error) {
	t0 := c.S.Elapsed()
	st, err := m.Node.Recover(p, opts)
	if err != nil {
		c.mark(fmt.Sprintf("%s recovery failed", m.Role))
		return st, err
	}
	c.tracePhase(fmt.Sprintf("%s crash recovery", m.Role), t0, c.S.Elapsed())
	c.mark(fmt.Sprintf("%s service restored", m.Role))
	c.rampUp(m.Node)
	return st, nil
}

// rampUp throttles a freshly restarted node and restores full capacity in
// quarter steps across the configured recovery ramp.
func (c *Cluster) rampUp(n *node.Node) {
	if c.cfg.RecoveryRamp <= 0 {
		return
	}
	full := n.VCores()
	if full <= 0 {
		return
	}
	n.SetVCores(c.S.Elapsed(), full*0.25)
	c.S.Go(c.Name+"/recovery-ramp", func(p *sim.Proc) {
		const steps = 4
		for i := 1; i <= steps; i++ {
			p.Sleep(c.cfg.RecoveryRamp / steps)
			n.SetVCores(c.S.Elapsed(), full*(0.25+0.75*float64(i)/steps))
		}
	})
}

// promoteFailover runs the Figure 7 switch-over: prepare, promote an RO to
// the new RW, recover, and rejoin the old RW as an RO. When the old RW is
// down from a real crash its rejoin runs actual ARIES recovery over its
// durable log; those stats are returned so crash gauntlets can report the
// recovery work a promotion architecture still performs.
func (c *Cluster) promoteFailover(p *sim.Proc, old *Member, opts engine.RecoveryOpts) (engine.RecoveryStats, error) {
	target := c.Replica(0)
	if target == nil {
		// No replica to promote: fall back to restart-in-place.
		c.restartInPlace(p, old)
		return engine.RecoveryStats{}, nil
	}
	c.mark("RW failure detected")

	// Lease: advance the epoch first. From this instant the old RW — even
	// if it is actually alive behind a partition — has its commits refused
	// by shared storage, so nothing below races a still-writing primary.
	var epoch uint64
	if c.fence != nil {
		epoch = c.fence.Advance(c.S.Elapsed())
	}
	// Catch-up: apply every committed-but-unapplied record to the promotion
	// target before it takes over. The committed log lives in shared/quorum
	// storage, so the target can drain it even when the network path to the
	// old RW is gone; skipping this would silently lose the commits that
	// were still in the replication pipeline (divergence after fail-over).
	if target.Stream != nil {
		target.Stream.DrainPending(p)
	}

	// Prepare: cluster manager notifies all nodes to refuse requests and
	// collects the latest page/checkpoint LSNs.
	c.mark("prepare: refuse requests, collect LSN")
	t0 := c.S.Elapsed()
	for _, m := range c.members {
		m.Node.SetState(node.Down)
	}
	p.Sleep(c.cfg.PreparePhase)
	c.tracePhase("prepare", t0, c.S.Elapsed())

	// Switch over: promote the RO; the old RW cleans up against the
	// remote buffer pool and will restart as an RO.
	c.mark("switch-over: promote RO to RW'")
	t0 = c.S.Elapsed()
	p.Sleep(c.cfg.SwitchPhase)
	c.tracePhase("switch-over", t0, c.S.Elapsed())
	old.Node.OnCommit = nil
	old.Role = RO
	target.Role = RW
	c.rw = target
	if old.Node.Crashed() {
		// The old RW actually crashed (not a scripted restart): seed the new
		// RW's WAL from the durable log in shared storage so its LSNs and
		// txn ids continue the acknowledged history the replica applied.
		snap, _ := old.Node.CrashArtifacts()
		target.Node.DB.Log().Restore(snap)
		target.Node.DB.BumpTxnFloor(old.Node.DB.TxnCounter())
	}

	// Recovering: the new RW rebuilds active transactions and rolls back
	// uncommitted work by scanning undo.
	c.mark("recovering: scan undo, rollback uncommitted")
	t0 = c.S.Elapsed()
	p.Sleep(c.cfg.RecoverPhase)
	c.tracePhase("recover", t0, c.S.Elapsed())

	// New RW serves (ramping while it rebuilds), and the old RW rejoins
	// as a replica via a fresh stream.
	target.Node.SetState(node.Running)
	if target.Stream != nil {
		// Final drain, now that the target accepts applies again: commits
		// that passed the fence check just before the epoch advanced were
		// still buying WAL durability during the first drain and published
		// afterwards; they are in the pipeline by now and must land before
		// the old stream dies, or they exist only on the demoted primary.
		target.Stream.DrainPending(p)
		target.Stream.Stop()
		target.Stream = nil
	}
	if c.fence != nil {
		target.Node.GrantEpoch(epoch)
	}
	c.mark("RW' serving requests")
	c.rampUp(target.Node)
	if c.factory != nil {
		old.Stream = c.factory(old.Node)
		c.wireCommit()
	}
	for _, m := range c.members {
		if m != target && m != old {
			m.Node.SetState(node.Running)
		}
	}
	// The old RW restarts (cleanup + restart) slightly behind the
	// switch-over, then serves reads.
	old.Node.Buf.Clear()
	var st engine.RecoveryStats
	if old.Node.Crashed() {
		// Real crash: the old primary rejoins through actual recovery over
		// its durable log — honest, since its rebuilt state only ever serves
		// reads behind the new RW's replication stream.
		var err error
		if st, err = old.Node.Recover(p, opts); err != nil {
			c.mark("old RW recovery failed")
			return st, err
		}
	} else {
		p.Sleep(c.cfg.RestartServiceTime)
		old.Node.SetState(node.Running)
	}
	c.mark("old RW rejoined as RO'")
	return st, nil
}
