package cluster

import (
	"errors"
	"strings"
	"testing"
	"time"

	"cloudybench/internal/engine"
	"cloudybench/internal/node"
	"cloudybench/internal/replication"
	"cloudybench/internal/sim"
	"cloudybench/internal/storage"
)

// timelineContains reports whether any phase event starts with the prefix.
func timelineContains(c *Cluster, prefix string) bool {
	for _, ev := range c.Timeline() {
		if strings.HasPrefix(ev.Phase, prefix) {
			return true
		}
	}
	return false
}

// TestDetectorNoReachableROFallsBackToAwaitHeal: a partitioned RW with no
// reachable promotion target (every replica on the minority side) must wait
// the partition out and restart in place — the restart-model fallback.
func TestDetectorNoReachableROFallsBackToAwaitHeal(t *testing.T) {
	s := sim.New(epoch)
	cfg := FailoverConfig{RestartServiceTime: 2 * time.Second}
	c := makeCluster(s, cfg, 1)
	rw := c.RW()

	// The whole data plane is on the minority side: neither the RW nor the
	// replica is reachable, so there is nothing to promote onto.
	reachable := true
	c.SetReachable(func(*node.Node) bool { return reachable })
	c.StartDetector(DetectorConfig{
		Interval: 500 * time.Millisecond, Suspicion: 2, PromoteOnPartition: true,
	})

	s.Go("ctl", func(p *sim.Proc) {
		p.Sleep(time.Second)
		reachable = false
		p.Sleep(4 * time.Second)
		reachable = true // heal
		p.Sleep(5 * time.Second)
		c.Shutdown()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !timelineContains(c, "partition: no reachable RO, awaiting heal") {
		t.Fatalf("missing await-heal mark; timeline: %v", c.Timeline())
	}
	if !timelineContains(c, "RW service restored") {
		t.Fatalf("RW never restarted after the heal; timeline: %v", c.Timeline())
	}
	if c.RW() != rw {
		t.Fatal("RW changed despite having no promotion target")
	}
	if rw.State() != node.Running {
		t.Fatal("RW not running after restart-in-place")
	}
}

// TestPromoteDrainsReplicaBacklogBeforeTakeover: records committed on the
// old RW but still sitting in the replication pipeline (a coarse batch
// interval keeps them buffered) must be applied to the promotion target
// before it takes over — skipping them would silently lose acknowledged
// commits.
func TestPromoteDrainsReplicaBacklogBeforeTakeover(t *testing.T) {
	s := sim.New(epoch)
	rw := makeNode(s, "rw")
	ro := makeNode(s, "ro")
	factory := func(target *node.Node) *replication.Stream {
		return replication.NewStream(s, replication.Config{
			// A batch interval far past the test horizon: nothing ships
			// until DrainPending forces it.
			Name: "stream", BatchInterval: time.Hour,
			Lanes: 1, PerRecord: time.Microsecond,
		}, target)
	}
	cfg := FailoverConfig{
		PromoteOnRWFailure: true,
		PreparePhase:       time.Second,
		SwitchPhase:        time.Second,
		RecoverPhase:       time.Second,
		RestartServiceTime: time.Second,
	}
	c := New(s, "test", cfg, rw, []*node.Node{ro}, factory)

	s.Go("ctl", func(p *sim.Proc) {
		tbl := rw.DB.Table("orders")
		for i := int64(1); i <= 5; i++ {
			tx, err := rw.Begin(p)
			if err != nil {
				t.Error(err)
				return
			}
			tx.Update(tbl, engine.IntKey(i), engine.Row{engine.Int(i), engine.Str("PAID")})
			if err := tx.Commit(); err != nil {
				t.Error(err)
				return
			}
		}
		// The replica has applied nothing: the batch is still buffered.
		if shipped, applied := c.Replica(0).Stream.Counts(); shipped != 0 || applied != 0 {
			t.Errorf("pre-promotion stream counts shipped=%d applied=%d, want 0/0", shipped, applied)
		}
		c.InjectRestart(p, c.RWMember())
		c.Shutdown()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if c.RW() != ro {
		t.Fatal("replica was not promoted")
	}
	for i := int64(1); i <= 5; i++ {
		row, _, ok := ro.DB.Table("orders").Get(engine.IntKey(i))
		if !ok || row[1].S != "PAID" {
			t.Fatalf("order %d missing on promoted RW: backlog lost across promotion", i)
		}
	}
}

// TestPartitionPromoteFencesOldPrimary: after a detector-driven promotion
// the partitioned old RW is still Running and still accepting transactions —
// but its commits must be refused by the epoch fence, while the new RW
// commits under the advanced epoch.
func TestPartitionPromoteFencesOldPrimary(t *testing.T) {
	s := sim.New(epoch)
	c := makeCluster(s, FailoverConfig{
		PromoteOnRWFailure: true,
		PreparePhase:       500 * time.Millisecond,
		SwitchPhase:        500 * time.Millisecond,
		RecoverPhase:       500 * time.Millisecond,
		RestartServiceTime: time.Second,
	}, 1)
	oldRW := c.RW()
	newRW := c.Replica(0).Node

	fence := storage.NewFence()
	fence.SetRecording(true)
	oldRW.SetFence(fence)
	newRW.SetFence(fence)
	oldRW.GrantEpoch(fence.Epoch())
	c.SetFence(fence)

	rwReachable := true
	c.SetReachable(func(n *node.Node) bool { return n != oldRW || rwReachable })
	c.StartDetector(DetectorConfig{
		Interval: 250 * time.Millisecond, Suspicion: 2, PromoteOnPartition: true,
	})

	commit := func(p *sim.Proc, n *node.Node, id int64) error {
		tx, err := n.Begin(p)
		if err != nil {
			return err
		}
		tx.Update(n.DB.Table("orders"), engine.IntKey(id), engine.Row{engine.Int(id), engine.Str("PAID")})
		return tx.Commit()
	}

	s.Go("ctl", func(p *sim.Proc) {
		if err := commit(p, oldRW, 1); err != nil {
			t.Errorf("pre-partition commit on RW failed: %v", err)
		}
		rwReachable = false
		p.Sleep(4 * time.Second) // detect + prepare + switch + recover
		if c.RW() != newRW {
			t.Error("replica not promoted during the partition")
		}
		// Old primary: alive behind the partition, still taking writes —
		// but fenced at storage.
		if err := commit(p, oldRW, 2); !errors.Is(err, node.ErrFenced) {
			t.Errorf("stale-epoch commit on old RW: err = %v, want ErrFenced", err)
		}
		if err := commit(p, newRW, 3); err != nil {
			t.Errorf("commit on promoted RW failed: %v", err)
		}
		rwReachable = true // heal; the detector grants the epoch on rejoin
		p.Sleep(time.Second)
		c.Shutdown()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if fence.Epoch() != 2 {
		t.Fatalf("fence epoch = %d, want 2 after one fail-over", fence.Epoch())
	}
	if fence.Rejects() == 0 {
		t.Fatal("no fenced writes recorded")
	}
	if !timelineContains(c, "fence: epoch advanced to 2") {
		t.Fatalf("missing fence mark; timeline: %v", c.Timeline())
	}
	if !timelineContains(c, "partition healed: RO rejoined under epoch 2") {
		t.Fatalf("missing rejoin mark; timeline: %v", c.Timeline())
	}
	// The old primary rejoined under the new epoch: it may commit again.
	if oldRW.Epoch() != 2 {
		t.Fatalf("old RW epoch = %d after rejoin, want 2", oldRW.Epoch())
	}
}
