package cluster

import (
	"testing"
	"time"

	"cloudybench/internal/engine"
	"cloudybench/internal/node"
	"cloudybench/internal/replication"
	"cloudybench/internal/sim"
)

var epoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func ordersSchema() *engine.Schema {
	return &engine.Schema{
		Name: "orders",
		Cols: []engine.Column{
			{Name: "O_ID", Kind: engine.KindInt},
			{Name: "O_STATUS", Kind: engine.KindString},
		},
		KeyCols:     []int{0},
		AvgRowBytes: 64,
	}
}

func genOrder(id int64) engine.Row { return engine.Row{engine.Int(id), engine.Str("NEW")} }

func makeNode(s *sim.Sim, name string) *node.Node {
	n := node.New(s, node.Config{
		Name: name, VCores: 4, MemoryBytes: 64 << 20,
		OpCPU: 10 * time.Microsecond, TxnCPU: 10 * time.Microsecond,
	}, node.NullBackend{})
	n.DB.MustCreateTable(ordersSchema(), 1000, genOrder)
	return n
}

func makeCluster(s *sim.Sim, cfg FailoverConfig, replicas int) *Cluster {
	rw := makeNode(s, "rw")
	var ros []*node.Node
	for i := 0; i < replicas; i++ {
		ros = append(ros, makeNode(s, "ro"))
	}
	factory := func(target *node.Node) *replication.Stream {
		return replication.NewStream(s, replication.Config{
			Name: "stream", BatchInterval: time.Millisecond,
			Lanes: 1, PerRecord: time.Microsecond,
		}, target)
	}
	return New(s, "test", cfg, rw, ros, factory)
}

func TestClusterReplicationWiring(t *testing.T) {
	s := sim.New(epoch)
	c := makeCluster(s, FailoverConfig{}, 2)
	s.Go("writer", func(p *sim.Proc) {
		rw := c.RW()
		tbl := rw.DB.Table("orders")
		tx, err := rw.Begin(p)
		if err != nil {
			t.Error(err)
			return
		}
		tx.Update(tbl, engine.IntKey(3), engine.Row{engine.Int(3), engine.Str("PAID")})
		tx.Commit()
		p.Sleep(time.Second)
		for i := 0; i < 2; i++ {
			rm := c.Replica(i)
			row, _, _ := rm.Node.DB.Table("orders").Get(engine.IntKey(3))
			if row[1].S != "PAID" {
				t.Errorf("replica %d did not receive update", i)
			}
		}
		c.Shutdown()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestClusterReadNodeRoundRobinAndFallback(t *testing.T) {
	s := sim.New(epoch)
	c := makeCluster(s, FailoverConfig{}, 2)
	a, b := c.ReadNode(), c.ReadNode()
	if a == b {
		t.Fatal("round robin returned the same replica twice")
	}
	// All replicas down: reads fall back to RW.
	c.Replica(0).Node.SetState(node.Down)
	c.Replica(1).Node.SetState(node.Down)
	if got := c.ReadNode(); got != c.RW() {
		t.Fatal("no fallback to RW")
	}
	c.Shutdown()
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRestartInPlaceTimings(t *testing.T) {
	s := sim.New(epoch)
	cfg := FailoverConfig{
		DetectDelay:          time.Second,
		RestartServiceTime:   10 * time.Second,
		RORestartServiceTime: 3 * time.Second,
		ClearBufferOnRestart: true,
	}
	c := makeCluster(s, cfg, 1)
	s.Go("injector", func(p *sim.Proc) {
		rw := c.RWMember()
		c.InjectRestart(p, rw)
		if got := p.Elapsed(); got != 11*time.Second {
			t.Errorf("RW restart completed at %v, want 11s (1s detect + 10s restart)", got)
		}
		if rw.Node.State() != node.Running {
			t.Error("RW not running after restart")
		}
		ro := c.Replica(0)
		start := p.Elapsed()
		c.InjectRestart(p, ro)
		if got := p.Elapsed() - start; got != 4*time.Second {
			t.Errorf("RO restart took %v, want 4s (1s detect + 3s RO restart)", got)
		}
		c.Shutdown()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRestartClearsBuffer(t *testing.T) {
	s := sim.New(epoch)
	cfg := FailoverConfig{RestartServiceTime: time.Second, ClearBufferOnRestart: true}
	c := makeCluster(s, cfg, 0)
	s.Go("w", func(p *sim.Proc) {
		rw := c.RW()
		tbl := rw.DB.Table("orders")
		rw.ReadPage(p, tbl.PageOfBase(1))
		if rw.Buf.Len() == 0 {
			t.Error("buffer empty before restart")
		}
		c.InjectRestart(p, c.RWMember())
		if rw.Buf.Len() != 0 {
			t.Error("buffer survived restart")
		}
		c.Shutdown()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestPromoteFailoverSwitchesRoles(t *testing.T) {
	s := sim.New(epoch)
	cfg := FailoverConfig{
		DetectDelay:        time.Second,
		PromoteOnRWFailure: true,
		PreparePhase:       time.Second,
		SwitchPhase:        2 * time.Second,
		RecoverPhase:       3 * time.Second,
		RestartServiceTime: 2 * time.Second,
	}
	c := makeCluster(s, cfg, 1)
	oldRW := c.RW()
	oldRO := c.Replica(0).Node
	s.Go("injector", func(p *sim.Proc) {
		c.InjectRestart(p, c.RWMember())
		c.Shutdown()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if c.RW() != oldRO {
		t.Fatal("RO was not promoted to RW")
	}
	if c.RW().State() != node.Running {
		t.Fatal("promoted RW not running")
	}
	if oldRW.State() != node.Running {
		t.Fatal("old RW did not rejoin")
	}
	// Old RW must now be an RO member with a fresh stream.
	var oldMember *Member
	for _, m := range c.Members() {
		if m.Node == oldRW {
			oldMember = m
		}
	}
	if oldMember == nil || oldMember.Role != RO || oldMember.Stream == nil {
		t.Fatal("old RW not rewired as replica")
	}
	// Timeline must contain the Figure 7 phases in order.
	tl := c.Timeline()
	wantPhases := []string{"RW failure detected", "prepare", "switch-over", "recovering", "RW' serving", "old RW rejoined"}
	if len(tl) < len(wantPhases) {
		t.Fatalf("timeline has %d events: %v", len(tl), tl)
	}
	for i, want := range wantPhases {
		if len(tl[i].Phase) < len(want) || tl[i].Phase[:len(want)] != want {
			t.Fatalf("timeline[%d] = %q, want prefix %q", i, tl[i].Phase, want)
		}
	}
	// Service restored at detect(1) + prepare(1) + switch(2) + recover(3) = 7s.
	for _, ev := range tl {
		if ev.Phase == "RW' serving requests" && ev.At != 7*time.Second {
			t.Fatalf("RW' serving at %v, want 7s", ev.At)
		}
	}
}

func TestPromoteWithoutReplicaFallsBack(t *testing.T) {
	s := sim.New(epoch)
	cfg := FailoverConfig{
		PromoteOnRWFailure: true,
		RestartServiceTime: 2 * time.Second,
	}
	c := makeCluster(s, cfg, 0)
	s.Go("injector", func(p *sim.Proc) {
		c.InjectRestart(p, c.RWMember())
		if p.Elapsed() != 2*time.Second {
			t.Errorf("fallback restart at %v", p.Elapsed())
		}
		c.Shutdown()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestWritesFailDuringOutageAndResumeAfter(t *testing.T) {
	s := sim.New(epoch)
	cfg := FailoverConfig{RestartServiceTime: 5 * time.Second}
	c := makeCluster(s, cfg, 0)
	var failedDuring, okAfter bool
	s.Go("injector", func(p *sim.Proc) {
		p.Sleep(time.Second)
		c.InjectRestart(p, c.RWMember())
		c.Shutdown()
	})
	s.Go("client", func(p *sim.Proc) {
		p.Sleep(2 * time.Second) // mid-outage
		if _, err := c.RW().Begin(p); err != nil {
			failedDuring = true
		}
		p.Sleep(6 * time.Second) // after recovery
		if tx, err := c.RW().Begin(p); err == nil {
			okAfter = true
			tx.Abort()
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !failedDuring {
		t.Fatal("writes did not fail during outage")
	}
	if !okAfter {
		t.Fatal("writes did not resume after restart")
	}
}
