package cluster

import (
	"fmt"
	"time"

	"cloudybench/internal/node"
	"cloudybench/internal/sim"
)

// DetectorConfig calibrates the deterministic failure detector: the control
// plane heartbeats every member over the "ctrl" network path on virtual
// time, and accumulates phi-style suspicion — a member is suspected once it
// has missed Suspicion heartbeat intervals in a row (the accrual detector's
// threshold collapsed onto a deterministic clock).
type DetectorConfig struct {
	// Interval is the heartbeat period.
	Interval time.Duration
	// Suspicion is the phi-style threshold in units of Interval: a member
	// unreachable for Suspicion*Interval is declared suspected.
	Suspicion float64
	// PromoteOnPartition, when true, lets a suspected RW trigger automated
	// lease-fenced promotion of a reachable RO. When false (RDS: no
	// promotable shared-storage replica) the cluster waits for the
	// partition to heal and then restarts the primary in place.
	PromoteOnPartition bool
}

// Enabled reports whether the config describes a runnable detector.
func (d DetectorConfig) Enabled() bool { return d.Interval > 0 }

// SetReachable installs the control plane's reachability oracle (typically
// wired to netsim.Net over the "ctrl" endpoint). Nil means always reachable.
func (c *Cluster) SetReachable(f func(*node.Node) bool) { c.reachable = f }

func (c *Cluster) nodeReachable(n *node.Node) bool {
	if c.reachable == nil {
		return true
	}
	return c.reachable(n)
}

// StartDetector launches the failure-detector process. It heartbeats every
// member each Interval and reacts to suspicion: a suspected RW triggers
// automated promotion (or await-heal-and-restart, per the config); a healed
// member rejoins under the current lease epoch. Call StopDetector (or
// Shutdown) before draining the simulation.
func (c *Cluster) StartDetector(cfg DetectorConfig) {
	if !cfg.Enabled() || c.detOn {
		return
	}
	c.detCfg = cfg
	c.detStop = false
	c.detOn = true
	c.S.Go(c.Name+"/detector", c.detectorLoop)
}

// StopDetector asks the detector to exit at its next heartbeat tick.
func (c *Cluster) StopDetector() { c.detStop = true }

func (c *Cluster) detectorLoop(p *sim.Proc) {
	type hbState struct {
		lastAck   time.Duration
		suspected bool
	}
	states := make([]hbState, len(c.members))
	now := c.S.Elapsed()
	for i := range states {
		states[i].lastAck = now
	}
	threshold := time.Duration(float64(c.detCfg.Interval) * c.detCfg.Suspicion)
	for !c.detStop {
		p.Sleep(c.detCfg.Interval)
		if c.detStop {
			return
		}
		now = c.S.Elapsed()
		for i, m := range c.members {
			st := &states[i]
			if c.nodeReachable(m.Node) {
				st.lastAck = now
				if st.suspected {
					st.suspected = false
					c.onRejoin(m)
				}
				continue
			}
			if !st.suspected && now-st.lastAck >= threshold {
				st.suspected = true
				c.onSuspect(p, m)
			}
		}
	}
}

// onSuspect reacts to a freshly suspected member. A suspected RW drives the
// fail-over; a suspected RO is only recorded — the resilient client's
// breakers and reroute handle read traffic around it.
func (c *Cluster) onSuspect(p *sim.Proc, m *Member) {
	c.mark(fmt.Sprintf("partition: %s suspected", m.Role))
	if m.Role != RW {
		return
	}
	if c.detCfg.PromoteOnPartition {
		c.partitionPromote(p, m)
		return
	}
	// No promotable replica (restart-in-place architectures): the control
	// plane can only wait for the partition to heal and then bounce the
	// primary — the blunt recovery that shows up as a large MTTR.
	c.mark("partition: awaiting heal (restart-in-place)")
	c.awaitReachable(p, m)
	c.restartInPlace(p, m)
}

// onRejoin handles a suspected member becoming reachable again. The healed
// minority rejoins under the current lease epoch; its backlog drains through
// the (re-created) replication stream.
func (c *Cluster) onRejoin(m *Member) {
	epoch := uint64(0)
	if c.fence != nil {
		epoch = c.fence.Epoch()
		if m.Role == RO {
			m.Node.GrantEpoch(epoch)
		}
	}
	c.mark(fmt.Sprintf("partition healed: %s rejoined under epoch %d", m.Role, epoch))
}

// awaitReachable polls (on the heartbeat interval) until the control plane
// reaches the member again.
func (c *Cluster) awaitReachable(p *sim.Proc, m *Member) {
	for !c.detStop && !c.nodeReachable(m.Node) {
		p.Sleep(c.detCfg.Interval)
	}
}

// firstReachableRO returns the first RO member the control plane currently
// reaches (promotion candidates must be on the majority side).
func (c *Cluster) firstReachableRO() *Member {
	for _, m := range c.members {
		if m.Role == RO && c.nodeReachable(m.Node) {
			return m
		}
	}
	return nil
}

// partitionPromote fails over away from a partitioned-but-possibly-alive
// RW: advance the lease epoch (fencing the old RW at storage), drain the
// promotion target's replication backlog, run the prepare/switch/recover
// phases on the majority side, and grant the new RW the new epoch. Unlike
// the restart-model promoteFailover, the old RW is NOT shut down — it is
// unreachable, still Running, and possibly still accepting client traffic;
// the fence is what makes that harmless.
func (c *Cluster) partitionPromote(p *sim.Proc, old *Member) {
	target := c.firstReachableRO()
	if target == nil {
		// Nothing to promote onto: behave like a restart-in-place
		// architecture — wait out the partition, then bounce the primary.
		c.mark("partition: no reachable RO, awaiting heal")
		c.awaitReachable(p, old)
		c.restartInPlace(p, old)
		return
	}

	// Lease first: from this instant every commit the old RW acknowledges
	// locally is refused by shared storage (ErrFenced) — no split-brain.
	var epoch uint64
	if c.fence != nil {
		epoch = c.fence.Advance(c.S.Elapsed())
		c.mark(fmt.Sprintf("fence: epoch advanced to %d", epoch))
	}
	// Catch-up: the committed log lives in shared/quorum storage, which the
	// target reads across the partition; acknowledged commits still in the
	// replication pipeline are applied before the target takes over.
	if target.Stream != nil {
		target.Stream.DrainPending(p)
	}

	// Prepare/switch/recover on the majority side only (Figure 7): the old
	// RW is unreachable and cannot be told anything.
	c.mark("prepare: refuse requests, collect LSN")
	t0 := c.S.Elapsed()
	for _, m := range c.members {
		if m != old {
			m.Node.SetState(node.Down)
		}
	}
	p.Sleep(c.cfg.PreparePhase)
	c.tracePhase("prepare", t0, c.S.Elapsed())

	c.mark("switch-over: promote RO to RW'")
	t0 = c.S.Elapsed()
	p.Sleep(c.cfg.SwitchPhase)
	c.tracePhase("switch-over", t0, c.S.Elapsed())
	old.Node.OnCommit = nil
	old.Role = RO
	target.Role = RW
	c.rw = target

	c.mark("recovering: scan undo, rollback uncommitted")
	t0 = c.S.Elapsed()
	p.Sleep(c.cfg.RecoverPhase)
	c.tracePhase("recover", t0, c.S.Elapsed())

	target.Node.SetState(node.Running)
	if target.Stream != nil {
		// Final drain, now that the target accepts applies again: commits
		// that fence-checked just before the epoch advanced were still buying
		// WAL durability during the first drain and published afterwards;
		// they must land before the old stream dies, or they exist only on
		// the fenced-off primary.
		target.Stream.DrainPending(p)
		target.Stream.Stop()
		target.Stream = nil
	}
	if c.fence != nil {
		target.Node.GrantEpoch(epoch)
	}
	c.mark("RW' serving requests")
	c.rampUp(target.Node)
	// The old RW rejoins as a replica: a fresh stream from the new RW. Its
	// link is registered under the active partition, so the backlog ships
	// only once the cut heals (and the detector's rejoin grants the epoch).
	if c.factory != nil {
		old.Stream = c.factory(old.Node)
		c.wireCommit()
	}
	for _, m := range c.members {
		if m != target && m != old {
			m.Node.SetState(node.Running)
		}
	}
}
