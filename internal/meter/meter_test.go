package meter

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func sec(n float64) time.Duration { return time.Duration(n * float64(time.Second)) }

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSeriesAtAndSteps(t *testing.T) {
	s := NewSeries(4)
	s.Set(sec(10), 8)
	s.Set(sec(20), 2)
	cases := []struct {
		at   time.Duration
		want float64
	}{
		{0, 4}, {sec(5), 4}, {sec(10), 8}, {sec(15), 8}, {sec(20), 2}, {sec(100), 2},
	}
	for _, c := range cases {
		if got := s.At(c.at); got != c.want {
			t.Errorf("At(%v) = %v, want %v", c.at, got, c.want)
		}
	}
}

func TestSeriesSetSameInstantOverwrites(t *testing.T) {
	s := NewSeries(1)
	s.Set(sec(5), 2)
	s.Set(sec(5), 3)
	if got := s.At(sec(5)); got != 3 {
		t.Fatalf("At(5s) = %v, want 3 (overwrite)", got)
	}
	if n := len(s.Steps()); n != 2 {
		t.Fatalf("steps = %d, want 2", n)
	}
}

func TestSeriesNoOpStepCompacted(t *testing.T) {
	s := NewSeries(5)
	s.Set(sec(3), 5)
	if n := len(s.Steps()); n != 1 {
		t.Fatalf("steps = %d, want 1 (no-op compacted)", n)
	}
}

func TestSeriesBackwardsTimePanics(t *testing.T) {
	s := NewSeries(1)
	s.Set(sec(10), 2)
	defer func() {
		if recover() == nil {
			t.Fatal("backwards Set did not panic")
		}
	}()
	s.Set(sec(5), 3)
}

func TestSeriesBackwardsAfterCompactedSetPanics(t *testing.T) {
	// Regression: a no-op Set(10, v) is compacted away, but its time must
	// still arm the backwards check — otherwise Set(5, w) would silently
	// rewrite [5,10) history the caller had already asserted was v.
	s := NewSeries(5)
	s.Set(sec(10), 5) // compacted: no new step
	if n := len(s.Steps()); n != 1 {
		t.Fatalf("steps = %d, want 1 (no-op compacted)", n)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("backwards Set after compacted no-op did not panic")
		}
	}()
	s.Set(sec(5), 7)
}

func TestSeriesSetOverwriteAtSegmentBoundary(t *testing.T) {
	// Set, overwrite at the same instant, then query across the boundary:
	// Integral and At must agree with the final overwritten value.
	s := NewSeries(2)
	s.Set(sec(10), 8)
	s.Set(sec(10), 4) // overwrite at the boundary
	if got := s.At(sec(10)); got != 4 {
		t.Fatalf("At(10s) = %v, want 4", got)
	}
	if got := s.At(sec(10) - 1); got != 2 {
		t.Fatalf("At(10s-1ns) = %v, want 2", got)
	}
	// [0,10): 2*10 = 20; [10,20): 4*10 = 40.
	if got := s.Integral(0, sec(20)); !almost(got, 60) {
		t.Fatalf("Integral(0,20s) = %v, want 60", got)
	}
	// Overwriting back to the prior segment's value must drop the
	// now-redundant step and keep Integral consistent.
	s.Set(sec(10), 2)
	if n := len(s.Steps()); n != 1 {
		t.Fatalf("steps = %d, want 1 (redundant boundary step dropped)", n)
	}
	if got := s.Integral(0, sec(20)); !almost(got, 40) {
		t.Fatalf("Integral after overwrite-to-prior = %v, want 40", got)
	}
	// The dropped step's time still guards against backwards Sets, and a
	// later distinct value still appends.
	s.Set(sec(15), 9)
	if got := s.At(sec(12)); got != 2 {
		t.Fatalf("At(12s) = %v, want 2", got)
	}
	if got := s.At(sec(15)); got != 9 {
		t.Fatalf("At(15s) = %v, want 9", got)
	}
}

func TestSeriesIntegralAndAvg(t *testing.T) {
	s := NewSeries(4)
	s.Set(sec(10), 8)
	s.Set(sec(20), 0)
	// [0,10): 4*10 = 40; [10,20): 8*10 = 80; [20,30): 0.
	if got := s.Integral(0, sec(30)); !almost(got, 120) {
		t.Fatalf("Integral(0,30s) = %v, want 120", got)
	}
	if got := s.Integral(sec(5), sec(15)); !almost(got, 4*5+8*5) {
		t.Fatalf("Integral(5,15s) = %v, want 60", got)
	}
	if got := s.Avg(0, sec(20)); !almost(got, 6) {
		t.Fatalf("Avg(0,20s) = %v, want 6", got)
	}
	if got := s.Integral(sec(10), sec(10)); got != 0 {
		t.Fatalf("empty-window integral = %v, want 0", got)
	}
}

func TestSeriesMaxMin(t *testing.T) {
	s := NewSeries(4)
	s.Set(sec(10), 8)
	s.Set(sec(20), 2)
	if got := s.Max(0, sec(30)); got != 8 {
		t.Fatalf("Max = %v, want 8", got)
	}
	if got := s.Min(0, sec(30)); got != 2 {
		t.Fatalf("Min = %v, want 2", got)
	}
	if got := s.Max(0, sec(5)); got != 4 {
		t.Fatalf("Max over flat prefix = %v, want 4", got)
	}
}

func TestSeriesSample(t *testing.T) {
	s := NewSeries(1)
	s.Set(sec(2), 3)
	got := s.Sample(0, sec(4), sec(1))
	want := []float64{1, 1, 3, 3}
	if len(got) != len(want) {
		t.Fatalf("sample length = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sample[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if s.Sample(0, 0, sec(1)) != nil {
		t.Fatal("empty window sample should be nil")
	}
}

func TestSeriesIntegralMatchesSampledSum(t *testing.T) {
	// Property: integral over aligned buckets equals the sum of At(bucket
	// start) * width because the series only changes on whole seconds here.
	check := func(vals []uint8) bool {
		s := NewSeries(float64(1))
		for i, v := range vals {
			s.Set(sec(float64(i+1)), float64(v%16))
		}
		end := sec(float64(len(vals) + 1))
		var sum float64
		for ti := time.Duration(0); ti < end; ti += sec(1) {
			sum += s.At(ti)
		}
		return almost(sum, s.Integral(0, end))
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCounterRates(t *testing.T) {
	c := NewCounter(time.Second)
	c.Add(sec(0.5), 10)
	c.Add(sec(1.2), 20)
	c.Add(sec(1.9), 5)
	if c.Total() != 35 {
		t.Fatalf("total = %d, want 35", c.Total())
	}
	if got := c.CountIn(0, sec(1)); got != 10 {
		t.Fatalf("CountIn[0,1) = %d, want 10", got)
	}
	if got := c.CountIn(sec(1), sec(2)); got != 25 {
		t.Fatalf("CountIn[1,2) = %d, want 25", got)
	}
	if got := c.Rate(0, sec(2)); !almost(got, 17.5) {
		t.Fatalf("Rate = %v, want 17.5", got)
	}
	buckets := c.Buckets(0, sec(3))
	want := []float64{10, 25, 0}
	for i := range want {
		if !almost(buckets[i], want[i]) {
			t.Fatalf("buckets = %v, want %v", buckets, want)
		}
	}
}

func TestCounterEmptyWindow(t *testing.T) {
	c := NewCounter(time.Second)
	if c.CountIn(sec(5), sec(5)) != 0 || c.Rate(sec(5), sec(5)) != 0 {
		t.Fatal("empty window should count zero")
	}
	if c.Buckets(sec(1), sec(1)) != nil {
		t.Fatal("empty window buckets should be nil")
	}
}

func TestCounterRecoverySearches(t *testing.T) {
	c := NewCounter(time.Second)
	c.Add(sec(0.1), 100) // steady before failure
	c.Add(sec(1.1), 100)
	// gap: seconds 2..5 are zero (failure)
	c.Add(sec(6.1), 10) // trickle resumes
	c.Add(sec(7.1), 50)
	c.Add(sec(8.1), 100) // full recovery

	at, ok := c.FirstNonZeroBucketAfter(sec(2))
	if !ok || at != sec(6) {
		t.Fatalf("FirstNonZeroBucketAfter = %v/%v, want 6s", at, ok)
	}
	at, ok = c.FirstBucketReaching(sec(2), 100)
	if !ok || at != sec(8) {
		t.Fatalf("FirstBucketReaching(100) = %v/%v, want 8s", at, ok)
	}
	if _, ok := c.FirstBucketReaching(sec(2), 1000); ok {
		t.Fatal("unreachable target should report not found")
	}
}

func TestReservoirQuantiles(t *testing.T) {
	r := NewReservoir()
	if r.Mean() != 0 || r.Quantile(0.5) != 0 {
		t.Fatal("empty reservoir should report zeros")
	}
	for i := 1; i <= 100; i++ {
		r.Add(time.Duration(i) * time.Millisecond)
	}
	if r.Count() != 100 {
		t.Fatalf("count = %d", r.Count())
	}
	if got := r.Mean(); got != 50500*time.Microsecond {
		t.Fatalf("mean = %v, want 50.5ms", got)
	}
	if got := r.Quantile(0.5); got != 50*time.Millisecond {
		t.Fatalf("p50 = %v, want 50ms", got)
	}
	if got := r.Quantile(0.99); got != 99*time.Millisecond {
		t.Fatalf("p99 = %v, want 99ms", got)
	}
	if got := r.Quantile(0); got != time.Millisecond {
		t.Fatalf("p0 = %v, want 1ms", got)
	}
	if got := r.Quantile(1); got != 100*time.Millisecond {
		t.Fatalf("p100 = %v, want 100ms", got)
	}
}

func TestReservoirEmptyAndSingleSample(t *testing.T) {
	r := NewReservoir()
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		if got := r.Quantile(q); got != 0 {
			t.Fatalf("empty Quantile(%v) = %v, want 0", q, got)
		}
	}
	r.Add(7 * time.Millisecond)
	// Nearest-rank with one sample: every quantile is that sample.
	for _, q := range []float64{-1, 0, 0.01, 0.5, 0.99, 1, 2} {
		if got := r.Quantile(q); got != 7*time.Millisecond {
			t.Fatalf("single-sample Quantile(%v) = %v, want 7ms", q, got)
		}
	}
	if got := r.Mean(); got != 7*time.Millisecond {
		t.Fatalf("single-sample Mean = %v, want 7ms", got)
	}
}

func TestReservoirNearestRankBoundaries(t *testing.T) {
	// Nearest-rank: rank ceil(q*n), 1-based. With n=4 samples the exact
	// boundary q=0.25 must return the 1st sample (ceil(1)=1), q=0.5 the
	// 2nd, and the open edges clamp to min/max without interpolation.
	r := NewReservoir()
	for _, d := range []time.Duration{40, 10, 30, 20} {
		r.Add(d * time.Millisecond)
	}
	cases := []struct {
		q    float64
		want time.Duration
	}{
		{0, 10 * time.Millisecond},    // p0 = exact min
		{0.25, 10 * time.Millisecond}, // ceil(0.25*4) = rank 1
		{0.26, 20 * time.Millisecond}, // ceil(1.04) = rank 2
		{0.5, 20 * time.Millisecond},  // ceil(2) = rank 2
		{0.75, 30 * time.Millisecond}, // ceil(3) = rank 3
		{0.99, 40 * time.Millisecond}, // ceil(3.96) = rank 4
		{1, 40 * time.Millisecond},    // p100 = exact max
	}
	for _, c := range cases {
		if got := r.Quantile(c.q); got != c.want {
			t.Fatalf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestReservoirInterleavedAddQuantile(t *testing.T) {
	r := NewReservoir()
	r.Add(3 * time.Millisecond)
	r.Add(1 * time.Millisecond)
	_ = r.Quantile(0.5)
	r.Add(2 * time.Millisecond) // must re-sort after add
	if got := r.Quantile(0.5); got != 2*time.Millisecond {
		t.Fatalf("p50 after interleaved add = %v, want 2ms", got)
	}
}
