// Package meter provides virtual-time measurement primitives used by the
// CloudyBench performance collector: step-function series (for allocated
// resources such as vCores over time), bucketed counters (for TPS series),
// and latency reservoirs (for percentile reporting).
//
// All timestamps are time.Duration offsets from the simulation epoch, which
// keeps the package independent of any particular clock implementation.
//
// Percentile convention: Reservoir.Quantile uses the nearest-rank method —
// the q-quantile of n sorted samples is the sample at rank ceil(q*n)
// (1-based), with no interpolation between samples. q <= 0 returns the
// minimum and q >= 1 the maximum, so reported percentiles are always values
// that actually occurred. The observability layer's histogram quantiles
// (internal/obs) follow the same convention at bucket granularity, so the
// two substrates agree on p0/p100 and rank semantics.
package meter

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Step is one segment start in a step-function series.
type Step struct {
	At time.Duration
	V  float64
}

// Series is a right-continuous step function over virtual time: the value
// set at time t holds until the next Set. It records, for example, the
// vCores allocated to a node as an autoscaler resizes it.
type Series struct {
	steps []Step
	// lastAt is the time of the most recent Set even when the set was
	// compacted away as a no-op step. Without it, a no-op Set(10, v)
	// followed by Set(5, w) would pass the backwards-time check against
	// the surviving step and silently rewrite history from t=5.
	lastAt time.Duration
}

// NewSeries returns a series with the given initial value from time zero.
func NewSeries(initial float64) *Series {
	return &Series{steps: []Step{{At: 0, V: initial}}}
}

// Set records a new value starting at time at. Times must be non-decreasing;
// setting again at the same instant overwrites.
func (s *Series) Set(at time.Duration, v float64) {
	if at < s.lastAt {
		panic(fmt.Sprintf("meter: Series.Set time going backwards: %v < %v", at, s.lastAt))
	}
	s.lastAt = at
	last := &s.steps[len(s.steps)-1]
	if at == last.At {
		last.V = v
		// An overwrite back to the previous segment's value makes the
		// step redundant: drop it so the compaction invariant (no two
		// adjacent steps with equal values) survives overwrites and
		// Integral/At agree with the steps a caller observes.
		if n := len(s.steps); n >= 2 && s.steps[n-2].V == v {
			s.steps = s.steps[:n-1]
		}
		return
	}
	if last.V == v {
		return // no-op step, keep the series compact
	}
	s.steps = append(s.steps, Step{At: at, V: v})
}

// At returns the series value at time t.
func (s *Series) At(t time.Duration) float64 {
	// Binary search for the last step with At <= t.
	i := sort.Search(len(s.steps), func(i int) bool { return s.steps[i].At > t })
	if i == 0 {
		return s.steps[0].V
	}
	return s.steps[i-1].V
}

// Integral returns the integral of the series over [from, to) in
// value·seconds.
func (s *Series) Integral(from, to time.Duration) float64 {
	if to <= from {
		return 0
	}
	var total float64
	for i := 0; i < len(s.steps); i++ {
		segStart := s.steps[i].At
		segEnd := time.Duration(math.MaxInt64)
		if i+1 < len(s.steps) {
			segEnd = s.steps[i+1].At
		}
		lo, hi := segStart, segEnd
		if lo < from {
			lo = from
		}
		if hi > to {
			hi = to
		}
		if hi > lo {
			total += s.steps[i].V * (hi - lo).Seconds()
		}
	}
	return total
}

// Avg returns the time-weighted average over [from, to).
func (s *Series) Avg(from, to time.Duration) float64 {
	if to <= from {
		return 0
	}
	return s.Integral(from, to) / (to - from).Seconds()
}

// Max returns the maximum value attained in [from, to].
func (s *Series) Max(from, to time.Duration) float64 {
	max := s.At(from)
	for _, st := range s.steps {
		if st.At > to {
			break
		}
		if st.At >= from && st.V > max {
			max = st.V
		}
	}
	return max
}

// Min returns the minimum value attained in [from, to].
func (s *Series) Min(from, to time.Duration) float64 {
	min := s.At(from)
	for _, st := range s.steps {
		if st.At > to {
			break
		}
		if st.At >= from && st.V < min {
			min = st.V
		}
	}
	return min
}

// Steps returns a copy of the raw step list.
func (s *Series) Steps() []Step {
	out := make([]Step, len(s.steps))
	copy(out, s.steps)
	return out
}

// Sample returns the series sampled every interval over [from, to), one
// value per bucket, evaluated at each bucket start. Used to render
// Figure 9-style allocation timelines.
func (s *Series) Sample(from, to, interval time.Duration) []float64 {
	if interval <= 0 || to <= from {
		return nil
	}
	var out []float64
	for t := from; t < to; t += interval {
		out = append(out, s.At(t))
	}
	return out
}

// Counter counts events into fixed-width virtual-time buckets, the basis of
// every TPS measurement in the testbed.
type Counter struct {
	bucket  time.Duration
	counts  []int64
	total   int64
	firstAt time.Duration
	lastAt  time.Duration
	any     bool
}

// NewCounter returns a counter with the given bucket width (e.g. 1 second
// buckets for per-second TPS).
func NewCounter(bucket time.Duration) *Counter {
	if bucket <= 0 {
		panic("meter: non-positive Counter bucket width")
	}
	return &Counter{bucket: bucket}
}

// Add records n events at time at.
func (c *Counter) Add(at time.Duration, n int64) {
	idx := int(at / c.bucket)
	for len(c.counts) <= idx {
		c.counts = append(c.counts, 0)
	}
	c.counts[idx] += n
	c.total += n
	if !c.any || at < c.firstAt {
		c.firstAt = at
	}
	if !c.any || at > c.lastAt {
		c.lastAt = at
	}
	c.any = true
}

// Total returns the total event count.
func (c *Counter) Total() int64 { return c.total }

// CounterSnapshot is a point-in-time capture of a Counter (warm-up
// memoization).
type CounterSnapshot struct {
	bucket  time.Duration
	counts  []int64
	total   int64
	firstAt time.Duration
	lastAt  time.Duration
	any     bool
}

// Snapshot captures the counter's current state.
func (c *Counter) Snapshot() CounterSnapshot {
	return CounterSnapshot{
		bucket:  c.bucket,
		counts:  append([]int64(nil), c.counts...),
		total:   c.total,
		firstAt: c.firstAt,
		lastAt:  c.lastAt,
		any:     c.any,
	}
}

// Restore resets the counter to a snapshot. The bucket slice is copied so
// counters restored from one snapshot accumulate independently.
func (c *Counter) Restore(snap CounterSnapshot) {
	c.bucket = snap.bucket
	c.counts = append(c.counts[:0:0], snap.counts...)
	c.total = snap.total
	c.firstAt = snap.firstAt
	c.lastAt = snap.lastAt
	c.any = snap.any
}

// CountIn returns the number of events recorded in [from, to), counted at
// bucket granularity (partial buckets are attributed by bucket start).
func (c *Counter) CountIn(from, to time.Duration) int64 {
	if to <= from {
		return 0
	}
	lo := int(from / c.bucket)
	hi := int((to - 1) / c.bucket)
	var total int64
	for i := lo; i <= hi && i < len(c.counts); i++ {
		if i >= 0 {
			total += c.counts[i]
		}
	}
	return total
}

// Rate returns the average events per second over [from, to).
func (c *Counter) Rate(from, to time.Duration) float64 {
	if to <= from {
		return 0
	}
	return float64(c.CountIn(from, to)) / (to - from).Seconds()
}

// Buckets returns per-bucket rates (events per second) for buckets that
// intersect [from, to).
func (c *Counter) Buckets(from, to time.Duration) []float64 {
	if to <= from {
		return nil
	}
	lo := int(from / c.bucket)
	hi := int((to - 1) / c.bucket)
	out := make([]float64, 0, hi-lo+1)
	perSec := c.bucket.Seconds()
	for i := lo; i <= hi; i++ {
		var n int64
		if i >= 0 && i < len(c.counts) {
			n = c.counts[i]
		}
		out = append(out, float64(n)/perSec)
	}
	return out
}

// FirstNonZeroBucketAfter returns the start time of the first bucket at or
// after t with a non-zero count, and whether one exists. The fail-over
// evaluator uses it to find the instant throughput resumes.
func (c *Counter) FirstNonZeroBucketAfter(t time.Duration) (time.Duration, bool) {
	start := int(t / c.bucket)
	if start < 0 {
		start = 0
	}
	for i := start; i < len(c.counts); i++ {
		if c.counts[i] > 0 {
			return time.Duration(i) * c.bucket, true
		}
	}
	return 0, false
}

// FirstBucketReaching returns the start time of the first bucket at or after
// t whose rate reaches target events/second, and whether one exists. The
// fail-over evaluator uses it to find TPS recovery.
func (c *Counter) FirstBucketReaching(t time.Duration, target float64) (time.Duration, bool) {
	start := int(t / c.bucket)
	if start < 0 {
		start = 0
	}
	perSec := c.bucket.Seconds()
	for i := start; i < len(c.counts); i++ {
		if float64(c.counts[i])/perSec >= target {
			return time.Duration(i) * c.bucket, true
		}
	}
	return 0, false
}

// Reservoir collects latency samples for percentile reporting. It keeps all
// samples (simulation scale keeps counts modest); Quantile sorts lazily.
type Reservoir struct {
	samples []time.Duration
	sorted  bool
	sum     time.Duration
}

// NewReservoir returns an empty latency reservoir.
func NewReservoir() *Reservoir { return &Reservoir{} }

// Add records one latency sample.
func (r *Reservoir) Add(d time.Duration) {
	r.samples = append(r.samples, d)
	r.sorted = false
	r.sum += d
}

// Count returns the number of samples.
func (r *Reservoir) Count() int { return len(r.samples) }

// ReservoirSnapshot is a point-in-time capture of a Reservoir (warm-up
// memoization). The sample order is preserved, not just the distribution, so
// a restored reservoir's lazy sort produces byte-identical quantiles.
type ReservoirSnapshot struct {
	samples []time.Duration
	sorted  bool
	sum     time.Duration
}

// Snapshot captures the reservoir's current state.
func (r *Reservoir) Snapshot() ReservoirSnapshot {
	return ReservoirSnapshot{
		samples: append([]time.Duration(nil), r.samples...),
		sorted:  r.sorted,
		sum:     r.sum,
	}
}

// Restore resets the reservoir to a snapshot. Samples are copied so
// reservoirs restored from one snapshot grow (and sort) independently.
func (r *Reservoir) Restore(snap ReservoirSnapshot) {
	r.samples = append(r.samples[:0:0], snap.samples...)
	r.sorted = snap.sorted
	r.sum = snap.sum
}

// Mean returns the average latency, or zero with no samples.
func (r *Reservoir) Mean() time.Duration {
	if len(r.samples) == 0 {
		return 0
	}
	return r.sum / time.Duration(len(r.samples))
}

// Quantile returns the q-quantile (0 <= q <= 1) by nearest-rank, or zero
// with no samples.
func (r *Reservoir) Quantile(q float64) time.Duration {
	if len(r.samples) == 0 {
		return 0
	}
	if !r.sorted {
		sort.Slice(r.samples, func(i, j int) bool { return r.samples[i] < r.samples[j] })
		r.sorted = true
	}
	if q <= 0 {
		return r.samples[0]
	}
	if q >= 1 {
		return r.samples[len(r.samples)-1]
	}
	idx := int(math.Ceil(q*float64(len(r.samples)))) - 1
	if idx < 0 {
		idx = 0
	}
	return r.samples[idx]
}
