package config

import (
	"strings"
	"testing"
	"time"
)

func TestParsePropsBasics(t *testing.T) {
	src := `
# elasticity setup
elastic_testTime = 4
first_con  = 11
second_con = 88
third_con  = 11
fourth_con = 0
! legacy comment style
tenant_ratio = 0.6
serverless = true
slot = 30s
cons = 10, 20, 30
name = single peak
name = overridden
`
	p, err := ParseProps(src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Int("elastic_testTime", 0) != 4 {
		t.Fatal("int")
	}
	if p.Float("tenant_ratio", 0) != 0.6 {
		t.Fatal("float")
	}
	if !p.Bool("serverless", false) {
		t.Fatal("bool")
	}
	if p.Duration("slot", 0) != 30*time.Second {
		t.Fatal("duration")
	}
	got := p.Ints("cons", nil)
	if len(got) != 3 || got[1] != 20 {
		t.Fatalf("ints: %v", got)
	}
	if p.Str("name", "") != "overridden" {
		t.Fatal("later key should override")
	}
	if p.Str("missing", "def") != "def" || p.Int("missing", 7) != 7 {
		t.Fatal("defaults")
	}
	if p.Has("missing") || !p.Has("slot") {
		t.Fatal("Has")
	}
}

func TestParsePropsBareSecondsDuration(t *testing.T) {
	p, _ := ParseProps("warmup = 2.5")
	if p.Duration("warmup", 0) != 2500*time.Millisecond {
		t.Fatal("bare seconds")
	}
}

func TestParsePropsErrors(t *testing.T) {
	for _, bad := range []string{"novalue", "=x", "  = 3"} {
		if _, err := ParseProps(bad); err == nil {
			t.Errorf("ParseProps(%q) succeeded", bad)
		}
	}
}

func TestSlotConcurrencyPaperStyle(t *testing.T) {
	p, _ := ParseProps(`
elastic_testTime = 4
first_con = 11
second_con = 88
third_con = 11
fourth_con = 0
`)
	cons, err := p.SlotConcurrency()
	if err != nil {
		t.Fatal(err)
	}
	want := []int{11, 88, 11, 0}
	for i := range want {
		if cons[i] != want[i] {
			t.Fatalf("cons = %v", cons)
		}
	}
	// Missing slot key is an error naming the key.
	p2, _ := ParseProps("elastic_testTime = 2\nfirst_con = 5")
	if _, err := p2.SlotConcurrency(); err == nil || !strings.Contains(err.Error(), "second_con") {
		t.Fatalf("err = %v", err)
	}
	p3, _ := ParseProps("x = 1")
	if _, err := p3.SlotConcurrency(); err == nil {
		t.Fatal("missing elastic_testTime accepted")
	}
}

func TestOrdinalFallback(t *testing.T) {
	if ordinal(0) != "first" || ordinal(11) != "twelfth" {
		t.Fatal("named ordinals")
	}
	if ordinal(12) != "slot13" {
		t.Fatalf("fallback = %q", ordinal(12))
	}
}

func TestParseStmtTOMLDefaultCatalog(t *testing.T) {
	cat, err := ParseStmtTOML(DefaultStmtDB)
	if err != nil {
		t.Fatal(err)
	}
	secs := cat.Sections()
	if len(secs) != 4 || secs[0] != "t1_new_orderline" {
		t.Fatalf("sections: %v", secs)
	}
	sel, ok := cat.Stmt("t2_order_payment", "select_order")
	if !ok || !strings.Contains(sel, "O_TOTALAMOUNT") {
		t.Fatalf("t2 select: %q %v", sel, ok)
	}
	if got := cat.MustStmt("t4_orderline_deletion", "delete"); !strings.Contains(got, "DELETE FROM orderline") {
		t.Fatalf("t4: %q", got)
	}
	if len(cat.SectionStmts("t2_order_payment")) != 3 {
		t.Fatal("t2 statement count")
	}
}

func TestParseStmtTOMLEscapesAndErrors(t *testing.T) {
	cat, err := ParseStmtTOML("[s]\nq = \"say \\\"hi\\\" \\\\ there\"")
	if err != nil {
		t.Fatal(err)
	}
	if got := cat.MustStmt("s", "q"); got != `say "hi" \ there` {
		t.Fatalf("escapes: %q", got)
	}
	bad := []string{
		"[unterminated\nk = \"v\"",
		"[]",
		"k = \"v\"",         // key outside section
		"[s]\nk = unquoted", // not a string
		"[s]\nnovalue",
	}
	for _, src := range bad {
		if _, err := ParseStmtTOML(src); err == nil {
			t.Errorf("ParseStmtTOML(%q) succeeded", src)
		}
	}
	if _, ok := cat.Stmt("nope", "q"); ok {
		t.Fatal("missing section lookup")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustStmt on missing did not panic")
		}
	}()
	cat.MustStmt("s", "missing")
}
