// Package config parses CloudyBench's configuration artifacts: the props
// file (key=value pairs such as elastic_testTime and per-slot concurrency,
// paper §II) and the stmt_db.toml statement catalog that decouples SQL
// text from the workload classes (the paper's SqlReader/Sqlstmts
// extensibility mechanism).
package config

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Props is a flat key=value configuration with typed accessors.
type Props struct {
	values map[string]string
	keys   []string
}

// ParseProps parses a props document: one key=value per line, '#' or '!'
// comments, blank lines ignored, later keys override earlier ones.
func ParseProps(src string) (*Props, error) {
	p := &Props{values: make(map[string]string)}
	for lineNo, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "!") {
			continue
		}
		eq := strings.IndexByte(line, '=')
		if eq <= 0 {
			return nil, fmt.Errorf("config: line %d: expected key=value, got %q", lineNo+1, line)
		}
		key := strings.TrimSpace(line[:eq])
		val := strings.TrimSpace(line[eq+1:])
		if _, seen := p.values[key]; !seen {
			p.keys = append(p.keys, key)
		}
		p.values[key] = val
	}
	return p, nil
}

// Keys returns the keys in first-seen order.
func (p *Props) Keys() []string { return append([]string(nil), p.keys...) }

// Has reports whether key is present.
func (p *Props) Has(key string) bool {
	_, ok := p.values[key]
	return ok
}

// Str returns the value of key, or def when absent.
func (p *Props) Str(key, def string) string {
	if v, ok := p.values[key]; ok {
		return v
	}
	return def
}

// Int returns the integer value of key, or def when absent or malformed.
func (p *Props) Int(key string, def int) int {
	v, ok := p.values[key]
	if !ok {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return def
	}
	return n
}

// Float returns the float value of key, or def.
func (p *Props) Float(key string, def float64) float64 {
	v, ok := p.values[key]
	if !ok {
		return def
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return def
	}
	return f
}

// Bool returns the boolean value of key, or def.
func (p *Props) Bool(key string, def bool) bool {
	v, ok := p.values[key]
	if !ok {
		return def
	}
	b, err := strconv.ParseBool(v)
	if err != nil {
		return def
	}
	return b
}

// Duration returns the duration value of key (Go syntax, e.g. "30s"), or
// a bare number interpreted as seconds, or def.
func (p *Props) Duration(key string, def time.Duration) time.Duration {
	v, ok := p.values[key]
	if !ok {
		return def
	}
	if d, err := time.ParseDuration(v); err == nil {
		return d
	}
	if secs, err := strconv.ParseFloat(v, 64); err == nil {
		return time.Duration(secs * float64(time.Second))
	}
	return def
}

// Ints returns a comma-separated integer list, or def.
func (p *Props) Ints(key string, def []int) []int {
	v, ok := p.values[key]
	if !ok {
		return def
	}
	parts := strings.Split(v, ",")
	out := make([]int, 0, len(parts))
	for _, part := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return def
		}
		out = append(out, n)
	}
	return out
}

// SlotConcurrency extracts the paper's elasticity configuration style: an
// elastic_testTime slot count plus first_con, second_con, ... keys ("users
// can simply modify the length of elastic_testTime (e.g. 4) and add
// corresponding concurrency in the props file (e.g. fourth_con)").
func (p *Props) SlotConcurrency() ([]int, error) {
	n := p.Int("elastic_testTime", 0)
	if n <= 0 {
		return nil, fmt.Errorf("config: elastic_testTime missing or non-positive")
	}
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		key := ordinal(i) + "_con"
		if !p.Has(key) {
			return nil, fmt.Errorf("config: missing %s for slot %d of %d", key, i+1, n)
		}
		out = append(out, p.Int(key, 0))
	}
	return out, nil
}

var ordinals = []string{
	"first", "second", "third", "fourth", "fifth", "sixth", "seventh",
	"eighth", "ninth", "tenth", "eleventh", "twelfth",
}

func ordinal(i int) string {
	if i < len(ordinals) {
		return ordinals[i]
	}
	return fmt.Sprintf("slot%d", i+1)
}

// SortedKeys returns all keys sorted, for deterministic dumps.
func (p *Props) SortedKeys() []string {
	out := append([]string(nil), p.keys...)
	sort.Strings(out)
	return out
}
