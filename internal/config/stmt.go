package config

import (
	"fmt"
	"strconv"
	"strings"
)

// StmtCatalog is the parsed stmt_db.toml: named SQL statements grouped in
// sections per transaction ("the framework has decoupled the SQL
// statements, new workload can be readily incorporated by adding the
// statements in stmt_db.toml", paper §II).
type StmtCatalog struct {
	sections map[string]map[string]string
	order    []string
}

// ParseStmtTOML parses the TOML subset the statement catalog uses:
// [section] headers, key = "value" string pairs (single-line, basic
// strings with \" and \\ escapes), and '#' comments.
func ParseStmtTOML(src string) (*StmtCatalog, error) {
	cat := &StmtCatalog{sections: make(map[string]map[string]string)}
	section := ""
	for lineNo, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if strings.HasPrefix(line, "[") {
			if !strings.HasSuffix(line, "]") {
				return nil, fmt.Errorf("config: line %d: malformed section %q", lineNo+1, line)
			}
			section = strings.TrimSpace(line[1 : len(line)-1])
			if section == "" {
				return nil, fmt.Errorf("config: line %d: empty section name", lineNo+1)
			}
			if _, dup := cat.sections[section]; !dup {
				cat.sections[section] = make(map[string]string)
				cat.order = append(cat.order, section)
			}
			continue
		}
		eq := strings.IndexByte(line, '=')
		if eq <= 0 {
			return nil, fmt.Errorf("config: line %d: expected key = \"value\", got %q", lineNo+1, line)
		}
		if section == "" {
			return nil, fmt.Errorf("config: line %d: key outside any [section]", lineNo+1)
		}
		key := strings.TrimSpace(line[:eq])
		valRaw := strings.TrimSpace(line[eq+1:])
		val, err := unquoteTOML(valRaw)
		if err != nil {
			return nil, fmt.Errorf("config: line %d: %v", lineNo+1, err)
		}
		cat.sections[section][key] = val
	}
	return cat, nil
}

func unquoteTOML(s string) (string, error) {
	if len(s) < 2 || s[0] != '"' || s[len(s)-1] != '"' {
		return "", fmt.Errorf("value %q is not a basic string", s)
	}
	// TOML basic strings share escape syntax with Go for the subset we
	// accept; strconv handles \" and \\ and rejects stray quotes.
	out, err := strconv.Unquote(s)
	if err != nil {
		return "", fmt.Errorf("bad string %s: %v", s, err)
	}
	return out, nil
}

// Sections returns section names in declaration order.
func (c *StmtCatalog) Sections() []string { return append([]string(nil), c.order...) }

// Stmt returns the statement text under section/key.
func (c *StmtCatalog) Stmt(section, key string) (string, bool) {
	sec, ok := c.sections[section]
	if !ok {
		return "", false
	}
	v, ok := sec[key]
	return v, ok
}

// MustStmt is Stmt that panics when missing (setup code).
func (c *StmtCatalog) MustStmt(section, key string) string {
	v, ok := c.Stmt(section, key)
	if !ok {
		panic(fmt.Sprintf("config: no statement %s.%s", section, key))
	}
	return v
}

// SectionStmts returns a copy of one section's statements.
func (c *StmtCatalog) SectionStmts(section string) map[string]string {
	out := make(map[string]string)
	for k, v := range c.sections[section] {
		out[k] = v
	}
	return out
}

// DefaultStmtDB is the built-in stmt_db.toml content holding the paper's
// Table II statements. Deployments may override it with a user file.
const DefaultStmtDB = `# CloudyBench statement catalog (paper Table II)

[t1_new_orderline]
insert = "INSERT INTO orderline VALUES (DEFAULT, ?, ?, ?, ?)"

[t2_order_payment]
select_order    = "SELECT O_ID, O_C_ID, O_TOTALAMOUNT, O_UPDATEDDATE FROM orders WHERE O_ID = ?"
update_order    = "UPDATE orders SET O_UPDATEDDATE = ?, O_STATUS = 'PAID' WHERE O_ID = ?"
update_customer = "UPDATE customer SET C_CREDIT = C_CREDIT + ?, C_UPDATEDDATE = ? WHERE C_ID = ?"

[t3_order_status]
select = "SELECT O_ID, O_DATE, O_STATUS FROM orders WHERE O_ID = ?"

[t4_orderline_deletion]
delete = "DELETE FROM orderline WHERE OL_ID = ?"
`
