// Package patterns generates the elasticity and multi-tenancy workload
// shapes of paper §II-C and §II-D.
//
// Elasticity patterns are concurrency sequences over fixed-length time
// slots, expressed as proportions of τ — the concurrency at which the
// tested database saturates. The paper's four basic shapes:
//
//	(a) single peak : (0, 100%, 0)        — e.g. an ETL maintenance job
//	(b) large spike : (10%, 80%, 10%)     — ordering a hot-selling product
//	(c) single valley: (40%, 20%, 40%)    — declined sales on price change
//	(d) zero valley : (50%, 0, 50%)       — out of stock shortly
//
// Multi-tenancy patterns assign each tenant its own slot sequence:
// high/low contention run all tenants together above/below the resource
// threshold; staggered high/low run them one-at-a-time.
package patterns

import (
	"fmt"
	"math"
	"time"

	"cloudybench/internal/rng"
)

// Elastic is one elasticity pattern: per-slot proportions of τ.
type Elastic struct {
	Name        string
	Proportions []float64
}

// The paper's four basic elasticity patterns with their canonical
// proportions (§II-C: "we generate the basic patterns in the following
// typical proportions").
var (
	SinglePeak   = Elastic{Name: "single-peak", Proportions: []float64{0, 1.00, 0}}
	LargeSpike   = Elastic{Name: "large-spike", Proportions: []float64{0.10, 0.80, 0.10}}
	SingleValley = Elastic{Name: "single-valley", Proportions: []float64{0.40, 0.20, 0.40}}
	ZeroValley   = Elastic{Name: "zero-valley", Proportions: []float64{0.50, 0, 0.50}}
)

// ElasticPatterns returns the four basic patterns in paper order.
func ElasticPatterns() []Elastic {
	return []Elastic{SinglePeak, LargeSpike, SingleValley, ZeroValley}
}

// Concurrency materializes the pattern for a saturation concurrency τ,
// returning the worker count per slot. Values round half away from zero;
// for instance τ=110 yields (0,110,0), (11,88,11), (44,22,44), (55,0,55).
func (e Elastic) Concurrency(tau int) []int {
	out := make([]int, len(e.Proportions))
	for i, p := range e.Proportions {
		out[i] = int(math.Round(p * float64(tau)))
	}
	return out
}

// Slots returns the number of time slots.
func (e Elastic) Slots() int { return len(e.Proportions) }

// WithPareto returns an n-slot pattern whose proportions follow the Pareto
// decay — the paper's default when the user does not specify proportions.
func WithPareto(name string, n int, alpha float64) Elastic {
	return Elastic{Name: name, Proportions: rng.ParetoProportions(n, alpha)}
}

// Custom builds a pattern from explicit proportions, validating range.
func Custom(name string, proportions []float64) (Elastic, error) {
	if len(proportions) == 0 {
		return Elastic{}, fmt.Errorf("patterns: %s has no slots", name)
	}
	for _, p := range proportions {
		if p < 0 || p > 1 {
			return Elastic{}, fmt.Errorf("patterns: %s proportion %v outside [0,1]", name, p)
		}
	}
	return Elastic{Name: name, Proportions: proportions}, nil
}

// Tenancy is one multi-tenancy pattern: per-tenant concurrency sequences
// plus the execution mode (parallel for contention patterns, sequential
// for staggered ones).
type Tenancy struct {
	Name string
	// PerTenant[t][s] is tenant t's concurrency in slot s.
	PerTenant [][]int
	// Sequential indicates tenants' traffic arrives one-at-a-time
	// (staggered patterns); the slot boundaries already encode it here,
	// retained for reporting.
	Sequential bool
	// OverThreshold marks patterns whose total demand exceeds the
	// resource threshold (contention).
	OverThreshold bool
}

// TenancyKind selects one of the four basic multi-tenancy patterns.
type TenancyKind string

// The four basic multi-tenancy patterns (paper Figure 4).
const (
	HighContention TenancyKind = "high-contention"
	LowContention  TenancyKind = "low-contention"
	StaggeredHigh  TenancyKind = "staggered-high"
	StaggeredLow   TenancyKind = "staggered-low"
)

// TenancyKinds lists all four in paper order.
var TenancyKinds = []TenancyKind{HighContention, LowContention, StaggeredHigh, StaggeredLow}

// PaperTenancy materializes the paper's exact 3-tenant experiments
// (§III-D): pattern (a) {(264,264,264),(99,99,99),(33,33,33)};
// (b) {(40,40,40),(30,30,30),(10,10,10)}; (c) {(363,0,0),(0,429,0),
// (0,0,396)}; (d) {(10,0,0),(0,20,0),(0,0,30)}.
func PaperTenancy(kind TenancyKind) Tenancy {
	switch kind {
	case HighContention:
		return Tenancy{
			Name:          string(kind),
			PerTenant:     [][]int{{264, 264, 264}, {99, 99, 99}, {33, 33, 33}},
			OverThreshold: true,
		}
	case LowContention:
		return Tenancy{
			Name:      string(kind),
			PerTenant: [][]int{{40, 40, 40}, {30, 30, 30}, {10, 10, 10}},
		}
	case StaggeredHigh:
		return Tenancy{
			Name:          string(kind),
			PerTenant:     [][]int{{363, 0, 0}, {0, 429, 0}, {0, 0, 396}},
			Sequential:    true,
			OverThreshold: true,
		}
	case StaggeredLow:
		return Tenancy{
			Name:       string(kind),
			PerTenant:  [][]int{{10, 0, 0}, {0, 20, 0}, {0, 0, 30}},
			Sequential: true,
		}
	default:
		panic("patterns: unknown tenancy kind " + string(kind))
	}
}

// GenerateTenancy builds a pattern for arbitrary tenant ratios following
// §II-D's generation method: tenant t's base concurrency is ratio[t]*τ per
// slot; contention patterns add δ to every slot; staggered patterns place
// each tenant in its own slot (adding 100%*τ for the high variant).
func GenerateTenancy(kind TenancyKind, tau int, ratios []float64, delta int) (Tenancy, error) {
	n := len(ratios)
	if n == 0 {
		return Tenancy{}, fmt.Errorf("patterns: no tenant ratios")
	}
	per := make([][]int, n)
	switch kind {
	case HighContention, LowContention:
		for t, r := range ratios {
			row := make([]int, n)
			for s := range row {
				c := int(math.Round(r * float64(tau)))
				if kind == HighContention {
					c += delta
				} else if c > delta && delta > 0 {
					c -= delta
				}
				row[s] = c
			}
			per[t] = row
		}
	case StaggeredHigh, StaggeredLow:
		for t, r := range ratios {
			row := make([]int, n)
			c := int(math.Round(r * float64(tau)))
			if kind == StaggeredHigh {
				c += tau // "by adding 100%*τ to the tenants"
			}
			row[t] = c
			per[t] = row
		}
	default:
		return Tenancy{}, fmt.Errorf("patterns: unknown kind %q", kind)
	}
	return Tenancy{
		Name:          string(kind),
		PerTenant:     per,
		Sequential:    kind == StaggeredHigh || kind == StaggeredLow,
		OverThreshold: kind == HighContention || kind == StaggeredHigh,
	}, nil
}

// Tenants returns the tenant count.
func (t Tenancy) Tenants() int { return len(t.PerTenant) }

// Slots returns the slot count.
func (t Tenancy) Slots() int {
	if len(t.PerTenant) == 0 {
		return 0
	}
	return len(t.PerTenant[0])
}

// TotalPerSlot returns the summed concurrency per slot (the black "actual
// total workload" line of Figure 4).
func (t Tenancy) TotalPerSlot() []int {
	out := make([]int, t.Slots())
	for _, row := range t.PerTenant {
		for s, c := range row {
			out[s] += c
		}
	}
	return out
}

// Schedule pairs a pattern with its slot duration.
type Schedule struct {
	SlotLength time.Duration
}

// SlotStart returns when slot s begins.
func (sc Schedule) SlotStart(s int) time.Duration {
	return time.Duration(s) * sc.SlotLength
}

// Total returns the schedule length for n slots.
func (sc Schedule) Total(n int) time.Duration {
	return time.Duration(n) * sc.SlotLength
}
