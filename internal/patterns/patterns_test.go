package patterns

import (
	"math"
	"testing"
	"time"
)

func TestElasticCanonicalConcurrency(t *testing.T) {
	// Paper §III-C with τ=110: (0,110,0), (11,88,11), (44,22,44), (55,0,55).
	cases := []struct {
		p    Elastic
		want []int
	}{
		{SinglePeak, []int{0, 110, 0}},
		{LargeSpike, []int{11, 88, 11}},
		{SingleValley, []int{44, 22, 44}},
		{ZeroValley, []int{55, 0, 55}},
	}
	for _, c := range cases {
		got := c.p.Concurrency(110)
		for i := range c.want {
			if got[i] != c.want[i] {
				t.Errorf("%s: concurrency = %v, want %v", c.p.Name, got, c.want)
			}
		}
		if c.p.Slots() != 3 {
			t.Errorf("%s slots = %d", c.p.Name, c.p.Slots())
		}
	}
	if len(ElasticPatterns()) != 4 {
		t.Fatal("four basic patterns expected")
	}
}

func TestWithParetoDefaults(t *testing.T) {
	e := WithPareto("default", 4, 0)
	if len(e.Proportions) != 4 {
		t.Fatal("slot count")
	}
	var sum float64
	for i, p := range e.Proportions {
		sum += p
		if i > 0 && p >= e.Proportions[i-1] {
			t.Fatal("pareto proportions must decay")
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("sum = %v", sum)
	}
}

func TestCustomValidation(t *testing.T) {
	if _, err := Custom("x", nil); err == nil {
		t.Fatal("empty proportions accepted")
	}
	if _, err := Custom("x", []float64{0.5, 1.5}); err == nil {
		t.Fatal("proportion > 1 accepted")
	}
	e, err := Custom("x", []float64{0.2, 0.8})
	if err != nil || e.Concurrency(100)[1] != 80 {
		t.Fatalf("%v %v", e, err)
	}
}

func TestPaperTenancyShapes(t *testing.T) {
	a := PaperTenancy(HighContention)
	if a.Tenants() != 3 || a.Slots() != 3 || !a.OverThreshold || a.Sequential {
		t.Fatalf("pattern a: %+v", a)
	}
	if got := a.TotalPerSlot(); got[0] != 264+99+33 {
		t.Fatalf("pattern a total = %v", got)
	}
	d := PaperTenancy(StaggeredLow)
	if !d.Sequential || d.OverThreshold {
		t.Fatalf("pattern d flags: %+v", d)
	}
	// Staggered: exactly one active tenant per slot.
	for s := 0; s < d.Slots(); s++ {
		active := 0
		for _, row := range d.PerTenant {
			if row[s] > 0 {
				active++
			}
		}
		if active != 1 {
			t.Fatalf("staggered slot %d has %d active tenants", s, active)
		}
	}
	if got := d.TotalPerSlot(); got[0] != 10 || got[1] != 20 || got[2] != 30 {
		t.Fatalf("pattern d totals = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown kind did not panic")
		}
	}()
	PaperTenancy("nope")
}

func TestGenerateTenancyFollowsPaperMethod(t *testing.T) {
	// §II-D example ratios 10%/30%/60% with τ=100.
	ratios := []float64{0.1, 0.3, 0.6}
	b, err := GenerateTenancy(LowContention, 100, ratios, 0)
	if err != nil {
		t.Fatal(err)
	}
	if b.PerTenant[0][0] != 10 || b.PerTenant[1][1] != 30 || b.PerTenant[2][2] != 60 {
		t.Fatalf("low contention: %v", b.PerTenant)
	}
	a, _ := GenerateTenancy(HighContention, 100, ratios, 50)
	if a.PerTenant[0][0] != 60 {
		t.Fatalf("high contention += delta: %v", a.PerTenant)
	}
	if !a.OverThreshold {
		t.Fatal("high contention must be over threshold")
	}
	// Staggered low: §II-D tenants (10%τ,0,0),(0,20%? ...) — our ratios
	// place tenant t in slot t.
	d, _ := GenerateTenancy(StaggeredLow, 100, []float64{0.1, 0.2, 0.3}, 0)
	want := [][]int{{10, 0, 0}, {0, 20, 0}, {0, 0, 30}}
	for i := range want {
		for j := range want[i] {
			if d.PerTenant[i][j] != want[i][j] {
				t.Fatalf("staggered low = %v", d.PerTenant)
			}
		}
	}
	// Staggered high adds 100%τ.
	c, _ := GenerateTenancy(StaggeredHigh, 100, []float64{0.1, 0.2, 0.3}, 0)
	if c.PerTenant[0][0] != 110 || c.PerTenant[1][1] != 120 {
		t.Fatalf("staggered high = %v", c.PerTenant)
	}
	if _, err := GenerateTenancy(HighContention, 100, nil, 0); err == nil {
		t.Fatal("empty ratios accepted")
	}
	if _, err := GenerateTenancy("nope", 100, ratios, 0); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestSchedule(t *testing.T) {
	sc := Schedule{SlotLength: time.Minute}
	if sc.SlotStart(2) != 2*time.Minute || sc.Total(3) != 3*time.Minute {
		t.Fatal("schedule math")
	}
}
