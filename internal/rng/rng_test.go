package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterministicReplay(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if x, y := a.Int63n(1<<40), b.Int63n(1<<40); x != y {
			t.Fatalf("streams diverged at %d: %d vs %d", i, x, y)
		}
	}
}

func TestChildOfIsPureFunction(t *testing.T) {
	a := ChildOf(7, "worker-3")
	b := ChildOf(7, "worker-3")
	c := ChildOf(7, "worker-4")
	ax, bx, cx := a.Int63n(1<<50), b.Int63n(1<<50), c.Int63n(1<<50)
	if ax != bx {
		t.Fatalf("same (seed,name) produced different streams: %d vs %d", ax, bx)
	}
	if ax == cx {
		t.Fatal("different names produced identical first draw (suspicious)")
	}
}

func TestIntRangeInclusive(t *testing.T) {
	s := New(1)
	seenLo, seenHi := false, false
	for i := 0; i < 10000; i++ {
		v := s.IntRange(5, 8)
		if v < 5 || v > 8 {
			t.Fatalf("IntRange(5,8) = %d out of range", v)
		}
		if v == 5 {
			seenLo = true
		}
		if v == 8 {
			seenHi = true
		}
	}
	if !seenLo || !seenHi {
		t.Fatal("IntRange never produced an endpoint in 10k draws")
	}
}

func TestUniformCoversKeySpace(t *testing.T) {
	d := &Uniform{Src: New(3)}
	counts := make(map[int64]int)
	const n, draws = 100, 100000
	for i := 0; i < draws; i++ {
		k := d.Next(n)
		if k < 1 || k > n {
			t.Fatalf("uniform key %d out of [1,%d]", k, n)
		}
		counts[k]++
	}
	// Chi-squared-ish sanity: every key should appear within 3x of expectation.
	want := float64(draws) / n
	for k, c := range counts {
		if float64(c) < want/3 || float64(c) > want*3 {
			t.Fatalf("key %d count %d wildly off expectation %.0f", k, c, want)
		}
	}
}

func TestLatestConcentratesOnFreshKeys(t *testing.T) {
	d := &Latest{Src: New(4), K: 10}
	const max = 100000
	for i := 0; i < 10000; i++ {
		k := d.Next(max)
		if k <= max-10 || k > max {
			t.Fatalf("latest-10 produced key %d outside the 10 freshest", k)
		}
	}
}

func TestLatestSmallKeySpace(t *testing.T) {
	d := &Latest{Src: New(5), K: 10}
	for i := 0; i < 100; i++ {
		k := d.Next(3) // fewer keys than K
		if k < 1 || k > 3 {
			t.Fatalf("latest on tiny space produced %d", k)
		}
	}
	if got := d.Next(0); got != 1 {
		t.Fatalf("latest on empty space = %d, want 1", got)
	}
}

func TestZipfIsSkewed(t *testing.T) {
	d := &Zipf{Src: New(6), Theta: 1.2}
	const max, draws = 1000, 50000
	counts := make([]int, max+1)
	for i := 0; i < draws; i++ {
		k := d.Next(max)
		if k < 1 || k > max {
			t.Fatalf("zipf key %d out of range", k)
		}
		counts[k]++
	}
	topShare := float64(counts[1]+counts[2]+counts[3]) / draws
	if topShare < 0.2 {
		t.Fatalf("zipf top-3 share = %.3f, want skew >= 0.2", topShare)
	}
}

func TestPickWeighted(t *testing.T) {
	s := New(7)
	counts := [3]int{}
	for i := 0; i < 30000; i++ {
		counts[s.PickWeighted([]float64{1, 2, 7})]++
	}
	if counts[2] < counts[1] || counts[1] < counts[0] {
		t.Fatalf("weighted pick ordering wrong: %v", counts)
	}
	frac := float64(counts[2]) / 30000
	if math.Abs(frac-0.7) > 0.05 {
		t.Fatalf("weight-7 share = %.3f, want ~0.7", frac)
	}
}

func TestPickWeightedPanicsOnBadWeights(t *testing.T) {
	s := New(8)
	for _, weights := range [][]float64{{0, 0}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("PickWeighted(%v) did not panic", weights)
				}
			}()
			s.PickWeighted(weights)
		}()
	}
}

func TestParetoProportionsSumToOneAndDecay(t *testing.T) {
	p := ParetoProportions(5, 0)
	var sum float64
	for i, v := range p {
		sum += v
		if i > 0 && v >= p[i-1] {
			t.Fatalf("proportions not strictly decaying: %v", p)
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("proportions sum = %v, want 1", sum)
	}
	if ParetoProportions(0, 1) != nil {
		t.Fatal("n=0 should return nil")
	}
}

func TestLettersFormat(t *testing.T) {
	s := New(9)
	str := s.Letters(32)
	if len(str) != 32 {
		t.Fatalf("len = %d, want 32", len(str))
	}
	for _, c := range str {
		if c < 'a' || c > 'z' {
			t.Fatalf("unexpected character %q", c)
		}
	}
}

func TestPropertyDistKeysAlwaysInRange(t *testing.T) {
	check := func(seed int64, maxRaw uint16) bool {
		max := int64(maxRaw%5000) + 1
		dists := []Dist{
			&Uniform{Src: New(seed)},
			&Latest{Src: New(seed), K: 10},
			&Zipf{Src: New(seed), Theta: 1.1},
		}
		for _, d := range dists {
			for i := 0; i < 50; i++ {
				k := d.Next(max)
				if k < 1 || k > max {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
