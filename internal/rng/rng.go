// Package rng provides deterministic random sources and the access
// distributions used by CloudyBench workloads: uniform and latest-k
// substitution-parameter choice (paper §II-B), Zipf-skewed access, and the
// Pareto proportions that seed default elasticity patterns (paper §II-C).
//
// Every source derives from an explicit seed so that simulation runs replay
// identically. Child sources are split off by name, letting each worker,
// tenant, or generator own an independent stream without coordination.
package rng

import (
	"hash/fnv"
	"math"
	"math/rand"
)

// Source is a deterministic random stream.
type Source struct {
	r *rand.Rand
}

// New returns a source seeded with the given seed.
func New(seed int64) *Source {
	return &Source{r: rand.New(rand.NewSource(seed))}
}

// Child derives an independent source from this source's seed and a name.
// The derivation is a pure function of (seed, name), so the same split
// always yields the same stream.
func (s *Source) Child(name string) *Source {
	h := fnv.New64a()
	h.Write([]byte(name))
	return New(int64(h.Sum64()) ^ s.r.Int63())
}

// ChildOf derives a source from a seed and a name without consuming any
// randomness from a parent stream.
func ChildOf(seed int64, name string) *Source {
	h := fnv.New64a()
	h.Write([]byte(name))
	return New(seed ^ int64(h.Sum64()))
}

// Intn returns a uniform integer in [0, n). n must be positive.
func (s *Source) Intn(n int) int { return s.r.Intn(n) }

// Int63n returns a uniform int64 in [0, n). n must be positive.
func (s *Source) Int63n(n int64) int64 { return s.r.Int63n(n) }

// IntRange returns a uniform integer in [lo, hi] inclusive.
func (s *Source) IntRange(lo, hi int64) int64 {
	if hi < lo {
		panic("rng: IntRange with hi < lo")
	}
	return lo + s.r.Int63n(hi-lo+1)
}

// Float64 returns a uniform float in [0, 1).
func (s *Source) Float64() float64 { return s.r.Float64() }

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool { return s.r.Float64() < p }

// Perm returns a random permutation of [0, n).
func (s *Source) Perm(n int) []int { return s.r.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements using swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) { s.r.Shuffle(n, swap) }

// Letters returns a random fixed-length string over [a-z], used by the data
// generator for filler columns.
func (s *Source) Letters(n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + s.r.Intn(26))
	}
	return string(b)
}

// PickWeighted returns an index in [0, len(weights)) chosen with probability
// proportional to weights[i]. All weights must be non-negative with a
// positive sum.
func (s *Source) PickWeighted(weights []float64) int {
	var sum float64
	for _, w := range weights {
		if w < 0 {
			panic("rng: negative weight")
		}
		sum += w
	}
	if sum <= 0 {
		panic("rng: weights sum to zero")
	}
	x := s.r.Float64() * sum
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Exp returns an exponentially distributed duration-like value with the
// given mean (used for arrival jitter).
func (s *Source) Exp(mean float64) float64 { return s.r.ExpFloat64() * mean }

// Dist chooses substitution parameters over a key space [1, n]. It is the
// interface behind the paper's uniform and latest-k access distributions.
type Dist interface {
	// Next returns a key in [1, max] for a key space that currently holds
	// max keys (max grows as the workload inserts).
	Next(max int64) int64
	// Name identifies the distribution for reports and configs.
	Name() string
}

// Uniform chooses keys uniformly over the whole key space.
type Uniform struct{ Src *Source }

// Next implements Dist.
func (u *Uniform) Next(max int64) int64 {
	if max <= 0 {
		return 1
	}
	return 1 + u.Src.Int63n(max)
}

// Name implements Dist.
func (u *Uniform) Name() string { return "uniform" }

// Latest implements the paper's latest-k distribution: accesses concentrate
// on the K most recently inserted keys ("the more skewed the distribution
// is, the more likely the fresh data is read"). K=10 gives the latest-10
// pattern of §II-B.
type Latest struct {
	Src *Source
	K   int64
}

// Next implements Dist.
func (l *Latest) Next(max int64) int64 {
	if max <= 0 {
		return 1
	}
	k := l.K
	if k <= 0 {
		k = 10
	}
	if k > max {
		k = max
	}
	return max - l.Src.Int63n(k)
}

// Name implements Dist.
func (l *Latest) Name() string { return "latest" }

// Zipf chooses keys with a Zipfian frequency skew, the textbook model for
// hot-key access in OLTP (paper §II-B cites skewed realistic access).
type Zipf struct {
	Src   *Source
	Theta float64 // skew, typically 0.99; must be > 1 for rand.Zipf, remapped below
	zipf  *rand.Zipf
	max   int64
}

// Next implements Dist.
func (z *Zipf) Next(max int64) int64 {
	if max <= 0 {
		return 1
	}
	if z.zipf == nil || z.max != max {
		sExp := z.Theta
		if sExp <= 1 {
			sExp = 1.01 // rand.Zipf requires s > 1
		}
		z.zipf = newZipf(z.Src, sExp, uint64(max))
		z.max = max
	}
	return 1 + int64(z.zipf.Uint64())
}

func newZipf(src *Source, s float64, imax uint64) *rand.Zipf {
	return rand.NewZipf(src.r, s, 1, imax-1)
}

// Name implements Dist.
func (z *Zipf) Name() string { return "zipf" }

// ParetoProportions returns n proportions that follow a Pareto (80/20-style)
// decay and sum to 1. CloudyBench uses these as the default slot proportions
// for elasticity patterns when the user does not specify them (§II-C).
func ParetoProportions(n int, alpha float64) []float64 {
	if n <= 0 {
		return nil
	}
	if alpha <= 0 {
		alpha = 1.16 // classic 80/20 shape
	}
	out := make([]float64, n)
	var sum float64
	for i := 0; i < n; i++ {
		out[i] = 1 / math.Pow(float64(i+1), alpha)
		sum += out[i]
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}
