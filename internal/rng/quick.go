package rng

// Quick is a tiny splitmix64 PRNG for deterministic per-row value
// derivation. Data generators materialize millions of synthetic rows on
// demand; seeding a math/rand source per row costs hundreds of
// nanoseconds, while a Quick stream is two multiplications. Quality is
// ample for filler data.
type Quick struct {
	state uint64
}

// QuickOf derives an independent stream from a seed, a table tag, and a
// row id — a pure function, so every materialization of a row is
// identical.
func QuickOf(seed int64, tag uint64, id int64) Quick {
	s := uint64(seed)*0x9E3779B97F4A7C15 ^ tag*0xBF58476D1CE4E5B9 ^ uint64(id)*0x94D049BB133111EB
	q := Quick{state: s}
	q.Next() // decouple from the raw inputs
	return q
}

// Next advances the stream (splitmix64 step).
func (q *Quick) Next() uint64 {
	q.state += 0x9E3779B97F4A7C15
	z := q.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Int63n returns a value in [0, n).
func (q *Quick) Int63n(n int64) int64 {
	if n <= 0 {
		panic("rng: Quick.Int63n with non-positive n")
	}
	return int64(q.Next() % uint64(n))
}

// IntRange returns a value in [lo, hi] inclusive.
func (q *Quick) IntRange(lo, hi int64) int64 {
	if hi < lo {
		panic("rng: Quick.IntRange with hi < lo")
	}
	return lo + q.Int63n(hi-lo+1)
}

// Float64 returns a value in [0, 1).
func (q *Quick) Float64() float64 {
	return float64(q.Next()>>11) / float64(1<<53)
}

// Letters returns a fixed-length lowercase string.
func (q *Quick) Letters(n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + q.Next()%26)
	}
	return string(b)
}
