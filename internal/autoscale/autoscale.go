// Package autoscale implements the serverless scaling policies the paper
// observes on the SUTs (§III-C, Table VI):
//
//   - CDB1: scales up immediately when usage hits a built-in threshold but
//     scales down *gradually* — small steps on a slow cadence — which is why
//     the paper measures 14 s up but 479 s down for the single-peak pattern
//     and attributes CDB1's high elasticity cost to charging during the
//     long descent.
//   - CDB2: on-demand scaling in both directions at a ~30 s cadence with a
//     0.5 vCore floor.
//   - CDB3: capacity-unit (CU) scaling at a ~60 s cadence in 0.25 CU
//     increments, plus pause-and-resume — it scales to zero when idle and
//     cold-starts on the first arriving request.
//
// One Autoscaler type expresses all three through its Config; RDS and CDB4
// simply run without one (fixed provisioning).
package autoscale

import (
	"time"

	"cloudybench/internal/node"
	"cloudybench/internal/sim"
)

// UpMode selects the scale-up behaviour.
type UpMode int

// Scale-up modes.
const (
	// UpDouble doubles allocation each tick under pressure (threshold
	// triggered, converges in a few ticks — CDB1-style "immediate").
	UpDouble UpMode = iota
	// UpToDemand sets allocation to the measured demand each tick
	// (on-demand scaling, CDB2/CDB3).
	UpToDemand
)

// Config parameterizes a policy.
type Config struct {
	MinVCores float64
	MaxVCores float64
	// Granularity rounds allocations (0.25 for CDB3's quarter-CU, 0.5 for
	// CDB2's half-vCore; 0 = no rounding).
	Granularity float64
	// MemBytesPerCore scales buffer memory with compute.
	MemBytesPerCore int64
	// Tick is the evaluation cadence.
	Tick time.Duration
	// UpThreshold is the utilization that triggers scale-up.
	UpThreshold float64
	// DownThreshold is the utilization below which down-scaling begins.
	DownThreshold float64
	Up            UpMode
	// GradualDown, when set, steps down by DownStep every DownEvery
	// (default Tick) instead of dropping straight to demand — CDB1's slow
	// descent, which takes ~8 minutes from full size (Table VI's 479 s).
	GradualDown bool
	DownStep    float64
	DownEvery   time.Duration
	// DownHold is how long utilization must stay below DownThreshold
	// before any down-scaling starts.
	DownHold time.Duration
	// PauseAfterIdle scales to zero and pauses the node after this long
	// with no demand (0 disables — only CDB3 pauses).
	PauseAfterIdle time.Duration
	// ResumeDelay is the cold-start time when a request arrives at a
	// paused node.
	ResumeDelay time.Duration
}

// Autoscaler drives one node's allocation from its observed utilization.
type Autoscaler struct {
	s    *sim.Sim
	n    *node.Node
	cfg  Config
	stop bool

	lastUsedInt float64
	lastTick    time.Duration
	lowSince    time.Duration
	idleSince   time.Duration
	lastDown    time.Duration
	resuming    bool
	demandCores float64 // average used cores over the last tick window

	scaleEvents int
}

// New starts an autoscaler for the node and registers the resume hook.
func New(s *sim.Sim, n *node.Node, cfg Config) *Autoscaler {
	if cfg.Tick <= 0 {
		cfg.Tick = 15 * time.Second
	}
	if cfg.UpThreshold <= 0 {
		cfg.UpThreshold = 0.8
	}
	if cfg.DownThreshold <= 0 {
		cfg.DownThreshold = 0.5
	}
	a := &Autoscaler{s: s, n: n, cfg: cfg, lowSince: -1, idleSince: -1}
	n.OnResumeNeeded = a.RequestResume
	s.Go("autoscaler/"+n.Name, a.loop)
	return a
}

// Stop terminates the background loop at its next tick.
func (a *Autoscaler) Stop() { a.stop = true }

// ScaleEvents returns how many allocation changes the policy made.
func (a *Autoscaler) ScaleEvents() int { return a.scaleEvents }

func (a *Autoscaler) round(v float64) float64 {
	if a.cfg.Granularity > 0 {
		steps := int(v/a.cfg.Granularity + 0.999999)
		v = float64(steps) * a.cfg.Granularity
	}
	if v < a.cfg.MinVCores {
		v = a.cfg.MinVCores
	}
	if v > a.cfg.MaxVCores {
		v = a.cfg.MaxVCores
	}
	return v
}

func (a *Autoscaler) apply(p *sim.Proc, cores float64) {
	if cores == a.n.VCores() {
		return
	}
	at := a.s.Elapsed()
	a.n.SetVCores(at, cores)
	if a.cfg.MemBytesPerCore > 0 {
		a.n.SetMemoryBytes(p, at, int64(cores*float64(a.cfg.MemBytesPerCore)))
	}
	a.scaleEvents++
}

// utilization returns (avg utilization over the window, current waiters).
func (a *Autoscaler) utilization() (float64, int) {
	usedInt, _ := a.n.CPU().Integrals()
	now := a.s.Elapsed()
	window := (now - a.lastTick).Seconds()
	var util float64
	capMilli := float64(a.n.CPU().Capacity())
	if window > 0 && capMilli > 0 {
		util = (usedInt - a.lastUsedInt) / window / capMilli
	}
	avgUsed := 0.0
	if window > 0 {
		avgUsed = (usedInt - a.lastUsedInt) / window / node.MilliPerCore
	}
	a.lastUsedInt = usedInt
	a.lastTick = now
	a.demandCores = avgUsed
	return util, a.n.CPU().Waiting()
}

func (a *Autoscaler) loop(p *sim.Proc) {
	a.lastTick = a.s.Elapsed()
	for !a.stop {
		p.Sleep(a.cfg.Tick)
		if a.stop {
			return
		}
		if a.n.State() == node.Paused || a.resuming {
			a.utilization() // keep the observation window from spanning the pause
			continue
		}
		now := a.s.Elapsed()
		util, waiting := a.utilization()
		cores := a.n.VCores()

		pressured := util >= a.cfg.UpThreshold || waiting > 0
		switch {
		case pressured:
			a.lowSince = -1
			a.idleSince = -1
			var target float64
			if a.cfg.Up == UpDouble {
				target = cores * 2
				if target == 0 {
					target = a.cfg.MinVCores
				}
			} else {
				// Demand-proportional: aim for ~70% utilization of the
				// new allocation. Hard saturation (queued work) doubles,
				// since observed usage is capacity-clamped and says
				// nothing about true demand; the band then settles the
				// allocation back onto measured demand.
				target = a.demandCores / 0.7
				if waiting > 0 && target < cores*2 {
					target = cores * 2
				}
			}
			a.apply(p, a.round(target))

		case util < a.cfg.DownThreshold:
			if a.lowSince < 0 {
				a.lowSince = now
			}
			idle := a.demandCores < 0.01 && waiting == 0
			if idle {
				if a.idleSince < 0 {
					a.idleSince = now
				}
			} else {
				a.idleSince = -1
			}
			// Pause-and-resume takes precedence once idle long enough.
			if a.cfg.PauseAfterIdle > 0 && idle && now-a.idleSince >= a.cfg.PauseAfterIdle {
				a.pause(p)
				continue
			}
			if now-a.lowSince < a.cfg.DownHold {
				continue
			}
			if a.cfg.GradualDown {
				every := a.cfg.DownEvery
				if every <= 0 {
					every = a.cfg.Tick
				}
				if now-a.lastDown >= every {
					a.apply(p, a.round(cores-a.cfg.DownStep))
					a.lastDown = now
				}
			} else {
				a.apply(p, a.round(a.demandCores/0.7))
			}

		default:
			a.lowSince = -1
			a.idleSince = -1
		}
	}
}

func (a *Autoscaler) pause(p *sim.Proc) {
	a.n.SetVCores(a.s.Elapsed(), 0)
	if a.cfg.MemBytesPerCore > 0 {
		a.n.SetMemoryBytes(p, a.s.Elapsed(), 0)
	}
	a.n.SetState(node.Paused)
	a.scaleEvents++
	a.lowSince = -1
	a.idleSince = -1
}

// RequestResume is invoked by the node when a request arrives while paused.
// It cold-starts the node after ResumeDelay at the minimum allocation.
func (a *Autoscaler) RequestResume() {
	if a.resuming || a.n.State() != node.Paused {
		return
	}
	a.resuming = true
	a.s.Go("resume/"+a.n.Name, func(p *sim.Proc) {
		p.Sleep(a.cfg.ResumeDelay)
		at := a.s.Elapsed()
		min := a.cfg.MinVCores
		if min <= 0 {
			min = a.cfg.Granularity
		}
		if min <= 0 {
			min = 0.25
		}
		a.n.SetVCores(at, min)
		if a.cfg.MemBytesPerCore > 0 {
			a.n.SetMemoryBytes(p, at, int64(min*float64(a.cfg.MemBytesPerCore)))
		}
		a.n.SetState(node.Running)
		a.scaleEvents++
		a.resuming = false
	})
}
