package autoscale

import (
	"testing"
	"time"

	"cloudybench/internal/node"
	"cloudybench/internal/sim"
)

var epoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func makeNode(s *sim.Sim, vcores float64) *node.Node {
	return node.New(s, node.Config{
		Name: "n", VCores: vcores, MemoryBytes: 1 << 30,
		OpCPU: time.Millisecond, TxnCPU: 0,
	}, node.NullBackend{})
}

// drive runs `workers` closed-loop CPU burners for d, then stops.
func drive(s *sim.Sim, n *node.Node, workers int, d time.Duration) *sim.Group {
	g := sim.NewGroup(s)
	for i := 0; i < workers; i++ {
		g.Go("w", func(p *sim.Proc) {
			start := p.Elapsed()
			for p.Elapsed()-start < d {
				n.ChargeCPU(p, time.Millisecond)
			}
		})
	}
	return g
}

func TestScaleUpUnderPressure(t *testing.T) {
	s := sim.New(epoch)
	n := makeNode(s, 1)
	a := New(s, n, Config{
		MinVCores: 1, MaxVCores: 4, Tick: 2 * time.Second, Up: UpDouble,
	})
	drive(s, n, 16, 30*time.Second)
	s.Go("stopper", func(p *sim.Proc) {
		p.Sleep(31 * time.Second)
		a.Stop()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if n.VCores() != 4 {
		t.Fatalf("vcores after sustained pressure = %v, want 4 (max)", n.VCores())
	}
	if a.ScaleEvents() == 0 {
		t.Fatal("no scale events recorded")
	}
}

func TestGradualDownIsSlow(t *testing.T) {
	s := sim.New(epoch)
	n := makeNode(s, 4)
	a := New(s, n, Config{
		MinVCores: 1, MaxVCores: 4, Tick: 5 * time.Second,
		GradualDown: true, DownStep: 0.25, DownHold: 10 * time.Second,
	})
	// No load at all: utilization 0 from the start.
	s.Go("stopper", func(p *sim.Proc) {
		p.Sleep(3 * time.Minute)
		a.Stop()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if n.VCores() != 1 {
		t.Fatalf("vcores after long idle = %v, want min 1", n.VCores())
	}
	// Gradual: 4 -> 1 in 0.25 steps at 5s cadence (after 10s hold) means
	// the descent alone takes ~60s; check the series was still above 2
	// vCores at t=30s.
	if got := n.Cores.At(30 * time.Second); got <= 2 {
		t.Fatalf("cores at 30s = %v, want > 2 (gradual descent)", got)
	}
}

func TestOnDemandDownIsFast(t *testing.T) {
	s := sim.New(epoch)
	n := makeNode(s, 4)
	a := New(s, n, Config{
		MinVCores: 0.5, MaxVCores: 4, Granularity: 0.5,
		Tick: 30 * time.Second, Up: UpToDemand,
	})
	s.Go("stopper", func(p *sim.Proc) {
		p.Sleep(2 * time.Minute)
		a.Stop()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if n.VCores() != 0.5 {
		t.Fatalf("vcores = %v, want 0.5 floor", n.VCores())
	}
	// Must have dropped within ~1 tick: check at 45s.
	if got := n.Cores.At(45 * time.Second); got != 0.5 {
		t.Fatalf("cores at 45s = %v, want 0.5 (on-demand down)", got)
	}
}

func TestPauseAfterIdleAndResumeOnDemand(t *testing.T) {
	s := sim.New(epoch)
	n := makeNode(s, 1)
	a := New(s, n, Config{
		MinVCores: 0.25, MaxVCores: 4, Granularity: 0.25,
		Tick: 10 * time.Second, Up: UpToDemand,
		PauseAfterIdle: 30 * time.Second, ResumeDelay: time.Second,
	})
	var pausedObserved bool
	var resumedAt time.Duration
	s.Go("client", func(p *sim.Proc) {
		// Idle for 2 minutes: node should pause.
		p.Sleep(2 * time.Minute)
		if n.State() == node.Paused && n.VCores() == 0 {
			pausedObserved = true
		}
		// A request arrives: must cold-start and serve.
		if err := n.AwaitRunning(p); err != nil {
			t.Error(err)
			return
		}
		resumedAt = p.Elapsed()
		a.Stop()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !pausedObserved {
		t.Fatal("node never paused while idle")
	}
	if resumedAt < 2*time.Minute+time.Second {
		t.Fatalf("resume at %v, want >= 2m1s (cold start)", resumedAt)
	}
	if n.State() != node.Running || n.VCores() == 0 {
		t.Fatal("node not running after resume")
	}
}

func TestScaleEventsTrackMemory(t *testing.T) {
	s := sim.New(epoch)
	n := makeNode(s, 1)
	a := New(s, n, Config{
		MinVCores: 1, MaxVCores: 4, Tick: 2 * time.Second, Up: UpDouble,
		MemBytesPerCore: 2 << 30,
	})
	drive(s, n, 16, 20*time.Second)
	s.Go("stopper", func(p *sim.Proc) {
		p.Sleep(21 * time.Second)
		a.Stop()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if n.MemoryBytes() != 8<<30 {
		t.Fatalf("memory = %d, want 8GB at 4 cores", n.MemoryBytes())
	}
	if got := n.Mem.At(25 * time.Second); got != 8 {
		t.Fatalf("mem series = %v GB", got)
	}
}

func TestRoundGranularityAndClamp(t *testing.T) {
	a := &Autoscaler{cfg: Config{MinVCores: 0.5, MaxVCores: 4, Granularity: 0.25}}
	cases := []struct{ in, want float64 }{
		{0.1, 0.5},  // clamped to min
		{0.6, 0.75}, // rounded up to granularity
		{3.9, 4},
		{9, 4}, // clamped to max
		{1.0, 1.0},
	}
	for _, c := range cases {
		if got := a.round(c.in); got != c.want {
			t.Errorf("round(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}
