package evaluator

import (
	"strings"
	"time"

	"cloudybench/internal/cdb"
	"cloudybench/internal/chaos"
	"cloudybench/internal/check"
	"cloudybench/internal/cluster"
	"cloudybench/internal/core"
	"cloudybench/internal/engine"
	"cloudybench/internal/node"
	"cloudybench/internal/sim"
	"cloudybench/internal/storage"
)

// CrashConfig parameterizes one SUT's run through the durability gauntlet:
// steady mixed traffic, node kills at adversarial virtual instants (mid-burst
// with in-flight transactions, torn WAL tails, a replica resync, a repeat
// crash shortly after recovery), and a post-quiesce judgement of the two
// contracts a crash must not break — no acknowledged commit lost, no
// unacknowledged write resurrected.
type CrashConfig struct {
	Kind cdb.Kind
	SF   int
	// Concurrency is the client count (default 12).
	Concurrency int
	// Span is the traffic window the crash schedule is compiled onto
	// (default 20s; see CrashSchedule for the kill instants).
	Span time.Duration
	// Mix defaults to the all-four blend so the log carries inserts,
	// updates, and deletes when the crashes land.
	Mix  core.Mix
	Seed int64
	// Schedule overrides the standard crash schedule (nil =
	// CrashSchedule(Span)).
	Schedule *chaos.Schedule
	// Recovery deliberately breaks every crash recovery in the run (the
	// teeth knobs: skip undo, trust torn tails). Test-only: the durability
	// verdicts must then FAIL, proving the gauntlet bites. Zero value =
	// honest ARIES recovery.
	Recovery engine.RecoveryOpts
}

func (c CrashConfig) withDefaults() CrashConfig {
	if c.SF < 1 {
		c.SF = 1
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 12
	}
	if c.Span <= 0 {
		c.Span = 20 * time.Second
	}
	if c.Mix == (core.Mix{}) {
		c.Mix = core.Mix{T1: 30, T2: 20, T3: 40, T4: 10}
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	return c
}

// CrashSchedule is the canonical durability gauntlet scaled onto a run
// window: the primary is killed mid-traffic at 25% with a torn WAL tail
// (recovery must detect the mangled record by checksum and cut it), the
// replica is killed at 45% (its volatile apply state dies; it resyncs from
// the primary's durable log), the primary again at 65% (clean tail, redo
// window grown since the last checkpoint), and once more at 85% with a
// second torn tail — landing close enough to the previous recovery that
// architectures with slow restarts take it while still ramping.
func CrashSchedule(span time.Duration) chaos.Schedule {
	frac := func(f float64) time.Duration { return time.Duration(float64(span) * f) }
	return chaos.Schedule{Events: []chaos.Event{
		{At: frac(0.25), Kind: chaos.NodeCrash, Target: "rw", Torn: storage.TornFlip},
		{At: frac(0.45), Kind: chaos.NodeCrash, Target: "ro0"},
		{At: frac(0.65), Kind: chaos.NodeCrash, Target: "rw"},
		{At: frac(0.85), Kind: chaos.NodeCrash, Target: "rw", Torn: storage.TornFlip},
	}}
}

// CrashResult is one SUT's durability report card.
type CrashResult struct {
	Kind cdb.Kind

	BaselineTPS float64

	Commits   int64
	Errors    int64
	Terminals int64 // transactions abandoned after the retry budget
	Reroutes  int64 // reads served by a fallback node
	Fenced    int64 // stale-epoch commits refused by the lease
	Epoch     uint64

	// Crashes carries each fired kill's recovery outcome: the ARIES stats
	// (records scanned, redo window, losers rolled back, torn tail cut) of
	// the pass that restored the node. Recovery time is emergent from these
	// inputs, not scripted.
	Crashes []chaos.CrashOutcome

	Verdicts []check.Verdict
	Timeline []cluster.PhaseEvent
	Applied  []chaos.Applied
}

// Passed reports whether every invariant held.
func (r CrashResult) Passed() bool { return check.AllPassed(r.Verdicts) }

// RunCrash drives one SUT through the durability gauntlet. One recorder is
// attached to every member's engine (observer hooks fire only on the node
// running write transactions, and recovery carries the observer onto each
// rebuilt instance), so the acknowledged-commit history spans every crash
// and promotion in the run. Deterministic: the same config yields the same
// verdicts, recovery stats, and timeline.
func RunCrash(cfg CrashConfig) CrashResult {
	cfg = cfg.withDefaults()
	s := sim.New(simEpoch)
	d := cdb.MustDeploy(s, cdb.ProfileFor(cfg.Kind), cdb.Options{
		SF: cfg.SF, Seed: cfg.Seed, Replicas: 1, PreWarm: true,
		Serverless: cdb.Bool(false),
	})

	rec := check.NewRecorder()
	for _, m := range d.Cluster.Members() {
		m.Node.DB.SetObserver(rec)
	}
	d.Fence.SetRecording(true)

	sched := CrashSchedule(cfg.Span)
	if cfg.Schedule != nil {
		sched = *cfg.Schedule
	}
	injectAt := cfg.Span // falls past the window if no crash is scheduled
	for _, ev := range sched.Events {
		if ev.Kind == chaos.NodeCrash {
			injectAt = ev.At
			break
		}
	}
	inj, err := chaos.NewInjector(s, sched, chaos.Targets{
		Cluster:       d.Cluster,
		Links:         d.Links(),
		Net:           d.Net,
		Seed:          cfg.Seed,
		CrashRecovery: cfg.Recovery,
	})
	if err != nil {
		panic("evaluator: crash schedule: " + err.Error())
	}
	inj.Start()
	d.StartDetector()

	col := core.NewCollector()
	r := core.NewRunner(s, core.Config{
		Name: "crash", Seed: cfg.Seed, Mix: cfg.Mix,
		Write:          d.RW,
		Read:           d.ReadNode,
		ReadCandidates: d.ReadCandidates,
		Reachable:      d.ClientReachable,
		Collector:      col,
	})

	s.Go("ctl", func(p *sim.Proc) {
		r.SetConcurrency(cfg.Concurrency)
		p.Sleep(cfg.Span)
		r.Stop()
		r.Wait(p)
		// The last kill lands near the end of the traffic window: keep the
		// cluster running until every member is back in service, with a
		// virtual deadline so a wedged recovery cannot hang the run.
		allRunning := func() bool {
			for _, m := range d.Cluster.Members() {
				if m.Node.State() != node.Running {
					return false
				}
			}
			return true
		}
		deadline := p.Elapsed() + 2*time.Minute
		for p.Elapsed() < deadline && !allRunning() {
			p.Sleep(500 * time.Millisecond)
		}
		// Quiesce replication: the resynced replica drains any backlog that
		// accumulated while it was down.
		for _, st := range d.Streams() {
			for {
				shipped, applied := st.Counts()
				if st.Backlog() == 0 && shipped == applied {
					break
				}
				p.Sleep(10 * time.Millisecond)
			}
		}
		d.Shutdown()
	})
	if err := s.Run(); err != nil {
		panic("evaluator: crash run: " + err.Error())
	}

	res := CrashResult{
		Kind:      cfg.Kind,
		Commits:   col.Commits(),
		Errors:    col.Errors(),
		Terminals: col.Terminals(),
		Reroutes:  r.Reroutes(),
		Fenced:    d.Fence.Rejects(),
		Epoch:     d.Fence.Epoch(),
		Crashes:   inj.Crashes(),
		Timeline:  d.Cluster.Timeline(),
		Applied:   inj.Applied(),
	}
	res.BaselineTPS = col.TPS(0, injectAt)

	// Verdicts. Durability and NoResurrection judge the full cross-crash
	// history against the surviving primary's state; the commit path is
	// crash-atomic after the durability wait (engine commit, client ack, and
	// replication publish run in one runnable slice), so the acknowledged set
	// the recorder saw is exactly the durable set recovery must restore.
	rwDB := d.RW().DB
	res.Verdicts = append(res.Verdicts, check.FenceVerdicts(d.Fence)...)
	res.Verdicts = append(res.Verdicts,
		check.Durability("rw", rec, rwDB),
		check.NoResurrection("rw", rec, rwDB),
		check.Conservation(rec),
		check.ReadCommitted(rec),
	)
	for _, m := range d.Cluster.Members() {
		name := m.Node.Name
		if i := strings.LastIndexByte(name, '/'); i >= 0 {
			name = name[i+1:]
		}
		res.Verdicts = append(res.Verdicts, check.IndexCoherent(name, m.Node.DB))
		if m.Node != d.RW() {
			res.Verdicts = append(res.Verdicts, check.Convergence(name, rwDB, m.Node.DB))
		}
	}
	return res
}
