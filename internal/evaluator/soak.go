package evaluator

import (
	"fmt"
	"strings"
	"time"

	"cloudybench/internal/cdb"
	"cloudybench/internal/chaos"
	"cloudybench/internal/check"
	"cloudybench/internal/core"
	"cloudybench/internal/engine"
	"cloudybench/internal/obs"
	"cloudybench/internal/sim"
	"cloudybench/internal/storage"
)

// SoakConfig parameterizes one SUT's soak run: days of virtual time under
// a duty-cycled workload (one traffic burst per timeline window, idle clock
// leap between), a rolling per-day chaos schedule, tenant churn reshaping
// the client population window over window, and periodic in-flight
// invariant sweeps stamped into the timeline.
type SoakConfig struct {
	Kind cdb.Kind
	SF   int
	// Days is the virtual run length in days (default 3).
	Days int
	// Window is the timeline window width; it must divide 24h into at
	// least four windows per day so the rolling chaos schedule has distinct
	// windows to land in (default 2h).
	Window time.Duration
	// Burst is the traffic window at the start of each timeline window.
	// Keep it well under Window/4: the blackout partition must heal and the
	// retry queue drain before the next window's burst (default 1s).
	Burst time.Duration
	// Concurrency is the per-tenant client count; the tenant-churn pattern
	// multiplies it window over window (default 4).
	Concurrency int
	// SweepEvery runs an invariant sweep after every Nth window's burst
	// (default 3).
	SweepEvery int
	Seed       int64
}

func (c SoakConfig) withDefaults() SoakConfig {
	if c.SF < 1 {
		c.SF = 1
	}
	if c.Days <= 0 {
		c.Days = 3
	}
	if c.Window <= 0 {
		c.Window = 2 * time.Hour
	}
	if c.Burst <= 0 {
		c.Burst = time.Second
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 4
	}
	if c.SweepEvery <= 0 {
		c.SweepEvery = 3
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	return c
}

// tenantPattern is the tenant-churn cycle: how many tenants are active in
// window w (each contributing Concurrency clients). Adjacent windows change
// by at most one tenant so churn itself never trips the window-over-window
// anomaly detectors — only faults should.
var tenantPattern = [4]int{2, 3, 3, 2}

// Tenants returns the active tenant count for window w.
func (c SoakConfig) Tenants(w int) int { return tenantPattern[w%len(tenantPattern)] }

// SoakSchedule compiles the rolling chaos schedule for a soak run: every
// virtual day repeats a disk stall clipping one burst (a p99 spike), a
// degraded fabric window, a replica crash mid-burst (replication catch-up),
// a primary kill mid-burst with a torn WAL tail (real ARIES recovery, with
// the following sweep judging durability across it), and a full client
// blackout window (the seeded unavailability anomaly); from day two onward
// the day opens with an eviction storm. All faults auto-heal, so each day
// starts from a healthy cluster.
func SoakSchedule(days int, window, burst time.Duration) chaos.Schedule {
	wpd := int(24 * time.Hour / window)
	// The primary kill gets its own window at three quarters of the day;
	// with only four windows/day that slot is the blackout window, so the
	// kill shares the day's opening burst instead.
	crashW := 3 * wpd / 4
	if crashW >= wpd-1 {
		crashW = 0
	}
	var sched chaos.Schedule
	for d := 0; d < days; d++ {
		dayStart := time.Duration(d) * 24 * time.Hour
		at := func(w int) time.Duration { return dayStart + time.Duration(w)*window }
		sched.Events = append(sched.Events,
			// Window 1: the device hangs for the first quarter of the burst;
			// blocked transactions commit late, inflating the window's p99
			// without collapsing its throughput.
			chaos.Event{At: at(1), Kind: chaos.DiskStall, Target: "rw", Duration: burst / 4},
			// Mid-day: congested fabric for a full burst, plus a replica
			// crash a third of the way in — replication buffers its backlog
			// over the degraded links and catches up.
			chaos.Event{At: at(wpd / 2), Kind: chaos.LinkDegrade, Duration: burst,
				ExtraLatency: 2 * time.Millisecond, BWFactor: 0.5},
			chaos.Event{At: at(wpd/2) + burst/3, Kind: chaos.ReplicaCrash, Target: "ro0"},
			// The primary is killed mid-burst with a torn WAL tail —
			// in-flight transactions die, recovery must cut the tear, redo
			// from the last checkpoint, and undo the losers. The next
			// sweep's Durability/NoResurrection verdicts judge it.
			chaos.Event{At: at(crashW) + burst/2, Kind: chaos.NodeCrash, Target: "rw",
				Torn: storage.TornFlip},
			// Last window of the day: clients are cut from every node for the
			// whole burst and the retry drain — zero commits against real
			// attempts, the seeded unavailability anomaly.
			chaos.Event{At: at(wpd - 1), Kind: chaos.Partition, Duration: burst + 2*time.Second,
				GroupA: []string{"client"}, GroupB: []string{"rw", "ro0"}},
		)
		if d >= 1 {
			sched.Events = append(sched.Events,
				chaos.Event{At: at(0), Kind: chaos.CacheDrop, Target: "rw"})
		}
	}
	return sched
}

// SoakSweep is one in-flight invariant sweep: the virtual time it ran, the
// window it landed in, and its verdicts (Conservation, ReadCommitted,
// Durability, and NoResurrection over the segment since the previous sweep,
// IndexCoherent on the live primary, NoSplitBrain over the fence log so
// far). The durability pair is what judges each day's primary kill: the
// segment history spans the crash, so a lost acknowledged commit or a
// resurrected loser write surfaces in the very next sweep mark.
type SoakSweep struct {
	At       time.Duration
	Window   int
	Verdicts []check.Verdict
}

// Passed reports whether every swept invariant held.
func (s SoakSweep) Passed() bool { return check.AllPassed(s.Verdicts) }

// SoakWindow is one window's summary row plus its resource-unit cost.
type SoakWindow struct {
	obs.WindowRow
	// Cost is the RUC cost of the window; CostPer1kTxn relates it to the
	// window's commits (zero for a window that committed nothing — cost
	// without throughput shows up in the unavailability row itself).
	Cost         float64
	CostPer1kTxn float64
}

// SoakResult is one SUT's longitudinal report card.
type SoakResult struct {
	Kind   cdb.Kind
	Days   int
	Window time.Duration

	// Timeline is the windowed telemetry (also carrying sweep/chaos/anomaly
	// marks); Agg is the tracer's whole-run stage aggregation.
	Timeline *obs.Timeline
	Agg      *obs.StageAgg

	Windows   []SoakWindow
	Sweeps    []SoakSweep
	Anomalies []obs.Anomaly

	Commits   int64
	Errors    int64
	Terminals int64

	// Verdicts are the end-of-run checks: the fence trio, index coherence
	// on every node, and convergence of every replica after quiesce.
	Verdicts  []check.Verdict
	Applied   []chaos.Applied
	TotalCost float64
}

// Passed reports whether every sweep and every final invariant held.
func (r SoakResult) Passed() bool {
	for _, s := range r.Sweeps {
		if !s.Passed() {
			return false
		}
	}
	return check.AllPassed(r.Verdicts)
}

// RunSoak drives one SUT through a multi-day soak: duty-cycled traffic
// bursts (one per timeline window, tenant churn reshaping the client count),
// the rolling SoakSchedule chaos, in-flight invariant sweeps every
// SweepEvery windows, and a final quiesce + convergence judgement.
// Deterministic: the same config yields byte-identical timelines, sweeps,
// and anomalies at any GOMAXPROCS.
func RunSoak(cfg SoakConfig) SoakResult {
	cfg = cfg.withDefaults()
	if 24*time.Hour%cfg.Window != 0 {
		panic(fmt.Sprintf("evaluator: soak window %v must divide 24h", cfg.Window))
	}
	wpd := int(24 * time.Hour / cfg.Window)
	if wpd < 4 {
		panic(fmt.Sprintf("evaluator: soak window %v leaves %d windows/day, need >= 4", cfg.Window, wpd))
	}
	totalWindows := cfg.Days * wpd

	s := sim.New(simEpoch)
	tl := obs.NewTimeline(string(cfg.Kind), cfg.Window)
	tr := obs.NewTracer(string(cfg.Kind), tl)
	d := cdb.MustDeploy(s, cdb.ProfileFor(cfg.Kind), cdb.Options{
		SF: cfg.SF, Seed: cfg.Seed, Replicas: 1, PreWarm: true,
		Serverless: cdb.Bool(false),
		Tracer:     tr,
		// A secondary index on the order status column: T2 payments rewrite
		// O_STATUS, so index maintenance runs for days and the in-flight
		// IndexCoherent sweeps judge a moving target, not an empty catalog.
		ExtraSchema: func(db *engine.DB) error {
			_, err := db.CreateIndex(core.TableOrders, "ix_orders_status", "O_STATUS")
			return err
		},
	})
	d.Fence.SetRecording(true)

	sched := SoakSchedule(cfg.Days, cfg.Window, cfg.Burst)
	inj, err := chaos.NewInjector(s, sched, chaos.Targets{
		Cluster: d.Cluster,
		Links:   d.Links(),
		Net:     d.Net,
		Seed:    cfg.Seed,
	})
	if err != nil {
		panic("evaluator: soak schedule: " + err.Error())
	}
	inj.Start()

	res := SoakResult{Kind: cfg.Kind, Days: cfg.Days, Window: cfg.Window, Timeline: tl, Agg: tr.Agg()}

	// The in-flight sweep judges the history invariants over the segment
	// recorded since the previous sweep: a fresh recorder replaces the
	// observer while traffic is fully quiesced, so every segment holds only
	// whole transactions. The recorder is attached to every member (observer
	// hooks fire only on the node running write transactions, and crash
	// recovery carries the observer onto the rebuilt engine), so segments
	// span the daily primary kill — and any promotion it triggers.
	rec := check.NewRecorder()
	attach := func(r *check.Recorder) {
		for _, m := range d.Cluster.Members() {
			m.Node.DB.SetObserver(r)
		}
	}
	attach(rec)
	sweep := func(p *sim.Proc, w int) {
		verdicts := []check.Verdict{
			check.Conservation(rec),
			check.ReadCommitted(rec),
			check.Durability("rw", rec, d.RW().DB),
			check.NoResurrection("rw", rec, d.RW().DB),
			check.IndexCoherent("rw", d.RW().DB),
			check.NoSplitBrain(d.Fence.Events()),
		}
		sw := SoakSweep{At: p.Elapsed(), Window: w, Verdicts: verdicts}
		var names []string
		for _, v := range verdicts {
			status := "PASS"
			if !v.Passed {
				status = "FAIL"
			}
			names = append(names, v.Name+"="+status)
		}
		tl.Mark(sw.At, "sweep", strings.Join(names, " "), sw.Passed())
		res.Sweeps = append(res.Sweeps, sw)
		rec = check.NewRecorder()
		attach(rec)
	}

	s.Go("ctl", func(p *sim.Proc) {
		for w := 0; w < totalWindows; w++ {
			// Burst: a fresh runner per window (its own deterministic RNG
			// streams, named by window) at the churned tenant population.
			// The short retry budget keeps blackout-window stragglers from
			// draining past the healed partition.
			col := core.NewCollector()
			r := core.NewRunner(s, core.Config{
				Name: fmt.Sprintf("soak/w%03d", w), Seed: cfg.Seed,
				Mix:            core.Mix{T1: 30, T2: 20, T3: 40, T4: 10},
				Write:          d.RW,
				Read:           d.ReadNode,
				ReadCandidates: d.ReadCandidates,
				Reachable:      d.ClientReachable,
				Collector:      col,
				Tracer:         tr,
				Retry: core.RetryPolicy{
					MaxAttempts: 4, BackoffBase: 50 * time.Millisecond,
					BackoffCap: 400 * time.Millisecond,
				},
			})
			r.SetConcurrency(cfg.Concurrency * cfg.Tenants(w))
			p.Sleep(cfg.Burst)
			r.Stop()
			r.Wait(p)
			res.Commits += col.Commits()
			res.Errors += col.Errors()
			res.Terminals += col.Terminals()
			// col goes out of scope here: per-window collectors are
			// throwaways, so live memory stays O(windows) — the timeline —
			// no matter how long the run is.

			if (w+1)%cfg.SweepEvery == 0 {
				sweep(p, w)
			}
			if next := time.Duration(w+1) * cfg.Window; p.Elapsed() < next {
				p.Sleep(next - p.Elapsed())
			}
		}

		// Quiesce replication (the crashed-and-restarted replica drains its
		// backlog), then judge the end-of-run invariants.
		for _, st := range d.Streams() {
			for {
				shipped, applied := st.Counts()
				if st.Backlog() == 0 && shipped == applied {
					break
				}
				p.Sleep(10 * time.Millisecond)
			}
		}
		res.Verdicts = append(res.Verdicts, check.FenceVerdicts(d.Fence)...)
		rwDB := d.RW().DB
		for _, m := range d.Cluster.Members() {
			name := m.Node.Name
			if i := strings.LastIndexByte(name, '/'); i >= 0 {
				name = name[i+1:]
			}
			res.Verdicts = append(res.Verdicts, check.IndexCoherent(name, m.Node.DB))
			if m.Node != d.RW() {
				res.Verdicts = append(res.Verdicts, check.Convergence(name, rwDB, m.Node.DB))
			}
		}
		d.Shutdown()
	})
	if err := s.Run(); err != nil {
		panic("evaluator: soak run: " + err.Error())
	}

	// Stamp the applied chaos onto the timeline, run the anomaly pass, and
	// price each window.
	res.Applied = inj.Applied()
	for _, a := range res.Applied {
		detail := string(a.Kind)
		if a.Target != "" {
			detail += " " + a.Target
		}
		tl.Mark(a.At, "chaos", detail, true)
	}
	res.Anomalies = tl.Anomalies(obs.AnomalyConfig{})
	for _, a := range res.Anomalies {
		tl.Mark(a.At, "anomaly", a.Kind+": "+a.Detail, false)
	}
	for w := 0; w < totalWindows; w++ {
		row := tl.Row(w)
		cost := d.RUCCost(row.Start, row.End)
		sw := SoakWindow{WindowRow: row, Cost: cost}
		if row.Commits > 0 {
			sw.CostPer1kTxn = cost / float64(row.Commits) * 1000
		}
		res.Windows = append(res.Windows, sw)
		res.TotalCost += cost
	}
	return res
}
