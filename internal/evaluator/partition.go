package evaluator

import (
	"strings"
	"time"

	"cloudybench/internal/cdb"
	"cloudybench/internal/chaos"
	"cloudybench/internal/check"
	"cloudybench/internal/cluster"
	"cloudybench/internal/core"
	"cloudybench/internal/sim"
	"cloudybench/internal/storage"
)

// PartitionConfig parameterizes one SUT's run through the partition
// gauntlet: a gray network partition (clients still reach the old primary,
// the control plane and the replica do not), the profile's failure detector
// reacting with a lease-fenced fail-over (or await-heal restart), and the
// resilient client riding through on backoff, breakers, and reroutes.
type PartitionConfig struct {
	Kind cdb.Kind
	SF   int
	// Concurrency is the client count (default 12).
	Concurrency int
	// Span is the traffic window the partition schedule is compiled onto
	// (default 20s: cut at 25%, heal at 60%).
	Span time.Duration
	// Mix defaults to the all-four blend so writes hit the fence and reads
	// exercise the reroute path.
	Mix  core.Mix
	Seed int64
	// Schedule overrides the standard partition schedule (nil =
	// PartitionSchedule(Span)).
	Schedule *chaos.Schedule
	// DisableFencing deliberately breaks the write lease: stale-epoch
	// commits are acknowledged instead of rejected. Test-only: the
	// no-split-brain checker must then FAIL, proving it has teeth.
	DisableFencing bool
}

func (c PartitionConfig) withDefaults() PartitionConfig {
	if c.SF < 1 {
		c.SF = 1
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 12
	}
	if c.Span <= 0 {
		c.Span = 20 * time.Second
	}
	if c.Mix == (core.Mix{}) {
		c.Mix = core.Mix{T1: 30, T2: 20, T3: 40, T4: 10}
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	return c
}

// PartitionSchedule is the canonical partition gauntlet scaled onto a run
// window: at 25% of the span the primary is cut from the control plane and
// the replica — but NOT from clients (a gray partition: the old primary
// keeps taking writes, which is exactly what the lease must fence). The cut
// heals at 60%.
func PartitionSchedule(span time.Duration) chaos.Schedule {
	frac := func(f float64) time.Duration { return time.Duration(float64(span) * f) }
	groupA, groupB := []string{"rw"}, []string{"ctrl", "ro0"}
	return chaos.Schedule{Events: []chaos.Event{
		{At: frac(0.25), Kind: chaos.Partition, GroupA: groupA, GroupB: groupB},
		{At: frac(0.60), Kind: chaos.Heal, GroupA: groupA, GroupB: groupB},
	}}
}

// PartitionResult is one SUT's partition-tolerance report card.
type PartitionResult struct {
	Kind cdb.Kind

	BaselineTPS float64
	// MTTD is detection: partition injection until the detector suspects
	// the primary.
	MTTD time.Duration
	// MTTR is repair: partition injection until write service is restored
	// (promotion completing, or the healed primary restarting).
	MTTR time.Duration
	// Unavailable totals the whole-second buckets inside the observation
	// window whose commit rate fell below the availability threshold.
	Unavailable time.Duration

	Commits   int64
	Errors    int64
	Terminals int64 // transactions abandoned after the retry budget
	Reroutes  int64 // reads served by a fallback node
	Fenced    int64 // stale-epoch commits refused by the lease
	Epoch     uint64

	Verdicts []check.Verdict
	Timeline []cluster.PhaseEvent
	Applied  []chaos.Applied
}

// Passed reports whether every invariant held.
func (r PartitionResult) Passed() bool { return check.AllPassed(r.Verdicts) }

// recoveredAfter reports whether the timeline shows write service restored
// after the given instant (promotion completing or a restart finishing).
func recoveredAfter(tl []cluster.PhaseEvent, at time.Duration) bool {
	return firstMarkAfter(tl, at, "RW' serving requests") > 0 ||
		firstMarkAfter(tl, at, "RW service restored") > 0
}

// firstMarkAfter returns the time of the first timeline event after `at`
// whose phase starts with the prefix (0 = none).
func firstMarkAfter(tl []cluster.PhaseEvent, at time.Duration, prefix string) time.Duration {
	for _, ev := range tl {
		if ev.At > at && strings.HasPrefix(ev.Phase, prefix) {
			return ev.At
		}
	}
	return 0
}

// RunPartition drives one SUT through the partition gauntlet and measures
// detection, repair, unavailability, and the lease invariants. Deterministic:
// the same config yields the same verdicts, metrics, and timeline.
func RunPartition(cfg PartitionConfig) PartitionResult {
	cfg = cfg.withDefaults()
	s := sim.New(simEpoch)
	d := cdb.MustDeploy(s, cdb.ProfileFor(cfg.Kind), cdb.Options{
		SF: cfg.SF, Seed: cfg.Seed, Replicas: 1, PreWarm: true,
		Serverless: cdb.Bool(false),
	})

	rec := check.NewRecorder()
	d.RW().DB.SetObserver(rec)
	d.Fence.SetRecording(true)
	if cfg.DisableFencing {
		d.Fence.Disable()
	}

	sched := PartitionSchedule(cfg.Span)
	if cfg.Schedule != nil {
		sched = *cfg.Schedule
	}
	injectAt := cfg.Span // falls past the window if no partition is scheduled
	for _, ev := range sched.Events {
		if ev.Kind == chaos.Partition || ev.Kind == chaos.AsymPartition {
			injectAt = ev.At
			break
		}
	}
	inj, err := chaos.NewInjector(s, sched, chaos.Targets{
		Cluster: d.Cluster,
		Links:   d.Links(),
		Net:     d.Net,
		Seed:    cfg.Seed,
	})
	if err != nil {
		panic("evaluator: partition schedule: " + err.Error())
	}
	inj.Start()
	d.StartDetector()

	col := core.NewCollector()
	r := core.NewRunner(s, core.Config{
		Name: "partition", Seed: cfg.Seed, Mix: cfg.Mix,
		Write:          d.RW,
		Read:           d.ReadNode,
		ReadCandidates: d.ReadCandidates,
		Reachable:      d.ClientReachable,
		Collector:      col,
	})

	s.Go("ctl", func(p *sim.Proc) {
		r.SetConcurrency(cfg.Concurrency)
		p.Sleep(cfg.Span)
		r.Stop()
		r.Wait(p)
		// Recovery may land past the traffic window (an RDS-style restart
		// waits out the heal and then replays for tens of seconds): keep the
		// cluster running until the timeline shows service restored, with a
		// virtual deadline so a wedged recovery cannot hang the run.
		deadline := p.Elapsed() + 2*time.Minute
		for p.Elapsed() < deadline && !recoveredAfter(d.Cluster.Timeline(), injectAt) {
			p.Sleep(500 * time.Millisecond)
		}
		// Quiesce replication: the healed side drains its backlog (the
		// stopped pre-promotion stream is already balanced and stays so).
		for _, st := range d.Streams() {
			for {
				shipped, applied := st.Counts()
				if st.Backlog() == 0 && shipped == applied {
					break
				}
				p.Sleep(10 * time.Millisecond)
			}
		}
		d.Shutdown()
	})
	if err := s.Run(); err != nil {
		panic("evaluator: partition run: " + err.Error())
	}

	res := PartitionResult{
		Kind:      cfg.Kind,
		Commits:   col.Commits(),
		Errors:    col.Errors(),
		Terminals: col.Terminals(),
		Reroutes:  r.Reroutes(),
		Fenced:    d.Fence.Rejects(),
		Epoch:     d.Fence.Epoch(),
		Timeline:  d.Cluster.Timeline(),
		Applied:   inj.Applied(),
	}
	res.BaselineTPS = col.TPS(0, injectAt)

	// Detection and repair, from the cluster's own marks.
	if at := firstMarkAfter(res.Timeline, injectAt, "partition: RW suspected"); at > 0 {
		res.MTTD = at - injectAt
	}
	if at := firstMarkAfter(res.Timeline, injectAt, "RW' serving requests"); at > 0 {
		res.MTTR = at - injectAt
	} else if at := firstMarkAfter(res.Timeline, injectAt, "RW service restored"); at > 0 {
		res.MTTR = at - injectAt
	}

	// Unavailability: whole-second buckets below a small fraction of the
	// baseline (raw zero would be fooled by stragglers draining lock
	// queues), counted across the traffic window after injection.
	threshold := res.BaselineTPS * 0.05
	if threshold < 2 {
		threshold = 2
	}
	for _, b := range col.TPSBuckets(injectAt, cfg.Span) {
		if b < threshold {
			res.Unavailable += time.Second
		}
	}

	// Verdicts. The lease trio judges the fence event log directly. The
	// history invariants are judged on the pre-fail-over prefix: after the
	// old primary rejoins as a replica, replay mutates its DB beneath the
	// recorder (Apply fires no observer hooks), so post-advance events would
	// be judged against state the history cannot see.
	res.Verdicts = append(res.Verdicts, check.FenceVerdicts(d.Fence)...)
	hist := rec
	if advanceAt := firstAdvance(d.Fence.Events()); advanceAt > 0 {
		hist = rec.Before(advanceAt)
	}
	res.Verdicts = append(res.Verdicts,
		check.Conservation(hist),
		check.ReadCommitted(hist),
	)
	// Convergence: after quiesce every member must match the current RW.
	rwDB := d.RW().DB
	for _, m := range d.Cluster.Members() {
		if m.Node == d.RW() {
			continue
		}
		name := m.Node.Name
		if i := strings.LastIndexByte(name, '/'); i >= 0 {
			name = name[i+1:]
		}
		res.Verdicts = append(res.Verdicts, check.Convergence(name, rwDB, m.Node.DB))
	}
	return res
}

// firstAdvance returns the time of the first epoch advance in a fence log
// (0 = the lease never moved).
func firstAdvance(events []storage.FenceEvent) time.Duration {
	for _, ev := range events {
		if ev.Kind == storage.FenceAdvance {
			return ev.At
		}
	}
	return 0
}
