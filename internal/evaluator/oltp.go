// Package evaluator contains CloudyBench's experiment drivers: the OLTP,
// elasticity, multi-tenancy, fail-over, and lag-time evaluators of paper
// Figure 1, plus the overall PERFECT aggregation. Each Run function builds
// a self-contained simulation, executes the experiment, and returns a
// result struct that the report layer renders into the paper's tables and
// figures.
package evaluator

import (
	"time"

	"cloudybench/internal/cdb"
	"cloudybench/internal/core"
	"cloudybench/internal/metrics"
	"cloudybench/internal/obs"
	"cloudybench/internal/pricing"
	"cloudybench/internal/sim"
)

// simEpoch anchors every evaluator simulation at a fixed virtual date so
// runs are reproducible.
var simEpoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

// OLTPConfig parameterizes one throughput cell of Figure 5 / Table V.
type OLTPConfig struct {
	Kind        cdb.Kind
	SF          int
	Mix         core.Mix
	Concurrency int
	// Distribution is "uniform" (default) or "latest".
	Distribution string
	// Replicas defaults to 1 (the paper deploys 1 RW + 1 RO); pass
	// NoReplicas for a single-node deployment.
	Replicas int
	// Warmup runs before measurement begins; Measure is the measured
	// window. Defaults: 2s / 8s.
	Warmup  time.Duration
	Measure time.Duration
	// BufferBytes overrides the profile buffer (Figure 8).
	BufferBytes int64
	Seed        int64
	// Tracer, if non-nil, records per-transaction stage traces during the
	// run (both warmup and measure windows). Nil runs untraced at zero cost.
	Tracer *obs.Tracer
	// Warm, if non-nil, memoizes the warm-up phase across cells sharing a
	// WarmKey: the first cell runs the warm-up and snapshots the quiescent
	// cluster; later cells fork the measurement phase straight from the
	// snapshot. Results are byte-identical with or without a cache (a traced
	// run bypasses it so warm-up spans are recorded).
	Warm *WarmCache
}

// NoReplicas requests a deployment without read-only nodes.
const NoReplicas = -1

func (c OLTPConfig) withDefaults() OLTPConfig {
	if c.SF < 1 {
		c.SF = 1
	}
	if c.Replicas == 0 {
		c.Replicas = 1
	} else if c.Replicas < 0 {
		c.Replicas = 0
	}
	if c.Warmup <= 0 {
		c.Warmup = 2 * time.Second
	}
	if c.Measure <= 0 {
		c.Measure = 8 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	return c
}

// OLTPResult is one measured cell.
type OLTPResult struct {
	Kind        cdb.Kind
	SF          int
	Mix         core.Mix
	Concurrency int

	TPS        float64
	P50        time.Duration
	P99        time.Duration
	HitRatio   float64 // RW-node buffer hit ratio over the whole run
	CostPerMin pricing.Breakdown
	PScore     float64
}

// warmKey builds the memoization key for this configuration's warm-up.
func (c OLTPConfig) warmKey() WarmKey {
	return WarmKey{
		Kind: c.Kind, SF: c.SF, Mix: c.Mix, Concurrency: c.Concurrency,
		Distribution: c.Distribution, Replicas: c.Replicas,
		Warmup: c.Warmup, BufferBytes: c.BufferBytes, Seed: c.Seed,
	}
}

// oltpDeploy builds one OLTP cluster for cfg. Both phases deploy through it
// so the catalogs line up for the snapshot restore.
func oltpDeploy(s *sim.Sim, cfg OLTPConfig, preWarm bool) *cdb.Deployment {
	return cdb.MustDeploy(s, cdb.ProfileFor(cfg.Kind), cdb.Options{
		SF: cfg.SF, Seed: cfg.Seed, Replicas: cfg.Replicas,
		BufferBytes: cfg.BufferBytes, PreWarm: preWarm,
		// Throughput evaluation uses the provisioned (fixed) size.
		Serverless: cdb.Bool(false),
		Tracer:     cfg.Tracer,
	})
}

// runWarmup executes the warm-up phase in its own simulation: load the
// cluster for cfg.Warmup, drain the clients, wait for every replication
// stream to go quiet, and snapshot the resulting state. cfg must carry its
// defaults already.
func runWarmup(cfg OLTPConfig) *WarmSnapshot {
	s := sim.New(simEpoch)
	d := oltpDeploy(s, cfg, true)
	col := core.NewCollector()
	r := core.NewRunner(s, core.Config{
		Name: "oltp", Seed: cfg.Seed, Mix: cfg.Mix,
		Distribution: cfg.Distribution,
		Write:        d.RW, Read: d.ReadNode,
		Collector: col,
		Tracer:    cfg.Tracer,
	})
	snap := &WarmSnapshot{}
	s.Go("ctl", func(p *sim.Proc) {
		r.SetConcurrency(cfg.Concurrency)
		p.Sleep(cfg.Warmup)
		r.Stop()
		r.Wait(p)
		// Quiesce replication: the snapshot must capture every warm-up
		// commit applied on every replica, or forked cells would start with
		// records in flight that no stream remembers.
		for {
			settled := true
			for _, st := range d.Streams() {
				shipped, applied := st.Counts()
				if st.Backlog() != 0 || shipped != applied {
					settled = false
					break
				}
			}
			if settled {
				break
			}
			p.Sleep(time.Millisecond)
		}
		snap.offset = p.Elapsed()
		d.Shutdown()
	})
	if err := s.Run(); err != nil {
		panic("evaluator: oltp warmup: " + err.Error())
	}
	for _, n := range d.Nodes() {
		snap.nodes = append(snap.nodes, nodeWarmState{db: n.DB.Snapshot(), buf: n.Buf.Snapshot()})
	}
	if d.Remote != nil {
		rs := d.Remote.Snapshot()
		snap.remote = &rs
	}
	snap.col = col.Snapshot()
	return snap
}

// RunOLTP measures steady-state throughput for one configuration. It always
// runs two phases — warm-up (possibly memoized via cfg.Warm) and measurement
// forked from the warm-up snapshot — so a cached and an uncached run produce
// byte-identical results.
func RunOLTP(cfg OLTPConfig) OLTPResult {
	cfg = cfg.withDefaults()
	var snap *WarmSnapshot
	if cfg.Warm != nil && cfg.Tracer == nil {
		snap = cfg.Warm.get(cfg.warmKey(), func() *WarmSnapshot { return runWarmup(cfg) })
	} else {
		snap = runWarmup(cfg)
	}

	// Measurement phase: a fresh cluster restored from the snapshot, on a
	// virtual clock pre-advanced to the snapshot offset so every window and
	// timestamp reads as if the warm-up had run in this simulation.
	s := sim.NewAt(simEpoch, snap.offset)
	d := oltpDeploy(s, cfg, false)
	nodes := d.Nodes()
	if len(nodes) != len(snap.nodes) {
		panic("evaluator: oltp restore: node count mismatch")
	}
	for i, n := range nodes {
		if err := n.DB.Restore(snap.nodes[i].db); err != nil {
			panic("evaluator: oltp restore: " + err.Error())
		}
		n.Buf.Restore(snap.nodes[i].buf)
	}
	if d.Remote != nil && snap.remote != nil {
		d.Remote.Restore(*snap.remote)
	}
	col := core.NewCollector()
	col.Restore(snap.col)
	r := core.NewRunner(s, core.Config{
		Name: "oltp", Seed: cfg.Seed, Mix: cfg.Mix,
		Distribution: cfg.Distribution,
		Write:        d.RW, Read: d.ReadNode,
		Collector: col,
		Tracer:    cfg.Tracer,
	})
	s.Go("ctl", func(p *sim.Proc) {
		r.SetConcurrency(cfg.Concurrency)
		p.Sleep(cfg.Measure)
		r.Stop()
		r.Wait(p)
		d.Shutdown()
	})
	if err := s.Run(); err != nil {
		panic("evaluator: oltp run: " + err.Error())
	}

	from, to := snap.offset, snap.offset+cfg.Measure
	perMin := pricing.PerMinuteBreakdown(d.ClusterPackage())
	res := OLTPResult{
		Kind: cfg.Kind, SF: cfg.SF, Mix: cfg.Mix, Concurrency: cfg.Concurrency,
		TPS:        col.TPS(from, to),
		P50:        col.Latency().Quantile(0.50),
		P99:        col.Latency().Quantile(0.99),
		HitRatio:   d.RW().Buf.HitRatio(),
		CostPerMin: perMin,
	}
	res.PScore = metrics.PScore(res.TPS, perMin.Total())
	return res
}

// E2Config parameterizes the scale-out elasticity measurement: throughput
// as RO nodes are added (equation 5, Table IX's E2-Score).
type E2Config struct {
	Kind        cdb.Kind
	SF          int
	Mix         core.Mix
	Concurrency int
	MaxReplicas int // λ; default 1
	Delta       float64
	Warmup      time.Duration
	Measure     time.Duration
	Seed        int64
	// Warm forwards to OLTPConfig.Warm (each replica count is its own
	// WarmKey, so cells memoize per deployment shape).
	Warm *WarmCache
}

// E2Result holds TPS per replica count and the resulting score.
type E2Result struct {
	Kind    cdb.Kind
	TPS     []float64 // TPS[i] with i RO nodes
	E2Score float64
}

// RunE2 measures the scale-out elasticity score.
func RunE2(cfg E2Config) E2Result {
	if cfg.MaxReplicas < 1 {
		cfg.MaxReplicas = 1
	}
	if cfg.Delta <= 0 {
		cfg.Delta = 1000 // δ calibrated so RDS's 17k->36k jump scores ~20
	}
	res := E2Result{Kind: cfg.Kind}
	for replicas := 0; replicas <= cfg.MaxReplicas; replicas++ {
		n := replicas
		if n == 0 {
			n = NoReplicas
		}
		r := RunOLTP(OLTPConfig{
			Kind: cfg.Kind, SF: cfg.SF, Mix: cfg.Mix,
			Concurrency: cfg.Concurrency, Replicas: n,
			Warmup: cfg.Warmup, Measure: cfg.Measure, Seed: cfg.Seed,
			Warm: cfg.Warm,
		})
		res.TPS = append(res.TPS, r.TPS)
	}
	res.E2Score = metrics.E2Score(res.TPS, cfg.Delta)
	return res
}
