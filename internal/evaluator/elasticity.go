package evaluator

import (
	"time"

	"cloudybench/internal/cdb"
	"cloudybench/internal/core"
	"cloudybench/internal/meter"
	"cloudybench/internal/metrics"
	"cloudybench/internal/patterns"
	"cloudybench/internal/sim"
)

// ElasticityConfig parameterizes one elasticity run (paper §III-C,
// Figure 6 and Table VI): drive one pattern's concurrency sequence and
// account throughput, cost (execution plus scaling), and scaling behaviour.
type ElasticityConfig struct {
	Kind    cdb.Kind
	Pattern patterns.Elastic
	Mix     core.Mix
	// Tau is the saturation concurrency the proportions scale to
	// (default 110, the paper's running example).
	Tau int
	// SlotLength is one pattern slot (the paper uses one minute; tests use
	// shorter slots — the shapes are slot-length-invariant).
	SlotLength time.Duration
	// CostSlots is the costing window in slots measured from pattern start
	// (the paper uses a ten-minute range, i.e. 10 one-minute slots, so
	// trailing scale-down cost is charged). Default 10.
	CostSlots int
	// Serverless overrides the profile's default autoscaling.
	Serverless *bool
	SF         int
	Seed       int64
}

func (c ElasticityConfig) withDefaults() ElasticityConfig {
	if c.Tau <= 0 {
		c.Tau = 110
	}
	if c.SlotLength <= 0 {
		c.SlotLength = time.Minute
	}
	if c.CostSlots <= 0 {
		c.CostSlots = 10
	}
	if c.SF < 1 {
		c.SF = 1
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	return c
}

// Transition is one concurrency change and the SUT's scaling response
// (Table VI rows).
type Transition struct {
	At          time.Duration
	FromCon     int
	ToCon       int
	ScalingTime time.Duration
	ScalingCost float64 // CPU+memory RUC dollars spent while scaling
}

// ElasticityResult is one pattern's outcome.
type ElasticityResult struct {
	Kind    cdb.Kind
	Pattern string
	Mix     core.Mix

	AvgTPS      float64
	TotalCost   float64 // RUC over the costing window (execution + scaling)
	ActualCost  float64 // vendor-priced cost over the same window
	E1Score     float64
	Transitions []Transition
	// Cores samples the allocated vCores once per slot-length/2 over the
	// costing window (Figure 9-style series).
	Cores []float64
}

// RunElasticity executes one elasticity pattern against one SUT using a
// single serving node (the elastic unit the autoscaler acts on).
func RunElasticity(cfg ElasticityConfig) ElasticityResult {
	cfg = cfg.withDefaults()
	s := sim.New(simEpoch)
	d := cdb.MustDeploy(s, cdb.ProfileFor(cfg.Kind), cdb.Options{
		SF: cfg.SF, Seed: cfg.Seed, Replicas: -1, PreWarm: true,
		Serverless:   cfg.Serverless,
		CadenceScale: float64(time.Minute) / float64(cfg.SlotLength),
	})
	col := core.NewCollector()
	r := core.NewRunner(s, core.Config{
		Name: "elastic", Seed: cfg.Seed, Mix: cfg.Mix,
		Write: d.RW, Read: d.ReadNode,
		Collector: col,
	})
	cons := cfg.Pattern.Concurrency(cfg.Tau)
	slot := cfg.SlotLength
	patternEnd := time.Duration(len(cons)) * slot
	costEnd := time.Duration(cfg.CostSlots) * slot
	if costEnd < patternEnd {
		costEnd = patternEnd
	}
	s.Go("ctl", func(p *sim.Proc) {
		for _, c := range cons {
			r.SetConcurrency(c)
			p.Sleep(slot)
		}
		r.SetConcurrency(0)
		r.Stop()
		r.Wait(p)
		// Idle out the rest of the costing window so trailing scale-down
		// (or the lack of it) is charged, as in the paper's 10-minute
		// costing range.
		if rest := costEnd - p.Elapsed(); rest > 0 {
			p.Sleep(rest)
		}
		d.Shutdown()
	})
	if err := s.Run(); err != nil {
		panic("evaluator: elasticity run: " + err.Error())
	}

	breakdown := d.RUCBreakdown(0, costEnd)
	elasticPerMin := (breakdown.CPU + breakdown.Memory + breakdown.IOPS) / costEnd.Minutes()
	res := ElasticityResult{
		Kind:       cfg.Kind,
		Pattern:    cfg.Pattern.Name,
		Mix:        cfg.Mix,
		AvgTPS:     col.TPS(0, patternEnd),
		TotalCost:  breakdown.Total(),
		ActualCost: d.ActualCost(0, costEnd),
		E1Score:    metrics.E1Score(col.TPS(0, patternEnd), elasticPerMin),
		Cores:      d.RW().Cores.Sample(0, costEnd, slot/2),
	}
	res.Transitions = transitions(cons, slot, costEnd, d.RW().Cores, d)
	return res
}

// transitions derives Table VI's per-transition scaling time and cost from
// the allocation series: a transition's scaling completes at the last
// allocation change before the next transition (the final transition's
// settle window extends to the end of the costing window, capturing
// CDB1-style gradual descents).
func transitions(cons []int, slot, costEnd time.Duration, cores *meter.Series, d *cdb.Deployment) []Transition {
	// Build the workload-change instants: entry, slot boundaries, exit.
	type change struct {
		at       time.Duration
		from, to int
	}
	var changes []change
	prev := 0
	for i, c := range cons {
		if c != prev {
			changes = append(changes, change{at: time.Duration(i) * slot, from: prev, to: c})
		}
		prev = c
	}
	if prev != 0 {
		changes = append(changes, change{at: time.Duration(len(cons)) * slot, from: prev, to: 0})
	}
	out := make([]Transition, 0, len(changes))
	for i, ch := range changes {
		windowEnd := costEnd
		if i+1 < len(changes) {
			windowEnd = changes[i+1].at
		}
		settle := lastStepIn(cores, ch.at, windowEnd)
		tr := Transition{At: ch.at, FromCon: ch.from, ToCon: ch.to}
		if settle > ch.at {
			tr.ScalingTime = settle - ch.at
			b := d.RUCBreakdown(ch.at, settle)
			tr.ScalingCost = b.CPU + b.Memory
		}
		out = append(out, tr)
	}
	return out
}

// lastStepIn returns the time of the last series step in (from, to], or
// from when the series did not change.
func lastStepIn(s *meter.Series, from, to time.Duration) time.Duration {
	last := from
	for _, st := range s.Steps() {
		if st.At > from && st.At <= to {
			last = st.At
		}
	}
	return last
}
