package evaluator

import (
	"testing"
	"time"

	"cloudybench/internal/cdb"
	"cloudybench/internal/core"
)

// TestRunSuitePlain runs each registered suite briefly on CDB1 and checks
// the basics: commits flowed, every op fired, the planner exercised the
// index, index WAL records were emitted, and every invariant passed.
func TestRunSuitePlain(t *testing.T) {
	for _, name := range core.SuiteNames() {
		res := RunSuite(SuiteConfig{
			Suite: name, Kind: cdb.CDB1,
			Span: 4 * time.Second, Concurrency: 6,
		})
		if !res.Passed() {
			t.Fatalf("%s: verdicts failed: %v", name, res.Verdicts)
		}
		if res.Commits == 0 {
			t.Fatalf("%s: no commits", name)
		}
		if len(res.Ops) == 0 {
			t.Fatalf("%s: no per-op counts", name)
		}
		if res.IndexScans == 0 {
			t.Fatalf("%s: planner never chose the index", name)
		}
		if res.IndexWALPuts == 0 {
			t.Fatalf("%s: no index WAL records — index writes bypass the log", name)
		}
		if len(res.Verdicts) < 3 { // index-coherent rw + ro0, convergence ro0
			t.Fatalf("%s: thin verdict sheet: %v", name, res.Verdicts)
		}
	}
}

// TestRunSuiteChaos runs the idx-range suite under the standard chaos
// gauntlet: faults fire, yet index coherence and convergence must hold.
func TestRunSuiteChaos(t *testing.T) {
	res := RunSuite(SuiteConfig{
		Suite: core.SuiteIdxRange, Kind: cdb.CDB1,
		Span: 8 * time.Second, Concurrency: 6, Chaos: true,
	})
	if len(res.Applied) == 0 {
		t.Fatal("chaos schedule injected nothing")
	}
	if !res.Passed() {
		t.Fatalf("verdicts failed under chaos: %v", res.Verdicts)
	}
	if res.Commits == 0 {
		t.Fatal("no commits under chaos")
	}
}

// TestRunSuitePartition runs the timeseries suite through the gray
// partition: the fail-over must complete, the fenced-write check must see
// index WAL records (stale-epoch index writes are refused with their data),
// and post-promotion index state must be coherent on every node.
func TestRunSuitePartition(t *testing.T) {
	res := RunSuite(SuiteConfig{
		Suite: core.SuiteTimeseries, Kind: cdb.CDB4,
		Span: 12 * time.Second, Concurrency: 6, Partition: true,
	})
	if !res.Passed() {
		t.Fatalf("verdicts failed under partition: %v", res.Verdicts)
	}
	if res.Epoch < 2 {
		t.Fatalf("fail-over never advanced the lease: epoch %d", res.Epoch)
	}
	if res.IndexWALPuts == 0 {
		t.Fatal("no index WAL records in any node log during the partition run")
	}
	hasFence := false
	for _, v := range res.Verdicts {
		if v.Name == "no-split-brain" {
			hasFence = true
		}
	}
	if !hasFence && len(res.Verdicts) < 4 {
		t.Fatalf("fence verdicts missing from the sheet: %v", res.Verdicts)
	}
}

// TestRunSuiteDeterministic re-runs one suite config and requires an
// identical result — the cheap in-package determinism gate (the full
// cross-GOMAXPROCS matrix lives in determinism_test.go).
func TestRunSuiteDeterministic(t *testing.T) {
	cfg := SuiteConfig{Suite: core.SuiteLob, Kind: cdb.RDS, Span: 3 * time.Second, Concurrency: 4}
	a := RunSuite(cfg)
	b := RunSuite(cfg)
	if a.Commits != b.Commits || a.TPS != b.TPS || a.IndexScans != b.IndexScans ||
		a.IndexWALPuts != b.IndexWALPuts || len(a.Ops) != len(b.Ops) {
		t.Fatalf("suite run not deterministic:\n a=%+v\n b=%+v", a, b)
	}
	for i := range a.Ops {
		if a.Ops[i] != b.Ops[i] {
			t.Fatalf("op counts differ: %v vs %v", a.Ops, b.Ops)
		}
	}
}
