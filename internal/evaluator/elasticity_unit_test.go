package evaluator

import (
	"testing"
	"time"

	"cloudybench/internal/meter"
)

func sec(n int) time.Duration { return time.Duration(n) * time.Second }

func TestLastStepInWindows(t *testing.T) {
	s := meter.NewSeries(1)
	s.Set(sec(5), 2)
	s.Set(sec(8), 3)
	s.Set(sec(20), 1)
	if got := lastStepIn(s, sec(0), sec(10)); got != sec(8) {
		t.Fatalf("lastStepIn(0,10) = %v, want 8s", got)
	}
	// No steps in window: returns the window start.
	if got := lastStepIn(s, sec(10), sec(15)); got != sec(10) {
		t.Fatalf("lastStepIn(10,15) = %v, want 10s", got)
	}
	// Step exactly at the window end is included.
	if got := lastStepIn(s, sec(10), sec(20)); got != sec(20) {
		t.Fatalf("lastStepIn(10,20) = %v, want 20s", got)
	}
}

func TestOLTPConfigDefaults(t *testing.T) {
	c := OLTPConfig{}.withDefaults()
	if c.SF != 1 || c.Replicas != 1 || c.Warmup == 0 || c.Measure == 0 || c.Seed == 0 {
		t.Fatalf("defaults: %+v", c)
	}
	if got := (OLTPConfig{Replicas: NoReplicas}).withDefaults().Replicas; got != 0 {
		t.Fatalf("NoReplicas -> %d", got)
	}
	if got := (OLTPConfig{Replicas: 2}).withDefaults().Replicas; got != 2 {
		t.Fatalf("explicit replicas -> %d", got)
	}
}

func TestElasticityConfigDefaults(t *testing.T) {
	c := ElasticityConfig{}.withDefaults()
	if c.Tau != 110 || c.SlotLength != time.Minute || c.CostSlots != 10 {
		t.Fatalf("defaults: %+v", c)
	}
}

func TestFailoverConfigDefaults(t *testing.T) {
	c := FailoverConfig{}.withDefaults()
	if c.Concurrency != 150 || c.Baseline != 10*time.Second || c.Timeout != 120*time.Second {
		t.Fatalf("defaults: %+v", c)
	}
}

func TestTenancyConfigDefaultsMix(t *testing.T) {
	c := TenancyConfig{}.withDefaults()
	if c.Mix.T3 != 80 {
		t.Fatalf("default mix: %+v", c.Mix)
	}
	if c.SlotLength != time.Minute {
		t.Fatalf("default slot: %v", c.SlotLength)
	}
}

func TestGeoMean(t *testing.T) {
	if got := geoMean([]float64{4, 9}); got != 6 {
		t.Fatalf("geoMean(4,9) = %v", got)
	}
	if geoMean(nil) != 0 || geoMean([]float64{0, 5}) != 0 {
		t.Fatal("degenerate geoMean")
	}
}
