package evaluator

import (
	"fmt"
	"testing"
	"time"

	"cloudybench/internal/cdb"
	"cloudybench/internal/engine"
)

func quickCrash(kind cdb.Kind, recovery engine.RecoveryOpts) CrashResult {
	return RunCrash(CrashConfig{
		Kind: kind, Span: 10 * time.Second, Concurrency: 6, Seed: 7,
		Recovery: recovery,
	})
}

// crashFingerprint flattens a result into a comparable string: every metric,
// verdict, recovery outcome, timeline mark, and applied-fault timestamp.
func crashFingerprint(r CrashResult) string {
	s := fmt.Sprintf("%s c=%d e=%d t=%d rr=%d f=%d ep=%d tps=%.6f|",
		r.Kind, r.Commits, r.Errors, r.Terminals, r.Reroutes, r.Fenced, r.Epoch, r.BaselineTPS)
	for _, c := range r.Crashes {
		s += fmt.Sprintf("%v:%s:rec=%d redo=%d undo=%d losers=%d torn=%v err=%q;",
			c.At, c.Target, c.Stats.Records, c.Stats.RedoSince, c.Stats.UndoRecords,
			c.Stats.Losers, c.Stats.TornDetected, c.Err)
	}
	for _, v := range r.Verdicts {
		s += fmt.Sprintf("%s=%v/%d;", v.Name, v.Passed, v.Checked)
	}
	for _, ev := range r.Timeline {
		s += fmt.Sprintf("%v:%s;", ev.At, ev.Phase)
	}
	for _, a := range r.Applied {
		s += fmt.Sprintf("%v:%s:%s;", a.At, a.Kind, a.Target)
	}
	return s
}

// TestCrashGauntletAllArchitecturesSurvive kills every SUT's nodes at the
// scheduled instants and demands the full verdict sheet stay green: no
// acknowledged commit lost, no unacknowledged write resurrected, indexes
// coherent, replicas converged.
func TestCrashGauntletAllArchitecturesSurvive(t *testing.T) {
	for _, kind := range cdb.Kinds {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			r := quickCrash(kind, engine.RecoveryOpts{})
			if !r.Passed() {
				for _, v := range r.Verdicts {
					if !v.Passed {
						t.Errorf("%s: %s", v.Name, v)
					}
				}
			}
			if r.Commits == 0 {
				t.Error("no commits survived the gauntlet")
			}
			if len(r.Crashes) == 0 {
				t.Fatal("no crash recovery outcomes recorded")
			}
			for _, c := range r.Crashes {
				if c.Err != "" {
					t.Errorf("crash %s@%v: recovery failed: %s", c.Target, c.At, c.Err)
				}
			}
		})
	}
}

// TestCrashRecoveryIsRealWork: a restart-in-place primary's recovery must
// scan the durable log it actually accumulated — the ARIES stats in the
// outcome prove the redo/undo passes ran over real records, and a torn tail
// must have been detected and cut for the TornFlip kills.
func TestCrashRecoveryIsRealWork(t *testing.T) {
	r := quickCrash(cdb.RDS, engine.RecoveryOpts{})
	var redo, torn bool
	for _, c := range r.Crashes {
		if c.Target == "rw" && c.Stats.RedoSince > 0 {
			redo = true
		}
		if c.Stats.TornDetected {
			torn = true
		}
	}
	if !redo {
		t.Error("no RW recovery replayed any log records — recovery is not doing real work")
	}
	if !torn {
		t.Error("no torn tail was ever detected despite TornFlip kills")
	}
}

// TestCrashRecoveryTimeScalesWithLog: recovery time is emergent, not
// scripted — the same architecture crashing with more accumulated log (more
// clients, same schedule) must spend longer between the kill and the
// service-restored mark.
func TestCrashRecoveryTimeScalesWithLog(t *testing.T) {
	firstRecovery := func(r CrashResult) (time.Duration, int) {
		injected := firstMarkAfter(r.Timeline, -1, "RW crash injected")
		restored := firstMarkAfter(r.Timeline, injected, "RW service restored")
		if injected <= 0 || restored <= 0 {
			t.Fatalf("timeline missing crash/restore marks: %v", r.Timeline)
		}
		for _, c := range r.Crashes {
			if c.Target == "rw" && c.Stats.Records > 0 {
				return restored - injected, c.Stats.RedoSince
			}
		}
		t.Fatalf("no RW crash ran a real recovery pass: %+v", r.Crashes)
		return 0, 0
	}
	light := RunCrash(CrashConfig{Kind: cdb.RDS, Span: 10 * time.Second, Concurrency: 2, Seed: 7})
	heavy := RunCrash(CrashConfig{Kind: cdb.RDS, Span: 10 * time.Second, Concurrency: 12, Seed: 7})
	lt, lr := firstRecovery(light)
	ht, hr := firstRecovery(heavy)
	if hr <= lr {
		t.Fatalf("heavier traffic accumulated no more log: %d vs %d records", hr, lr)
	}
	if ht <= lt {
		t.Errorf("recovery time did not grow with the log: %v (%d records) vs %v (%d records)",
			lt, lr, ht, hr)
	}
}

// TestCrashRunIsDeterministic demands the whole report — metrics, recovery
// stats, verdicts, timeline, fault log — be identical across two same-seed
// runs.
func TestCrashRunIsDeterministic(t *testing.T) {
	a := crashFingerprint(quickCrash(cdb.CDB1, engine.RecoveryOpts{}))
	b := crashFingerprint(quickCrash(cdb.CDB1, engine.RecoveryOpts{}))
	if a != b {
		t.Fatalf("crash run diverged:\n%s\nvs\n%s", a, b)
	}
}

// TestCrashGauntletHasTeeth runs the same gauntlet with recovery
// deliberately broken — undo skipped, torn tails trusted — and demands the
// durability verdicts FAIL: in-flight losers' writes survive recovery, which
// NoResurrection must name.
func TestCrashGauntletHasTeeth(t *testing.T) {
	r := quickCrash(cdb.RDS, engine.RecoveryOpts{SkipUndo: true, SkipTornCheck: true})
	if r.Passed() {
		t.Fatal("verdict sheet passed with undo skipped and torn tails trusted")
	}
	var durability bool
	for _, v := range r.Verdicts {
		if (v.Name == "durability/rw" || v.Name == "no-resurrection/rw") && !v.Passed {
			durability = true
		}
	}
	if !durability {
		t.Fatalf("expected a durability verdict to fail, verdicts: %v", r.Verdicts)
	}
}
