package evaluator

import (
	"fmt"
	"testing"
	"time"

	"cloudybench/internal/cdb"
)

// chaosFingerprint flattens a result into a comparable string: every metric,
// verdict, and applied-fault timestamp.
func chaosFingerprint(r ChaosResult) string {
	s := fmt.Sprintf("%s c=%d a=%d e=%d f=%d tps=%.6f q=%v|", r.Kind, r.Commits, r.Aborts, r.Errors, r.InjectedFaults, r.TPS, r.QuiesceTime)
	for _, v := range r.Verdicts {
		s += fmt.Sprintf("%s=%v/%d;", v.Name, v.Passed, v.Checked)
	}
	for _, a := range r.Applied {
		s += fmt.Sprintf("%v:%s:%s;", a.At, a.Kind, a.Target)
	}
	return s
}

func quickChaos(kind cdb.Kind, breakNth int) ChaosResult {
	return RunChaos(ChaosConfig{
		Kind: kind, Span: 6 * time.Second, Concurrency: 4, Seed: 7,
		BreakReplayEveryNth: breakNth,
	})
}

// TestChaosInvariantsHoldUnderFaults runs one representative of each
// architecture family through the gauntlet (the full five-SUT sweep runs in
// the experiment; a pair keeps test wall time sane).
func TestChaosInvariantsHoldUnderFaults(t *testing.T) {
	for _, kind := range []cdb.Kind{cdb.RDS, cdb.CDB4} {
		r := quickChaos(kind, 0)
		if !r.Passed() {
			for _, v := range r.Verdicts {
				t.Errorf("%s %s: %s", kind, v.Name, v)
			}
		}
		if r.Commits == 0 {
			t.Errorf("%s: no commits recorded", kind)
		}
		if len(r.Applied) == 0 {
			t.Errorf("%s: no faults applied", kind)
		}
	}
}

// TestChaosRunIsDeterministic demands the whole verdict sheet — metrics,
// fault log, verdicts — be identical across two runs of the same seed.
func TestChaosRunIsDeterministic(t *testing.T) {
	a := chaosFingerprint(quickChaos(cdb.CDB1, 0))
	b := chaosFingerprint(quickChaos(cdb.CDB1, 0))
	if a != b {
		t.Fatalf("chaos run diverged:\n%s\nvs\n%s", a, b)
	}
}

// TestChaosCheckerHasTeeth breaks the replica deliberately (replay skips
// every 5th record) and demands the convergence checker FAIL — proving a
// PASS sheet means something.
func TestChaosCheckerHasTeeth(t *testing.T) {
	r := quickChaos(cdb.CDB1, 5)
	if r.Passed() {
		t.Fatal("verdict sheet passed despite replica replay skipping records")
	}
	failed := false
	for _, v := range r.Verdicts {
		if v.Name == "convergence/ro0" && !v.Passed {
			failed = true
		}
	}
	if !failed {
		t.Fatalf("expected convergence/ro0 to fail, verdicts: %v", r.Verdicts)
	}
}
