package evaluator

import (
	"testing"
	"time"

	"cloudybench/internal/cdb"
	"cloudybench/internal/core"
)

// TestWarmCacheHitMatchesMissMatchesUncached pins the memoization contract:
// a cache miss (first cell), a cache hit (second identical cell), and a
// fully uncached run must all produce byte-identical results — the cache
// may only save wall-clock, never perturb the measurement.
func TestWarmCacheHitMatchesMissMatchesUncached(t *testing.T) {
	base := OLTPConfig{
		Kind: cdb.CDB1, SF: 1, Mix: core.MixReadWrite, Concurrency: 12,
		Warmup: 500 * time.Millisecond, Measure: time.Second, Seed: 7,
	}
	uncached := RunOLTP(base)

	cache := NewWarmCache()
	cached := base
	cached.Warm = cache
	miss := RunOLTP(cached)
	hit := RunOLTP(cached)

	if miss != uncached {
		t.Errorf("cache miss result differs from uncached run:\nmiss:     %+v\nuncached: %+v", miss, uncached)
	}
	if hit != uncached {
		t.Errorf("cache hit result differs from uncached run:\nhit:      %+v\nuncached: %+v", hit, uncached)
	}
	if req, comp := cache.Stats(); req != 2 || comp != 1 {
		t.Errorf("cache stats = %d requests / %d computed, want 2/1", req, comp)
	}

	// A different measure window shares the warm key: the warm-up must be
	// reused (computed stays 1) and the longer run still measures real work.
	longer := cached
	longer.Measure = 2 * time.Second
	lr := RunOLTP(longer)
	if req, comp := cache.Stats(); req != 3 || comp != 1 {
		t.Errorf("cache stats after shared-key reuse = %d/%d, want 3/1", req, comp)
	}
	if lr.TPS <= 0 {
		t.Errorf("reused-warm-up run measured no throughput: %+v", lr)
	}

	// A different seed is a different warm key and must recompute.
	other := cached
	other.Seed = 8
	RunOLTP(other)
	if req, comp := cache.Stats(); req != 4 || comp != 2 {
		t.Errorf("cache stats after distinct key = %d/%d, want 4/2", req, comp)
	}
}

// BenchmarkWarmupMemo quantifies the tentpole's sweep-level win: a
// three-cell sweep sharing one warm key, with and without memoization. The
// memoized variant pays one warm-up per iteration instead of three.
func BenchmarkWarmupMemo(b *testing.B) {
	cells := func(warm *WarmCache) {
		for _, measure := range []time.Duration{400, 800, 1200} {
			RunOLTP(OLTPConfig{
				Kind: cdb.CDB1, SF: 1, Mix: core.MixReadWrite, Concurrency: 12,
				Warmup: time.Second, Measure: measure * time.Millisecond,
				Seed: 7, Warm: warm,
			})
		}
	}
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cells(nil)
		}
	})
	b.Run("memoized", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cells(NewWarmCache()) // fresh cache per iteration: 1 warm-up, 3 cells
		}
	})
}
