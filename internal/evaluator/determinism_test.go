package evaluator

import (
	"testing"
	"time"

	"cloudybench/internal/cdb"
	"cloudybench/internal/core"
)

// TestEvaluatorRunsAreDeterministic re-runs the same configuration twice
// and demands bit-identical results — the simulator's core promise, and
// what makes every number in EXPERIMENTS.md reproducible.
func TestEvaluatorRunsAreDeterministic(t *testing.T) {
	run := func() OLTPResult {
		return RunOLTP(OLTPConfig{
			Kind: cdb.CDB3, Mix: core.MixReadWrite, Concurrency: 24,
			Warmup: 500 * time.Millisecond, Measure: time.Second, Seed: 7,
		})
	}
	a, b := run(), run()
	if a.TPS != b.TPS {
		t.Fatalf("TPS diverged: %v vs %v", a.TPS, b.TPS)
	}
	if a.P50 != b.P50 || a.P99 != b.P99 {
		t.Fatalf("latency diverged: %v/%v vs %v/%v", a.P50, a.P99, b.P50, b.P99)
	}
	if a.HitRatio != b.HitRatio {
		t.Fatalf("hit ratio diverged: %v vs %v", a.HitRatio, b.HitRatio)
	}
	// A different seed must actually change the run.
	c := RunOLTP(OLTPConfig{
		Kind: cdb.CDB3, Mix: core.MixReadWrite, Concurrency: 24,
		Warmup: 500 * time.Millisecond, Measure: time.Second, Seed: 8,
	})
	if c.TPS == a.TPS && c.P99 == a.P99 {
		t.Fatal("different seeds produced identical results (suspicious)")
	}
}
