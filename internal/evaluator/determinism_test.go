package evaluator

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"cloudybench/internal/cdb"
	"cloudybench/internal/core"
	"cloudybench/internal/obs"
)

// TestEvaluatorRunsAreDeterministic re-runs the same configuration twice
// and demands bit-identical results — the simulator's core promise, and
// what makes every number in EXPERIMENTS.md reproducible.
func TestEvaluatorRunsAreDeterministic(t *testing.T) {
	run := func() OLTPResult {
		return RunOLTP(OLTPConfig{
			Kind: cdb.CDB3, Mix: core.MixReadWrite, Concurrency: 24,
			Warmup: 500 * time.Millisecond, Measure: time.Second, Seed: 7,
		})
	}
	a, b := run(), run()
	if a.TPS != b.TPS {
		t.Fatalf("TPS diverged: %v vs %v", a.TPS, b.TPS)
	}
	if a.P50 != b.P50 || a.P99 != b.P99 {
		t.Fatalf("latency diverged: %v/%v vs %v/%v", a.P50, a.P99, b.P50, b.P99)
	}
	if a.HitRatio != b.HitRatio {
		t.Fatalf("hit ratio diverged: %v vs %v", a.HitRatio, b.HitRatio)
	}
	// A different seed must actually change the run.
	c := RunOLTP(OLTPConfig{
		Kind: cdb.CDB3, Mix: core.MixReadWrite, Concurrency: 24,
		Warmup: 500 * time.Millisecond, Measure: time.Second, Seed: 8,
	})
	if c.TPS == a.TPS && c.P99 == a.P99 {
		t.Fatal("different seeds produced identical results (suspicious)")
	}
}

// TestCrossGOMAXPROCSDeterminism runs the quickstart-scale measurement at
// GOMAXPROCS=1 and GOMAXPROCS=8 with the same seed and demands byte-identical
// rendered metrics — with the tracer attached, so the observability layer is
// held to the same standard: trace counts, span aggregation, and the
// Prometheus snapshot must not depend on real parallelism. The DES kernel's
// single-runnable discipline means Go's scheduler must have no influence on
// virtual time — this is the test that catches an accidental dependency on
// real parallelism.
func TestCrossGOMAXPROCSDeterminism(t *testing.T) {
	render := func() string {
		var counts obs.CountSink
		tr := obs.NewTracer("cdb1", &counts)
		o := RunOLTP(OLTPConfig{
			Kind: cdb.CDB1, Mix: core.MixReadWrite, Concurrency: 24,
			Warmup: 500 * time.Millisecond, Measure: time.Second, Seed: 7,
			Tracer: tr,
		})
		c := RunChaos(ChaosConfig{Kind: cdb.CDB1, Span: 4 * time.Second, Concurrency: 4, Seed: 7})
		var prom strings.Builder
		if err := obs.WritePrometheus(&prom, tr.Agg()); err != nil {
			t.Fatal(err)
		}
		// Every registered workload suite is held to the same standard:
		// commits, planner split, index WAL traffic, and per-op counts must
		// not depend on real parallelism.
		var suites strings.Builder
		for _, name := range core.SuiteNames() {
			sr := RunSuite(SuiteConfig{
				Suite: name, Kind: cdb.CDB1,
				Span: 2 * time.Second, Concurrency: 3, Seed: 7,
			})
			fmt.Fprintf(&suites, "%s c=%d e=%d tps=%v ix=%d fs=%d wp=%d wd=%d ops=%v pass=%v|",
				sr.Suite, sr.Commits, sr.Errors, sr.TPS, sr.IndexScans, sr.FullScans,
				sr.IndexWALPuts, sr.IndexWALDels, sr.Ops, sr.Passed())
		}
		return fmt.Sprintf("tps=%v p50=%v p99=%v hit=%v cost=%v traces=%d spans=%d | %s | %s\n%s",
			o.TPS, o.P50, o.P99, o.HitRatio, o.CostPerMin.Total(),
			counts.Traces, counts.Spans, chaosFingerprint(c), suites.String(), prom.String())
	}
	prev := runtime.GOMAXPROCS(1)
	one := render()
	runtime.GOMAXPROCS(8)
	eight := render()
	runtime.GOMAXPROCS(prev)
	if one != eight {
		t.Fatalf("metric output differs across GOMAXPROCS:\nP=1: %s\nP=8: %s", one, eight)
	}
}

// TestTracingDoesNotPerturbResults attaches the tracer to the chaos gauntlet
// and the OLTP cell and demands byte-identical verdicts and metrics versus
// an untraced run of the same seed: recording spans must be a pure
// observation, never a virtual-time side effect (obs determinism rule 2).
func TestTracingDoesNotPerturbResults(t *testing.T) {
	chaosRun := func(tr *obs.Tracer) string {
		return chaosFingerprint(RunChaos(ChaosConfig{
			Kind: cdb.CDB2, Span: 4 * time.Second, Concurrency: 4, Seed: 7,
			Tracer: tr,
		}))
	}
	off := chaosRun(nil)
	on := chaosRun(obs.NewTracer("cdb2", &obs.CountSink{}))
	if off != on {
		t.Fatalf("chaos verdict sheet differs with tracing attached:\noff: %s\non:  %s", off, on)
	}

	oltpRun := func(tr *obs.Tracer) string {
		o := RunOLTP(OLTPConfig{
			Kind: cdb.RDS, Mix: core.MixReadWrite, Concurrency: 16,
			Warmup: 500 * time.Millisecond, Measure: time.Second, Seed: 7,
			Tracer: tr,
		})
		return fmt.Sprintf("tps=%v p50=%v p99=%v hit=%v", o.TPS, o.P50, o.P99, o.HitRatio)
	}
	if off, on := oltpRun(nil), oltpRun(obs.NewTracer("rds", nil)); off != on {
		t.Fatalf("OLTP metrics differ with tracing attached:\noff: %s\non:  %s", off, on)
	}
}
