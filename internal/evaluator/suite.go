package evaluator

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"cloudybench/internal/cdb"
	"cloudybench/internal/chaos"
	"cloudybench/internal/check"
	"cloudybench/internal/core"
	"cloudybench/internal/engine"
	"cloudybench/internal/sim"
	"cloudybench/internal/storage"
)

// sortedNames fixes the walk order over a table map so summed planner
// stats accumulate deterministically.
func sortedNames(m map[string]*engine.Table) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// SuiteConfig parameterizes one registered workload suite's run on one SUT.
// Suites compose with the same gauntlets as the Table II mix: Chaos attaches
// the standard fault schedule, Partition the gray-partition fail-over — so
// secondary-index maintenance is exercised under exactly the conditions the
// invariants judge.
type SuiteConfig struct {
	// Suite is a registered suite name (core.SuiteNames()).
	Suite string
	Kind  cdb.Kind
	SF    int
	// Concurrency is the client count (default 8).
	Concurrency int
	// Span is the traffic window (default 10s).
	Span time.Duration
	Seed int64
	// Chaos runs the suite under the standard chaos gauntlet.
	Chaos bool
	// Partition runs the suite under the gray-partition gauntlet (fail-over
	// or await-heal restart, lease fencing, resilient client).
	Partition bool
	// ScanOverride intercepts every read-only suite scan — the differential
	// harness's dual-plan hook. Nil scans through the planner normally.
	ScanOverride core.ScanFunc
}

func (c SuiteConfig) withDefaults() SuiteConfig {
	if c.SF < 1 {
		c.SF = 1
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 8
	}
	if c.Span <= 0 {
		c.Span = 10 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	return c
}

// SuiteResult is one suite × SUT verdict sheet plus planner and index-WAL
// accounting.
type SuiteResult struct {
	Suite string
	Kind  cdb.Kind

	Commits   int64
	Errors    int64
	Terminals int64
	TPS       float64
	// Ops is the per-operation commit breakdown, sorted by op name.
	Ops []core.OpCount

	// IndexScans / FullScans total the planner's choices across every node
	// and table (the selectivity sweep shows up as a split between them).
	IndexScans int64
	FullScans  int64
	// IndexWALPuts / IndexWALDels count the RecIndexPut / RecIndexDelete
	// records across all node logs — proof that index maintenance flows
	// through the WAL (and therefore through fencing and replication).
	IndexWALPuts int64
	IndexWALDels int64

	Fenced int64
	Epoch  uint64

	Verdicts []check.Verdict
	Applied  []chaos.Applied
}

// Passed reports whether every invariant held.
func (r SuiteResult) Passed() bool { return check.AllPassed(r.Verdicts) }

// RunSuite drives one registered suite against one SUT, optionally under
// the chaos or partition gauntlet, then judges IndexCoherent on every node
// and Convergence on every replica. Deterministic: the same config yields
// the same verdicts and metrics.
func RunSuite(cfg SuiteConfig) SuiteResult {
	cfg = cfg.withDefaults()
	suite := core.SuiteByName(cfg.Suite)
	if suite == nil {
		panic(fmt.Sprintf("evaluator: unknown suite %q (have %v)", cfg.Suite, core.SuiteNames()))
	}
	s := sim.New(simEpoch)
	d := cdb.MustDeploy(s, cdb.ProfileFor(cfg.Kind), cdb.Options{
		SF: cfg.SF, Seed: cfg.Seed, Replicas: 1, PreWarm: true,
		Serverless:  cdb.Bool(false),
		ExtraSchema: func(db *engine.DB) error { return suite.Tables(db, cfg.SF, cfg.Seed) },
	})
	if cfg.Partition {
		d.Fence.SetRecording(true)
	}

	var inj *chaos.Injector
	injectAt := cfg.Span
	if cfg.Chaos || cfg.Partition {
		sched := chaos.Standard(cfg.Span)
		if cfg.Partition {
			sched = PartitionSchedule(cfg.Span)
			for _, ev := range sched.Events {
				if ev.Kind == chaos.Partition || ev.Kind == chaos.AsymPartition {
					injectAt = ev.At
					break
				}
			}
		}
		var err error
		inj, err = chaos.NewInjector(s, sched, chaos.Targets{
			Cluster: d.Cluster,
			Links:   d.Links(),
			Net:     d.Net,
			Seed:    cfg.Seed,
		})
		if err != nil {
			panic("evaluator: suite schedule: " + err.Error())
		}
		inj.Start()
	}
	if cfg.Partition {
		d.StartDetector()
	}

	col := core.NewCollector()
	r := core.NewRunner(s, core.Config{
		Name: "suite/" + cfg.Suite, Seed: cfg.Seed,
		Write:          d.RW,
		Read:           d.ReadNode,
		ReadCandidates: d.ReadCandidates,
		Reachable:      d.ClientReachable,
		Collector:      col,
		Ops:            suite.Ops(cfg.SF),
		ScanOverride:   cfg.ScanOverride,
	})

	s.Go("ctl", func(p *sim.Proc) {
		r.SetConcurrency(cfg.Concurrency)
		p.Sleep(cfg.Span)
		r.Stop()
		r.Wait(p)
		if cfg.Partition {
			// Keep the cluster running until write service is restored, so
			// the post-fail-over index state is judged, not the mid-outage
			// one (bounded by a virtual deadline).
			deadline := p.Elapsed() + 2*time.Minute
			for p.Elapsed() < deadline && !recoveredAfter(d.Cluster.Timeline(), injectAt) {
				p.Sleep(500 * time.Millisecond)
			}
		}
		for _, st := range d.Streams() {
			for {
				shipped, applied := st.Counts()
				if st.Backlog() == 0 && shipped == applied {
					break
				}
				p.Sleep(10 * time.Millisecond)
			}
		}
		d.Shutdown()
	})
	if err := s.Run(); err != nil {
		panic("evaluator: suite run: " + err.Error())
	}

	res := SuiteResult{
		Suite:     cfg.Suite,
		Kind:      cfg.Kind,
		Commits:   col.Commits(),
		Errors:    col.Errors(),
		Terminals: col.Terminals(),
		TPS:       col.TPS(0, cfg.Span),
		Ops:       col.OpCounts(),
		Fenced:    d.Fence.Rejects(),
		Epoch:     d.Fence.Epoch(),
	}
	if inj != nil {
		res.Applied = inj.Applied()
	}
	for _, n := range d.Nodes() {
		tables := n.DB.Tables()
		for _, name := range sortedNames(tables) {
			ix, full := tables[name].ScanStats()
			res.IndexScans += ix
			res.FullScans += full
		}
		for _, rec := range n.DB.Log().Read(0, 0) {
			switch rec.Type {
			case storage.RecIndexPut:
				res.IndexWALPuts++
			case storage.RecIndexDelete:
				res.IndexWALDels++
			}
		}
	}

	// Verdicts: the lease trio (partition only), index coherence on every
	// node, convergence on every replica.
	if cfg.Partition {
		res.Verdicts = append(res.Verdicts, check.FenceVerdicts(d.Fence)...)
	}
	rwDB := d.RW().DB
	for _, m := range d.Cluster.Members() {
		name := m.Node.Name
		if i := strings.LastIndexByte(name, '/'); i >= 0 {
			name = name[i+1:]
		}
		res.Verdicts = append(res.Verdicts, check.IndexCoherent(name, m.Node.DB))
		if m.Node != d.RW() {
			res.Verdicts = append(res.Verdicts, check.Convergence(name, rwDB, m.Node.DB))
		}
	}
	return res
}
