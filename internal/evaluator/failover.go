package evaluator

import (
	"time"

	"cloudybench/internal/cdb"
	"cloudybench/internal/cluster"
	"cloudybench/internal/core"
	"cloudybench/internal/node"
	"cloudybench/internal/sim"
)

// FailoverConfig parameterizes one fail-over run (paper §II-E, Table VIII,
// Figure 7): steady read-write traffic, a restart-model failure injection
// on the RW or an RO node, and two-phase recovery measurement.
type FailoverConfig struct {
	Kind cdb.Kind
	// Role selects the failed node (cluster.RW or cluster.RO).
	Role cluster.Role
	// Concurrency is the total worker count (paper: 150), split between a
	// write stream against the RW node and a read stream pinned to the
	// replica so each role's recovery is observable.
	Concurrency int
	// Baseline is the steady period before injection (default 10s).
	Baseline time.Duration
	// Timeout bounds the post-injection observation (default 120s).
	Timeout time.Duration
	SF      int
	Seed    int64
}

func (c FailoverConfig) withDefaults() FailoverConfig {
	if c.Concurrency <= 0 {
		c.Concurrency = 150
	}
	if c.Baseline <= 0 {
		c.Baseline = 10 * time.Second
	}
	if c.Timeout <= 0 {
		c.Timeout = 120 * time.Second
	}
	if c.SF < 1 {
		c.SF = 1
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	return c
}

// FailoverResult reports the two recovery phases.
type FailoverResult struct {
	Kind cdb.Kind
	Role cluster.Role

	BaselineTPS float64
	// F is phase one: failure injection until the service accepts
	// requests again (first TPS bucket above a small fraction of the
	// baseline — raw non-zero would be fooled by in-flight transactions
	// draining lock queues during the outage).
	F time.Duration
	// R is phase two: service recovery until TPS regains the pre-failure
	// level (first bucket at >= 90% of baseline).
	R time.Duration
	// Timeline is the cluster's phase trace (Figure 7 for CDB4).
	Timeline []cluster.PhaseEvent
}

// RunFailover injects one failure and measures recovery.
func RunFailover(cfg FailoverConfig) FailoverResult {
	cfg = cfg.withDefaults()
	s := sim.New(simEpoch)
	d := cdb.MustDeploy(s, cdb.ProfileFor(cfg.Kind), cdb.Options{
		SF: cfg.SF, Seed: cfg.Seed, Replicas: 1, PreWarm: true,
		Serverless: cdb.Bool(false),
	})

	// Write stream to the current RW (follows promotion); read stream
	// pinned to the first replica member (whichever node fills that role).
	writeCol, readCol := core.NewCollector(), core.NewCollector()
	writeRunner := core.NewRunner(s, core.Config{
		Name: "writes", Seed: cfg.Seed, Mix: core.MixReadWrite,
		Write: d.RW, Read: d.RW,
		Collector: writeCol, RetryBackoff: 200 * time.Millisecond,
	})
	replicaNode := func() *node.Node { return d.Cluster.Replica(0).Node }
	readRunner := core.NewRunner(s, core.Config{
		Name: "reads", Seed: cfg.Seed + 1, Mix: core.MixReadOnly,
		Write: replicaNode, Read: replicaNode,
		Collector: readCol, RetryBackoff: 200 * time.Millisecond,
	})

	writeCon := cfg.Concurrency / 3
	readCon := cfg.Concurrency - writeCon
	injectAt := cfg.Baseline
	end := injectAt + cfg.Timeout

	s.Go("ctl", func(p *sim.Proc) {
		writeRunner.SetConcurrency(writeCon)
		readRunner.SetConcurrency(readCon)
		p.Sleep(injectAt)
		var target *cluster.Member
		if cfg.Role == cluster.RW {
			target = d.Cluster.RWMember()
		} else {
			target = d.Cluster.Replica(0)
		}
		d.Cluster.InjectRestart(p, target)
		// Observe recovery, terminating early once throughput holds at
		// the baseline for a few consecutive buckets.
		col := writeCol
		if cfg.Role == cluster.RO {
			col = readCol
		}
		baseline := col.TPS(0, injectAt)
		for p.Elapsed() < end {
			p.Sleep(5 * time.Second)
			now := p.Elapsed()
			if now < injectAt+15*time.Second {
				continue
			}
			if col.TPS(now-3*time.Second, now) >= baseline*0.9 {
				break
			}
		}
		writeRunner.Stop()
		readRunner.Stop()
		writeRunner.Wait(p)
		readRunner.Wait(p)
		d.Shutdown()
	})
	if err := s.Run(); err != nil {
		panic("evaluator: failover run: " + err.Error())
	}

	col := writeCol
	if cfg.Role == cluster.RO {
		col = readCol
	}
	res := FailoverResult{
		Kind:        cfg.Kind,
		Role:        cfg.Role,
		BaselineTPS: col.TPS(0, injectAt),
		Timeline:    d.Cluster.Timeline(),
	}
	counter := col.CommitCounter()
	// Stragglers draining lock queues commit a handful of transactions
	// mid-outage, so both phase boundaries use a small baseline fraction
	// rather than raw zero/non-zero.
	serviceThreshold := res.BaselineTPS * 0.05
	if serviceThreshold < 2 {
		serviceThreshold = 2
	}
	buckets := counter.Buckets(injectAt, end)
	outage, serviceBack := -1, -1
	for i, b := range buckets {
		if outage < 0 {
			if b < serviceThreshold {
				outage = i
			}
			continue
		}
		if b >= serviceThreshold {
			serviceBack = i
			break
		}
	}
	if outage >= 0 && serviceBack > 0 {
		backAt := injectAt + time.Duration(serviceBack)*time.Second
		res.F = backAt - injectAt
		// Phase two: TPS back to >= 90% of baseline.
		if recovered, ok := counter.FirstBucketReaching(backAt, res.BaselineTPS*0.9); ok {
			res.R = recovered - backAt
		} else {
			res.R = end - backAt // never fully recovered in window
		}
	} else if outage >= 0 {
		// Service never came back inside the observation window: the whole
		// window is phase one. Without this, a total outage would report
		// F=0/R=0 — indistinguishable from a perfect run.
		res.F = end - injectAt
		res.R = 0
	}
	return res
}
