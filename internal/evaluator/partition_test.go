package evaluator

import (
	"fmt"
	"testing"
	"time"

	"cloudybench/internal/cdb"
)

func quickPartition(kind cdb.Kind, disableFencing bool) PartitionResult {
	return RunPartition(PartitionConfig{
		Kind: kind, Span: 10 * time.Second, Concurrency: 6, Seed: 7,
		DisableFencing: disableFencing,
	})
}

// partitionFingerprint flattens a result into a comparable string: every
// metric, verdict, timeline mark, and applied-fault timestamp.
func partitionFingerprint(r PartitionResult) string {
	s := fmt.Sprintf("%s c=%d e=%d t=%d rr=%d f=%d ep=%d mttd=%v mttr=%v un=%v tps=%.6f|",
		r.Kind, r.Commits, r.Errors, r.Terminals, r.Reroutes, r.Fenced, r.Epoch,
		r.MTTD, r.MTTR, r.Unavailable, r.BaselineTPS)
	for _, v := range r.Verdicts {
		s += fmt.Sprintf("%s=%v/%d;", v.Name, v.Passed, v.Checked)
	}
	for _, ev := range r.Timeline {
		s += fmt.Sprintf("%v:%s;", ev.At, ev.Phase)
	}
	for _, a := range r.Applied {
		s += fmt.Sprintf("%v:%s:%s;", a.At, a.Kind, a.Target)
	}
	return s
}

// TestPartitionPromoteArchitectureFailsOverAndFences: CDB4's detector must
// promote the reachable replica under an advanced lease epoch, fence the
// still-writing old primary, and keep every invariant green.
func TestPartitionPromoteArchitectureFailsOverAndFences(t *testing.T) {
	r := quickPartition(cdb.CDB4, false)
	if !r.Passed() {
		for _, v := range r.Verdicts {
			t.Errorf("%s: %s", v.Name, v)
		}
	}
	if r.MTTD <= 0 {
		t.Error("partition never detected")
	}
	if r.MTTR <= 0 {
		t.Error("write service never restored")
	}
	if r.Epoch != 2 {
		t.Errorf("lease epoch = %d, want 2 after one fail-over", r.Epoch)
	}
	if r.Fenced == 0 {
		t.Error("gray partition produced no fenced writes: the old primary was never tested")
	}
	if r.Commits == 0 {
		t.Error("no commits")
	}
}

// TestPartitionRestartArchitectureWaitsForHeal: RDS has no promotable
// replica, so repair must wait out the partition and restart in place —
// visibly slower than the promote architectures.
func TestPartitionRestartArchitectureWaitsForHeal(t *testing.T) {
	rds := quickPartition(cdb.RDS, false)
	if !rds.Passed() {
		for _, v := range rds.Verdicts {
			t.Errorf("%s: %s", v.Name, v)
		}
	}
	if rds.Epoch != 1 {
		t.Errorf("RDS lease epoch = %d, want 1 (no promotion)", rds.Epoch)
	}
	if rds.MTTR <= 0 {
		t.Fatal("RDS never restored write service")
	}
	cdb4 := quickPartition(cdb.CDB4, false)
	if rds.MTTR <= cdb4.MTTR*2 {
		t.Errorf("RDS MTTR %v not clearly worse than CDB4's %v — restart-in-place should dominate", rds.MTTR, cdb4.MTTR)
	}
}

// TestPartitionRunIsDeterministic demands the whole report — metrics,
// verdicts, timeline, fault log — be identical across two same-seed runs.
func TestPartitionRunIsDeterministic(t *testing.T) {
	a := partitionFingerprint(quickPartition(cdb.CDB1, false))
	b := partitionFingerprint(quickPartition(cdb.CDB1, false))
	if a != b {
		t.Fatalf("partition run diverged:\n%s\nvs\n%s", a, b)
	}
}

// TestPartitionCheckerHasTeeth disables the write lease and demands the
// no-split-brain checker FAIL: with fencing off, the partitioned old primary
// keeps acknowledging commits under its stale epoch — two unfenced primaries.
func TestPartitionCheckerHasTeeth(t *testing.T) {
	r := quickPartition(cdb.CDB4, true)
	if r.Passed() {
		t.Fatal("verdict sheet passed with fencing disabled")
	}
	var splitBrain bool
	for _, v := range r.Verdicts {
		if v.Name == "no-split-brain" && !v.Passed {
			splitBrain = true
		}
	}
	if !splitBrain {
		t.Fatalf("expected no-split-brain to fail, verdicts: %v", r.Verdicts)
	}
}
