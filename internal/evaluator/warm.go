package evaluator

import (
	"sync"
	"time"

	"cloudybench/internal/cdb"
	"cloudybench/internal/core"
	"cloudybench/internal/engine"
	"cloudybench/internal/storage"
)

// Warm-up memoization (DESIGN.md §15). Every RunOLTP executes in two phases:
// a warm-up phase that loads the cluster and drains replication to a
// quiescent point, and a measurement phase that deploys a fresh cluster,
// restores the warm-up's snapshot into it, and runs the measured window on a
// virtual clock pre-advanced to the snapshot offset (sim.NewAt). Because the
// measurement phase always starts from a snapshot — whether that snapshot
// was just computed or pulled from a cache — a cache hit is byte-identical
// to a miss, and both to a run with no cache at all.

// WarmKey identifies one warm-up: every OLTPConfig field that influences the
// pre-measurement state. Measure is excluded (it only extends the fork);
// Tracer and Warm are instrumentation, not workload.
type WarmKey struct {
	Kind         cdb.Kind
	SF           int
	Mix          core.Mix
	Concurrency  int
	Distribution string
	Replicas     int
	Warmup       time.Duration
	BufferBytes  int64
	Seed         int64
}

type nodeWarmState struct {
	db  engine.DBSnapshot
	buf storage.BufSnapshot
}

// WarmSnapshot is the quiescent post-warm-up state of one OLTP deployment:
// per-node engine and buffer-pool snapshots, the shared remote pool (CDB4),
// the collector (latency percentiles span warm-up and measurement, so
// warm-up samples must carry over), and the virtual-time offset at which the
// snapshot was taken.
type WarmSnapshot struct {
	offset time.Duration
	nodes  []nodeWarmState // in Deployment.Nodes() order
	remote *storage.BufSnapshot
	col    core.CollectorSnapshot
}

// Offset returns the virtual time at which the warm-up quiesced — the start
// of the measured window for any cell forked from this snapshot.
func (w *WarmSnapshot) Offset() time.Duration { return w.offset }

// WarmCache memoizes warm-up snapshots across sweep cells sharing a WarmKey.
// It is safe under the experiment layer's parallel cell pool: the mutex
// guards the map, and a per-entry sync.Once makes the first cell to want a
// key compute it while the rest block and reuse it. Snapshots are immutable
// once computed (restore copies), so any number of cells fork concurrently.
type WarmCache struct {
	mu      sync.Mutex
	entries map[WarmKey]*warmEntry

	computed int64 // warm-ups actually run (misses)
	requests int64
}

type warmEntry struct {
	once sync.Once
	snap *WarmSnapshot
}

// NewWarmCache returns an empty warm-up cache.
func NewWarmCache() *WarmCache { return &WarmCache{} }

// get returns the snapshot for key, running compute exactly once per key.
func (c *WarmCache) get(key WarmKey, compute func() *WarmSnapshot) *WarmSnapshot {
	c.mu.Lock()
	if c.entries == nil {
		c.entries = make(map[WarmKey]*warmEntry)
	}
	c.requests++
	e := c.entries[key]
	if e == nil {
		e = &warmEntry{}
		c.entries[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() {
		snap := compute()
		c.mu.Lock()
		c.computed++
		c.mu.Unlock()
		e.snap = snap
	})
	return e.snap
}

// Stats returns how many snapshot lookups the cache served and how many
// warm-ups it actually ran (requests - computed = cells that skipped one).
func (c *WarmCache) Stats() (requests, computed int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.requests, c.computed
}
