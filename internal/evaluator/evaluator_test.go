package evaluator

import (
	"testing"
	"time"

	"cloudybench/internal/cdb"
	"cloudybench/internal/cluster"
	"cloudybench/internal/core"
	"cloudybench/internal/patterns"
)

func TestRunOLTPBasics(t *testing.T) {
	r := RunOLTP(OLTPConfig{
		Kind: cdb.CDB4, Mix: core.MixReadWrite, Concurrency: 16,
		Warmup: time.Second, Measure: 2 * time.Second,
	})
	if r.TPS < 1000 {
		t.Fatalf("CDB4 TPS = %v, want thousands", r.TPS)
	}
	if r.PScore <= 0 || r.P50 <= 0 || r.P99 < r.P50 {
		t.Fatalf("scores: P=%v p50=%v p99=%v", r.PScore, r.P50, r.P99)
	}
	if r.CostPerMin.Total() <= 0 {
		t.Fatal("no cost")
	}
}

func TestOLTPReadOnlyFasterThanWriteHeavy(t *testing.T) {
	ro := RunOLTP(OLTPConfig{Kind: cdb.RDS, Mix: core.MixReadOnly, Concurrency: 32,
		Warmup: time.Second, Measure: 2 * time.Second})
	wo := RunOLTP(OLTPConfig{Kind: cdb.RDS, Mix: core.MixWriteOnly, Concurrency: 32,
		Warmup: time.Second, Measure: 2 * time.Second})
	if ro.TPS <= wo.TPS {
		t.Fatalf("read-only TPS %v <= write-only %v", ro.TPS, wo.TPS)
	}
}

func TestOLTPShapeCDB4Fastest(t *testing.T) {
	// Paper Fig. 5: CDB4 has the highest throughput; CDB2 is buffer-bound.
	tps := map[cdb.Kind]float64{}
	for _, k := range []cdb.Kind{cdb.CDB2, cdb.CDB4} {
		r := RunOLTP(OLTPConfig{Kind: k, Mix: core.MixReadWrite, Concurrency: 64,
			Warmup: time.Second, Measure: 2 * time.Second})
		tps[k] = r.TPS
	}
	if tps[cdb.CDB4] <= tps[cdb.CDB2] {
		t.Fatalf("CDB4 (%v) should beat CDB2 (%v)", tps[cdb.CDB4], tps[cdb.CDB2])
	}
}

func TestRunE2AddingReplicaHelpsReads(t *testing.T) {
	r := RunE2(E2Config{
		Kind: cdb.RDS, Mix: core.MixReadOnly, Concurrency: 64,
		Warmup: time.Second, Measure: 2 * time.Second,
	})
	if len(r.TPS) != 2 {
		t.Fatalf("TPS series: %v", r.TPS)
	}
	if r.TPS[1] <= r.TPS[0] {
		t.Fatalf("replica did not improve read TPS: %v", r.TPS)
	}
	if r.E2Score <= 0 {
		t.Fatalf("E2 = %v", r.E2Score)
	}
}

func TestRunLagOrderingAcrossSUTs(t *testing.T) {
	// Paper §III-F: CDB4 ~1.5ms < CDB3 ~14ms < CDB1 ~177ms < CDB2 ~1082ms.
	lag := map[cdb.Kind]time.Duration{}
	for _, k := range []cdb.Kind{cdb.CDB1, cdb.CDB2, cdb.CDB3, cdb.CDB4} {
		r := RunLag(LagConfig{Kind: k, IUD: [3]float64{60, 30, 10},
			Concurrency: 4, Duration: 4 * time.Second})
		if r.UpdateLag <= 0 {
			t.Fatalf("%s: no update lag measured", k)
		}
		lag[k] = r.CScore
	}
	if !(lag[cdb.CDB4] < lag[cdb.CDB3] && lag[cdb.CDB3] < lag[cdb.CDB1] && lag[cdb.CDB1] < lag[cdb.CDB2]) {
		t.Fatalf("lag ordering wrong: %v", lag)
	}
	// Magnitudes within ~3x of the paper's values.
	if lag[cdb.CDB4] > 10*time.Millisecond {
		t.Fatalf("CDB4 lag %v, want ~ms scale", lag[cdb.CDB4])
	}
	if lag[cdb.CDB2] < 300*time.Millisecond {
		t.Fatalf("CDB2 lag %v, want ~second scale", lag[cdb.CDB2])
	}
}

func TestRunLagProbeAgreesWithReservoir(t *testing.T) {
	r := RunLag(LagConfig{Kind: cdb.CDB3, IUD: [3]float64{0, 100, 0},
		Concurrency: 4, Duration: 3 * time.Second, Probes: 5})
	if r.ProbeLag <= 0 {
		t.Fatal("no probe lag measured")
	}
	// Client-observed lag should be the same order of magnitude as the
	// internal reservoir measurement.
	if r.ProbeLag > r.UpdateLag*20 || r.UpdateLag > r.ProbeLag*20 {
		t.Fatalf("probe %v vs reservoir %v diverge wildly", r.ProbeLag, r.UpdateLag)
	}
}

func TestRunElasticityServerlessScalesAndSaves(t *testing.T) {
	slot := 30 * time.Second
	serverless := RunElasticity(ElasticityConfig{
		Kind: cdb.CDB3, Pattern: patterns.SinglePeak, Mix: core.MixReadWrite,
		Tau: 40, SlotLength: slot,
	})
	fixed := RunElasticity(ElasticityConfig{
		Kind: cdb.CDB3, Pattern: patterns.SinglePeak, Mix: core.MixReadWrite,
		Tau: 40, SlotLength: slot, Serverless: cdb.Bool(false),
	})
	// The autoscaler must actually change allocation.
	moved := false
	for i := 1; i < len(serverless.Cores); i++ {
		if serverless.Cores[i] != serverless.Cores[0] {
			moved = true
		}
	}
	if !moved {
		t.Fatalf("serverless cores series flat: %v", serverless.Cores)
	}
	// Serverless costs less over the 10-slot window (idle slots scale to
	// zero or minimum).
	if serverless.TotalCost >= fixed.TotalCost {
		t.Fatalf("serverless cost %v >= fixed %v", serverless.TotalCost, fixed.TotalCost)
	}
	// Paper: enabling serverless degrades peak performance.
	if serverless.AvgTPS >= fixed.AvgTPS {
		t.Fatalf("serverless TPS %v >= fixed %v (expected degradation)", serverless.AvgTPS, fixed.AvgTPS)
	}
	if len(serverless.Transitions) != 2 {
		t.Fatalf("single peak transitions = %d, want 2", len(serverless.Transitions))
	}
}

func TestRunElasticityCDB1GradualDownSlowerThanCDB2(t *testing.T) {
	slot := 30 * time.Second
	run := func(kind cdb.Kind) ElasticityResult {
		return RunElasticity(ElasticityConfig{
			Kind: kind, Pattern: patterns.SinglePeak, Mix: core.MixReadWrite,
			Tau: 40, SlotLength: slot,
		})
	}
	c1, c2 := run(cdb.CDB1), run(cdb.CDB2)
	down1 := c1.Transitions[len(c1.Transitions)-1]
	down2 := c2.Transitions[len(c2.Transitions)-1]
	if down1.ScalingTime <= down2.ScalingTime {
		t.Fatalf("CDB1 scale-down %v should exceed CDB2 %v (gradual descent)",
			down1.ScalingTime, down2.ScalingTime)
	}
}

func TestRunTenancyPoolWinsStaggered(t *testing.T) {
	slot := 5 * time.Second
	run := func(kind cdb.Kind, pk patterns.TenancyKind) TenancyResult {
		return RunTenancy(TenancyConfig{
			Kind: kind, Pattern: patterns.PaperTenancy(pk), SlotLength: slot,
		})
	}
	// Staggered high: the pool can hand all 12 vCores to the single busy
	// tenant; isolated CDB1 caps it at 4.
	poolStag := run(cdb.CDB2, patterns.StaggeredHigh)
	isoStag := run(cdb.CDB1, patterns.StaggeredHigh)
	if poolStag.TotalTPS <= isoStag.TotalTPS {
		t.Fatalf("pool staggered TPS %v <= isolated %v", poolStag.TotalTPS, isoStag.TotalTPS)
	}
	// High contention: isolation protects tenants; CDB1 beats CDB2.
	poolHigh := run(cdb.CDB2, patterns.HighContention)
	isoHigh := run(cdb.CDB1, patterns.HighContention)
	if isoHigh.TotalTPS <= poolHigh.TotalTPS {
		t.Fatalf("isolated contention TPS %v <= pool %v", isoHigh.TotalTPS, poolHigh.TotalTPS)
	}
	if poolStag.TScore <= 0 || isoHigh.TScore <= 0 {
		t.Fatal("T-Scores missing")
	}
	if len(poolStag.TenantTPS) != 3 {
		t.Fatalf("tenant TPS: %v", poolStag.TenantTPS)
	}
}

func TestRunFailoverShapes(t *testing.T) {
	short := func(kind cdb.Kind, role cluster.Role) FailoverResult {
		return RunFailover(FailoverConfig{
			Kind: kind, Role: role, Concurrency: 60,
			Baseline: 6 * time.Second, Timeout: 90 * time.Second,
		})
	}
	rds := short(cdb.RDS, cluster.RW)
	c4 := short(cdb.CDB4, cluster.RW)
	if rds.F == 0 || c4.F == 0 {
		t.Fatalf("no outage measured: rds=%v cdb4=%v", rds.F, c4.F)
	}
	// Paper Table VIII: RDS slowest, CDB4 fastest.
	if c4.F >= rds.F {
		t.Fatalf("CDB4 F %v >= RDS F %v", c4.F, rds.F)
	}
	if len(c4.Timeline) < 5 {
		t.Fatalf("CDB4 timeline too short: %v", c4.Timeline)
	}
	// RO failure also measurable.
	ro := short(cdb.CDB1, cluster.RO)
	if ro.F == 0 {
		t.Fatal("RO failure not observed")
	}
	if ro.BaselineTPS <= 0 {
		t.Fatal("no baseline TPS")
	}
}

// TestRunFailoverReportsTotalOutage: when the service never comes back
// inside the observation window (RDS's 22s restart against a 10s window),
// the result must report the full window as phase one, not the F=0/R=0 of a
// perfect run.
func TestRunFailoverReportsTotalOutage(t *testing.T) {
	r := RunFailover(FailoverConfig{
		Kind: cdb.RDS, Role: cluster.RW, Concurrency: 60,
		Baseline: 5 * time.Second, Timeout: 10 * time.Second,
	})
	if r.BaselineTPS <= 0 {
		t.Fatal("no baseline TPS")
	}
	if r.F != 10*time.Second {
		t.Fatalf("F = %v, want the full 10s observation window", r.F)
	}
	if r.R != 0 {
		t.Fatalf("R = %v, want 0 (service never returned, R unmeasurable)", r.R)
	}
}

func TestRunOverallComposesScores(t *testing.T) {
	if testing.Short() {
		t.Skip("composite run")
	}
	r := RunOverall(OverallConfig{
		Kind: cdb.CDB4, SlotLength: 4 * time.Second, Measure: 3 * time.Second,
		Concurrency: 48, Tau: 48,
	})
	s := r.Scores
	if s.P <= 0 || s.PStar <= 0 || s.E1 <= 0 || s.T <= 0 || s.E2 <= 0 {
		t.Fatalf("missing scores: %+v", s)
	}
	if s.F <= 0 || s.R < 0 || s.C <= 0 {
		t.Fatalf("missing durations: F=%v R=%v C=%v", s.F, s.R, s.C)
	}
	if s.O() == 0 {
		t.Fatalf("O-Score = 0 from %+v", s)
	}
	if len(r.Elasticity) != 4 || len(r.Tenancy) != 4 {
		t.Fatal("sub-experiments missing")
	}
}
