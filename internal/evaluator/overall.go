package evaluator

import (
	"time"

	"cloudybench/internal/cdb"
	"cloudybench/internal/cluster"
	"cloudybench/internal/core"
	"cloudybench/internal/metrics"
	"cloudybench/internal/patterns"
	"cloudybench/internal/sim"
)

// OverallConfig sizes the composite PERFECT evaluation (Table IX). The
// zero value gives a fast configuration; Paper=true stretches windows
// toward the paper's one-minute slots.
type OverallConfig struct {
	Kind cdb.Kind
	SF   int
	Seed int64
	// Quick shrinks every sub-experiment's windows (default true-ish
	// behaviour: slot/measure windows of a few seconds).
	SlotLength  time.Duration // default 5s
	Measure     time.Duration // default 5s OLTP measure window
	Concurrency int           // default 110
	Tau         int           // default 110
	// Fail-over sub-run windows (defaults: 6s baseline, 60s timeout,
	// concurrency 60).
	FailBaseline time.Duration
	FailTimeout  time.Duration
	FailConc     int
	// LagDuration sizes the lag sub-run (default 4s).
	LagDuration time.Duration
	// Warm forwards to the OLTP and E2 sub-runs' warm-up memoization.
	Warm *WarmCache
}

func (c OverallConfig) withDefaults() OverallConfig {
	if c.SF < 1 {
		c.SF = 1
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.SlotLength <= 0 {
		c.SlotLength = 5 * time.Second
	}
	if c.Measure <= 0 {
		c.Measure = 5 * time.Second
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 110
	}
	if c.Tau <= 0 {
		c.Tau = 110
	}
	if c.FailBaseline <= 0 {
		c.FailBaseline = 6 * time.Second
	}
	if c.FailTimeout <= 0 {
		c.FailTimeout = 60 * time.Second
	}
	if c.FailConc <= 0 {
		c.FailConc = 60
	}
	if c.LagDuration <= 0 {
		c.LagDuration = 4 * time.Second
	}
	return c
}

// OverallResult is one SUT's Table IX row plus the raw components.
type OverallResult struct {
	Kind   cdb.Kind
	Scores metrics.Scores

	OLTP       OLTPResult
	Elasticity []ElasticityResult
	Tenancy    []TenancyResult
	FailRW     FailoverResult
	FailRO     FailoverResult
	Lag        LagResult
	E2         E2Result
}

// RunOverall composes every evaluator into the unified PERFECT scores.
func RunOverall(cfg OverallConfig) OverallResult {
	cfg = cfg.withDefaults()
	res := OverallResult{Kind: cfg.Kind}

	// P-Score / P*-Score: read-write throughput against resource cost.
	res.OLTP = RunOLTP(OLTPConfig{
		Kind: cfg.Kind, SF: cfg.SF, Mix: core.MixReadWrite,
		Concurrency: cfg.Concurrency, Measure: cfg.Measure, Seed: cfg.Seed,
		Warm: cfg.Warm,
	})
	res.Scores.System = string(cfg.Kind)
	res.Scores.SF = float64(cfg.SF)
	res.Scores.P = res.OLTP.PScore
	res.Scores.PStar = pStarFromOLTP(cfg, res.OLTP)

	// E1 / E1*: average across the four elasticity patterns.
	var e1Sum, e1StarSum float64
	for _, pat := range patterns.ElasticPatterns() {
		er := RunElasticity(ElasticityConfig{
			Kind: cfg.Kind, Pattern: pat, Mix: core.MixReadWrite,
			Tau: cfg.Tau, SlotLength: cfg.SlotLength, SF: cfg.SF, Seed: cfg.Seed,
		})
		res.Elasticity = append(res.Elasticity, er)
		e1Sum += er.E1Score
		if er.ActualCost > 0 {
			costWindow := time.Duration(10) * cfg.SlotLength
			e1StarSum += metrics.E1Score(er.AvgTPS, er.ActualCost/costWindow.Minutes())
		}
	}
	n := float64(len(res.Elasticity))
	res.Scores.E1 = e1Sum / n
	res.Scores.E1Star = e1StarSum / n

	// T / T*: average across the four multi-tenancy patterns.
	var tSum, tStarSum float64
	for _, kind := range patterns.TenancyKinds {
		tr := RunTenancy(TenancyConfig{
			Kind: cfg.Kind, Pattern: patterns.PaperTenancy(kind),
			SlotLength: cfg.SlotLength, SF: cfg.SF, Seed: cfg.Seed,
		})
		res.Tenancy = append(res.Tenancy, tr)
		tSum += tr.TScore
		tStarSum += tr.TScoreStar
	}
	res.Scores.T = tSum / float64(len(res.Tenancy))
	res.Scores.TStar = tStarSum / float64(len(res.Tenancy))

	// F / R: average of RW and RO failure runs.
	res.FailRW = RunFailover(FailoverConfig{
		Kind: cfg.Kind, Role: cluster.RW, SF: cfg.SF, Seed: cfg.Seed,
		Baseline: cfg.FailBaseline, Timeout: cfg.FailTimeout, Concurrency: cfg.FailConc,
	})
	res.FailRO = RunFailover(FailoverConfig{
		Kind: cfg.Kind, Role: cluster.RO, SF: cfg.SF, Seed: cfg.Seed,
		Baseline: cfg.FailBaseline, Timeout: cfg.FailTimeout, Concurrency: cfg.FailConc,
	})
	res.Scores.F = metrics.FScore([]time.Duration{res.FailRW.F, res.FailRO.F})
	res.Scores.R = metrics.RScore([]time.Duration{res.FailRW.R, res.FailRO.R})

	// C: replication lag with the mixed IUD ratio.
	res.Lag = RunLag(LagConfig{
		Kind: cfg.Kind, IUD: PaperIUDMixes[0], SF: cfg.SF, Seed: cfg.Seed,
		Duration: cfg.LagDuration,
	})
	res.Scores.C = res.Lag.CScore

	// E2: scale-out elasticity.
	res.E2 = RunE2(E2Config{
		Kind: cfg.Kind, SF: cfg.SF, Mix: core.MixReadOnly,
		Concurrency: cfg.Concurrency, Measure: cfg.Measure, Seed: cfg.Seed,
		Warm: cfg.Warm,
	})
	res.Scores.E2 = res.E2.E2Score
	return res
}

// pStarFromOLTP recomputes productivity against the vendor's actual price
// per minute (with minimum billing applied to the measured window).
func pStarFromOLTP(cfg OverallConfig, r OLTPResult) float64 {
	s := sim.New(simEpoch)
	d := cdb.MustDeploy(s, cdb.ProfileFor(cfg.Kind), cdb.Options{
		SF: cfg.SF, Seed: cfg.Seed, Replicas: 1, Serverless: cdb.Bool(false),
	})
	s.Go("idle", func(p *sim.Proc) {
		p.Sleep(cfg.Measure)
		d.Shutdown()
	})
	if err := s.Run(); err != nil {
		panic("evaluator: pstar run: " + err.Error())
	}
	actualPerMin := d.ActualCost(0, cfg.Measure) / cfg.Measure.Minutes()
	return metrics.PScore(r.TPS, actualPerMin)
}
