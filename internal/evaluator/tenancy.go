package evaluator

import (
	"fmt"
	"math"
	"time"

	"cloudybench/internal/cdb"
	"cloudybench/internal/core"
	"cloudybench/internal/metrics"
	"cloudybench/internal/node"
	"cloudybench/internal/patterns"
	"cloudybench/internal/pricing"
	"cloudybench/internal/sim"
)

// TenancyConfig parameterizes one multi-tenancy run (paper §III-D,
// Table VII): deploy the SUT's tenancy model for the pattern's tenants and
// drive each tenant's per-slot concurrency.
type TenancyConfig struct {
	Kind    cdb.Kind
	Pattern patterns.Tenancy
	Mix     core.Mix
	// SlotLength is one pattern slot (paper: one minute).
	SlotLength time.Duration
	SF         int
	Seed       int64
}

func (c TenancyConfig) withDefaults() TenancyConfig {
	if c.SlotLength <= 0 {
		c.SlotLength = time.Minute
	}
	if c.SF < 1 {
		c.SF = 1
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Mix.T1+c.Mix.T2+c.Mix.T3+c.Mix.T4 == 0 {
		c.Mix = core.MixReadWrite
	}
	return c
}

// TenancyResult is one pattern's outcome for one SUT.
type TenancyResult struct {
	Kind    cdb.Kind
	Pattern string

	// TenantTPS[i] is tenant i's committed transactions over the full run
	// duration.
	TenantTPS  []float64
	GeoMeanTPS float64
	TotalTPS   float64
	Package    pricing.Package
	CostPerMin float64
	TScore     float64
	TScoreStar float64
}

// RunTenancy executes one multi-tenancy pattern against one SUT.
func RunTenancy(cfg TenancyConfig) TenancyResult {
	cfg = cfg.withDefaults()
	s := sim.New(simEpoch)
	prof := cdb.ProfileFor(cfg.Kind)
	nTenants := cfg.Pattern.Tenants()
	ts := cdb.MustDeployTenants(s, prof, nTenants, cdb.Options{
		SF: cfg.SF, Seed: cfg.Seed, PreWarm: true,
	})

	collectors := make([]*core.Collector, nTenants)
	runners := make([]*core.Runner, nTenants)
	for i := 0; i < nTenants; i++ {
		collectors[i] = core.NewCollector()
		tn := ts.Tenants[i].Node
		runners[i] = core.NewRunner(s, core.Config{
			Name: fmt.Sprintf("tenant%d", i), Seed: cfg.Seed + int64(i), Mix: cfg.Mix,
			Write:     func() *node.Node { return tn },
			Read:      func() *node.Node { return tn },
			Collector: collectors[i],
		})
	}
	slots := cfg.Pattern.Slots()
	total := time.Duration(slots) * cfg.SlotLength
	s.Go("ctl", func(p *sim.Proc) {
		for slot := 0; slot < slots; slot++ {
			for t, r := range runners {
				r.SetConcurrency(cfg.Pattern.PerTenant[t][slot])
			}
			p.Sleep(cfg.SlotLength)
		}
		for _, r := range runners {
			r.Stop()
		}
		for _, r := range runners {
			r.Wait(p)
		}
		ts.Shutdown()
	})
	if err := s.Run(); err != nil {
		panic("evaluator: tenancy run: " + err.Error())
	}

	res := TenancyResult{
		Kind:       cfg.Kind,
		Pattern:    cfg.Pattern.Name,
		Package:    ts.Package(),
		CostPerMin: ts.CostPerMinute(),
	}
	logOK := true
	for _, col := range collectors {
		tps := col.TPS(0, total)
		res.TenantTPS = append(res.TenantTPS, tps)
		res.TotalTPS += tps
		if tps <= 0 {
			logOK = false
		}
	}
	if logOK {
		res.GeoMeanTPS = geoMean(res.TenantTPS)
	}
	res.TScore = metrics.TScore(res.TenantTPS, res.CostPerMin)
	actualPerMin := ts.ActualCost(total) / total.Minutes()
	res.TScoreStar = metrics.TScore(res.TenantTPS, actualPerMin)
	return res
}

func geoMean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	logSum := 0.0
	for _, v := range vals {
		if v <= 0 {
			return 0
		}
		logSum += math.Log(v)
	}
	return math.Exp(logSum / float64(len(vals)))
}
