package evaluator

import (
	"time"

	"cloudybench/internal/cdb"
	"cloudybench/internal/chaos"
	"cloudybench/internal/check"
	"cloudybench/internal/core"
	"cloudybench/internal/obs"
	"cloudybench/internal/sim"
)

// ChaosConfig parameterizes one SUT's run through the chaos gauntlet.
type ChaosConfig struct {
	Kind cdb.Kind
	SF   int
	// Concurrency is the client count (default 16).
	Concurrency int
	// Span is the traffic window the fault schedule is compiled onto
	// (default 20s; must leave room for the replica restart, which takes up
	// to ~5s of virtual time depending on the SUT).
	Span time.Duration
	// Mix defaults to an all-four-transaction blend so every invariant has
	// work to judge (T1 inserts, T2 payments, T3 reads, T4 deletes).
	Mix  core.Mix
	Seed int64
	// Schedule overrides the standard gauntlet (nil = chaos.Standard(Span)).
	Schedule *chaos.Schedule
	// BreakReplayEveryNth deliberately breaks the replica's replay by
	// dropping every n-th shipped record — the convergence checker must
	// FAIL. Test-only: proves the harness has teeth.
	BreakReplayEveryNth int
	// Tracer, if non-nil, records per-transaction stage traces through the
	// gauntlet. Attaching it must not change the verdict sheet: the chaos
	// determinism test asserts byte-identical reports with tracing on/off.
	Tracer *obs.Tracer
}

func (c ChaosConfig) withDefaults() ChaosConfig {
	if c.SF < 1 {
		c.SF = 1
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 16
	}
	if c.Span <= 0 {
		c.Span = 20 * time.Second
	}
	if c.Mix == (core.Mix{}) {
		c.Mix = core.Mix{T1: 30, T2: 20, T3: 40, T4: 10}
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	return c
}

// ChaosResult is one SUT's verdict sheet plus recovery metrics.
type ChaosResult struct {
	Kind cdb.Kind

	Verdicts []check.Verdict
	Applied  []chaos.Applied // faults actually injected, in firing order

	Commits int64
	Aborts  int64
	Errors  int64 // client-visible request failures (down node, IO fault)
	TPS     float64

	// InjectedFaults counts requests the IO-error burst rejected.
	InjectedFaults int64
	// QuiesceTime is how long after traffic stopped the replication
	// backlog took to drain — the recovery tail the faults left behind.
	QuiesceTime time.Duration
}

// Passed reports whether every invariant held.
func (r ChaosResult) Passed() bool { return check.AllPassed(r.Verdicts) }

// RunChaos drives one SUT through the standard fault schedule while the
// invariant recorder watches every transaction, then quiesces replication
// and passes judgement. Deterministic: the same config yields the same
// verdicts, metrics, and fault log.
func RunChaos(cfg ChaosConfig) ChaosResult {
	cfg = cfg.withDefaults()
	s := sim.New(simEpoch)
	prof := cdb.ProfileFor(cfg.Kind)
	prof.Replication.DropEveryNth = cfg.BreakReplayEveryNth
	d := cdb.MustDeploy(s, prof, cdb.Options{
		SF: cfg.SF, Seed: cfg.Seed, Replicas: 1, PreWarm: true,
		Serverless: cdb.Bool(false),
		Tracer:     cfg.Tracer,
	})

	rec := check.NewRecorder()
	d.RW().DB.SetObserver(rec)

	sched := chaos.Standard(cfg.Span)
	if cfg.Schedule != nil {
		sched = *cfg.Schedule
	}
	inj, err := chaos.NewInjector(s, sched, chaos.Targets{
		Cluster: d.Cluster,
		Links:   d.Links(),
		Net:     d.Net,
		Seed:    cfg.Seed,
	})
	if err != nil {
		panic("evaluator: chaos schedule: " + err.Error())
	}
	inj.Start()

	col := core.NewCollector()
	r := core.NewRunner(s, core.Config{
		Name: "chaos", Seed: cfg.Seed, Mix: cfg.Mix,
		Write: d.RW, Read: d.ReadNode,
		Collector: col,
		Tracer:    cfg.Tracer,
	})

	var quiesce time.Duration
	s.Go("ctl", func(p *sim.Proc) {
		r.SetConcurrency(cfg.Concurrency)
		p.Sleep(cfg.Span)
		r.Stop()
		r.Wait(p)
		stopAt := p.Elapsed()
		for _, st := range d.Streams() {
			for {
				shipped, applied := st.Counts()
				if st.Backlog() == 0 && shipped == applied {
					break
				}
				p.Sleep(10 * time.Millisecond)
			}
		}
		quiesce = p.Elapsed() - stopAt
		d.Shutdown()
	})
	if err := s.Run(); err != nil {
		panic("evaluator: chaos run: " + err.Error())
	}

	res := ChaosResult{
		Kind:        cfg.Kind,
		Applied:     inj.Applied(),
		Errors:      col.Errors(),
		TPS:         col.TPS(0, cfg.Span),
		QuiesceTime: quiesce,
	}
	res.Commits, res.Aborts = rec.Counts()
	for _, n := range d.Nodes() {
		res.InjectedFaults += n.InjectedFaults()
	}

	rwDB := d.RW().DB
	res.Verdicts = append(res.Verdicts,
		check.Conservation(rec),
		check.RowBalance(rec, rwDB),
		check.ReadCommitted(rec),
	)
	for i := 0; ; i++ {
		m := d.Cluster.Replica(i)
		if m == nil {
			break
		}
		name := "ro" + string(rune('0'+i))
		res.Verdicts = append(res.Verdicts, check.Convergence(name, rwDB, m.Node.DB))
	}
	return res
}
