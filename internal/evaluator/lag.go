package evaluator

import (
	"time"

	"cloudybench/internal/cdb"
	"cloudybench/internal/core"
	"cloudybench/internal/engine"
	"cloudybench/internal/metrics"
	"cloudybench/internal/node"
	"cloudybench/internal/sim"
)

// LagConfig parameterizes a replication lag-time evaluation (paper §II-B.2
// and §III-F): run insert/update/delete traffic at the given ratio and
// measure how long the replica takes to reflect each committed change.
type LagConfig struct {
	Kind cdb.Kind
	// IUD are the insert/update/delete percentages; the paper evaluates
	// {(60,30,10), (100,0,0), (0,100,0), (0,0,100)}.
	IUD         [3]float64
	Concurrency int
	Duration    time.Duration
	SF          int
	Seed        int64
	// Probes adds client-observed consistency probes: after a primary
	// commit the client polls the replica until the change is visible
	// (the paper's measurement method). Zero disables.
	Probes int
}

// LagResult reports per-DML mean lag, the C-Score, and (optionally) the
// client-observed probe lag.
type LagResult struct {
	Kind      cdb.Kind
	IUD       [3]float64
	InsertLag time.Duration
	UpdateLag time.Duration
	DeleteLag time.Duration
	CScore    time.Duration
	ProbeLag  time.Duration // mean client-observed lag (0 if no probes)
}

// PaperIUDMixes lists the four (I,U,D) combinations of §III-F.
var PaperIUDMixes = [][3]float64{
	{60, 30, 10},
	{100, 0, 0},
	{0, 100, 0},
	{0, 0, 100},
}

// RunLag measures replication lag for one SUT and IUD mix.
func RunLag(cfg LagConfig) LagResult {
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 8
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 10 * time.Second
	}
	if cfg.SF < 1 {
		cfg.SF = 1
	}
	if cfg.Seed == 0 {
		cfg.Seed = 42
	}
	s := sim.New(simEpoch)
	d := cdb.MustDeploy(s, cdb.ProfileFor(cfg.Kind), cdb.Options{
		SF: cfg.SF, Seed: cfg.Seed, Replicas: 1, PreWarm: true,
		Serverless: cdb.Bool(false),
	})
	col := core.NewCollector()
	r := core.NewRunner(s, core.Config{
		Name: "lag", Seed: cfg.Seed,
		Mix:   core.IUDMix(cfg.IUD[0], cfg.IUD[1], cfg.IUD[2]),
		Write: d.RW, Read: d.ReadNode,
		Collector: col,
	})
	var probeTotal time.Duration
	var probeCount int
	s.Go("ctl", func(p *sim.Proc) {
		r.SetConcurrency(cfg.Concurrency)
		p.Sleep(cfg.Duration)
		r.Stop()
		r.Wait(p)
		// Client-observed probes: write a marker on the primary, poll the
		// replica until the change is visible.
		replica := d.Cluster.Replica(0).Node
		for i := 0; i < cfg.Probes; i++ {
			lag, ok := probeOnce(p, d, replica, int64(1000+i*7))
			if ok {
				probeTotal += lag
				probeCount++
			}
			p.Sleep(50 * time.Millisecond)
		}
		// Let replication drain before shutdown so reservoirs are full.
		p.Sleep(3 * time.Second)
		d.Shutdown()
	})
	if err := s.Run(); err != nil {
		panic("evaluator: lag run: " + err.Error())
	}

	st := d.Streams()[0]
	ins, upd, del := st.LagReservoirs()
	res := LagResult{
		Kind:      cfg.Kind,
		IUD:       cfg.IUD,
		InsertLag: ins.Mean(),
		UpdateLag: upd.Mean(),
		DeleteLag: del.Mean(),
	}
	res.CScore = metrics.CScore(res.InsertLag, res.UpdateLag, res.DeleteLag, 1)
	if probeCount > 0 {
		res.ProbeLag = probeTotal / time.Duration(probeCount)
	}
	return res
}

// probeOnce updates one order on the primary with a unique timestamp and
// polls the replica until the update is visible — the paper's measurement
// method: "the client will try to read the data change from the replica
// until the data is consistent between the RW node and RO nodes".
func probeOnce(p *sim.Proc, d *cdb.Deployment, replica *node.Node, oid int64) (time.Duration, bool) {
	rw := d.RW()
	tbl := rw.DB.Table(core.TableOrders)
	key := engine.IntKey(oid)
	tx, err := rw.Begin(p)
	if err != nil {
		return 0, false
	}
	row, err := tx.Get(tbl, key)
	if err != nil {
		tx.Abort()
		return 0, false
	}
	marker := p.Now().UnixMicro()
	upd := row.Clone()
	upd[5] = engine.Int(marker)
	if err := tx.Update(tbl, key, upd); err != nil {
		tx.Abort()
		return 0, false
	}
	if err := tx.Commit(); err != nil {
		return 0, false
	}
	committed := p.Elapsed()
	deadline := committed + 10*time.Second
	for p.Elapsed() < deadline {
		got, ok, err := replica.Read(p, core.TableOrders, key)
		if err == nil && ok && got[5].I == marker {
			return p.Elapsed() - committed, true
		}
		p.Sleep(200 * time.Microsecond)
	}
	return 0, false
}
