package evaluator

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"cloudybench/internal/cdb"
)

func soakTestConfig(seed int64) SoakConfig {
	return SoakConfig{
		Kind: cdb.CDB1, SF: 1, Days: 3, Window: 6 * time.Hour,
		Burst: 500 * time.Millisecond, Concurrency: 2, SweepEvery: 2, Seed: seed,
	}
}

// soakFingerprint canonicalizes everything a soak run reports — window
// rows, costs, sweeps, anomalies, marks, final verdicts, applied chaos —
// into one string, so two runs can be compared byte-for-byte.
func soakFingerprint(r SoakResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s days=%d window=%v commits=%d errors=%d terminals=%d cost=%.6f\n",
		r.Kind, r.Days, r.Window, r.Commits, r.Errors, r.Terminals, r.TotalCost)
	for _, w := range r.Windows {
		fmt.Fprintf(&b, "w%03d [%v,%v) txns=%d c=%d e=%d p50=%v p99=%v tput=%.4f cost=%.6f per1k=%.6f\n",
			w.Index, w.Start, w.End, w.Txns, w.Commits, w.Errors, w.P50, w.P99,
			w.Throughput, w.Cost, w.CostPer1kTxn)
	}
	for _, s := range r.Sweeps {
		fmt.Fprintf(&b, "sweep w%03d at=%v pass=%v", s.Window, s.At, s.Passed())
		for _, v := range s.Verdicts {
			fmt.Fprintf(&b, " %s=%v/%d", v.Name, v.Passed, v.Checked)
		}
		b.WriteString("\n")
	}
	for _, a := range r.Anomalies {
		fmt.Fprintf(&b, "anomaly w%03d at=%v %s: %s\n", a.Window, a.At, a.Kind, a.Detail)
	}
	for _, m := range r.Timeline.Marks() {
		fmt.Fprintf(&b, "mark at=%v %s pass=%v %s\n", m.At, m.Kind, m.Pass, m.Detail)
	}
	for _, v := range r.Verdicts {
		fmt.Fprintf(&b, "verdict %s=%v/%d\n", v.Name, v.Passed, v.Checked)
	}
	for _, a := range r.Applied {
		fmt.Fprintf(&b, "chaos at=%v %s %s\n", a.At, a.Kind, a.Target)
	}
	return b.String()
}

// TestSoakLongitudinal is the soak runner's structural contract over three
// virtual days: full window coverage, in-flight sweeps that pass, the
// seeded blackout anomalies at their deterministic virtual timestamps, and
// a timeline whose aggregation equals the tracer's whole-run aggregation.
func TestSoakLongitudinal(t *testing.T) {
	cfg := soakTestConfig(7)
	r := RunSoak(cfg)

	wpd := int(24 * time.Hour / cfg.Window) // 4
	total := cfg.Days * wpd                 // 12
	if len(r.Windows) != total {
		t.Fatalf("windows = %d, want %d", len(r.Windows), total)
	}
	for i, w := range r.Windows {
		if w.Index != i || w.Start != time.Duration(i)*cfg.Window || w.End != w.Start+cfg.Window {
			t.Fatalf("window %d has wrong bounds: %+v", i, w.WindowRow)
		}
		if w.Txns == 0 {
			t.Fatalf("window %d saw no traffic; every window hosts a burst", i)
		}
		if w.Cost <= 0 {
			t.Fatalf("window %d has no cost: %+v", i, w)
		}
	}
	if r.Commits == 0 || r.Terminals == 0 {
		t.Fatalf("commits=%d terminals=%d; want both positive (blackouts abandon txns)",
			r.Commits, r.Terminals)
	}

	// The timeline is a lossless windowing of the tracer's stream: merging
	// every window must reproduce the whole-run stage aggregation.
	if !r.Timeline.Aggregate().Equal(r.Agg) {
		t.Fatal("timeline aggregate != tracer whole-run aggregate")
	}

	// Sweeps land after every SweepEvery-th window's burst, carry the six
	// in-flight invariants, and all pass.
	wantSweeps := total / cfg.SweepEvery
	if len(r.Sweeps) != wantSweeps {
		t.Fatalf("sweeps = %d, want %d", len(r.Sweeps), wantSweeps)
	}
	for _, s := range r.Sweeps {
		if len(s.Verdicts) != 6 {
			t.Fatalf("sweep at w%d has %d verdicts, want 6", s.Window, len(s.Verdicts))
		}
		names := make([]string, len(s.Verdicts))
		for i, v := range s.Verdicts {
			names[i] = v.Name
		}
		joined := strings.Join(names, " ")
		for _, want := range []string{"conservation", "read-committed", "durability", "no-resurrection", "index-coherent", "split-brain"} {
			if !strings.Contains(joined, want) {
				t.Fatalf("sweep verdicts %v missing %q", names, want)
			}
		}
		if !s.Passed() {
			t.Fatalf("in-flight sweep failed at w%d: %s", s.Window, soakFingerprint(r))
		}
	}
	if !r.Passed() {
		t.Fatalf("soak verdicts failed:\n%s", soakFingerprint(r))
	}

	// The seeded client blackout cuts the last window of every day: those
	// windows record attempts but zero commits, and the anomaly pass flags
	// each as unavailability stamped at the window's virtual start time.
	byWindow := map[int]string{}
	for _, a := range r.Anomalies {
		byWindow[a.Window] = a.Kind
		if a.At != time.Duration(a.Window)*cfg.Window {
			t.Fatalf("anomaly %+v not stamped at its window start", a)
		}
	}
	for d := 0; d < cfg.Days; d++ {
		w := d*wpd + wpd - 1
		if r.Windows[w].Commits != 0 {
			t.Fatalf("blackout window %d committed %d txns", w, r.Windows[w].Commits)
		}
		if byWindow[w] != "unavailability" {
			t.Fatalf("window %d (day %d blackout, virtual %v) flagged %q, want unavailability\nanomalies: %+v",
				w, d, time.Duration(w)*cfg.Window, byWindow[w], r.Anomalies)
		}
	}

	// Marks carry all three event kinds, sorted by virtual time.
	kinds := map[string]int{}
	marks := r.Timeline.Marks()
	for i, m := range marks {
		kinds[m.Kind]++
		if i > 0 && m.At < marks[i-1].At {
			t.Fatal("marks out of order")
		}
	}
	if kinds["sweep"] != wantSweeps || kinds["chaos"] == 0 || kinds["anomaly"] == 0 {
		t.Fatalf("mark kinds = %v", kinds)
	}
}

// TestSoakCrossGOMAXPROCSDeterminism holds the full longitudinal artifact —
// every window row, cost, sweep verdict, anomaly, and mark — byte-identical
// across real parallelism levels.
func TestSoakCrossGOMAXPROCSDeterminism(t *testing.T) {
	prev := runtime.GOMAXPROCS(1)
	one := soakFingerprint(RunSoak(soakTestConfig(7)))
	runtime.GOMAXPROCS(8)
	eight := soakFingerprint(RunSoak(soakTestConfig(7)))
	runtime.GOMAXPROCS(prev)
	if one != eight {
		t.Fatalf("soak artifact differs across GOMAXPROCS:\nP=1:\n%s\nP=8:\n%s", one, eight)
	}
	// A different seed must actually move the numbers.
	if other := soakFingerprint(RunSoak(soakTestConfig(8))); other == one {
		t.Fatal("different seeds produced identical soak artifacts (suspicious)")
	}
}
