package sim

import "time"

// Queue models a single FIFO service channel with a fixed service rate —
// the canonical model for an IOPS-limited storage volume or a bandwidth-
// limited link. Each Wait(ops) occupies the channel for ops/rate of virtual
// time; concurrent callers queue behind one another, so saturation produces
// honest queueing delay rather than silent over-subscription.
type Queue struct {
	s        *Sim
	perOp    time.Duration // service time of one operation
	nextFree time.Duration // virtual time the channel next becomes idle
	served   int64
	busy     time.Duration // total busy time, for utilization metering
}

// NewQueue returns a FIFO service channel with the given rate in
// operations per second. A rate of zero means unlimited (Wait is free).
func NewQueue(s *Sim, opsPerSecond float64) *Queue {
	q := &Queue{s: s}
	q.setRate(opsPerSecond)
	return q
}

func (q *Queue) setRate(opsPerSecond float64) {
	if opsPerSecond <= 0 {
		q.perOp = 0
		return
	}
	q.perOp = time.Duration(float64(time.Second) / opsPerSecond)
}

// SetRate changes the service rate. In-flight waits keep their old service
// completion; subsequent waits use the new rate.
func (q *Queue) SetRate(opsPerSecond float64) {
	q.s.mu.Lock()
	q.setRate(opsPerSecond)
	q.s.mu.Unlock()
}

// Wait enqueues ops operations and blocks the process until they are
// serviced. It returns the queueing + service delay experienced.
func (q *Queue) Wait(p *Proc, ops int) time.Duration {
	delay := q.Reserve(ops)
	if delay > 0 {
		p.Sleep(delay)
	}
	return delay
}

// Reserve books ops operations on the channel and returns the delay until
// they complete, without sleeping. Callers combine the returned delay with
// other latencies into a single sleep to reduce scheduling overhead; the
// channel accounting is identical to Wait.
func (q *Queue) Reserve(ops int) time.Duration {
	if ops <= 0 {
		return 0
	}
	s := q.s
	s.mu.Lock()
	q.served += int64(ops)
	if q.perOp == 0 {
		s.mu.Unlock()
		return 0
	}
	service := time.Duration(ops) * q.perOp
	if service/q.perOp != time.Duration(ops) { // multiplication overflowed
		service = maxDuration
	}
	start := s.now
	if q.nextFree > start {
		start = q.nextFree
	}
	done := start + service
	if done < start { // saturate instead of wrapping negative
		done = maxDuration
	}
	q.nextFree = done
	if q.busy += service; q.busy < 0 {
		q.busy = maxDuration
	}
	delay := done - s.now
	s.mu.Unlock()
	return delay
}

// Served returns the total operations serviced so far.
func (q *Queue) Served() int64 {
	q.s.mu.Lock()
	defer q.s.mu.Unlock()
	return q.served
}

// BusyTime returns the cumulative virtual time the channel has been busy.
func (q *Queue) BusyTime() time.Duration {
	q.s.mu.Lock()
	defer q.s.mu.Unlock()
	return q.busy
}

// Backlog returns how far in the future the channel is booked, i.e. the
// delay a zero-length arrival would currently experience.
func (q *Queue) Backlog() time.Duration {
	q.s.mu.Lock()
	defer q.s.mu.Unlock()
	if q.nextFree <= q.s.now {
		return 0
	}
	return q.nextFree - q.s.now
}
