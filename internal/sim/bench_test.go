package sim

import (
	"fmt"
	"testing"
	"time"
)

// Kernel microbenchmarks. Every virtual-time event in a CloudyBench cell —
// a sleep, a queue reservation, a mutex handoff — pays one scheduler
// dispatch, so these three benchmarks bound the kernel overhead of every
// experiment. Baselines live in BENCH_sim.json; regenerate with:
//
//	go test -run '^$' -bench 'BenchmarkDispatch|BenchmarkSleepWake|BenchmarkQueueContention' -benchtime 1000000x -count 5 ./internal/sim/

// BenchmarkDispatch measures the self-handoff path: a single process
// yielding b.N times. Each yield schedules a wake at the current virtual
// time and immediately dispatches it — the pattern of Yield, zero-delay
// queue reservations, and uncontended mutex handoff. No goroutine switch
// occurs (the process wakes itself through its buffered channel), so this
// isolates pure scheduler cost: event push, dispatch, bookkeeping.
func BenchmarkDispatch(b *testing.B) {
	b.ReportAllocs()
	s := New(epoch)
	s.Go("p", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Yield()
		}
	})
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSleepWake measures the cross-process handoff path: two
// processes alternating non-zero sleeps, so every dispatch parks one
// goroutine and unparks another — the cost of a contended lock handoff or
// any interleaved pair of simulated clients.
func BenchmarkSleepWake(b *testing.B) {
	b.ReportAllocs()
	s := New(epoch)
	for i := 0; i < 2; i++ {
		s.Go(fmt.Sprintf("p%d", i), func(p *Proc) {
			for j := 0; j < b.N/2; j++ {
				p.Sleep(time.Microsecond)
			}
		})
	}
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkQueueContention measures the saturated-service-channel path: 8
// processes hammering one rate-limited Queue, so every Wait pays a
// reservation, a future-time event push into a populated heap, and a
// park/unpark — the storage-IOPS hot loop of every OLTP cell.
func BenchmarkQueueContention(b *testing.B) {
	b.ReportAllocs()
	const workers = 8
	s := New(epoch)
	q := NewQueue(s, 1e9) // 1ns per op: non-zero delay, negligible virtual time
	for i := 0; i < workers; i++ {
		s.Go(fmt.Sprintf("w%d", i), func(p *Proc) {
			for j := 0; j < b.N/workers; j++ {
				q.Wait(p, 1)
			}
		})
	}
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
}
