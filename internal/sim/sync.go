package sim

import (
	"fmt"
	"time"
)

// Mutex is a simulation-aware mutual-exclusion lock. Unlike sync.Mutex it
// suspends the blocked process in virtual time, handing the scheduler baton
// onward, so it is safe to hold across Proc.Sleep. Waiters are served FIFO.
type Mutex struct {
	s       *Sim
	owner   *Proc
	waiters []*Proc
}

// NewMutex returns a mutex bound to the given simulation.
func NewMutex(s *Sim) *Mutex { return &Mutex{s: s} }

// Lock acquires the mutex, blocking the process in virtual time if needed.
func (m *Mutex) Lock(p *Proc) {
	s := m.s
	s.mu.Lock()
	if m.owner == nil {
		m.owner = p
		s.mu.Unlock()
		return
	}
	if m.owner == p {
		s.mu.Unlock()
		panic("sim: recursive Mutex.Lock by " + p.name)
	}
	m.waiters = append(m.waiters, p)
	s.blockLocked(p, "mutex")
	s.mu.Unlock()
	<-p.wake
}

// Unlock releases the mutex, transferring ownership to the oldest waiter.
func (m *Mutex) Unlock(p *Proc) {
	s := m.s
	s.mu.Lock()
	if m.owner != p {
		s.mu.Unlock()
		panic("sim: Mutex.Unlock by non-owner " + p.name)
	}
	if len(m.waiters) == 0 {
		m.owner = nil
	} else {
		next := m.waiters[0]
		m.waiters = m.waiters[1:]
		m.owner = next
		s.wakeLocked(next)
	}
	s.mu.Unlock()
}

// Cond is a simulation-aware condition variable. Because the kernel enforces
// the single-runnable invariant, no companion mutex is required: a process
// checks its predicate, calls Wait if unsatisfied, and re-checks on wakeup.
type Cond struct {
	s       *Sim
	waiters []*Proc
}

// NewCond returns a condition variable bound to the given simulation.
func NewCond(s *Sim) *Cond { return &Cond{s: s} }

// Wait suspends the process until Signal or Broadcast wakes it. Callers must
// re-check their predicate in a loop, as with sync.Cond.
func (c *Cond) Wait(p *Proc) {
	s := c.s
	s.mu.Lock()
	c.waiters = append(c.waiters, p)
	s.blockLocked(p, "cond")
	s.mu.Unlock()
	<-p.wake
}

// Signal wakes the oldest waiting process, if any.
func (c *Cond) Signal() {
	s := c.s
	s.mu.Lock()
	if len(c.waiters) > 0 {
		next := c.waiters[0]
		c.waiters = c.waiters[1:]
		s.wakeLocked(next)
	}
	s.mu.Unlock()
}

// Broadcast wakes every waiting process.
func (c *Cond) Broadcast() {
	s := c.s
	s.mu.Lock()
	for _, w := range c.waiters {
		s.wakeLocked(w)
	}
	c.waiters = nil
	s.mu.Unlock()
}

// Group waits for a collection of processes to finish, mirroring
// sync.WaitGroup in virtual time.
type Group struct {
	s     *Sim
	count int
	cond  *Cond
}

// NewGroup returns a wait group bound to the given simulation.
func NewGroup(s *Sim) *Group { return &Group{s: s, cond: NewCond(s)} }

// Add increments the group counter by n.
func (g *Group) Add(n int) {
	g.s.mu.Lock()
	g.count += n
	g.s.mu.Unlock()
}

// Done decrements the group counter, waking waiters when it reaches zero.
func (g *Group) Done() {
	g.s.mu.Lock()
	g.count--
	neg := g.count < 0
	zero := g.count == 0
	g.s.mu.Unlock()
	if neg {
		panic("sim: Group counter went negative")
	}
	if zero {
		g.cond.Broadcast()
	}
}

// Wait blocks the process until the group counter reaches zero.
func (g *Group) Wait(p *Proc) {
	for {
		g.s.mu.Lock()
		done := g.count == 0
		g.s.mu.Unlock()
		if done {
			return
		}
		g.cond.Wait(p)
	}
}

// Go spawns fn as a process tracked by the group.
func (g *Group) Go(name string, fn func(p *Proc)) {
	g.Add(1)
	g.s.Go(name, func(p *Proc) {
		defer g.Done()
		fn(p)
	})
}

// Resource models a preemptible pool of capacity units (for example milli-
// vCores of a database node). Processes acquire an amount, hold it across
// virtual time, and release it. Capacity can be resized at runtime, which is
// how autoscalers act on a live node: raising capacity admits queued work
// immediately, lowering it drains as holders release. Waiters are served
// FIFO; a large request at the head blocks smaller ones behind it (fairness
// over throughput, as in a real admission queue).
type Resource struct {
	s       *Sim
	cap     int64
	used    int64
	waiters []resWaiter
	peak    int64 // high-water mark of used since last ResetPeak

	lastAccrue time.Duration
	usedInt    float64 // integral of used over time, in unit-seconds
	capInt     float64 // integral of capacity over time, in unit-seconds
}

type resWaiter struct {
	p *Proc
	n int64
}

// NewResource returns a resource pool with the given capacity in abstract
// units (callers choose the unit, e.g. milli-vCores).
func NewResource(s *Sim, capacity int64) *Resource {
	if capacity < 0 {
		panic("sim: negative Resource capacity")
	}
	return &Resource{s: s, cap: capacity}
}

// Acquire blocks the process until n units are available, then claims them.
func (r *Resource) Acquire(p *Proc, n int64) {
	if n <= 0 {
		panic(fmt.Sprintf("sim: Resource.Acquire of %d units", n))
	}
	s := r.s
	s.mu.Lock()
	if len(r.waiters) == 0 && r.used+n <= r.cap {
		r.accrueLocked()
		r.used += n
		if r.used > r.peak {
			r.peak = r.used
		}
		s.mu.Unlock()
		return
	}
	r.waiters = append(r.waiters, resWaiter{p: p, n: n})
	s.blockLocked(p, "resource")
	s.mu.Unlock()
	<-p.wake
}

// TryAcquire claims n units without blocking, reporting whether it succeeded.
func (r *Resource) TryAcquire(n int64) bool {
	s := r.s
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(r.waiters) == 0 && r.used+n <= r.cap {
		r.accrueLocked()
		r.used += n
		if r.used > r.peak {
			r.peak = r.used
		}
		return true
	}
	return false
}

// Release returns n units to the pool and admits eligible waiters.
func (r *Resource) Release(n int64) {
	s := r.s
	s.mu.Lock()
	r.accrueLocked()
	r.used -= n
	if r.used < 0 {
		s.mu.Unlock()
		panic("sim: Resource over-released")
	}
	r.admitLocked()
	s.mu.Unlock()
}

// SetCapacity resizes the pool. Increases admit queued waiters immediately;
// decreases take effect as current holders release (capacity may be below
// usage transiently, exactly like scaling down a busy node).
func (r *Resource) SetCapacity(capacity int64) {
	if capacity < 0 {
		panic("sim: negative Resource capacity")
	}
	s := r.s
	s.mu.Lock()
	r.accrueLocked()
	r.cap = capacity
	r.admitLocked()
	s.mu.Unlock()
}

// accrueLocked folds elapsed time into the usage and capacity integrals.
// It must be called, with s.mu held, before any change to used or cap.
func (r *Resource) accrueLocked() {
	dt := r.s.now - r.lastAccrue
	if dt > 0 {
		sec := dt.Seconds()
		r.usedInt += float64(r.used) * sec
		r.capInt += float64(r.cap) * sec
		r.lastAccrue = r.s.now
	}
}

// Integrals returns the cumulative usage and capacity integrals in
// unit-seconds up to the current virtual time. Callers snapshot these at
// window boundaries and diff to obtain per-window resource consumption.
func (r *Resource) Integrals() (usedUnitSeconds, capUnitSeconds float64) {
	r.s.mu.Lock()
	defer r.s.mu.Unlock()
	r.accrueLocked()
	return r.usedInt, r.capInt
}

func (r *Resource) admitLocked() {
	r.accrueLocked()
	for len(r.waiters) > 0 && r.used+r.waiters[0].n <= r.cap {
		w := r.waiters[0]
		r.waiters = r.waiters[1:]
		r.used += w.n
		if r.used > r.peak {
			r.peak = r.used
		}
		r.s.wakeLocked(w.p)
	}
}

// Capacity returns the current capacity.
func (r *Resource) Capacity() int64 {
	r.s.mu.Lock()
	defer r.s.mu.Unlock()
	return r.cap
}

// Used returns the units currently held.
func (r *Resource) Used() int64 {
	r.s.mu.Lock()
	defer r.s.mu.Unlock()
	return r.used
}

// Peak returns the high-water mark of held units since the last ResetPeak.
func (r *Resource) Peak() int64 {
	r.s.mu.Lock()
	defer r.s.mu.Unlock()
	return r.peak
}

// ResetPeak clears the high-water mark down to current usage.
func (r *Resource) ResetPeak() {
	r.s.mu.Lock()
	r.peak = r.used
	r.s.mu.Unlock()
}

// Waiting returns the number of queued acquirers.
func (r *Resource) Waiting() int {
	r.s.mu.Lock()
	defer r.s.mu.Unlock()
	return len(r.waiters)
}

// Use acquires n units, holds them for d of virtual time, and releases them.
// It is the standard way to model a CPU slice or similar occupancy.
func (r *Resource) Use(p *Proc, n int64, d time.Duration) {
	r.Acquire(p, n)
	p.Sleep(d)
	r.Release(n)
}
