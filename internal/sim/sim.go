// Package sim provides a deterministic discrete-event simulation kernel.
//
// A simulation consists of processes (goroutines spawned with Sim.Go) that
// advance a shared virtual clock by sleeping (Proc.Sleep) and by blocking on
// sim-aware synchronization primitives (Mutex, Cond, Resource, Queue). The
// kernel enforces a single-runnable invariant: at most one process executes
// between scheduler dispatches. Consequently process code needs no locking of
// its own — processes can never observe each other mid-step — and a given
// simulation program produces an identical event order on every run.
//
// Virtual time bears no relation to wall-clock time: a simulated hour costs
// only the CPU time of the events inside it. All CloudyBench evaluators run
// on this kernel so that minute-granularity cloud experiments finish in
// milliseconds and remain reproducible.
//
// Because kernel overhead is 100% of an experiment's wall-clock cost, the
// scheduler is built around two fast paths: a hand-rolled binary heap over
// []event (no container/heap interface boxing, no per-push allocation), and
// a "runnext" direct-handoff slot that lets a wake scheduled at the current
// virtual time bypass the heap entirely — the dominant case for Yield,
// mutex handoff, and zero-delay queue reservations.
package sim

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Sim is a discrete-event simulation instance. Create one with New, spawn
// processes with Go, then call Run from the host goroutine to execute the
// simulation to completion.
type Sim struct {
	mu       sync.Mutex
	termCond *sync.Cond // signaled when procs hits zero or a deadlock is found

	start  time.Time     // virtual epoch
	now    time.Duration // virtual time since start
	events []event       // hand-rolled binary min-heap ordered by (at, seq)

	// runnext is the direct-handoff slot: the first wake scheduled at the
	// current virtual time parks here instead of in the heap. It holds the
	// smallest seq among same-time events pushed after it, so in the common
	// case (one wake between dispatches) the next dispatch pops it with two
	// comparisons and zero heap traffic. Valid only when runnextSet; while
	// set, runnext.at == now (time cannot advance past a pending same-time
	// event).
	runnext    event
	runnextSet bool

	seq     uint64             // dispatch tiebreaker for determinism
	running int                // processes currently executing (0 or 1 in steady state)
	procs   map[*Proc]struct{} // live (not yet exited) processes
	err     error
}

// Proc is a simulation process handle. Every blocking kernel operation takes
// the calling process so the scheduler knows who is giving up the baton.
type Proc struct {
	sim  *Sim
	name string
	wake chan struct{}

	// why records the reason for the most recent block ("sleep", "mutex",
	// ...). It is written on the block path and read only by deadlock
	// diagnostics, where every live process is by definition blocked and
	// its last-written reason is current. Keeping it here, instead of in a
	// kernel-side map, takes the bookkeeping off the dispatch hot path.
	why string
}

// Name returns the process name given to Sim.Go.
func (p *Proc) Name() string { return p.name }

// Sim returns the simulation this process belongs to.
func (p *Proc) Sim() *Sim { return p.sim }

// maxDuration is the saturation ceiling for virtual-time arithmetic:
// overflowing computations clamp here instead of wrapping negative.
const maxDuration = time.Duration(1<<63 - 1)

type event struct {
	at  time.Duration
	seq uint64
	p   *Proc
}

// lessEv orders events by (at, seq): earlier virtual time first, spawn/wake
// order breaking ties — the determinism contract.
func lessEv(a, b event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// heapPush inserts ev into the event heap (sift-up over the raw slice; no
// interface boxing, amortized zero allocation once the backing array grows).
func (s *Sim) heapPush(ev event) {
	s.events = append(s.events, ev)
	h := s.events
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !lessEv(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

// heapPop removes and returns the minimum event.
func (s *Sim) heapPop() event {
	h := s.events
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{} // drop the *Proc reference
	s.events = h[:n]
	h = s.events
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && lessEv(h[r], h[l]) {
			m = r
		}
		if !lessEv(h[m], h[i]) {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	return top
}

// New returns a simulation whose virtual clock starts at the given epoch.
func New(start time.Time) *Sim {
	return NewAt(start, 0)
}

// NewAt returns a simulation whose virtual clock starts at the given epoch
// with elapsed virtual time already on the clock. Memoized warm-up forks use
// it so a measurement phase resumed from a snapshot reads the same Elapsed()
// values — and therefore stamps the same windows and timestamps — as the
// continuous run it replaces.
func NewAt(start time.Time, elapsed time.Duration) *Sim {
	s := &Sim{start: start, now: elapsed, procs: make(map[*Proc]struct{})}
	s.termCond = sync.NewCond(&s.mu)
	return s
}

// Now returns the current virtual time. It may be called from inside or
// outside the simulation.
func (s *Sim) Now() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.start.Add(s.now)
}

// Elapsed returns the virtual time elapsed since the simulation epoch.
func (s *Sim) Elapsed() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// Go spawns a new simulation process. The process begins executing at the
// current virtual time, after the spawning process next blocks (or, for
// processes spawned before Run, when Run starts). It is safe to call Go from
// inside another process or from the host goroutine before Run.
func (s *Sim) Go(name string, fn func(p *Proc)) *Proc {
	p := &Proc{sim: s, name: name, wake: make(chan struct{}, 1), why: "start"}
	s.mu.Lock()
	s.procs[p] = struct{}{}
	s.pushLocked(s.now, p)
	s.mu.Unlock()
	go func() {
		<-p.wake
		defer s.exit(p)
		fn(p)
	}()
	return p
}

func (s *Sim) pushLocked(at time.Duration, p *Proc) {
	s.seq++
	ev := event{at: at, seq: s.seq, p: p}
	if at == s.now && !s.runnextSet {
		s.runnext = ev
		s.runnextSet = true
		return
	}
	s.heapPush(ev)
}

// blockLocked records the caller as blocked and hands the baton to the next
// event if no process remains runnable. The caller must hold s.mu, release it
// after this returns, and then receive on p.wake.
func (s *Sim) blockLocked(p *Proc, why string) {
	s.running--
	p.why = why
	if s.running == 0 {
		s.dispatchLocked()
	}
}

// wakeLocked schedules p to resume at the current virtual time. The caller
// must hold s.mu. The woken process runs once the current process blocks.
func (s *Sim) wakeLocked(p *Proc) {
	s.pushLocked(s.now, p)
}

// dispatchLocked advances virtual time to the next event and hands the CPU
// to its process — the DES inner loop, entered once per block/wake edge.
//
//detlint:hotpath
func (s *Sim) dispatchLocked() {
	var ev event
	switch {
	// The runnext slot wins unless the heap holds a same-time event pushed
	// earlier (smaller seq) — runnext.at == now is never later than any
	// heap entry, so two comparisons decide.
	case s.runnextSet && (len(s.events) == 0 || lessEv(s.runnext, s.events[0])):
		ev = s.runnext
		s.runnext = event{}
		s.runnextSet = false
	case len(s.events) > 0:
		ev = s.heapPop()
	default:
		if len(s.procs) > 0 {
			s.err = s.deadlockErrorLocked()
			s.termCond.Broadcast()
		}
		return
	}
	if ev.at < s.now {
		panic(fmt.Sprintf("sim: time went backwards: %v -> %v", s.now, ev.at))
	}
	s.now = ev.at
	s.running++
	ev.p.wake <- struct{}{}
}

// deadlockErrorLocked reconstructs the blocked-process diagnostic. It runs
// only when every live process is blocked with no pending events, so each
// process's last-recorded block reason is its current one — a terminal
// path, excluded from dispatchLocked's allocation budget.
//
//detlint:coldpath
func (s *Sim) deadlockErrorLocked() error {
	names := make([]string, 0, len(s.procs))
	for p := range s.procs {
		names = append(names, fmt.Sprintf("%s (%s)", p.name, p.why))
	}
	sort.Strings(names)
	return fmt.Errorf("sim: deadlock at t=%v: %d process(es) blocked with no pending events: %s",
		s.now, len(names), strings.Join(names, ", "))
}

func (s *Sim) exit(p *Proc) {
	s.mu.Lock()
	delete(s.procs, p)
	s.running--
	if s.running == 0 {
		s.dispatchLocked()
	}
	if len(s.procs) == 0 {
		s.termCond.Broadcast()
	}
	s.mu.Unlock()
}

// Run executes the simulation until every process has exited. It must be
// called from the host goroutine (not from inside a process). It returns a
// deadlock error if all remaining processes are blocked with no pending
// events; otherwise nil.
func (s *Sim) Run() error {
	s.mu.Lock()
	if s.running == 0 && len(s.procs) > 0 {
		s.dispatchLocked()
	}
	for len(s.procs) > 0 && s.err == nil {
		s.termCond.Wait()
	}
	err := s.err
	s.mu.Unlock()
	return err
}

// Sleep suspends the calling process for d of virtual time. Negative
// durations sleep zero time (yielding to other runnable processes).
func (p *Proc) Sleep(d time.Duration) {
	s := p.sim
	if d < 0 {
		d = 0
	}
	s.mu.Lock()
	at := s.now + d
	if at < s.now { // overflow from a pathologically large (clamped) delay
		at = maxDuration
	}
	s.pushLocked(at, p)
	s.blockLocked(p, "sleep")
	s.mu.Unlock()
	<-p.wake
}

// Yield lets any other runnable process scheduled at the current virtual
// time execute before the caller continues.
func (p *Proc) Yield() { p.Sleep(0) }

// Now returns the current virtual time (convenience for p.Sim().Now()).
func (p *Proc) Now() time.Time { return p.sim.Now() }

// Elapsed returns virtual time since the simulation epoch.
func (p *Proc) Elapsed() time.Duration { return p.sim.Elapsed() }
