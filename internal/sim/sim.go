// Package sim provides a deterministic discrete-event simulation kernel.
//
// A simulation consists of processes (goroutines spawned with Sim.Go) that
// advance a shared virtual clock by sleeping (Proc.Sleep) and by blocking on
// sim-aware synchronization primitives (Mutex, Cond, Resource, Queue). The
// kernel enforces a single-runnable invariant: at most one process executes
// between scheduler dispatches. Consequently process code needs no locking of
// its own — processes can never observe each other mid-step — and a given
// simulation program produces an identical event order on every run.
//
// Virtual time bears no relation to wall-clock time: a simulated hour costs
// only the CPU time of the events inside it. All CloudyBench evaluators run
// on this kernel so that minute-granularity cloud experiments finish in
// milliseconds and remain reproducible.
package sim

import (
	"container/heap"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Sim is a discrete-event simulation instance. Create one with New, spawn
// processes with Go, then call Run from the host goroutine to execute the
// simulation to completion.
type Sim struct {
	mu       sync.Mutex
	termCond *sync.Cond // signaled when procs hits zero or a deadlock is found

	start   time.Time     // virtual epoch
	now     time.Duration // virtual time since start
	events  eventHeap
	seq     uint64 // dispatch tiebreaker for determinism
	running int    // processes currently executing (0 or 1 in steady state)
	procs   int    // live (not yet exited) processes
	blocked map[*Proc]string
	err     error
}

// Proc is a simulation process handle. Every blocking kernel operation takes
// the calling process so the scheduler knows who is giving up the baton.
type Proc struct {
	sim  *Sim
	name string
	wake chan struct{}
}

// Name returns the process name given to Sim.Go.
func (p *Proc) Name() string { return p.name }

// Sim returns the simulation this process belongs to.
func (p *Proc) Sim() *Sim { return p.sim }

type event struct {
	at  time.Duration
	seq uint64
	p   *Proc
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	*h = old[:n-1]
	return ev
}

// New returns a simulation whose virtual clock starts at the given epoch.
func New(start time.Time) *Sim {
	s := &Sim{start: start, blocked: make(map[*Proc]string)}
	s.termCond = sync.NewCond(&s.mu)
	return s
}

// Now returns the current virtual time. It may be called from inside or
// outside the simulation.
func (s *Sim) Now() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.start.Add(s.now)
}

// Elapsed returns the virtual time elapsed since the simulation epoch.
func (s *Sim) Elapsed() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// Go spawns a new simulation process. The process begins executing at the
// current virtual time, after the spawning process next blocks (or, for
// processes spawned before Run, when Run starts). It is safe to call Go from
// inside another process or from the host goroutine before Run.
func (s *Sim) Go(name string, fn func(p *Proc)) *Proc {
	p := &Proc{sim: s, name: name, wake: make(chan struct{}, 1)}
	s.mu.Lock()
	s.procs++
	s.pushLocked(s.now, p)
	s.blocked[p] = "start"
	s.mu.Unlock()
	go func() {
		<-p.wake
		defer s.exit(p)
		fn(p)
	}()
	return p
}

func (s *Sim) pushLocked(at time.Duration, p *Proc) {
	s.seq++
	heap.Push(&s.events, event{at: at, seq: s.seq, p: p})
}

// blockLocked records the caller as blocked and hands the baton to the next
// event if no process remains runnable. The caller must hold s.mu, release it
// after this returns, and then receive on p.wake.
func (s *Sim) blockLocked(p *Proc, why string) {
	s.running--
	s.blocked[p] = why
	if s.running == 0 {
		s.dispatchLocked()
	}
}

// wakeLocked schedules p to resume at the current virtual time. The caller
// must hold s.mu. The woken process runs once the current process blocks.
func (s *Sim) wakeLocked(p *Proc) {
	s.pushLocked(s.now, p)
}

func (s *Sim) dispatchLocked() {
	if s.events.Len() == 0 {
		if s.procs > 0 {
			s.err = s.deadlockErrorLocked()
			s.termCond.Broadcast()
		}
		return
	}
	ev := heap.Pop(&s.events).(event)
	if ev.at < s.now {
		panic(fmt.Sprintf("sim: time went backwards: %v -> %v", s.now, ev.at))
	}
	s.now = ev.at
	s.running++
	delete(s.blocked, ev.p)
	ev.p.wake <- struct{}{}
}

func (s *Sim) deadlockErrorLocked() error {
	names := make([]string, 0, len(s.blocked))
	for p, why := range s.blocked {
		names = append(names, fmt.Sprintf("%s (%s)", p.name, why))
	}
	sort.Strings(names)
	return fmt.Errorf("sim: deadlock at t=%v: %d process(es) blocked with no pending events: %s",
		s.now, len(names), strings.Join(names, ", "))
}

func (s *Sim) exit(p *Proc) {
	s.mu.Lock()
	s.procs--
	s.running--
	if s.running == 0 {
		s.dispatchLocked()
	}
	if s.procs == 0 {
		s.termCond.Broadcast()
	}
	s.mu.Unlock()
}

// Run executes the simulation until every process has exited. It must be
// called from the host goroutine (not from inside a process). It returns a
// deadlock error if all remaining processes are blocked with no pending
// events; otherwise nil.
func (s *Sim) Run() error {
	s.mu.Lock()
	if s.running == 0 && s.procs > 0 {
		s.dispatchLocked()
	}
	for s.procs > 0 && s.err == nil {
		s.termCond.Wait()
	}
	err := s.err
	s.mu.Unlock()
	return err
}

// Sleep suspends the calling process for d of virtual time. Negative
// durations sleep zero time (yielding to other runnable processes).
func (p *Proc) Sleep(d time.Duration) {
	s := p.sim
	if d < 0 {
		d = 0
	}
	s.mu.Lock()
	s.pushLocked(s.now+d, p)
	s.blockLocked(p, "sleep")
	s.mu.Unlock()
	<-p.wake
}

// Yield lets any other runnable process scheduled at the current virtual
// time execute before the caller continues.
func (p *Proc) Yield() { p.Sleep(0) }

// Now returns the current virtual time (convenience for p.Sim().Now()).
func (p *Proc) Now() time.Time { return p.sim.Now() }

// Elapsed returns virtual time since the simulation epoch.
func (p *Proc) Elapsed() time.Duration { return p.sim.Elapsed() }
