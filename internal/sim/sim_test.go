package sim

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

var epoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func TestSingleProcessSleepAdvancesClock(t *testing.T) {
	s := New(epoch)
	var at time.Duration
	s.Go("p", func(p *Proc) {
		p.Sleep(3 * time.Second)
		at = p.Elapsed()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 3*time.Second {
		t.Fatalf("elapsed = %v, want 3s", at)
	}
	if got := s.Now(); !got.Equal(epoch.Add(3 * time.Second)) {
		t.Fatalf("Now() = %v, want epoch+3s", got)
	}
}

func TestProcessesInterleaveInTimestampOrder(t *testing.T) {
	s := New(epoch)
	var order []string
	record := func(name string) { order = append(order, name) }
	s.Go("a", func(p *Proc) {
		p.Sleep(2 * time.Second)
		record("a@2")
		p.Sleep(2 * time.Second)
		record("a@4")
	})
	s.Go("b", func(p *Proc) {
		p.Sleep(1 * time.Second)
		record("b@1")
		p.Sleep(2 * time.Second)
		record("b@3")
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := "b@1 a@2 b@3 a@4"
	if got := strings.Join(order, " "); got != want {
		t.Fatalf("order = %q, want %q", got, want)
	}
}

func TestSameTimestampFIFOBySpawnOrder(t *testing.T) {
	s := New(epoch)
	var order []string
	for i := 0; i < 5; i++ {
		i := i
		s.Go(fmt.Sprintf("p%d", i), func(p *Proc) {
			p.Sleep(time.Second)
			order = append(order, p.Name())
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := "p0 p1 p2 p3 p4"
	if got := strings.Join(order, " "); got != want {
		t.Fatalf("order = %q, want %q", got, want)
	}
}

func TestNegativeSleepIsYield(t *testing.T) {
	s := New(epoch)
	s.Go("p", func(p *Proc) {
		p.Sleep(-time.Second)
		if e := p.Elapsed(); e != 0 {
			t.Errorf("elapsed after negative sleep = %v, want 0", e)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestNestedSpawn(t *testing.T) {
	s := New(epoch)
	var childAt time.Duration
	s.Go("parent", func(p *Proc) {
		p.Sleep(5 * time.Second)
		s.Go("child", func(c *Proc) {
			c.Sleep(time.Second)
			childAt = c.Elapsed()
		})
		p.Sleep(10 * time.Second)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if childAt != 6*time.Second {
		t.Fatalf("child finished at %v, want 6s", childAt)
	}
}

func TestRunWithNoProcessesReturns(t *testing.T) {
	s := New(epoch)
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() string {
		s := New(epoch)
		var order []string
		for i := 0; i < 10; i++ {
			i := i
			s.Go(fmt.Sprintf("w%d", i), func(p *Proc) {
				for j := 0; j < 5; j++ {
					p.Sleep(time.Duration(1+(i*7+j*3)%5) * time.Millisecond)
					order = append(order, fmt.Sprintf("%d.%d@%v", i, j, p.Elapsed()))
				}
			})
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return strings.Join(order, ";")
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("two identical runs diverged:\n%s\n%s", a, b)
	}
}

func TestMutexProvidesExclusionAndFIFO(t *testing.T) {
	s := New(epoch)
	m := NewMutex(s)
	var order []string
	inside := false
	for i := 0; i < 4; i++ {
		i := i
		s.Go(fmt.Sprintf("w%d", i), func(p *Proc) {
			p.Sleep(time.Duration(i) * time.Millisecond) // stagger arrivals
			m.Lock(p)
			if inside {
				t.Error("two processes inside critical section")
			}
			inside = true
			p.Sleep(10 * time.Millisecond) // hold across virtual time
			inside = false
			order = append(order, p.Name())
			m.Unlock(p)
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(order, " "); got != "w0 w1 w2 w3" {
		t.Fatalf("order = %q, want FIFO w0..w3", got)
	}
}

func TestMutexRecursiveLockPanics(t *testing.T) {
	s := New(epoch)
	m := NewMutex(s)
	s.Go("p", func(p *Proc) {
		m.Lock(p)
		defer func() {
			if recover() == nil {
				t.Error("recursive lock did not panic")
			}
			m.Unlock(p)
		}()
		m.Lock(p)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMutexUnlockByNonOwnerPanics(t *testing.T) {
	s := New(epoch)
	m := NewMutex(s)
	s.Go("owner", func(p *Proc) {
		m.Lock(p)
		p.Sleep(time.Second)
		m.Unlock(p)
	})
	s.Go("thief", func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("unlock by non-owner did not panic")
			}
		}()
		m.Unlock(p)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCondSignalWakesOldestWaiter(t *testing.T) {
	s := New(epoch)
	c := NewCond(s)
	var woken []string
	for i := 0; i < 3; i++ {
		i := i
		s.Go(fmt.Sprintf("w%d", i), func(p *Proc) {
			p.Sleep(time.Duration(i) * time.Millisecond)
			c.Wait(p)
			woken = append(woken, p.Name())
		})
	}
	s.Go("signaller", func(p *Proc) {
		p.Sleep(10 * time.Millisecond)
		c.Signal()
		p.Sleep(10 * time.Millisecond)
		c.Broadcast()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(woken, " "); got != "w0 w1 w2" {
		t.Fatalf("wake order = %q, want w0 w1 w2", got)
	}
}

func TestGroupWaitsForAll(t *testing.T) {
	s := New(epoch)
	g := NewGroup(s)
	var doneAt time.Duration
	for i := 1; i <= 3; i++ {
		i := i
		g.Go(fmt.Sprintf("w%d", i), func(p *Proc) {
			p.Sleep(time.Duration(i) * time.Second)
		})
	}
	s.Go("waiter", func(p *Proc) {
		g.Wait(p)
		doneAt = p.Elapsed()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if doneAt != 3*time.Second {
		t.Fatalf("group completed at %v, want 3s", doneAt)
	}
}

func TestDeadlockDetected(t *testing.T) {
	s := New(epoch)
	c := NewCond(s)
	s.Go("stuck", func(p *Proc) {
		c.Wait(p) // nobody will ever signal
	})
	err := s.Run()
	if err == nil {
		t.Fatal("expected deadlock error")
	}
	if !strings.Contains(err.Error(), "stuck") {
		t.Fatalf("deadlock error %q does not name the stuck process", err)
	}
}

func TestResourceLimitsConcurrency(t *testing.T) {
	s := New(epoch)
	r := NewResource(s, 2)
	var maxInside, inside int
	for i := 0; i < 6; i++ {
		s.Go(fmt.Sprintf("w%d", i), func(p *Proc) {
			r.Acquire(p, 1)
			inside++
			if inside > maxInside {
				maxInside = inside
			}
			p.Sleep(time.Second)
			inside--
			r.Release(1)
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if maxInside != 2 {
		t.Fatalf("max concurrent holders = %d, want 2", maxInside)
	}
	// 6 holders, 2 at a time, 1s each => 3s total.
	if got := s.Elapsed(); got != 3*time.Second {
		t.Fatalf("makespan = %v, want 3s", got)
	}
}

func TestResourceSetCapacityAdmitsWaiters(t *testing.T) {
	s := New(epoch)
	r := NewResource(s, 1)
	var secondStarted time.Duration
	s.Go("first", func(p *Proc) {
		r.Acquire(p, 1)
		p.Sleep(10 * time.Second)
		r.Release(1)
	})
	s.Go("second", func(p *Proc) {
		p.Sleep(time.Millisecond)
		r.Acquire(p, 1)
		secondStarted = p.Elapsed()
		r.Release(1)
	})
	s.Go("scaler", func(p *Proc) {
		p.Sleep(2 * time.Second)
		r.SetCapacity(2)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if secondStarted != 2*time.Second {
		t.Fatalf("second admitted at %v, want 2s (on capacity raise)", secondStarted)
	}
}

func TestResourceCapacityDecreaseDrains(t *testing.T) {
	s := New(epoch)
	r := NewResource(s, 4)
	s.Go("holder", func(p *Proc) {
		r.Acquire(p, 4)
		r.SetCapacity(1) // shrink below usage while held
		if r.Used() != 4 {
			t.Errorf("used = %d, want 4 while still held", r.Used())
		}
		p.Sleep(time.Second)
		r.Release(4)
	})
	s.Go("late", func(p *Proc) {
		p.Sleep(time.Millisecond)
		r.Acquire(p, 1) // must wait for drain
		if e := p.Elapsed(); e != time.Second {
			t.Errorf("late admitted at %v, want 1s", e)
		}
		r.Release(1)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestResourcePeakTracking(t *testing.T) {
	s := New(epoch)
	r := NewResource(s, 10)
	s.Go("p", func(p *Proc) {
		r.Acquire(p, 3)
		r.Acquire(p, 4)
		r.Release(4)
		r.Release(3)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if r.Peak() != 7 {
		t.Fatalf("peak = %d, want 7", r.Peak())
	}
	r.ResetPeak()
	if r.Peak() != 0 {
		t.Fatalf("peak after reset = %d, want 0", r.Peak())
	}
}

func TestResourceTryAcquire(t *testing.T) {
	s := New(epoch)
	r := NewResource(s, 2)
	s.Go("p", func(p *Proc) {
		if !r.TryAcquire(2) {
			t.Error("TryAcquire(2) on empty pool failed")
		}
		if r.TryAcquire(1) {
			t.Error("TryAcquire(1) on full pool succeeded")
		}
		r.Release(2)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestQueueServiceAndBacklog(t *testing.T) {
	s := New(epoch)
	q := NewQueue(s, 10) // 10 ops/sec => 100ms per op
	var d1, d2 time.Duration
	s.Go("a", func(p *Proc) {
		d1 = q.Wait(p, 1)
	})
	s.Go("b", func(p *Proc) {
		d2 = q.Wait(p, 1)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if d1 != 100*time.Millisecond {
		t.Fatalf("first delay = %v, want 100ms", d1)
	}
	if d2 != 200*time.Millisecond {
		t.Fatalf("queued delay = %v, want 200ms", d2)
	}
	if q.Served() != 2 {
		t.Fatalf("served = %d, want 2", q.Served())
	}
}

func TestQueueUnlimitedRateIsFree(t *testing.T) {
	s := New(epoch)
	q := NewQueue(s, 0)
	s.Go("p", func(p *Proc) {
		if d := q.Wait(p, 1000); d != 0 {
			t.Errorf("unlimited queue delay = %v, want 0", d)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestQueueIdleGapDoesNotAccumulateCredit(t *testing.T) {
	s := New(epoch)
	q := NewQueue(s, 10)
	s.Go("p", func(p *Proc) {
		q.Wait(p, 1)
		p.Sleep(5 * time.Second) // long idle gap
		if b := q.Backlog(); b != 0 {
			t.Errorf("backlog after idle = %v, want 0", b)
		}
		d := q.Wait(p, 1)
		if d != 100*time.Millisecond {
			t.Errorf("post-idle delay = %v, want 100ms", d)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestRunnextRespectsSeqTiebreak pits the runnext direct-handoff slot
// against same-time heap entries: waiters woken in one burst must still run
// in wake (seq) order even though only the first occupies the fast-path
// slot, and a process that slept *into* the current instant (its event
// pushed earlier, so a smaller seq, but parked in the heap) must beat a
// runnext occupant woken after it.
func TestRunnextRespectsSeqTiebreak(t *testing.T) {
	s := New(epoch)
	c := NewCond(s)
	var order []string
	for i := 0; i < 4; i++ {
		i := i
		s.Go(fmt.Sprintf("w%d", i), func(p *Proc) {
			p.Sleep(time.Duration(i) * time.Millisecond) // stagger into the cond
			c.Wait(p)
			order = append(order, p.Name())
		})
	}
	s.Go("sleeper", func(p *Proc) {
		// Sleeps exactly to the broadcast instant: its event sits in the
		// heap with a seq older than any of the broadcast wakes.
		p.Sleep(10 * time.Millisecond)
		order = append(order, "sleeper")
	})
	s.Go("caller", func(p *Proc) {
		p.Sleep(10 * time.Millisecond)
		c.Broadcast() // wakes w0..w3 at the same instant; w0 takes runnext
		order = append(order, "caller")
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// sleeper's event (seq from t=0) precedes caller's, which precedes the
	// broadcast wakes; the wakes themselves must stay FIFO.
	want := "sleeper caller w0 w1 w2 w3"
	if got := strings.Join(order, " "); got != want {
		t.Fatalf("order = %q, want %q", got, want)
	}
}

// TestYieldStormStaysFIFO drives many processes through repeated same-time
// yields — the heaviest runnext traffic possible — and checks the round-robin
// order never degrades.
func TestYieldStormStaysFIFO(t *testing.T) {
	s := New(epoch)
	var order []string
	for i := 0; i < 3; i++ {
		i := i
		s.Go(fmt.Sprintf("p%d", i), func(p *Proc) {
			for j := 0; j < 3; j++ {
				order = append(order, fmt.Sprintf("p%d.%d", i, j))
				p.Yield()
			}
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := "p0.0 p1.0 p2.0 p0.1 p1.1 p2.1 p0.2 p1.2 p2.2"
	if got := strings.Join(order, " "); got != want {
		t.Fatalf("order = %q, want %q", got, want)
	}
}

// TestDeadlockNamesEveryBlockedProcessWithReason builds a three-way deadlock
// across different primitives and demands the diagnostic name each process
// with its blocking reason — the bookkeeping moved off the hot path must
// still be exact when it matters.
func TestDeadlockNamesEveryBlockedProcessWithReason(t *testing.T) {
	s := New(epoch)
	c := NewCond(s)
	m := NewMutex(s)
	r := NewResource(s, 1)
	s.Go("cond-waiter", func(p *Proc) {
		c.Wait(p)
	})
	s.Go("lock-holder", func(p *Proc) {
		m.Lock(p)
		r.Acquire(p, 1)
		p.Sleep(time.Second)
		r.Acquire(p, 1) // exhausted: blocks forever holding the mutex
	})
	s.Go("lock-waiter", func(p *Proc) {
		p.Sleep(time.Millisecond)
		m.Lock(p)
	})
	err := s.Run()
	if err == nil {
		t.Fatal("expected deadlock error")
	}
	for _, want := range []string{
		"3 process(es) blocked",
		"cond-waiter (cond)",
		"lock-holder (resource)",
		"lock-waiter (mutex)",
	} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("deadlock error %q missing %q", err, want)
		}
	}
}

// TestQueueReserveHugeOpsSaturates is the regression test for the
// time.Duration overflow in Reserve: a pathologically large reservation must
// clamp to the far future, never wrap negative (which would panic the kernel
// with "time went backwards").
func TestQueueReserveHugeOpsSaturates(t *testing.T) {
	s := New(epoch)
	q := NewQueue(s, 1) // 1 op/s => 1s per op
	const hugeOps = int(1<<62 - 1)
	d := q.Reserve(hugeOps)
	if d <= 0 {
		t.Fatalf("Reserve(%d) = %v, want a large positive delay", hugeOps, d)
	}
	if b := q.Backlog(); b <= 0 {
		t.Fatalf("Backlog after huge reserve = %v, want positive", b)
	}
	if q.BusyTime() <= 0 {
		t.Fatalf("BusyTime after huge reserve = %v, want positive", q.BusyTime())
	}
	// A follow-up reservation on the saturated channel must stay sane too.
	if d2 := q.Reserve(1); d2 <= 0 {
		t.Fatalf("Reserve(1) after saturation = %v, want positive", d2)
	}
	// Sleeping on a saturated delay must clamp, not wrap the clock.
	s.Go("p", func(p *Proc) {
		p.Sleep(d)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestManyProcessesStress(t *testing.T) {
	s := New(epoch)
	r := NewResource(s, 8)
	total := 0
	for i := 0; i < 200; i++ {
		i := i
		s.Go(fmt.Sprintf("w%d", i), func(p *Proc) {
			for j := 0; j < 20; j++ {
				r.Use(p, 1, time.Duration(1+(i+j)%3)*time.Millisecond)
				total++
			}
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if total != 4000 {
		t.Fatalf("completed = %d, want 4000", total)
	}
}
