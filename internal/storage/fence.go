package storage

import (
	"errors"
	"time"
)

// ErrFenced is returned when a commit carries a stale lease epoch: the
// writer was the RW once, but a fail-over has advanced the lease since and
// the shared storage layer refuses the write. This is the mechanism that
// makes a partitioned-but-alive old primary harmless (no split-brain).
var ErrFenced = errors.New("storage: write fenced (stale lease epoch)")

// FenceEventKind classifies fence log entries.
type FenceEventKind uint8

// Fence event kinds.
const (
	// FenceAdvance records a lease epoch bump (a fail-over).
	FenceAdvance FenceEventKind = iota + 1
	// FenceAck records a commit acknowledged under the then-current epoch.
	FenceAck
	// FenceReject records a commit refused because its epoch was stale.
	FenceReject
)

func (k FenceEventKind) String() string {
	switch k {
	case FenceAdvance:
		return "advance"
	case FenceAck:
		return "ack"
	case FenceReject:
		return "reject"
	default:
		return "unknown"
	}
}

// FenceEvent is one entry in the fence audit log: who tried to commit (or
// who advanced the lease), under which epoch, while which epoch was current.
// The check package replays this log to prove NoSplitBrain and
// MonotonicEpoch.
type FenceEvent struct {
	At         time.Duration  // virtual time
	Kind       FenceEventKind // advance | ack | reject
	Node       string         // committing node ("" for advances)
	Epoch      uint64         // epoch the writer presented (new epoch for advances)
	FenceEpoch uint64         // epoch the fence held when the event fired
}

// Fence is the epoch-numbered write lease shared by all nodes of one
// deployment, modelling the arbitration a quorum/shared storage layer
// performs: only commits presenting the current epoch are acknowledged.
// Epochs start at 1 (granted to the initial RW) and advance by exactly one
// per fail-over.
//
// Ack events are recorded only while recording is enabled (partition runs);
// rejects and advances, being rare and load-bearing for the invariants, are
// always logged.
type Fence struct {
	epoch     uint64
	events    []FenceEvent
	recording bool
	disabled  bool
}

// NewFence returns a fence at epoch 1.
func NewFence() *Fence {
	return &Fence{epoch: 1}
}

// Epoch returns the current lease epoch.
func (f *Fence) Epoch() uint64 { return f.epoch }

// Advance bumps the lease epoch by one (a fail-over taking the lease away
// from the old RW) and returns the new epoch.
func (f *Fence) Advance(at time.Duration) uint64 {
	f.epoch++
	f.events = append(f.events, FenceEvent{
		At: at, Kind: FenceAdvance, Epoch: f.epoch, FenceEpoch: f.epoch,
	})
	return f.epoch
}

// CheckCommit arbitrates one write commit: a commit presenting the current
// epoch is acknowledged; a stale epoch is rejected with ErrFenced. When the
// fence is disabled (the split-brain test fixture), stale commits are
// acknowledged anyway — the audit log still records them, which is exactly
// how the NoSplitBrain checker proves it would have caught the divergence.
func (f *Fence) CheckCommit(at time.Duration, nodeName string, epoch uint64) error {
	if epoch == f.epoch || f.disabled {
		if f.recording {
			f.events = append(f.events, FenceEvent{
				At: at, Kind: FenceAck, Node: nodeName, Epoch: epoch, FenceEpoch: f.epoch,
			})
		}
		return nil
	}
	f.events = append(f.events, FenceEvent{
		At: at, Kind: FenceReject, Node: nodeName, Epoch: epoch, FenceEpoch: f.epoch,
	})
	return ErrFenced
}

// SetRecording toggles ack logging. Partition runs enable it so the
// NoSplitBrain checker sees every acknowledged commit; throughput runs leave
// it off to keep memory flat.
func (f *Fence) SetRecording(on bool) { f.recording = on }

// Disable turns fencing off: stale epochs are acknowledged. This exists
// purely as a test fixture to demonstrate that without fencing a partitioned
// old primary produces a real split-brain the checker catches.
func (f *Fence) Disable() { f.disabled = true }

// Disabled reports whether fencing is disabled.
func (f *Fence) Disabled() bool { return f.disabled }

// Rejects returns how many commits the fence refused.
func (f *Fence) Rejects() int64 {
	var n int64
	for i := range f.events {
		if f.events[i].Kind == FenceReject {
			n++
		}
	}
	return n
}

// Events returns the audit log. The returned slice aliases internal storage
// and must not be mutated.
func (f *Fence) Events() []FenceEvent { return f.events }
