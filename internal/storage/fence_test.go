package storage

import (
	"errors"
	"testing"
	"time"
)

func TestFenceAcksCurrentEpochAndRejectsStale(t *testing.T) {
	f := NewFence()
	f.SetRecording(true)
	if f.Epoch() != 1 {
		t.Fatalf("fresh fence epoch = %d, want 1", f.Epoch())
	}
	if err := f.CheckCommit(time.Second, "rw", 1); err != nil {
		t.Fatalf("commit at current epoch rejected: %v", err)
	}
	if got := f.Advance(2 * time.Second); got != 2 {
		t.Fatalf("Advance = %d, want 2", got)
	}
	err := f.CheckCommit(3*time.Second, "rw", 1)
	if !errors.Is(err, ErrFenced) {
		t.Fatalf("stale commit error = %v, want ErrFenced", err)
	}
	if err := f.CheckCommit(4*time.Second, "ro0", 2); err != nil {
		t.Fatalf("commit at new epoch rejected: %v", err)
	}
	if got := f.Rejects(); got != 1 {
		t.Fatalf("Rejects = %d, want 1", got)
	}
	kinds := []FenceEventKind{FenceAck, FenceAdvance, FenceReject, FenceAck}
	evs := f.Events()
	if len(evs) != len(kinds) {
		t.Fatalf("event count = %d, want %d", len(evs), len(kinds))
	}
	for i, want := range kinds {
		if evs[i].Kind != want {
			t.Errorf("event %d kind = %s, want %s", i, evs[i].Kind, want)
		}
	}
}

func TestFenceDisabledAcksStaleEpochButStillLogs(t *testing.T) {
	f := NewFence()
	f.SetRecording(true)
	f.Advance(time.Second)
	f.Disable()
	if err := f.CheckCommit(2*time.Second, "rw", 1); err != nil {
		t.Fatalf("disabled fence rejected stale commit: %v", err)
	}
	// The stale ack is in the log with Epoch < FenceEpoch — the split-brain
	// evidence the checker keys on.
	evs := f.Events()
	last := evs[len(evs)-1]
	if last.Kind != FenceAck || last.Epoch != 1 || last.FenceEpoch != 2 {
		t.Fatalf("disabled-fence ack = %+v, want stale ack epoch 1 under fence epoch 2", last)
	}
}

func TestFenceRecordingOffSkipsAcksKeepsRejects(t *testing.T) {
	f := NewFence()
	if err := f.CheckCommit(time.Second, "rw", 1); err != nil {
		t.Fatalf("ack failed: %v", err)
	}
	f.Advance(2 * time.Second)
	_ = f.CheckCommit(3*time.Second, "rw", 1)
	var acks, rejects int
	for _, ev := range f.Events() {
		switch ev.Kind {
		case FenceAck:
			acks++
		case FenceReject:
			rejects++
		}
	}
	if acks != 0 || rejects != 1 {
		t.Fatalf("acks=%d rejects=%d, want 0 acks (recording off) and 1 reject", acks, rejects)
	}
}
