// Package storage provides the physical substrate shared by every simulated
// cloud database: page identity and sizing, an LRU buffer pool with dirty
// tracking, and write-ahead-log records with a real binary codec.
//
// Row *data* lives in the engine's logical layer (delta trees over a
// deterministic generator); this package models where that data physically
// resides — which 8 KB page a row belongs to, whether that page is cached,
// and what log bytes a change produces. The split keeps ACID semantics real
// while letting a 20 GB scale-factor-100 database exist without 20 GB of
// RAM: cold pages are identities, not buffers.
package storage

// PageSize is the uniform page size in bytes (PostgreSQL's default 8 KB,
// matching the engines the paper's SUTs are built on).
const PageSize = 8192

// TableID identifies a table within a database.
type TableID uint32

// PageID identifies one page of one table.
type PageID struct {
	Table TableID
	Num   uint64
}

// PagesFor returns the number of pages needed to hold rows of the given
// average size.
func PagesFor(rows int64, avgRowBytes int) uint64 {
	if rows <= 0 {
		return 0
	}
	if avgRowBytes <= 0 {
		avgRowBytes = 1
	}
	perPage := int64(PageSize / avgRowBytes)
	if perPage < 1 {
		perPage = 1
	}
	return uint64((rows + perPage - 1) / perPage)
}

// RowsPerPage returns how many rows of the given average size fit per page.
func RowsPerPage(avgRowBytes int) int64 {
	if avgRowBytes <= 0 {
		avgRowBytes = 1
	}
	n := int64(PageSize / avgRowBytes)
	if n < 1 {
		n = 1
	}
	return n
}
