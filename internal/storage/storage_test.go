package storage

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestPagesForAndRowsPerPage(t *testing.T) {
	if got := PagesFor(0, 64); got != 0 {
		t.Fatalf("PagesFor(0) = %d", got)
	}
	// 8192/64 = 128 rows per page.
	if got := RowsPerPage(64); got != 128 {
		t.Fatalf("RowsPerPage(64) = %d, want 128", got)
	}
	if got := PagesFor(128, 64); got != 1 {
		t.Fatalf("PagesFor(128,64) = %d, want 1", got)
	}
	if got := PagesFor(129, 64); got != 2 {
		t.Fatalf("PagesFor(129,64) = %d, want 2", got)
	}
	// Oversized rows still fit one per page.
	if got := RowsPerPage(100000); got != 1 {
		t.Fatalf("RowsPerPage(huge) = %d, want 1", got)
	}
	if got := RowsPerPage(0); got <= 0 {
		t.Fatalf("RowsPerPage(0) = %d, want positive", got)
	}
}

func pid(n uint64) PageID { return PageID{Table: 1, Num: n} }

func TestBufferPoolHitMissLRU(t *testing.T) {
	b := NewBufferPool(2)
	if b.Pin(pid(1)) {
		t.Fatal("empty pool reported hit")
	}
	b.Admit(pid(1))
	b.Admit(pid(2))
	if !b.Pin(pid(1)) || !b.Pin(pid(2)) {
		t.Fatal("resident pages reported miss")
	}
	// Access order is now 1 then 2 (2 most recent); admitting 3 evicts 1.
	if b.Pin(pid(3)) {
		t.Fatal("absent page reported hit")
	}
	ev, dirty, ok := b.Admit(pid(3))
	if !ok || ev != pid(1) || dirty {
		t.Fatalf("evicted = %v dirty=%v ok=%v, want page 1 clean", ev, dirty, ok)
	}
	if b.Contains(pid(1)) {
		t.Fatal("evicted page still resident")
	}
	hits, misses, evicted, _ := b.Stats()
	if hits != 2 || misses != 2 || evicted != 1 {
		t.Fatalf("stats = %d/%d/%d, want 2/2/1", hits, misses, evicted)
	}
	if got := b.HitRatio(); got != 0.5 {
		t.Fatalf("hit ratio = %v, want 0.5", got)
	}
}

func TestBufferPoolDirtyEviction(t *testing.T) {
	b := NewBufferPool(1)
	b.Admit(pid(1))
	b.MarkDirty(pid(1))
	if b.DirtyCount() != 1 {
		t.Fatalf("dirty count = %d, want 1", b.DirtyCount())
	}
	ev, dirty, ok := b.Admit(pid(2))
	if !ok || ev != pid(1) || !dirty {
		t.Fatalf("evicting dirty page: ev=%v dirty=%v ok=%v", ev, dirty, ok)
	}
	_, _, _, flushed := b.Stats()
	if flushed != 1 {
		t.Fatalf("flushed = %d, want 1", flushed)
	}
}

func TestBufferPoolMarkDirtyNonResidentIgnored(t *testing.T) {
	b := NewBufferPool(4)
	b.MarkDirty(pid(9)) // must not panic or create residency
	if b.Len() != 0 {
		t.Fatal("MarkDirty created residency")
	}
}

func TestBufferPoolFlushAll(t *testing.T) {
	b := NewBufferPool(4)
	for i := uint64(1); i <= 3; i++ {
		b.Admit(pid(i))
		b.MarkDirty(pid(i))
	}
	if n := b.FlushAll(); n != 3 {
		t.Fatalf("FlushAll = %d, want 3", n)
	}
	if b.DirtyCount() != 0 {
		t.Fatal("dirty pages remain after FlushAll")
	}
	if n := b.FlushAll(); n != 0 {
		t.Fatalf("second FlushAll = %d, want 0", n)
	}
}

func TestBufferPoolInvalidate(t *testing.T) {
	b := NewBufferPool(4)
	b.Admit(pid(1))
	if !b.Invalidate(pid(1)) {
		t.Fatal("Invalidate of resident page returned false")
	}
	if b.Invalidate(pid(1)) {
		t.Fatal("Invalidate of absent page returned true")
	}
	if b.Contains(pid(1)) {
		t.Fatal("page resident after invalidate")
	}
}

func TestBufferPoolResize(t *testing.T) {
	b := NewBufferPool(4)
	for i := uint64(1); i <= 4; i++ {
		b.Admit(pid(i))
	}
	b.MarkDirty(pid(1))
	b.MarkDirty(pid(2))
	dirtyEv := b.Resize(2)
	if b.Len() != 2 || b.Capacity() != 2 {
		t.Fatalf("len/cap = %d/%d, want 2/2", b.Len(), b.Capacity())
	}
	// Pages 1 and 2 were the LRU pair and both dirty.
	if dirtyEv != 2 {
		t.Fatalf("dirty evicted = %d, want 2", dirtyEv)
	}
	// Growing never evicts.
	if ev := b.Resize(10); ev != 0 {
		t.Fatalf("grow evicted %d pages", ev)
	}
}

func TestBufferPoolZeroCapacity(t *testing.T) {
	b := NewBufferPool(0)
	if _, _, ok := b.Admit(pid(1)); ok {
		t.Fatal("zero-capacity pool evicted something")
	}
	if b.Pin(pid(1)) {
		t.Fatal("zero-capacity pool reported hit")
	}
	if b.Len() != 0 {
		t.Fatal("zero-capacity pool holds pages")
	}
}

func TestBufferPoolClear(t *testing.T) {
	b := NewBufferPool(4)
	b.Admit(pid(1))
	b.Clear()
	if b.Len() != 0 || b.Contains(pid(1)) {
		t.Fatal("Clear did not empty the pool")
	}
}

func TestBufferPoolAdmitExistingRefreshes(t *testing.T) {
	b := NewBufferPool(2)
	b.Admit(pid(1))
	b.Admit(pid(2))
	b.Admit(pid(1)) // refresh, no eviction
	ev, _, ok := b.Admit(pid(3))
	if !ok || ev != pid(2) {
		t.Fatalf("evicted %v, want page 2 (page 1 was refreshed)", ev)
	}
}

func TestRecordEncodeDecodeRoundTrip(t *testing.T) {
	r := Record{
		LSN:   42,
		Type:  RecUpdate,
		Txn:   7,
		Table: 3,
		Page:  PageID{Table: 3, Num: 99},
		Key:   []byte("key-17"),
		Image: []byte{0x01, 0x02, 0x00, 0xff},
	}
	enc := r.Encode(nil)
	if len(enc) != r.Size() {
		t.Fatalf("encoded size %d != Size() %d", len(enc), r.Size())
	}
	got, n, err := DecodeRecord(enc)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(enc) {
		t.Fatalf("consumed %d of %d bytes", n, len(enc))
	}
	if got.LSN != r.LSN || got.Type != r.Type || got.Txn != r.Txn ||
		got.Table != r.Table || got.Page != r.Page ||
		!bytes.Equal(got.Key, r.Key) || !bytes.Equal(got.Image, r.Image) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, r)
	}
}

func TestRecordPriorFlagsRoundTrip(t *testing.T) {
	r := Record{
		LSN:   9,
		Type:  RecDelete,
		Txn:   4,
		Flags: FlagPriorExisted | FlagPriorInDelta,
		Table: 2,
		Page:  PageID{Table: 2, Num: 5},
		Key:   []byte("gone"),
		Prior: []byte("old-row-bytes"),
	}
	enc := r.Encode(nil)
	if len(enc) != r.Size() {
		t.Fatalf("encoded size %d != Size() %d", len(enc), r.Size())
	}
	got, _, err := DecodeRecord(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Flags != r.Flags || !bytes.Equal(got.Prior, r.Prior) || got.Image != nil {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, r)
	}
}

func TestRecordDecodeCorrupt(t *testing.T) {
	r := Record{LSN: 3, Type: RecUpdate, Txn: 1, Key: []byte("k"), Image: []byte("new"), Prior: []byte("old")}
	enc := r.Encode(nil)
	// Flipping any single byte must be caught by the checksum.
	for i := 0; i < len(enc); i++ {
		enc[i] ^= 0xff
		if _, _, err := DecodeRecord(enc); err == nil {
			t.Fatalf("flipped byte %d not detected", i)
		}
		enc[i] ^= 0xff
	}
	if _, _, err := DecodeRecord(enc); err != nil {
		t.Fatalf("pristine record failed to decode: %v", err)
	}
	// NoVerify must accept a payload flip (that is its whole, dangerous
	// point). recFixed+4 is the first key byte — payload, not a length.
	enc[recFixed+4] ^= 0xff
	if _, _, err := DecodeRecordNoVerify(enc); err != nil {
		t.Fatalf("NoVerify rejected structurally-sound record: %v", err)
	}
}

func TestCheckpointDataRoundTrip(t *testing.T) {
	d := CheckpointData{
		StartLSN: 17,
		ActiveTxns: []CheckpointTxn{
			{ID: 3, FirstLSN: 17},
			{ID: 8, FirstLSN: 22},
		},
		DirtyPages: []PageID{{Table: 1, Num: 4}, {Table: 2, Num: 0}},
	}
	buf := EncodeCheckpointData(d)
	got, err := DecodeCheckpointData(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.StartLSN != d.StartLSN || len(got.ActiveTxns) != 2 || len(got.DirtyPages) != 2 ||
		got.ActiveTxns[1] != d.ActiveTxns[1] || got.DirtyPages[0] != d.DirtyPages[0] {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, d)
	}
	// Truncated payloads error, never panic.
	for i := 0; i < len(buf); i++ {
		if _, err := DecodeCheckpointData(buf[:i]); err == nil {
			t.Fatalf("decoding %d-byte checkpoint prefix did not fail", i)
		}
	}
	empty, err := DecodeCheckpointData(EncodeCheckpointData(CheckpointData{StartLSN: 1}))
	if err != nil || empty.StartLSN != 1 || empty.ActiveTxns != nil || empty.DirtyPages != nil {
		t.Fatalf("empty checkpoint round trip: %+v err=%v", empty, err)
	}
}

func TestLogSyncAndCrashDropsUnsyncedTail(t *testing.T) {
	l := NewLog()
	for i := 0; i < 3; i++ {
		l.Append(Record{Type: RecInsert, Key: []byte{byte(i)}})
	}
	l.Sync()
	if l.DurableLSN() != 3 {
		t.Fatalf("durable = %d, want 3", l.DurableLSN())
	}
	for i := 3; i < 7; i++ {
		l.Append(Record{Type: RecInsert, Key: []byte{byte(i)}})
	}
	tail, dropped := l.Crash(TornNone)
	if tail != nil || dropped != 4 {
		t.Fatalf("crash: tail=%v dropped=%d, want nil/4", tail, dropped)
	}
	if l.Head() != 3 || l.Len() != 3 {
		t.Fatalf("post-crash head/len = %d/%d, want 3/3", l.Head(), l.Len())
	}
	// Appends after recovery continue the LSN sequence densely.
	if lsn := l.Append(Record{Type: RecInsert}); lsn != 4 {
		t.Fatalf("post-crash append LSN = %d, want 4", lsn)
	}
	// Crash with nothing unsynced is a no-op.
	l.Sync()
	if _, dropped := l.Crash(TornShort); dropped != 0 {
		t.Fatalf("synced crash dropped %d records", dropped)
	}
}

func TestLogCrashTornShort(t *testing.T) {
	l := NewLog()
	l.Append(Record{Type: RecInsert, Key: []byte("a")})
	l.Sync()
	l.Append(Record{Type: RecUpdate, Txn: 9, Key: []byte("torn-key"), Image: []byte("torn-image")})
	tail, dropped := l.Crash(TornShort)
	if dropped != 1 || tail == nil {
		t.Fatalf("dropped=%d tail=%v", dropped, tail)
	}
	if _, _, err := DecodeRecord(tail); err != ErrShortRecord {
		t.Fatalf("torn-short tail decode err = %v, want ErrShortRecord", err)
	}
}

func TestLogCrashTornFlip(t *testing.T) {
	l := NewLog()
	l.Append(Record{Type: RecInsert, Key: []byte("a")})
	l.Sync()
	l.Append(Record{Type: RecUpdate, Txn: 9, Key: []byte("torn-key"), Image: []byte("torn-image")})
	tail, dropped := l.Crash(TornFlip)
	if dropped != 1 || tail == nil {
		t.Fatalf("dropped=%d tail=%v", dropped, tail)
	}
	if _, _, err := DecodeRecord(tail); err != ErrCorruptRecord {
		t.Fatalf("torn-flip tail decode err = %v, want ErrCorruptRecord", err)
	}
	// The unverified decode "succeeds" — that is the hazard recovery's
	// checksum pass exists to close.
	rec, _, err := DecodeRecordNoVerify(tail)
	if err != nil {
		t.Fatalf("NoVerify decode of flipped tail failed: %v", err)
	}
	if rec.Txn != 9 {
		t.Fatalf("NoVerify decoded txn %d, want 9", rec.Txn)
	}
}

func TestLogSnapshotCarriesDurable(t *testing.T) {
	l := NewLog()
	l.Append(Record{Type: RecInsert})
	l.Sync()
	l.Append(Record{Type: RecInsert})
	snap := l.Snapshot()
	l2 := NewLog()
	l2.Restore(snap)
	if l2.DurableLSN() != 1 || l2.Head() != 2 {
		t.Fatalf("restored durable/head = %d/%d, want 1/2", l2.DurableLSN(), l2.Head())
	}
	if _, dropped := l2.Crash(TornNone); dropped != 1 {
		t.Fatalf("restored log crash dropped %d, want 1", dropped)
	}
}

func TestBufferPoolDirtyPages(t *testing.T) {
	b := NewBufferPool(4)
	for i := uint64(1); i <= 3; i++ {
		b.Admit(pid(i))
	}
	b.MarkDirty(pid(1))
	b.MarkDirty(pid(3))
	got := b.DirtyPages()
	// MRU-first order: 3 admitted last.
	if len(got) != 2 || got[0] != pid(3) || got[1] != pid(1) {
		t.Fatalf("DirtyPages = %v, want [3 1]", got)
	}
	b.FlushAll()
	if b.DirtyPages() != nil {
		t.Fatal("DirtyPages after FlushAll not empty")
	}
}

func TestRecordDecodeTruncated(t *testing.T) {
	r := Record{Type: RecInsert, Key: []byte("k"), Image: []byte("img")}
	enc := r.Encode(nil)
	for i := 0; i < len(enc); i++ {
		if _, _, err := DecodeRecord(enc[:i]); err == nil {
			t.Fatalf("decoding %d-byte prefix did not fail", i)
		}
	}
}

func TestRecordRoundTripProperty(t *testing.T) {
	check := func(typ uint8, txn uint64, table uint32, pnum uint64, key, image []byte) bool {
		r := Record{
			Type:  RecType(typ%7 + 1),
			Txn:   txn,
			Table: TableID(table),
			Page:  PageID{Table: TableID(table), Num: pnum},
			Key:   key,
			Image: image,
		}
		enc := r.Encode(nil)
		got, n, err := DecodeRecord(enc)
		if err != nil || n != len(enc) {
			return false
		}
		return got.Type == r.Type && got.Txn == r.Txn &&
			bytes.Equal(got.Key, r.Key) && bytes.Equal(got.Image, r.Image)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRecordTypeStrings(t *testing.T) {
	for _, typ := range []RecType{RecBegin, RecInsert, RecUpdate, RecDelete, RecCommit, RecAbort, RecCheckpoint} {
		if s := typ.String(); s == "" || s[0] == 'R' && s != "RecType(0)" && len(s) > 10 && s[:7] == "RecType" {
			t.Fatalf("unexpected string for %d: %q", typ, s)
		}
	}
	if RecType(99).String() != "RecType(99)" {
		t.Fatal("unknown type string")
	}
}

func TestLogAppendReadHead(t *testing.T) {
	l := NewLog()
	if l.Head() != 0 {
		t.Fatalf("empty head = %d, want 0", l.Head())
	}
	for i := 0; i < 5; i++ {
		lsn := l.Append(Record{Type: RecInsert, Key: []byte{byte(i)}})
		if lsn != LSN(i+1) {
			t.Fatalf("append %d got LSN %d", i, lsn)
		}
	}
	if l.Head() != 5 || l.Len() != 5 {
		t.Fatalf("head/len = %d/%d, want 5/5", l.Head(), l.Len())
	}
	recs := l.Read(0, 0)
	if len(recs) != 5 || recs[0].LSN != 1 || recs[4].LSN != 5 {
		t.Fatalf("Read(0) returned %d records", len(recs))
	}
	recs = l.Read(2, 2)
	if len(recs) != 2 || recs[0].LSN != 3 || recs[1].LSN != 4 {
		t.Fatalf("Read(2,2) = LSNs %v", recs)
	}
	if l.Read(5, 0) != nil {
		t.Fatal("Read past head should be nil")
	}
	if l.Read(99, 0) != nil {
		t.Fatal("Read far past head should be nil")
	}
}

func TestLogTruncate(t *testing.T) {
	l := NewLog()
	for i := 0; i < 10; i++ {
		l.Append(Record{Type: RecInsert})
	}
	before := l.Bytes()
	l.TruncateBefore(6)
	if l.Len() != 5 {
		t.Fatalf("len after truncate = %d, want 5", l.Len())
	}
	if l.Bytes() >= before {
		t.Fatal("truncate did not reclaim bytes accounting")
	}
	recs := l.Read(5, 0)
	if len(recs) != 5 || recs[0].LSN != 6 {
		t.Fatalf("post-truncate read wrong: %d recs first %d", len(recs), recs[0].LSN)
	}
	// Reading below retention is a programming error.
	defer func() {
		if recover() == nil {
			t.Fatal("read below retention did not panic")
		}
	}()
	l.Read(2, 0)
}

func TestLogTruncateBeyondHeadClamped(t *testing.T) {
	l := NewLog()
	l.Append(Record{Type: RecInsert})
	l.TruncateBefore(100)
	if l.Len() != 0 {
		t.Fatalf("len = %d, want 0", l.Len())
	}
	lsn := l.Append(Record{Type: RecInsert})
	if lsn != 2 {
		t.Fatalf("append after full truncate got LSN %d, want 2", lsn)
	}
}
