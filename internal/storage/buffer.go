package storage

import "container/list"

// BufferPool is an LRU page cache with dirty-page tracking. It runs inside
// the simulation's single-runnable discipline, so it needs no locking.
//
// The pool stores page *residency*, not page bytes: Pin answers "was this a
// hit?", and the caller (a database node) charges the appropriate I/O and
// network delays on a miss before calling Admit. Dirty tracking drives the
// ARIES-style engines' flush-on-evict and checkpoint behaviour, which the
// paper identifies as RDS's bottleneck under write-heavy load (§III-B).
type BufferPool struct {
	capacity int // max resident pages; 0 means nothing fits
	pages    map[PageID]*list.Element
	lru      *list.List // front = most recently used

	hits    int64
	misses  int64
	evicted int64
	flushed int64 // dirty pages written back (on evict or checkpoint)
}

type bufEntry struct {
	id    PageID
	dirty bool
}

// NewBufferPool returns a pool that holds at most capacity pages.
func NewBufferPool(capacity int) *BufferPool {
	if capacity < 0 {
		capacity = 0
	}
	return &BufferPool{
		capacity: capacity,
		pages:    make(map[PageID]*list.Element),
		lru:      list.New(),
	}
}

// NewBufferPoolBytes returns a pool sized to hold bytes/PageSize pages.
func NewBufferPoolBytes(bytes int64) *BufferPool {
	return NewBufferPool(int(bytes / PageSize))
}

// Capacity returns the maximum number of resident pages.
func (b *BufferPool) Capacity() int { return b.capacity }

// Len returns the number of currently resident pages.
func (b *BufferPool) Len() int { return b.lru.Len() }

// Contains reports residency without touching recency or stats.
func (b *BufferPool) Contains(id PageID) bool {
	_, ok := b.pages[id]
	return ok
}

// Pin records an access to the page and reports whether it was resident
// (hit). On a miss the caller should pay its architecture's fetch cost and
// then call Admit.
func (b *BufferPool) Pin(id PageID) bool {
	if el, ok := b.pages[id]; ok {
		b.lru.MoveToFront(el)
		b.hits++
		return true
	}
	b.misses++
	return false
}

// Admit inserts the page as most recently used, evicting the LRU page if
// the pool is full. It returns the evicted page and whether the evicted
// page was dirty (requiring writeback in ARIES-style engines). If nothing
// was evicted, ok is false.
func (b *BufferPool) Admit(id PageID) (evicted PageID, dirty, ok bool) {
	if b.capacity == 0 {
		return PageID{}, false, false
	}
	if el, exists := b.pages[id]; exists {
		b.lru.MoveToFront(el)
		return PageID{}, false, false
	}
	for b.lru.Len() >= b.capacity {
		back := b.lru.Back()
		ent := back.Value.(*bufEntry)
		b.lru.Remove(back)
		delete(b.pages, ent.id)
		b.evicted++
		evicted, dirty, ok = ent.id, ent.dirty, true
		if dirty {
			b.flushed++
		}
	}
	b.pages[id] = b.lru.PushFront(&bufEntry{id: id})
	return evicted, dirty, ok
}

// MarkDirty flags a resident page as modified. Non-resident pages are
// ignored (the write went straight through).
func (b *BufferPool) MarkDirty(id PageID) {
	if el, ok := b.pages[id]; ok {
		el.Value.(*bufEntry).dirty = true
	}
}

// DirtyCount returns the number of resident dirty pages.
func (b *BufferPool) DirtyCount() int {
	n := 0
	for el := b.lru.Front(); el != nil; el = el.Next() {
		if el.Value.(*bufEntry).dirty {
			n++
		}
	}
	return n
}

// DirtyPages returns the resident dirty pages in LRU order (MRU first) —
// the dirty-page table a fuzzy checkpoint records. The order follows the
// LRU list, so it is deterministic for a deterministic access history.
func (b *BufferPool) DirtyPages() []PageID {
	var out []PageID
	for el := b.lru.Front(); el != nil; el = el.Next() {
		ent := el.Value.(*bufEntry)
		if ent.dirty {
			out = append(out, ent.id)
		}
	}
	return out
}

// FlushAll clears all dirty flags, returning how many pages were flushed.
// Checkpointing engines pay writeback I/O for each.
func (b *BufferPool) FlushAll() int {
	n := 0
	for el := b.lru.Front(); el != nil; el = el.Next() {
		ent := el.Value.(*bufEntry)
		if ent.dirty {
			ent.dirty = false
			n++
		}
	}
	b.flushed += int64(n)
	return n
}

// Invalidate drops the page if resident (cache-coherency protocol of the
// memory-disaggregated architecture). It reports whether the page was
// resident.
func (b *BufferPool) Invalidate(id PageID) bool {
	el, ok := b.pages[id]
	if !ok {
		return false
	}
	b.lru.Remove(el)
	delete(b.pages, id)
	return true
}

// Clear empties the pool (node restart: cache is lost).
func (b *BufferPool) Clear() {
	b.pages = make(map[PageID]*list.Element)
	b.lru.Init()
}

// DropEvery is the chaos-injection hook for partial cache loss: it evicts
// every n-th resident page in LRU order (n <= 1 empties the pool), modeling
// an eviction storm or a degraded page-cache tier without the full cold
// start of Clear. Dropped dirty pages are counted as flushed — the damage
// model assumes the writeback happened before the loss, so no updates are
// lost (chaos must perturb performance, never correctness). It returns the
// number of pages dropped. Iteration follows the LRU list, so the selection
// is deterministic for a deterministic access history.
func (b *BufferPool) DropEvery(n int) int {
	if n <= 1 {
		dropped := b.lru.Len()
		for el := b.lru.Front(); el != nil; el = el.Next() {
			if el.Value.(*bufEntry).dirty {
				b.flushed++
			}
		}
		b.evicted += int64(dropped)
		b.Clear()
		return dropped
	}
	dropped := 0
	i := 0
	for el := b.lru.Front(); el != nil; {
		next := el.Next()
		if i%n == 0 {
			ent := el.Value.(*bufEntry)
			b.lru.Remove(el)
			delete(b.pages, ent.id)
			b.evicted++
			if ent.dirty {
				b.flushed++
			}
			dropped++
		}
		i++
		el = next
	}
	return dropped
}

// Resize changes capacity, evicting LRU pages if shrinking. Serverless
// engines resize the buffer when memory scales. Returns the number of
// dirty pages evicted (requiring writeback).
func (b *BufferPool) Resize(capacity int) int {
	if capacity < 0 {
		capacity = 0
	}
	b.capacity = capacity
	dirtyEvicted := 0
	for b.lru.Len() > b.capacity {
		back := b.lru.Back()
		ent := back.Value.(*bufEntry)
		b.lru.Remove(back)
		delete(b.pages, ent.id)
		b.evicted++
		if ent.dirty {
			b.flushed++
			dirtyEvicted++
		}
	}
	return dirtyEvicted
}

// BufSnapshot is a point-in-time capture of a BufferPool: residency and
// recency order, dirty flags, capacity, and cumulative stats (warm-up
// memoization).
type BufSnapshot struct {
	capacity int
	entries  []bufEntry // MRU first
	hits     int64
	misses   int64
	evicted  int64
	flushed  int64
}

// Snapshot captures the pool's current state.
func (b *BufferPool) Snapshot() BufSnapshot {
	s := BufSnapshot{
		capacity: b.capacity,
		hits:     b.hits, misses: b.misses, evicted: b.evicted, flushed: b.flushed,
	}
	for el := b.lru.Front(); el != nil; el = el.Next() {
		s.entries = append(s.entries, *el.Value.(*bufEntry))
	}
	return s
}

// Restore resets the pool to a snapshot, rebuilding the LRU list so that
// pools restored from the same snapshot evolve independently.
func (b *BufferPool) Restore(snap BufSnapshot) {
	b.capacity = snap.capacity
	b.pages = make(map[PageID]*list.Element, len(snap.entries))
	b.lru.Init()
	for i := range snap.entries {
		ent := snap.entries[i]
		b.pages[ent.id] = b.lru.PushBack(&ent)
	}
	b.hits, b.misses, b.evicted, b.flushed = snap.hits, snap.misses, snap.evicted, snap.flushed
}

// Stats returns cumulative hit/miss/eviction/flush counts.
func (b *BufferPool) Stats() (hits, misses, evicted, flushed int64) {
	return b.hits, b.misses, b.evicted, b.flushed
}

// HitRatio returns hits/(hits+misses), or 0 with no accesses.
func (b *BufferPool) HitRatio() float64 {
	total := b.hits + b.misses
	if total == 0 {
		return 0
	}
	return float64(b.hits) / float64(total)
}
