package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// LSN is a log sequence number. LSNs are dense and strictly increasing per
// log stream, starting at 1.
type LSN uint64

// RecType enumerates WAL record types.
type RecType uint8

// WAL record types.
const (
	RecBegin RecType = iota + 1
	RecInsert
	RecUpdate
	RecDelete
	RecCommit
	RecAbort
	RecCheckpoint
	// RecIndexPut / RecIndexDelete describe secondary-index entry changes.
	// Table names the index's synthetic TableID and Page its index page, so
	// fenced-write accounting and replica cache invalidation see index
	// traffic; replicas apply them as data-layer no-ops because index state
	// is re-derived from the heap records (see engine.Table.refreshIndexes).
	RecIndexPut
	RecIndexDelete
)

func (t RecType) String() string {
	switch t {
	case RecBegin:
		return "BEGIN"
	case RecInsert:
		return "INSERT"
	case RecUpdate:
		return "UPDATE"
	case RecDelete:
		return "DELETE"
	case RecCommit:
		return "COMMIT"
	case RecAbort:
		return "ABORT"
	case RecCheckpoint:
		return "CHECKPOINT"
	case RecIndexPut:
		return "IXPUT"
	case RecIndexDelete:
		return "IXDEL"
	default:
		return fmt.Sprintf("RecType(%d)", uint8(t))
	}
}

// Record is one write-ahead-log entry. For data records, Key is the encoded
// primary key and Image the encoded after-image row (nil for deletes).
// Page carries the physical page the change touched, which replicas use to
// drive cache invalidation and parallel replay partitioning.
type Record struct {
	LSN   LSN
	Type  RecType
	Txn   uint64
	Table TableID
	Page  PageID
	Key   []byte
	Image []byte
}

// Size returns the encoded size in bytes, used to model log-shipping
// bandwidth.
func (r *Record) Size() int {
	return 1 + 8 + 8 + 4 + 4 + 8 + 4 + len(r.Key) + 4 + len(r.Image)
}

// Encode appends the binary encoding of r to dst and returns the result.
// The format is fixed-width headers with length-prefixed key and image.
func (r *Record) Encode(dst []byte) []byte {
	dst = append(dst, byte(r.Type))
	dst = binary.BigEndian.AppendUint64(dst, uint64(r.LSN))
	dst = binary.BigEndian.AppendUint64(dst, r.Txn)
	dst = binary.BigEndian.AppendUint32(dst, uint32(r.Table))
	dst = binary.BigEndian.AppendUint32(dst, uint32(r.Page.Table))
	dst = binary.BigEndian.AppendUint64(dst, r.Page.Num)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(r.Key)))
	dst = append(dst, r.Key...)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(r.Image)))
	dst = append(dst, r.Image...)
	return dst
}

// ErrShortRecord reports a truncated record during decode.
var ErrShortRecord = errors.New("storage: truncated WAL record")

// DecodeRecord decodes one record from buf, returning the record and the
// number of bytes consumed.
func DecodeRecord(buf []byte) (Record, int, error) {
	var r Record
	const fixed = 1 + 8 + 8 + 4 + 4 + 8 + 4
	if len(buf) < fixed {
		return r, 0, ErrShortRecord
	}
	off := 0
	r.Type = RecType(buf[off])
	off++
	r.LSN = LSN(binary.BigEndian.Uint64(buf[off:]))
	off += 8
	r.Txn = binary.BigEndian.Uint64(buf[off:])
	off += 8
	r.Table = TableID(binary.BigEndian.Uint32(buf[off:]))
	off += 4
	r.Page.Table = TableID(binary.BigEndian.Uint32(buf[off:]))
	off += 4
	r.Page.Num = binary.BigEndian.Uint64(buf[off:])
	off += 8
	klen := int(binary.BigEndian.Uint32(buf[off:]))
	off += 4
	if len(buf) < off+klen+4 {
		return r, 0, ErrShortRecord
	}
	if klen > 0 {
		r.Key = append([]byte(nil), buf[off:off+klen]...)
	}
	off += klen
	ilen := int(binary.BigEndian.Uint32(buf[off:]))
	off += 4
	if len(buf) < off+ilen {
		return r, 0, ErrShortRecord
	}
	if ilen > 0 {
		r.Image = append([]byte(nil), buf[off:off+ilen]...)
	}
	off += ilen
	return r, off, nil
}

// Log is an in-memory write-ahead log stream. The RW node appends; shippers
// read ranges to feed replicas and page services. Appends assign dense LSNs.
// A retention window keeps memory bounded: records older than the minimum
// LSN any consumer still needs may be truncated.
type Log struct {
	firstLSN LSN // LSN of records[0]
	records  []Record
	bytes    int64
}

// NewLog returns an empty log whose first record will get LSN 1.
func NewLog() *Log {
	return &Log{firstLSN: 1}
}

// Append assigns the next LSN to r, stores it, and returns the LSN.
func (l *Log) Append(r Record) LSN {
	r.LSN = l.firstLSN + LSN(len(l.records))
	l.records = append(l.records, r)
	l.bytes += int64(r.Size())
	return r.LSN
}

// Head returns the LSN of the most recent record (0 if empty).
func (l *Log) Head() LSN {
	if len(l.records) == 0 {
		return l.firstLSN - 1
	}
	return l.firstLSN + LSN(len(l.records)) - 1
}

// Read returns records with LSN in (after, after+max]; max <= 0 means all
// available. The returned slice aliases internal storage and must not be
// mutated.
func (l *Log) Read(after LSN, max int) []Record {
	head := l.Head()
	if after >= head {
		return nil
	}
	start := after + 1
	if start < l.firstLSN {
		panic(fmt.Sprintf("storage: log read below retention: want LSN %d, first retained %d", start, l.firstLSN))
	}
	idx := int(start - l.firstLSN)
	end := len(l.records)
	if max > 0 && idx+max < end {
		end = idx + max
	}
	return l.records[idx:end]
}

// TruncateBefore drops records with LSN < lsn, reclaiming memory. It is a
// no-op if lsn is below the current first retained LSN.
func (l *Log) TruncateBefore(lsn LSN) {
	if lsn <= l.firstLSN {
		return
	}
	head := l.Head()
	if lsn > head+1 {
		lsn = head + 1
	}
	drop := int(lsn - l.firstLSN)
	for _, r := range l.records[:drop] {
		l.bytes -= int64(r.Size())
	}
	l.records = append([]Record(nil), l.records[drop:]...)
	l.firstLSN = lsn
}

// LogSnapshot is a point-in-time capture of a Log (warm-up memoization).
// The record entries are shared with the source log — records are immutable
// once appended, so aliasing is safe.
type LogSnapshot struct {
	firstLSN LSN
	records  []Record
	bytes    int64
}

// Snapshot captures the log's current state.
func (l *Log) Snapshot() LogSnapshot {
	return LogSnapshot{firstLSN: l.firstLSN, records: l.records[:len(l.records):len(l.records)], bytes: l.bytes}
}

// Restore resets the log to a snapshot. The record slice is copied so that
// multiple logs restored from one snapshot append independently.
func (l *Log) Restore(snap LogSnapshot) {
	l.firstLSN = snap.firstLSN
	l.records = append([]Record(nil), snap.records...)
	l.bytes = snap.bytes
}

// Len returns the number of retained records.
func (l *Log) Len() int { return len(l.records) }

// Bytes returns the total encoded size of retained records.
func (l *Log) Bytes() int64 { return l.bytes }
