package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// LSN is a log sequence number. LSNs are dense and strictly increasing per
// log stream, starting at 1.
type LSN uint64

// RecType enumerates WAL record types.
type RecType uint8

// WAL record types.
const (
	RecBegin RecType = iota + 1
	RecInsert
	RecUpdate
	RecDelete
	RecCommit
	RecAbort
	RecCheckpoint
	// RecIndexPut / RecIndexDelete describe secondary-index entry changes.
	// Table names the index's synthetic TableID and Page its index page, so
	// fenced-write accounting and replica cache invalidation see index
	// traffic; replicas apply them as data-layer no-ops because index state
	// is re-derived from the heap records (see engine.Table.refreshIndexes).
	RecIndexPut
	RecIndexDelete
)

func (t RecType) String() string {
	switch t {
	case RecBegin:
		return "BEGIN"
	case RecInsert:
		return "INSERT"
	case RecUpdate:
		return "UPDATE"
	case RecDelete:
		return "DELETE"
	case RecCommit:
		return "COMMIT"
	case RecAbort:
		return "ABORT"
	case RecCheckpoint:
		return "CHECKPOINT"
	case RecIndexPut:
		return "IXPUT"
	case RecIndexDelete:
		return "IXDEL"
	default:
		return fmt.Sprintf("RecType(%d)", uint8(t))
	}
}

// Record flag bits. The prior-image flags capture the exact overlay shape a
// write displaced, so crash recovery can roll a loser back with
// engine.Table.undoSet — the same machinery a runtime abort uses.
const (
	// FlagPriorExisted: the key was visible before the write (updates and
	// deletes; clear for inserts).
	FlagPriorExisted uint8 = 1 << 0
	// FlagPriorInDelta: the key had a delta-overlay entry (row or tombstone)
	// before the write; clear means the visible value came from base storage.
	FlagPriorInDelta uint8 = 1 << 1
)

// Record is one write-ahead-log entry. For data records, Key is the encoded
// primary key and Image the encoded after-image row (nil for deletes); Prior
// is the encoded before-image (nil for inserts), which makes recovery undo of
// uncommitted transactions possible without consulting volatile state. Page
// carries the physical page the change touched, which replicas use to drive
// cache invalidation and parallel replay partitioning. Published (shipped)
// copies strip Prior — replicas replay after-images only.
type Record struct {
	LSN   LSN
	Type  RecType
	Txn   uint64
	Flags uint8
	Table TableID
	Page  PageID
	Key   []byte
	Image []byte
	Prior []byte
}

// recFixed is the encoded size of the fixed-width header fields, recSum the
// CRC trailer.
const (
	recFixed = 1 + 8 + 8 + 1 + 4 + 4 + 8
	recSum   = 4
)

// recCRC is the CRC-32C (Castagnoli) table used for record checksums.
var recCRC = crc32.MakeTable(crc32.Castagnoli)

// Size returns the encoded size in bytes, used to model log-shipping
// bandwidth and fsync cost.
func (r *Record) Size() int {
	return recFixed + 4 + len(r.Key) + 4 + len(r.Image) + 4 + len(r.Prior) + recSum
}

// Encode appends the binary encoding of r to dst and returns the result.
// The format is fixed-width headers with length-prefixed key, image, and
// prior-image, closed by a CRC-32C over everything before it.
func (r *Record) Encode(dst []byte) []byte {
	start := len(dst)
	dst = append(dst, byte(r.Type))
	dst = binary.BigEndian.AppendUint64(dst, uint64(r.LSN))
	dst = binary.BigEndian.AppendUint64(dst, r.Txn)
	dst = append(dst, r.Flags)
	dst = binary.BigEndian.AppendUint32(dst, uint32(r.Table))
	dst = binary.BigEndian.AppendUint32(dst, uint32(r.Page.Table))
	dst = binary.BigEndian.AppendUint64(dst, r.Page.Num)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(r.Key)))
	dst = append(dst, r.Key...)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(r.Image)))
	dst = append(dst, r.Image...)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(r.Prior)))
	dst = append(dst, r.Prior...)
	sum := crc32.Checksum(dst[start:], recCRC)
	return binary.BigEndian.AppendUint32(dst, sum)
}

// ErrShortRecord reports a truncated record during decode.
var ErrShortRecord = errors.New("storage: truncated WAL record")

// ErrCorruptRecord reports a checksum mismatch during decode: the record was
// fully present but its bytes do not match the CRC trailer (a torn or
// bit-rotted write).
var ErrCorruptRecord = errors.New("storage: corrupt WAL record (checksum mismatch)")

// DecodeRecord decodes one record from buf, verifying its checksum, and
// returns the record and the number of bytes consumed. Truncation returns
// ErrShortRecord, a checksum mismatch ErrCorruptRecord; either way the tail
// of a crashed log must be cut at the failing record.
func DecodeRecord(buf []byte) (Record, int, error) {
	return decodeRecord(buf, true)
}

// DecodeRecordNoVerify decodes one record without checking its CRC trailer.
// It exists only so recovery "teeth" tests can model a broken reader that
// trusts a torn tail; real recovery always verifies.
func DecodeRecordNoVerify(buf []byte) (Record, int, error) {
	return decodeRecord(buf, false)
}

func decodeRecord(buf []byte, verify bool) (Record, int, error) {
	var r Record
	if len(buf) < recFixed+4 {
		return r, 0, ErrShortRecord
	}
	off := 0
	r.Type = RecType(buf[off])
	off++
	r.LSN = LSN(binary.BigEndian.Uint64(buf[off:]))
	off += 8
	r.Txn = binary.BigEndian.Uint64(buf[off:])
	off += 8
	r.Flags = buf[off]
	off++
	r.Table = TableID(binary.BigEndian.Uint32(buf[off:]))
	off += 4
	r.Page.Table = TableID(binary.BigEndian.Uint32(buf[off:]))
	off += 4
	r.Page.Num = binary.BigEndian.Uint64(buf[off:])
	off += 8
	klen := int(binary.BigEndian.Uint32(buf[off:]))
	off += 4
	if klen < 0 || len(buf)-off < klen+4 {
		return r, 0, ErrShortRecord
	}
	if klen > 0 {
		r.Key = append([]byte(nil), buf[off:off+klen]...)
	}
	off += klen
	ilen := int(binary.BigEndian.Uint32(buf[off:]))
	off += 4
	if ilen < 0 || len(buf)-off < ilen+4 {
		return r, 0, ErrShortRecord
	}
	if ilen > 0 {
		r.Image = append([]byte(nil), buf[off:off+ilen]...)
	}
	off += ilen
	plen := int(binary.BigEndian.Uint32(buf[off:]))
	off += 4
	if plen < 0 || len(buf)-off < plen+recSum {
		return r, 0, ErrShortRecord
	}
	if plen > 0 {
		r.Prior = append([]byte(nil), buf[off:off+plen]...)
	}
	off += plen
	want := binary.BigEndian.Uint32(buf[off:])
	off += recSum
	if verify && crc32.Checksum(buf[:off-recSum], recCRC) != want {
		return Record{}, 0, ErrCorruptRecord
	}
	return r, off, nil
}

// CheckpointTxn is one active-transaction-table entry of a fuzzy checkpoint:
// a transaction that had logged work but not yet committed or aborted when
// the checkpoint was taken, and the LSN of its first record (the lower bound
// of any undo scan that must roll it back).
type CheckpointTxn struct {
	ID       uint64
	FirstLSN LSN
}

// CheckpointData is the payload of a RecCheckpoint record: the fuzzy
// checkpoint's redo start point, active-transaction table, and dirty-page
// table. Recovery replays forward from StartLSN (everything older is covered
// by flushed pages or by the ATT's undo ranges) and rolls back every ATT
// entry that never reached a commit record.
type CheckpointData struct {
	// StartLSN is min(first LSN of every active txn, checkpoint LSN): the
	// oldest record recovery may need.
	StartLSN LSN
	// ActiveTxns is the active-transaction table in ascending txn-id order.
	ActiveTxns []CheckpointTxn
	// DirtyPages is the dirty-page table: pages modified in the buffer pool
	// but not yet written back when the checkpoint began.
	DirtyPages []PageID
}

// EncodeCheckpointData serializes the payload for a RecCheckpoint's Image.
func EncodeCheckpointData(d CheckpointData) []byte {
	buf := make([]byte, 0, 8+4+len(d.ActiveTxns)*16+4+len(d.DirtyPages)*12)
	buf = binary.BigEndian.AppendUint64(buf, uint64(d.StartLSN))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(d.ActiveTxns)))
	for _, t := range d.ActiveTxns {
		buf = binary.BigEndian.AppendUint64(buf, t.ID)
		buf = binary.BigEndian.AppendUint64(buf, uint64(t.FirstLSN))
	}
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(d.DirtyPages)))
	for _, pg := range d.DirtyPages {
		buf = binary.BigEndian.AppendUint32(buf, uint32(pg.Table))
		buf = binary.BigEndian.AppendUint64(buf, pg.Num)
	}
	return buf
}

// DecodeCheckpointData parses a RecCheckpoint Image.
func DecodeCheckpointData(buf []byte) (CheckpointData, error) {
	var d CheckpointData
	if len(buf) < 12 {
		return d, ErrShortRecord
	}
	d.StartLSN = LSN(binary.BigEndian.Uint64(buf))
	off := 8
	n := int(binary.BigEndian.Uint32(buf[off:]))
	off += 4
	if n < 0 || len(buf)-off < n*16+4 {
		return d, ErrShortRecord
	}
	for i := 0; i < n; i++ {
		d.ActiveTxns = append(d.ActiveTxns, CheckpointTxn{
			ID:       binary.BigEndian.Uint64(buf[off:]),
			FirstLSN: LSN(binary.BigEndian.Uint64(buf[off+8:])),
		})
		off += 16
	}
	m := int(binary.BigEndian.Uint32(buf[off:]))
	off += 4
	if m < 0 || len(buf)-off < m*12 {
		return d, ErrShortRecord
	}
	for i := 0; i < m; i++ {
		d.DirtyPages = append(d.DirtyPages, PageID{
			Table: TableID(binary.BigEndian.Uint32(buf[off:])),
			Num:   binary.BigEndian.Uint64(buf[off+4:]),
		})
		off += 12
	}
	return d, nil
}

// TornMode selects how a crash mangles the record being written when the
// failure hit (the torn tail past the last fsync barrier).
type TornMode int

const (
	// TornNone: the crash fell between record writes; the unsynced suffix
	// just vanishes.
	TornNone TornMode = iota
	// TornShort: the first unsynced record was half-written — the tail holds
	// a truncated encoding (structural decode failure, ErrShortRecord).
	TornShort
	// TornFlip: the first unsynced record is full-length but a payload byte
	// was mangled in flight — structurally decodable, caught only by the
	// CRC trailer (ErrCorruptRecord).
	TornFlip
)

func (m TornMode) String() string {
	switch m {
	case TornShort:
		return "torn-short"
	case TornFlip:
		return "torn-flip"
	default:
		return "none"
	}
}

// Log is an in-memory write-ahead log stream. The RW node appends; shippers
// read ranges to feed replicas and page services. Appends assign dense LSNs.
// A retention window keeps memory bounded: records older than the minimum
// LSN any consumer still needs may be truncated.
//
// The log models an fsync barrier: Append leaves records volatile (buffered
// in the OS or device cache) until Sync marks everything appended so far
// durable. Group commit falls out naturally — one transaction's commit fsync
// drags every earlier append, including other transactions' in-flight
// operation records, across the barrier. Crash discards the suffix past the
// barrier (see Crash).
type Log struct {
	firstLSN LSN // LSN of records[0]
	records  []Record
	bytes    int64
	durable  LSN // highest LSN covered by an fsync barrier (0 = none)
}

// NewLog returns an empty log whose first record will get LSN 1.
func NewLog() *Log {
	return &Log{firstLSN: 1}
}

// Append assigns the next LSN to r, stores it, and returns the LSN. The
// record is volatile until the next Sync.
func (l *Log) Append(r Record) LSN {
	r.LSN = l.firstLSN + LSN(len(l.records))
	l.records = append(l.records, r)
	l.bytes += int64(r.Size())
	return r.LSN
}

// Sync marks everything appended so far durable (the fsync barrier). The
// caller pays the durability latency through its storage backend; Sync is
// the bookkeeping that moves the barrier.
func (l *Log) Sync() {
	l.durable = l.Head()
}

// DurableLSN returns the highest LSN the fsync barrier covers.
func (l *Log) DurableLSN() LSN { return l.durable }

// Head returns the LSN of the most recent record (0 if empty).
func (l *Log) Head() LSN {
	if len(l.records) == 0 {
		return l.firstLSN - 1
	}
	return l.firstLSN + LSN(len(l.records)) - 1
}

// Crash models power loss at this instant: every record past the fsync
// barrier is dropped from the log, and — when torn is not TornNone and an
// unsynced record existed — the encoding of the first dropped record comes
// back mangled per the mode, as the torn tail a recovery scan must detect
// and cut. It returns the torn-tail bytes (nil if none) and the number of
// records lost.
func (l *Log) Crash(torn TornMode) (tail []byte, dropped int) {
	head := l.Head()
	if l.durable >= head {
		return nil, 0
	}
	keep := int(l.durable - l.firstLSN + 1)
	if l.durable < l.firstLSN {
		keep = 0
	}
	lost := l.records[keep:]
	dropped = len(lost)
	if torn != TornNone && len(lost) > 0 {
		enc := lost[0].Encode(nil)
		switch torn {
		case TornShort:
			// Keep just over half the record: enough for the fixed header so
			// the decoder gets into the variable-length section before the
			// bytes run out.
			cut := recFixed + (len(enc)-recFixed)/2
			tail = enc[:cut]
		case TornFlip:
			// Mangle a payload byte — the last prior-image byte when the
			// record carries one (a reader that trusts the tail would then
			// undo with a value that never existed), else a fixed-header
			// byte inside Page.Num. Never a length prefix: the record still
			// parses structurally, only the checksum knows.
			if len(lost[0].Prior) > 0 {
				enc[len(enc)-recSum-1] ^= 0xff
			} else {
				enc[recFixed-2] ^= 0xff
			}
			tail = enc
		}
	}
	for i := range lost {
		l.bytes -= int64(lost[i].Size())
		lost[i] = Record{}
	}
	l.records = l.records[:keep]
	return tail, dropped
}

// Read returns records with LSN in (after, after+max]; max <= 0 means all
// available. The returned slice aliases internal storage and must not be
// mutated.
func (l *Log) Read(after LSN, max int) []Record {
	head := l.Head()
	if after >= head {
		return nil
	}
	start := after + 1
	if start < l.firstLSN {
		panic(fmt.Sprintf("storage: log read below retention: want LSN %d, first retained %d", start, l.firstLSN))
	}
	idx := int(start - l.firstLSN)
	end := len(l.records)
	if max > 0 && idx+max < end {
		end = idx + max
	}
	return l.records[idx:end]
}

// TruncateBefore drops records with LSN < lsn, reclaiming memory. It is a
// no-op if lsn is below the current first retained LSN.
func (l *Log) TruncateBefore(lsn LSN) {
	if lsn <= l.firstLSN {
		return
	}
	head := l.Head()
	if lsn > head+1 {
		lsn = head + 1
	}
	drop := int(lsn - l.firstLSN)
	for _, r := range l.records[:drop] {
		l.bytes -= int64(r.Size())
	}
	l.records = append([]Record(nil), l.records[drop:]...)
	l.firstLSN = lsn
}

// LogSnapshot is a point-in-time capture of a Log (warm-up memoization and
// crash recovery). The record entries are shared with the source log —
// records are immutable once appended, so aliasing is safe.
type LogSnapshot struct {
	firstLSN LSN
	records  []Record
	bytes    int64
	durable  LSN
}

// Snapshot captures the log's current state.
func (l *Log) Snapshot() LogSnapshot {
	return LogSnapshot{firstLSN: l.firstLSN, records: l.records[:len(l.records):len(l.records)], bytes: l.bytes, durable: l.durable}
}

// DurableSnapshot is Snapshot restricted to the durable prefix — what
// shared storage serves to a resyncing replica. Records past the fsync
// barrier exist only in the primary's volatile memory and must not leak
// into another node's recovery source.
func (l *Log) DurableSnapshot() LogSnapshot {
	snap := l.Snapshot()
	n := 0
	var bytes int64
	for i := range snap.records {
		if snap.records[i].LSN > snap.durable {
			break
		}
		bytes += int64(snap.records[i].Size())
		n++
	}
	snap.records = snap.records[:n:n]
	snap.bytes = bytes
	return snap
}

// Restore resets the log to a snapshot. The record slice is copied so that
// multiple logs restored from one snapshot append independently.
func (l *Log) Restore(snap LogSnapshot) {
	l.firstLSN = snap.firstLSN
	l.records = append([]Record(nil), snap.records...)
	l.bytes = snap.bytes
	l.durable = snap.durable
}

// Len returns the number of retained records.
func (l *Log) Len() int { return len(l.records) }

// Bytes returns the total encoded size of retained records.
func (l *Log) Bytes() int64 { return l.bytes }
