package storage

import (
	"bytes"
	"testing"
)

// FuzzDecodeRecord hammers the WAL decoder with arbitrary bytes: it must
// return an error or a record, never panic or over-read. The seed corpus
// includes well-formed records, a torn-short tail, and a bit-flipped tail —
// the exact shapes crash recovery feeds it.
func FuzzDecodeRecord(f *testing.F) {
	mk := func(r Record) []byte { return r.Encode(nil) }
	full := mk(Record{
		LSN: 12, Type: RecUpdate, Txn: 5, Flags: FlagPriorExisted,
		Table: 1, Page: PageID{Table: 1, Num: 3},
		Key: []byte("fuzz-key"), Image: []byte("after"), Prior: []byte("before"),
	})
	f.Add(full)
	f.Add(mk(Record{Type: RecCommit, Txn: 7}))
	f.Add(mk(Record{Type: RecCheckpoint, Image: EncodeCheckpointData(CheckpointData{
		StartLSN:   4,
		ActiveTxns: []CheckpointTxn{{ID: 2, FirstLSN: 4}},
		DirtyPages: []PageID{{Table: 1, Num: 0}},
	})}))
	// Torn-tail seeds straight from the crash model.
	{
		l := NewLog()
		l.Append(Record{Type: RecInsert, Key: []byte("k")})
		l.Sync()
		l.Append(Record{Type: RecUpdate, Txn: 3, Key: []byte("torn"), Image: []byte("image")})
		tail, _ := l.Crash(TornShort)
		f.Add(tail)
	}
	{
		l := NewLog()
		l.Append(Record{Type: RecInsert, Key: []byte("k")})
		l.Sync()
		l.Append(Record{Type: RecUpdate, Txn: 3, Key: []byte("torn"), Image: []byte("image")})
		tail, _ := l.Crash(TornFlip)
		f.Add(tail)
	}
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, recFixed+16))

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, n, err := DecodeRecord(data)
		if err != nil {
			if n != 0 {
				t.Fatalf("error path consumed %d bytes", n)
			}
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		// A successful decode must re-encode to the exact consumed bytes:
		// the checksum pins the whole record.
		re := rec.Encode(nil)
		if !bytes.Equal(re, data[:n]) {
			t.Fatalf("re-encode mismatch: %x vs %x", re, data[:n])
		}
		// The relaxed decoder must agree structurally wherever the strict
		// one accepts.
		if _, n2, err2 := DecodeRecordNoVerify(data); err2 != nil || n2 != n {
			t.Fatalf("NoVerify diverged: n=%d err=%v", n2, err2)
		}
	})
}

// FuzzDecodeCheckpointData does the same for the checkpoint payload codec.
func FuzzDecodeCheckpointData(f *testing.F) {
	f.Add(EncodeCheckpointData(CheckpointData{StartLSN: 1}))
	f.Add(EncodeCheckpointData(CheckpointData{
		StartLSN:   9,
		ActiveTxns: []CheckpointTxn{{ID: 1, FirstLSN: 9}, {ID: 4, FirstLSN: 12}},
		DirtyPages: []PageID{{Table: 2, Num: 7}},
	}))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 24))
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := DecodeCheckpointData(data)
		if err != nil {
			return
		}
		re := EncodeCheckpointData(d)
		if !bytes.Equal(re, data[:len(re)]) {
			t.Fatalf("re-encode mismatch")
		}
	})
}
