package cdb

import (
	"fmt"
	"time"

	"cloudybench/internal/core"
	"cloudybench/internal/netsim"
	"cloudybench/internal/node"
	"cloudybench/internal/pricing"
	"cloudybench/internal/sim"
)

// Tenant is one tenant's endpoint inside a multi-tenant deployment.
type Tenant struct {
	Index int
	Node  *node.Node
}

// TenantSet deploys a profile for n tenants under its tenancy model
// (paper §III-D):
//
//   - isolated (RDS, CDB1, CDB4): an instance per tenant — high performance
//     under contention, but resources cannot shift between tenants and
//     network/IOPS provisioning multiplies;
//   - pool (CDB2): tenants share an elastic pool of vCores, so idle
//     tenants' capacity flows to busy ones;
//   - branch (CDB3): copy-on-write branches share storage, but each
//     branch's compute is isolated at its provisioned size.
type TenantSet struct {
	Profile Profile
	S       *sim.Sim
	Tenants []*Tenant
	// Pool is the shared vCore pool (pool model only).
	Pool *sim.Resource

	nodes      []*node.Node
	storeQueue *sim.Queue
	dataset    core.Dataset
}

// DeployTenants builds an n-tenant deployment of the profile. Each tenant
// gets its own database (schema-per-tenant, as the paper's SaaS scenario
// allows) at the given scale factor.
func DeployTenants(s *sim.Sim, prof Profile, n int, opts Options) (*TenantSet, error) {
	opts = opts.withDefaults()
	ts := &TenantSet{Profile: prof, S: s, dataset: core.NewDataset(opts.SF, opts.Seed)}
	if !prof.LocalStorage {
		ts.storeQueue = sim.NewQueue(s, prof.DeviceIOPS)
	}
	if prof.Tenancy == TenancyPool {
		// The elastic pool holds n x the single-instance vCores (the paper
		// configures 12 vCores for 3 tenants).
		ts.Pool = sim.NewResource(s, int64(prof.VCores*float64(n)*node.MilliPerCore))
	}
	for i := 0; i < n; i++ {
		nd, err := ts.makeTenantNode(i, opts)
		if err != nil {
			return nil, err
		}
		ts.Tenants = append(ts.Tenants, &Tenant{Index: i, Node: nd})
		ts.nodes = append(ts.nodes, nd)
	}
	if opts.PreWarm {
		for _, nd := range ts.nodes {
			d := &Deployment{Profile: prof, S: s}
			d.warmPool(nd.Buf, nd)
		}
	}
	return ts, nil
}

// MustDeployTenants is DeployTenants that panics on error.
func MustDeployTenants(s *sim.Sim, prof Profile, n int, opts Options) *TenantSet {
	ts, err := DeployTenants(s, prof, n, opts)
	if err != nil {
		panic(err)
	}
	return ts
}

func (ts *TenantSet) makeTenantNode(i int, opts Options) (*node.Node, error) {
	prof := ts.Profile
	var backend node.StorageBackend
	if prof.LocalStorage {
		disk := node.NewLocalDisk(ts.S, prof.DeviceIOPS)
		disk.ReadLatency = prof.StorageLatency
		disk.WriteLatency = prof.StorageLatency
		disk.LogLatency = prof.LogAckLatency
		backend = disk
	} else {
		backend = &node.DisaggStore{
			Link:            netsim.NewLink(ts.S, prof.Fabric, prof.NetGbps),
			Store:           ts.storeQueue,
			PageServiceTime: prof.StorageLatency,
			LogAckLatency:   prof.LogAckLatency,
			RedoPushdown:    prof.RedoPushdown,
		}
	}
	cfg := node.Config{
		Name:        fmt.Sprintf("%s/tenant%d", prof.Kind, i),
		VCores:      prof.VCores,
		MemoryBytes: prof.MemoryBytes,
		OpCPU:       prof.OpCPU,
		TxnCPU:      prof.TxnCPU,
		Recovery:    prof.Recovery,
	}
	if prof.Tenancy == TenancyPool {
		cfg.SharedCPU = ts.Pool
	}
	nd := node.New(ts.S, cfg, backend)
	if err := ts.dataset.CreateTables(nd.DB); err != nil {
		return nil, err
	}
	return nd, nil
}

// Shutdown stops background processes.
func (ts *TenantSet) Shutdown() {
	for _, n := range ts.nodes {
		n.StopCheckpointer()
	}
}

// Package returns the total provisioned resources for the tenant set,
// matching paper Table VII's "Total Resources" column for three tenants:
//
//   - isolated: everything multiplies by tenant count (separate instances
//     triple network and IOPS) — except CDB4's IOPS, which belong to its
//     shared storage service;
//   - pool: vCores/memory/storage/IOPS scale with tenants inside one pool,
//     network is provisioned once;
//   - branch: compute and IOPS per branch, storage shared, network once.
func (ts *TenantSet) Package() pricing.Package {
	prof := ts.Profile
	n := float64(len(ts.Tenants))
	p := prof.PackageNode
	switch prof.Tenancy {
	case TenancyPool:
		// CDB2: 12 vCores, 36 GB, 189 GB, 54000 IOPS, one 10 Gbps fabric.
		return pricing.Package{
			VCores:    p.VCores * n,
			MemoryGB:  12 * n, // pool grants each tenant 12 GB on average
			StorageGB: p.StorageGB * n,
			IOPS:      18_000 * n,
			NetGbps:   p.NetGbps,
			Fabric:    p.Fabric,
		}
	case TenancyBranch:
		// CDB3: compute per branch, storage shared by copy-on-write.
		return pricing.Package{
			VCores:    p.VCores * n,
			MemoryGB:  p.MemoryGB * n,
			StorageGB: p.StorageGB,
			IOPS:      p.IOPS * n,
			NetGbps:   p.NetGbps,
			Fabric:    p.Fabric,
		}
	default:
		out := p.Scale(n)
		if prof.Kind == CDB4 {
			out.IOPS = p.IOPS // shared storage service
		}
		out.Fabric = p.Fabric
		return out
	}
}

// CostPerMinute returns the RUC cost per minute of the provisioned tenant
// set (the Cost column of Table VII).
func (ts *TenantSet) CostPerMinute() float64 {
	return pricing.PerMinuteBreakdown(ts.Package()).Total()
}

// Cost returns the RUC cost of holding the tenant set for d.
func (ts *TenantSet) Cost(d time.Duration) float64 {
	return pricing.Cost(ts.Package(), d)
}

// ActualCost returns the vendor-priced cost for d with minimum billing.
func (ts *TenantSet) ActualCost(d time.Duration) float64 {
	return ts.Profile.Actual.Cost(ts.Package(), d)
}
