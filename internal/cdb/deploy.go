package cdb

import (
	"fmt"
	"strings"
	"time"

	"cloudybench/internal/autoscale"
	"cloudybench/internal/cluster"
	"cloudybench/internal/core"
	"cloudybench/internal/engine"
	"cloudybench/internal/netsim"
	"cloudybench/internal/node"
	"cloudybench/internal/obs"
	"cloudybench/internal/pricing"
	"cloudybench/internal/replication"
	"cloudybench/internal/sim"
	"cloudybench/internal/storage"
)

// Options configures a deployment.
type Options struct {
	// SF is the CloudyBench scale factor (default 1).
	SF int
	// Seed drives data generation (default 42).
	Seed int64
	// Replicas is the number of RO nodes (default 1, matching the paper's
	// "one RW node and one RO node" throughput setup).
	Replicas int
	// BufferBytes overrides the profile's buffer size (Figure 8 sweep).
	BufferBytes int64
	// Serverless overrides the profile default: nil keeps it, a value
	// force-enables/disables the autoscaler (Figure 6 contrasts serverless
	// with fixed configurations).
	Serverless *bool
	// PreWarm fills buffer pools with base pages so experiments start at
	// steady-state hit ratios instead of measuring a cold ramp.
	PreWarm bool
	// NoDataset skips creating the CloudyBench sales tables, letting the
	// caller install its own schema (the Figure 9 baselines deploy
	// SysBench and TPC-C tables on the same SUT profile).
	NoDataset bool
	// ExtraSchema, if set, installs additional tables and secondary indexes
	// on every node after the dataset (suite schemas). It must run
	// identically on the RW and each replica: replicas re-derive index
	// contents from the replicated row stream, so catalogs must line up.
	ExtraSchema func(db *engine.DB) error
	// CadenceScale compresses the autoscaler's reaction cadences (tick,
	// down-hold, pause-after-idle, resume delay) by the given factor.
	// Experiments that shrink the paper's one-minute slots to seconds set
	// this to slot compression so scaling behaviour keeps its shape; 0 or
	// 1 leaves the profile cadences untouched.
	CadenceScale float64
	// Tracer, if non-nil, attaches the observability tracer to every node,
	// network link, replication stream, and the cluster's fail-over path.
	// Nil (the default) deploys with tracing compiled out of the hot path.
	Tracer *obs.Tracer
}

// Bool is a helper for Options.Serverless.
func Bool(v bool) *bool { return &v }

func (o Options) withDefaults() Options {
	if o.SF < 1 {
		o.SF = 1
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.Replicas < 0 {
		o.Replicas = 0
	}
	return o
}

// Deployment is a live SUT cluster inside a simulation.
type Deployment struct {
	Profile Profile
	Opts    Options
	S       *sim.Sim
	Dataset core.Dataset
	Cluster *cluster.Cluster
	Scaler  *autoscale.Autoscaler
	// Remote is the shared remote buffer pool (CDB4 only).
	Remote *storage.BufferPool
	// Net is the deployment's endpoint registry: "client", "ctrl", and every
	// node short name ("rw", "ro0", ...), with the replication links
	// registered on their node-to-node paths. Partition chaos events and the
	// reachability oracles route through it.
	Net *netsim.Net
	// Fence is the deployment-wide epoch-numbered write lease: every node's
	// commit path checks it, and fail-overs advance it before promoting.
	Fence *storage.Fence

	nodes      []*node.Node
	storeQueue *sim.Queue
	streams    []*replication.Stream
	links      []*netsim.Link
}

// Deploy instantiates a profile.
func Deploy(s *sim.Sim, prof Profile, opts Options) (*Deployment, error) {
	opts = opts.withDefaults()
	d := &Deployment{
		Profile: prof,
		Opts:    opts,
		S:       s,
		Dataset: core.NewDataset(opts.SF, opts.Seed),
		Net:     netsim.NewNet(),
	}
	d.Net.AddEndpoint("client")
	d.Net.AddEndpoint("ctrl")
	bufBytes := prof.MemoryBytes
	if opts.BufferBytes > 0 {
		bufBytes = opts.BufferBytes
	}
	if prof.RemoteBufBytes > 0 {
		d.Remote = storage.NewBufferPool(int(prof.RemoteBufBytes / storage.PageSize))
	}
	// The storage service (and its IOPS) is shared across the cluster's
	// compute nodes for disaggregated SUTs; RDS nodes get private volumes.
	if !prof.LocalStorage {
		d.storeQueue = sim.NewQueue(s, prof.DeviceIOPS)
	}

	serverless := prof.Autoscale != nil
	if opts.Serverless != nil {
		serverless = *opts.Serverless && prof.Autoscale != nil
	}

	makeNode := func(name string, checkpoint bool) (*node.Node, error) {
		backend := d.makeBackend(name)
		cfg := node.Config{
			Name:        fmt.Sprintf("%s/%s", prof.Kind, name),
			VCores:      prof.VCores,
			MemoryBytes: bufBytes,
			OpCPU:       prof.OpCPU,
			TxnCPU:      prof.TxnCPU,
			Recovery:    prof.Recovery,
			Trace:       opts.Tracer,
		}
		if serverless {
			// A serverless instance idles at its minimum allocation and
			// scales up only after the autoscaler reacts — the source of
			// the performance degradation the paper measures when
			// enabling serverless (§III-C).
			cfg.VCores = prof.Autoscale.MinVCores
			if prof.Autoscale.MemBytesPerCore > 0 {
				mem := int64(cfg.VCores * float64(prof.Autoscale.MemBytesPerCore))
				if mem < cfg.MemoryBytes {
					cfg.MemoryBytes = mem
				}
			}
		}
		if checkpoint {
			cfg.CheckpointInterval = prof.CheckpointEvery
		}
		n := node.New(s, cfg, backend)
		d.Net.AddEndpoint(name)
		if !opts.NoDataset {
			if err := d.Dataset.CreateTables(n.DB); err != nil {
				return nil, err
			}
		}
		if opts.ExtraSchema != nil {
			if err := opts.ExtraSchema(n.DB); err != nil {
				return nil, err
			}
		}
		// Crash recovery rebuilds the catalog on a fresh engine exactly as
		// it was built here; the setup already succeeded once, so a failure
		// on replay is a bug, not an input error.
		n.RebuildSchema = func(db *engine.DB) {
			if !opts.NoDataset {
				if err := d.Dataset.CreateTables(db); err != nil {
					panic("cdb: schema rebuild: " + err.Error())
				}
			}
			if opts.ExtraSchema != nil {
				if err := opts.ExtraSchema(db); err != nil {
					panic("cdb: schema rebuild: " + err.Error())
				}
			}
		}
		d.nodes = append(d.nodes, n)
		return n, nil
	}

	rw, err := makeNode("rw", true)
	if err != nil {
		return nil, err
	}
	var replicas []*node.Node
	for i := 0; i < opts.Replicas; i++ {
		ro, err := makeNode(fmt.Sprintf("ro%d", i), false)
		if err != nil {
			return nil, err
		}
		replicas = append(replicas, ro)
	}

	factory := func(target *node.Node) *replication.Stream {
		cfg := prof.Replication
		cfg.Name = fmt.Sprintf("%s->%s", prof.Kind, target.Name)
		cfg.Tracer = opts.Tracer
		if cfg.Link == nil {
			// Every replication path gets a real link — RDS's coupled
			// in-box path included (Local fabric, negligible latency) — so
			// partition chaos can sever any SUT's replication.
			cfg.Link = netsim.NewLink(s, prof.Fabric, prof.NetGbps)
			cfg.Link.SetTracer(opts.Tracer)
			d.links = append(d.links, cfg.Link)
			from := "rw"
			if d.Cluster != nil {
				from = shortName(d.Cluster.RW())
			}
			d.Net.Register(from, shortName(target), cfg.Link)
		}
		st := replication.NewStream(s, cfg, target)
		if d.Remote != nil {
			// Memory-disaggregated cache coherency: applying a change
			// invalidates the replica's local copy of the page; the fresh
			// version is fetched from the shared remote buffer on demand.
			buf := target.Buf
			st.OnApply = func(rec storage.Record) { buf.Invalidate(rec.Page) }
		}
		d.streams = append(d.streams, st)
		return st
	}
	d.Cluster = cluster.New(s, string(prof.Kind), prof.Failover, rw, replicas, factory)
	d.Cluster.SetTracer(opts.Tracer)

	// The write lease: every node's commit path checks the fence; the
	// initial RW holds the initial epoch, and fail-overs advance it. The
	// control plane's reachability oracle rides the "ctrl" network path.
	d.Fence = storage.NewFence()
	for _, n := range d.nodes {
		n.SetFence(d.Fence)
	}
	rw.GrantEpoch(d.Fence.Epoch())
	d.Cluster.SetFence(d.Fence)
	d.Cluster.SetReachable(func(n *node.Node) bool {
		sn := shortName(n)
		return d.Net.Reachable("ctrl", sn) && d.Net.Reachable(sn, "ctrl")
	})
	if opts.Tracer != nil {
		for _, l := range d.links {
			l.SetTracer(opts.Tracer)
		}
	}

	if serverless {
		cfg := *prof.Autoscale
		if opts.CadenceScale > 1 {
			cfg.Tick = time.Duration(float64(cfg.Tick) / opts.CadenceScale)
			cfg.DownHold = time.Duration(float64(cfg.DownHold) / opts.CadenceScale)
			cfg.DownEvery = time.Duration(float64(cfg.DownEvery) / opts.CadenceScale)
			cfg.PauseAfterIdle = time.Duration(float64(cfg.PauseAfterIdle) / opts.CadenceScale)
			cfg.ResumeDelay = time.Duration(float64(cfg.ResumeDelay) / opts.CadenceScale)
		}
		d.Scaler = autoscale.New(s, rw, cfg)
	}
	if opts.PreWarm {
		d.PreWarm()
	}
	return d, nil
}

// MustDeploy is Deploy that panics on error (experiment setup).
func MustDeploy(s *sim.Sim, prof Profile, opts Options) *Deployment {
	d, err := Deploy(s, prof, opts)
	if err != nil {
		panic(err)
	}
	return d
}

func (d *Deployment) makeBackend(name string) node.StorageBackend {
	prof := d.Profile
	if prof.LocalStorage {
		disk := node.NewLocalDisk(d.S, prof.DeviceIOPS)
		disk.ReadLatency = prof.StorageLatency
		disk.WriteLatency = prof.StorageLatency
		disk.LogLatency = prof.LogAckLatency
		return disk
	}
	store := &node.DisaggStore{
		Link:            netsim.NewLink(d.S, prof.Fabric, prof.NetGbps),
		Store:           d.storeQueue,
		PageServiceTime: prof.StorageLatency,
		LogAckLatency:   prof.LogAckLatency,
		RedoPushdown:    prof.RedoPushdown,
	}
	d.links = append(d.links, store.Link)
	if d.Remote != nil {
		rb := &node.RemoteBuffer{
			Remote:   d.Remote,
			RDMA:     netsim.NewLink(d.S, netsim.RDMA, prof.NetGbps),
			Fallback: store,
		}
		d.links = append(d.links, rb.RDMA)
		return rb
	}
	return store
}

// shortName strips the profile prefix from a node name ("rds/rw" -> "rw"),
// matching the deployment's netsim endpoint names.
func shortName(n *node.Node) string {
	name := n.Name
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	return name
}

// RW returns the current read-write node.
func (d *Deployment) RW() *node.Node { return d.Cluster.RW() }

// ReadNode returns a node for read traffic.
func (d *Deployment) ReadNode() *node.Node { return d.Cluster.ReadNode() }

// Nodes returns every compute node.
func (d *Deployment) Nodes() []*node.Node { return d.nodes }

// Streams returns the replication streams (one per replica).
func (d *Deployment) Streams() []*replication.Stream { return d.streams }

// Links returns every network link the deployment created (storage paths,
// RDMA fabrics, replication channels) — the chaos injector's link-degrade
// target set. RDS deployments, being local-storage, have none.
func (d *Deployment) Links() []*netsim.Link { return d.links }

// StartDetector launches the profile's partition failure detector (a no-op
// for profiles that don't configure one).
func (d *Deployment) StartDetector() {
	d.Cluster.StartDetector(d.Profile.Detector)
}

// ClientReachable reports whether client traffic currently reaches a node —
// the resilient client's reachability hook (core.Config.Reachable).
func (d *Deployment) ClientReachable(n *node.Node) bool {
	sn := shortName(n)
	return d.Net.Reachable("client", sn) && d.Net.Reachable(sn, "client")
}

// ReadCandidates returns every compute node — the resilient client's reroute
// pool (the client itself filters by state, breaker, and reachability).
func (d *Deployment) ReadCandidates() []*node.Node { return d.nodes }

// Shutdown stops all background processes so the simulation can drain. Any
// still-cut network path is healed first: senders blocked mid-partition must
// wake, and the failure detector must stop, before the drain check runs.
func (d *Deployment) Shutdown() {
	if d.Scaler != nil {
		d.Scaler.Stop()
	}
	d.Net.HealAll()
	d.Cluster.Shutdown()
}

// PreWarm fills each node's buffer pool (and the remote pool) with base
// pages, approximating the steady-state cache of a warmed-up service.
func (d *Deployment) PreWarm() {
	for _, n := range d.nodes {
		d.warmPool(n.Buf, n)
	}
	if d.Remote != nil {
		d.warmPool(d.Remote, d.nodes[0])
	}
}

func (d *Deployment) warmPool(buf *storage.BufferPool, n *node.Node) {
	capacity := buf.Capacity()
	if capacity <= 0 {
		return
	}
	admitted := 0
	for _, name := range []string{core.TableOrderline, core.TableOrders, core.TableCustomer} {
		tbl := n.DB.Table(name)
		if tbl == nil {
			continue
		}
		pages := tbl.Pages()
		for pg := uint64(0); pg < pages && admitted < capacity; pg++ {
			buf.Admit(storage.PageID{Table: tbl.ID, Num: pg})
			admitted++
		}
		if admitted >= capacity {
			return
		}
	}
}

// memGBPerCore returns the instance-memory-to-vCore ratio used to scale the
// memory cost of serverless allocations.
func (d *Deployment) memGBPerCore() float64 {
	if d.Profile.VCores == 0 {
		return 0
	}
	return d.Profile.PackageNode.MemoryGB / d.Profile.VCores
}

// RUCBreakdown itemizes the resource-unit cost over [from, to): CPU and
// memory follow the allocation series (so serverless scaling changes cost);
// storage scales with node count; IOPS and network are provisioned once.
func (d *Deployment) RUCBreakdown(from, to time.Duration) pricing.Breakdown {
	if to <= from {
		return pricing.Breakdown{}
	}
	hours := (to - from).Hours()
	var coreHours float64
	for _, n := range d.nodes {
		coreHours += n.Cores.Integral(from, to) / 3600
	}
	memGBHours := coreHours * d.memGBPerCore()
	p := d.Profile.PackageNode
	return pricing.Breakdown{
		CPU:     coreHours * pricing.CPUPerVCoreHour,
		Memory:  memGBHours * pricing.MemPerGBHour,
		Storage: p.StorageGB * float64(len(d.nodes)) * pricing.StoragePerGBHour * hours,
		IOPS:    p.IOPS / 100 * pricing.IOPSPer100Hour * hours,
		Network: pricing.HourlyBreakdown(pricing.Package{NetGbps: p.NetGbps, Fabric: p.Fabric}).Network * hours,
	}
}

// RUCCost returns the total resource-unit cost over [from, to).
func (d *Deployment) RUCCost(from, to time.Duration) float64 {
	return d.RUCBreakdown(from, to).Total()
}

// ActualCost returns the vendor-priced cost over [from, to), applying the
// vendor's minimum billing window to the duration (§III-G).
func (d *Deployment) ActualCost(from, to time.Duration) float64 {
	if to <= from {
		return 0
	}
	a := d.Profile.Actual
	billed := a.BillableDuration(to - from)
	scale := billed.Hours() / (to - from).Hours()
	var coreHours float64
	for _, n := range d.nodes {
		coreHours += n.Cores.Integral(from, to) / 3600
	}
	coreHours *= scale
	memGBHours := coreHours * d.memGBPerCore()
	p := d.Profile.PackageNode
	hours := billed.Hours()
	return coreHours*a.PerVCoreHour +
		memGBHours*a.PerGBMemHour +
		p.StorageGB*float64(len(d.nodes))*a.PerGBStorageHour*hours +
		p.IOPS/100*a.PerIOPS100Hour*hours +
		p.NetGbps*a.PerGbpsHour*hours
}

// ClusterPackage returns the provisioned package across compute nodes, as
// Table V totals it.
func (d *Deployment) ClusterPackage() pricing.Package {
	return pricing.ClusterPackage(d.Profile.PackageNode, len(d.nodes))
}
