// Package cdb assembles the five systems under test from the substrate
// packages: AWS RDS and the four anonymized cloud-native databases the
// paper evaluates. Each Profile collects the architecture's parameters with
// the paper statement they are calibrated from (Table IV configurations,
// §III-F lag behaviour, Table VI scaling cadences, Fig. 7 fail-over phases,
// Table V resource packages, §III-G pricing quirks).
//
// A Deployment instantiates a profile as a live cluster in a simulation:
// nodes, backends, replication streams, autoscaler, and fail-over wiring.
package cdb

import (
	"time"

	"cloudybench/internal/autoscale"
	"cloudybench/internal/cluster"
	"cloudybench/internal/netsim"
	"cloudybench/internal/node"
	"cloudybench/internal/pricing"
	"cloudybench/internal/replication"
)

// Kind identifies a SUT.
type Kind string

// The five systems under test.
const (
	RDS  Kind = "rds"  // coupled compute+storage, ARIES, fixed size
	CDB1 Kind = "cdb1" // storage disaggregation, redo pushdown, gradual scale-down
	CDB2 Kind = "cdb2" // split log/page services, elastic pool, tiny buffer
	CDB3 Kind = "cdb3" // compute-log-storage, parallel replay, pause/resume, branches
	CDB4 Kind = "cdb4" // memory disaggregation, remote buffer pool over RDMA
)

// Kinds lists all SUTs in the paper's reporting order.
var Kinds = []Kind{RDS, CDB1, CDB2, CDB3, CDB4}

// TenancyModel is the multi-tenant deployment style.
type TenancyModel string

// Tenancy models (paper §III-D).
const (
	TenancyIsolated TenancyModel = "isolated" // instance per tenant (RDS, CDB1, CDB4)
	TenancyPool     TenancyModel = "pool"     // shared elastic pool (CDB2)
	TenancyBranch   TenancyModel = "branch"   // git-style branches on shared storage (CDB3)
)

// Profile is one SUT's full parameterization.
type Profile struct {
	Kind        Kind
	DisplayName string
	Engine      string // underlying engine per Table IV

	// Compute (fixed-configuration values; serverless profiles scale
	// between Autoscale.MinVCores and MaxVCores).
	VCores      float64
	MemoryBytes int64 // buffer memory (Table IV "Buffer Size")

	// Service-cost calibration: engine CPU per row operation and per
	// transaction. Chosen so a 4-vCore node saturates in the paper's
	// Fig. 5 TPS range.
	OpCPU  time.Duration
	TxnCPU time.Duration

	// Storage path.
	Fabric  netsim.Fabric
	NetGbps float64
	// IOPS is the *provisioned* package value used for pricing (Table V);
	// DeviceIOPS is the simulated device/service capability, which bounds
	// throughput (a small buffer plus a slow page service is what caps
	// CDB2 in Fig. 5).
	IOPS            float64
	DeviceIOPS      float64
	StorageLatency  time.Duration // page-service time on miss
	LogAckLatency   time.Duration // commit durability beyond the wire
	RedoPushdown    bool          // storage materializes pages from log
	LocalStorage    bool          // RDS: pages on local NVMe, no network
	RemoteBufBytes  int64         // CDB4: shared remote buffer pool size
	CheckpointEvery time.Duration // ARIES checkpointing (0 = none)

	// Recovery prices the architecture's crash-recovery path (node layer):
	// full redo/undo for ARIES engines, analysis+undo for log-is-the-
	// database tiers whose pages are always current.
	Recovery node.RecoveryConfig

	// Replication (one stream per RO replica).
	Replication replication.Config

	// Fail-over.
	Failover cluster.FailoverConfig

	// Detector calibrates the partition failure detector: control-plane
	// heartbeats on virtual time with phi-style suspicion driving automated
	// lease-fenced promotion (or await-heal restart, per the architecture).
	Detector cluster.DetectorConfig

	// Autoscale is nil for fixed-size SUTs.
	Autoscale *autoscale.Config

	// Tenancy is the multi-tenant deployment model.
	Tenancy TenancyModel

	// PackageNode is the per-node resource package of Table V (IOPS and
	// network are cluster-wide; see pricing.ClusterPackage).
	PackageNode pricing.Package

	// Actual is the vendor's real pricing model (§III-G starred scores).
	Actual pricing.Actual
}

// ProfileFor returns the canonical profile of a SUT.
func ProfileFor(kind Kind) Profile {
	switch kind {
	case RDS:
		return rdsProfile()
	case CDB1:
		return cdb1Profile()
	case CDB2:
		return cdb2Profile()
	case CDB3:
		return cdb3Profile()
	case CDB4:
		return cdb4Profile()
	default:
		panic("cdb: unknown kind " + string(kind))
	}
}

// Profiles returns all five canonical profiles in reporting order.
func Profiles() []Profile {
	out := make([]Profile, 0, len(Kinds))
	for _, k := range Kinds {
		out = append(out, ProfileFor(k))
	}
	return out
}

// rdsProfile: PostgreSQL 15, 4 vCores / 16 GB / 150 GB NVMe, 10 Gbps
// TCP/IP, no serverless, 128 MB buffer (Table IV). Coupled storage with
// ARIES checkpointing; replica fed by sequential WAL streaming with small
// lag ("relatively small... because of its coupled compute and storage").
func rdsProfile() Profile {
	return Profile{
		Kind:        RDS,
		DisplayName: "AWS RDS",
		Engine:      "PostgreSQL 15",
		VCores:      4,
		MemoryBytes: 128 << 20,
		OpCPU:       70 * time.Microsecond,
		TxnCPU:      40 * time.Microsecond,
		Fabric:      netsim.Local,
		NetGbps:     10,
		IOPS:        1000,
		DeviceIOPS:  15_000,
		// Local NVMe: low latency but IOPS-limited; dirty flushing and
		// checkpoints share the channel.
		StorageLatency:  100 * time.Microsecond,
		LogAckLatency:   30 * time.Microsecond,
		LocalStorage:    true,
		CheckpointEvery: 30 * time.Second, // checkpoint_timeout=30s (§III-F)
		// Crash recovery: full ARIES at restart — analysis over the whole
		// durable log, redo of every record since the last fuzzy checkpoint
		// (faulting each touched page off local NVMe), undo of losers. The
		// paper's slowest recovery (Table VIII) is emergent from this.
		Recovery: node.RecoveryConfig{
			Base:              1500 * time.Millisecond,
			AnalysisPerRecord: 2 * time.Microsecond,
			RedoPerRecord:     40 * time.Microsecond,
			UndoPerRecord:     60 * time.Microsecond,
			RedoPageIO:        true,
		},
		Replication: replication.Config{
			BatchInterval: 4 * time.Millisecond,
			Lanes:         1,
			PerRecord:     20 * time.Microsecond,
		},
		Failover: cluster.FailoverConfig{
			// Table VIII: F 24s RW / 6s RO; R 18s/30s. ARIES redo+undo at
			// restart is the paper's explanation for the slowest recovery.
			DetectDelay:          2 * time.Second,
			RestartServiceTime:   22 * time.Second,
			RORestartServiceTime: 4 * time.Second,
			ClearBufferOnRestart: true,
			RecoveryRamp:         18 * time.Second,
		},
		// RDS has no promotable shared-storage replica: a partitioned primary
		// can only be waited out and restarted in place — the blunt recovery
		// that dominates its partition MTTR.
		Detector: cluster.DetectorConfig{
			Interval: time.Second, Suspicion: 3,
		},
		Tenancy: TenancyIsolated,
		PackageNode: pricing.Package{
			VCores: 4, MemoryGB: 16, StorageGB: 42, IOPS: 1000, NetGbps: 10,
			Fabric: netsim.TCP,
		},
		Actual: pricing.Actual{
			Vendor:       "aws-rds",
			PerVCoreHour: 0.40, PerGBMemHour: 0.02, PerGBStorageHour: 0.0012,
			PerIOPS100Hour: 0.0002, PerGbpsHour: 0.09,
			// "its pricing model charges for at least 10 minutes" (§III-G).
			MinBilling: 10 * time.Minute,
		},
	}
}

// cdb1Profile: Aurora-style storage disaggregation (1 vCore/2 GB – 4
// vCores/8 GB serverless, 128 MB buffer). Redo processing is pushed to the
// storage tier; six-way replication raises commit quorum latency and
// storage cost; scale-up is immediate but scale-down gradual (Table VI:
// 14 s up, 479 s down); replica lag ~177 ms from sequential batch replay.
func cdb1Profile() Profile {
	return Profile{
		Kind:           CDB1,
		DisplayName:    "CDB1",
		Engine:         "PostgreSQL 15",
		VCores:         4,
		MemoryBytes:    128 << 20,
		OpCPU:          70 * time.Microsecond,
		TxnCPU:         40 * time.Microsecond,
		Fabric:         netsim.TCP,
		NetGbps:        10,
		IOPS:           1000,
		DeviceIOPS:     10_000,
		StorageLatency: 500 * time.Microsecond,
		// Six-way quorum (4/6) across zones.
		LogAckLatency: 400 * time.Microsecond,
		RedoPushdown:  true,
		// Log-is-the-database: the storage tier materializes pages from the
		// log continuously, so crash recovery skips redo — analysis + loser
		// undo only (§II-C's short recovery claim, checked by the gauntlet).
		Recovery: node.RecoveryConfig{
			Base:              800 * time.Millisecond,
			AnalysisPerRecord: 2 * time.Microsecond,
			UndoPerRecord:     30 * time.Microsecond,
			LogIsDatabase:     true,
		},
		Replication: replication.Config{
			// Sequential replay shipped in coarse batches -> ~177 ms lag.
			BatchInterval: 320 * time.Millisecond,
			Lanes:         1,
			PerRecord:     60 * time.Microsecond,
		},
		Failover: cluster.FailoverConfig{
			// Table VIII: F 6s / R 18s RW, 0s RO (materialized pages in
			// the page server; asynchronous log replay).
			DetectDelay:          time.Second,
			RestartServiceTime:   5 * time.Second,
			RORestartServiceTime: 5 * time.Second,
			ClearBufferOnRestart: true,
			RecoveryRamp:         8 * time.Second,
			// Partition fail-over phases: the storage tier already holds
			// materialized pages, so switch-over is quick once the lease
			// advances.
			PreparePhase: time.Second,
			SwitchPhase:  2 * time.Second,
			RecoverPhase: 4 * time.Second,
		},
		// Quorum storage spans partitions: a reachable RO can be promoted
		// under a fresh lease epoch without waiting for the heal.
		Detector: cluster.DetectorConfig{
			Interval: 500 * time.Millisecond, Suspicion: 3,
			PromoteOnPartition: true,
		},
		Autoscale: &autoscale.Config{
			MinVCores: 1, MaxVCores: 4, Granularity: 0.25,
			MemBytesPerCore: 32 << 20, // buffer scales 32MB/core up to 128MB
			Tick:            4 * time.Second,
			Up:              autoscale.UpDouble,
			GradualDown:     true, DownStep: 0.25, DownHold: 20 * time.Second,
			// 12 quarter-core steps at 40 s apart: ~480 s from full size
			// to the floor, matching Table VI's 479 s scale-down.
			DownEvery: 40 * time.Second,
		},
		Tenancy: TenancyIsolated,
		PackageNode: pricing.Package{
			VCores: 4, MemoryGB: 32, StorageGB: 126, IOPS: 1000, NetGbps: 10,
			Fabric: netsim.TCP,
		},
		Actual: pricing.Actual{
			Vendor:       "cdb1",
			PerVCoreHour: 0.24, PerGBMemHour: 0.012, PerGBStorageHour: 0.0009,
			PerIOPS100Hour: 0.00015, PerGbpsHour: 0.08,
			MinBilling: time.Minute,
		},
	}
}

// cdb2Profile: HyperScale-style split of log service and page service
// (0.5–4 vCores serverless, 44 MB buffer). The two-hop replication path
// yields the highest lag (~1082 ms); the elastic pool shares vCores among
// tenants; on-demand scaling at ~30 s cadence; billed hourly.
func cdb2Profile() Profile {
	return Profile{
		Kind:           CDB2,
		DisplayName:    "CDB2",
		Engine:         "SQL Server 12",
		VCores:         4,
		MemoryBytes:    44 << 20,
		OpCPU:          75 * time.Microsecond,
		TxnCPU:         45 * time.Microsecond,
		Fabric:         netsim.TCP,
		NetGbps:        10,
		IOPS:           327_680, // Table V: provisioned IOPS dwarf everyone (327x RDS cost)
		DeviceIOPS:     9_000,
		StorageLatency: 550 * time.Microsecond,
		LogAckLatency:  250 * time.Microsecond,
		RedoPushdown:   true,
		// Split log/page services: recovery is analysis + undo against the
		// always-current page service (no redo window).
		Recovery: node.RecoveryConfig{
			Base:              1000 * time.Millisecond,
			AnalysisPerRecord: 2 * time.Microsecond,
			UndoPerRecord:     30 * time.Microsecond,
			LogIsDatabase:     true,
		},
		Replication: replication.Config{
			// Log service -> page service -> replica: longest path,
			// sequential replay, ~1082 ms.
			BatchInterval: 800 * time.Millisecond,
			ExtraHops:     []time.Duration{400 * time.Millisecond},
			Lanes:         1,
			PerRecord:     80 * time.Microsecond,
		},
		Failover: cluster.FailoverConfig{
			// Table VIII: F 6s/6s, R 36s/18s — recovery route crosses the
			// separated log and page stores.
			DetectDelay:          time.Second,
			RestartServiceTime:   5 * time.Second,
			RORestartServiceTime: 5 * time.Second,
			ClearBufferOnRestart: true,
			// Recovery crosses the separated log and page stores, the
			// longest catch-up route (Table VIII: highest R).
			RecoveryRamp: 24 * time.Second,
			// Partition fail-over crosses the split log and page services
			// twice (collect LSNs, then replay): the slowest promote path.
			PreparePhase: 2 * time.Second,
			SwitchPhase:  3 * time.Second,
			RecoverPhase: 6 * time.Second,
		},
		// The pool's shared control plane heartbeats lazily and demands more
		// missed beats before acting — tenants share the detector.
		Detector: cluster.DetectorConfig{
			Interval: time.Second, Suspicion: 4,
			PromoteOnPartition: true,
		},
		Autoscale: &autoscale.Config{
			MinVCores: 0.5, MaxVCores: 4, Granularity: 0.5,
			MemBytesPerCore: 11 << 20,
			Tick:            30 * time.Second,
			Up:              autoscale.UpToDemand,
		},
		Tenancy: TenancyPool,
		PackageNode: pricing.Package{
			VCores: 4, MemoryGB: 20, StorageGB: 63, IOPS: 327_680, NetGbps: 10,
			Fabric: netsim.TCP,
		},
		Actual: pricing.Actual{
			Vendor:       "cdb2",
			PerVCoreHour: 0.42, PerGBMemHour: 0.02, PerGBStorageHour: 0.001,
			PerIOPS100Hour: 0.00012, PerGbpsHour: 0.08,
			// "the elastic pool is charged at least one hour" (§III-G).
			MinBilling: time.Hour,
		},
	}
}

// cdb3Profile: Neon-style compute/log/storage split on PostgreSQL
// (0.25–4 CU serverless, 128 MB buffer + local file cache). Parallel log
// replay gives ~14 ms lag; CU scaling at ~60 s cadence with pause/resume;
// git-style branch tenancy; startup pricing ~3x cheaper per vCore.
func cdb3Profile() Profile {
	return Profile{
		Kind:        CDB3,
		DisplayName: "CDB3",
		Engine:      "PostgreSQL 15",
		VCores:      4,
		MemoryBytes: 128 << 20,
		OpCPU:       65 * time.Microsecond,
		TxnCPU:      40 * time.Microsecond,
		Fabric:      netsim.TCP,
		NetGbps:     10,
		IOPS:        1000,
		DeviceIOPS:  12_000,
		// Local file cache + page servers: cheaper miss path than CDB1.
		StorageLatency: 300 * time.Microsecond,
		LogAckLatency:  200 * time.Microsecond, // safekeeper quorum (3-way)
		RedoPushdown:   true,
		// Parallel log replay in the storage tier keeps pages current;
		// restart pays analysis + undo only.
		Recovery: node.RecoveryConfig{
			Base:              600 * time.Millisecond,
			AnalysisPerRecord: time.Microsecond,
			UndoPerRecord:     20 * time.Microsecond,
			LogIsDatabase:     true,
		},
		Replication: replication.Config{
			// Parallel replay across page-server shards: ~14 ms.
			BatchInterval: 10 * time.Millisecond,
			Lanes:         8,
			PerRecord:     50 * time.Microsecond,
		},
		Failover: cluster.FailoverConfig{
			// Table VIII: F 12s/6s, R 30s/6s — Kubernetes reschedules the
			// compute pod, then pages come from the page server.
			DetectDelay:          time.Second,
			RestartServiceTime:   11 * time.Second,
			RORestartServiceTime: 5 * time.Second,
			ClearBufferOnRestart: true,
			RecoveryRamp:         14 * time.Second,
			// Partition fail-over reschedules compute against the safekeeper
			// quorum; parallel replay keeps the recover phase short.
			PreparePhase: time.Second,
			SwitchPhase:  2 * time.Second,
			RecoverPhase: 3 * time.Second,
		},
		// Safekeeper quorum survives the minority side: promote quickly.
		Detector: cluster.DetectorConfig{
			Interval: 500 * time.Millisecond, Suspicion: 3,
			PromoteOnPartition: true,
		},
		Autoscale: &autoscale.Config{
			MinVCores: 0.25, MaxVCores: 4, Granularity: 0.25,
			MemBytesPerCore: 32 << 20, // 1 CU = 1 vCore + 2 GB (buffer share)
			// The scaler evaluates every 15 s but convergence to a new
			// level takes several ticks — matching Table VI's ~60 s
			// observed scale times.
			Tick:           15 * time.Second,
			Up:             autoscale.UpToDemand,
			DownThreshold:  0.6,
			PauseAfterIdle: 60 * time.Second,
			ResumeDelay:    800 * time.Millisecond,
		},
		Tenancy: TenancyBranch,
		PackageNode: pricing.Package{
			VCores: 4, MemoryGB: 16, StorageGB: 63, IOPS: 1000, NetGbps: 10,
			Fabric: netsim.TCP,
		},
		Actual: pricing.Actual{
			Vendor: "cdb3",
			// "$0.16 per vCore compared with $0.42 per vCore by CDB2".
			PerVCoreHour: 0.16, PerGBMemHour: 0.008, PerGBStorageHour: 0.0005,
			PerIOPS100Hour: 0.0001, PerGbpsHour: 0.05,
			MinBilling: 0, // per-second billing
		},
	}
}

// cdb4Profile: memory disaggregation (MySQL 8, 4 vCores, 16 GB local +
// 24 GB remote RAM over 10 Gbps RDMA, 10 GB local buffer, fixed size).
// Remote buffer misses cost ~an RDMA round trip; replication lag ~1.5 ms;
// fastest fail-over via RO promotion (Fig. 7 phases).
func cdb4Profile() Profile {
	return Profile{
		Kind:           CDB4,
		DisplayName:    "CDB4",
		Engine:         "MySQL 8",
		VCores:         4,
		MemoryBytes:    10 << 30,
		OpCPU:          60 * time.Microsecond,
		TxnCPU:         35 * time.Microsecond,
		Fabric:         netsim.RDMA,
		NetGbps:        10,
		IOPS:           84_000,
		DeviceIOPS:     40_000,
		StorageLatency: 450 * time.Microsecond,
		LogAckLatency:  60 * time.Microsecond, // RDMA log shipping
		RedoPushdown:   true,
		RemoteBufBytes: 24 << 30,
		// RW crashes fail over (Figure 7) rather than recover in place;
		// this config prices the old RW's rejoin and RO resyncs: remote
		// memory keeps pages warm, so analysis + undo only.
		Recovery: node.RecoveryConfig{
			Base:              400 * time.Millisecond,
			AnalysisPerRecord: time.Microsecond,
			UndoPerRecord:     20 * time.Microsecond,
			LogIsDatabase:     true,
		},
		Replication: replication.Config{
			// On-demand replay against the shared remote buffer: ~1.5 ms.
			BatchInterval: time.Millisecond,
			Lanes:         8,
			PerRecord:     2 * time.Microsecond,
		},
		Failover: cluster.FailoverConfig{
			// Fig. 7: prepare 1s, switch-over 2s, recovering 3s; detect via
			// heartbeat ~0.5s. Table VIII: F 3s/2s, R 3s/4s.
			DetectDelay:          500 * time.Millisecond,
			PromoteOnRWFailure:   true,
			PreparePhase:         time.Second,
			SwitchPhase:          2 * time.Second,
			RecoverPhase:         3 * time.Second,
			RestartServiceTime:   2 * time.Second,
			RORestartServiceTime: 1500 * time.Millisecond,
			// The remote buffer pool survives node restarts, so caches
			// stay warm — the paper credits it for the fast recovery.
			ClearBufferOnRestart: true,
		},
		// Heartbeats ride the RDMA fabric: the tightest detector and the
		// fastest lease-fenced promotion of the five SUTs.
		Detector: cluster.DetectorConfig{
			Interval: 250 * time.Millisecond, Suspicion: 3,
			PromoteOnPartition: true,
		},
		Tenancy: TenancyIsolated,
		PackageNode: pricing.Package{
			VCores: 4, MemoryGB: 40, StorageGB: 63, IOPS: 84_000, NetGbps: 10,
			Fabric: netsim.RDMA,
		},
		Actual: pricing.Actual{
			Vendor:       "cdb4",
			PerVCoreHour: 0.30, PerGBMemHour: 0.015, PerGBStorageHour: 0.0009,
			PerIOPS100Hour: 0.00013, PerGbpsHour: 0.20,
			MinBilling: time.Minute,
		},
	}
}
