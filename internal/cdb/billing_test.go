package cdb

import (
	"testing"
	"time"
)

// TestProfilesCarryBillingQuirks pins the §III-G billing granularities to
// the deployed profiles, so the quirk can't be lost in a profile edit while
// the pricing-level tests keep passing on literals.
func TestProfilesCarryBillingQuirks(t *testing.T) {
	cases := []struct {
		kind Kind
		min  time.Duration
	}{
		{RDS, 10 * time.Minute}, // "charges for at least 10 minutes"
		{CDB2, time.Hour},       // "the elastic pool is charged at least one hour"
		{CDB3, 0},               // per-second billing
	}
	for _, c := range cases {
		if got := ProfileFor(c.kind).Actual.MinBilling; got != c.min {
			t.Errorf("%s MinBilling = %v, want %v", c.kind, got, c.min)
		}
	}
	// The cheap-vCore ratio: "$0.16 per vCore compared with $0.42 per vCore".
	r := ProfileFor(CDB2).Actual.PerVCoreHour / ProfileFor(CDB3).Actual.PerVCoreHour
	if r < 2.5 {
		t.Errorf("CDB2/CDB3 vCore rate ratio = %v, want ~2.6x", r)
	}
}
