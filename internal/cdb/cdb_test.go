package cdb

import (
	"math"
	"testing"
	"time"

	"cloudybench/internal/core"
	"cloudybench/internal/engine"
	"cloudybench/internal/node"
	"cloudybench/internal/pricing"
	"cloudybench/internal/sim"
	"cloudybench/internal/storage"
)

var epoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func TestProfilesAreComplete(t *testing.T) {
	profs := Profiles()
	if len(profs) != 5 {
		t.Fatalf("%d profiles", len(profs))
	}
	for _, p := range profs {
		if p.DisplayName == "" || p.Engine == "" || p.VCores == 0 ||
			p.MemoryBytes == 0 || p.OpCPU == 0 || p.PackageNode.VCores == 0 {
			t.Errorf("%s: incomplete profile %+v", p.Kind, p)
		}
		if p.Actual.PerVCoreHour == 0 {
			t.Errorf("%s: missing actual pricing", p.Kind)
		}
	}
	// Architecture sanity per paper Table IV and §III.
	if !ProfileFor(RDS).LocalStorage || ProfileFor(CDB1).LocalStorage {
		t.Fatal("storage coupling flags")
	}
	if ProfileFor(CDB4).RemoteBufBytes == 0 {
		t.Fatal("CDB4 must have a remote buffer")
	}
	if ProfileFor(RDS).Autoscale != nil || ProfileFor(CDB4).Autoscale != nil {
		t.Fatal("RDS/CDB4 are fixed-size")
	}
	if ProfileFor(CDB3).Autoscale.PauseAfterIdle == 0 {
		t.Fatal("CDB3 must pause-and-resume")
	}
	if !ProfileFor(CDB4).Failover.PromoteOnRWFailure {
		t.Fatal("CDB4 must promote on RW failure")
	}
	if ProfileFor(CDB2).Tenancy != TenancyPool || ProfileFor(CDB3).Tenancy != TenancyBranch {
		t.Fatal("tenancy models")
	}
	// Replay parallelism: CDB3 parallel, CDB1/CDB2 sequential (§III-F).
	if ProfileFor(CDB3).Replication.Lanes <= 1 || ProfileFor(CDB1).Replication.Lanes != 1 {
		t.Fatal("replay lanes")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown kind did not panic")
		}
	}()
	ProfileFor("nope")
}

func TestTableVPackageTotalsPerMinute(t *testing.T) {
	// Paper Table V "Resource" column (1 RW + 1 RO cluster, $/minute).
	want := map[Kind]float64{
		RDS: 0.0437, CDB1: 0.0512, CDB2: 0.0538, CDB3: 0.0443, CDB4: 0.0797,
	}
	for kind, expect := range want {
		p := ProfileFor(kind)
		got := pricing.PerMinuteBreakdown(pricing.ClusterPackage(p.PackageNode, 2)).Total()
		if math.Abs(got-expect) > 0.002 {
			t.Errorf("%s cluster cost/min = %.4f, want ~%.4f", kind, got, expect)
		}
	}
}

func deployAndRun(t *testing.T, kind Kind, opts Options, dur time.Duration, conc int, mix core.Mix) (*core.Collector, *Deployment) {
	t.Helper()
	s := sim.New(epoch)
	d := MustDeploy(s, ProfileFor(kind), opts)
	col := core.NewCollector()
	r := core.NewRunner(s, core.Config{
		Name: string(kind), Seed: 7, Mix: mix,
		Write:     d.RW,
		Read:      d.ReadNode,
		Collector: col,
	})
	s.Go("ctl", func(p *sim.Proc) {
		r.SetConcurrency(conc)
		p.Sleep(dur)
		r.Stop()
		r.Wait(p)
		d.Shutdown()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	return col, d
}

func TestDeployAllKindsRunWorkload(t *testing.T) {
	for _, kind := range Kinds {
		col, d := deployAndRun(t, kind, Options{Replicas: 1, PreWarm: true}, time.Second, 8, core.MixReadWrite)
		if col.Commits() < 100 {
			t.Errorf("%s: commits = %d", kind, col.Commits())
		}
		if col.Errors() != 0 {
			t.Errorf("%s: errors = %d", kind, col.Errors())
		}
		if len(d.Nodes()) != 2 {
			t.Errorf("%s: %d nodes", kind, len(d.Nodes()))
		}
	}
}

func TestReplicationKeepsReplicaFresh(t *testing.T) {
	// After a write-heavy run plus drain, the replica's orderline table
	// must converge to the primary's.
	s := sim.New(epoch)
	d := MustDeploy(s, ProfileFor(CDB3), Options{Replicas: 1})
	col := core.NewCollector()
	r := core.NewRunner(s, core.Config{
		Name: "w", Seed: 7, Mix: core.Mix{T1: 100},
		Write: d.RW, Read: d.ReadNode, Collector: col,
	})
	s.Go("ctl", func(p *sim.Proc) {
		r.SetConcurrency(4)
		p.Sleep(time.Second)
		r.Stop()
		r.Wait(p)
		p.Sleep(5 * time.Second) // drain replication
		d.Shutdown()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	rwMax := d.RW().DB.Table(core.TableOrderline).MaxID()
	roMax := d.Cluster.Replica(0).Node.DB.Table(core.TableOrderline).MaxID()
	if rwMax != roMax {
		t.Fatalf("replica max id %d != primary %d", roMax, rwMax)
	}
}

func TestCDB4RemoteBufferInvalidation(t *testing.T) {
	s := sim.New(epoch)
	d := MustDeploy(s, ProfileFor(CDB4), Options{Replicas: 1, PreWarm: true})
	ro := d.Cluster.Replica(0).Node
	s.Go("ctl", func(p *sim.Proc) {
		// Warm the replica's local copy of order 5's page.
		ro.Read(p, core.TableOrders, engine.IntKey(5))
		pg := pageOfOrder(ro, 5)
		if !ro.Buf.Contains(pg) {
			t.Error("page not cached on replica after read")
		}
		// Update order 5 on the primary; replication should invalidate the
		// replica's cached page.
		rw := d.RW()
		tx, _ := rw.Begin(p)
		tbl := rw.DB.Table(core.TableOrders)
		row, _ := tx.Get(tbl, engine.IntKey(5))
		upd := row.Clone()
		upd[4] = engine.Str("PAID")
		tx.Update(tbl, engine.IntKey(5), upd)
		tx.Commit()
		p.Sleep(time.Second)
		if ro.Buf.Contains(pg) {
			t.Error("replica page not invalidated after primary update")
		}
		d.Shutdown()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestBufferSizeOverrideChangesHitRatio(t *testing.T) {
	run := func(buf int64) float64 {
		col, d := deployAndRun(t, RDS, Options{Replicas: 0, BufferBytes: buf, PreWarm: true},
			2*time.Second, 8, core.MixReadWrite)
		_ = col
		return d.RW().Buf.HitRatio()
	}
	small := run(16 << 20)
	big := run(1 << 30)
	if big <= small {
		t.Fatalf("hit ratio small=%.3f big=%.3f", small, big)
	}
}

func TestServerlessOverride(t *testing.T) {
	s := sim.New(epoch)
	d := MustDeploy(s, ProfileFor(CDB1), Options{Serverless: Bool(false)})
	if d.Scaler != nil {
		t.Fatal("serverless disabled but scaler exists")
	}
	d2 := MustDeploy(s, ProfileFor(CDB1), Options{})
	if d2.Scaler == nil {
		t.Fatal("CDB1 default should be serverless")
	}
	d.Shutdown()
	d2.Shutdown()
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRUCCostTracksAllocation(t *testing.T) {
	s := sim.New(epoch)
	d := MustDeploy(s, ProfileFor(RDS), Options{Replicas: 1})
	s.Go("idle", func(p *sim.Proc) {
		p.Sleep(time.Minute)
		d.Shutdown()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	got := d.RUCCost(0, time.Minute)
	// Fixed allocation for one minute = Table V per-minute cluster cost.
	want := pricing.PerMinuteBreakdown(d.ClusterPackage()).Total()
	if math.Abs(got-want) > 0.001 {
		t.Fatalf("1-minute RUC cost = %.5f, want %.5f", got, want)
	}
	// Actual cost applies the 10-minute minimum: ~10x the per-minute rate.
	actual := d.ActualCost(0, time.Minute)
	if actual < got*3 {
		t.Fatalf("actual cost %.5f should exceed RUC %.5f via 10-min minimum", actual, got)
	}
}

func TestTenantSetModels(t *testing.T) {
	s := sim.New(epoch)
	for _, kind := range Kinds {
		prof := ProfileFor(kind)
		ts := MustDeployTenants(s, prof, 3, Options{})
		if len(ts.Tenants) != 3 {
			t.Fatalf("%s: %d tenants", kind, len(ts.Tenants))
		}
		switch prof.Tenancy {
		case TenancyPool:
			if ts.Pool == nil || ts.Pool.Capacity() != 12*node.MilliPerCore {
				t.Errorf("%s: pool capacity wrong", kind)
			}
		default:
			if ts.Pool != nil {
				t.Errorf("%s: unexpected pool", kind)
			}
		}
		ts.Shutdown()
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestTenantPackagesMatchTableVII(t *testing.T) {
	// Paper Table VII "Total Resources" for 3 tenants and resulting cost.
	cases := []struct {
		kind              Kind
		vcores, mem, stor float64
		iops, net         float64
		costPerMin        float64
	}{
		{CDB2, 12, 36, 189, 54_000, 10, 0.06},
		{CDB3, 12, 48, 63, 3_000, 10, 0.058},
		{RDS, 12, 48, 126, 3_000, 30, 0.085},
		{CDB1, 12, 96, 378, 3_000, 30, 0.096},
		{CDB4, 12, 120, 189, 84_000, 30, 0.176},
	}
	s := sim.New(epoch)
	for _, c := range cases {
		ts := MustDeployTenants(s, ProfileFor(c.kind), 3, Options{})
		p := ts.Package()
		if p.VCores != c.vcores || p.MemoryGB != c.mem || p.StorageGB != c.stor ||
			p.IOPS != c.iops || p.NetGbps != c.net {
			t.Errorf("%s package = %+v, want %+v", c.kind, p, c)
		}
		if got := ts.CostPerMinute(); math.Abs(got-c.costPerMin) > 0.01 {
			t.Errorf("%s cost/min = %.4f, want ~%.3f", c.kind, got, c.costPerMin)
		}
		ts.Shutdown()
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestElasticPoolSharesCapacity(t *testing.T) {
	// One busy tenant in a pool should reach far beyond its fair share
	// when the others are idle.
	s := sim.New(epoch)
	ts := MustDeployTenants(s, ProfileFor(CDB2), 3, Options{PreWarm: true})
	col := core.NewCollector()
	r := core.NewRunner(s, core.Config{
		Name: "t0", Seed: 7, Mix: core.MixReadOnly,
		Write:     func() *node.Node { return ts.Tenants[0].Node },
		Read:      func() *node.Node { return ts.Tenants[0].Node },
		Collector: col,
	})
	s.Go("ctl", func(p *sim.Proc) {
		r.SetConcurrency(64)
		p.Sleep(2 * time.Second)
		r.Stop()
		r.Wait(p)
		ts.Shutdown()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// Peak pool usage must exceed the 4-core fair share.
	if peak := ts.Pool.Peak(); peak <= 4*node.MilliPerCore {
		t.Fatalf("pool peak = %d millicores, want > 4000 (sharing)", peak)
	}
}

func pageOfOrder(n *node.Node, id int64) storage.PageID {
	return n.DB.Table(core.TableOrders).PageOfBase(id)
}
