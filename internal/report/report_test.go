package report

import (
	"strings"
	"testing"
	"time"
)

func TestTableRendering(t *testing.T) {
	tbl := NewTable("TABLE V", "System", "TPS", "Cost")
	tbl.AddRow("AWS RDS", "22092", "$0.0437")
	tbl.AddRow("CDB4", "36995") // short row padded
	out := tbl.String()
	if !strings.Contains(out, "TABLE V") || !strings.Contains(out, "AWS RDS") {
		t.Fatalf("render missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("line count = %d:\n%s", len(lines), out)
	}
	// Columns aligned: header and row share the column start offset.
	if strings.Index(lines[1], "TPS") != strings.Index(lines[3], "22092") {
		t.Fatalf("columns misaligned:\n%s", out)
	}
}

func TestFormatters(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		1234567: "1234567",
		42.25:   "42.2",
		1.5:     "1.500",
		0.0001:  "0.00010",
	}
	for in, want := range cases {
		if got := F(in); got != want {
			t.Errorf("F(%v) = %q, want %q", in, got, want)
		}
	}
	if Money(0.0437) != "$0.0437" {
		t.Errorf("Money: %q", Money(0.0437))
	}
	if Money(0.000025) != "$0.000025" {
		t.Errorf("Money small: %q", Money(0.000025))
	}
	durCases := map[time.Duration]string{
		0:                       "0",
		1500 * time.Microsecond: "1.5ms",
		177 * time.Millisecond:  "177.0ms",
		3500 * time.Millisecond: "3.5s",
		24 * time.Second:        "24s",
		900 * time.Microsecond:  "0.90ms",
	}
	for in, want := range durCases {
		if got := Dur(in); got != want {
			t.Errorf("Dur(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestSeriesAndBars(t *testing.T) {
	s := Series("cloudybench", []float64{0, 1, 2, 3, 4}, 4)
	if !strings.Contains(s, "cloudybench") || !strings.Contains(s, "max=4") {
		t.Fatalf("series: %q", s)
	}
	// Zero max auto-scales.
	s2 := Series("x", []float64{2, 4}, 0)
	if !strings.Contains(s2, "max=4") {
		t.Fatalf("auto max: %q", s2)
	}
	bars := BarGroup("Fig", []string{"rds", "cdb4"}, []float64{10, 20}, 10)
	if !strings.Contains(bars, "##########") {
		t.Fatalf("bars: %q", bars)
	}
	if strings.Count(bars, "\n") != 3 {
		t.Fatalf("bar line count: %q", bars)
	}
}
