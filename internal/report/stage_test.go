package report

import (
	"testing"
	"time"

	"cloudybench/internal/obs"
)

// stageFixture builds a deterministic aggregation covering foreground
// stages with shares, background activities without, and mixed outcomes.
func stageFixture() *obs.StageAgg {
	a := obs.NewStageAgg("cdb1")
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }

	for i := 1; i <= 20; i++ {
		a.AddSpan("T1-NewOrderline", obs.KindCPU, ms(i))
		a.AddSpan("T1-NewOrderline", obs.KindWALAppend, ms(1))
	}
	for i := 1; i <= 5; i++ {
		a.AddSpan("T2-OrderPayment", obs.KindLockWait, ms(10*i))
		a.AddSpan("T2-OrderPayment", obs.KindPageRead, ms(2))
	}
	a.AddSpan("checkpoint", obs.KindCheckpointStall, ms(120))
	a.AddSpan("replication", obs.KindStorageReplay, ms(3))
	a.AddSpan("replication", obs.KindStorageReplay, ms(5))

	// End-to-end transactions feeding the share denominators and TxnSummary.
	feed := obs.NewTracer("cdb1", nil)
	k := new(int)
	for i := 0; i < 20; i++ {
		feed.StartTxn(k, "T1-NewOrderline", 0)
		feed.FinishTxn(k, "commit", ms(20))
	}
	for i := 0; i < 4; i++ {
		feed.StartTxn(k, "T2-OrderPayment", 0)
		feed.FinishTxn(k, "commit", ms(60))
	}
	feed.StartTxn(k, "T2-OrderPayment", 0)
	feed.FinishTxn(k, "error", ms(100))
	a.Merge(feed.Agg())
	return a
}

func TestGoldenStageBreakdown(t *testing.T) {
	golden(t, "stage", StageBreakdown(stageFixture()))
}

func TestGoldenTxnSummary(t *testing.T) {
	golden(t, "txns", TxnSummary(stageFixture()))
}

func TestStageBreakdownShares(t *testing.T) {
	out := StageBreakdown(stageFixture())
	// Background activities render "-" in the share column; foreground
	// stages render a percentage.
	for _, want := range []string{"checkpoint-stall", "storage-replay", "%"} {
		if !containsLine(out, want) {
			t.Fatalf("breakdown missing %q:\n%s", want, out)
		}
	}
}

func containsLine(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
