package report

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

// golden compares rendered output against testdata/<name>.golden, rewriting
// the file when -update is set. Byte-exact comparison: report output feeds
// EXPERIMENTS.md verbatim, so even a drifted space is a real diff.
func golden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("%s drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestGoldenTable(t *testing.T) {
	tbl := NewTable("TABLE V: P-SCORE", "System", "TPS", "P99", "Cost/min", "P-Score")
	tbl.AddRow("rds", "22092", "3.1ms", Money(0.0437), F(505542.9))
	tbl.AddRow("cdb1", "30567", "2.4ms", Money(0.0521), F(586699.4))
	tbl.AddRow("cdb4", "36995", "1.9ms", Money(0.0389), F(951028.3))
	tbl.AddRow("cdb3", "28941") // short row exercises padding
	golden(t, "table", tbl.String())
}

func TestGoldenSeries(t *testing.T) {
	out := Series("tps", []float64{0, 120, 480, 950, 1800, 2400, 2390, 2410}, 0) + "\n" +
		Series("cpu%", []float64{5, 20, 45, 60, 88, 97, 96, 95}, 100) + "\n"
	golden(t, "series", out)
}

func TestGoldenBars(t *testing.T) {
	out := BarGroup("Figure 5 (SF=10, RW, 128 conn)",
		[]string{"rds", "cdb1", "cdb2", "cdb3", "cdb4"},
		[]float64{22092, 30567, 19242, 28941, 36995}, 30)
	golden(t, "bars", out)
}

func TestGoldenFormatters(t *testing.T) {
	// One file pinning every formatter branch, so a precision tweak shows
	// up as a reviewable diff rather than silent churn across all tables.
	var b []byte
	add := func(s string) { b = append(b, s...); b = append(b, '\n') }
	for _, v := range []float64{0, 0.0001, 0.005, 0.01, 1.5, 9.999, 10, 42.25, 999.9, 1000, 1234567} {
		add("F " + F(v))
	}
	for _, v := range []float64{0.000025, 0.0099, 0.01, 0.0437, 12.5} {
		add("M " + Money(v))
	}
	for _, d := range []time.Duration{0, 900 * time.Microsecond, 1500 * time.Microsecond,
		177 * time.Millisecond, 999 * time.Millisecond, time.Second, 3500 * time.Millisecond,
		10 * time.Second, 24 * time.Second, 3 * time.Minute} {
		add("D " + Dur(d))
	}
	golden(t, "formatters", string(b))
}
