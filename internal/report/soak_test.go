package report

import (
	"strings"
	"testing"
	"time"
)

// fixtureSheets builds a small two-SUT soak artifact with every row kind
// populated, including CSV-hostile characters in a detail field.
func fixtureSheets() []SoakSheet {
	w := func(i int, txns, commits, errors int64, p50, p99 time.Duration, cost float64) SoakWindowRow {
		r := SoakWindowRow{
			Index: i, Start: time.Duration(i) * 6 * time.Hour,
			End:  time.Duration(i+1) * 6 * time.Hour,
			Txns: txns, Commits: commits, Errors: errors, P50: p50, P99: p99,
			Throughput: float64(commits) / (6 * 3600), Cost: cost,
		}
		if commits > 0 {
			r.CostPer1kTxn = cost / float64(commits) * 1000
		}
		return r
	}
	return []SoakSheet{
		{
			SUT: "cdb1", Days: 1, Window: 6 * time.Hour,
			Windows: []SoakWindowRow{
				w(0, 120, 118, 2, 3*time.Millisecond, 9*time.Millisecond, 0.041),
				w(1, 130, 126, 4, 4*time.Millisecond, 31*time.Millisecond, 0.052),
				w(2, 125, 124, 1, 3*time.Millisecond, 8*time.Millisecond, 0.043),
				w(3, 40, 0, 40, 0, 0, 0.012),
			},
			Sweeps: []SoakSweepRow{
				{At: 12 * time.Hour, Window: 1, Detail: "conservation=PASS read-committed=PASS", Pass: true},
				{At: 24 * time.Hour, Window: 3, Detail: "conservation=PASS read-committed=PASS", Pass: true},
			},
			Anomalies: []SoakAnomalyRow{
				{At: 6 * time.Hour, Window: 1, Kind: "p99-regression", Detail: "p99 31ms vs 9ms, \"3.4x\""},
				{At: 18 * time.Hour, Window: 3, Kind: "unavailability", Detail: "40 txns, 0 commits"},
			},
			Chaos: []SoakChaosRow{
				{At: 6 * time.Hour, Kind: "disk-stall", Target: "rw"},
				{At: 18 * time.Hour, Kind: "partition"},
			},
			Verdicts: []SoakVerdictRow{
				{Name: "no-split-brain", Passed: true, Checked: 7},
				{Name: "convergence(ro0)", Passed: true, Checked: 412},
			},
			Commits: 368, Errors: 7, Terminals: 40, TotalCost: 0.148,
		},
		{
			SUT: "rds", Days: 1, Window: 6 * time.Hour,
			Windows: []SoakWindowRow{
				w(0, 90, 89, 1, 5*time.Millisecond, 14*time.Millisecond, 0.061),
				w(1, 95, 93, 2, 5*time.Millisecond, 15*time.Millisecond, 0.063),
			},
			Commits: 182, Errors: 3, TotalCost: 0.124,
		},
	}
}

func TestGoldenSoakCSV(t *testing.T) {
	golden(t, "soak_csv", SoakCSV(fixtureSheets()))
}

func TestGoldenSoakMarkdown(t *testing.T) {
	golden(t, "soak_md", SoakMarkdown("Soak comparison (fixture)", fixtureSheets()))
}

func TestSoakCSVShape(t *testing.T) {
	out := SoakCSV(fixtureSheets())
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	cols := len(strings.Split(lines[0], ","))
	for i, line := range lines {
		// The quoted anomaly detail contains a comma; count fields with a
		// minimal RFC 4180 scan instead of a bare split.
		n, inQ := 1, false
		for _, r := range line {
			switch {
			case r == '"':
				inQ = !inQ
			case r == ',' && !inQ:
				n++
			}
		}
		if n != cols {
			t.Fatalf("line %d has %d fields, want %d: %q", i, n, cols, line)
		}
	}
	// Every row kind made it into the file.
	for _, kind := range []string{"window,", "sweep,", "anomaly,", "chaos,", "verdict,", "total,"} {
		if !strings.Contains(out, "\n"+kind) {
			t.Fatalf("CSV missing %q rows:\n%s", kind, out)
		}
	}
	// The comma-and-quote detail survived quoting.
	if !strings.Contains(out, `"p99-regression: p99 31ms vs 9ms, ""3.4x"""`) {
		t.Fatalf("CSV quoting broken:\n%s", out)
	}
}

func TestSoakMarkdownSections(t *testing.T) {
	out := SoakMarkdown("Soak comparison (fixture)", fixtureSheets())
	for _, want := range []string{
		"## cdb1 — 1 virtual days, 6h0m0s windows",
		"| window | start | txns |",
		"| 3 | d0 18:00 |",
		"### In-flight invariant sweeps",
		"### Anomalies",
		"| d0 18:00 | 3 | unavailability |",
		"### Chaos log",
		"| d0 18:00 | partition | — |",
		"### Final verdicts",
		"- no-split-brain: PASS (7 checked)",
		"## Cost efficiency",
		"RUC per 1k transactions",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("markdown missing %q:\n%s", want, out)
		}
	}
	// The rds sheet has no sweeps/anomalies/chaos: the renderer says so
	// instead of emitting empty tables.
	if !strings.Contains(out, "None ran.") || !strings.Contains(out, "None detected.") ||
		!strings.Contains(out, "No faults injected.") {
		t.Fatalf("empty sections not rendered:\n%s", out)
	}
}
