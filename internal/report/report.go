// Package report renders experiment results as the paper's tables and
// figures: aligned text tables for Tables V–IX and ASCII series/bars for
// the figures. All renderers write plain text suitable for terminals and
// for EXPERIMENTS.md code blocks.
package report

import (
	"fmt"
	"strings"
	"time"
)

// Table is a simple aligned text table builder.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		b.WriteString(t.title)
		b.WriteByte('\n')
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(pad(c, widths[i]))
		}
		b.WriteByte('\n')
	}
	line(t.headers)
	total := len(widths) - 1
	for _, w := range widths {
		total += w + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.rows {
		line(row)
	}
	return b.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// F formats a float compactly: integers without decimals, large values
// without noise, small values with sensible precision.
func F(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 10:
		return fmt.Sprintf("%.1f", v)
	case v >= 0.01:
		return fmt.Sprintf("%.3f", v)
	default:
		return fmt.Sprintf("%.5f", v)
	}
}

// Money formats a dollar amount like the paper's cost columns.
func Money(v float64) string {
	if v >= 0.01 {
		return fmt.Sprintf("$%.4f", v)
	}
	return fmt.Sprintf("$%.6f", v)
}

// Dur formats a duration at millisecond/second granularity like the
// paper's lag and recovery columns.
func Dur(d time.Duration) string {
	switch {
	case d == 0:
		return "0"
	case d < time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	case d < time.Second:
		return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
	case d < 10*time.Second:
		return fmt.Sprintf("%.1fs", d.Seconds())
	default:
		return fmt.Sprintf("%.0fs", d.Seconds())
	}
}

// Series renders an ASCII line of scaled values — one row of a Figure 9
// style chart. Values are mapped onto height discrete levels using block
// glyphs.
func Series(label string, values []float64, max float64) string {
	if max <= 0 {
		for _, v := range values {
			if v > max {
				max = v
			}
		}
	}
	glyphs := []rune(" ▁▂▃▄▅▆▇█")
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s|", label)
	for _, v := range values {
		idx := 0
		if max > 0 {
			idx = int(v / max * float64(len(glyphs)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(glyphs) {
			idx = len(glyphs) - 1
		}
		b.WriteRune(glyphs[idx])
	}
	fmt.Fprintf(&b, "| max=%s", F(max))
	return b.String()
}

// BarGroup renders labeled horizontal bars scaled to the group maximum —
// used for Figure 5/6/8 style grouped comparisons.
func BarGroup(title string, labels []string, values []float64, width int) string {
	if width <= 0 {
		width = 40
	}
	max := 0.0
	for _, v := range values {
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	if title != "" {
		b.WriteString(title)
		b.WriteByte('\n')
	}
	labelW := 0
	for _, l := range labels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	for i, v := range values {
		n := 0
		if max > 0 {
			n = int(v / max * float64(width))
		}
		fmt.Fprintf(&b, "%s  %s %s\n", pad(labels[i], labelW), pad(strings.Repeat("#", n), width), F(v))
	}
	return b.String()
}
