package report

import (
	"fmt"
	"strings"
	"time"

	"cloudybench/internal/obs"
)

// The soak comparison artifact: one CSV and one Markdown document covering
// every SUT's multi-day timeline — window rows, in-flight sweep verdicts,
// anomalies, the chaos log, stage breakdowns, and cost-per-throughput
// curves. The input structs are deliberately plain (no evaluator types) so
// the renderer stays a pure data -> bytes function; both renderers are
// byte-deterministic for a given input.

// SoakSheet is one SUT's longitudinal report card, pre-digested for
// rendering.
type SoakSheet struct {
	SUT    string
	Days   int
	Window time.Duration

	Windows   []SoakWindowRow
	Sweeps    []SoakSweepRow
	Anomalies []SoakAnomalyRow
	Chaos     []SoakChaosRow
	Verdicts  []SoakVerdictRow

	// Agg, if set, adds the whole-run stage breakdown to the Markdown.
	Agg *obs.StageAgg

	Commits   int64
	Errors    int64
	Terminals int64
	TotalCost float64
}

// SoakWindowRow is one timeline window's digest.
type SoakWindowRow struct {
	Index      int
	Start, End time.Duration
	Txns       int64
	Commits    int64
	Errors     int64
	P50, P99   time.Duration
	Throughput float64
	Cost       float64
	// CostPer1kTxn is the window's RUC cost per thousand commits (zero
	// when the window committed nothing).
	CostPer1kTxn float64
}

// SoakSweepRow is one in-flight invariant sweep.
type SoakSweepRow struct {
	At     time.Duration
	Window int
	Detail string
	Pass   bool
}

// SoakAnomalyRow is one flagged window.
type SoakAnomalyRow struct {
	At     time.Duration
	Window int
	Kind   string
	Detail string
}

// SoakChaosRow is one applied fault.
type SoakChaosRow struct {
	At     time.Duration
	Kind   string
	Target string
}

// SoakVerdictRow is one end-of-run invariant verdict.
type SoakVerdictRow struct {
	Name    string
	Passed  bool
	Checked int
}

// csvField quotes a CSV field when it contains a separator, quote, or
// newline (RFC 4180).
func csvField(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

func csvSecs(d time.Duration) string { return fmt.Sprintf("%.3f", d.Seconds()) }
func csvMs(d time.Duration) string {
	return fmt.Sprintf("%.3f", float64(d)/float64(time.Millisecond))
}

func passFail(p bool) string {
	if p {
		return "PASS"
	}
	return "FAIL"
}

// SoakCSV renders every sheet into one flat CSV. The leading kind column
// discriminates the row type (window, sweep, anomaly, chaos, verdict,
// total); rows of all SUTs share one superset header so the file loads
// into a single frame and filters by kind.
func SoakCSV(sheets []SoakSheet) string {
	var b strings.Builder
	b.WriteString("kind,sut,window,at_s,end_s,txns,commits,errors,p50_ms,p99_ms,throughput_tps,cost_ruc,cost_per_1k_txn,pass,detail\n")
	row := func(cells ...string) {
		b.WriteString(strings.Join(cells, ","))
		b.WriteByte('\n')
	}
	for _, sh := range sheets {
		sut := csvField(sh.SUT)
		for _, w := range sh.Windows {
			row("window", sut, fmt.Sprint(w.Index), csvSecs(w.Start), csvSecs(w.End),
				fmt.Sprint(w.Txns), fmt.Sprint(w.Commits), fmt.Sprint(w.Errors),
				csvMs(w.P50), csvMs(w.P99), fmt.Sprintf("%.3f", w.Throughput),
				fmt.Sprintf("%.6f", w.Cost), fmt.Sprintf("%.6f", w.CostPer1kTxn), "", "")
		}
		for _, s := range sh.Sweeps {
			row("sweep", sut, fmt.Sprint(s.Window), csvSecs(s.At), "", "", "", "",
				"", "", "", "", "", passFail(s.Pass), csvField(s.Detail))
		}
		for _, a := range sh.Anomalies {
			row("anomaly", sut, fmt.Sprint(a.Window), csvSecs(a.At), "", "", "", "",
				"", "", "", "", "", "", csvField(a.Kind+": "+a.Detail))
		}
		for _, c := range sh.Chaos {
			detail := c.Kind
			if c.Target != "" {
				detail += " " + c.Target
			}
			row("chaos", sut, "", csvSecs(c.At), "", "", "", "",
				"", "", "", "", "", "", csvField(detail))
		}
		for _, v := range sh.Verdicts {
			row("verdict", sut, "", "", "", fmt.Sprint(v.Checked), "", "",
				"", "", "", "", "", passFail(v.Passed), csvField(v.Name))
		}
		per1k := 0.0
		if sh.Commits > 0 {
			per1k = sh.TotalCost / float64(sh.Commits) * 1000
		}
		row("total", sut, "", "", "", fmt.Sprint(sh.Commits+sh.Errors+sh.Terminals),
			fmt.Sprint(sh.Commits), fmt.Sprint(sh.Errors), "", "", "",
			fmt.Sprintf("%.6f", sh.TotalCost), fmt.Sprintf("%.6f", per1k), "", "")
	}
	return b.String()
}

// mdDur renders virtual offsets as day+clock (e.g. d1 18:00) — soak spans
// are days long, so raw second counts are unreadable.
func mdDur(d time.Duration) string {
	day := d / (24 * time.Hour)
	rem := d % (24 * time.Hour)
	return fmt.Sprintf("d%d %02d:%02d", day, int(rem.Hours()), int(rem.Minutes())%60)
}

// SoakMarkdown renders the comparison artifact: per-SUT timeline tables,
// sweep and anomaly logs, the chaos schedule as applied, stage breakdowns,
// and a cross-SUT cost-efficiency section with RUC-per-1k-transaction
// curves over the run.
func SoakMarkdown(title string, sheets []SoakSheet) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", title)

	for _, sh := range sheets {
		fmt.Fprintf(&b, "\n## %s — %d virtual days, %v windows\n\n", sh.SUT, sh.Days, sh.Window)

		b.WriteString("| window | start | txns | commits | errors | p50 | p99 | tput (tps) | cost (RUC) | RUC/1k txn |\n")
		b.WriteString("|---|---|---|---|---|---|---|---|---|---|\n")
		for _, w := range sh.Windows {
			fmt.Fprintf(&b, "| %d | %s | %d | %d | %d | %s | %s | %s | %s | %s |\n",
				w.Index, mdDur(w.Start), w.Txns, w.Commits, w.Errors,
				Dur(w.P50), Dur(w.P99), F(w.Throughput), F(w.Cost), F(w.CostPer1kTxn))
		}
		fmt.Fprintf(&b, "\n**Totals:** %d commits, %d errors, %d abandoned, %s RUC.\n",
			sh.Commits, sh.Errors, sh.Terminals, F(sh.TotalCost))

		b.WriteString("\n### In-flight invariant sweeps\n\n")
		if len(sh.Sweeps) == 0 {
			b.WriteString("None ran.\n")
		} else {
			b.WriteString("| at | window | verdicts | result |\n|---|---|---|---|\n")
			for _, s := range sh.Sweeps {
				fmt.Fprintf(&b, "| %s | %d | %s | %s |\n",
					mdDur(s.At), s.Window, s.Detail, passFail(s.Pass))
			}
		}

		b.WriteString("\n### Anomalies\n\n")
		if len(sh.Anomalies) == 0 {
			b.WriteString("None detected.\n")
		} else {
			b.WriteString("| at | window | kind | detail |\n|---|---|---|---|\n")
			for _, a := range sh.Anomalies {
				fmt.Fprintf(&b, "| %s | %d | %s | %s |\n", mdDur(a.At), a.Window, a.Kind, a.Detail)
			}
		}

		b.WriteString("\n### Chaos log\n\n")
		if len(sh.Chaos) == 0 {
			b.WriteString("No faults injected.\n")
		} else {
			b.WriteString("| at | fault | target |\n|---|---|---|\n")
			for _, c := range sh.Chaos {
				target := c.Target
				if target == "" {
					target = "—"
				}
				fmt.Fprintf(&b, "| %s | %s | %s |\n", mdDur(c.At), c.Kind, target)
			}
		}

		if len(sh.Verdicts) > 0 {
			b.WriteString("\n### Final verdicts\n\n")
			for _, v := range sh.Verdicts {
				fmt.Fprintf(&b, "- %s: %s (%d checked)\n", v.Name, passFail(v.Passed), v.Checked)
			}
		}

		if sh.Agg != nil {
			b.WriteString("\n### Stage breakdown\n\n```\n")
			b.WriteString(StageBreakdown(sh.Agg))
			b.WriteString("```\n")
		}
	}

	// Cross-SUT cost efficiency: the totals table plus a per-window
	// RUC-per-1k-commit sparkline per SUT (the cost-per-throughput curve —
	// spikes line up with the fault windows above).
	b.WriteString("\n## Cost efficiency\n\n")
	b.WriteString("| SUT | commits | total RUC | RUC/1k txn |\n|---|---|---|---|\n")
	for _, sh := range sheets {
		per1k := 0.0
		if sh.Commits > 0 {
			per1k = sh.TotalCost / float64(sh.Commits) * 1000
		}
		fmt.Fprintf(&b, "| %s | %d | %s | %s |\n", sh.SUT, sh.Commits, F(sh.TotalCost), F(per1k))
	}
	b.WriteString("\nRUC per 1k transactions, window by window:\n\n```\n")
	for _, sh := range sheets {
		vals := make([]float64, len(sh.Windows))
		for i, w := range sh.Windows {
			vals[i] = w.CostPer1kTxn
		}
		b.WriteString(Series(sh.SUT, vals, 0))
		b.WriteByte('\n')
	}
	b.WriteString("```\n")
	return b.String()
}
