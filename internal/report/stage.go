package report

import (
	"fmt"
	"sort"
	"strings"

	"cloudybench/internal/obs"
)

// StageBreakdown renders the "virtual flame" table for one SUT: per
// transaction type and span kind, how many spans were recorded, the total
// virtual time spent, that kind's share of end-to-end transaction time, and
// the p50/p95/p99 span durations. Background activity rows (checkpoint,
// replication, failover) carry no share because they have no enclosing
// transaction.
func StageBreakdown(agg *obs.StageAgg) string {
	t := NewTable(
		fmt.Sprintf("Stage breakdown: %s (virtual time per span kind)", agg.SUT()),
		"txn", "stage", "count", "total", "share", "p50", "p95", "p99",
	)
	for _, r := range agg.Rows() {
		share := "-"
		if r.Share > 0 {
			share = fmt.Sprintf("%.1f%%", r.Share*100)
		}
		t.AddRow(
			r.Txn, r.Kind.String(),
			fmt.Sprintf("%d", r.Count),
			Dur(r.Total), share,
			Dur(r.P50), Dur(r.P95), Dur(r.P99),
		)
	}
	return t.String()
}

// TxnSummary renders the end-to-end transaction latency table for one SUT:
// per transaction type, count, total virtual time, quantiles, and outcomes.
func TxnSummary(agg *obs.StageAgg) string {
	t := NewTable(
		fmt.Sprintf("Transactions: %s (end-to-end virtual time)", agg.SUT()),
		"txn", "count", "total", "p50", "p95", "p99", "outcomes",
	)
	for _, r := range agg.TxnRows() {
		var parts []string
		for _, o := range sortedKeys(r.Outcomes) {
			parts = append(parts, fmt.Sprintf("%s=%d", o, r.Outcomes[o]))
		}
		t.AddRow(
			r.Txn,
			fmt.Sprintf("%d", r.Count),
			Dur(r.Total),
			Dur(r.P50), Dur(r.P95), Dur(r.P99),
			strings.Join(parts, " "),
		)
	}
	return t.String()
}

func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
