package replication

import (
	"fmt"
	"testing"
	"time"

	"cloudybench/internal/engine"
	"cloudybench/internal/meter"
	"cloudybench/internal/sim"
	"cloudybench/internal/storage"
)

// TestReplayBatchMatchesSerialApply is the batched-replay equivalence
// contract: replaying a ship batch in one pass (coalesced CPU sleep,
// analytic per-record apply instants, DB.ApplyBatch) must be observationally
// identical to the old record-at-a-time path — same applied LSN and counts,
// same per-DML lag reservoirs sample for sample, same replica contents.
// serialApply is the retained test knob that forces the old path.
func TestReplayBatchMatchesSerialApply(t *testing.T) {
	type outcome struct {
		appliedLSN storage.LSN
		shipped    int64
		applied    int64
		lags       [3][]time.Duration // insert, update, delete samples in order
		rows       string
	}
	run := func(serial bool, lanes int) outcome {
		s := sim.New(epoch)
		rw, _, st, tbl, rtbl := setup(s, Config{
			Name: "r", BatchInterval: 10 * time.Millisecond, Lanes: lanes,
			PerRecord: 20 * time.Microsecond,
		})
		st.serialApply = serial
		s.Go("writer", func(p *sim.Proc) {
			next := int64(1001)
			for i := 0; i < 60; i++ {
				tx, _ := rw.Begin(p)
				switch i % 3 {
				case 0:
					tx.Insert(tbl, engine.Row{engine.Int(next), engine.Str("NEW")})
					next++
				case 1:
					tx.Update(tbl, engine.IntKey(int64(i)+1),
						engine.Row{engine.Int(int64(i) + 1), engine.Str("PAID")})
				case 2:
					tx.Delete(tbl, engine.IntKey(int64(i)+200))
				}
				tx.Commit()
				p.Sleep(time.Duration(1+i%7) * time.Millisecond)
			}
			p.Sleep(2 * time.Second) // drain
			st.Stop()
		})
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		out := outcome{appliedLSN: st.AppliedLSN()}
		out.shipped, out.applied = st.Counts()
		if st.Backlog() != 0 {
			t.Fatalf("serial=%v lanes=%d: backlog not drained", serial, lanes)
		}
		ins, upd, del := st.LagReservoirs()
		for i, res := range []*meter.Reservoir{ins, upd, del} {
			n := res.Count()
			for q := 0; q <= n; q++ {
				out.lags[i] = append(out.lags[i], res.Quantile(float64(q)/float64(n+1)))
			}
			out.lags[i] = append(out.lags[i], res.Mean())
		}
		for id := int64(1); id < 1100; id++ {
			row, _, ok := rtbl.Get(engine.IntKey(id))
			out.rows += fmt.Sprintf("%d:%v:%v;", id, ok, row)
		}
		return out
	}

	for _, lanes := range []int{1, 3} {
		serial := run(true, lanes)
		batched := run(false, lanes)
		if serial.appliedLSN != batched.appliedLSN {
			t.Errorf("lanes=%d: applied LSN %d (serial) != %d (batched)",
				lanes, serial.appliedLSN, batched.appliedLSN)
		}
		if serial.shipped != batched.shipped || serial.applied != batched.applied {
			t.Errorf("lanes=%d: counts %d/%d (serial) != %d/%d (batched)", lanes,
				serial.shipped, serial.applied, batched.shipped, batched.applied)
		}
		for i, name := range []string{"insert", "update", "delete"} {
			if len(serial.lags[i]) != len(batched.lags[i]) {
				t.Errorf("lanes=%d %s: %d lag samples (serial) != %d (batched)",
					lanes, name, len(serial.lags[i]), len(batched.lags[i]))
				continue
			}
			for j := range serial.lags[i] {
				if serial.lags[i][j] != batched.lags[i][j] {
					t.Errorf("lanes=%d %s lag stat %d: %v (serial) != %v (batched)",
						lanes, name, j, serial.lags[i][j], batched.lags[i][j])
					break
				}
			}
		}
		if serial.rows != batched.rows {
			t.Errorf("lanes=%d: replica contents diverge between serial and batched replay", lanes)
		}
	}
}
