// Package replication implements the log-shipping pipelines that keep
// read-only replicas (and page services) synchronized with the read-write
// node. Architectures differ in three calibratable dimensions the paper
// calls out in §III-F:
//
//   - path: how many hops a record crosses (CDB2's separate log and page
//     services add a hop and have the highest lag; CDB4's RDMA ships
//     directly into the remote buffer with the lowest);
//   - batching: how long the shipper accumulates commits before sending;
//   - replay: sequential (CDB1, CDB2) versus parallel lanes partitioned by
//     page (CDB3's parallel log replay).
//
// Lag is measured per DML type (insert/update/delete) because the paper's
// C-Score averages the three.
package replication

import (
	"sort"
	"time"

	"cloudybench/internal/meter"
	"cloudybench/internal/netsim"
	"cloudybench/internal/node"
	"cloudybench/internal/obs"
	"cloudybench/internal/sim"
	"cloudybench/internal/storage"
)

// Config describes one replication stream's architecture.
type Config struct {
	Name string
	// BatchInterval is how long the shipper accumulates committed records
	// before shipping a batch. Zero ships immediately.
	BatchInterval time.Duration
	// Link carries shipped batches (nil = free local hand-off).
	Link *netsim.Link
	// ExtraHops adds fixed per-batch latencies for intermediate services
	// (log service -> page service).
	ExtraHops []time.Duration
	// Lanes is the number of parallel replay lanes; 1 replays sequentially.
	// Records are partitioned by page so per-key order is preserved.
	Lanes int
	// PerRecord is the replay service time of one record in a lane.
	PerRecord time.Duration
	// DeleteFactor scales replay cost for deletes (most CDBs tombstone
	// logically, making deletes cheaper — §III-F's "less lag time with
	// higher delete ratio").
	DeleteFactor float64
	// DropEveryNth, when positive, silently discards every n-th data record
	// instead of applying it. It exists ONLY to prove the convergence
	// checker has teeth (a deliberately-broken replica must FAIL); no SUT
	// profile sets it.
	DropEveryNth int
	// Tracer, if non-nil, records replication-ship spans per shipped batch
	// and storage-replay spans per replayed record as background activity.
	Tracer *obs.Tracer
}

type envelope struct {
	rec         storage.Record
	committedAt time.Duration
}

// Stream replicates one RW node's committed records into one replica.
type Stream struct {
	s       *sim.Sim
	cfg     Config
	replica *node.Node

	// OnApply, if set, runs after each data record applies (cache
	// invalidation in the memory-disaggregated architecture).
	OnApply func(rec storage.Record)

	inbox     []envelope
	inboxCond *sim.Cond
	lanes     []*laneState
	stopped   bool

	// inflight is the batch the shipper popped from the inbox and is
	// currently transferring; on a cut link the shipper blocks mid-Send with
	// the batch parked here so DrainPending can recover it (the records are
	// committed and durable — only the network path is gone).
	inflight []envelope
	// replaying counts lane records popped but not yet applied, so
	// DrainPending can wait out in-flight replays before taking over.
	replaying int

	appliedLSN  storage.LSN
	shipped     int64
	applied     int64
	dropCounter int64 // DropEveryNth bookkeeping (test-only fault)

	// serialApply forces the pre-batching record-at-a-time replay path.
	// Test-only: the replay-batch equivalence test proves both paths yield
	// identical AppliedLSN and lag reservoirs on a quiet stream.
	serialApply bool
	// recScratch collects a batch's surviving records for the engine's
	// batched apply; reused across batches.
	recScratch []storage.Record

	lagInsert *meter.Reservoir
	lagUpdate *meter.Reservoir
	lagDelete *meter.Reservoir
}

type laneState struct {
	queue []envelope
	// spare is the double-buffer for the batched replay loop: the replayer
	// takes the whole queue, swaps in the (empty) spare so the shipper can
	// keep appending, and retires the applied batch as the next spare.
	spare []envelope
	cond  *sim.Cond
}

// NewStream starts a replication stream feeding the given replica node.
func NewStream(s *sim.Sim, cfg Config, replica *node.Node) *Stream {
	if cfg.Lanes < 1 {
		cfg.Lanes = 1
	}
	if cfg.DeleteFactor <= 0 {
		cfg.DeleteFactor = 0.5
	}
	st := &Stream{
		s:         s,
		cfg:       cfg,
		replica:   replica,
		inboxCond: sim.NewCond(s),
		lagInsert: meter.NewReservoir(),
		lagUpdate: meter.NewReservoir(),
		lagDelete: meter.NewReservoir(),
	}
	for i := 0; i < cfg.Lanes; i++ {
		lane := &laneState{cond: sim.NewCond(s)}
		st.lanes = append(st.lanes, lane)
		laneID := i
		s.Go(cfg.Name+"/replay", func(p *sim.Proc) { st.replayLoop(p, laneID) })
	}
	s.Go(cfg.Name+"/shipper", st.shipLoop)
	return st
}

// Publish hands committed records to the stream (wired to node.OnCommit).
func (st *Stream) Publish(p *sim.Proc, recs []storage.Record) {
	if st.stopped {
		return
	}
	now := st.s.Elapsed()
	for _, rec := range recs {
		st.inbox = append(st.inbox, envelope{rec: rec, committedAt: now})
	}
	st.inboxCond.Signal()
}

// Stop shuts the stream down after draining; background processes exit.
func (st *Stream) Stop() {
	st.stopped = true
	st.inboxCond.Broadcast()
	for _, l := range st.lanes {
		l.cond.Broadcast()
	}
}

func (st *Stream) shipLoop(p *sim.Proc) {
	for {
		for len(st.inbox) == 0 {
			if st.stopped {
				return
			}
			st.inboxCond.Wait(p)
		}
		if st.cfg.BatchInterval > 0 {
			p.Sleep(st.cfg.BatchInterval)
		}
		batch := st.inbox
		st.inbox = nil
		st.inflight = batch
		bytes := 0
		for i := range batch {
			bytes += batch[i].rec.Size()
		}
		tr := st.cfg.Tracer
		var t0 time.Duration
		if tr != nil {
			t0 = p.Elapsed()
		}
		if st.cfg.Link != nil {
			st.cfg.Link.Send(p, bytes)
		}
		for _, hop := range st.cfg.ExtraHops {
			p.Sleep(hop)
		}
		if tr != nil {
			tr.RecordBG("replication", obs.KindReplicationShip, st.cfg.Name, t0, p.Elapsed())
		}
		// DrainPending may have taken the batch while Send was blocked on a
		// cut link; if so there is nothing left to distribute.
		batch = st.inflight
		st.inflight = nil
		st.shipped += int64(len(batch))
		for _, env := range batch {
			lane := st.lanes[int(env.rec.Page.Num)%len(st.lanes)]
			lane.queue = append(lane.queue, env)
			lane.cond.Signal()
		}
	}
}

func (st *Stream) replayLoop(p *sim.Proc, laneID int) {
	lane := st.lanes[laneID]
	for {
		for len(lane.queue) == 0 {
			if st.stopped {
				return
			}
			lane.cond.Wait(p)
		}
		if st.serialApply {
			env := lane.queue[0]
			lane.queue = lane.queue[1:]
			st.replaying++
			st.applyOne(p, env)
			st.replaying--
			continue
		}
		batch := lane.queue
		lane.queue = lane.spare[:0]
		st.replaying += len(batch)
		st.replayBatch(p, batch)
		st.replaying -= len(batch)
		lane.spare = batch[:0]
	}
}

// recordCost returns the replay service time of one record.
func (st *Stream) recordCost(typ storage.RecType) time.Duration {
	switch typ {
	case storage.RecDelete:
		return time.Duration(float64(st.cfg.PerRecord) * st.cfg.DeleteFactor)
	case storage.RecInsert, storage.RecUpdate:
		return st.cfg.PerRecord
	default:
		return 0 // commit/begin markers replay for free
	}
}

// dropRecord implements the DropEveryNth test-only fault.
func (st *Stream) dropRecord(typ storage.RecType) bool {
	n := st.cfg.DropEveryNth
	if n <= 0 || typ == storage.RecCommit {
		return false
	}
	st.dropCounter++
	return st.dropCounter%int64(n) == 0
}

// replayBatch replays a whole lane batch: one Down check, one coalesced
// sleep for the summed per-record service times, then every surviving record
// applied through the engine's batched path. Each record's nominal apply
// instant is the batch start plus its prefix cost — exactly where the
// record-at-a-time loop would have applied it — so lag samples and tracer
// spans are byte-identical to serial replay on a quiet stream (the one
// observable divergence: a replica going Down mid-batch pauses serial replay
// between records, while a batch in flight completes first). The post-sleep
// section never yields, so no other process can observe the intermediate
// ordering of applies and OnApply hooks.
//
//detlint:hotpath
func (st *Stream) replayBatch(p *sim.Proc, batch []envelope) {
	// A down or recovering replica buffers the backlog; replay resumes
	// (and catches up) once the node is serving again, extending recovery
	// realistically.
	for st.replica.State() == node.Down || st.replica.State() == node.Recovering {
		p.Sleep(100 * time.Millisecond)
	}
	start := p.Elapsed()
	total := time.Duration(0)
	for i := range batch {
		total += st.recordCost(batch[i].rec.Type)
	}
	if total > 0 {
		p.Sleep(total)
	}
	tr := st.cfg.Tracer
	recs := st.recScratch[:0]
	at := start
	for i := range batch {
		env := &batch[i]
		cost := st.recordCost(env.rec.Type)
		at += cost
		if cost > 0 && tr != nil {
			tr.RecordBG("replication", obs.KindStorageReplay, st.cfg.Name, at-cost, at)
		}
		if st.dropRecord(env.rec.Type) {
			st.applied++
			continue
		}
		recs = append(recs, env.rec)
		st.applied++
		if env.rec.LSN > st.appliedLSN {
			st.appliedLSN = env.rec.LSN
		}
		lag := at - env.committedAt
		switch env.rec.Type {
		case storage.RecInsert:
			st.lagInsert.Add(lag)
		case storage.RecUpdate:
			st.lagUpdate.Add(lag)
		case storage.RecDelete:
			st.lagDelete.Add(lag)
		}
	}
	st.recScratch = recs
	if err := st.replica.DB.ApplyBatch(recs); err != nil {
		panic("replication: " + err.Error())
	}
	if st.OnApply != nil {
		for i := range recs {
			if recs[i].Type != storage.RecCommit {
				st.OnApply(recs[i])
			}
		}
	}
}

// applyOne pays the replay cost for one record and applies it to the
// replica. Shared by the serial replay path and DrainPending.
func (st *Stream) applyOne(p *sim.Proc, env envelope) {
	for st.replica.State() == node.Down || st.replica.State() == node.Recovering {
		p.Sleep(100 * time.Millisecond)
	}
	cost := st.recordCost(env.rec.Type)
	if cost > 0 {
		tr := st.cfg.Tracer
		if tr == nil {
			p.Sleep(cost)
		} else {
			t0 := p.Elapsed()
			p.Sleep(cost)
			tr.RecordBG("replication", obs.KindStorageReplay, st.cfg.Name, t0, p.Elapsed())
		}
	}
	if st.dropRecord(env.rec.Type) {
		st.applied++
		return
	}
	if err := st.replica.DB.Apply(env.rec); err != nil {
		panic("replication: " + err.Error())
	}
	st.applied++
	if env.rec.LSN > st.appliedLSN {
		st.appliedLSN = env.rec.LSN
	}
	lag := st.s.Elapsed() - env.committedAt
	switch env.rec.Type {
	case storage.RecInsert:
		st.lagInsert.Add(lag)
	case storage.RecUpdate:
		st.lagUpdate.Add(lag)
	case storage.RecDelete:
		st.lagDelete.Add(lag)
	}
	if st.OnApply != nil && env.rec.Type != storage.RecCommit {
		st.OnApply(env.rec)
	}
}

// DrainPending synchronously applies every record the stream has accepted
// but not yet applied — the shipper's in-flight batch (possibly parked
// behind a cut link), the inbox, and the lane queues — to the replica, in
// LSN order. Fail-over promotion calls this before adopting the replica as
// the new RW: in the modelled architectures the committed log lives in
// shared/quorum storage, which the promoted node can still read while the
// network path to the old RW is partitioned, so no acknowledged commit is
// lost to the cut. Replay cost is paid per record, extending the promotion
// realistically under backlog. The replica must not be Down. Returns how
// many records were applied.
func (st *Stream) DrainPending(p *sim.Proc) int {
	for st.replaying > 0 {
		p.Sleep(time.Millisecond)
	}
	pend := append([]envelope(nil), st.inflight...)
	st.inflight = nil
	pend = append(pend, st.inbox...)
	st.inbox = nil
	newlyShipped := int64(len(pend))
	for _, l := range st.lanes {
		pend = append(pend, l.queue...)
		l.queue = nil
	}
	sort.Slice(pend, func(i, j int) bool { return pend[i].rec.LSN < pend[j].rec.LSN })
	for i := range pend {
		st.applyOne(p, pend[i])
	}
	st.shipped += newlyShipped
	return len(pend)
}

// AppliedLSN returns the highest LSN applied so far (approximate across
// parallel lanes).
func (st *Stream) AppliedLSN() storage.LSN { return st.appliedLSN }

// Counts returns shipped and applied record counts.
func (st *Stream) Counts() (shipped, applied int64) { return st.shipped, st.applied }

// Backlog returns records accepted but not yet applied: waiting to ship,
// mid-transfer in the shipper's in-flight batch, or queued in a replay
// lane. The in-flight batch must count — it is invisible to Counts() until
// the transfer lands, so a quiesce loop testing Backlog()==0 &&
// shipped==applied would otherwise declare convergence while a batch is
// still crossing the (possibly multi-hop) ship path.
func (st *Stream) Backlog() int {
	n := len(st.inbox) + len(st.inflight)
	for _, l := range st.lanes {
		n += len(l.queue)
	}
	return n
}

// LagReservoirs returns the per-DML lag reservoirs (insert, update, delete).
func (st *Stream) LagReservoirs() (ins, upd, del *meter.Reservoir) {
	return st.lagInsert, st.lagUpdate, st.lagDelete
}

// MeanLag returns the mean replication lag for the given record type, or
// the overall mean across DML types when typ is zero.
func (st *Stream) MeanLag(typ storage.RecType) time.Duration {
	switch typ {
	case storage.RecInsert:
		return st.lagInsert.Mean()
	case storage.RecUpdate:
		return st.lagUpdate.Mean()
	case storage.RecDelete:
		return st.lagDelete.Mean()
	}
	total := time.Duration(0)
	n := 0
	for _, r := range []*meter.Reservoir{st.lagInsert, st.lagUpdate, st.lagDelete} {
		if r.Count() > 0 {
			total += r.Mean()
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return total / time.Duration(n)
}
