package replication

import (
	"testing"
	"time"

	"cloudybench/internal/engine"
	"cloudybench/internal/netsim"
	"cloudybench/internal/node"
	"cloudybench/internal/sim"
	"cloudybench/internal/storage"
)

var epoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func ordersSchema() *engine.Schema {
	return &engine.Schema{
		Name: "orders",
		Cols: []engine.Column{
			{Name: "O_ID", Kind: engine.KindInt},
			{Name: "O_STATUS", Kind: engine.KindString},
		},
		KeyCols:     []int{0},
		AvgRowBytes: 64,
	}
}

func genOrder(id int64) engine.Row { return engine.Row{engine.Int(id), engine.Str("NEW")} }

func nodeCfg(name string) node.Config {
	return node.Config{
		Name: name, VCores: 4, MemoryBytes: 64 << 20,
		OpCPU: 10 * time.Microsecond, TxnCPU: 10 * time.Microsecond,
	}
}

func setup(s *sim.Sim, cfg Config) (rw, ro *node.Node, st *Stream, tbl, rtbl *engine.Table) {
	rw = node.New(s, nodeCfg("rw"), node.NullBackend{})
	ro = node.New(s, nodeCfg("ro"), node.NullBackend{})
	tbl = rw.DB.MustCreateTable(ordersSchema(), 1000, genOrder)
	rtbl = ro.DB.MustCreateTable(ordersSchema(), 1000, genOrder)
	st = NewStream(s, cfg, ro)
	rw.OnCommit = st.Publish
	return rw, ro, st, tbl, rtbl
}

func TestStreamReplicatesCommittedChanges(t *testing.T) {
	s := sim.New(epoch)
	rw, _, st, tbl, rtbl := setup(s, Config{
		Name: "r", BatchInterval: time.Millisecond, Lanes: 1, PerRecord: 10 * time.Microsecond,
	})
	s.Go("writer", func(p *sim.Proc) {
		tx, _ := rw.Begin(p)
		tx.Update(tbl, engine.IntKey(5), engine.Row{engine.Int(5), engine.Str("PAID")})
		tx.Commit()
		p.Sleep(time.Second) // let replication drain
		st.Stop()
		row, _, ok := rtbl.Get(engine.IntKey(5))
		if !ok || row[1].S != "PAID" {
			t.Errorf("replica row = %v %v", row, ok)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	shipped, applied := st.Counts()
	if shipped != 2 || applied != 2 { // update + commit
		t.Fatalf("counts = %d/%d, want 2/2", shipped, applied)
	}
	if st.Backlog() != 0 {
		t.Fatal("backlog not drained")
	}
	if st.AppliedLSN() != 2 {
		t.Fatalf("applied LSN = %d", st.AppliedLSN())
	}
}

func TestStreamLagReflectsBatchInterval(t *testing.T) {
	measure := func(batch time.Duration) time.Duration {
		s := sim.New(epoch)
		rw, _, st, tbl, _ := setup(s, Config{
			Name: "r", BatchInterval: batch, Lanes: 1, PerRecord: time.Microsecond,
		})
		s.Go("writer", func(p *sim.Proc) {
			for i := 0; i < 20; i++ {
				tx, _ := rw.Begin(p)
				tx.Update(tbl, engine.IntKey(int64(i+1)), engine.Row{engine.Int(int64(i + 1)), engine.Str("PAID")})
				tx.Commit()
				p.Sleep(5 * time.Millisecond)
			}
			p.Sleep(2 * time.Second)
			st.Stop()
		})
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return st.MeanLag(storage.RecUpdate)
	}
	fast := measure(time.Millisecond)
	slow := measure(300 * time.Millisecond)
	if slow <= fast*10 {
		t.Fatalf("batching lag: slow=%v fast=%v, want slow >> fast", slow, fast)
	}
}

func TestStreamParallelLanesFasterThanSequential(t *testing.T) {
	// Saturating write stream: 8 lanes should drain far faster than 1.
	drainTime := func(lanes int) time.Duration {
		s := sim.New(epoch)
		rw, _, st, tbl, _ := setup(s, Config{
			Name: "r", BatchInterval: time.Millisecond, Lanes: lanes, PerRecord: 500 * time.Microsecond,
		})
		s.Go("writer", func(p *sim.Proc) {
			// Updates spread across the 1000-row base (8 pages) so page
			// partitioning can actually parallelize.
			for i := 0; i < 500; i++ {
				tx, _ := rw.Begin(p)
				id := int64(i%1000) + 1
				tx.Update(tbl, engine.IntKey(id), engine.Row{engine.Int(id), engine.Str("PAID")})
				tx.Commit()
			}
			for st.Backlog() > 0 {
				p.Sleep(10 * time.Millisecond)
			}
			st.Stop()
		})
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return s.Elapsed()
	}
	seq := drainTime(1)
	par := drainTime(8)
	if par >= seq {
		t.Fatalf("parallel (%v) not faster than sequential (%v)", par, seq)
	}
	if float64(seq)/float64(par) < 3 {
		t.Fatalf("parallel speedup only %.1fx", float64(seq)/float64(par))
	}
}

func TestStreamPerKeyOrderPreservedAcrossLanes(t *testing.T) {
	s := sim.New(epoch)
	rw, _, st, tbl, rtbl := setup(s, Config{
		Name: "r", BatchInterval: time.Millisecond, Lanes: 8, PerRecord: 100 * time.Microsecond,
	})
	s.Go("writer", func(p *sim.Proc) {
		// Update the same key repeatedly; final state must win on replica.
		for v := 1; v <= 50; v++ {
			tx, _ := rw.Begin(p)
			tx.Update(tbl, engine.IntKey(7), engine.Row{engine.Int(7), engine.Str(status(v))})
			tx.Commit()
		}
		for st.Backlog() > 0 {
			p.Sleep(10 * time.Millisecond)
		}
		st.Stop()
		row, _, _ := rtbl.Get(engine.IntKey(7))
		if row[1].S != status(50) {
			t.Errorf("replica saw %q, want %q (out-of-order replay)", row[1].S, status(50))
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func status(v int) string { return "S" + string(rune('0'+v%10)) + string(rune('0'+v/10)) }

func TestStreamDeleteCheaperThanUpdate(t *testing.T) {
	s := sim.New(epoch)
	rw, _, st, tbl, _ := setup(s, Config{
		Name: "r", BatchInterval: time.Millisecond, Lanes: 1,
		PerRecord: time.Millisecond, DeleteFactor: 0.3,
	})
	s.Go("writer", func(p *sim.Proc) {
		for i := int64(1); i <= 20; i++ {
			tx, _ := rw.Begin(p)
			tx.Update(tbl, engine.IntKey(i), engine.Row{engine.Int(i), engine.Str("PAID")})
			tx.Commit()
			p.Sleep(50 * time.Millisecond)
		}
		for i := int64(21); i <= 40; i++ {
			tx, _ := rw.Begin(p)
			tx.Delete(tbl, engine.IntKey(i))
			tx.Commit()
			p.Sleep(50 * time.Millisecond)
		}
		p.Sleep(time.Second)
		st.Stop()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if st.MeanLag(storage.RecDelete) >= st.MeanLag(storage.RecUpdate) {
		t.Fatalf("delete lag %v >= update lag %v", st.MeanLag(storage.RecDelete), st.MeanLag(storage.RecUpdate))
	}
}

func TestStreamExtraHopsAddLatency(t *testing.T) {
	measure := func(hops []time.Duration) time.Duration {
		s := sim.New(epoch)
		rw, _, st, tbl, _ := setup(s, Config{
			Name: "r", BatchInterval: time.Millisecond, Lanes: 1,
			PerRecord: time.Microsecond, ExtraHops: hops,
			Link: netsim.NewLink(s, netsim.TCP, 10),
		})
		s.Go("writer", func(p *sim.Proc) {
			tx, _ := rw.Begin(p)
			tx.Update(tbl, engine.IntKey(1), engine.Row{engine.Int(1), engine.Str("PAID")})
			tx.Commit()
			p.Sleep(5 * time.Second)
			st.Stop()
		})
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return st.MeanLag(storage.RecUpdate)
	}
	direct := measure(nil)
	twoHop := measure([]time.Duration{200 * time.Millisecond})
	if twoHop < direct+150*time.Millisecond {
		t.Fatalf("two-hop lag %v vs direct %v", twoHop, direct)
	}
}

func TestStreamBuffersDuringReplicaDowntime(t *testing.T) {
	s := sim.New(epoch)
	rw, ro, st, tbl, rtbl := setup(s, Config{
		Name: "r", BatchInterval: time.Millisecond, Lanes: 1, PerRecord: time.Microsecond,
	})
	s.Go("writer", func(p *sim.Proc) {
		ro.SetState(node.Down)
		for i := int64(1); i <= 10; i++ {
			tx, _ := rw.Begin(p)
			tx.Update(tbl, engine.IntKey(i), engine.Row{engine.Int(i), engine.Str("PAID")})
			tx.Commit()
		}
		p.Sleep(2 * time.Second)
		if _, _, ok := rtbl.Get(engine.IntKey(1)); ok {
			if r, _, _ := rtbl.Get(engine.IntKey(1)); r[1].S == "PAID" {
				t.Error("replica applied records while down")
			}
		}
		ro.SetState(node.Running)
		p.Sleep(2 * time.Second)
		row, _, _ := rtbl.Get(engine.IntKey(1))
		if row[1].S != "PAID" {
			t.Error("replica did not catch up after restart")
		}
		st.Stop()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestStreamOnApplyHook(t *testing.T) {
	s := sim.New(epoch)
	rw, _, st, tbl, _ := setup(s, Config{
		Name: "r", BatchInterval: time.Millisecond, Lanes: 1, PerRecord: time.Microsecond,
	})
	invalidated := 0
	st.OnApply = func(rec storage.Record) { invalidated++ }
	s.Go("writer", func(p *sim.Proc) {
		tx, _ := rw.Begin(p)
		tx.Update(tbl, engine.IntKey(1), engine.Row{engine.Int(1), engine.Str("PAID")})
		tx.Update(tbl, engine.IntKey(2), engine.Row{engine.Int(2), engine.Str("PAID")})
		tx.Commit()
		p.Sleep(time.Second)
		st.Stop()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if invalidated != 2 {
		t.Fatalf("OnApply ran %d times, want 2 (data records only)", invalidated)
	}
}
