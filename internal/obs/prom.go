package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
)

// WritePrometheus renders the given aggregations as a Prometheus
// text-format (version 0.0.4) snapshot: span-duration summaries per
// (sut, txn, kind), end-to-end transaction summaries, and outcome
// counters. Series are emitted in sorted label order so two runs of the
// same simulation produce byte-identical snapshots.
//
// The quantiles are over virtual time — this is a post-run snapshot of the
// simulation's measurement substrate, not a live scrape endpoint.
func WritePrometheus(w io.Writer, aggs ...*StageAgg) error {
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	sec := func(ns int64) string {
		return strconv.FormatFloat(float64(ns)/1e9, 'g', -1, 64)
	}

	p("# HELP cloudybench_span_virtual_seconds Virtual-time span durations by SUT, transaction, and span kind.\n")
	p("# TYPE cloudybench_span_virtual_seconds summary\n")
	for _, a := range aggs {
		if a == nil {
			continue
		}
		for _, r := range a.Rows() {
			base := fmt.Sprintf("sut=%q,txn=%q,kind=%q", r.SUT, r.Txn, r.Kind.String())
			p("cloudybench_span_virtual_seconds{%s,quantile=\"0.5\"} %s\n", base, sec(r.P50.Nanoseconds()))
			p("cloudybench_span_virtual_seconds{%s,quantile=\"0.95\"} %s\n", base, sec(r.P95.Nanoseconds()))
			p("cloudybench_span_virtual_seconds{%s,quantile=\"0.99\"} %s\n", base, sec(r.P99.Nanoseconds()))
			p("cloudybench_span_virtual_seconds_sum{%s} %s\n", base, sec(r.Total.Nanoseconds()))
			p("cloudybench_span_virtual_seconds_count{%s} %d\n", base, r.Count)
		}
	}

	p("# HELP cloudybench_txn_virtual_seconds End-to-end transaction virtual time by SUT and transaction type.\n")
	p("# TYPE cloudybench_txn_virtual_seconds summary\n")
	for _, a := range aggs {
		if a == nil {
			continue
		}
		for _, r := range a.TxnRows() {
			base := fmt.Sprintf("sut=%q,txn=%q", r.SUT, r.Txn)
			p("cloudybench_txn_virtual_seconds{%s,quantile=\"0.5\"} %s\n", base, sec(r.P50.Nanoseconds()))
			p("cloudybench_txn_virtual_seconds{%s,quantile=\"0.95\"} %s\n", base, sec(r.P95.Nanoseconds()))
			p("cloudybench_txn_virtual_seconds{%s,quantile=\"0.99\"} %s\n", base, sec(r.P99.Nanoseconds()))
			p("cloudybench_txn_virtual_seconds_sum{%s} %s\n", base, sec(r.Total.Nanoseconds()))
			p("cloudybench_txn_virtual_seconds_count{%s} %d\n", base, r.Count)
		}
	}

	p("# HELP cloudybench_txn_outcomes_total Transactions by SUT, transaction type, and outcome.\n")
	p("# TYPE cloudybench_txn_outcomes_total counter\n")
	for _, a := range aggs {
		if a == nil {
			continue
		}
		for _, r := range a.TxnRows() {
			outcomes := make([]string, 0, len(r.Outcomes))
			for o := range r.Outcomes {
				outcomes = append(outcomes, o)
			}
			sort.Strings(outcomes)
			for _, o := range outcomes {
				p("cloudybench_txn_outcomes_total{sut=%q,txn=%q,outcome=%q} %d\n",
					r.SUT, r.Txn, o, r.Outcomes[o])
			}
		}
	}
	return err
}
