package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// escapeLabel escapes a label value per the Prometheus text exposition
// format (version 0.0.4): backslash, double quote, and line feed become
// \\, \", and \n — and nothing else. Go's %q is NOT this format: it also
// escapes tabs, control characters, and non-ASCII runes into Go syntax the
// Prometheus parser would read as a literal backslash followed by letters.
var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeLabel(v string) string { return labelEscaper.Replace(v) }

// WritePrometheus renders the given aggregations as a Prometheus
// text-format (version 0.0.4) snapshot: span-duration summaries per
// (sut, txn, kind), end-to-end transaction summaries, and outcome
// counters. Series are emitted in sorted label order so two runs of the
// same simulation produce byte-identical snapshots.
//
// The quantiles are over virtual time — this is a post-run snapshot of the
// simulation's measurement substrate, not a live scrape endpoint.
func WritePrometheus(w io.Writer, aggs ...*StageAgg) error {
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	sec := func(ns int64) string {
		return strconv.FormatFloat(float64(ns)/1e9, 'g', -1, 64)
	}

	p("# HELP cloudybench_span_virtual_seconds Virtual-time span durations by SUT, transaction, and span kind.\n")
	p("# TYPE cloudybench_span_virtual_seconds summary\n")
	for _, a := range aggs {
		if a == nil {
			continue
		}
		for _, r := range a.Rows() {
			base := fmt.Sprintf(`sut="%s",txn="%s",kind="%s"`,
				escapeLabel(r.SUT), escapeLabel(r.Txn), escapeLabel(r.Kind.String()))
			p("cloudybench_span_virtual_seconds{%s,quantile=\"0.5\"} %s\n", base, sec(r.P50.Nanoseconds()))
			p("cloudybench_span_virtual_seconds{%s,quantile=\"0.95\"} %s\n", base, sec(r.P95.Nanoseconds()))
			p("cloudybench_span_virtual_seconds{%s,quantile=\"0.99\"} %s\n", base, sec(r.P99.Nanoseconds()))
			p("cloudybench_span_virtual_seconds_sum{%s} %s\n", base, sec(r.Total.Nanoseconds()))
			p("cloudybench_span_virtual_seconds_count{%s} %d\n", base, r.Count)
		}
	}

	p("# HELP cloudybench_txn_virtual_seconds End-to-end transaction virtual time by SUT and transaction type.\n")
	p("# TYPE cloudybench_txn_virtual_seconds summary\n")
	for _, a := range aggs {
		if a == nil {
			continue
		}
		for _, r := range a.TxnRows() {
			base := fmt.Sprintf(`sut="%s",txn="%s"`, escapeLabel(r.SUT), escapeLabel(r.Txn))
			p("cloudybench_txn_virtual_seconds{%s,quantile=\"0.5\"} %s\n", base, sec(r.P50.Nanoseconds()))
			p("cloudybench_txn_virtual_seconds{%s,quantile=\"0.95\"} %s\n", base, sec(r.P95.Nanoseconds()))
			p("cloudybench_txn_virtual_seconds{%s,quantile=\"0.99\"} %s\n", base, sec(r.P99.Nanoseconds()))
			p("cloudybench_txn_virtual_seconds_sum{%s} %s\n", base, sec(r.Total.Nanoseconds()))
			p("cloudybench_txn_virtual_seconds_count{%s} %d\n", base, r.Count)
		}
	}

	p("# HELP cloudybench_txn_outcomes_total Transactions by SUT, transaction type, and outcome.\n")
	p("# TYPE cloudybench_txn_outcomes_total counter\n")
	for _, a := range aggs {
		if a == nil {
			continue
		}
		for _, r := range a.TxnRows() {
			outcomes := make([]string, 0, len(r.Outcomes))
			for o := range r.Outcomes {
				outcomes = append(outcomes, o)
			}
			sort.Strings(outcomes)
			for _, o := range outcomes {
				p("cloudybench_txn_outcomes_total{sut=\"%s\",txn=\"%s\",outcome=\"%s\"} %d\n",
					escapeLabel(r.SUT), escapeLabel(r.Txn), escapeLabel(o), r.Outcomes[o])
			}
		}
	}
	return err
}
