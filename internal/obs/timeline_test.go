package obs

import (
	"testing"
	"time"
)

// emitTxn pushes one finished single-span transaction trace through a sink.
func emitTxn(s Sink, txn string, start, end time.Duration, outcome string) {
	s.Emit(&Trace{
		SUT: "t", Txn: txn, Start: start, End: end, Outcome: outcome,
		Spans: []Span{{Kind: KindCPU, Start: start, End: end}},
	})
}

func TestTimelineWindowBoundaries(t *testing.T) {
	tl := NewTimeline("cdb1", time.Second)
	// End stamps at 999ms, 1000ms, and 1999ms: the boundary sample belongs
	// to window 1 ([1s, 2s)), not window 0.
	emitTxn(tl, "T1", ms(900), ms(999), "commit")
	emitTxn(tl, "T1", ms(950), ms(1000), "commit")
	emitTxn(tl, "T1", ms(1900), ms(1999), "error")
	if got := tl.WindowIndexes(); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("window indexes = %v, want [0 1]", got)
	}
	r0, r1 := tl.Row(0), tl.Row(1)
	if r0.Commits != 1 || r0.Errors != 0 || r0.Txns != 1 {
		t.Fatalf("window 0 = %+v", r0)
	}
	if r1.Commits != 1 || r1.Errors != 1 || r1.Txns != 2 {
		t.Fatalf("window 1 = %+v", r1)
	}
	if r1.Start != time.Second || r1.End != 2*time.Second {
		t.Fatalf("window 1 bounds = [%v, %v)", r1.Start, r1.End)
	}
	if r0.Throughput != 1 {
		t.Fatalf("window 0 throughput = %v, want 1/s", r0.Throughput)
	}
	// A negative timestamp clamps into window 0 rather than going negative.
	if tl.WindowIndex(-ms(5)) != 0 {
		t.Fatal("negative timestamps must clamp to window 0")
	}
}

func TestTimelineRowsIncludeGaps(t *testing.T) {
	tl := NewTimeline("cdb1", time.Second)
	emitTxn(tl, "T1", 0, ms(100), "commit")
	emitTxn(tl, "T1", ms(3100), ms(3200), "commit")
	rows := tl.Rows()
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4 (windows 0..3 with gaps)", len(rows))
	}
	for _, i := range []int{1, 2} {
		if rows[i].Txns != 0 || rows[i].P99 != 0 {
			t.Fatalf("gap window %d not empty: %+v", i, rows[i])
		}
	}
}

func TestTimelineBackgroundTraces(t *testing.T) {
	tl := NewTimeline("cdb1", time.Second)
	// A background trace (empty outcome) contributes spans but no txn row —
	// mirroring StageAgg's addSpan/addTrace split.
	tl.Emit(&Trace{
		SUT: "t", Txn: "checkpoint", Start: ms(10), End: ms(20),
		Spans: []Span{{Kind: KindCheckpointStall, Start: ms(10), End: ms(20)}},
	})
	if r := tl.Row(0); r.Txns != 0 {
		t.Fatalf("background trace counted as a transaction: %+v", r)
	}
	agg := tl.Aggregate()
	rows := agg.Rows()
	if len(rows) != 1 || rows[0].Txn != "checkpoint" || rows[0].Kind != KindCheckpointStall {
		t.Fatalf("aggregate rows = %+v", rows)
	}
}

// TestTimelineMergeEqualsWholeRunAggregation is the satellite property
// test: (a) a Timeline attached as the tracer's sink aggregates to exactly
// the tracer's own StageAgg, bucket-for-bucket; (b) splitting the same
// trace stream across two timelines and merging them equals the unsplit
// timeline, window-for-window and in aggregate.
func TestTimelineMergeEqualsWholeRunAggregation(t *testing.T) {
	width := 500 * time.Millisecond
	whole := NewTimeline("cdb2", width)
	tr := NewTracer("cdb2", whole)

	key := new(int)
	outcomes := []string{"commit", "commit", "commit", "error", "abort"}
	kinds := []Kind{KindCPU, KindLockWait, KindPageRead, KindWALAppend}
	at := time.Duration(0)
	for i := 0; i < 400; i++ {
		// Deterministic pseudo-varied traffic: latencies cycle 1..40ms,
		// timestamps sweep across eight windows.
		lat := ms(1 + i%40)
		tr.StartTxn(key, []string{"T1", "T2", "T3"}[i%3], at)
		tr.Record(key, kinds[i%len(kinds)], at, at+lat/2)
		tr.FinishTxn(key, outcomes[i%len(outcomes)], at+lat)
		if i%7 == 0 {
			tr.RecordBG("replication", KindReplicationShip, "", at, at+ms(2))
		}
		at += ms(9)
	}

	// (a) Timeline-as-sink aggregates to the tracer's whole-run StageAgg.
	if !whole.Aggregate().Equal(tr.Agg()) {
		t.Fatal("timeline Aggregate() != tracer Agg() for the same trace stream")
	}

	// (b) Split the same stream across two timelines (alternating traces),
	// merge, and demand equality with the unsplit timeline.
	a := NewTimeline("cdb2", width)
	b := NewTimeline("cdb2", width)
	split := 0
	replay := NewTracer("cdb2", MultiSink{sinkSwitch{&split, a, b}})
	at = 0
	for i := 0; i < 400; i++ {
		lat := ms(1 + i%40)
		replay.StartTxn(key, []string{"T1", "T2", "T3"}[i%3], at)
		replay.Record(key, kinds[i%len(kinds)], at, at+lat/2)
		replay.FinishTxn(key, outcomes[i%len(outcomes)], at+lat)
		if i%7 == 0 {
			replay.RecordBG("replication", KindReplicationShip, "", at, at+ms(2))
		}
		at += ms(9)
	}
	a.Merge(b)
	if !a.Aggregate().Equal(whole.Aggregate()) {
		t.Fatal("merged split timelines != whole timeline in aggregate")
	}
	wi, ai := whole.WindowIndexes(), a.WindowIndexes()
	if len(wi) != len(ai) {
		t.Fatalf("window sets differ: %v vs %v", wi, ai)
	}
	for n := range wi {
		if wi[n] != ai[n] {
			t.Fatalf("window sets differ: %v vs %v", wi, ai)
		}
		wr, ar := whole.Row(wi[n]), a.Row(ai[n])
		if wr != ar {
			t.Fatalf("window %d rows differ:\nwhole:  %+v\nmerged: %+v", wi[n], wr, ar)
		}
	}
}

// sinkSwitch alternates traces between two sinks.
type sinkSwitch struct {
	n    *int
	a, b Sink
}

func (s sinkSwitch) Emit(tr *Trace) {
	if *s.n%2 == 0 {
		s.a.Emit(tr)
	} else {
		s.b.Emit(tr)
	}
	*s.n++
}

func TestTimelineMergeWidthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("merging mismatched widths must panic")
		}
	}()
	NewTimeline("a", time.Second).Merge(NewTimeline("a", 2*time.Second))
}

func TestTimelineMarksSorted(t *testing.T) {
	tl := NewTimeline("cdb1", time.Second)
	tl.Mark(ms(500), "sweep", "conservation", true)
	tl.Mark(ms(100), "chaos", "disk-stall rw", true)
	tl.Mark(ms(500), "anomaly", "p99", false)
	marks := tl.Marks()
	if len(marks) != 3 {
		t.Fatalf("marks = %d", len(marks))
	}
	if marks[0].At != ms(100) || marks[1].Kind != "anomaly" || marks[2].Kind != "sweep" {
		t.Fatalf("marks out of order: %+v", marks)
	}
	if !marks[2].Pass || marks[1].Pass {
		t.Fatal("mark Pass flags lost")
	}
}

func TestTimelineAnomalies(t *testing.T) {
	width := time.Second
	tl := NewTimeline("cdb3", width)
	fill := func(win int, commits int, lat time.Duration, outcome string) {
		base := time.Duration(win) * width
		for i := 0; i < commits; i++ {
			end := base + ms(10) + time.Duration(i)*time.Millisecond/4
			emitTxn(tl, "T1", end-lat, end, outcome)
		}
	}
	// Windows 0-2: healthy baseline. Window 3: p99 regression (latency
	// 10x). Window 4: healthy. Window 5: throughput collapse (88 -> 11).
	// Window 6: healthy. Window 7: blackout (attempts, zero commits).
	// Window 8: healthy again.
	for _, w := range []int{0, 1, 2, 4, 6, 8} {
		fill(w, 88, ms(5), "commit")
	}
	fill(3, 88, ms(50), "commit")
	fill(5, 11, ms(5), "commit")
	fill(7, 30, ms(5), "error")

	got := tl.Anomalies(AnomalyConfig{})
	type short struct {
		Window int
		Kind   string
	}
	var gotShort []short
	for _, a := range got {
		gotShort = append(gotShort, short{a.Window, a.Kind})
		if a.At != time.Duration(a.Window)*width {
			t.Fatalf("anomaly %+v not stamped at its window start", a)
		}
	}
	want := []short{
		{3, "p99-regression"},
		{5, "throughput-collapse"},
		{7, "unavailability"},
	}
	if len(gotShort) != len(want) {
		t.Fatalf("anomalies = %+v, want %+v", got, want)
	}
	for i := range want {
		if gotShort[i] != want[i] {
			t.Fatalf("anomalies = %+v, want %+v", gotShort, want)
		}
	}
	// Healthy timelines stay quiet: windows recovering upward (4, 6, 8)
	// never alert, and a fresh timeline with uniform traffic reports none.
	quiet := NewTimeline("cdb3", width)
	for w := 0; w < 5; w++ {
		base := time.Duration(w) * width
		for i := 0; i < 50; i++ {
			emitTxn(quiet, "T1", base+ms(i), base+ms(i+5), "commit")
		}
	}
	if as := quiet.Anomalies(AnomalyConfig{}); len(as) != 0 {
		t.Fatalf("healthy timeline reported anomalies: %+v", as)
	}
}
