package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

func TestHistogramBucketRoundTrip(t *testing.T) {
	// bucketLow(bucketOf(d)) must be the largest bucket lower bound <= d,
	// and bucketOf must be monotone non-decreasing in d.
	prev := -1
	for _, d := range []time.Duration{
		0, 1, 15, 16, 17, 31, 32, 100, time.Microsecond, 1023, 1024,
		time.Millisecond, time.Second, time.Hour,
		time.Duration(1<<62) + 12345,
	} {
		i := bucketOf(d)
		if lo := bucketLow(i); lo > d {
			t.Fatalf("bucketLow(bucketOf(%v)) = %v > %v", d, lo, d)
		}
		if i < prev {
			t.Fatalf("bucketOf not monotone at %v: %d < %d", d, i, prev)
		}
		prev = i
	}
}

func TestHistogramQuantilesAndClamping(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Count() != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	for i := 1; i <= 100; i++ {
		h.Add(ms(i))
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Quantile(0); got != ms(1) {
		t.Fatalf("p0 = %v, want exact min 1ms", got)
	}
	if got := h.Quantile(1); got != ms(100) {
		t.Fatalf("p100 = %v, want exact max 100ms", got)
	}
	// Bucketed p50 must land within one sub-bucket of the true median: the
	// log-linear layout guarantees relative error below 1/16.
	p50 := h.Quantile(0.5)
	if p50 < ms(47) || p50 > ms(53) {
		t.Fatalf("p50 = %v, want ~50ms (within bucket resolution)", p50)
	}
	if got := h.Mean(); got != ms(101)/2 {
		t.Fatalf("mean = %v, want 50.5ms", got)
	}
	h.Add(-time.Second) // negative clamps to zero
	if got := h.Quantile(0); got != 0 {
		t.Fatalf("p0 after negative add = %v, want 0", got)
	}
}

func TestHistogramMergeEqualsCombined(t *testing.T) {
	var a, b, both Histogram
	for i := 1; i <= 50; i++ {
		a.Add(ms(i))
		both.Add(ms(i))
	}
	for i := 51; i <= 100; i++ {
		b.Add(ms(i))
		both.Add(ms(i))
	}
	a.Merge(&b)
	if a.Count() != both.Count() || a.Sum() != both.Sum() {
		t.Fatalf("merge count/sum = %d/%v, want %d/%v", a.Count(), a.Sum(), both.Count(), both.Sum())
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.95, 0.99, 1} {
		if a.Quantile(q) != both.Quantile(q) {
			t.Fatalf("merge Quantile(%v) = %v, combined = %v", q, a.Quantile(q), both.Quantile(q))
		}
	}
	// Merging an empty histogram is a no-op.
	var empty Histogram
	before := a.Count()
	a.Merge(&empty)
	a.Merge(nil)
	if a.Count() != before {
		t.Fatal("merging empty/nil changed the histogram")
	}
}

func TestHistogramMergeEdgeCases(t *testing.T) {
	// Merging a zero-value histogram into a populated one must not clobber
	// min: the empty histogram's min field is 0, which is NOT a sample.
	var a Histogram
	a.Add(ms(10))
	a.Add(ms(20))
	var empty Histogram
	a.Merge(&empty)
	if a.Min() != ms(10) || a.Max() != ms(20) || a.Count() != 2 {
		t.Fatalf("merge(empty) clobbered state: min=%v max=%v n=%d", a.Min(), a.Max(), a.Count())
	}
	a.Merge(nil)
	if a.Min() != ms(10) || a.Count() != 2 {
		t.Fatalf("merge(nil) clobbered state: min=%v n=%d", a.Min(), a.Count())
	}

	// Merging INTO a zero-value histogram must adopt the source's min/max
	// exactly — including a genuine zero-duration minimum.
	var b Histogram
	var src Histogram
	src.Add(0)
	src.Add(ms(5))
	b.Merge(&src)
	if b.Min() != 0 || b.Max() != ms(5) || b.Count() != 2 {
		t.Fatalf("merge into empty: min=%v max=%v n=%d", b.Min(), b.Max(), b.Count())
	}
	// And a source whose min is above the destination's must not lower it...
	var c Histogram
	c.Add(ms(1))
	var hi Histogram
	hi.Add(ms(100))
	c.Merge(&hi)
	if c.Min() != ms(1) || c.Max() != ms(100) {
		t.Fatalf("asymmetric merge: min=%v max=%v", c.Min(), c.Max())
	}
	// ...while a lower source min must win.
	hi.Merge(&c)
	if hi.Min() != ms(1) || hi.Max() != ms(100) {
		t.Fatalf("reverse merge: min=%v max=%v", hi.Min(), hi.Max())
	}
	// Equality is bucket-for-bucket: c and hi now differ (hi absorbed all
	// of c), but a histogram always equals a fresh replay of its samples.
	var replay Histogram
	replay.Add(ms(100))
	replay.Add(ms(1))
	replay.Add(ms(100))
	if !hi.Equal(&replay) {
		t.Fatal("hi should equal its sample-replay twin")
	}
	if hi.Equal(&c) {
		t.Fatal("hi and c differ and must not compare equal")
	}
}

func TestHistogramQuantileOnEmptyContract(t *testing.T) {
	// The explicit contract: every quantile of an empty histogram is zero —
	// including the clamped p0/p100 paths and out-of-range q. Callers render
	// "0" for dead windows rather than panicking or inventing a sentinel.
	var h Histogram
	for _, q := range []float64{-1, 0, 0.5, 0.99, 1, 2} {
		if got := h.Quantile(q); got != 0 {
			t.Fatalf("empty Quantile(%v) = %v, want 0", q, got)
		}
	}
	if h.Min() != 0 || h.Max() != 0 || h.Mean() != 0 || h.Sum() != 0 {
		t.Fatal("empty histogram accessors must all be zero")
	}
	var nilH *Histogram
	if !nilH.Equal(&h) || !h.Equal(nil) {
		t.Fatal("nil and empty histograms must compare equal")
	}
}

func TestTracerTxnLifecycle(t *testing.T) {
	var sink CountSink
	tr := NewTracer("rds", &sink)
	key := new(int) // any pointer identity works as a process key

	tr.StartTxn(key, "T1", ms(10))
	tr.SetNode(key, "rds/rw")
	tr.Record(key, KindCPU, ms(10), ms(12))
	tr.Record(key, KindWALAppend, ms(12), ms(13))
	tr.Record(key, KindCPU, ms(13), ms(13)) // zero-length: dropped
	tr.FinishTxn(key, "commit", ms(14))

	if sink.Traces != 1 || sink.Spans != 2 {
		t.Fatalf("sink saw %d traces / %d spans, want 1/2", sink.Traces, sink.Spans)
	}
	rows := tr.Agg().Rows()
	if len(rows) != 2 {
		t.Fatalf("agg rows = %d, want 2", len(rows))
	}
	if rows[0].Txn != "T1" || rows[0].Kind != KindCPU || rows[0].Count != 1 || rows[0].Total != ms(2) {
		t.Fatalf("cpu row = %+v", rows[0])
	}
	// Share: cpu 2ms of a 4ms transaction = 50%.
	if rows[0].Share != 0.5 {
		t.Fatalf("cpu share = %v, want 0.5", rows[0].Share)
	}
	txns := tr.Agg().TxnRows()
	if len(txns) != 1 || txns[0].Count != 1 || txns[0].Total != ms(4) || txns[0].Outcomes["commit"] != 1 {
		t.Fatalf("txn row = %+v", txns[0])
	}
}

func TestTracerBackgroundFallback(t *testing.T) {
	var sink CountSink
	tr := NewTracer("cdb1", &sink)
	key := new(int)

	// Record with no open trace lands on the "bg" activity.
	tr.Record(key, KindNetHop, ms(0), ms(1))
	// Named background activity.
	tr.RecordBG("checkpoint", KindCheckpointStall, "cdb1/rw", ms(5), ms(9))

	rows := tr.Agg().Rows()
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	if rows[0].Txn != "bg" || rows[0].Kind != KindNetHop {
		t.Fatalf("bg row = %+v", rows[0])
	}
	if rows[1].Txn != "checkpoint" || rows[1].Total != ms(4) {
		t.Fatalf("checkpoint row = %+v", rows[1])
	}
	// Background rows carry no share (no enclosing transaction).
	if rows[0].Share != 0 || rows[1].Share != 0 {
		t.Fatal("background spans must have zero share")
	}
	if sink.Traces != 2 {
		t.Fatalf("sink traces = %d, want 2 (one per background span)", sink.Traces)
	}
}

func TestNilTracerIsSafeAndFree(t *testing.T) {
	var tr *Tracer
	key := new(int)
	tr.StartTxn(key, "T1", 0)
	tr.SetNode(key, "n")
	tr.Record(key, KindCPU, 0, ms(1))
	tr.RecordBG("bg", KindCPU, "", 0, ms(1))
	tr.FinishTxn(key, "commit", ms(1))
	if tr.Agg() != nil || tr.SUT() != "" {
		t.Fatal("nil tracer accessors must return zero values")
	}
	allocs := testing.AllocsPerRun(100, func() {
		tr.Record(key, KindCPU, 0, ms(1))
	})
	if allocs != 0 {
		t.Fatalf("nil tracer Record allocates %v per op, want 0", allocs)
	}
}

func TestJSONLSinkFormat(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	tr := NewTracer("cdb3", sink)
	key := new(int)
	tr.StartTxn(key, "T2", ms(1))
	tr.SetNode(key, "cdb3/rw")
	tr.Record(key, KindLockWait, ms(1), ms(3))
	tr.FinishTxn(key, "commit", ms(4))
	if err := sink.Err(); err != nil {
		t.Fatal(err)
	}

	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 1 {
		t.Fatalf("lines = %d, want 1", len(lines))
	}
	var got struct {
		ID      uint64  `json:"id"`
		SUT     string  `json:"sut"`
		Txn     string  `json:"txn"`
		Node    string  `json:"node"`
		Start   float64 `json:"start_us"`
		End     float64 `json:"end_us"`
		Outcome string  `json:"outcome"`
		Spans   []struct {
			Kind    string  `json:"kind"`
			StartUS float64 `json:"start_us"`
			EndUS   float64 `json:"end_us"`
		} `json:"spans"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &got); err != nil {
		t.Fatalf("line is not valid JSON: %v", err)
	}
	if got.ID != 1 || got.SUT != "cdb3" || got.Txn != "T2" || got.Node != "cdb3/rw" || got.Outcome != "commit" {
		t.Fatalf("trace line = %+v", got)
	}
	if got.Start != 1000 || got.End != 4000 {
		t.Fatalf("times = %v..%v µs, want 1000..4000", got.Start, got.End)
	}
	if len(got.Spans) != 1 || got.Spans[0].Kind != "lock-wait" || got.Spans[0].StartUS != 1000 || got.Spans[0].EndUS != 3000 {
		t.Fatalf("spans = %+v", got.Spans)
	}
}

func TestWritePrometheusDeterministicAndParsable(t *testing.T) {
	build := func() *StageAgg {
		a := NewStageAgg("rds")
		// Insert in scrambled order; output must still be sorted.
		a.AddSpan("T2", KindPageRead, ms(3))
		a.AddSpan("T1", KindCPU, ms(1))
		a.AddSpan("T1", KindCPU, ms(2))
		tr := &Trace{Txn: "T1", Start: 0, End: ms(5), Outcome: "commit"}
		a.addTrace(tr)
		a.addTrace(&Trace{Txn: "T2", Start: 0, End: ms(7), Outcome: "error"})
		return a
	}
	var b1, b2 bytes.Buffer
	if err := WritePrometheus(&b1, build()); err != nil {
		t.Fatal(err)
	}
	if err := WritePrometheus(&b2, build()); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Fatal("two renders of the same aggregation differ")
	}
	out := b1.String()
	for _, want := range []string{
		`cloudybench_span_virtual_seconds{sut="rds",txn="T1",kind="cpu",quantile="0.5"}`,
		`cloudybench_span_virtual_seconds_count{sut="rds",txn="T1",kind="cpu"} 2`,
		`cloudybench_txn_virtual_seconds_count{sut="rds",txn="T2"} 1`,
		`cloudybench_txn_outcomes_total{sut="rds",txn="T1",outcome="commit"} 1`,
		`# TYPE cloudybench_span_virtual_seconds summary`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("snapshot missing %q\n%s", want, out)
		}
	}
	// Every non-comment line must be "name{labels} value".
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.Contains(line, "} ") || !strings.HasPrefix(line, "cloudybench_") {
			t.Fatalf("malformed exposition line: %q", line)
		}
	}
}

func TestStageAggMerge(t *testing.T) {
	a := NewStageAgg("cdb2")
	b := NewStageAgg("cdb2")
	a.AddSpan("T1", KindCPU, ms(1))
	b.AddSpan("T1", KindCPU, ms(3))
	b.AddSpan("T3", KindPageRead, ms(2))
	b.addTrace(&Trace{Txn: "T3", Start: 0, End: ms(2), Outcome: "commit"})
	a.Merge(b)
	rows := a.Rows()
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	if rows[0].Count != 2 || rows[0].Total != ms(4) {
		t.Fatalf("merged cpu row = %+v", rows[0])
	}
	if got := a.TxnRows(); len(got) != 1 || got[0].Outcomes["commit"] != 1 {
		t.Fatalf("merged txn rows = %+v", got)
	}
}
