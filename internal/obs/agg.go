package obs

import (
	"sort"
	"time"
)

// stageKey indexes one stage accumulator: a transaction type (or background
// activity) crossed with a span kind.
type stageKey struct {
	txn  string
	kind Kind
}

// txnAgg accumulates one transaction type's end-to-end latencies and
// outcomes.
type txnAgg struct {
	hist     Histogram
	outcomes map[string]int64
}

// StageAgg is the per-(SUT, TxnType, span-kind) stage-breakdown
// accumulator: a duration histogram per stage plus end-to-end transaction
// histograms, the data behind the "virtual flame" table and the Prometheus
// snapshot. All state is integer-bucketed and keyed deterministically, so
// two runs of the same seed aggregate to identical values regardless of
// GOMAXPROCS.
type StageAgg struct {
	sut   string
	spans map[stageKey]*Histogram
	txns  map[string]*txnAgg
}

// NewStageAgg returns an empty aggregation for the given SUT label.
func NewStageAgg(sut string) *StageAgg {
	return &StageAgg{
		sut:   sut,
		spans: make(map[stageKey]*Histogram),
		txns:  make(map[string]*txnAgg),
	}
}

// SUT returns the aggregation's system-under-test label.
func (a *StageAgg) SUT() string { return a.sut }

func (a *StageAgg) addSpan(txn string, kind Kind, d time.Duration) {
	k := stageKey{txn: txn, kind: kind}
	h := a.spans[k]
	if h == nil {
		h = &Histogram{}
		a.spans[k] = h
	}
	h.Add(d)
}

func (a *StageAgg) addTrace(tr *Trace) {
	t := a.txns[tr.Txn]
	if t == nil {
		t = &txnAgg{outcomes: make(map[string]int64)}
		a.txns[tr.Txn] = t
	}
	t.hist.Add(tr.Duration())
	t.outcomes[tr.Outcome]++
}

// AddSpan records one span duration directly (tests and external feeders).
func (a *StageAgg) AddSpan(txn string, kind Kind, d time.Duration) {
	a.addSpan(txn, kind, d)
}

// Merge folds o into a stage-for-stage (e.g. combining replicas' tracers).
func (a *StageAgg) Merge(o *StageAgg) {
	if o == nil {
		return
	}
	for k, h := range o.spans {
		dst := a.spans[k]
		if dst == nil {
			dst = &Histogram{}
			a.spans[k] = dst
		}
		dst.Merge(h)
	}
	for txn, t := range o.txns {
		dst := a.txns[txn]
		if dst == nil {
			dst = &txnAgg{outcomes: make(map[string]int64)}
			a.txns[txn] = dst
		}
		dst.hist.Merge(&t.hist)
		for o, n := range t.outcomes {
			dst.outcomes[o] += n
		}
	}
}

// Equal reports whether two aggregations hold identical state: the same
// (txn, kind) span histograms bucket-for-bucket and the same end-to-end
// transaction histograms and outcome counts. SUT labels are not compared —
// equality is about the recorded data, not the name on the folder.
func (a *StageAgg) Equal(o *StageAgg) bool {
	if a == nil || o == nil {
		return a == nil && o == nil
	}
	if len(a.spans) != len(o.spans) || len(a.txns) != len(o.txns) {
		return false
	}
	for k, h := range a.spans {
		if !h.Equal(o.spans[k]) {
			return false
		}
	}
	for txn, t := range a.txns {
		ot := o.txns[txn]
		if ot == nil || !t.hist.Equal(&ot.hist) {
			return false
		}
		if len(t.outcomes) != len(ot.outcomes) {
			return false
		}
		for oc, n := range t.outcomes {
			if ot.outcomes[oc] != n {
				return false
			}
		}
	}
	return true
}

// StageRow is one rendered line of the stage breakdown: how much of a
// transaction type's virtual time one span kind consumed.
type StageRow struct {
	SUT   string
	Txn   string
	Kind  Kind
	Count int64
	Total time.Duration
	// Share is Total divided by the transaction type's summed end-to-end
	// virtual time (zero for background activities, which have no
	// transaction total to take a share of). Shares of nested spans
	// overlap, so a column can exceed its parent and rows need not sum
	// to 100%.
	Share         float64
	P50, P95, P99 time.Duration
}

// TxnRow is one transaction type's end-to-end latency summary.
type TxnRow struct {
	SUT           string
	Txn           string
	Count         int64
	Total         time.Duration
	P50, P95, P99 time.Duration
	Outcomes      map[string]int64
}

// Rows returns the stage breakdown sorted by (txn, kind) — deterministic
// render order.
func (a *StageAgg) Rows() []StageRow {
	keys := make([]stageKey, 0, len(a.spans))
	for k := range a.spans {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].txn != keys[j].txn {
			return keys[i].txn < keys[j].txn
		}
		return keys[i].kind < keys[j].kind
	})
	out := make([]StageRow, 0, len(keys))
	for _, k := range keys {
		h := a.spans[k]
		row := StageRow{
			SUT: a.sut, Txn: k.txn, Kind: k.kind,
			Count: h.Count(), Total: h.Sum(),
			P50: h.Quantile(0.50), P95: h.Quantile(0.95), P99: h.Quantile(0.99),
		}
		if t := a.txns[k.txn]; t != nil && t.hist.Sum() > 0 {
			row.Share = float64(h.Sum()) / float64(t.hist.Sum())
		}
		out = append(out, row)
	}
	return out
}

// TxnRows returns the end-to-end transaction summaries sorted by txn label.
func (a *StageAgg) TxnRows() []TxnRow {
	names := make([]string, 0, len(a.txns))
	for n := range a.txns {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]TxnRow, 0, len(names))
	for _, n := range names {
		t := a.txns[n]
		out = append(out, TxnRow{
			SUT: a.sut, Txn: n,
			Count: t.hist.Count(), Total: t.hist.Sum(),
			P50: t.hist.Quantile(0.50), P95: t.hist.Quantile(0.95), P99: t.hist.Quantile(0.99),
			Outcomes: t.outcomes,
		})
	}
	return out
}
