// Package obs is CloudyBench's virtual-clock-native observability layer:
// per-transaction traces with typed spans opened and closed at virtual
// timestamps, deterministic stage-level aggregation, and exposition as
// JSONL span files plus a Prometheus-text-format snapshot.
//
// The package is deliberately dependency-free of the substrate it observes
// (node, netsim, storage, replication, cluster): instrumented packages hold
// a *Tracer and report spans through it, in the same spirit as the engine's
// Observer hook. Three rules keep observability from perturbing the
// simulation it measures:
//
//  1. Zero cost by default. A nil *Tracer is the off switch: every method
//     is nil-receiver safe and returns immediately, so the hot path pays
//     one predictable branch and allocates nothing (bench_test.go guards
//     this with a benchmark).
//  2. No virtual-time side effects. Recording a span never sleeps, blocks,
//     or schedules: the tracer only reads the virtual clock and appends to
//     plain Go data structures, so a run with tracing attached replays the
//     exact event order of a run without it.
//  3. Deterministic exposition. Trace IDs are assigned in the DES dispatch
//     order (which is seed-stable), histograms are integer-bucketed, and
//     every rendered view iterates keys in sorted order — identical bytes
//     across runs and GOMAXPROCS settings.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// Kind types a span: where a slice of a transaction's virtual time went.
type Kind uint8

// Span kinds, covering the request path of every SUT architecture.
const (
	KindCPU             Kind = iota // engine CPU occupancy (stretched by vCore allocation)
	KindLockWait                    // blocked on a row lock held by another transaction
	KindLatch                       // blocked on an IO-in-progress page latch
	KindPageRead                    // buffer miss: fetching a page from the backend
	KindPageWrite                   // page modification miss + dirty writeback
	KindWALAppend                   // commit durability: WAL append/ship + ack
	KindNetHop                      // wire time on a simulated network link
	KindStorageReplay               // redo replay (replica lanes, restart recovery)
	KindReplicationShip             // shipping committed records toward replicas
	KindCheckpointStall             // page IO stalled behind an active checkpoint
	KindFaultRetry                  // client backoff after a fault-rejected request
	KindBreakerOpen                 // a per-node circuit breaker held open (fail-fast window)
	KindReroute                     // a read served by a fallback node after reroute-on-open
	numKinds
)

var kindNames = [numKinds]string{
	"cpu", "lock-wait", "latch", "page-read", "page-write", "wal-append",
	"net-hop", "storage-replay", "replication-ship", "checkpoint-stall",
	"fault-retry", "breaker-open", "reroute",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind-%d", uint8(k))
}

// Kinds lists every span kind in reporting order.
func Kinds() []Kind {
	out := make([]Kind, numKinds)
	for i := range out {
		out[i] = Kind(i)
	}
	return out
}

// Span is one closed interval of virtual time attributed to a kind. Detail
// is optional context (a fail-over phase name, a fault label); hot-path
// spans leave it empty to stay allocation-light.
type Span struct {
	Kind   Kind          `json:"-"`
	Start  time.Duration `json:"start_us"`
	End    time.Duration `json:"end_us"`
	Detail string        `json:"detail,omitempty"`
}

// spanJSON is the wire form: kind as its string name, times in microseconds.
type spanJSON struct {
	Kind   string  `json:"kind"`
	Start  float64 `json:"start_us"`
	End    float64 `json:"end_us"`
	Detail string  `json:"detail,omitempty"`
}

// Trace is one transaction's (or one background activity's) span log.
type Trace struct {
	ID      uint64
	SUT     string
	Txn     string // T1..T4 label, or a background activity name
	Node    string // node that served it (set at Begin; empty for background)
	Start   time.Duration
	End     time.Duration
	Outcome string // "commit", "abort", "error" (empty for background)
	Spans   []Span
}

// Duration returns the trace's total virtual time.
func (t *Trace) Duration() time.Duration { return t.End - t.Start }

// Sink receives finished traces. Emit is called inline on simulation
// processes, so implementations must not block in virtual time (file and
// buffer writes are wall-clock side effects and are fine).
type Sink interface {
	Emit(tr *Trace)
}

// Tracer collects spans for one SUT run. Create with NewTracer and attach
// via the instrumented packages' Tracer fields; a nil *Tracer disables all
// collection at zero cost.
type Tracer struct {
	sut    string
	sink   Sink
	agg    *StageAgg
	active map[any]*Trace
	nextID uint64
}

// NewTracer returns a tracer labeling everything it records with the given
// SUT name. sink may be nil to aggregate without streaming traces.
func NewTracer(sut string, sink Sink) *Tracer {
	return &Tracer{
		sut:    sut,
		sink:   sink,
		agg:    NewStageAgg(sut),
		active: make(map[any]*Trace),
	}
}

// SUT returns the tracer's system-under-test label.
func (t *Tracer) SUT() string {
	if t == nil {
		return ""
	}
	return t.sut
}

// Agg returns the tracer's stage aggregation (nil for a nil tracer).
func (t *Tracer) Agg() *StageAgg {
	if t == nil {
		return nil
	}
	return t.agg
}

// StartTxn opens a per-transaction trace for the process identified by key
// (by convention the *sim.Proc executing it). Spans recorded under the same
// key until FinishTxn attach to this trace. The simulation kernel's
// single-runnable discipline makes the unlocked map safe.
func (t *Tracer) StartTxn(key any, txn string, at time.Duration) {
	if t == nil {
		return
	}
	t.nextID++
	t.active[key] = &Trace{ID: t.nextID, SUT: t.sut, Txn: txn, Start: at}
}

// SetNode labels the active trace with the node serving it (fail-over can
// redirect transactions mid-run, so the label is set at Begin time).
func (t *Tracer) SetNode(key any, node string) {
	if t == nil {
		return
	}
	if tr := t.active[key]; tr != nil {
		tr.Node = node
	}
}

// FinishTxn closes the process's active trace with the given outcome,
// aggregates it, and emits it to the sink.
func (t *Tracer) FinishTxn(key any, outcome string, at time.Duration) {
	if t == nil {
		return
	}
	tr := t.active[key]
	if tr == nil {
		return
	}
	delete(t.active, key)
	tr.End = at
	tr.Outcome = outcome
	t.agg.addTrace(tr)
	if t.sink != nil {
		t.sink.Emit(tr)
	}
}

// Record attributes [start, end) of virtual time to the given kind on the
// process's active trace. A process with no open trace (a checkpointer, a
// replication lane) records a background span under the activity label
// "bg". Zero-length spans are dropped.
func (t *Tracer) Record(key any, kind Kind, start, end time.Duration) {
	if t == nil {
		return
	}
	if end <= start {
		return
	}
	if tr := t.active[key]; tr != nil {
		tr.Spans = append(tr.Spans, Span{Kind: kind, Start: start, End: end})
		t.agg.addSpan(tr.Txn, kind, end-start)
		return
	}
	t.RecordBG("bg", kind, "", start, end)
}

// RecordBG records a span on a named background activity (checkpointer,
// replication, fail-over) that is not tied to any client transaction. Each
// background span is emitted as its own single-span trace.
func (t *Tracer) RecordBG(activity string, kind Kind, detail string, start, end time.Duration) {
	if t == nil {
		return
	}
	if end <= start {
		return
	}
	t.agg.addSpan(activity, kind, end-start)
	if t.sink != nil {
		t.nextID++
		t.sink.Emit(&Trace{
			ID: t.nextID, SUT: t.sut, Txn: activity, Start: start, End: end,
			Spans: []Span{{Kind: kind, Start: start, End: end, Detail: detail}},
		})
	}
}

// traceJSON is a Trace's wire form: one JSONL line, durations in
// microseconds of virtual time.
type traceJSON struct {
	ID      uint64     `json:"id"`
	SUT     string     `json:"sut"`
	Txn     string     `json:"txn"`
	Node    string     `json:"node,omitempty"`
	Start   float64    `json:"start_us"`
	End     float64    `json:"end_us"`
	Outcome string     `json:"outcome,omitempty"`
	Spans   []spanJSON `json:"spans"`
}

func usec(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// JSONLSink streams each finished trace as one JSON object per line.
type JSONLSink struct {
	w   io.Writer
	err error
}

// NewJSONLSink returns a sink writing JSON lines to w.
func NewJSONLSink(w io.Writer) *JSONLSink { return &JSONLSink{w: w} }

// Emit implements Sink.
func (s *JSONLSink) Emit(tr *Trace) {
	if s.err != nil {
		return
	}
	line := traceJSON{
		ID: tr.ID, SUT: tr.SUT, Txn: tr.Txn, Node: tr.Node,
		Start: usec(tr.Start), End: usec(tr.End), Outcome: tr.Outcome,
		Spans: make([]spanJSON, 0, len(tr.Spans)),
	}
	for _, sp := range tr.Spans {
		line.Spans = append(line.Spans, spanJSON{
			Kind: sp.Kind.String(), Start: usec(sp.Start), End: usec(sp.End),
			Detail: sp.Detail,
		})
	}
	b, err := json.Marshal(line)
	if err != nil {
		s.err = err
		return
	}
	b = append(b, '\n')
	if _, err := s.w.Write(b); err != nil {
		s.err = err
	}
}

// Err returns the first write error the sink hit, if any.
func (s *JSONLSink) Err() error { return s.err }

// MultiSink fans a trace out to several sinks.
type MultiSink []Sink

// Emit implements Sink.
func (m MultiSink) Emit(tr *Trace) {
	for _, s := range m {
		s.Emit(tr)
	}
}

// CountSink counts traces and spans without retaining them (benchmarks).
type CountSink struct {
	Traces int64
	Spans  int64
}

// Emit implements Sink.
func (c *CountSink) Emit(tr *Trace) {
	c.Traces++
	c.Spans += int64(len(tr.Spans))
}
