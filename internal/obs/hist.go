package obs

import (
	"math/bits"
	"time"
)

// Histogram bucket layout: durations below 16 ns land in one of 16 exact
// unit buckets; above that, each power of two is split into 16 linear
// sub-buckets keyed by the four bits after the leading one. The layout is
// fixed at compile time, so histograms recorded on different runs (or
// different GOMAXPROCS settings) are mergeable bucket-for-bucket and a
// given sample stream always produces identical counts — integer-only
// arithmetic, no floating-point accumulation order to diverge.
const (
	histSubBits  = 4
	histSubCount = 1 << histSubBits // 16 linear sub-buckets per power of two
	histBuckets  = (64 - (histSubBits - 1)) * histSubCount
)

// Histogram is a fixed-bucket log-linear histogram of virtual-time
// durations. The zero value is ready to use. It records every span length
// the tracer sees: bounded memory regardless of sample count, deterministic
// across runs, and mergeable across tracers (unlike a sorted reservoir, two
// histograms combine without re-ordering samples).
type Histogram struct {
	counts [histBuckets]int64
	n      int64
	sum    time.Duration
	min    time.Duration
	max    time.Duration
}

// bucketOf maps a non-negative duration to its bucket index.
func bucketOf(d time.Duration) int {
	v := uint64(d)
	if v < histSubCount {
		return int(v) // exact buckets for tiny values
	}
	exp := bits.Len64(v) - 1 // position of the leading one, >= histSubBits
	sub := (v >> (uint(exp) - histSubBits)) & (histSubCount - 1)
	return (exp-(histSubBits-1))*histSubCount + int(sub)
}

// bucketLow returns the smallest duration that maps to bucket i.
func bucketLow(i int) time.Duration {
	if i < histSubCount {
		return time.Duration(i)
	}
	exp := uint(i/histSubCount) + histSubBits - 1
	sub := uint64(i % histSubCount)
	return time.Duration(uint64(1)<<exp | sub<<(exp-histSubBits))
}

// Add records one duration. Negative durations clamp to zero.
func (h *Histogram) Add(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.counts[bucketOf(d)]++
	if h.n == 0 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	h.n++
	h.sum += d
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() int64 { return h.n }

// Min returns the smallest recorded duration (zero with no samples).
func (h *Histogram) Min() time.Duration { return h.min }

// Max returns the largest recorded duration (zero with no samples).
func (h *Histogram) Max() time.Duration { return h.max }

// Equal reports whether two histograms hold identical state
// bucket-for-bucket, including count, sum, min, and max — the equality the
// merge-vs-whole-run property tests assert. A nil histogram equals an empty
// one.
func (h *Histogram) Equal(o *Histogram) bool {
	if h == nil {
		h = &Histogram{}
	}
	if o == nil {
		o = &Histogram{}
	}
	if h.n != o.n || h.sum != o.sum || h.min != o.min || h.max != o.max {
		return false
	}
	return h.counts == o.counts
}

// Sum returns the total recorded duration.
func (h *Histogram) Sum() time.Duration { return h.sum }

// Mean returns the average duration, or zero with no samples.
func (h *Histogram) Mean() time.Duration {
	if h.n == 0 {
		return 0
	}
	return h.sum / time.Duration(h.n)
}

// Quantile returns the q-quantile (0 <= q <= 1) as the lower bound of the
// bucket holding the nearest-rank sample, clamped to the exact observed
// min/max so p0 and p100 are precise. With no samples it returns zero.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.n == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	rank := int64(q * float64(h.n))
	if rank >= h.n {
		rank = h.n - 1
	}
	var seen int64
	for i := 0; i < histBuckets; i++ {
		seen += h.counts[i]
		if seen > rank {
			v := bucketLow(i)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// Merge folds o's samples into h bucket-for-bucket.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o.n == 0 {
		return
	}
	for i := range h.counts {
		h.counts[i] += o.counts[i]
	}
	if h.n == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.n += o.n
	h.sum += o.sum
}
