package obs

import (
	"bytes"
	"strings"
	"testing"
)

// TestPrometheusLabelEscaping is the regression test for the exposition
// format's label rules: inside a label value, backslash, double quote, and
// line feed must be escaped as \\, \", and \n — and nothing else may be
// rewritten. The old renderer used Go's %q, which produced Go string
// syntax: a tab became the two characters \t (which the Prometheus parser
// rejects as an invalid escape) and a newline broke out of Go-escaping
// guarantees the format doesn't share.
func TestPrometheusLabelEscaping(t *testing.T) {
	a := NewStageAgg(`su"t\one` + "\nx")
	a.AddSpan("T\t1", KindCPU, ms(2))
	a.addTrace(&Trace{Txn: "T\t1", Start: 0, End: ms(5), Outcome: `ok"\` + "\n"})

	var b bytes.Buffer
	if err := WritePrometheus(&b, a); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	for _, want := range []string{
		// Backslash, quote, and newline escaped per the exposition format.
		`sut="su\"t\\one\nx"`,
		`outcome="ok\"\\\n"`,
		// A raw tab passes through untouched — it is a legal UTF-8 label
		// byte, not an escapable character.
		"txn=\"T\t1\"",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("snapshot missing %q:\n%s", want, out)
		}
	}
	// The Go-syntax tab escape must be gone for good.
	if strings.Contains(out, `\t`) {
		t.Fatalf("snapshot still contains Go-style \\t escapes:\n%s", out)
	}
	// No label value may contain a raw (unescaped) newline: every series
	// must stay on one line, so each line is either a comment or ends in a
	// value after a closing brace.
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.HasPrefix(line, "cloudybench_") || !strings.Contains(line, "} ") {
			t.Fatalf("raw newline leaked into a label value, splitting line %q:\n%s", line, out)
		}
	}
}

func TestEscapeLabel(t *testing.T) {
	cases := []struct{ in, want string }{
		{``, ``},
		{`plain`, `plain`},
		{`a\b`, `a\\b`},
		{`a"b`, `a\"b`},
		{"a\nb", `a\nb`},
		{"\\\"\n", `\\\"\n`},
		{"tab\there", "tab\there"}, // untouched
		{"ünïcödé", "ünïcödé"},     // untouched
	}
	for _, c := range cases {
		if got := escapeLabel(c.in); got != c.want {
			t.Errorf("escapeLabel(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}
