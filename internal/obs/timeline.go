package obs

import (
	"fmt"
	"sort"
	"time"
)

// Timeline is the longitudinal companion to StageAgg: the same mergeable
// log-linear histograms and outcome counters, bucketed into fixed-width
// windows of virtual time. It implements Sink, so attaching it to a Tracer
// costs one histogram insert per span at trace-finish time and nothing on
// the span hot path.
//
// Memory is O(windows × distinct (txn, kind) labels) — independent of how
// many transactions a run commits — which is what makes days-long soak runs
// observable without retaining days of samples. Window boundaries are pure
// integer division on the virtual clock (window i covers
// [i·width, (i+1)·width)), so two runs of the same seed fill identical
// windows regardless of GOMAXPROCS, and timelines from different runs (or
// different replicas' tracers) merge window-for-window, bucket-for-bucket.
//
// A trace lands in the window of its End time: a transaction straddling a
// boundary is attributed — spans included — to the window that observed it
// complete. That keeps every counter consistent with the per-window commit
// counts (a commit is counted where it happened) at the cost of edge spans
// leaning into the completion window; with soak windows orders of magnitude
// longer than transactions, the lean is negligible and, more importantly,
// deterministic.
type Timeline struct {
	sut     string
	width   time.Duration
	windows map[int]*timelineWindow
	marks   []Mark
}

// timelineWindow mirrors StageAgg's internals for one window of virtual
// time: per-(txn, kind) span histograms plus per-txn end-to-end histograms
// and outcome counters.
type timelineWindow struct {
	spans map[stageKey]*Histogram
	txns  map[string]*txnAgg
}

// Mark is a point event stamped onto the timeline at a virtual timestamp:
// an invariant sweep verdict, an injected fault, a detected anomaly, or any
// phase annotation the runner wants in the rendered artifact.
type Mark struct {
	At     time.Duration
	Kind   string // "sweep", "chaos", "anomaly", "phase", ...
	Detail string
	// Pass carries a sweep's verdict (true for non-judging marks).
	Pass bool
}

// NewTimeline returns an empty timeline for the given SUT label with the
// given window width. Width must be positive.
func NewTimeline(sut string, width time.Duration) *Timeline {
	if width <= 0 {
		panic(fmt.Sprintf("obs: timeline width %v must be positive", width))
	}
	return &Timeline{
		sut:     sut,
		width:   width,
		windows: make(map[int]*timelineWindow),
	}
}

// SUT returns the timeline's system-under-test label.
func (tl *Timeline) SUT() string { return tl.sut }

// Width returns the window width.
func (tl *Timeline) Width() time.Duration { return tl.width }

// WindowIndex maps a virtual timestamp to its window index.
func (tl *Timeline) WindowIndex(at time.Duration) int {
	if at < 0 {
		return 0
	}
	return int(at / tl.width)
}

// WindowStart returns the virtual start time of window i.
func (tl *Timeline) WindowStart(i int) time.Duration {
	return time.Duration(i) * tl.width
}

func (tl *Timeline) window(i int) *timelineWindow {
	w := tl.windows[i]
	if w == nil {
		w = &timelineWindow{
			spans: make(map[stageKey]*Histogram),
			txns:  make(map[string]*txnAgg),
		}
		tl.windows[i] = w
	}
	return w
}

// Emit implements Sink: the trace's end-to-end duration, outcome, and every
// span land in the window of its End time. Traces with an empty Outcome are
// background activities (RecordBG single-span traces): their spans are
// bucketed but they carry no end-to-end transaction sample, exactly
// mirroring StageAgg's split between addSpan and addTrace.
func (tl *Timeline) Emit(tr *Trace) {
	w := tl.window(tl.WindowIndex(tr.End))
	if tr.Outcome != "" {
		t := w.txns[tr.Txn]
		if t == nil {
			t = &txnAgg{outcomes: make(map[string]int64)}
			w.txns[tr.Txn] = t
		}
		t.hist.Add(tr.Duration())
		t.outcomes[tr.Outcome]++
	}
	for _, sp := range tr.Spans {
		k := stageKey{txn: tr.Txn, kind: sp.Kind}
		h := w.spans[k]
		if h == nil {
			h = &Histogram{}
			w.spans[k] = h
		}
		h.Add(sp.End - sp.Start)
	}
}

// Mark stamps a point event onto the timeline.
func (tl *Timeline) Mark(at time.Duration, kind, detail string, pass bool) {
	tl.marks = append(tl.marks, Mark{At: at, Kind: kind, Detail: detail, Pass: pass})
}

// Marks returns every stamped event sorted by (At, Kind, Detail) — the
// deterministic render order regardless of stamping order.
func (tl *Timeline) Marks() []Mark {
	out := make([]Mark, len(tl.marks))
	copy(out, tl.marks)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Detail < out[j].Detail
	})
	return out
}

// WindowIndexes returns the indexes of every populated window, sorted.
func (tl *Timeline) WindowIndexes() []int {
	out := make([]int, 0, len(tl.windows))
	for i := range tl.windows {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

// WindowRow summarizes one window: transaction outcome counts plus the
// latency quantiles of the window's merged end-to-end histogram.
type WindowRow struct {
	Index      int
	Start, End time.Duration
	// Txns counts finished transactions (all outcomes); Commits and Errors
	// split it by outcome ("commit" vs everything else).
	Txns    int64
	Commits int64
	Errors  int64
	P50     time.Duration
	P99     time.Duration
	// Throughput is commits per second of window width.
	Throughput float64
}

// Row summarizes window i (the zero WindowRow for an untouched window, so
// gaps render as explicit dead air rather than vanishing).
func (tl *Timeline) Row(i int) WindowRow {
	row := WindowRow{Index: i, Start: tl.WindowStart(i), End: tl.WindowStart(i + 1)}
	w := tl.windows[i]
	if w == nil {
		return row
	}
	var all Histogram
	for _, txn := range sortedTxnKeys(w.txns) {
		t := w.txns[txn]
		all.Merge(&t.hist)
		for _, o := range sortedOutcomeKeys(t.outcomes) {
			n := t.outcomes[o]
			row.Txns += n
			if o == "commit" {
				row.Commits += n
			} else {
				row.Errors += n
			}
		}
	}
	row.P50 = all.Quantile(0.50)
	row.P99 = all.Quantile(0.99)
	row.Throughput = float64(row.Commits) / tl.width.Seconds()
	return row
}

// Rows summarizes every window from index 0 through the last populated one,
// including empty gaps — the contiguous per-window table the soak artifact
// renders.
func (tl *Timeline) Rows() []WindowRow {
	idx := tl.WindowIndexes()
	if len(idx) == 0 {
		return nil
	}
	last := idx[len(idx)-1]
	out := make([]WindowRow, 0, last+1)
	for i := 0; i <= last; i++ {
		out = append(out, tl.Row(i))
	}
	return out
}

// Merge folds o into tl window-for-window, bucket-for-bucket, and appends
// its marks. Widths and SUT labels must match — merging timelines with
// different window widths would silently misalign every boundary.
func (tl *Timeline) Merge(o *Timeline) {
	if o == nil {
		return
	}
	if o.width != tl.width {
		panic(fmt.Sprintf("obs: merging timelines with different widths (%v vs %v)", tl.width, o.width))
	}
	for _, i := range o.WindowIndexes() {
		src := o.windows[i]
		dst := tl.window(i)
		for _, k := range sortedStageKeys(src.spans) {
			h := dst.spans[k]
			if h == nil {
				h = &Histogram{}
				dst.spans[k] = h
			}
			h.Merge(src.spans[k])
		}
		for _, txn := range sortedTxnKeys(src.txns) {
			st := src.txns[txn]
			dt := dst.txns[txn]
			if dt == nil {
				dt = &txnAgg{outcomes: make(map[string]int64)}
				dst.txns[txn] = dt
			}
			dt.hist.Merge(&st.hist)
			for _, o := range sortedOutcomeKeys(st.outcomes) {
				dt.outcomes[o] += st.outcomes[o]
			}
		}
	}
	tl.marks = append(tl.marks, o.marks...)
}

// Aggregate collapses the whole timeline into a StageAgg — the whole-run
// view. Because both structures share the same histogram buckets and keys,
// feeding the same trace stream to a Timeline and to a StageAgg (via a
// Tracer) yields Aggregate() equal to the tracer's Agg() bucket-for-bucket;
// timeline_test.go holds that as a property.
func (tl *Timeline) Aggregate() *StageAgg {
	agg := NewStageAgg(tl.sut)
	for _, i := range tl.WindowIndexes() {
		w := tl.windows[i]
		for _, k := range sortedStageKeys(w.spans) {
			h := agg.spans[k]
			if h == nil {
				h = &Histogram{}
				agg.spans[k] = h
			}
			h.Merge(w.spans[k])
		}
		for _, txn := range sortedTxnKeys(w.txns) {
			t := w.txns[txn]
			dst := agg.txns[txn]
			if dst == nil {
				dst = &txnAgg{outcomes: make(map[string]int64)}
				agg.txns[txn] = dst
			}
			dst.hist.Merge(&t.hist)
			for _, o := range sortedOutcomeKeys(t.outcomes) {
				dst.outcomes[o] += t.outcomes[o]
			}
		}
	}
	return agg
}

func sortedStageKeys(m map[stageKey]*Histogram) []stageKey {
	keys := make([]stageKey, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].txn != keys[j].txn {
			return keys[i].txn < keys[j].txn
		}
		return keys[i].kind < keys[j].kind
	})
	return keys
}

func sortedTxnKeys(m map[string]*txnAgg) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortedOutcomeKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
