package obs

import (
	"fmt"
	"time"
)

// Anomaly flags one suspicious window with the virtual timestamp of its
// start — the soak report's "something changed here" markers. Detection is
// pure integer arithmetic over the timeline's window rows, so the same
// timeline always yields the same anomalies in the same order.
type Anomaly struct {
	At     time.Duration // window start
	Window int
	Kind   string // "p99-regression", "throughput-collapse", "unavailability"
	Detail string
}

// AnomalyConfig tunes the window-over-window detectors. The zero value
// takes defaults.
type AnomalyConfig struct {
	// MinTxns is the per-window sample floor below which p99 comparisons
	// are skipped (quantiles over a handful of samples are noise, not
	// regressions). Default 20.
	MinTxns int64
	// P99Factor flags window w when p99(w) > P99Factor × p99(w-1), both
	// windows above the sample floor. Default 3 (histogram buckets are
	// ~6% wide, so a 3× jump is far outside quantization error).
	P99Factor int64
	// CollapseFactor flags window w when commits(w) × CollapseFactor <
	// commits(w-1) while w still has traffic. Default 4.
	CollapseFactor int64
	// MinCommits is the prior-window commit floor for collapse and
	// unavailability detection: a window can only collapse or black out
	// relative to a predecessor that had real traffic. Default 20.
	MinCommits int64
}

func (c AnomalyConfig) withDefaults() AnomalyConfig {
	if c.MinTxns <= 0 {
		c.MinTxns = 20
	}
	if c.P99Factor <= 0 {
		c.P99Factor = 3
	}
	if c.CollapseFactor <= 0 {
		c.CollapseFactor = 4
	}
	if c.MinCommits <= 0 {
		c.MinCommits = 20
	}
	return c
}

// Anomalies runs the window-over-window detectors across the timeline:
//
//   - unavailability: a window with zero commits after any window that had
//     at least MinCommits (the service was demonstrably up, then served
//     nothing for a full window);
//   - throughput-collapse: commits fell by more than CollapseFactor× from
//     the previous window but did not reach zero;
//   - p99-regression: the window's p99 rose by more than P99Factor× over
//     the previous window, with both windows above the sample floor.
//
// A window reports at most one anomaly, checked in the order above
// (blackout subsumes collapse subsumes a meaningless p99). Comparisons are
// against the immediately preceding window, so a slow drift never alerts —
// only step changes, which is what injected faults and real incidents look
// like.
func (tl *Timeline) Anomalies(cfg AnomalyConfig) []Anomaly {
	cfg = cfg.withDefaults()
	rows := tl.Rows()
	var out []Anomaly
	var seenTraffic bool
	for i := 1; i < len(rows); i++ {
		prev, cur := rows[i-1], rows[i]
		if prev.Commits >= cfg.MinCommits {
			seenTraffic = true
		}
		switch {
		case seenTraffic && cur.Txns > 0 && cur.Commits == 0:
			out = append(out, Anomaly{
				At: cur.Start, Window: cur.Index, Kind: "unavailability",
				Detail: fmt.Sprintf("%d attempts, 0 commits (prev window %d)", cur.Txns, prev.Commits),
			})
		case prev.Commits >= cfg.MinCommits && cur.Commits > 0 &&
			cur.Commits*cfg.CollapseFactor < prev.Commits:
			out = append(out, Anomaly{
				At: cur.Start, Window: cur.Index, Kind: "throughput-collapse",
				Detail: fmt.Sprintf("commits %d -> %d (>%dx drop)", prev.Commits, cur.Commits, cfg.CollapseFactor),
			})
		case prev.Txns >= cfg.MinTxns && cur.Txns >= cfg.MinTxns &&
			prev.P99 > 0 && cur.P99 > time.Duration(cfg.P99Factor)*prev.P99:
			out = append(out, Anomaly{
				At: cur.Start, Window: cur.Index, Kind: "p99-regression",
				Detail: fmt.Sprintf("p99 %v -> %v (>%dx)", prev.P99, cur.P99, cfg.P99Factor),
			})
		}
	}
	return out
}
