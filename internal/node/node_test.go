package node

import (
	"errors"
	"testing"
	"time"

	"cloudybench/internal/engine"
	"cloudybench/internal/netsim"
	"cloudybench/internal/sim"
	"cloudybench/internal/storage"
)

var epoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func ordersSchema() *engine.Schema {
	return &engine.Schema{
		Name: "orders",
		Cols: []engine.Column{
			{Name: "O_ID", Kind: engine.KindInt},
			{Name: "O_STATUS", Kind: engine.KindString},
		},
		KeyCols:     []int{0},
		AvgRowBytes: 64,
	}
}

func genOrder(id int64) engine.Row { return engine.Row{engine.Int(id), engine.Str("NEW")} }

func newTestNode(s *sim.Sim, vcores float64, memBytes int64, backend StorageBackend) (*Node, *engine.Table) {
	n := New(s, Config{
		Name:        "n1",
		VCores:      vcores,
		MemoryBytes: memBytes,
		OpCPU:       100 * time.Microsecond,
		TxnCPU:      50 * time.Microsecond,
	}, backend)
	tbl := n.DB.MustCreateTable(ordersSchema(), 10000, genOrder)
	return n, tbl
}

func TestNodeTxCommitAndRead(t *testing.T) {
	s := sim.New(epoch)
	n, tbl := newTestNode(s, 4, 64<<20, NullBackend{})
	var committed []storage.Record
	n.OnCommit = func(p *sim.Proc, recs []storage.Record) { committed = recs }
	s.Go("w", func(p *sim.Proc) {
		tx, err := n.Begin(p)
		if err != nil {
			t.Error(err)
			return
		}
		row, err := tx.Get(tbl, engine.IntKey(5))
		if err != nil || row[0].I != 5 {
			t.Errorf("get: %v %v", row, err)
		}
		if err := tx.Update(tbl, engine.IntKey(5), engine.Row{engine.Int(5), engine.Str("PAID")}); err != nil {
			t.Error(err)
		}
		if err := tx.Commit(); err != nil {
			t.Error(err)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(committed) != 2 {
		t.Fatalf("OnCommit saw %d records, want 2", len(committed))
	}
	reads, writes := n.PageStats()
	if reads != 2 || writes != 1 {
		t.Fatalf("page stats = %d/%d, want 2 reads (1 from write) / 1 write", reads, writes)
	}
}

func TestNodeCPUThroughputScalesWithCores(t *testing.T) {
	// 200 ops of 100µs each: 1 vCore should take ~2x as long as 2 vCores
	// with 2 concurrent workers.
	elapsed := func(vcores float64) time.Duration {
		s := sim.New(epoch)
		n, _ := newTestNode(s, vcores, 64<<20, NullBackend{})
		for w := 0; w < 2; w++ {
			s.Go("w", func(p *sim.Proc) {
				for i := 0; i < 100; i++ {
					n.ChargeCPU(p, 100*time.Microsecond)
				}
			})
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return s.Elapsed()
	}
	one, two := elapsed(1), elapsed(2)
	if two >= one {
		t.Fatalf("2 vCores (%v) not faster than 1 (%v)", two, one)
	}
	ratio := float64(one) / float64(two)
	if ratio < 1.8 || ratio > 2.2 {
		t.Fatalf("speedup = %.2f, want ~2x", ratio)
	}
}

func TestNodeFractionalCoreStretchesService(t *testing.T) {
	s := sim.New(epoch)
	n, _ := newTestNode(s, 0.5, 64<<20, NullBackend{})
	s.Go("w", func(p *sim.Proc) {
		n.ChargeCPU(p, 100*time.Microsecond)
		if got := p.Elapsed(); got != 200*time.Microsecond {
			t.Errorf("0.5 vCore service = %v, want 200µs", got)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestNodeBufferMissPaysBackend(t *testing.T) {
	s := sim.New(epoch)
	disk := NewLocalDisk(s, 10000)
	n, tbl := newTestNode(s, 4, 1<<30, disk)
	var first, second time.Duration
	s.Go("w", func(p *sim.Proc) {
		start := p.Elapsed()
		n.ReadPage(p, tbl.PageOfBase(1))
		first = p.Elapsed() - start
		start = p.Elapsed()
		n.ReadPage(p, tbl.PageOfBase(1))
		second = p.Elapsed() - start
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if first == 0 {
		t.Fatal("cold read was free")
	}
	if second != 0 {
		t.Fatalf("warm read cost %v, want free", second)
	}
}

func TestNodePausedResumesOnDemand(t *testing.T) {
	s := sim.New(epoch)
	n, tbl := newTestNode(s, 1, 64<<20, NullBackend{})
	n.SetState(Paused)
	resumeRequested := false
	n.OnResumeNeeded = func() {
		if resumeRequested {
			return
		}
		resumeRequested = true
		s.Go("resumer", func(p *sim.Proc) {
			p.Sleep(500 * time.Millisecond) // cold-start delay
			n.SetState(Running)
		})
	}
	var servedAt time.Duration
	s.Go("client", func(p *sim.Proc) {
		tx, err := n.Begin(p)
		if err != nil {
			t.Error(err)
			return
		}
		servedAt = p.Elapsed()
		tx.Get(tbl, engine.IntKey(1))
		tx.Commit()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !resumeRequested {
		t.Fatal("resume hook not invoked")
	}
	if servedAt < 500*time.Millisecond {
		t.Fatalf("served at %v, before resume completed", servedAt)
	}
}

func TestNodeDownFailsFast(t *testing.T) {
	s := sim.New(epoch)
	n, _ := newTestNode(s, 1, 64<<20, NullBackend{})
	n.SetState(Down)
	s.Go("client", func(p *sim.Proc) {
		if _, err := n.Begin(p); !errors.Is(err, ErrNodeDown) {
			t.Errorf("Begin on down node: %v", err)
		}
		if _, _, err := n.Read(p, "orders", engine.IntKey(1)); !errors.Is(err, ErrNodeDown) {
			t.Errorf("Read on down node: %v", err)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestNodeSetVCoresRecordsSeries(t *testing.T) {
	s := sim.New(epoch)
	n, _ := newTestNode(s, 2, 64<<20, NullBackend{})
	s.Go("scaler", func(p *sim.Proc) {
		p.Sleep(time.Second)
		n.SetVCores(p.Elapsed(), 4)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if n.VCores() != 4 {
		t.Fatalf("vcores = %v", n.VCores())
	}
	if got := n.Cores.At(0); got != 2 {
		t.Fatalf("cores series at 0 = %v", got)
	}
	if got := n.Cores.At(2 * time.Second); got != 4 {
		t.Fatalf("cores series at 2s = %v", got)
	}
}

func TestNodeSharedCPUPanicsOnSetVCores(t *testing.T) {
	s := sim.New(epoch)
	pool := sim.NewResource(s, 4000)
	n := New(s, Config{Name: "t", VCores: 4, MemoryBytes: 1 << 20, SharedCPU: pool,
		OpCPU: time.Microsecond, TxnCPU: time.Microsecond}, NullBackend{})
	defer func() {
		if recover() == nil {
			t.Fatal("SetVCores on shared pool did not panic")
		}
	}()
	n.SetVCores(0, 2)
}

func TestNodeMemoryResizeShrinksBuffer(t *testing.T) {
	s := sim.New(epoch)
	n, tbl := newTestNode(s, 4, 1<<30, NullBackend{})
	s.Go("w", func(p *sim.Proc) {
		for i := int64(1); i <= 1000; i += 128 {
			n.ReadPage(p, tbl.PageOfBase(i))
		}
		before := n.Buf.Len()
		n.SetMemoryBytes(p, p.Elapsed(), 2*storage.PageSize)
		if n.Buf.Len() > 2 || n.Buf.Len() >= before {
			t.Errorf("buffer len after shrink = %d (before %d)", n.Buf.Len(), before)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got := n.Mem.At(time.Hour); got >= 1 {
		t.Fatalf("mem series = %v GB after shrink", got)
	}
}

func TestCheckpointerFlushesDirtyPages(t *testing.T) {
	s := sim.New(epoch)
	disk := NewLocalDisk(s, 1000)
	n := New(s, Config{
		Name: "rds", VCores: 4, MemoryBytes: 1 << 30,
		OpCPU: time.Microsecond, TxnCPU: time.Microsecond,
		CheckpointInterval: time.Second,
	}, disk)
	tbl := n.DB.MustCreateTable(ordersSchema(), 10000, genOrder)
	s.Go("w", func(p *sim.Proc) {
		for i := int64(1); i <= 512; i += 128 {
			n.WritePage(p, tbl.PageOfBase(i))
		}
		if n.Buf.DirtyCount() == 0 {
			t.Error("no dirty pages after writes")
		}
		p.Sleep(1500 * time.Millisecond) // let one checkpoint pass
		if n.Buf.DirtyCount() != 0 {
			t.Errorf("dirty pages after checkpoint = %d", n.Buf.DirtyCount())
		}
		n.StopCheckpointer()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDisaggStoreRedoPushdownSkipsFlush(t *testing.T) {
	s := sim.New(epoch)
	link := netsim.NewLink(s, netsim.TCP, 10)
	store := &DisaggStore{
		Link: link, Store: sim.NewQueue(s, 10000),
		PageServiceTime: 200 * time.Microsecond,
		LogAckLatency:   150 * time.Microsecond,
		RedoPushdown:    true,
	}
	s.Go("w", func(p *sim.Proc) {
		start := p.Elapsed()
		store.FlushPage(p, storage.PageID{})
		if p.Elapsed() != start {
			t.Error("redo-pushdown flush cost time")
		}
		start = p.Elapsed()
		store.FetchPage(p, storage.PageID{})
		if p.Elapsed() == start {
			t.Error("disaggregated fetch was free")
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRemoteBufferTwoTier(t *testing.T) {
	s := sim.New(epoch)
	remote := storage.NewBufferPool(1000)
	rdma := netsim.NewLink(s, netsim.RDMA, 10)
	tcp := netsim.NewLink(s, netsim.TCP, 10)
	fallback := &DisaggStore{
		Link: tcp, Store: sim.NewQueue(s, 10000),
		PageServiceTime: 200 * time.Microsecond,
	}
	rb := &RemoteBuffer{Remote: remote, RDMA: rdma, Fallback: fallback}
	pg := storage.PageID{Table: 1, Num: 7}
	var coldCost, remoteCost time.Duration
	s.Go("w", func(p *sim.Proc) {
		start := p.Elapsed()
		rb.FetchPage(p, pg) // cold: falls through to storage, seeds remote
		coldCost = p.Elapsed() - start
		start = p.Elapsed()
		rb.FetchPage(p, pg) // remote hit: RDMA only
		remoteCost = p.Elapsed() - start
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if remoteCost >= coldCost {
		t.Fatalf("remote hit (%v) not cheaper than storage fetch (%v)", remoteCost, coldCost)
	}
	hits, misses := rb.RemoteStats()
	if hits != 1 || misses != 1 {
		t.Fatalf("remote stats = %d/%d", hits, misses)
	}
}

func TestLocalDiskIOPSQueueing(t *testing.T) {
	s := sim.New(epoch)
	disk := NewLocalDisk(s, 10) // 10 IOPS: each op takes 100ms of channel
	var last time.Duration
	s.Go("w", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			disk.FetchPage(p, storage.PageID{Num: uint64(i)})
		}
		last = p.Elapsed()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// 5 fetches at 10 IOPS >= 500ms of channel time.
	if last < 500*time.Millisecond {
		t.Fatalf("5 fetches at 10 IOPS took %v, want >= 500ms", last)
	}
}
