package node

import (
	"errors"
	"time"

	"cloudybench/internal/rng"
	"cloudybench/internal/sim"
)

// ErrIOFault is returned by node operations while an injected IO-error
// burst is active. Clients treat it like a transient driver error: record
// the failure, back off, and retry — the same loop they run for ErrNodeDown.
var ErrIOFault = errors.New("node: injected I/O fault")

// faultState holds the node's chaos-injection knobs. All fields are written
// by injector processes and read by request processes; the simulation's
// single-runnable discipline makes that safe without locking, and every
// decision (the error-burst coin flips included) is driven by deterministic
// inputs, so a chaos run replays identically for a given seed.
type faultState struct {
	// stallUntil gates backend page IO: fetches and flushes issued before
	// this virtual time block until it passes (a stalled disk or a
	// storage-service brownout). Buffer hits are unaffected — a stalled
	// device does not slow down cache hits.
	stallUntil time.Duration
	// extraIOLatency is added to every backend page fetch/flush while
	// non-zero (degraded device latency).
	extraIOLatency time.Duration
	// errRate is the probability that a Begin or replica Read fails with
	// ErrIOFault while the burst is active; errSrc supplies deterministic
	// coin flips.
	errRate float64
	errSrc  *rng.Source

	injected int64 // ErrIOFault count, for chaos reports
}

// InjectIOStall stalls the node's backend page IO until the given virtual
// time (absolute, per sim.Elapsed). Passing a time in the past clears the
// stall.
func (n *Node) InjectIOStall(until time.Duration) {
	n.faults.stallUntil = until
}

// SetExtraIOLatency adds d to every backend page fetch and flush (zero
// restores nominal latency).
func (n *Node) SetExtraIOLatency(d time.Duration) {
	if d < 0 {
		d = 0
	}
	n.faults.extraIOLatency = d
}

// SetIOErrorRate makes the given fraction of Begin/Read requests fail with
// ErrIOFault, using a deterministic source seeded from seed and the node
// name. A rate of zero ends the burst.
func (n *Node) SetIOErrorRate(rate float64, seed int64) {
	if rate <= 0 {
		n.faults.errRate = 0
		n.faults.errSrc = nil
		return
	}
	if rate > 1 {
		rate = 1
	}
	n.faults.errRate = rate
	if n.faults.errSrc == nil {
		n.faults.errSrc = rng.ChildOf(seed, "iofault/"+n.Name)
	}
}

// InjectedFaults returns how many requests ErrIOFault has rejected.
func (n *Node) InjectedFaults() int64 { return n.faults.injected }

// faultGate applies the stall and extra-latency faults in front of one
// backend IO operation. It must be called from the issuing process.
func (n *Node) faultGate(p *sim.Proc) {
	if until := n.faults.stallUntil; until > 0 {
		if now := p.Elapsed(); now < until {
			p.Sleep(until - now)
		}
	}
	if d := n.faults.extraIOLatency; d > 0 {
		p.Sleep(d)
	}
}

// faultReject reports whether an active IO-error burst rejects this request.
func (n *Node) faultReject() bool {
	if n.faults.errRate <= 0 || n.faults.errSrc == nil {
		return false
	}
	if n.faults.errSrc.Float64() < n.faults.errRate {
		n.faults.injected++
		return true
	}
	return false
}
