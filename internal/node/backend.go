package node

import (
	"time"

	"cloudybench/internal/netsim"
	"cloudybench/internal/sim"
	"cloudybench/internal/storage"
)

// LocalDisk is the coupled compute-storage backend (AWS RDS): pages and WAL
// live on a local NVMe volume behind an IOPS-limited channel. Dirty-page
// writebacks and checkpoints compete with foreground reads on that channel,
// which is exactly the contention the paper blames for RDS's degradation
// under heavy writes (§III-B).
type LocalDisk struct {
	IO           *sim.Queue // provisioned-IOPS channel
	ReadLatency  time.Duration
	WriteLatency time.Duration
	LogLatency   time.Duration // sequential WAL append + fsync
}

// NewLocalDisk returns a local NVMe-class backend with the given IOPS.
func NewLocalDisk(s *sim.Sim, iops float64) *LocalDisk {
	return &LocalDisk{
		IO:           sim.NewQueue(s, iops),
		ReadLatency:  100 * time.Microsecond,
		WriteLatency: 100 * time.Microsecond,
		LogLatency:   30 * time.Microsecond,
	}
}

// FetchPage implements StorageBackend: IOPS-channel queueing and device
// read latency folded into a single scheduler block.
func (d *LocalDisk) FetchPage(p *sim.Proc, pg storage.PageID) {
	p.Sleep(d.IO.Reserve(1) + d.ReadLatency)
}

// FlushPage implements StorageBackend.
func (d *LocalDisk) FlushPage(p *sim.Proc, pg storage.PageID) {
	p.Sleep(d.IO.Reserve(1) + d.WriteLatency)
}

// WriteLog implements StorageBackend. WAL appends are sequential and
// group-committed, so they pay fsync latency but do not consume random
// IOPS from the channel.
func (d *LocalDisk) WriteLog(p *sim.Proc, bytes int) {
	p.Sleep(d.LogLatency)
}

// DisaggStore is the storage-disaggregation backend (CDB1/CDB2/CDB3): page
// fetches cross the network to a shared storage service, and commits ship
// redo to the log tier. With RedoPushdown (Aurora-style "the log is the
// database"), dirty pages are never written back by compute — the storage
// tier materializes them from the log.
type DisaggStore struct {
	Link *netsim.Link
	// Store is the storage service's IOPS channel, shared by all compute
	// nodes of the cluster.
	Store *sim.Queue
	// PageServiceTime is the storage-side cost of serving one page.
	PageServiceTime time.Duration
	// LogAckLatency is the extra durability wait at commit beyond the
	// network (quorum acknowledgement across storage replicas).
	LogAckLatency time.Duration
	// RedoPushdown makes FlushPage free.
	RedoPushdown bool
}

// FetchPage implements StorageBackend: request out, storage service work,
// page back — folded into a single virtual-time wait.
func (d *DisaggStore) FetchPage(p *sim.Proc, pg storage.PageID) {
	delay := d.Link.Reserve(128) + d.Store.Reserve(1) + d.PageServiceTime + d.Link.Reserve(storage.PageSize)
	p.Sleep(delay)
}

// FlushPage implements StorageBackend.
func (d *DisaggStore) FlushPage(p *sim.Proc, pg storage.PageID) {
	if d.RedoPushdown {
		return
	}
	d.Link.Send(p, storage.PageSize)
	d.Store.Wait(p, 1)
}

// WriteLog implements StorageBackend: redo ships to the log tier, which is
// separate from the page store, so only the wire and the quorum ack are
// paid.
func (d *DisaggStore) WriteLog(p *sim.Proc, bytes int) {
	d.Link.Send(p, bytes)
	p.Sleep(d.LogAckLatency)
}

// RemoteBuffer is the memory-disaggregation backend (CDB4): local buffer
// misses first probe a shared remote buffer pool over RDMA; only remote
// misses fall through to the storage service. Dirty pages are written to
// the remote pool (cheap RDMA) rather than to storage; commits ship redo
// over RDMA.
type RemoteBuffer struct {
	Remote   *storage.BufferPool // shared across the cluster's nodes
	RDMA     *netsim.Link
	Fallback StorageBackend // storage tier beneath the remote pool

	remoteHits, remoteMisses int64
}

// FetchPage implements StorageBackend.
func (r *RemoteBuffer) FetchPage(p *sim.Proc, pg storage.PageID) {
	// One-sided RDMA read: small request, page-sized response.
	if r.Remote.Pin(pg) {
		r.remoteHits++
		p.Sleep(r.RDMA.Reserve(64) + r.RDMA.Reserve(storage.PageSize))
		return
	}
	r.remoteMisses++
	p.Sleep(r.RDMA.Reserve(64))
	r.Fallback.FetchPage(p, pg)
	r.Remote.Admit(pg)
	p.Sleep(r.RDMA.Reserve(storage.PageSize))
}

// FlushPage implements StorageBackend: dirty pages land in the remote pool.
func (r *RemoteBuffer) FlushPage(p *sim.Proc, pg storage.PageID) {
	r.RDMA.Send(p, storage.PageSize)
	r.Remote.Admit(pg)
}

// WriteLog implements StorageBackend: redo ships over RDMA to the log
// service, then the fallback's durability applies.
func (r *RemoteBuffer) WriteLog(p *sim.Proc, bytes int) {
	r.RDMA.Send(p, bytes)
	r.Fallback.WriteLog(p, bytes)
}

// RemoteStats returns remote-pool hit/miss counts.
func (r *RemoteBuffer) RemoteStats() (hits, misses int64) {
	return r.remoteHits, r.remoteMisses
}

// NullBackend is a zero-cost backend for pure-logic tests.
type NullBackend struct{}

// FetchPage implements StorageBackend.
func (NullBackend) FetchPage(*sim.Proc, storage.PageID) {}

// FlushPage implements StorageBackend.
func (NullBackend) FlushPage(*sim.Proc, storage.PageID) {}

// WriteLog implements StorageBackend.
func (NullBackend) WriteLog(*sim.Proc, int) {}
