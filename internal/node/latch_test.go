package node

import (
	"testing"
	"time"

	"cloudybench/internal/engine"
	"cloudybench/internal/sim"
	"cloudybench/internal/storage"
)

// countingBackend counts fetches and charges a fixed latency.
type countingBackend struct {
	fetches int
	latency time.Duration
}

func (c *countingBackend) FetchPage(p *sim.Proc, pg storage.PageID) {
	c.fetches++
	p.Sleep(c.latency)
}
func (c *countingBackend) FlushPage(*sim.Proc, storage.PageID) {}
func (c *countingBackend) WriteLog(*sim.Proc, int)             {}

func TestReadPageSingleFlightsConcurrentMisses(t *testing.T) {
	s := sim.New(epoch)
	backend := &countingBackend{latency: 10 * time.Millisecond}
	n := New(s, Config{
		Name: "n", VCores: 4, MemoryBytes: 1 << 30,
		OpCPU: time.Microsecond, TxnCPU: time.Microsecond,
	}, backend)
	pg := storage.PageID{Table: 1, Num: 7}
	const workers = 50
	var done int
	for i := 0; i < workers; i++ {
		s.Go("r", func(p *sim.Proc) {
			n.ReadPage(p, pg)
			done++
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if done != workers {
		t.Fatalf("done = %d", done)
	}
	// One fetch serves all fifty concurrent misses.
	if backend.fetches != 1 {
		t.Fatalf("fetches = %d, want 1 (single-flight)", backend.fetches)
	}
	// Everyone waited roughly one fetch latency, not fifty.
	if got := s.Elapsed(); got > 15*time.Millisecond {
		t.Fatalf("makespan = %v, want ~10ms", got)
	}
}

func TestReadPageDistinctPagesFetchIndependently(t *testing.T) {
	s := sim.New(epoch)
	backend := &countingBackend{latency: time.Millisecond}
	n := New(s, Config{
		Name: "n", VCores: 4, MemoryBytes: 1 << 30,
		OpCPU: time.Microsecond, TxnCPU: time.Microsecond,
	}, backend)
	for i := 0; i < 8; i++ {
		pg := storage.PageID{Table: 1, Num: uint64(i)}
		s.Go("r", func(p *sim.Proc) { n.ReadPage(p, pg) })
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if backend.fetches != 8 {
		t.Fatalf("fetches = %d, want 8", backend.fetches)
	}
}

func TestGetForUpdateSerializesWriters(t *testing.T) {
	s := sim.New(epoch)
	n, tbl := newTestNode(s, 4, 64<<20, NullBackend{})
	// Two writers bump the same counter row concurrently via
	// GetForUpdate; both increments must land (no lost update, no
	// upgrade deadlock).
	for i := 0; i < 2; i++ {
		s.Go("w", func(p *sim.Proc) {
			tx, err := n.Begin(p)
			if err != nil {
				t.Error(err)
				return
			}
			row, err := tx.GetForUpdate(tbl, engine.IntKey(5))
			if err != nil {
				t.Error(err)
				return
			}
			upd := row.Clone()
			upd[1] = engine.Str(upd[1].S + "+")
			p.Sleep(time.Millisecond) // hold the X lock across time
			if err := tx.Update(tbl, engine.IntKey(5), upd); err != nil {
				t.Error(err)
				return
			}
			if err := tx.Commit(); err != nil {
				t.Error(err)
			}
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	row, _, _ := tbl.Get(engine.IntKey(5))
	if row[1].S != "NEW++" {
		t.Fatalf("status = %q, want NEW++ (both increments)", row[1].S)
	}
	if _, timeouts := n.DB.Locks().Stats(); timeouts != 0 {
		t.Fatalf("lock timeouts = %d (upgrade deadlock?)", timeouts)
	}
}
