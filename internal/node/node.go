// Package node models one database compute node: an engine instance plus
// the resource envelope it executes in — a vCore pool, a buffer pool, and
// an architecture-specific storage backend that prices page misses, dirty
// writebacks, and commit durability.
//
// The same Node type serves every SUT architecture; what differs between
// AWS RDS and the four CDBs is the StorageBackend wiring, whether the CPU
// pool is owned or shared (elastic-pool multi-tenancy), and the autoscaler
// driving SetVCores. Performance differences in the experiments emerge from
// these wirings rather than from per-SUT special cases.
package node

import (
	"errors"
	"time"

	"cloudybench/internal/engine"
	"cloudybench/internal/meter"
	"cloudybench/internal/obs"
	"cloudybench/internal/sim"
	"cloudybench/internal/storage"
)

// State is the node lifecycle state.
type State int

// Node states.
const (
	Running State = iota
	// Paused is the scaled-to-zero state (CDB3's pause-and-resume): no
	// resources are allocated; the first arriving request triggers resume.
	Paused
	// Down is a failed or restarting node: requests error immediately.
	Down
	// Recovering accepts no work while the node replays logs after restart.
	Recovering
)

func (s State) String() string {
	switch s {
	case Running:
		return "running"
	case Paused:
		return "paused"
	case Down:
		return "down"
	default:
		return "recovering"
	}
}

// ErrNodeDown is returned for requests to a failed node.
var ErrNodeDown = errors.New("node: node is down")

// StorageBackend prices the physical paths of one architecture.
type StorageBackend interface {
	// FetchPage pays the cost of bringing a page into the local buffer
	// after a miss (local disk, disaggregated store, or remote buffer).
	FetchPage(p *sim.Proc, pg storage.PageID)
	// FlushPage pays the cost of writing back a dirty page (ARIES-style
	// engines; log-is-the-database architectures make this free).
	FlushPage(p *sim.Proc, pg storage.PageID)
	// WriteLog pays commit durability for the given WAL bytes.
	WriteLog(p *sim.Proc, bytes int)
}

// MilliPerCore converts vCores to the milli-vCore units of the CPU pool.
const MilliPerCore = 1000

// Config sets a node's resource envelope and service-cost constants.
type Config struct {
	Name        string
	VCores      float64 // initial allocation
	MemoryBytes int64   // buffer memory

	// OpCPU is the CPU service time of one row operation at full-core
	// speed; TxnCPU is the fixed per-transaction overhead (parse, plan,
	// commit bookkeeping).
	OpCPU  time.Duration
	TxnCPU time.Duration

	// SharedCPU, if non-nil, makes the node draw from an external pool
	// (elastic-pool multi-tenancy) instead of owning one.
	SharedCPU *sim.Resource

	// CheckpointInterval, if positive, runs a periodic checkpoint that
	// flushes all dirty pages through the backend and logs a fuzzy
	// checkpoint record bounding crash-recovery redo (ARIES engines). Zero
	// disables checkpointing (redo-pushdown architectures).
	CheckpointInterval time.Duration

	// Recovery prices this architecture's crash-recovery path.
	Recovery RecoveryConfig

	// Trace, if non-nil, records stage-level spans (CPU, lock waits, page
	// IO, WAL appends) on the observability tracer. Nil disables tracing
	// at zero cost on the request hot path.
	Trace *obs.Tracer
}

// Node is one compute node.
type Node struct {
	S       *sim.Sim
	Name    string
	DB      *engine.DB
	Buf     *storage.BufferPool
	Backend StorageBackend

	cpu      *sim.Resource
	ownsCPU  bool
	opCPU    time.Duration
	txnCPU   time.Duration
	memBytes int64

	state     State
	stateCond *sim.Cond
	// OnResumeNeeded is invoked (if set) when a request arrives at a
	// Paused node; the autoscaler is expected to eventually Resume it.
	OnResumeNeeded func()
	// OnCommit is invoked with the committed WAL records (replication).
	OnCommit func(p *sim.Proc, recs []storage.Record)

	// Cores tracks allocated vCores over virtual time for cost accounting
	// and Figure 9's allocation timeline; Mem tracks buffer gigabytes.
	Cores *meter.Series
	Mem   *meter.Series

	// Trace is the observability tracer (nil = tracing off). It is read
	// on every request-path operation, so instrumented methods snapshot it
	// once and branch on nil rather than calling through.
	Trace *obs.Tracer

	checkpointEvery time.Duration
	stopCheckpoint  bool
	// checkpointActive marks the window in which the checkpointer is
	// flushing: foreground page IO issued inside it is attributed to
	// checkpoint-stall rather than page-read/page-write, which is what
	// makes checkpoint interference visible in the stage breakdown.
	checkpointActive bool

	ioLatch               map[storage.PageID]*sim.Cond
	pageReads, pageWrites int64

	faults faultState

	// fence is the deployment-wide write lease (nil = no fencing); epoch is
	// the lease epoch this node last held. A node whose epoch is stale has
	// its write commits refused by the fence (ErrFenced) — the split-brain
	// guard during partitions.
	fence *storage.Fence
	epoch uint64

	// RebuildSchema recreates the catalog (tables, base rows, secondary
	// indexes) on a fresh engine instance; crash recovery needs it because
	// a rebooted process re-runs deterministic schema setup before log
	// replay. Set by the deployment layer after dataset creation.
	RebuildSchema func(db *engine.DB)

	recovery RecoveryConfig
	// crashEpoch counts crashes; a Tx begun before a crash carries the old
	// value and is refused at commit (its engine txn died with the node).
	crashEpoch uint64
	crashed    bool
	crashSnap  storage.LogSnapshot
	crashTail  []byte
}

// New creates a node with its own engine database.
func New(s *sim.Sim, cfg Config, backend StorageBackend) *Node {
	n := &Node{
		S:        s,
		Name:     cfg.Name,
		DB:       engine.NewDB(s),
		Buf:      storage.NewBufferPoolBytes(cfg.MemoryBytes),
		Backend:  backend,
		opCPU:    cfg.OpCPU,
		txnCPU:   cfg.TxnCPU,
		memBytes: cfg.MemoryBytes,
		state:    Running,
		Cores:    meter.NewSeries(cfg.VCores),
		Mem:      meter.NewSeries(float64(cfg.MemoryBytes) / (1 << 30)),
		ioLatch:  make(map[storage.PageID]*sim.Cond),
		Trace:    cfg.Trace,
	}
	n.stateCond = sim.NewCond(s)
	if tr := cfg.Trace; tr != nil {
		// Adapt the engine's lock-wait hook onto the tracer: the engine
		// stays ignorant of obs, the tracer sees every blocked acquisition.
		n.DB.Locks().OnWait = func(p *sim.Proc, txn uint64, key string, start, end time.Duration) {
			tr.Record(p, obs.KindLockWait, start, end)
		}
	}
	if cfg.SharedCPU != nil {
		n.cpu = cfg.SharedCPU
	} else {
		n.cpu = sim.NewResource(s, int64(cfg.VCores*MilliPerCore))
		n.ownsCPU = true
	}
	n.recovery = cfg.Recovery
	n.checkpointEvery = cfg.CheckpointInterval
	if n.checkpointEvery > 0 {
		s.Go(n.Name+"/checkpointer", n.checkpointLoop)
	}
	return n
}

// CPU exposes the vCore pool (autoscalers and tests).
func (n *Node) CPU() *sim.Resource { return n.cpu }

// State returns the current lifecycle state.
func (n *Node) State() State { return n.state }

// SetState transitions the node, waking any requests waiting on resume.
func (n *Node) SetState(st State) {
	n.state = st
	n.stateCond.Broadcast()
}

// VCores returns the currently allocated vCores.
func (n *Node) VCores() float64 {
	return float64(n.cpu.Capacity()) / MilliPerCore
}

// SetVCores resizes the node's own CPU pool and records the step for cost
// accounting. It must not be called on nodes drawing from a shared pool.
func (n *Node) SetVCores(at time.Duration, v float64) {
	if !n.ownsCPU {
		panic("node: SetVCores on shared-pool node")
	}
	n.cpu.SetCapacity(int64(v * MilliPerCore))
	n.Cores.Set(at, v)
}

// SetMemoryBytes resizes the buffer pool (serverless memory scaling),
// flushing dirty pages evicted by a shrink through the backend.
func (n *Node) SetMemoryBytes(p *sim.Proc, at time.Duration, bytes int64) {
	n.memBytes = bytes
	dirty := n.Buf.Resize(int(bytes / storage.PageSize))
	for i := 0; i < dirty; i++ {
		n.Backend.FlushPage(p, storage.PageID{})
	}
	n.Mem.Set(at, float64(bytes)/(1<<30))
}

// MemoryBytes returns the configured buffer memory.
func (n *Node) MemoryBytes() int64 { return n.memBytes }

// PageStats returns cumulative page read/write counts.
func (n *Node) PageStats() (reads, writes int64) { return n.pageReads, n.pageWrites }

// AwaitRunning blocks until the node is Running. Paused nodes trigger the
// resume hook; Down/Recovering nodes fail immediately (clients see an
// unavailable service during fail-over, as in the paper's phase-one
// measurement).
func (n *Node) AwaitRunning(p *sim.Proc) error {
	for {
		switch n.state {
		case Running:
			return nil
		case Down, Recovering:
			return ErrNodeDown
		case Paused:
			if n.OnResumeNeeded != nil {
				n.OnResumeNeeded()
			}
			n.stateCond.Wait(p)
		}
	}
}

// ChargeCPU occupies the node's CPU for work of the given full-core service
// time. Allocations below one core stretch service time proportionally
// (half a vCore runs at half speed); multi-core pools serve that many
// operations concurrently.
func (n *Node) ChargeCPU(p *sim.Proc, d time.Duration) {
	if d <= 0 {
		return
	}
	tr := n.Trace
	if tr == nil {
		n.chargeCPU(p, d)
		return
	}
	t0 := p.Elapsed()
	n.chargeCPU(p, d)
	tr.Record(p, obs.KindCPU, t0, p.Elapsed())
}

// chargeCPU is ChargeCPU's uninstrumented body; the span covers both the
// queue wait for vCores and the stretched service time.
func (n *Node) chargeCPU(p *sim.Proc, d time.Duration) {
	for {
		grain := int64(MilliPerCore)
		if c := n.cpu.Capacity(); c < grain {
			if c <= 0 {
				// Zero capacity (mid-scale-down): block until any
				// capacity appears, then re-evaluate the grain.
				n.cpu.Acquire(p, 1)
				n.cpu.Release(1)
				continue
			}
			grain = c
		}
		stretch := time.Duration(float64(d) * float64(MilliPerCore) / float64(grain))
		n.cpu.Acquire(p, grain)
		p.Sleep(stretch)
		n.cpu.Release(grain)
		return
	}
}

// ReadPage charges one page access: buffer hit is free; a miss pays the
// backend fetch and may evict a dirty page (paying writeback). Concurrent
// misses on the same page single-flight through an IO-in-progress latch —
// without it, a hot page draws one duplicate fetch per waiting worker and
// the storage channel collapses under load (the classic miss storm).
func (n *Node) ReadPage(p *sim.Proc, pg storage.PageID) {
	n.pageReads++
	n.pagedIn(p, pg, obs.KindPageRead)
}

// WritePage charges a page modification: same as a read plus dirtying.
func (n *Node) WritePage(p *sim.Proc, pg storage.PageID) {
	n.pageWrites++
	n.pageReads++
	n.pagedIn(p, pg, obs.KindPageWrite)
	n.Buf.MarkDirty(pg)
}

// pagedIn brings a page into the buffer (see ReadPage), recording the miss
// path as a span of the given kind. A fetch issued while the checkpointer
// is mid-flush is attributed to checkpoint-stall instead: the IO channel
// time it pays is checkpoint interference, not intrinsic page cost.
func (n *Node) pagedIn(p *sim.Proc, pg storage.PageID, kind obs.Kind) {
	tr := n.Trace
	for {
		if n.Buf.Pin(pg) {
			return
		}
		latch, inFlight := n.ioLatch[pg]
		if inFlight {
			var t0 time.Duration
			if tr != nil {
				t0 = p.Elapsed()
			}
			latch.Wait(p)
			if tr != nil {
				tr.Record(p, obs.KindLatch, t0, p.Elapsed())
			}
			continue // re-check: the fetcher admitted the page
		}
		latch = sim.NewCond(n.S)
		n.ioLatch[pg] = latch
		var t0 time.Duration
		if tr != nil {
			t0 = p.Elapsed()
			if n.checkpointActive {
				kind = obs.KindCheckpointStall
			}
		}
		n.faultGate(p)
		n.Backend.FetchPage(p, pg)
		_, dirty, ok := n.Buf.Admit(pg)
		delete(n.ioLatch, pg)
		latch.Broadcast()
		if ok && dirty {
			n.Backend.FlushPage(p, pg)
		}
		if tr != nil {
			tr.Record(p, kind, t0, p.Elapsed())
		}
		return
	}
}

// checkpointLoop periodically flushes all dirty pages (ARIES engines). The
// writeback I/O shares the backend with foreground traffic, so heavy write
// loads suffer — the RDS degradation the paper observes at SF10+/high
// concurrency (§III-B).
func (n *Node) checkpointLoop(p *sim.Proc) {
	for !n.stopCheckpoint {
		p.Sleep(n.checkpointEvery)
		if n.stopCheckpoint {
			return
		}
		if n.state != Running {
			continue
		}
		epoch := n.crashEpoch
		dirtyPages := n.Buf.DirtyPages()
		dirty := n.Buf.FlushAll()
		tr := n.Trace
		var t0 time.Duration
		if tr != nil && dirty > 0 {
			t0 = p.Elapsed()
		}
		n.checkpointActive = true
		for i := 0; i < dirty; i++ {
			n.faultGate(p)
			n.Backend.FlushPage(p, storage.PageID{})
		}
		n.checkpointActive = false
		if tr != nil && dirty > 0 {
			tr.RecordBG("checkpoint", obs.KindCheckpointStall, n.Name, t0, p.Elapsed())
		}
		if n.crashEpoch != epoch || n.state != Running {
			// The node crashed under the checkpointer; the engine instance
			// it captured dirty pages from is gone.
			continue
		}
		// Log the fuzzy checkpoint bounding crash-recovery redo: the record
		// captures the dirty-page table and active-txn table, and its write
		// + sync is priced like any WAL append.
		b0 := n.DB.Log().Bytes()
		n.DB.FuzzyCheckpoint(dirtyPages)
		n.Backend.WriteLog(p, int(n.DB.Log().Bytes()-b0))
		if n.crashEpoch == epoch {
			n.DB.Log().Sync()
		}
	}
}

// StopCheckpointer terminates the background checkpointer so simulations
// can drain.
func (n *Node) StopCheckpointer() { n.stopCheckpoint = true }

// Tx is a transaction executing on this node, charging resources around
// every engine operation.
type Tx struct {
	n     *Node
	p     *sim.Proc
	inner *engine.Txn
	// epoch is the node's crash epoch at Begin: a crash between any of this
	// transaction's yields discards its engine txn with the node's volatile
	// state, so a stale epoch must fail the transaction instead of touching
	// the rebuilt engine.
	epoch uint64
}

// Begin starts a transaction, blocking through pause/resume and failing on
// a down node.
func (n *Node) Begin(p *sim.Proc) (*Tx, error) {
	if err := n.AwaitRunning(p); err != nil {
		return nil, err
	}
	n.Trace.SetNode(p, n.Name)
	n.ChargeCPU(p, n.txnCPU)
	if n.state != Running {
		// The node crashed while this request waited for vCores.
		return nil, ErrNodeDown
	}
	if n.faultReject() {
		// CPU was already charged, so the rejection consumed virtual
		// time — error loops cannot livelock the simulation.
		return nil, ErrIOFault
	}
	return &Tx{n: n, p: p, inner: n.DB.Begin(p), epoch: n.crashEpoch}, nil
}

// Get reads a row with a shared lock, charging CPU and page access.
func (t *Tx) Get(tbl *engine.Table, k engine.Key) (engine.Row, error) {
	t.n.ChargeCPU(t.p, t.n.opCPU)
	row, page, err := t.inner.Get(tbl, k)
	if err != nil && !errors.Is(err, engine.ErrRowNotFound) {
		return nil, err
	}
	t.n.ReadPage(t.p, page)
	return row, err
}

// GetForUpdate reads a row with an exclusive lock (read-modify-write),
// charging CPU and page access.
func (t *Tx) GetForUpdate(tbl *engine.Table, k engine.Key) (engine.Row, error) {
	t.n.ChargeCPU(t.p, t.n.opCPU)
	row, page, err := t.inner.GetForUpdate(tbl, k)
	if err != nil && !errors.Is(err, engine.ErrRowNotFound) {
		return nil, err
	}
	t.n.ReadPage(t.p, page)
	return row, err
}

// Insert adds a row, charging CPU and the page write (plus one page write
// per touched secondary-index page).
func (t *Tx) Insert(tbl *engine.Table, row engine.Row) error {
	t.n.ChargeCPU(t.p, t.n.opCPU)
	page, err := t.inner.Insert(tbl, row)
	if err != nil {
		return err
	}
	t.n.WritePage(t.p, page)
	t.chargeIndexPages()
	return nil
}

// Update replaces a row, charging CPU and the page write.
func (t *Tx) Update(tbl *engine.Table, k engine.Key, row engine.Row) error {
	t.n.ChargeCPU(t.p, t.n.opCPU)
	page, err := t.inner.Update(tbl, k, row)
	if err != nil {
		return err
	}
	t.n.WritePage(t.p, page)
	t.chargeIndexPages()
	return nil
}

// Delete removes a row, charging CPU and the page write.
func (t *Tx) Delete(tbl *engine.Table, k engine.Key) error {
	t.n.ChargeCPU(t.p, t.n.opCPU)
	page, err := t.inner.Delete(tbl, k)
	if err != nil {
		return err
	}
	t.n.WritePage(t.p, page)
	t.chargeIndexPages()
	return nil
}

// chargeIndexPages pays buffer traffic for the index pages the last write
// maintained — index writes compete for the same buffer pool and storage
// channel as heap writes, which is what makes index overhead visible per
// architecture.
func (t *Tx) chargeIndexPages() {
	for _, pg := range t.inner.LastIndexPages() {
		t.n.WritePage(t.p, pg)
	}
}

// ScanRange runs a range query inside the transaction (see
// engine.Txn.ScanRange), charging one CPU slice scaled by the pages the
// chosen plan touched plus a page read per touched page. Full scans pay
// for every table page — the planner's selectivity cliff is a real
// resource cliff.
func (t *Tx) ScanRange(tbl *engine.Table, col int, lo, hi engine.Value, limit int, mode engine.PlanMode) ([]engine.Row, error) {
	res, err := t.inner.ScanRange(tbl, col, lo, hi, limit, mode)
	if err != nil {
		return nil, err
	}
	t.n.ChargeCPU(t.p, t.n.opCPU*time.Duration(1+len(res.Pages)))
	for _, pg := range res.Pages {
		t.n.ReadPage(t.p, pg)
	}
	return res.Rows, nil
}

// ErrFenced mirrors storage.ErrFenced for callers that only import node.
var ErrFenced = storage.ErrFenced

// SetFence attaches the deployment-wide write lease.
func (n *Node) SetFence(f *storage.Fence) { n.fence = f }

// GrantEpoch hands the node a lease epoch (promotion grants the current
// epoch; anything older is fenced at commit).
func (n *Node) GrantEpoch(e uint64) { n.epoch = e }

// Epoch returns the lease epoch the node last held.
func (n *Node) Epoch() uint64 { return n.epoch }

// Commit pays WAL durability through the backend, commits, and hands the
// committed records to the replication hook. Writing transactions present
// the node's lease epoch to the fence first: a stale epoch (the node lost
// the RW lease to a fail-over it may not even know about) aborts the
// transaction with ErrFenced before any durability is paid.
func (t *Tx) Commit() error {
	if t.n.crashEpoch != t.epoch {
		// The node crashed since Begin: this transaction's engine state died
		// with it. The abort only tidies the orphaned pre-crash instance.
		_ = t.inner.Abort()
		return ErrNodeDown
	}
	if t.inner.WALBytes() > 0 && t.n.fence != nil {
		if err := t.n.fence.CheckCommit(t.p.Elapsed(), t.n.Name, t.n.epoch); err != nil {
			// Roll back explicitly: callers treat a commit error as final
			// and never call Abort themselves, so the locks must be
			// released here.
			_ = t.inner.Abort()
			return err
		}
	}
	if bytes := t.inner.WALBytes(); bytes > 0 {
		tr := t.n.Trace
		if tr == nil {
			t.n.Backend.WriteLog(t.p, bytes)
		} else {
			t0 := t.p.Elapsed()
			t.n.Backend.WriteLog(t.p, bytes)
			tr.Record(t.p, obs.KindWALAppend, t0, t.p.Elapsed())
		}
		if t.n.crashEpoch != t.epoch {
			// The node crashed during the durability wait: the commit record
			// never reached the durable log (engine Commit appends and syncs
			// it atomically, and it hadn't run yet), so the client must see
			// failure — an ack here would be a resurrection-in-waiting.
			_ = t.inner.Abort()
			return ErrNodeDown
		}
	}
	recs, err := t.inner.Commit()
	if err != nil {
		return err
	}
	if len(recs) > 0 && t.n.OnCommit != nil {
		t.n.OnCommit(t.p, recs)
	}
	return nil
}

// Abort rolls the transaction back.
func (t *Tx) Abort() error { return t.inner.Abort() }

// ScanRead serves a lock-free range query on this node (the replica read
// path), charging CPU scaled by touched pages plus a page read per page.
func (n *Node) ScanRead(p *sim.Proc, table string, col int, lo, hi engine.Value, limit int, mode engine.PlanMode) ([]engine.Row, error) {
	if err := n.AwaitRunning(p); err != nil {
		return nil, err
	}
	tbl := n.DB.Table(table)
	if tbl == nil {
		return nil, errors.New("node: scan of unknown table " + table)
	}
	if n.faultReject() {
		return nil, ErrIOFault
	}
	res, err := tbl.SelectRange(col, lo, hi, limit, mode)
	if err != nil {
		return nil, err
	}
	n.ScanCharge(p, res.Pages)
	return res.Rows, nil
}

// ScanCharge pays the CPU and page-read cost of a range scan executed
// out-of-band: the differential harness runs both plans atomically (no
// yields between them) and settles the bill afterwards, so a dual-plan run
// paces virtual time exactly like a planner-served one.
func (n *Node) ScanCharge(p *sim.Proc, pages []storage.PageID) {
	n.ChargeCPU(p, n.opCPU*time.Duration(1+len(pages)))
	for _, pg := range pages {
		n.ReadPage(p, pg)
	}
}

// Read serves a lock-free read on this node (the replica read path),
// charging CPU and page access. Missing rows return (nil, false).
func (n *Node) Read(p *sim.Proc, table string, k engine.Key) (engine.Row, bool, error) {
	if err := n.AwaitRunning(p); err != nil {
		return nil, false, err
	}
	n.ChargeCPU(p, n.opCPU)
	if n.faultReject() {
		return nil, false, ErrIOFault
	}
	row, page, ok := n.DB.Read(table, k)
	n.ReadPage(p, page)
	return row, ok, nil
}
