package node

import (
	"errors"
	"sort"
	"time"

	"cloudybench/internal/engine"
	"cloudybench/internal/obs"
	"cloudybench/internal/sim"
	"cloudybench/internal/storage"
)

// Crash-recovery modelling (DESIGN.md §17). A crash is instantaneous: the
// node drops to Down, its WAL loses the unsynced tail (possibly leaving a
// torn record), and every volatile structure — buffer-pool residency and
// dirty pages, the lock table, in-flight transactions — is gone. Recover
// then rebuilds the engine from the durable log via the ARIES pass and
// charges *virtual* time priced from what that pass actually did, so
// recovery duration is emergent: proportional to log-since-checkpoint for
// full redo/undo architectures, and to analysis+undo only for
// log-is-the-database architectures whose storage tier already holds the
// replayed pages.

// RecoveryConfig prices one architecture's crash-recovery path.
type RecoveryConfig struct {
	// Base is the fixed restart overhead: process boot, catalog load,
	// log-tail discovery.
	Base time.Duration
	// AnalysisPerRecord is the cost of scanning one log record in the
	// analysis pass. Analysis starts at the last fuzzy checkpoint, so this
	// is paid per record *since the checkpoint* (every architecture pays
	// it) — checkpointing bounds recovery time no matter how old the log.
	AnalysisPerRecord time.Duration
	// RedoPerRecord is the cost of re-applying one record inside the redo
	// window (records since the last checkpoint). Log-is-the-database
	// architectures skip it entirely.
	RedoPerRecord time.Duration
	// UndoPerRecord is the cost of rolling back one loser record.
	UndoPerRecord time.Duration
	// RedoPageIO, when set, additionally faults every distinct page the
	// redo window touched through the storage backend (ARIES engines warm
	// the buffer pool from disk during redo).
	RedoPageIO bool
	// LogIsDatabase marks redo-pushdown architectures (the log *is* the
	// database): the storage tier replays continuously, so recovery skips
	// the redo window and pays only analysis + undo.
	LogIsDatabase bool
}

// Crash kills the node instantly. The WAL keeps only what fsync made
// durable (torn selects how the in-flight record is mangled); the buffer
// pool, IO latches, and all in-flight transactions are discarded. Returns
// the number of log records lost. The node stays Down until Recover.
func (n *Node) Crash(torn storage.TornMode) int {
	n.crashEpoch++
	n.SetState(Down)
	tail, dropped := n.DB.Log().Crash(torn)
	n.crashSnap = n.DB.Log().Snapshot()
	n.crashTail = tail
	n.crashed = true
	// Volatile state dies with the process: fresh (cold) buffer pool, and
	// every latch waiter woken so its transaction can fail out through the
	// crash-epoch guard. Wake in sorted page order — map order would leak
	// scheduler nondeterminism.
	n.Buf = storage.NewBufferPoolBytes(n.memBytes)
	if len(n.ioLatch) > 0 {
		pages := make([]storage.PageID, 0, len(n.ioLatch))
		for pg := range n.ioLatch {
			pages = append(pages, pg)
		}
		sort.Slice(pages, func(i, j int) bool {
			if pages[i].Table != pages[j].Table {
				return pages[i].Table < pages[j].Table
			}
			return pages[i].Num < pages[j].Num
		})
		for _, pg := range pages {
			latch := n.ioLatch[pg]
			delete(n.ioLatch, pg)
			latch.Broadcast()
		}
	}
	return dropped
}

// Crashed reports whether the node is down from an un-recovered crash.
func (n *Node) Crashed() bool { return n.crashed }

// CrashArtifacts exposes the durable log snapshot and torn tail a crash
// left behind (for fail-over: a promoted standby seeds from them).
func (n *Node) CrashArtifacts() (storage.LogSnapshot, []byte) {
	return n.crashSnap, n.crashTail
}

// SeedRecovery replaces the crash artifacts with a log fetched from another
// durable source — replica resync: a crashed replica's own apply state was
// volatile, so it rebuilds from the primary's durable log instead of its
// (empty) local one. No-op unless the node is down from a crash.
func (n *Node) SeedRecovery(snap storage.LogSnapshot, tail []byte) {
	if !n.crashed {
		return
	}
	n.crashSnap = snap
	n.crashTail = tail
}

// Recover rebuilds the node from its durable log. The engine-level ARIES
// pass (analysis, redo, undo, torn-tail truncation) produces both the new
// state and the RecoveryStats this method prices into virtual time per the
// node's RecoveryConfig; the node is Recovering — rejecting requests — for
// exactly that long, so recovery duration in experiment timelines is
// emergent from log volume, not scripted.
func (n *Node) Recover(p *sim.Proc, opts engine.RecoveryOpts) (engine.RecoveryStats, error) {
	if !n.crashed {
		return engine.RecoveryStats{}, errors.New("node: Recover on a node that has not crashed")
	}
	n.SetState(Recovering)
	prev := n.DB
	fresh := engine.NewDB(n.S)
	if n.RebuildSchema != nil {
		n.RebuildSchema(fresh)
	}
	st, err := fresh.Recover(n.crashSnap, n.crashTail, opts)
	if err != nil {
		n.SetState(Down)
		return st, err
	}
	// Carry the cross-instance wiring the crash must not sever: the history
	// observer, the lock-wait trace hook, and the txn-id floor (the lost
	// tail may have used ids beyond anything durable).
	fresh.SetObserver(prev.Observer())
	if tr := n.Trace; tr != nil {
		fresh.Locks().OnWait = func(p *sim.Proc, txn uint64, key string, start, end time.Duration) {
			tr.Record(p, obs.KindLockWait, start, end)
		}
	}
	fresh.BumpTxnFloor(prev.TxnCounter())
	n.DB = fresh
	n.crashed = false
	n.crashSnap = storage.LogSnapshot{}
	n.crashTail = nil

	rc := n.recovery
	d := rc.Base + time.Duration(st.RedoSince)*rc.AnalysisPerRecord +
		time.Duration(st.UndoRecords)*rc.UndoPerRecord
	if !rc.LogIsDatabase {
		d += time.Duration(st.RedoSince) * rc.RedoPerRecord
	}
	if d > 0 {
		p.Sleep(d)
	}
	if rc.RedoPageIO && !rc.LogIsDatabase {
		for _, pg := range st.RedoPages {
			n.Backend.FetchPage(p, pg)
			n.Buf.Admit(pg)
		}
	}
	n.SetState(Running)
	return st, nil
}
