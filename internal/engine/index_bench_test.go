package engine

import (
	"testing"
	"time"

	"cloudybench/internal/sim"
)

// benchTable builds an indexed table with n base rows for scan benchmarks.
func benchTable(n int64) *Table {
	s := sim.New(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	db := NewDB(s)
	tbl := db.MustCreateTable(indexedSchema(), n, genItem)
	db.MustCreateIndex("items", "ix_items_group", "IT_GROUP")
	return tbl
}

// BenchmarkIndexRangeScan measures a selective indexed range scan (one
// group out of ten, 10% of rows).
func BenchmarkIndexRangeScan(b *testing.B) {
	tbl := benchTable(10_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := tbl.SelectRange(1, Int(3), Int(3), 0, PlanForceIndex)
		if err != nil || len(res.Rows) == 0 {
			b.Fatal("empty index scan")
		}
	}
}

// BenchmarkFullScanOracle measures the same query through the full-scan
// oracle path, the planner's alternative.
func BenchmarkFullScanOracle(b *testing.B) {
	tbl := benchTable(10_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := tbl.SelectRange(1, Int(3), Int(3), 0, PlanForceScan)
		if err != nil || len(res.Rows) == 0 {
			b.Fatal("empty full scan")
		}
	}
}

// BenchmarkIndexMaintenance measures the per-write cost of keeping one
// secondary index coherent (insert + group-moving update + delete).
func BenchmarkIndexMaintenance(b *testing.B) {
	tbl := benchTable(1_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := int64(2_000 + i)
		k := IntKey(id)
		if _, err := tbl.Insert(k, Row{Int(id), Int(id % 7), Float(1), Str("b")}); err != nil {
			b.Fatal(err)
		}
		if _, _, err := tbl.Update(k, Row{Int(id), Int((id + 1) % 7), Float(1), Str("b")}); err != nil {
			b.Fatal(err)
		}
		if _, _, err := tbl.Delete(k); err != nil {
			b.Fatal(err)
		}
	}
}
