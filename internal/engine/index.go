package engine

import (
	"fmt"

	"cloudybench/internal/storage"
)

// Index is a secondary B-tree index over one column of a table. Entries are
// keyed by the memcomparable encoding of the indexed column value followed
// by the row's primary key, so equal column values order by primary key and
// a column-range scan is one contiguous tree walk.
//
// The index is DERIVED state: every table mutation — insert, update,
// delete, transaction rollback, and replica WAL replay — funnels through
// Table.updateIndexes, which diffs the visible row before and after the
// write and patches each index accordingly. Because maintenance keys off
// visible-state changes rather than transaction outcomes, an index is an
// exact projection of its base table at every quiescent point on every
// node: rollback restores it exactly (the undo path is just another
// visible-state change) and replicas rebuild the same entries from shipped
// records without index images ever crossing the wire.
type Index struct {
	// Name is the index name, unique within the database.
	Name string
	// ID is a synthetic table id naming the index's page space in WAL
	// records and buffer-pool keys. It shares the TableID namespace with
	// tables (the DB allocates both from one counter).
	ID storage.TableID
	// Col is the indexed column's offset in the table schema.
	Col int

	table   *Table
	tree    *BTree[indexEntry]
	pageFan uint64
}

type indexEntry struct {
	pk   Key
	page storage.PageID
}

// indexEntryBytes is the modeled physical size of one index entry (key
// bytes plus heap pointer), used for index page math.
const indexEntryBytes = 32

// newIndex builds an index over the table's current visible rows.
func newIndex(name string, id storage.TableID, t *Table, col int) *Index {
	sizeHint := t.baseRows
	if sizeHint < 4096 {
		sizeHint = 4096
	}
	ix := &Index{
		Name:    name,
		ID:      id,
		Col:     col,
		table:   t,
		tree:    NewBTree[indexEntry](),
		pageFan: storage.PagesFor(sizeHint, indexEntryBytes),
	}
	if ix.pageFan == 0 {
		ix.pageFan = 1
	}
	t.VisibleScan(func(pk Key, r Row) bool {
		ek := ix.EntryKey(r[col], pk)
		ix.tree.Set(ek, indexEntry{pk: append(Key(nil), pk...), page: ix.pageOf(ek)})
		return true
	})
	return ix
}

// EntryKey builds the index entry key for a column value and primary key.
func (ix *Index) EntryKey(v Value, pk Key) Key {
	ek := EncodeKey(v)
	return append(ek, pk...)
}

// pageOf assigns an entry to an index page. Pages are content-addressed
// (FNV-1a of the column-key prefix modulo a fixed fan sized from the
// table's base rows): deterministic, identical on primary and replicas,
// and unaffected by aborted transactions — unlike an insertion-sequence
// counter, which a rolled-back insert would desynchronize across nodes.
// Equal column values always share a page, approximating leaf clustering.
func (ix *Index) pageOf(entryKey Key) storage.PageID {
	prefix := entryKey[:len(entryKey)-len(ix.pkSuffix(entryKey))]
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, c := range prefix {
		h ^= uint64(c)
		h *= prime64
	}
	return storage.PageID{Table: ix.ID, Num: h % ix.pageFan}
}

// pkSuffix returns the primary-key portion of an entry key (everything
// after the first encoded value).
func (ix *Index) pkSuffix(entryKey Key) Key {
	_, n, ok := DecodeKeyValue(entryKey)
	if !ok {
		panic(fmt.Sprintf("engine: malformed index entry key %x", []byte(entryKey)))
	}
	return entryKey[n:]
}

// apply patches the index for one visible-state change of primary key pk:
// old/new are the visible rows before/after (nil = absent). It records the
// resulting entry operations on the table's scratch op list so the writing
// transaction can emit WAL records and charge page writes; replica replay
// and rollback discard them.
func (ix *Index) apply(pk Key, old, new Row) {
	var oldV, newV Value
	hasOld := old != nil
	hasNew := new != nil
	if hasOld {
		oldV = old[ix.Col]
	}
	if hasNew {
		newV = new[ix.Col]
	}
	if hasOld && hasNew && oldV.Equal(newV) {
		return // indexed column unchanged; entry key is identical
	}
	if hasOld {
		ek := ix.EntryKey(oldV, pk)
		ix.tree.Delete(ek)
		ix.table.ixOps = append(ix.table.ixOps, IndexOp{Index: ix, Del: true, EntryKey: ek, Page: ix.pageOf(ek)})
	}
	if hasNew {
		ek := ix.EntryKey(newV, pk)
		ix.tree.Set(ek, indexEntry{pk: append(Key(nil), pk...), page: ix.pageOf(ek)})
		ix.table.ixOps = append(ix.table.ixOps, IndexOp{Index: ix, EntryKey: ek, Page: ix.pageOf(ek)})
	}
}

// Scan visits entries with column values in [lo, hi] in (column, pk) order,
// yielding each row's primary key and the index page the entry lives on.
func (ix *Index) Scan(lo, hi Value, fn func(pk Key, page storage.PageID) bool) {
	loK := EncodeKey(lo)
	hiK := append(EncodeKey(hi), 0xFF) // entry keys continue with a pk tag < 0xFF
	ix.tree.AscendRange(loK, hiK, func(k Key, e indexEntry) bool {
		return fn(e.pk, e.page)
	})
}

// Walk visits every entry in key order (coherence checking).
func (ix *Index) Walk(fn func(entryKey Key, pk Key) bool) {
	ix.tree.AscendRange(nil, nil, func(k Key, e indexEntry) bool {
		return fn(k, e.pk)
	})
}

// Len returns the number of index entries.
func (ix *Index) Len() int { return ix.tree.Len() }

// Pages returns the modeled physical page count of the index.
func (ix *Index) Pages() uint64 { return ix.pageFan }

// Bounds returns the smallest and largest indexed column values currently
// present. ok is false for an empty index.
func (ix *Index) Bounds() (min, max Value, ok bool) {
	loK, _, okLo := ix.tree.Min()
	hiK, _, okHi := ix.tree.Max()
	if !okLo || !okHi {
		return Value{}, Value{}, false
	}
	lo, _, ok1 := DecodeKeyValue(loK)
	hi, _, ok2 := DecodeKeyValue(hiK)
	return lo, hi, ok1 && ok2
}

// CorruptEntryForTest force-inserts a bogus entry, used by coherence-check
// tests to prove IndexCoherent has teeth. Never called outside tests.
func (ix *Index) CorruptEntryForTest(entryKey Key, pk Key) {
	ix.tree.Set(entryKey, indexEntry{pk: pk, page: ix.pageOf(entryKey)})
}

// IndexOp is one physical index-entry change produced by a table mutation,
// surfaced so the writing transaction can append index WAL records and the
// node layer can charge index page writes.
type IndexOp struct {
	Index *Index
	Del   bool
	// EntryKey is the full entry key (column value ++ primary key).
	EntryKey Key
	Page     storage.PageID
}
