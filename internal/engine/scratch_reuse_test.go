package engine

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"cloudybench/internal/sim"
)

// TestRollbackAfterScratchReuseLeavesNoTrace pins the free-list discipline
// behind the zero-alloc commit path: Txn objects, their lock-key slices, and
// their row arenas are recycled across transactions, so an abort must not
// only be atomic (the existing property test) but must leave the recycled
// scratch in a state where the NEXT transaction on the same *Txn cannot
// observe or corrupt anything. The test drives one DB with a mix of commits
// and aborts, replays only the committed transactions on an oracle DB that
// never aborts, requires that the free list demonstrably recycled pointers,
// and then compares the visible state of both databases row by row.
// (Physical page numbers are excluded: an aborted insert legitimately burns
// an append slot, exactly like a real heap.)
func TestRollbackAfterScratchReuseLeavesNoTrace(t *testing.T) {
	s := sim.New(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	dbA := NewDB(s) // commits + aborts, scratch heavily recycled
	dbB := NewDB(s) // oracle: sees only the committed transactions
	tA := dbA.MustCreateTable(testSchema(), 0, nil)
	tB := dbB.MustCreateTable(testSchema(), 0, nil)

	type op struct {
		kind int // 0 insert, 1 update, 2 delete
		id   int64
		row  Row
	}
	var nextID int64 = 1
	expect := make(map[int64]string) // committed truth, tracked independently
	seen := make(map[*Txn]int)
	reuses := 0

	s.Go("drive", func(p *sim.Proc) {
		r := rand.New(rand.NewSource(99))
		for i := 0; i < 400; i++ {
			txn := dbA.Begin(p)
			if seen[txn] > 0 {
				reuses++
			}
			seen[txn]++

			var ops []op
			nStmts := 1 + r.Intn(3)
			failed := false
			for j := 0; j < nStmts && !failed; j++ {
				switch r.Intn(3) {
				case 0:
					id := nextID
					row := Row{Int(id), Str(fmt.Sprintf("INS-%d-%d", i, j))}
					if _, err := txn.Insert(tA, row); err != nil {
						failed = true
						break
					}
					nextID++
					ops = append(ops, op{kind: 0, id: id, row: row})
				case 1:
					id := r.Int63n(nextID) + 1
					row := Row{Int(id), Str(fmt.Sprintf("UPD-%d-%d", i, j))}
					if _, err := txn.Update(tA, IntKey(id), row); err != nil {
						continue // key not visible; statement is a no-op
					}
					ops = append(ops, op{kind: 1, id: id, row: row})
				case 2:
					id := r.Int63n(nextID) + 1
					if _, err := txn.Delete(tA, IntKey(id)); err != nil {
						continue
					}
					ops = append(ops, op{kind: 2, id: id})
				}
			}
			if failed || r.Intn(3) == 0 {
				if err := txn.Abort(); err != nil {
					t.Errorf("txn %d: abort: %v", i, err)
					return
				}
				continue
			}
			if _, err := txn.Commit(); err != nil {
				t.Errorf("txn %d: commit: %v", i, err)
				return
			}
			// Replay the committed statements on the oracle.
			oracle := dbB.Begin(p)
			for _, o := range ops {
				var err error
				switch o.kind {
				case 0:
					_, err = oracle.Insert(tB, o.row)
					expect[o.id] = o.row[1].S
				case 1:
					_, err = oracle.Update(tB, IntKey(o.id), o.row)
					expect[o.id] = o.row[1].S
				case 2:
					_, err = oracle.Delete(tB, IntKey(o.id))
					delete(expect, o.id)
				}
				if err != nil {
					t.Errorf("oracle replay txn %d: %v", i, err)
					return
				}
			}
			if _, err := oracle.Commit(); err != nil {
				t.Errorf("oracle commit txn %d: %v", i, err)
				return
			}
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if t.Failed() {
		return
	}
	if reuses == 0 {
		t.Fatal("free list never recycled a Txn pointer; test lost its teeth")
	}

	// Visible state must agree everywhere: with the reference map and
	// between the two databases, for every id ever allocated.
	for id := int64(1); id < nextID; id++ {
		rowA, _, okA := dbA.Read("orders", IntKey(id))
		rowB, _, okB := dbB.Read("orders", IntKey(id))
		want, live := expect[id]
		if okA != live || okB != live {
			t.Fatalf("id %d: visibility A=%v B=%v want %v", id, okA, okB, live)
		}
		if !live {
			continue
		}
		if rowA[1].S != want || rowB[1].S != want {
			t.Fatalf("id %d: status A=%q B=%q want %q", id, rowA[1].S, rowB[1].S, want)
		}
	}
	if a, b := tA.LiveRows(), tB.LiveRows(); a != b {
		t.Fatalf("live rows diverge: %d vs %d", a, b)
	}
	if held := dbA.Locks().HeldLocks(); held != 0 {
		t.Fatalf("lock table not empty after final abort/commit: %d held", held)
	}
}
