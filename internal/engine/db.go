package engine

import (
	"bytes"
	"errors"
	"fmt"
	"sort"

	"cloudybench/internal/sim"
	"cloudybench/internal/storage"
)

// DB is one database instance: a catalog of tables, a lock table, and a
// write-ahead log. The read-write node owns the authoritative DB; each
// read-only replica owns a separate DB instance (same schemas and
// generators) that applies shipped WAL records via Apply.
type DB struct {
	sim      *sim.Sim
	byName   map[string]*Table
	byID     map[storage.TableID]*Table
	ixByName map[string]*Index
	locks    *LockTable
	log      *storage.Log

	nextTxn     uint64
	nextTableID storage.TableID

	// active is the active-transaction table: txns that have logged at least
	// one record but not yet committed or aborted, keyed to their first LSN.
	// Fuzzy checkpoints capture it; crash recovery rolls back whatever it
	// held at the failure instant (reconstructed from the log).
	active map[uint64]storage.LSN

	// Fast-path scratch (DESIGN.md §15). txnFree recycles finished Txn
	// objects — a deterministic free-list, not sync.Pool, so reuse order is
	// a pure function of the commit/abort order and the rawgo rule stays
	// clean. appended is the shared buffer Commit returns: it is valid until
	// the next committing transaction on this DB, which every caller
	// respects by consuming the records synchronously. slab holds the
	// stable copies of record Key/Image bytes referenced by the WAL, and
	// internStr canonicalizes the low-cardinality strings replica replay
	// decodes over and over.
	txnFree   []*Txn
	appended  []storage.Record
	slab      []byte
	valSlab   []Value
	internStr map[string]string

	observer Observer

	commits int64
	aborts  int64
}

// NewDB returns an empty database bound to the simulation.
func NewDB(s *sim.Sim) *DB {
	return &DB{
		sim:       s,
		byName:    make(map[string]*Table),
		byID:      make(map[storage.TableID]*Table),
		locks:     NewLockTable(s),
		log:       storage.NewLog(),
		active:    make(map[uint64]storage.LSN),
		internStr: make(map[string]string),
	}
}

// CreateTable registers a table with the given schema and generator-backed
// base rows (baseRows may be zero).
func (db *DB) CreateTable(schema *Schema, baseRows int64, gen RowGen) (*Table, error) {
	if _, exists := db.byName[schema.Name]; exists {
		return nil, fmt.Errorf("engine: table %s already exists", schema.Name)
	}
	db.nextTableID++
	t, err := NewTable(db.nextTableID, schema, baseRows, gen)
	if err != nil {
		return nil, err
	}
	db.byName[schema.Name] = t
	db.byID[t.ID] = t
	return t, nil
}

// MustCreateTable is CreateTable that panics on error (setup code).
func (db *DB) MustCreateTable(schema *Schema, baseRows int64, gen RowGen) *Table {
	t, err := db.CreateTable(schema, baseRows, gen)
	if err != nil {
		panic(err)
	}
	return t
}

// CreateIndex builds a secondary index over table.colName, allocating the
// index's page-space id from the same counter as tables. Schema setup runs
// identically on every node, so the id — which names index pages in WAL
// records and buffer keys — matches across primary and replicas.
func (db *DB) CreateIndex(tableName, ixName, colName string) (*Index, error) {
	t := db.byName[tableName]
	if t == nil {
		return nil, fmt.Errorf("engine: index %s: unknown table %q", ixName, tableName)
	}
	if _, dup := db.ixByName[ixName]; dup {
		return nil, fmt.Errorf("engine: index %s already exists", ixName)
	}
	db.nextTableID++
	ix, err := t.CreateIndex(ixName, db.nextTableID, colName)
	if err != nil {
		db.nextTableID--
		return nil, err
	}
	if db.ixByName == nil {
		db.ixByName = make(map[string]*Index)
	}
	db.ixByName[ixName] = ix
	return ix, nil
}

// MustCreateIndex is CreateIndex that panics on error (setup code).
func (db *DB) MustCreateIndex(tableName, ixName, colName string) *Index {
	ix, err := db.CreateIndex(tableName, ixName, colName)
	if err != nil {
		panic(err)
	}
	return ix
}

// Index returns the named secondary index, or nil.
func (db *DB) Index(name string) *Index { return db.ixByName[name] }

// Table returns the named table, or nil.
func (db *DB) Table(name string) *Table { return db.byName[name] }

// Tables returns all tables in creation order is not guaranteed; callers
// needing order should track names themselves.
func (db *DB) Tables() map[string]*Table { return db.byName }

// Log returns the database's WAL (the RW node's replication source).
func (db *DB) Log() *storage.Log { return db.log }

// Locks exposes the lock table (tests and tuning).
func (db *DB) Locks() *LockTable { return db.locks }

// Stats returns commit and abort counts.
func (db *DB) Stats() (commits, aborts int64) { return db.commits, db.aborts }

// Read performs a lock-free snapshot read, the path replicas use to serve
// read-only queries at their current replay position.
func (db *DB) Read(table string, k Key) (Row, storage.PageID, bool) {
	t := db.byName[table]
	if t == nil {
		return nil, storage.PageID{}, false
	}
	return t.Get(k)
}

// Apply replays one shipped WAL record into this (replica) instance.
// Commit, begin, abort, and checkpoint records are no-ops at the data layer.
func (db *DB) Apply(rec storage.Record) error {
	var cache *Table
	return db.applyRecord(&rec, &cache)
}

// ApplyBatch replays a whole shipped batch in one pass: the table pointer is
// cached across runs of records touching the same table and row images
// decode through the DB string interner, so steady-state replay allocates
// only the row slices that the delta overlay retains. Records apply in
// exactly slice order — the visible result is byte-identical to calling
// Apply once per record.
//
//detlint:hotpath
func (db *DB) ApplyBatch(recs []storage.Record) error {
	var cache *Table
	for i := range recs {
		if err := db.applyRecord(&recs[i], &cache); err != nil {
			return err
		}
	}
	return nil
}

// applyRecord replays one record, reusing *cache when the record names the
// same table as its predecessor. The decoded row and the key bytes go into
// the delta overlay uncloned: record images are immutable once shipped, so
// the overlay may alias them.
func (db *DB) applyRecord(rec *storage.Record, cache **Table) error {
	switch rec.Type {
	case storage.RecInsert, storage.RecUpdate, storage.RecDelete:
	default:
		return nil
	}
	t := *cache
	if t == nil || t.ID != rec.Table {
		t = db.byID[rec.Table]
		if t == nil {
			return fmt.Errorf("engine: replay for unknown table id %d", rec.Table) //detlint:allow hotalloc(corrupt-stream error path, never taken in steady-state replay)
		}
		*cache = t
	}
	key := Key(rec.Key)
	switch rec.Type {
	case storage.RecInsert:
		row, err := db.decodeRow(rec.Image)
		if err != nil {
			return fmt.Errorf("engine: replay insert: %w", err)
		}
		t.InsertAt(key, row, rec.Page)
	case storage.RecUpdate:
		row, err := db.decodeRow(rec.Image)
		if err != nil {
			return fmt.Errorf("engine: replay update: %w", err)
		}
		t.UpdateAt(key, row, rec.Page)
	case storage.RecDelete:
		t.DeleteAt(key, rec.Page)
	}
	return nil
}

// Interner bounds: strings longer than internMaxLen are not worth
// canonicalizing (row payloads, not enums), and the map stops admitting new
// entries at internMaxEntries so a high-cardinality column cannot turn the
// interner into a second copy of the table.
const (
	internMaxLen     = 32
	internMaxEntries = 4096
)

// intern returns a canonical string for b. The suite schemas churn through
// a handful of status/name values per table, so replica replay hits the
// canonical entry and allocates nothing; misses past the entry cap simply
// copy.
func (db *DB) intern(b []byte) string {
	if len(b) > internMaxLen {
		return string(b)
	}
	if s, ok := db.internStr[string(b)]; ok {
		return s
	}
	if len(db.internStr) >= internMaxEntries {
		return string(b)
	}
	s := string(b)
	db.internStr[s] = s
	return s
}

// ErrTxnDone is returned when using a committed or aborted transaction.
var ErrTxnDone = errors.New("engine: transaction already finished")

type undoEntry struct {
	table   *Table
	key     Key
	prior   Row
	page    storage.PageID
	existed bool
	// inDelta records whether the key had a delta entry (row or tombstone)
	// before this write — rollback must restore the overlay exactly, not
	// just the visible value (see Table.undoSet).
	inDelta bool
}

// Txn is a read-write transaction under strict two-phase locking: locks are
// held until commit or abort, updates apply in place with undo images, and
// the redo stream is appended to the WAL at commit (so replicas only ever
// see committed changes).
//
// Finished transactions return to the DB free-list, so a *Txn handle must be
// dropped once Commit or Abort returns: the done flag rejects a stray second
// finish only until the object is reissued by a later Begin.
type Txn struct {
	db   *DB
	p    *sim.Proc
	id   uint64
	done bool
	// lockSorted is the txn's lock set as a sorted slice of the lock
	// table's canonical key strings — membership is a binary search, and
	// the slice recycles with the txn where the old per-txn map allocated
	// on every Begin. lockSeq preserves acquisition order for release.
	lockSorted []string
	lockSeq    []string
	// keyBuf is the composite lock-key scratch (table name, NUL, row key).
	keyBuf []byte
	// pending holds this txn's WAL records as already appended to the log
	// (write-ahead discipline: redo + undo images reach the log at write
	// time, before commit). Commit republishes Prior-stripped copies to the
	// shipping layer; the payload bytes are slab-backed and immortal — the
	// log retains them whether the txn commits or aborts.
	undo    []undoEntry
	pending []storage.Record
	// lastIxPages holds the index pages touched by the most recent write
	// (valid until the next write); the node layer charges them as page
	// writes alongside the heap page.
	lastIxPages []storage.PageID
}

// Begin starts a transaction executed by process p, reusing a finished Txn
// from the free-list when one is available.
func (db *DB) Begin(p *sim.Proc) *Txn {
	db.nextTxn++
	var t *Txn
	if n := len(db.txnFree); n > 0 {
		t = db.txnFree[n-1]
		db.txnFree = db.txnFree[:n-1]
	} else {
		t = &Txn{}
	}
	t.db, t.p, t.id, t.done = db, p, db.nextTxn, false
	return t
}

// release recycles a finished transaction onto the DB free-list. Undo and
// pending entries are zeroed so the free-list does not pin rows or images.
func (db *DB) release(t *Txn) {
	for i := range t.undo {
		t.undo[i] = undoEntry{}
	}
	for i := range t.pending {
		t.pending[i] = storage.Record{}
	}
	t.undo = t.undo[:0]
	t.pending = t.pending[:0]
	t.lockSorted = t.lockSorted[:0]
	t.lockSeq = t.lockSeq[:0]
	t.lastIxPages = t.lastIxPages[:0]
	t.p = nil
	db.txnFree = append(db.txnFree, t)
}

// ID returns the transaction id.
func (t *Txn) ID() uint64 { return t.id }

// cmpStringBytes is bytes.Compare across a string and a byte slice, avoiding
// the conversion allocation in the lock-set binary search.
func cmpStringBytes(s string, b []byte) int {
	n := len(s)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if s[i] != b[i] {
			if s[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(s) < len(b):
		return -1
	case len(s) > len(b):
		return 1
	}
	return 0
}

// searchLocks binary-searches the sorted lock set for the composite key kb,
// returning the insertion index and whether it is present.
func searchLocks(sorted []string, kb []byte) (int, bool) {
	lo, hi := 0, len(sorted)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		switch c := cmpStringBytes(sorted[mid], kb); {
		case c < 0:
			lo = mid + 1
		case c > 0:
			hi = mid
		default:
			return mid, true
		}
	}
	return lo, false
}

func (t *Txn) acquire(table *Table, k Key, mode LockMode) error {
	kb := append(t.keyBuf[:0], table.Schema.Name...)
	kb = append(kb, 0)
	kb = append(kb, k...)
	t.keyBuf = kb
	i, found := searchLocks(t.lockSorted, kb)
	canonical, err := t.db.locks.AcquireKey(t.p, t.id, kb, mode)
	if err != nil {
		return err
	}
	if !found {
		t.lockSorted = append(t.lockSorted, "")
		copy(t.lockSorted[i+1:], t.lockSorted[i:])
		t.lockSorted[i] = canonical
		t.lockSeq = append(t.lockSeq, canonical)
	}
	return nil
}

// logOp appends one of this txn's WAL records at write time (the
// write-ahead discipline: the log holds redo and undo for every in-flight
// change before the txn decides its fate) and buffers the assigned record
// for publication at commit. The first record also registers the txn in the
// active-transaction table.
func (t *Txn) logOp(rec storage.Record) {
	db := t.db
	if len(t.pending) == 0 {
		db.active[t.id] = db.log.Head() + 1
	}
	rec.LSN = db.log.Append(rec)
	t.pending = append(t.pending, rec)
}

// priorFlags encodes the exact overlay shape a write displaced, so recovery
// undo can restore it with Table.undoSet.
func priorFlags(existed, wasDelta bool) uint8 {
	var f uint8
	if existed {
		f |= storage.FlagPriorExisted
	}
	if wasDelta {
		f |= storage.FlagPriorInDelta
	}
	return f
}

// Get reads the row under k with a shared lock, returning the row and the
// page it lives on (for the caller's buffer accounting). A missing row
// returns ErrRowNotFound with the page that was probed.
func (t *Txn) Get(table *Table, k Key) (Row, storage.PageID, error) {
	if t.done {
		return nil, storage.PageID{}, ErrTxnDone
	}
	if err := t.acquire(table, k, LockShared); err != nil {
		return nil, storage.PageID{}, err
	}
	row, page, ok := table.Get(k)
	if o := t.db.observer; o != nil {
		o.OnRead(t.db.sim.Elapsed(), t.id, table.Schema.Name, k, row)
	}
	if !ok {
		return nil, page, ErrRowNotFound
	}
	return row, page, nil
}

// GetForUpdate reads the row under k with an exclusive lock, the
// read-modify-write pattern for contended rows (acquiring S first and
// upgrading would deadlock two concurrent writers of the same row).
func (t *Txn) GetForUpdate(table *Table, k Key) (Row, storage.PageID, error) {
	if t.done {
		return nil, storage.PageID{}, ErrTxnDone
	}
	if err := t.acquire(table, k, LockExclusive); err != nil {
		return nil, storage.PageID{}, err
	}
	row, page, ok := table.Get(k)
	if o := t.db.observer; o != nil {
		o.OnRead(t.db.sim.Elapsed(), t.id, table.Schema.Name, k, row)
	}
	if !ok {
		return nil, page, ErrRowNotFound
	}
	return row, page, nil
}

// Insert adds a new row (primary key taken from the row per schema).
func (t *Txn) Insert(table *Table, row Row) (storage.PageID, error) {
	if t.done {
		return storage.PageID{}, ErrTxnDone
	}
	k := table.Schema.KeyOf(row)
	if err := t.acquire(table, k, LockExclusive); err != nil {
		return storage.PageID{}, err
	}
	_, wasDelta := table.delta.Get(k)
	page, err := table.Insert(k, row)
	if err != nil {
		return storage.PageID{}, err
	}
	t.undo = append(t.undo, undoEntry{table: table, key: k, page: page, existed: false, inDelta: wasDelta})
	if o := t.db.observer; o != nil {
		o.OnWrite(t.db.sim.Elapsed(), t.id, table.Schema.Name, k, nil, row)
	}
	t.logOp(storage.Record{
		Type:  storage.RecInsert,
		Txn:   t.id,
		Flags: priorFlags(false, wasDelta),
		Table: table.ID,
		Page:  page,
		Key:   t.db.stable(k),
		Image: t.db.stableRow(row),
	})
	t.recordIndexOps(table)
	return page, nil
}

// Update replaces the row under k.
func (t *Txn) Update(table *Table, k Key, row Row) (storage.PageID, error) {
	if t.done {
		return storage.PageID{}, ErrTxnDone
	}
	if err := t.acquire(table, k, LockExclusive); err != nil {
		return storage.PageID{}, err
	}
	_, wasDelta := table.delta.Get(k)
	page, old, err := table.Update(k, row)
	if err != nil {
		return page, err
	}
	t.undo = append(t.undo, undoEntry{table: table, key: k, prior: old, page: page, existed: true, inDelta: wasDelta})
	if o := t.db.observer; o != nil {
		o.OnWrite(t.db.sim.Elapsed(), t.id, table.Schema.Name, k, old, row)
	}
	t.logOp(storage.Record{
		Type:  storage.RecUpdate,
		Txn:   t.id,
		Flags: priorFlags(true, wasDelta),
		Table: table.ID,
		Page:  page,
		Key:   t.db.stable(k),
		Image: t.db.stableRow(row),
		Prior: t.db.stableRow(old),
	})
	t.recordIndexOps(table)
	return page, nil
}

// Delete removes the row under k.
func (t *Txn) Delete(table *Table, k Key) (storage.PageID, error) {
	if t.done {
		return storage.PageID{}, ErrTxnDone
	}
	if err := t.acquire(table, k, LockExclusive); err != nil {
		return storage.PageID{}, err
	}
	_, wasDelta := table.delta.Get(k)
	page, old, err := table.Delete(k)
	if err != nil {
		return page, err
	}
	t.undo = append(t.undo, undoEntry{table: table, key: k, prior: old, page: page, existed: true, inDelta: wasDelta})
	if o := t.db.observer; o != nil {
		o.OnWrite(t.db.sim.Elapsed(), t.id, table.Schema.Name, k, old, nil)
	}
	t.logOp(storage.Record{
		Type:  storage.RecDelete,
		Txn:   t.id,
		Flags: priorFlags(true, wasDelta),
		Table: table.ID,
		Page:  page,
		Key:   t.db.stable(k),
		Prior: t.db.stableRow(old),
	})
	t.recordIndexOps(table)
	return page, nil
}

// recordIndexOps turns the index-entry changes of the write that just
// completed into pending WAL records, so commits pay log bytes for index
// maintenance, the fence sees index writes, and replica buffer invalidation
// covers index pages. Replicas re-derive entries from the heap records, so
// these carry no row images.
func (t *Txn) recordIndexOps(table *Table) {
	t.lastIxPages = t.lastIxPages[:0]
	for _, op := range table.IndexOps() {
		typ := storage.RecIndexPut
		if op.Del {
			typ = storage.RecIndexDelete
		}
		t.logOp(storage.Record{
			Type:  typ,
			Txn:   t.id,
			Table: op.Index.ID,
			Page:  op.Page,
			Key:   t.db.stable(op.EntryKey),
		})
		t.lastIxPages = append(t.lastIxPages, op.Page)
	}
}

// LastIndexPages returns the index pages touched by the most recent write
// on this transaction (valid until the next write). The slice aliases
// internal storage.
func (t *Txn) LastIndexPages() []storage.PageID { return t.lastIxPages }

// ScanRange runs a range query over table.col at read-committed isolation:
// an atomic lock-free scan collects candidates under the planner's chosen
// access path, then each candidate row is S-locked (waiting as needed) and
// re-read, dropping rows that no longer satisfy the predicate. Phantoms
// are not prevented — there are no predicate locks, matching common
// READ COMMITTED behavior. Scans do not emit observer read events.
func (t *Txn) ScanRange(table *Table, col int, lo, hi Value, limit int, mode PlanMode) (ScanResult, error) {
	if t.done {
		return ScanResult{}, ErrTxnDone
	}
	cand, err := table.SelectRange(col, lo, hi, limit, mode)
	if err != nil {
		return ScanResult{}, err
	}
	out := ScanResult{Plan: cand.Plan, Pages: cand.Pages}
	loK, hiK := EncodeKey(lo), EncodeKey(hi)
	for _, pk := range cand.PKs {
		if err := t.acquire(table, pk, LockShared); err != nil {
			return ScanResult{}, err
		}
		row, _, ok := table.Get(pk)
		if !ok {
			continue // deleted between scan and lock grant
		}
		vK := EncodeKey(row[col])
		if bytes.Compare(vK, loK) < 0 || bytes.Compare(vK, hiK) > 0 {
			continue // moved out of range before the lock was granted
		}
		out.PKs = append(out.PKs, pk)
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// stable copies b into the DB's slab, returning an immortal copy for WAL
// records to retain. Slab chunks amortize the copy-out to well under one
// allocation per record.
const slabChunk = 64 << 10

func (db *DB) stable(b []byte) []byte {
	if len(b) == 0 {
		return nil
	}
	if cap(db.slab)-len(db.slab) < len(b) {
		size := slabChunk
		if len(b) > size {
			size = len(b)
		}
		db.slab = make([]byte, 0, size)
	}
	n := len(db.slab)
	db.slab = append(db.slab, b...)
	return db.slab[n : n+len(b) : n+len(b)]
}

// stableRow encodes r straight into the DB slab, returning the immortal
// image bytes (nil for a nil row, i.e. a delete's after-image).
func (db *DB) stableRow(r Row) []byte {
	if r == nil {
		return nil
	}
	need := EncodedRowSize(r)
	if cap(db.slab)-len(db.slab) < need {
		size := slabChunk
		if need > size {
			size = need
		}
		db.slab = make([]byte, 0, size)
	}
	n := len(db.slab)
	db.slab = EncodeRow(db.slab, r)
	return db.slab[n:len(db.slab):len(db.slab)]
}

// Commit appends the commit record, moves the fsync barrier over everything
// logged so far (group commit: one txn's durability fsync drags every
// earlier append, other txns' in-flight records included), releases all
// locks, and returns the txn's records for publication to replication
// streams. Published copies have Prior stripped — undo images are local to
// the primary's log; replicas replay after-images only. Read-only
// transactions publish nothing.
//
// The returned slice is a shared per-DB buffer, valid until the next
// committing transaction on this DB: callers must consume it synchronously
// (every caller does — the node layer publishes the records to replication
// streams before yielding). The record Key/Image bytes themselves are
// slab-backed and immortal.
//
//detlint:hotpath
func (t *Txn) Commit() ([]storage.Record, error) {
	if t.done {
		return nil, ErrTxnDone
	}
	t.done = true
	db := t.db
	var appended []storage.Record
	if len(t.pending) > 0 {
		commit := storage.Record{Type: storage.RecCommit, Txn: t.id}
		commit.LSN = db.log.Append(commit)
		db.log.Sync()
		appended = db.appended[:0]
		if cap(appended) < len(t.pending)+1 {
			appended = make([]storage.Record, 0, len(t.pending)+1) //detlint:allow hotalloc(capacity growth for the widest txn seen, then reused via db.appended)
		}
		for i := range t.pending {
			rec := t.pending[i]
			rec.Prior = nil
			rec.Flags = 0
			appended = append(appended, rec)
		}
		appended = append(appended, commit)
		db.appended = appended
		delete(db.active, t.id)
	}
	db.locks.ReleaseAll(t.id, t.lockSeq)
	db.commits++
	if o := db.observer; o != nil {
		o.OnCommit(db.sim.Elapsed(), t.id)
	}
	db.release(t)
	return appended, nil
}

// Abort rolls back every change in reverse order, appends an abort record
// so crash recovery knows this txn's logged writes were already rolled back
// (skipping them in redo instead of replaying compensation), and releases
// all locks. The abort record rides to durability on the next group-commit
// fsync — safe, because under strict 2PL any later committed write to the
// same key orders after this marker in the log, so a durable commit implies
// the durable marker.
//
//detlint:hotpath
func (t *Txn) Abort() error {
	if t.done {
		return ErrTxnDone
	}
	t.done = true
	for i := len(t.undo) - 1; i >= 0; i-- {
		u := t.undo[i]
		u.table.undoSet(u.key, u.prior, u.page, u.existed, u.inDelta)
	}
	db := t.db
	if len(t.pending) > 0 {
		db.log.Append(storage.Record{Type: storage.RecAbort, Txn: t.id})
		delete(db.active, t.id)
	}
	db.locks.ReleaseAll(t.id, t.lockSeq)
	db.aborts++
	if o := db.observer; o != nil {
		o.OnAbort(db.sim.Elapsed(), t.id)
	}
	db.release(t)
	return nil
}

// WALBytes returns the encoded size of the records this txn's commit fsync
// makes durable (its own operation records, undo images included, plus the
// commit record), used by nodes to pre-charge group-commit latency.
func (t *Txn) WALBytes() int {
	total := 0
	for i := range t.pending {
		total += t.pending[i].Size()
	}
	if len(t.pending) > 0 {
		total += (&storage.Record{Type: storage.RecCommit}).Size()
	}
	return total
}

// ActiveTxnTable returns the active-transaction table — txns with logged
// records awaiting commit or abort — in ascending txn-id order.
func (db *DB) ActiveTxnTable() []storage.CheckpointTxn {
	if len(db.active) == 0 {
		return nil
	}
	out := make([]storage.CheckpointTxn, 0, len(db.active))
	for id, first := range db.active {
		out = append(out, storage.CheckpointTxn{ID: id, FirstLSN: first})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// FuzzyCheckpoint appends a checkpoint record capturing the current
// active-transaction table and the caller's dirty-page table, returning its
// LSN. The checkpoint is fuzzy — it does not quiesce writers or flush pages
// itself; the caller (the node's checkpointer) pays the flush I/O and makes
// the record durable with a log sync.
func (db *DB) FuzzyCheckpoint(dirty []storage.PageID) storage.LSN {
	att := db.ActiveTxnTable()
	start := db.log.Head() + 1 // the LSN the checkpoint record will get
	for _, t := range att {
		if t.FirstLSN < start {
			start = t.FirstLSN
		}
	}
	return db.log.Append(storage.Record{
		Type: storage.RecCheckpoint,
		Image: storage.EncodeCheckpointData(storage.CheckpointData{
			StartLSN:   start,
			ActiveTxns: att,
			DirtyPages: dirty,
		}),
	})
}

// BumpTxnFloor raises the txn-id counter to at least floor, so ids issued
// after a promotion or recovery never collide with ids the crashed or
// demoted instance already used.
func (db *DB) BumpTxnFloor(floor uint64) {
	if db.nextTxn < floor {
		db.nextTxn = floor
	}
}

// TxnCounter returns the highest txn id issued so far. Node recovery
// carries it across a crash: the lost volatile tail may hold ids beyond
// anything in the durable log, and reusing one would conflate two distinct
// transactions in recorded histories.
func (db *DB) TxnCounter() uint64 { return db.nextTxn }
