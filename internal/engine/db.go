package engine

import (
	"bytes"
	"errors"
	"fmt"

	"cloudybench/internal/sim"
	"cloudybench/internal/storage"
)

// DB is one database instance: a catalog of tables, a lock table, and a
// write-ahead log. The read-write node owns the authoritative DB; each
// read-only replica owns a separate DB instance (same schemas and
// generators) that applies shipped WAL records via Apply.
type DB struct {
	sim      *sim.Sim
	byName   map[string]*Table
	byID     map[storage.TableID]*Table
	ixByName map[string]*Index
	locks    *LockTable
	log      *storage.Log

	nextTxn     uint64
	nextTableID storage.TableID

	observer Observer

	commits int64
	aborts  int64
}

// NewDB returns an empty database bound to the simulation.
func NewDB(s *sim.Sim) *DB {
	return &DB{
		sim:    s,
		byName: make(map[string]*Table),
		byID:   make(map[storage.TableID]*Table),
		locks:  NewLockTable(s),
		log:    storage.NewLog(),
	}
}

// CreateTable registers a table with the given schema and generator-backed
// base rows (baseRows may be zero).
func (db *DB) CreateTable(schema *Schema, baseRows int64, gen RowGen) (*Table, error) {
	if _, exists := db.byName[schema.Name]; exists {
		return nil, fmt.Errorf("engine: table %s already exists", schema.Name)
	}
	db.nextTableID++
	t, err := NewTable(db.nextTableID, schema, baseRows, gen)
	if err != nil {
		return nil, err
	}
	db.byName[schema.Name] = t
	db.byID[t.ID] = t
	return t, nil
}

// MustCreateTable is CreateTable that panics on error (setup code).
func (db *DB) MustCreateTable(schema *Schema, baseRows int64, gen RowGen) *Table {
	t, err := db.CreateTable(schema, baseRows, gen)
	if err != nil {
		panic(err)
	}
	return t
}

// CreateIndex builds a secondary index over table.colName, allocating the
// index's page-space id from the same counter as tables. Schema setup runs
// identically on every node, so the id — which names index pages in WAL
// records and buffer keys — matches across primary and replicas.
func (db *DB) CreateIndex(tableName, ixName, colName string) (*Index, error) {
	t := db.byName[tableName]
	if t == nil {
		return nil, fmt.Errorf("engine: index %s: unknown table %q", ixName, tableName)
	}
	if _, dup := db.ixByName[ixName]; dup {
		return nil, fmt.Errorf("engine: index %s already exists", ixName)
	}
	db.nextTableID++
	ix, err := t.CreateIndex(ixName, db.nextTableID, colName)
	if err != nil {
		db.nextTableID--
		return nil, err
	}
	if db.ixByName == nil {
		db.ixByName = make(map[string]*Index)
	}
	db.ixByName[ixName] = ix
	return ix, nil
}

// MustCreateIndex is CreateIndex that panics on error (setup code).
func (db *DB) MustCreateIndex(tableName, ixName, colName string) *Index {
	ix, err := db.CreateIndex(tableName, ixName, colName)
	if err != nil {
		panic(err)
	}
	return ix
}

// Index returns the named secondary index, or nil.
func (db *DB) Index(name string) *Index { return db.ixByName[name] }

// Table returns the named table, or nil.
func (db *DB) Table(name string) *Table { return db.byName[name] }

// Tables returns all tables in creation order is not guaranteed; callers
// needing order should track names themselves.
func (db *DB) Tables() map[string]*Table { return db.byName }

// Log returns the database's WAL (the RW node's replication source).
func (db *DB) Log() *storage.Log { return db.log }

// Locks exposes the lock table (tests and tuning).
func (db *DB) Locks() *LockTable { return db.locks }

// Stats returns commit and abort counts.
func (db *DB) Stats() (commits, aborts int64) { return db.commits, db.aborts }

// Read performs a lock-free snapshot read, the path replicas use to serve
// read-only queries at their current replay position.
func (db *DB) Read(table string, k Key) (Row, storage.PageID, bool) {
	t := db.byName[table]
	if t == nil {
		return nil, storage.PageID{}, false
	}
	return t.Get(k)
}

// Apply replays one shipped WAL record into this (replica) instance.
// Commit, begin, abort, and checkpoint records are no-ops at the data layer.
func (db *DB) Apply(rec storage.Record) error {
	switch rec.Type {
	case storage.RecInsert, storage.RecUpdate, storage.RecDelete:
	default:
		return nil
	}
	t := db.byID[rec.Table]
	if t == nil {
		return fmt.Errorf("engine: replay for unknown table id %d", rec.Table)
	}
	key := Key(rec.Key)
	switch rec.Type {
	case storage.RecInsert:
		row, err := DecodeRow(rec.Image)
		if err != nil {
			return fmt.Errorf("engine: replay insert: %w", err)
		}
		t.InsertAt(key, row, rec.Page)
	case storage.RecUpdate:
		row, err := DecodeRow(rec.Image)
		if err != nil {
			return fmt.Errorf("engine: replay update: %w", err)
		}
		t.UpdateAt(key, row, rec.Page)
	case storage.RecDelete:
		t.DeleteAt(key, rec.Page)
	}
	return nil
}

// ErrTxnDone is returned when using a committed or aborted transaction.
var ErrTxnDone = errors.New("engine: transaction already finished")

type undoEntry struct {
	table   *Table
	key     Key
	prior   Row
	page    storage.PageID
	existed bool
	// inDelta records whether the key had a delta entry (row or tombstone)
	// before this write — rollback must restore the overlay exactly, not
	// just the visible value (see Table.undoSet).
	inDelta bool
}

// Txn is a read-write transaction under strict two-phase locking: locks are
// held until commit or abort, updates apply in place with undo images, and
// the redo stream is appended to the WAL at commit (so replicas only ever
// see committed changes).
type Txn struct {
	db      *DB
	p       *sim.Proc
	id      uint64
	done    bool
	lockSet map[string]struct{}
	lockSeq []string
	undo    []undoEntry
	pending []storage.Record
	// lastIxPages holds the index pages touched by the most recent write
	// (valid until the next write); the node layer charges them as page
	// writes alongside the heap page.
	lastIxPages []storage.PageID
}

// Begin starts a transaction executed by process p.
func (db *DB) Begin(p *sim.Proc) *Txn {
	db.nextTxn++
	return &Txn{db: db, p: p, id: db.nextTxn, lockSet: make(map[string]struct{})}
}

// ID returns the transaction id.
func (t *Txn) ID() uint64 { return t.id }

func lockKey(table *Table, k Key) string {
	return table.Schema.Name + "\x00" + string(k)
}

func (t *Txn) acquire(table *Table, k Key, mode LockMode) error {
	lk := lockKey(table, k)
	if err := t.db.locks.Acquire(t.p, t.id, lk, mode); err != nil {
		return err
	}
	if _, held := t.lockSet[lk]; !held {
		t.lockSet[lk] = struct{}{}
		t.lockSeq = append(t.lockSeq, lk)
	}
	return nil
}

// Get reads the row under k with a shared lock, returning the row and the
// page it lives on (for the caller's buffer accounting). A missing row
// returns ErrRowNotFound with the page that was probed.
func (t *Txn) Get(table *Table, k Key) (Row, storage.PageID, error) {
	if t.done {
		return nil, storage.PageID{}, ErrTxnDone
	}
	if err := t.acquire(table, k, LockShared); err != nil {
		return nil, storage.PageID{}, err
	}
	row, page, ok := table.Get(k)
	if o := t.db.observer; o != nil {
		o.OnRead(t.db.sim.Elapsed(), t.id, table.Schema.Name, k, row)
	}
	if !ok {
		return nil, page, ErrRowNotFound
	}
	return row, page, nil
}

// GetForUpdate reads the row under k with an exclusive lock, the
// read-modify-write pattern for contended rows (acquiring S first and
// upgrading would deadlock two concurrent writers of the same row).
func (t *Txn) GetForUpdate(table *Table, k Key) (Row, storage.PageID, error) {
	if t.done {
		return nil, storage.PageID{}, ErrTxnDone
	}
	if err := t.acquire(table, k, LockExclusive); err != nil {
		return nil, storage.PageID{}, err
	}
	row, page, ok := table.Get(k)
	if o := t.db.observer; o != nil {
		o.OnRead(t.db.sim.Elapsed(), t.id, table.Schema.Name, k, row)
	}
	if !ok {
		return nil, page, ErrRowNotFound
	}
	return row, page, nil
}

// Insert adds a new row (primary key taken from the row per schema).
func (t *Txn) Insert(table *Table, row Row) (storage.PageID, error) {
	if t.done {
		return storage.PageID{}, ErrTxnDone
	}
	k := table.Schema.KeyOf(row)
	if err := t.acquire(table, k, LockExclusive); err != nil {
		return storage.PageID{}, err
	}
	_, wasDelta := table.delta.Get(k)
	page, err := table.Insert(k, row)
	if err != nil {
		return storage.PageID{}, err
	}
	t.undo = append(t.undo, undoEntry{table: table, key: k, page: page, existed: false, inDelta: wasDelta})
	if o := t.db.observer; o != nil {
		o.OnWrite(t.db.sim.Elapsed(), t.id, table.Schema.Name, k, nil, row)
	}
	t.pending = append(t.pending, storage.Record{
		Type:  storage.RecInsert,
		Txn:   t.id,
		Table: table.ID,
		Page:  page,
		Key:   []byte(k),
		Image: EncodeRow(nil, row),
	})
	t.recordIndexOps(table)
	return page, nil
}

// Update replaces the row under k.
func (t *Txn) Update(table *Table, k Key, row Row) (storage.PageID, error) {
	if t.done {
		return storage.PageID{}, ErrTxnDone
	}
	if err := t.acquire(table, k, LockExclusive); err != nil {
		return storage.PageID{}, err
	}
	_, wasDelta := table.delta.Get(k)
	page, old, err := table.Update(k, row)
	if err != nil {
		return page, err
	}
	t.undo = append(t.undo, undoEntry{table: table, key: k, prior: old, page: page, existed: true, inDelta: wasDelta})
	if o := t.db.observer; o != nil {
		o.OnWrite(t.db.sim.Elapsed(), t.id, table.Schema.Name, k, old, row)
	}
	t.pending = append(t.pending, storage.Record{
		Type:  storage.RecUpdate,
		Txn:   t.id,
		Table: table.ID,
		Page:  page,
		Key:   []byte(k),
		Image: EncodeRow(nil, row),
	})
	t.recordIndexOps(table)
	return page, nil
}

// Delete removes the row under k.
func (t *Txn) Delete(table *Table, k Key) (storage.PageID, error) {
	if t.done {
		return storage.PageID{}, ErrTxnDone
	}
	if err := t.acquire(table, k, LockExclusive); err != nil {
		return storage.PageID{}, err
	}
	_, wasDelta := table.delta.Get(k)
	page, old, err := table.Delete(k)
	if err != nil {
		return page, err
	}
	t.undo = append(t.undo, undoEntry{table: table, key: k, prior: old, page: page, existed: true, inDelta: wasDelta})
	if o := t.db.observer; o != nil {
		o.OnWrite(t.db.sim.Elapsed(), t.id, table.Schema.Name, k, old, nil)
	}
	t.pending = append(t.pending, storage.Record{
		Type:  storage.RecDelete,
		Txn:   t.id,
		Table: table.ID,
		Page:  page,
		Key:   []byte(k),
	})
	t.recordIndexOps(table)
	return page, nil
}

// recordIndexOps turns the index-entry changes of the write that just
// completed into pending WAL records, so commits pay log bytes for index
// maintenance, the fence sees index writes, and replica buffer invalidation
// covers index pages. Replicas re-derive entries from the heap records, so
// these carry no row images.
func (t *Txn) recordIndexOps(table *Table) {
	t.lastIxPages = t.lastIxPages[:0]
	for _, op := range table.IndexOps() {
		typ := storage.RecIndexPut
		if op.Del {
			typ = storage.RecIndexDelete
		}
		t.pending = append(t.pending, storage.Record{
			Type:  typ,
			Txn:   t.id,
			Table: op.Index.ID,
			Page:  op.Page,
			Key:   append([]byte(nil), op.EntryKey...),
		})
		t.lastIxPages = append(t.lastIxPages, op.Page)
	}
}

// LastIndexPages returns the index pages touched by the most recent write
// on this transaction (valid until the next write). The slice aliases
// internal storage.
func (t *Txn) LastIndexPages() []storage.PageID { return t.lastIxPages }

// ScanRange runs a range query over table.col at read-committed isolation:
// an atomic lock-free scan collects candidates under the planner's chosen
// access path, then each candidate row is S-locked (waiting as needed) and
// re-read, dropping rows that no longer satisfy the predicate. Phantoms
// are not prevented — there are no predicate locks, matching common
// READ COMMITTED behavior. Scans do not emit observer read events.
func (t *Txn) ScanRange(table *Table, col int, lo, hi Value, limit int, mode PlanMode) (ScanResult, error) {
	if t.done {
		return ScanResult{}, ErrTxnDone
	}
	cand, err := table.SelectRange(col, lo, hi, limit, mode)
	if err != nil {
		return ScanResult{}, err
	}
	out := ScanResult{Plan: cand.Plan, Pages: cand.Pages}
	loK, hiK := EncodeKey(lo), EncodeKey(hi)
	for _, pk := range cand.PKs {
		if err := t.acquire(table, pk, LockShared); err != nil {
			return ScanResult{}, err
		}
		row, _, ok := table.Get(pk)
		if !ok {
			continue // deleted between scan and lock grant
		}
		vK := EncodeKey(row[col])
		if bytes.Compare(vK, loK) < 0 || bytes.Compare(vK, hiK) > 0 {
			continue // moved out of range before the lock was granted
		}
		out.PKs = append(out.PKs, pk)
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Commit appends the transaction's redo records plus a commit record to the
// WAL, releases all locks, and returns the appended records (the caller
// charges log-write and shipping costs from their sizes). Read-only
// transactions append nothing.
func (t *Txn) Commit() ([]storage.Record, error) {
	if t.done {
		return nil, ErrTxnDone
	}
	t.done = true
	var appended []storage.Record
	if len(t.pending) > 0 {
		appended = make([]storage.Record, 0, len(t.pending)+1)
		for _, rec := range t.pending {
			rec.LSN = 0
			lsn := t.db.log.Append(rec)
			rec.LSN = lsn
			appended = append(appended, rec)
		}
		commit := storage.Record{Type: storage.RecCommit, Txn: t.id}
		commit.LSN = t.db.log.Append(commit)
		appended = append(appended, commit)
	}
	t.db.locks.ReleaseAll(t.id, t.lockSeq)
	t.db.commits++
	if o := t.db.observer; o != nil {
		o.OnCommit(t.db.sim.Elapsed(), t.id)
	}
	return appended, nil
}

// Abort rolls back every change in reverse order and releases all locks.
func (t *Txn) Abort() error {
	if t.done {
		return ErrTxnDone
	}
	t.done = true
	for i := len(t.undo) - 1; i >= 0; i-- {
		u := t.undo[i]
		u.table.undoSet(u.key, u.prior, u.page, u.existed, u.inDelta)
	}
	t.db.locks.ReleaseAll(t.id, t.lockSeq)
	t.db.aborts++
	if o := t.db.observer; o != nil {
		o.OnAbort(t.db.sim.Elapsed(), t.id)
	}
	return nil
}

// WALBytes returns the encoded size of the records a commit would write,
// used by nodes to pre-charge group-commit latency.
func (t *Txn) WALBytes() int {
	total := 0
	for i := range t.pending {
		total += t.pending[i].Size()
	}
	if len(t.pending) > 0 {
		total += (&storage.Record{Type: storage.RecCommit}).Size()
	}
	return total
}
