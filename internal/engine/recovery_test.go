package engine

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"cloudybench/internal/sim"
	"cloudybench/internal/storage"
)

// crashState is what a crash leaves behind: the durable log snapshot and
// the torn tail — everything volatile is gone by definition.
type crashState struct {
	snap storage.LogSnapshot
	tail []byte
}

// newRecoverySchema builds the DB catalog every party to a recovery test
// uses: an indexed table so recovery must reconstruct secondary indexes too.
func newRecoverySchema(s *sim.Sim) (*DB, *Table) {
	db := NewDB(s)
	tbl := db.MustCreateTable(indexedSchema(), 60, genItem)
	db.MustCreateIndex("items", "ix_items_group", "IT_GROUP")
	db.MustCreateIndex("items", "ix_items_tag", "IT_TAG")
	return db, tbl
}

// runCrashWorkload drives a deterministic random mix of committed and
// runtime-aborted transactions, leaves inflight transactions open mid-write,
// and crashes the log with the given torn mode. The inflight txns start
// midway, so later group commits drag their earlier records across the
// fsync barrier (durable losers), while their final writes stay in the
// volatile tail. Checkpoints are taken every ckEvery committed txns
// (0 = never).
func runCrashWorkload(t *testing.T, seed int64, txns, inflight, ckEvery int, torn storage.TornMode) (*DB, crashState) {
	t.Helper()
	s := sim.New(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	db, tbl := newRecoverySchema(s)
	r := rand.New(rand.NewSource(seed))
	s.Go("load", func(p *sim.Proc) {
		committed := 0
		// minID keeps committed txns off the keys the inflight txns hold X
		// locks on (single-proc test: a lock wait would never wake).
		phase := func(n int, minID int64) {
			for i := 0; i < n; i++ {
				txn := db.Begin(p)
				for j := 0; j < 1+r.Intn(3); j++ {
					id := minID + int64(r.Intn(140))
					var err error
					switch r.Intn(3) {
					case 0:
						_, err = txn.Insert(tbl, Row{Int(id), Int(r.Int63n(12)), Float(float64(r.Intn(100)) / 4), Str(fmt.Sprintf("t%d", r.Intn(8)))})
					case 1:
						_, err = txn.Update(tbl, IntKey(id), Row{Int(id), Int(r.Int63n(12)), Float(float64(r.Intn(100)) / 4), Str(fmt.Sprintf("t%d", r.Intn(8)))})
					case 2:
						_, err = txn.Delete(tbl, IntKey(id))
					}
					if err != nil {
						break
					}
				}
				if r.Intn(5) == 0 {
					txn.Abort()
				} else {
					txn.Commit()
					committed++
					if ckEvery > 0 && committed%ckEvery == 0 {
						db.FuzzyCheckpoint(nil)
						db.Log().Sync()
					}
				}
			}
		}
		phase(txns/2, 1)
		// Start the in-flight transactions: distinct private keys, so they
		// conflict with nothing. Their records are volatile now but the
		// second phase's group commits make them durable.
		open := make([]*Txn, 0, inflight)
		for w := 0; w < inflight; w++ {
			txn := db.Begin(p)
			base := int64(500 + 10*w)
			txn.Insert(tbl, Row{Int(base), Int(99), Float(1), Str("inflight")})
			txn.Update(tbl, IntKey(int64(w)+1), Row{Int(int64(w) + 1), Int(99), Float(1), Str("inflight")})
			open = append(open, txn)
		}
		phase(txns-txns/2, int64(inflight)+10)
		// One more write per in-flight txn after the last sync: these land
		// in the volatile tail and vanish (or arrive torn) at the crash.
		for w, txn := range open {
			txn.Update(tbl, IntKey(int64(500+10*w)), Row{Int(int64(500 + 10*w)), Int(98), Float(2), Str("tail")})
		}
		// Never committed, never aborted: the crash takes them.
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	tail, _ := db.Log().Crash(torn)
	return db, crashState{snap: db.Log().Snapshot(), tail: tail}
}

// oracleFromDurableLog replays only the committed transactions' records
// from the durable log, in order, through the replica Apply path — an
// independent reconstruction of "exactly the acknowledged history".
func oracleFromDurableLog(t *testing.T, cs crashState) (*DB, *Table) {
	t.Helper()
	s := sim.New(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	db, tbl := newRecoverySchema(s)
	lg := storage.NewLog()
	lg.Restore(cs.snap)
	recs := lg.Read(0, 0)
	committed := make(map[uint64]bool)
	for i := range recs {
		if recs[i].Type == storage.RecCommit {
			committed[recs[i].Txn] = true
		}
	}
	for i := range recs {
		if committed[recs[i].Txn] {
			if err := db.Apply(recs[i]); err != nil {
				t.Fatalf("oracle apply: %v", err)
			}
		}
	}
	return db, tbl
}

// recoverFresh builds a fresh catalog and runs recovery on it.
func recoverFresh(t *testing.T, cs crashState, opts RecoveryOpts) (*DB, *Table, RecoveryStats) {
	t.Helper()
	s := sim.New(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	db, tbl := newRecoverySchema(s)
	st, err := db.Recover(cs.snap, cs.tail, opts)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	return db, tbl, st
}

// diffTables compares two tables' full logical state: delta overlays entry
// for entry (rows, tombstones, pages — the same byte-level contract replica
// convergence checks), live counts, and every secondary index. Returns a
// description of the first divergence, or "".
func diffTables(a, b *Table) string {
	var diff string
	type ent struct {
		k  Key
		dv deltaVal
	}
	collect := func(t *Table) []ent {
		var out []ent
		t.delta.AscendRange(nil, nil, func(k Key, dv deltaVal) bool {
			out = append(out, ent{k, dv})
			return true
		})
		return out
	}
	ea, eb := collect(a), collect(b)
	if len(ea) != len(eb) {
		return fmt.Sprintf("overlay size %d vs %d", len(ea), len(eb))
	}
	for i := range ea {
		if string(ea[i].k) != string(eb[i].k) {
			return fmt.Sprintf("overlay key %q vs %q", ea[i].k, eb[i].k)
		}
		if (ea[i].dv.row == nil) != (eb[i].dv.row == nil) {
			return fmt.Sprintf("key %q tombstone mismatch", ea[i].k)
		}
		if ea[i].dv.row != nil && !ea[i].dv.row.Equal(eb[i].dv.row) {
			return fmt.Sprintf("key %q row %v vs %v", ea[i].k, ea[i].dv.row, eb[i].dv.row)
		}
		if ea[i].dv.page != eb[i].dv.page {
			return fmt.Sprintf("key %q page %v vs %v", ea[i].k, ea[i].dv.page, eb[i].dv.page)
		}
	}
	if a.LiveRows() != b.LiveRows() {
		return fmt.Sprintf("liveRows %d vs %d", a.LiveRows(), b.LiveRows())
	}
	ixa, ixb := a.Indexes(), b.Indexes()
	if len(ixa) != len(ixb) {
		return fmt.Sprintf("%d vs %d indexes", len(ixa), len(ixb))
	}
	for i := range ixa {
		if ixa[i].Len() != ixb[i].Len() {
			return fmt.Sprintf("index %s: %d vs %d entries", ixa[i].Name, ixa[i].Len(), ixb[i].Len())
		}
		var keys []string
		ixb[i].Walk(func(ek Key, pk Key) bool {
			keys = append(keys, string(ek))
			return true
		})
		j := 0
		ixa[i].Walk(func(ek Key, pk Key) bool {
			if string(ek) != keys[j] {
				diff = fmt.Sprintf("index %s entry %q vs %q", ixa[i].Name, ek, keys[j])
				return false
			}
			j++
			return true
		})
		if diff != "" {
			return diff
		}
	}
	return ""
}

// TestRecoverEquivalenceDifferential is the recovery-equivalence
// differential test: for a spread of random workloads, crash modes, and
// checkpoint cadences, the recovered DB must be logically identical to an
// independent full replay of the committed prefix — overlays, live counts,
// and secondary indexes.
func TestRecoverEquivalenceDifferential(t *testing.T) {
	modes := []storage.TornMode{storage.TornNone, storage.TornShort, storage.TornFlip}
	for i, seed := range []int64{1, 7, 42, 1337} {
		mode := modes[i%len(modes)]
		ckEvery := []int{0, 25}[i%2]
		t.Run(fmt.Sprintf("seed%d_%v_ck%d", seed, mode, ckEvery), func(t *testing.T) {
			_, cs := runCrashWorkload(t, seed, 150, 3, ckEvery, mode)
			_, otbl := oracleFromDurableLog(t, cs)
			rec, rtbl, st := recoverFresh(t, cs, RecoveryOpts{})
			if d := diffTables(rtbl, otbl); d != "" {
				t.Fatalf("recovered state diverges from committed-prefix oracle: %s", d)
			}
			if st.Losers != 3 {
				t.Errorf("losers = %d, want 3", st.Losers)
			}
			if mode != storage.TornNone && len(cs.tail) > 0 && !st.TornDetected {
				t.Error("torn tail present but not detected")
			}
			if ckEvery > 0 && st.CheckpointLSN == 0 {
				t.Error("no checkpoint found despite checkpoint cadence")
			}
			if rc, _ := rec.Stats(); rc != int64(st.Committed) {
				t.Errorf("recovered commit count %d != stats committed %d", rc, st.Committed)
			}
		})
	}
}

// TestRecoverSecondCrashDoesNotResurrect covers the double-crash hazard:
// after recovery rolls a loser back and durably marks it aborted, new
// committed work overwrites the same keys; a second crash + recovery must
// keep the new values instead of re-undoing the old loser under them.
func TestRecoverSecondCrashDoesNotResurrect(t *testing.T) {
	_, cs := runCrashWorkload(t, 11, 80, 2, 0, storage.TornNone)
	db1, tbl1, st1 := recoverFresh(t, cs, RecoveryOpts{})
	if st1.Losers != 2 {
		t.Fatalf("first recovery losers = %d, want 2", st1.Losers)
	}
	// New committed work on the recovered node re-inserts the exact keys the
	// losers' undone inserts occupied. If a second recovery re-ran the old
	// losers' undo (undo-of-insert = delete), it would tombstone these rows.
	s := db1.sim
	s.Go("after", func(p *sim.Proc) {
		txn := db1.Begin(p)
		for w := int64(0); w < 2; w++ {
			if _, err := txn.Insert(tbl1, Row{Int(500 + 10*w), Int(7), Float(2), Str("post-crash")}); err != nil {
				t.Errorf("post-recovery insert: %v", err)
			}
		}
		if _, err := txn.Commit(); err != nil {
			t.Errorf("post-recovery commit: %v", err)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	tail2, _ := db1.Log().Crash(storage.TornNone)
	cs2 := crashState{snap: db1.Log().Snapshot(), tail: tail2}
	_, tbl2, _ := recoverFresh(t, cs2, RecoveryOpts{})
	for w := int64(0); w < 2; w++ {
		row, _, ok := tbl2.Get(IntKey(500 + 10*w))
		if !ok || row[3].S != "post-crash" {
			t.Fatalf("key %d after second recovery = %v (ok=%v), want post-crash row", 500+10*w, row, ok)
		}
	}
}

// TestRecoverTeethSkipUndo proves the durability gauntlet has teeth: a
// recovery that skips the undo pass leaves in-flight transactions' effects
// in place, and the committed-prefix differential catches it.
func TestRecoverTeethSkipUndo(t *testing.T) {
	_, cs := runCrashWorkload(t, 5, 100, 2, 0, storage.TornNone)
	_, otbl := oracleFromDurableLog(t, cs)
	_, rtbl, st := recoverFresh(t, cs, RecoveryOpts{SkipUndo: true})
	if st.UndoRecords != 0 {
		t.Fatalf("SkipUndo rolled back %d records", st.UndoRecords)
	}
	if st.Losers == 0 {
		t.Fatal("workload left no losers; teeth test is vacuous")
	}
	if d := diffTables(rtbl, otbl); d == "" {
		t.Fatal("skipped undo went undetected: recovered state equals oracle")
	}
	// The uncommitted marker value must be visible — the resurrection the
	// NoResurrection invariant exists to catch.
	row, _, ok := rtbl.Get(IntKey(500))
	if !ok || row[3].S != "inflight" {
		t.Fatalf("expected in-flight insert to survive broken recovery, got %v ok=%v", row, ok)
	}
}

// TestRecoverTeethSkipTornCheck proves the torn-tail checksum pass has
// teeth: a reader that trusts a structurally-decodable but corrupt tail
// record applies it — and its mangled prior image poisons the undo, leaving
// a value that never existed (or failing outright mid-undo).
func TestRecoverTeethSkipTornCheck(t *testing.T) {
	// Construct the sharp case directly: a committed value, then an
	// in-flight update of the same key sitting unsynced at the crash.
	s := sim.New(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	db, tbl := newRecoverySchema(s)
	s.Go("load", func(p *sim.Proc) {
		txn := db.Begin(p)
		txn.Update(tbl, IntKey(9), Row{Int(9), Int(3), Float(1), Str("COMMITTED")})
		if _, err := txn.Commit(); err != nil {
			t.Error(err)
		}
		loser := db.Begin(p)
		loser.Update(tbl, IntKey(9), Row{Int(9), Int(4), Float(2), Str("DOOMED")})
		// Crash takes it: the update record (prior image = COMMITTED row)
		// is the unsynced tail.
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	tail, dropped := db.Log().Crash(storage.TornFlip)
	if dropped == 0 || tail == nil {
		t.Fatal("crash dropped nothing; scenario broken")
	}
	cs := crashState{snap: db.Log().Snapshot(), tail: tail}

	_, honest, hst := recoverFresh(t, cs, RecoveryOpts{})
	if !hst.TornDetected {
		t.Fatal("honest recovery did not detect the torn tail")
	}
	row, _, ok := honest.Get(IntKey(9))
	if !ok || row[3].S != "COMMITTED" {
		t.Fatalf("honest recovery: key 9 = %v ok=%v, want COMMITTED", row, ok)
	}

	sb := sim.New(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	bdb, btbl := newRecoverySchema(sb)
	bst, berr := bdb.Recover(cs.snap, cs.tail, RecoveryOpts{SkipUndo: false, SkipTornCheck: true})
	if berr != nil {
		// The mangled prior image failed to decode mid-undo: caught as a
		// hard recovery error. Equally detected.
		return
	}
	if !bst.TornApplied {
		t.Fatal("teeth recovery did not apply the torn tail")
	}
	brow, _, bok := btbl.Get(IntKey(9))
	if bok && brow.Equal(row) {
		t.Fatal("un-truncated torn tail went undetected: state equals honest recovery")
	}
}

// TestRecoverCostScalesWithLogSinceCheckpoint pins the emergent-recovery
// contract: with the same history, more frequent checkpoints strictly
// shrink the redo cost window (RedoSince, RedoPages) while leaving the
// recovered state identical.
func TestRecoverCostScalesWithLogSinceCheckpoint(t *testing.T) {
	_, csNone := runCrashWorkload(t, 21, 200, 0, 0, storage.TornNone)
	_, csSparse := runCrashWorkload(t, 21, 200, 0, 100, storage.TornNone)
	_, csDense := runCrashWorkload(t, 21, 200, 0, 10, storage.TornNone)

	_, tNone, stNone := recoverFresh(t, csNone, RecoveryOpts{})
	_, tSparse, stSparse := recoverFresh(t, csSparse, RecoveryOpts{})
	_, tDense, stDense := recoverFresh(t, csDense, RecoveryOpts{})

	if stNone.CheckpointLSN != 0 || stSparse.CheckpointLSN == 0 || stDense.CheckpointLSN == 0 {
		t.Fatalf("checkpoint LSNs: none=%d sparse=%d dense=%d", stNone.CheckpointLSN, stSparse.CheckpointLSN, stDense.CheckpointLSN)
	}
	if !(stDense.RedoSince < stSparse.RedoSince && stSparse.RedoSince < stNone.RedoSince) {
		t.Fatalf("redo window must shrink with checkpoint frequency: none=%d sparse=%d dense=%d",
			stNone.RedoSince, stSparse.RedoSince, stDense.RedoSince)
	}
	if !(len(stDense.RedoPages) <= len(stSparse.RedoPages) && len(stSparse.RedoPages) <= len(stNone.RedoPages)) {
		t.Fatalf("redo pages must shrink with checkpoint frequency: none=%d sparse=%d dense=%d",
			len(stNone.RedoPages), len(stSparse.RedoPages), len(stDense.RedoPages))
	}
	// Checkpoints change recovery cost, never the recovered state. The
	// workloads are identical (same seed; checkpoints add no data records).
	if d := diffTables(tNone, tSparse); d != "" {
		t.Fatalf("sparse-checkpoint recovery diverges: %s", d)
	}
	if d := diffTables(tNone, tDense); d != "" {
		t.Fatalf("dense-checkpoint recovery diverges: %s", d)
	}
}

// TestRecoverEmptyAndTrivialLogs covers the degenerate paths: recovering
// from an empty log, and from a log whose every txn committed cleanly.
func TestRecoverEmptyAndTrivialLogs(t *testing.T) {
	s := sim.New(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	db, _ := newRecoverySchema(s)
	st, err := db.Recover(storage.NewLog().Snapshot(), nil, RecoveryOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != 0 || st.Losers != 0 || st.RedoRecords != 0 {
		t.Fatalf("empty-log recovery did work: %+v", st)
	}

	_, cs := runCrashWorkload(t, 3, 50, 0, 0, storage.TornNone)
	_, rtbl, st2 := recoverFresh(t, cs, RecoveryOpts{})
	_, otbl := oracleFromDurableLog(t, cs)
	if st2.Losers != 0 || st2.UndoRecords != 0 {
		t.Fatalf("clean history produced losers: %+v", st2)
	}
	if d := diffTables(rtbl, otbl); d != "" {
		t.Fatalf("clean recovery diverges: %s", d)
	}
}
