package engine

import (
	"strings"
	"testing"
)

// sizeRows covers every value kind and the varint boundary cases that a
// size-walk bug would get wrong.
var sizeRows = []Row{
	{},
	{Null()},
	{Int(0)},
	{Int(1), Int(-1)},
	{Int(63), Int(64), Int(-64), Int(-65)}, // zig-zag uvarint length boundaries
	{Int(1<<62 - 1), Int(-(1 << 62))},
	{Int(9223372036854775807), Int(-9223372036854775808)},
	{Float(0), Float(3.141592653589793), Float(-1e300)},
	{Str("")},
	{Str("a"), Str("hello, world")},
	{Str(strings.Repeat("x", 300))}, // length needs a 2-byte uvarint
	{Int(42), Str("order"), Float(9.99), Null(), Str(""), Int(-7)},
}

// TestEncodedRowSizeMatchesEncodeRow pins the contract that lets EncodeRow
// pre-size its destination in one allocation: the size walk must agree with
// the bytes actually emitted, for every kind and varint width.
func TestEncodedRowSizeMatchesEncodeRow(t *testing.T) {
	for i, r := range sizeRows {
		enc := EncodeRow(nil, r)
		if got, want := EncodedRowSize(r), len(enc); got != want {
			t.Errorf("row %d: EncodedRowSize=%d but EncodeRow emitted %d bytes", i, got, want)
		}
		dec, err := DecodeRow(enc)
		if err != nil {
			t.Fatalf("row %d: decode: %v", i, err)
		}
		if len(dec) != len(r) {
			t.Fatalf("row %d: round-trip length %d != %d", i, len(dec), len(r))
		}
		for j := range r {
			if !dec[j].Equal(r[j]) {
				t.Errorf("row %d col %d: round-trip %v != %v", i, j, dec[j], r[j])
			}
		}
	}
}

// TestEncodeRowAllocationDiscipline is the perf regression guard: encoding
// into a buffer with enough spare capacity must not allocate at all, and
// encoding into an empty destination must grow it exactly once (the
// pre-sized grow), never incrementally.
func TestEncodeRowAllocationDiscipline(t *testing.T) {
	r := Row{Int(12345), Str("warehouse-item-payload"), Float(2.5), Null(),
		Str(strings.Repeat("y", 200))}
	need := EncodedRowSize(r)

	buf := make([]byte, 0, need)
	if n := testing.AllocsPerRun(100, func() {
		out := EncodeRow(buf, r)
		if len(out) != need {
			t.Fatalf("encoded %d bytes, want %d", len(out), need)
		}
	}); n != 0 {
		t.Errorf("encode into pre-sized buffer: %v allocs/op, want 0", n)
	}

	if n := testing.AllocsPerRun(100, func() {
		out := EncodeRow(nil, r)
		if len(out) != need {
			t.Fatalf("encoded %d bytes, want %d", len(out), need)
		}
	}); n != 1 {
		t.Errorf("encode into nil destination: %v allocs/op, want exactly 1", n)
	}
}
