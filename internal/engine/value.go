// Package engine implements the shared transactional core of every
// simulated cloud database: typed rows, memcomparable key encoding, an
// in-memory B-tree, a simulation-aware two-phase-locking lock manager, and
// write transactions with undo and WAL emission.
//
// One engine instance backs the read-write node; each read-only replica
// holds its own instance that applies shipped WAL records. Base table data
// is materialized deterministically from a generator function (see Table),
// so multi-gigabyte scale factors need memory only for written rows.
package engine

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"strconv"
	"time"
)

// Kind enumerates value types. The set covers what the CloudyBench and
// TPC-C schemas need: integers (ids, counts, timestamps as unix micros),
// floats (amounts, credits), and strings (names, statuses).
type Kind uint8

// Value kinds.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
)

func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INT"
	case KindFloat:
		return "FLOAT"
	case KindString:
		return "STRING"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is one typed column value.
type Value struct {
	Kind Kind
	I    int64
	F    float64
	S    string
}

// Int returns an integer value.
func Int(v int64) Value { return Value{Kind: KindInt, I: v} }

// Float returns a float value.
func Float(v float64) Value { return Value{Kind: KindFloat, F: v} }

// Str returns a string value.
func Str(s string) Value { return Value{Kind: KindString, S: s} }

// Null returns the null value.
func Null() Value { return Value{Kind: KindNull} }

// Time returns an integer value holding the unix-microsecond timestamp.
func Time(t time.Time) Value { return Int(t.UnixMicro()) }

// IsNull reports whether the value is null.
func (v Value) IsNull() bool { return v.Kind == KindNull }

// String renders the value for reports and debugging.
func (v Value) String() string {
	switch v.Kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindString:
		return v.S
	default:
		return "?"
	}
}

// Equal reports deep equality of two values.
func (v Value) Equal(o Value) bool {
	if v.Kind != o.Kind {
		return false
	}
	switch v.Kind {
	case KindNull:
		return true
	case KindInt:
		return v.I == o.I
	case KindFloat:
		return v.F == o.F
	case KindString:
		return v.S == o.S
	}
	return false
}

// Row is one table row: a value per schema column.
type Row []Value

// Clone returns a copy that shares no mutable state.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Equal reports column-wise equality.
func (r Row) Equal(o Row) bool {
	if len(r) != len(o) {
		return false
	}
	for i := range r {
		if !r[i].Equal(o[i]) {
			return false
		}
	}
	return true
}

// EncodeRow appends a compact binary encoding of the row to dst. The format
// is a uvarint column count followed by tagged values. The destination is
// pre-sized with EncodedRowSize, so encoding into a buffer with enough spare
// capacity performs no allocation and encoding into a short one grows it
// exactly once.
func EncodeRow(dst []byte, r Row) []byte {
	if need := EncodedRowSize(r); cap(dst)-len(dst) < need {
		grown := make([]byte, len(dst), len(dst)+need)
		copy(grown, dst)
		dst = grown
	}
	dst = binary.AppendUvarint(dst, uint64(len(r)))
	for _, v := range r {
		dst = append(dst, byte(v.Kind))
		switch v.Kind {
		case KindNull:
		case KindInt:
			dst = binary.AppendVarint(dst, v.I)
		case KindFloat:
			dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(v.F))
		case KindString:
			dst = binary.AppendUvarint(dst, uint64(len(v.S)))
			dst = append(dst, v.S...)
		default:
			panic(fmt.Sprintf("engine: encode of unknown kind %d", v.Kind))
		}
	}
	return dst
}

// ErrBadRow reports a malformed row encoding.
var ErrBadRow = errors.New("engine: malformed row encoding")

// DecodeRow decodes a row produced by EncodeRow.
func DecodeRow(buf []byte) (Row, error) {
	n, sz := binary.Uvarint(buf)
	if sz <= 0 {
		return nil, ErrBadRow
	}
	buf = buf[sz:]
	row := make(Row, 0, n)
	for i := uint64(0); i < n; i++ {
		if len(buf) < 1 {
			return nil, ErrBadRow
		}
		kind := Kind(buf[0])
		buf = buf[1:]
		switch kind {
		case KindNull:
			row = append(row, Null())
		case KindInt:
			v, sz := binary.Varint(buf)
			if sz <= 0 {
				return nil, ErrBadRow
			}
			buf = buf[sz:]
			row = append(row, Int(v))
		case KindFloat:
			if len(buf) < 8 {
				return nil, ErrBadRow
			}
			row = append(row, Float(math.Float64frombits(binary.BigEndian.Uint64(buf))))
			buf = buf[8:]
		case KindString:
			l, sz := binary.Uvarint(buf)
			if sz <= 0 || uint64(len(buf)-sz) < l {
				return nil, ErrBadRow
			}
			buf = buf[sz:]
			row = append(row, Str(string(buf[:l])))
			buf = buf[l:]
		default:
			return nil, ErrBadRow
		}
	}
	return row, nil
}

// decodeRow is DecodeRow with string payloads routed through the DB
// interner: replica replay decodes the same low-cardinality status/name
// values millions of times, and interning makes every repeat allocation-free.
// The returned row still owns a fresh slice — the delta overlay retains it.
func (db *DB) decodeRow(buf []byte) (Row, error) {
	n, sz := binary.Uvarint(buf)
	if sz <= 0 {
		return nil, ErrBadRow
	}
	buf = buf[sz:]
	row := db.newRow(int(n))
	for i := uint64(0); i < n; i++ {
		if len(buf) < 1 {
			return nil, ErrBadRow
		}
		kind := Kind(buf[0])
		buf = buf[1:]
		switch kind {
		case KindNull:
			row = append(row, Null())
		case KindInt:
			v, sz := binary.Varint(buf)
			if sz <= 0 {
				return nil, ErrBadRow
			}
			buf = buf[sz:]
			row = append(row, Int(v))
		case KindFloat:
			if len(buf) < 8 {
				return nil, ErrBadRow
			}
			row = append(row, Float(math.Float64frombits(binary.BigEndian.Uint64(buf))))
			buf = buf[8:]
		case KindString:
			l, sz := binary.Uvarint(buf)
			if sz <= 0 || uint64(len(buf)-sz) < l {
				return nil, ErrBadRow
			}
			buf = buf[sz:]
			row = append(row, Str(db.intern(buf[:l])))
			buf = buf[l:]
		default:
			return nil, ErrBadRow
		}
	}
	return row, nil
}

// valSlabChunk sizes the replay row slab: decoded rows are carved out of a
// shared []Value block, amortizing the per-record slice allocation that
// otherwise dominates replay GC cost. Rows are immutable once written, so
// sharing a backing array across delta rows is safe; a chunk is collected
// once every row carved from it has been displaced.
const valSlabChunk = 1024

// newRow returns an empty row with capacity n carved from the DB value slab
// (oversized rows fall back to a plain allocation).
func (db *DB) newRow(n int) Row {
	if n > valSlabChunk {
		return make(Row, 0, n)
	}
	if cap(db.valSlab)-len(db.valSlab) < n {
		db.valSlab = make([]Value, 0, valSlabChunk)
	}
	off := len(db.valSlab)
	db.valSlab = db.valSlab[:off+n]
	return Row(db.valSlab[off : off : off+n])
}

// uvarintLen returns the encoded size of v as a uvarint.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// EncodedRowSize returns the encoded byte size of the row in one pass,
// without encoding or allocating. EncodeRow uses it to pre-size its
// destination buffer.
func EncodedRowSize(r Row) int {
	size := uvarintLen(uint64(len(r)))
	for _, v := range r {
		size++ // kind tag
		switch v.Kind {
		case KindNull:
		case KindInt:
			// Varint zig-zag encodes to the uvarint of 2|v| (±).
			size += uvarintLen(uint64(v.I)<<1 ^ uint64(v.I>>63))
		case KindFloat:
			size += 8
		case KindString:
			size += uvarintLen(uint64(len(v.S))) + len(v.S)
		default:
			panic(fmt.Sprintf("engine: size of unknown kind %d", v.Kind))
		}
	}
	return size
}
