package engine

import "bytes"

// btreeDegree is the minimum degree t: nodes hold between t-1 and 2t-1 keys
// (except the root). 32 gives wide, shallow trees suited to in-memory use.
const btreeDegree = 32

const (
	btreeMaxKeys = 2*btreeDegree - 1
	btreeMinKeys = btreeDegree - 1
)

// BTree is an in-memory B-tree mapping memcomparable keys to values. It is
// the delta store under every table: written rows, tombstones, and replica
// overlays all live in B-trees. It follows the single-runnable discipline
// of the simulation and therefore needs no internal locking.
type BTree[V any] struct {
	root *btreeNode[V]
	size int
}

type btreeNode[V any] struct {
	keys     [][]byte
	vals     []V
	children []*btreeNode[V] // nil for leaves
}

func (n *btreeNode[V]) leaf() bool { return n.children == nil }

// find returns the index of the first key >= k and whether it equals k.
func (n *btreeNode[V]) find(k []byte) (int, bool) {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(n.keys[mid], k) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(n.keys) && bytes.Equal(n.keys[lo], k) {
		return lo, true
	}
	return lo, false
}

// NewBTree returns an empty tree.
func NewBTree[V any]() *BTree[V] {
	return &BTree[V]{root: &btreeNode[V]{}}
}

// Len returns the number of stored keys.
func (t *BTree[V]) Len() int { return t.size }

// Get returns the value stored under k.
func (t *BTree[V]) Get(k Key) (V, bool) {
	n := t.root
	for {
		i, found := n.find(k)
		if found {
			return n.vals[i], true
		}
		if n.leaf() {
			var zero V
			return zero, false
		}
		n = n.children[i]
	}
}

// Set stores v under k, returning the previous value if one existed.
func (t *BTree[V]) Set(k Key, v V) (old V, replaced bool) {
	if len(t.root.keys) == btreeMaxKeys {
		oldRoot := t.root
		t.root = &btreeNode[V]{children: []*btreeNode[V]{oldRoot}}
		t.splitChild(t.root, 0)
	}
	old, replaced = t.insertNonFull(t.root, k, v)
	if !replaced {
		t.size++
	}
	return old, replaced
}

// splitChild splits the full child at index i of parent.
func (t *BTree[V]) splitChild(parent *btreeNode[V], i int) {
	child := parent.children[i]
	mid := btreeMinKeys
	right := &btreeNode[V]{
		keys: append([][]byte(nil), child.keys[mid+1:]...),
		vals: append([]V(nil), child.vals[mid+1:]...),
	}
	if !child.leaf() {
		right.children = append([]*btreeNode[V](nil), child.children[mid+1:]...)
	}
	upKey, upVal := child.keys[mid], child.vals[mid]
	child.keys = child.keys[:mid]
	child.vals = child.vals[:mid]
	if !child.leaf() {
		child.children = child.children[:mid+1]
	}
	parent.keys = append(parent.keys, nil)
	copy(parent.keys[i+1:], parent.keys[i:])
	parent.keys[i] = upKey
	var zero V
	parent.vals = append(parent.vals, zero)
	copy(parent.vals[i+1:], parent.vals[i:])
	parent.vals[i] = upVal
	parent.children = append(parent.children, nil)
	copy(parent.children[i+2:], parent.children[i+1:])
	parent.children[i+1] = right
}

func (t *BTree[V]) insertNonFull(n *btreeNode[V], k Key, v V) (old V, replaced bool) {
	for {
		i, found := n.find(k)
		if found {
			old = n.vals[i]
			n.vals[i] = v
			return old, true
		}
		if n.leaf() {
			n.keys = append(n.keys, nil)
			copy(n.keys[i+1:], n.keys[i:])
			n.keys[i] = append([]byte(nil), k...)
			var zero V
			n.vals = append(n.vals, zero)
			copy(n.vals[i+1:], n.vals[i:])
			n.vals[i] = v
			return old, false
		}
		if len(n.children[i].keys) == btreeMaxKeys {
			t.splitChild(n, i)
			cmp := bytes.Compare(k, n.keys[i])
			if cmp == 0 {
				old = n.vals[i]
				n.vals[i] = v
				return old, true
			}
			if cmp > 0 {
				i++
			}
		}
		n = n.children[i]
	}
}

// Delete removes k, returning the removed value if it existed.
func (t *BTree[V]) Delete(k Key) (old V, deleted bool) {
	old, deleted = t.delete(t.root, k)
	if deleted {
		t.size--
	}
	if len(t.root.keys) == 0 && !t.root.leaf() {
		t.root = t.root.children[0]
	}
	return old, deleted
}

func (t *BTree[V]) delete(n *btreeNode[V], k Key) (old V, deleted bool) {
	i, found := n.find(k)
	if n.leaf() {
		if !found {
			var zero V
			return zero, false
		}
		old = n.vals[i]
		n.keys = append(n.keys[:i], n.keys[i+1:]...)
		n.vals = append(n.vals[:i], n.vals[i+1:]...)
		return old, true
	}
	if found {
		// Replace with predecessor from the left subtree, then delete it there.
		old = n.vals[i]
		left := n.children[i]
		if len(left.keys) > btreeMinKeys {
			pk, pv := t.deleteMax(left)
			n.keys[i], n.vals[i] = pk, pv
			return old, true
		}
		right := n.children[i+1]
		if len(right.keys) > btreeMinKeys {
			sk, sv := t.deleteMin(right)
			n.keys[i], n.vals[i] = sk, sv
			return old, true
		}
		t.mergeChildren(n, i)
		return t.deleteDescend(n, i, k, old)
	}
	// Ensure the child we descend into has > minKeys.
	if len(n.children[i].keys) <= btreeMinKeys {
		i = t.fill(n, i)
	}
	return t.delete(n.children[i], k)
}

// deleteDescend finishes a merged-case deletion: the key now lives in
// children[i] after mergeChildren.
func (t *BTree[V]) deleteDescend(n *btreeNode[V], i int, k Key, old V) (V, bool) {
	_, del := t.delete(n.children[i], k)
	if !del {
		panic("engine: btree lost key during merge delete")
	}
	return old, true
}

func (t *BTree[V]) deleteMax(n *btreeNode[V]) ([]byte, V) {
	for {
		if n.leaf() {
			last := len(n.keys) - 1
			k, v := n.keys[last], n.vals[last]
			n.keys = n.keys[:last]
			n.vals = n.vals[:last]
			return k, v
		}
		i := len(n.children) - 1
		if len(n.children[i].keys) <= btreeMinKeys {
			i = t.fill(n, i)
			// fill may merge; recompute rightmost path
			if i >= len(n.children) {
				i = len(n.children) - 1
			}
		}
		n = n.children[i]
	}
}

func (t *BTree[V]) deleteMin(n *btreeNode[V]) ([]byte, V) {
	for {
		if n.leaf() {
			k, v := n.keys[0], n.vals[0]
			n.keys = append(n.keys[:0], n.keys[1:]...)
			n.vals = append(n.vals[:0], n.vals[1:]...)
			return k, v
		}
		if len(n.children[0].keys) <= btreeMinKeys {
			t.fill(n, 0)
		}
		n = n.children[0]
	}
}

// fill ensures children[i] has more than minKeys, borrowing from a sibling
// or merging. It returns the (possibly shifted) child index to descend into.
func (t *BTree[V]) fill(n *btreeNode[V], i int) int {
	if i > 0 && len(n.children[i-1].keys) > btreeMinKeys {
		t.borrowFromLeft(n, i)
		return i
	}
	if i < len(n.children)-1 && len(n.children[i+1].keys) > btreeMinKeys {
		t.borrowFromRight(n, i)
		return i
	}
	if i < len(n.children)-1 {
		t.mergeChildren(n, i)
		return i
	}
	t.mergeChildren(n, i-1)
	return i - 1
}

func (t *BTree[V]) borrowFromLeft(n *btreeNode[V], i int) {
	child, left := n.children[i], n.children[i-1]
	child.keys = append(child.keys, nil)
	copy(child.keys[1:], child.keys)
	child.keys[0] = n.keys[i-1]
	var zero V
	child.vals = append(child.vals, zero)
	copy(child.vals[1:], child.vals)
	child.vals[0] = n.vals[i-1]
	last := len(left.keys) - 1
	n.keys[i-1] = left.keys[last]
	n.vals[i-1] = left.vals[last]
	left.keys = left.keys[:last]
	left.vals = left.vals[:last]
	if !child.leaf() {
		child.children = append(child.children, nil)
		copy(child.children[1:], child.children)
		child.children[0] = left.children[len(left.children)-1]
		left.children = left.children[:len(left.children)-1]
	}
}

func (t *BTree[V]) borrowFromRight(n *btreeNode[V], i int) {
	child, right := n.children[i], n.children[i+1]
	child.keys = append(child.keys, n.keys[i])
	child.vals = append(child.vals, n.vals[i])
	n.keys[i] = right.keys[0]
	n.vals[i] = right.vals[0]
	right.keys = append(right.keys[:0], right.keys[1:]...)
	right.vals = append(right.vals[:0], right.vals[1:]...)
	if !child.leaf() {
		child.children = append(child.children, right.children[0])
		right.children = append(right.children[:0], right.children[1:]...)
	}
}

// mergeChildren merges children[i], the separator key i, and children[i+1].
func (t *BTree[V]) mergeChildren(n *btreeNode[V], i int) {
	left, right := n.children[i], n.children[i+1]
	left.keys = append(left.keys, n.keys[i])
	left.vals = append(left.vals, n.vals[i])
	left.keys = append(left.keys, right.keys...)
	left.vals = append(left.vals, right.vals...)
	if !left.leaf() {
		left.children = append(left.children, right.children...)
	}
	n.keys = append(n.keys[:i], n.keys[i+1:]...)
	n.vals = append(n.vals[:i], n.vals[i+1:]...)
	n.children = append(n.children[:i+1], n.children[i+2:]...)
}

// AscendRange visits keys in [lo, hi) in order, calling fn for each; fn
// returning false stops the scan. A nil lo starts at the minimum; a nil hi
// scans to the end.
func (t *BTree[V]) AscendRange(lo, hi Key, fn func(k Key, v V) bool) {
	t.ascend(t.root, lo, hi, fn)
}

func (t *BTree[V]) ascend(n *btreeNode[V], lo, hi Key, fn func(k Key, v V) bool) bool {
	start := 0
	if lo != nil {
		start, _ = n.find(lo)
	}
	for i := start; i <= len(n.keys); i++ {
		if !n.leaf() {
			if !t.ascend(n.children[i], lo, hi, fn) {
				return false
			}
		}
		if i == len(n.keys) {
			break
		}
		if hi != nil && bytes.Compare(n.keys[i], hi) >= 0 {
			return false
		}
		if lo != nil && bytes.Compare(n.keys[i], lo) < 0 {
			continue
		}
		if !fn(n.keys[i], n.vals[i]) {
			return false
		}
	}
	return true
}

// Min returns the smallest key and its value.
func (t *BTree[V]) Min() (Key, V, bool) {
	n := t.root
	if len(n.keys) == 0 {
		var zero V
		return nil, zero, false
	}
	for !n.leaf() {
		n = n.children[0]
	}
	return n.keys[0], n.vals[0], true
}

// Max returns the largest key and its value.
func (t *BTree[V]) Max() (Key, V, bool) {
	n := t.root
	if len(n.keys) == 0 {
		var zero V
		return nil, zero, false
	}
	for !n.leaf() {
		n = n.children[len(n.children)-1]
	}
	last := len(n.keys) - 1
	return n.keys[last], n.vals[last], true
}
