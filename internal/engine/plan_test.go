package engine

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"cloudybench/internal/sim"
)

// TestPlannerSelectivityRule pins the plan choice: narrow ranges go through
// the index, wide ranges fall back to the sequential scan, and force modes
// override.
func TestPlannerSelectivityRule(t *testing.T) {
	_, _, tbl, _ := newIndexedDB(t, 100) // groups 0..9
	cases := []struct {
		lo, hi int64
		want   PlanKind
	}{
		{3, 3, PlanIndexScan}, // point
		{0, 1, PlanIndexScan}, // 2/10 = 0.2 <= 0.25
		{0, 4, PlanFullScan},  // 5/10 = 0.5
		{0, 9, PlanFullScan},  // whole domain
		{7, 2, PlanIndexScan}, // empty range estimates 0
	}
	for _, c := range cases {
		res, err := tbl.SelectRange(1, Int(c.lo), Int(c.hi), 0, PlanAuto)
		if err != nil {
			t.Fatal(err)
		}
		if res.Plan != c.want {
			t.Fatalf("range [%d,%d]: plan %v, want %v", c.lo, c.hi, res.Plan, c.want)
		}
	}
	if res, _ := tbl.SelectRange(1, Int(0), Int(9), 0, PlanForceIndex); res.Plan != PlanIndexScan {
		t.Fatal("force-index ignored")
	}
	if res, _ := tbl.SelectRange(1, Int(3), Int(3), 0, PlanForceScan); res.Plan != PlanFullScan {
		t.Fatal("force-scan ignored")
	}
	ixScans, fullScans := tbl.ScanStats()
	if ixScans == 0 || fullScans == 0 {
		t.Fatalf("scan stats not counted: %d/%d", ixScans, fullScans)
	}
	// No index on the column: auto must full-scan, force-index must error.
	if res, _ := tbl.SelectRange(2, Float(0), Float(1), 0, PlanAuto); res.Plan != PlanFullScan {
		t.Fatal("unindexed column did not full-scan")
	}
	if _, err := tbl.SelectRange(2, Float(0), Float(1), 0, PlanForceIndex); err == nil {
		t.Fatal("force-index on unindexed column accepted")
	}
}

// TestPlansAgreeByteForByte is the in-package differential check: on random
// mutated tables, the index plan and the full-scan oracle must return
// byte-identical ordered result sets for random ranges and limits.
func TestPlansAgreeByteForByte(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		r := rand.New(rand.NewSource(seed))
		s, db, tbl, _ := newIndexedDB(t, 80)
		s.Go("mutate", func(p *sim.Proc) {
			for i := 0; i < 150; i++ {
				txn := db.Begin(p)
				id := int64(r.Intn(160)) + 1
				switch r.Intn(3) {
				case 0:
					txn.Insert(tbl, Row{Int(id), Int(r.Int63n(10)), Float(1), Str("x")})
				case 1:
					txn.Update(tbl, IntKey(id), Row{Int(id), Int(r.Int63n(10)), Float(2), Str("y")})
				case 2:
					txn.Delete(tbl, IntKey(id))
				}
				if r.Intn(4) == 0 {
					txn.Abort()
				} else {
					txn.Commit()
				}
			}
		})
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		for q := 0; q < 40; q++ {
			lo := r.Int63n(10)
			hi := lo + r.Int63n(10)
			limit := 0
			if r.Intn(2) == 0 {
				limit = 1 + r.Intn(5)
			}
			a, err := tbl.SelectRange(1, Int(lo), Int(hi), limit, PlanForceIndex)
			if err != nil {
				t.Fatal(err)
			}
			b, err := tbl.SelectRange(1, Int(lo), Int(hi), limit, PlanForceScan)
			if err != nil {
				t.Fatal(err)
			}
			if len(a.Rows) != len(b.Rows) {
				t.Fatalf("seed %d [%d,%d] limit %d: index %d rows, scan %d rows", seed, lo, hi, limit, len(a.Rows), len(b.Rows))
			}
			for i := range a.Rows {
				if !bytes.Equal(a.PKs[i], b.PKs[i]) || !bytes.Equal(EncodeRow(nil, a.Rows[i]), EncodeRow(nil, b.Rows[i])) {
					t.Fatalf("seed %d [%d,%d] limit %d: row %d differs between plans", seed, lo, hi, limit, i)
				}
			}
		}
	}
}

// TestTxnScanRangeLocksAndFilters checks the transactional scan takes S
// locks on returned rows (blocking a writer) and is usable mid-txn.
func TestTxnScanRangeLocksAndFilters(t *testing.T) {
	s, db, tbl, _ := newIndexedDB(t, 30)
	var scanned int
	var writerBlocked bool
	s.Go("scanner", func(p *sim.Proc) {
		txn := db.Begin(p)
		res, err := txn.ScanRange(tbl, 1, Int(3), Int(3), 0, PlanAuto)
		if err != nil {
			t.Errorf("scan: %v", err)
			return
		}
		scanned = len(res.Rows)
		p.Sleep(50 * time.Millisecond) // hold locks
		txn.Commit()
	})
	s.Go("writer", func(p *sim.Proc) {
		p.Sleep(10 * time.Millisecond)
		txn := db.Begin(p)
		t0 := p.Elapsed()
		if _, err := txn.Update(tbl, IntKey(3), Row{Int(3), Int(5), Float(0), Str("w")}); err != nil {
			txn.Abort()
			return
		}
		writerBlocked = p.Elapsed()-t0 >= 30*time.Millisecond
		txn.Commit()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if scanned != 3 { // ids 3, 13, 23
		t.Fatalf("scanned %d rows, want 3", scanned)
	}
	if !writerBlocked {
		t.Fatal("writer was not blocked by the scan's shared locks")
	}
	indexIsProjection(t, tbl)
}
