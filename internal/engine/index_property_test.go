package engine

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"testing/quick"
	"time"

	"cloudybench/internal/sim"
)

// runIndexSchedule drives a deterministic random interleaving of
// insert/update/delete/rollback across several concurrent sim workers on an
// indexed table, then returns a digest of the final visible state and every
// index's full contents. The schedule depends only on (seed, workers, ops).
func runIndexSchedule(seed int64, workers, opsPerWorker int) (string, error) {
	s := sim.New(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	db := NewDB(s)
	tbl := db.MustCreateTable(indexedSchema(), 60, genItem)
	db.MustCreateIndex("items", "ix_items_group", "IT_GROUP")
	db.MustCreateIndex("items", "ix_items_tag", "IT_TAG")

	for w := 0; w < workers; w++ {
		r := rand.New(rand.NewSource(seed + int64(w)*1_000_003))
		s.Go(fmt.Sprintf("w%d", w), func(p *sim.Proc) {
			for i := 0; i < opsPerWorker; i++ {
				txn := db.Begin(p)
				nStmts := 1 + r.Intn(4)
				aborted := false
				for j := 0; j < nStmts; j++ {
					id := int64(r.Intn(200)) + 1
					var err error
					switch r.Intn(3) {
					case 0:
						_, err = txn.Insert(tbl, Row{Int(id), Int(r.Int63n(12)), Float(float64(r.Intn(100)) / 4), Str(fmt.Sprintf("t%d", r.Intn(8)))})
					case 1:
						_, err = txn.Update(tbl, IntKey(id), Row{Int(id), Int(r.Int63n(12)), Float(float64(r.Intn(100)) / 4), Str(fmt.Sprintf("t%d", r.Intn(8)))})
					case 2:
						_, err = txn.Delete(tbl, IntKey(id))
					}
					// Lock conflicts surface as timeouts; treat any error as
					// a reason to abort this txn (rollback path under test).
					if err != nil {
						txn.Abort()
						aborted = true
						break
					}
					// Yield mid-transaction so writers interleave.
					p.Sleep(time.Duration(r.Intn(3)) * time.Millisecond)
				}
				if aborted {
					continue
				}
				if r.Intn(3) == 0 {
					txn.Abort()
				} else if _, err := txn.Commit(); err != nil {
					return
				}
			}
		})
	}
	if err := s.Run(); err != nil {
		return "", err
	}

	h := sha256.New()
	tbl.VisibleScan(func(pk Key, r Row) bool {
		h.Write(pk)
		h.Write(EncodeRow(nil, r))
		return true
	})
	for _, ix := range tbl.Indexes() {
		ix.Walk(func(ek Key, pk Key) bool {
			h.Write(ek)
			return true
		})
	}
	// Coherence: every index is an exact projection of the visible rows.
	for _, ix := range tbl.Indexes() {
		want := 0
		tbl.VisibleScan(func(pk Key, r Row) bool {
			ek := ix.EntryKey(r[ix.Col], pk)
			if _, ok := ix.tree.Get(ek); !ok {
				want = -1 << 30
				return false
			}
			want++
			return true
		})
		if want != ix.Len() {
			return "", fmt.Errorf("index %s incoherent: %d entries vs %d visible rows", ix.Name, ix.Len(), want)
		}
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// TestPropertyIndexCoherentUnderInterleavings drives random multi-worker
// interleavings (insert/update/delete, commit and rollback, lock-conflict
// aborts) and checks after each that every secondary index is an exact
// projection of the base table, and that the whole final state is
// byte-identical across GOMAXPROCS settings.
func TestPropertyIndexCoherentUnderInterleavings(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	check := func(seed int64) bool {
		runtime.GOMAXPROCS(prev)
		d1, err := runIndexSchedule(seed, 4, 30)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		runtime.GOMAXPROCS(1)
		d2, err := runIndexSchedule(seed, 4, 30)
		if err != nil {
			t.Logf("seed %d (GOMAXPROCS=1): %v", seed, err)
			return false
		}
		if d1 != d2 {
			t.Logf("seed %d: digest differs across GOMAXPROCS: %s vs %s", seed, d1, d2)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestIndexScheduleGoldenDigest is the 25-run golden regression (PR 4
// style): one pinned seed, 25 repetitions, every run must reproduce the
// recorded digest bit for bit. A change here means index maintenance or
// the schedule semantics drifted — update the golden only deliberately.
func TestIndexScheduleGoldenDigest(t *testing.T) {
	const golden = "739658db754ff06d081b0d499be1cb2cb44c62f703ff00de96b95a70eecfc634"
	first, err := runIndexSchedule(42, 4, 30)
	if err != nil {
		t.Fatal(err)
	}
	if first != golden {
		t.Fatalf("golden digest drifted:\n got  %s\n want %s", first, golden)
	}
	for run := 1; run < 25; run++ {
		d, err := runIndexSchedule(42, 4, 30)
		if err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		if d != first {
			t.Fatalf("run %d: digest %s differs from run 0 %s", run, d, first)
		}
	}
}
