package engine

import (
	"testing"
	"testing/quick"
	"time"
)

func TestValueConstructorsAndString(t *testing.T) {
	if !Int(5).Equal(Value{Kind: KindInt, I: 5}) {
		t.Fatal("Int constructor")
	}
	if Int(5).String() != "5" || Str("x").String() != "x" || Null().String() != "NULL" {
		t.Fatal("value String()")
	}
	if Float(2.5).String() != "2.5" {
		t.Fatalf("float string = %q", Float(2.5).String())
	}
	if !Null().IsNull() || Int(0).IsNull() {
		t.Fatal("IsNull")
	}
	ts := time.Date(2026, 7, 6, 12, 0, 0, 0, time.UTC)
	if Time(ts).I != ts.UnixMicro() {
		t.Fatal("Time constructor")
	}
}

func TestValueEqualAcrossKinds(t *testing.T) {
	if Int(1).Equal(Float(1)) {
		t.Fatal("int equals float")
	}
	if Int(1).Equal(Str("1")) {
		t.Fatal("int equals string")
	}
	if !Null().Equal(Null()) {
		t.Fatal("null != null")
	}
}

func TestRowCloneIsIndependent(t *testing.T) {
	r := Row{Int(1), Str("a")}
	c := r.Clone()
	c[0] = Int(2)
	if r[0].I != 1 {
		t.Fatal("clone shares backing array")
	}
	if !r.Equal(Row{Int(1), Str("a")}) {
		t.Fatal("row mutated")
	}
	if r.Equal(c) {
		t.Fatal("modified clone equal to original")
	}
	if r.Equal(Row{Int(1)}) {
		t.Fatal("rows of different length equal")
	}
}

func TestRowEncodeDecodeRoundTrip(t *testing.T) {
	r := Row{Int(-42), Float(3.25), Str("hello\x00world"), Null(), Int(1 << 60)}
	enc := EncodeRow(nil, r)
	got, err := DecodeRow(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(r) {
		t.Fatalf("round trip: %v vs %v", got, r)
	}
	if EncodedRowSize(r) != len(enc) {
		t.Fatal("EncodedRowSize mismatch")
	}
}

func TestRowDecodeErrors(t *testing.T) {
	r := Row{Int(7), Str("abc")}
	enc := EncodeRow(nil, r)
	for i := 1; i < len(enc); i++ {
		if _, err := DecodeRow(enc[:i]); err == nil {
			t.Fatalf("truncated decode at %d succeeded", i)
		}
	}
	if _, err := DecodeRow([]byte{1, 99}); err == nil {
		t.Fatal("bad kind byte decoded")
	}
}

func TestRowRoundTripProperty(t *testing.T) {
	check := func(i int64, f float64, s string, hasNull bool) bool {
		r := Row{Int(i), Float(f), Str(s)}
		if hasNull {
			r = append(r, Null())
		}
		got, err := DecodeRow(EncodeRow(nil, r))
		return err == nil && got.Equal(r)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyRowRoundTrip(t *testing.T) {
	got, err := DecodeRow(EncodeRow(nil, Row{}))
	if err != nil || len(got) != 0 {
		t.Fatalf("empty row round trip: %v %v", got, err)
	}
}

func TestKindString(t *testing.T) {
	if KindInt.String() != "INT" || KindNull.String() != "NULL" ||
		KindFloat.String() != "FLOAT" || KindString.String() != "STRING" {
		t.Fatal("kind strings")
	}
	if Kind(42).String() != "Kind(42)" {
		t.Fatal("unknown kind string")
	}
}
